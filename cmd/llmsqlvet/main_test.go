package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, want 0; stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"errwrap", "lockheld", "mapiter", "walltime"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

// TestRunSelf vets this command's own package — which must be clean, so
// the zero-findings exit path is the one taken.
func TestRunSelf(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"."}, &out, &errOut); code != 0 {
		t.Fatalf("run(.) = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogusflag"}, &out, &errOut); code != 2 {
		t.Errorf("run(-bogusflag) = %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"./no/such/dir/..."}, &out, &errOut); code != 2 {
		t.Errorf("run(bad pattern) = %d, want 2; stderr: %s", code, errOut.String())
	}
}
