// Command llmsqlvet runs the project's invariant analyzers — the
// mechanical enforcement of the rules the replay-determinism gate only
// spot-checks:
//
//	mapiter   map iteration order must never reach rows, prompts, or
//	          other ordered output without a sort
//	walltime  deterministic packages take time from llm.Sched's virtual
//	          clock, never the wall clock or global rand
//	lockheld  no Model.Complete or network I/O while holding a mutex
//	errwrap   fmt.Errorf wraps error operands with %w, not %v/%s
//
// Usage:
//
//	llmsqlvet [-list] [packages]
//
// Packages default to ./... relative to the current directory, which
// must lie inside the module. Exit status is 1 when findings remain. A
// finding is silenced — with a mandatory written reason — by a comment
// on the flagged line or the line above:
//
//	//llmsql:allow <analyzer> <reason>
//
// See the "Determinism invariants" section of DESIGN.md for the full
// rules.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"llmsql/internal/analysis/driver"
	"llmsql/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process plumbing, so the exit paths are testable:
// 0 clean, 1 findings remain, 2 usage or load error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("llmsqlvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := suite.All()
	if *list {
		for _, az := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := driver.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "llmsqlvet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "llmsqlvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
