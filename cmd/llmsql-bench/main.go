// Command llmsql-bench runs the full experiment suite — every table and
// figure of the reconstructed evaluation, through the Table 11 limit-sweep
// of the streaming scan — and prints the reports in paper order. The
// output of a full-scale run is recorded in EXPERIMENTS.md, and -json
// emits a machine-readable run (BENCH_baseline.json is one, checked in so
// future changes have a perf trajectory to compare against; cmd/benchdiff
// -require keeps the efficiency series in the gate).
//
// Usage:
//
//	llmsql-bench [-seed N] [-scale F] [-only "Table 4,Table 9"] [-json]
//	            [-cache-dir DIR] [-record trace.json | -replay trace.json]
//
// -record captures every completion that reaches an experiment model into a
// trace file; -replay serves the whole suite from such a file instead of
// the live SynthLM — the deterministic playback behind the CI
// replay-determinism gate (testdata/replay/bench_suite.json is the
// checked-in fixture, regenerated with `make replay-fixture`).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"llmsql/internal/bench"
	"llmsql/internal/cliflags"
	"llmsql/internal/llm"
)

// jsonRun is the machine-readable output shape of -json.
type jsonRun struct {
	Seed    int64          `json:"seed"`
	Scale   float64        `json:"scale"`
	Reports []bench.Report `json:"reports"`
}

func main() {
	var (
		seed     = flag.Int64("seed", 2024, "world and model seed")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-style)")
		only     = flag.String("only", "", "run only experiments whose ID contains one of these comma-separated substrings")
		asJSON   = flag.Bool("json", false, "emit the reports as JSON (for BENCH_baseline.json-style records)")
		cacheDir = flag.String("cache-dir", "", "persistent prompt-cache directory shared by the experiment engines (empty = off)")
		record   = flag.String("record", "", "record every live completion of the run into this trace file (replay fixture)")
		replay   = flag.String("replay", "", "serve the whole run from this trace file instead of live models")

		printFlags = flag.Bool("print-flags", false, "print the flag reference as a markdown table and exit (consumed by make docs-check)")
	)
	var faults cliflags.FaultFlags
	faults.Register(flag.CommandLine)
	flag.Parse()

	if *printFlags {
		fmt.Print(cliflags.Markdown(flag.CommandLine))
		return
	}

	if *record != "" && *replay != "" {
		fmt.Fprintln(os.Stderr, "llmsql-bench: -record and -replay are mutually exclusive (replaying reaches no live model, so there is nothing to record)")
		os.Exit(1)
	}
	if *cacheDir != "" {
		// Fail with a clean message now rather than a panic from the first
		// experiment's engine.
		if err := llm.CheckCacheDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "llmsql-bench:", err)
			os.Exit(1)
		}
	}
	opts := bench.Options{
		Seed:           *seed,
		Scale:          *scale,
		CacheDir:       *cacheDir,
		Chaos:          faults.Chaos(),
		Retry:          faults.Retry(),
		PartialResults: faults.PartialResults,
	}
	if *record != "" {
		opts.Record = llm.NewTrace()
	}
	if *replay != "" {
		trace, err := llm.LoadTrace(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "llmsql-bench:", err)
			os.Exit(1)
		}
		opts.Replay = trace
	}
	start := time.Now()
	reports, err := bench.RunOnly(opts, *only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmsql-bench:", err)
		os.Exit(1)
	}
	if *record != "" {
		if err := opts.Record.Save(*record); err != nil {
			fmt.Fprintln(os.Stderr, "llmsql-bench: save trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "recorded %d completions to %s\n", opts.Record.Len(), *record)
	}
	kept := reports
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonRun{Seed: *seed, Scale: *scale, Reports: kept}); err != nil {
			fmt.Fprintln(os.Stderr, "llmsql-bench:", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range kept {
		fmt.Println(r.String())
	}
	fmt.Printf("— %d experiments in %v (seed %d, scale %.2f)\n", len(kept), time.Since(start).Round(time.Millisecond), *seed, *scale)
}
