// Command llmsql-bench runs the full experiment suite — every table and
// figure of the reconstructed evaluation, through the Table 11 limit-sweep
// of the streaming scan — and prints the reports in paper order. The
// output of a full-scale run is recorded in EXPERIMENTS.md, and -json
// emits a machine-readable run (BENCH_baseline.json is one, checked in so
// future changes have a perf trajectory to compare against; cmd/benchdiff
// -require keeps the efficiency series in the gate).
//
// Usage:
//
//	llmsql-bench [-seed N] [-scale F] [-only "Table 4"] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"llmsql/internal/bench"
)

// jsonRun is the machine-readable output shape of -json.
type jsonRun struct {
	Seed    int64          `json:"seed"`
	Scale   float64        `json:"scale"`
	Reports []bench.Report `json:"reports"`
}

func main() {
	var (
		seed   = flag.Int64("seed", 2024, "world and model seed")
		scale  = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-style)")
		only   = flag.String("only", "", "run only the experiment whose ID contains this substring")
		asJSON = flag.Bool("json", false, "emit the reports as JSON (for BENCH_baseline.json-style records)")
	)
	flag.Parse()

	opts := bench.Options{Seed: *seed, Scale: *scale}
	start := time.Now()
	reports, err := bench.RunAll(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmsql-bench:", err)
		os.Exit(1)
	}
	var kept []bench.Report
	for _, r := range reports {
		if *only != "" && !strings.Contains(strings.ToLower(r.ID), strings.ToLower(*only)) {
			continue
		}
		kept = append(kept, r)
	}
	if len(kept) == 0 {
		fmt.Fprintf(os.Stderr, "llmsql-bench: no experiment matches -only=%q\n", *only)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonRun{Seed: *seed, Scale: *scale, Reports: kept}); err != nil {
			fmt.Fprintln(os.Stderr, "llmsql-bench:", err)
			os.Exit(1)
		}
		return
	}
	for _, r := range kept {
		fmt.Println(r.String())
	}
	fmt.Printf("— %d experiments in %v (seed %d, scale %.2f)\n", len(kept), time.Since(start).Round(time.Millisecond), *seed, *scale)
}
