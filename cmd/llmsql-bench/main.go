// Command llmsql-bench runs the full experiment suite — every table and
// figure of the reconstructed evaluation — and prints the reports in paper
// order. The output of a full-scale run is recorded in EXPERIMENTS.md.
//
// Usage:
//
//	llmsql-bench [-seed N] [-scale F] [-only "Table 4"]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"llmsql/internal/bench"
)

func main() {
	var (
		seed  = flag.Int64("seed", 2024, "world and model seed")
		scale = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-style)")
		only  = flag.String("only", "", "run only the experiment whose ID contains this substring")
	)
	flag.Parse()

	opts := bench.Options{Seed: *seed, Scale: *scale}
	start := time.Now()
	reports, err := bench.RunAll(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "llmsql-bench:", err)
		os.Exit(1)
	}
	printed := 0
	for _, r := range reports {
		if *only != "" && !strings.Contains(strings.ToLower(r.ID), strings.ToLower(*only)) {
			continue
		}
		fmt.Println(r.String())
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "llmsql-bench: no experiment matches -only=%q\n", *only)
		os.Exit(1)
	}
	fmt.Printf("— %d experiments in %v (seed %d, scale %.2f)\n", printed, time.Since(start).Round(time.Millisecond), *seed, *scale)
}
