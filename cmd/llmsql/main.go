// Command llmsql runs SQL queries against LLM storage from the terminal.
//
// It wires a synthetic world, a simulated model at the chosen quality tier,
// and the query engine, then executes the query (or an interactive loop on
// stdin) and prints rows plus the retrieval report: prompts issued, tokens,
// simulated total and critical-path latency/$ (see -parallel and -cache)
// and — when --score is set — precision/recall/F1 against the world's
// ground truth.
//
// With -connect it becomes a client of a running llmsql-serve instead:
// queries travel over the line/JSON protocol, execute in a server-side
// session that shares the server's coalescing backend stack, and print
// with the same row/usage/scan formatting as the embedded mode.
//
// Usage:
//
//	llmsql [flags] "SELECT name, capital FROM country WHERE population > 50"
//	llmsql [flags]            # interactive: one query per line
//	llmsql -connect /tmp/llmsql.sock "SELECT ..."
//
// Flags: see -help, or -print-flags for the markdown reference.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"llmsql/internal/cliflags"
	"llmsql/internal/core"
	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/metrics"
	"llmsql/internal/plan"
	"llmsql/internal/serve"
	"llmsql/internal/sql"
	"llmsql/internal/storage"
	"llmsql/internal/world"
)

func main() {
	var (
		seed       = flag.Int64("seed", 2024, "world and model seed")
		profile    = flag.String("model", "medium", "model quality tier: small, medium, large")
		strategy   = flag.String("strategy", "full-table", "prompt strategy: full-table, key-then-attr, paged, auto (cost-based per table)")
		temp       = flag.Float64("temp", 0.7, "sampling temperature")
		rounds     = flag.Int("rounds", 8, "max sampling rounds")
		votes      = flag.Int("votes", 1, "self-consistency votes for attribute retrieval")
		batch      = flag.Int("batch", 1, "keys per batched ATTR prompt on the key-then-attr path (1 = unbatched)")
		parallel   = flag.Int("parallel", 1, "worker-pool width for concurrent model calls (1 = serial)")
		cacheCap   = flag.Int("cache", 0, "completion-cache capacity in entries (0 = off, negative = default)")
		cacheDir   = flag.String("cache-dir", "", "persistent prompt-cache directory (content-addressed, survives sessions; empty = off)")
		record     = flag.String("record", "", "record every live model completion into this trace file (replay fixture)")
		replay     = flag.String("replay", "", "serve all completions from this trace file instead of the live model")
		pushdown   = flag.Bool("pushdown", true, "verbalise pushed filters into prompts and gate key-then-attr keys on key-only predicates")
		limitPush  = flag.Bool("limit-pushdown", true, "push LIMIT hints onto scans so streaming key-then-attr retrieval stops early (identical rows, fewer prompts)")
		bindJoin   = flag.Bool("bind-join", true, "let joins pass the outer side's distinct keys into the inner key-then-attr scan (identical rows, fewer prompts)")
		tolerant   = flag.Bool("tolerant", true, "use the repairing completion parser")
		viewTTL    = flag.Int("view-ttl", 0, "warm reads a materialized view serves before going stale and falling back to live scans until REFRESH (0 = never)")
		score      = flag.Bool("score", false, "score results against the ground truth")
		explain    = flag.Bool("explain", false, "print the plan instead of executing")
		analyze    = flag.Bool("analyze", false, "execute and print the plan with per-operator row counts")
		countries  = flag.Int("countries", 120, "world size: countries")
		movies     = flag.Int("movies", 200, "world size: movies")
		connect    = flag.String("connect", "", "act as a client of llmsql-serve at this address (host:port or unix socket path) instead of embedding an engine")
		tenant     = flag.String("tenant", "", "tenant name announced to the server in -connect mode (admission quotas key on it)")
		printFlags = flag.Bool("print-flags", false, "print the flag reference as a markdown table and exit (consumed by make docs-check)")
	)
	var params paramFlags
	flag.Var(&params, "param", "bind a query parameter; repeatable. name=value binds :name, a bare value binds the next $n/? positionally. Values parse as int, float, bool or null, else text")
	var faults cliflags.FaultFlags
	faults.Register(flag.CommandLine)
	flag.Parse()

	if *printFlags {
		fmt.Print(cliflags.Markdown(flag.CommandLine))
		return
	}

	if *connect != "" {
		if *score {
			fatal(fmt.Errorf("-score needs the embedded world's ground truth and is not available in -connect mode"))
		}
		runRemote(*connect, *tenant, &params, *explain, *analyze)
		return
	}

	w := world.Generate(world.Config{
		Seed:      *seed,
		Countries: *countries,
		Movies:    *movies,
		Laureates: 100,
		Companies: 100,
	})
	noise, err := profileByName(*profile)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Temperature = *temp
	cfg.MaxRounds = *rounds
	cfg.Votes = *votes
	cfg.BatchSize = *batch
	cfg.Parallelism = *parallel
	cfg.CacheCapacity = *cacheCap
	cfg.Pushdown = *pushdown
	cfg.LimitPushdown = *limitPush
	cfg.BindJoin = *bindJoin
	cfg.Tolerant = *tolerant
	cfg.ViewTTLReads = *viewTTL
	faults.Apply(&cfg)
	cfg.Strategy, err = strategyByName(*strategy)
	if err != nil {
		fatal(err)
	}
	if *record != "" && *replay != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive (replaying reaches no live model, so there is nothing to record)"))
	}
	cfg.CacheDir = *cacheDir
	var recordTrace *llm.Trace
	if *record != "" {
		recordTrace = llm.NewTrace()
		cfg.RecordTrace = recordTrace
	}
	if *replay != "" {
		cfg.ReplayTrace, err = llm.LoadTrace(*replay)
		if err != nil {
			fatal(err)
		}
	}

	eng, err := core.Open(llm.NewSynthLM(w, noise, *seed), cfg)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	// Persist the recorded trace on every exit path below.
	saveTrace := func() {
		if recordTrace == nil {
			return
		}
		if err := recordTrace.Save(*record); err != nil {
			fmt.Fprintln(os.Stderr, "llmsql: save trace:", err)
		} else {
			fmt.Fprintf(os.Stderr, "recorded %d completions to %s\n", recordTrace.Len(), *record)
		}
	}
	defer saveTrace()
	for _, name := range w.DomainNames() {
		eng.RegisterWorldDomain(w.Domain(name))
	}

	var truthDB *storage.DB
	if *score {
		truthDB, err = world.LoadDB(w)
		if err != nil {
			fatal(err)
		}
	}

	runOne := func(query string) bool {
		if *explain {
			out, err := eng.Explain(query)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return false
			}
			fmt.Print(out)
			return true
		}
		// DDL/DML goes to the local side (hybrid queries).
		if isLocalWrite(query) {
			if err := eng.Exec(query); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return false
			}
			fmt.Println("ok")
			return true
		}
		var res *core.QueryResult
		var err error
		args := params.args()
		if *analyze {
			var analyzed string
			res, analyzed, err = eng.QueryAnalyze(query, args...)
			if err == nil {
				fmt.Print(analyzed)
			}
		} else {
			res, err = eng.Query(query, args...)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		fmt.Print(core.FormatResult(res.Result))
		printUsage(res.Usage)
		for _, s := range res.Scans {
			printScan(s)
		}
		if truthDB != nil {
			scoreQuery(truthDB, query, res)
		}
		return true
	}

	runLoop(runOne)
}

// runLoop drives runOne from the command line (one joined query) or the
// interactive prompt, shared by the embedded and -connect modes. A failed
// one-shot query exits nonzero; the interactive loop reports and carries
// on.
func runLoop(runOne func(string) bool) {
	if flag.NArg() > 0 {
		if !runOne(strings.Join(flag.Args(), " ")) {
			os.Exit(1)
		}
		return
	}

	fmt.Println("llmsql interactive — one SELECT per line, Ctrl-D to exit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("llmsql> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit") {
			return
		}
		runOne(line)
	}
}

// runRemote executes queries against a llmsql-serve instance with the same
// printed output as the embedded mode; the usage and scan lines describe
// the server-side session, so cache and coalescing hits reflect sharing
// with every other connected session.
func runRemote(addr, tenant string, params *paramFlags, explain, analyze bool) {
	c, err := serve.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	hello, err := c.Hello(tenant)
	if err != nil {
		fatal(err)
	}
	if !hello.OK {
		fatal(fmt.Errorf("server rejected session: %s", hello.Error))
	}

	runOne := func(query string) bool {
		var resp *serve.Response
		var err error
		switch {
		case explain:
			resp, err = c.Explain(query)
			if err == nil && resp.OK {
				fmt.Print(resp.Plan)
				return true
			}
		case isLocalWrite(query):
			resp, err = c.Exec(query)
			if err == nil && resp.OK {
				fmt.Println("ok")
				return true
			}
		default:
			req := serve.Request{Op: "query", SQL: query, Analyze: analyze}
			req.Args, req.Named = params.wire()
			resp, err = c.Do(req)
		}
		if err != nil {
			// Transport failure: the session is gone, so there is no point
			// continuing an interactive loop.
			fatal(err)
		}
		if !resp.OK {
			if resp.Code != "" && resp.Code != "error" {
				fmt.Fprintf(os.Stderr, "error [%s]: %s\n", resp.Code, resp.Error)
			} else {
				fmt.Fprintln(os.Stderr, "error:", resp.Error)
			}
			return false
		}
		if analyze {
			fmt.Print(resp.Plan)
		}
		res, err := serve.DecodeRows(resp.Columns, resp.Types, resp.Rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return false
		}
		fmt.Print(core.FormatResult(res))
		if resp.Usage != nil {
			printUsage(*resp.Usage)
		}
		for _, s := range resp.Scans {
			printScan(s)
		}
		return true
	}

	runLoop(runOne)
}

// isLocalWrite reports whether a statement goes through Exec — local
// row-store DDL/DML or the materialized-view lifecycle — rather than the
// query path against LLM storage.
func isLocalWrite(query string) bool {
	upper := strings.ToUpper(strings.TrimSpace(query))
	return strings.HasPrefix(upper, "CREATE") || strings.HasPrefix(upper, "INSERT") ||
		strings.HasPrefix(upper, "REFRESH") || strings.HasPrefix(upper, "DROP")
}

// printUsage prints the one-line retrieval report shared by the embedded
// and -connect modes.
func printUsage(u llm.Usage) {
	fmt.Printf("model: %d calls (%d cached), %d tokens, simulated %v total / %v critical-path / $%.4f\n",
		u.Calls, u.CachedCalls, u.TotalTokens(),
		u.SimLatency.Round(1e6), u.SimWall.Round(1e6), u.SimDollars)
}

// printScan prints one per-scan statistics line.
func printScan(s core.ScanStats) {
	if s.Materialized != "" {
		fmt.Printf("scan %s [materialized, age %d]: %d rows, 0 prompts\n",
			s.Table, s.ViewAge, s.RowsEmitted)
		return
	}
	fmt.Printf("scan %s [%s]: %d prompts, %d rounds, %d rows, %d dupes dropped, %d repairs",
		s.Table, s.Label(), s.Prompts, s.Rounds, s.RowsEmitted, s.Duplicates, s.Parse.Repairs)
	if s.BatchedPrompts > 0 {
		fmt.Printf(", %d batched (%d fallbacks)", s.BatchedPrompts, s.BatchFallbacks)
	}
	if s.KeysGated > 0 || s.KeysAttributed > 0 {
		fmt.Printf(", %d keys gated, %d attributed", s.KeysGated, s.KeysAttributed)
	}
	if s.KeysBound > 0 {
		fmt.Printf(", %d keys bound", s.KeysBound)
	}
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Printf(", cache %d/%d", s.CacheHits, s.CacheHits+s.CacheMisses)
	}
	if s.DiskHits+s.DiskMisses > 0 {
		fmt.Printf(", disk %d/%d (%dB)", s.DiskHits, s.DiskHits+s.DiskMisses, s.DiskBytes)
	}
	if s.CoalescedHits > 0 {
		fmt.Printf(", %d coalesced", s.CoalescedHits)
	}
	if s.RetriesSpent > 0 || s.KeysFailed > 0 {
		fmt.Printf(", %d retries, %d keys failed", s.RetriesSpent, s.KeysFailed)
	}
	if s.HedgesLaunched > 0 {
		fmt.Printf(", hedges %d launched/%d won", s.HedgesLaunched, s.HedgesWon)
	}
	fmt.Println()
}

// paramFlags collects repeated -param flags: `name=value` entries bind
// :name parameters, bare `value` entries bind $n/? positionally in the
// order given. The two styles cannot be mixed (the parser enforces the
// same rule inside one statement).
type paramFlags struct {
	named map[string]any
	pos   []any
}

func (p *paramFlags) String() string { return "" }

func (p *paramFlags) Set(s string) error {
	if i := strings.IndexByte(s, '='); i >= 0 {
		if len(p.pos) > 0 {
			return fmt.Errorf("cannot mix named (name=value) and positional -param flags")
		}
		if p.named == nil {
			p.named = map[string]any{}
		}
		p.named[s[:i]] = parseParamValue(s[i+1:])
		return nil
	}
	if len(p.named) > 0 {
		return fmt.Errorf("cannot mix named (name=value) and positional -param flags")
	}
	p.pos = append(p.pos, parseParamValue(s))
	return nil
}

// args renders the collected flags as Engine.Query arguments.
func (p *paramFlags) args() []any {
	if len(p.named) > 0 {
		return []any{core.NamedArgs(p.named)}
	}
	return p.pos
}

// wire renders the collected flags as serve.Request bindings.
func (p *paramFlags) wire() (args []any, named map[string]any) {
	if len(p.named) > 0 {
		return nil, p.named
	}
	return p.pos, nil
}

// parseParamValue types a flag value: int, float, bool and null literals
// bind as their SQL types, anything else binds as text.
func parseParamValue(s string) any {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	switch strings.ToLower(s) {
	case "true":
		return true
	case "false":
		return false
	case "null":
		return nil
	}
	return s
}

func scoreQuery(db *storage.DB, query string, res *core.QueryResult) {
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return
	}
	node, err := plan.Plan(sel, &exec.StorageCatalog{DB: db})
	if err != nil {
		fmt.Fprintln(os.Stderr, "score: baseline plan failed:", err)
		return
	}
	truth, err := exec.Execute(node, &exec.StorageSource{DB: db})
	if err != nil {
		fmt.Fprintln(os.Stderr, "score: baseline run failed:", err)
		return
	}
	m := metrics.Compare(res.Result.Rows, truth.Rows, metrics.Options{NumTolerance: 0.02})
	fmt.Printf("score vs ground truth: precision %.3f, recall %.3f, F1 %.3f, attr-acc %.3f, hallucinated %.1f%%\n",
		m.Precision(), m.Recall(), m.F1(), m.AttrAccuracy(), 100*m.HallucinationRate())
}

func profileByName(name string) (llm.NoiseProfile, error) {
	switch strings.ToLower(name) {
	case "small":
		return llm.ProfileSmall, nil
	case "medium":
		return llm.ProfileMedium, nil
	case "large":
		return llm.ProfileLarge, nil
	default:
		return llm.NoiseProfile{}, fmt.Errorf("unknown model tier %q (want small, medium or large)", name)
	}
}

func strategyByName(name string) (core.Strategy, error) {
	switch strings.ToLower(name) {
	case "full-table", "full":
		return core.StrategyFullTable, nil
	case "key-then-attr", "kta":
		return core.StrategyKeyThenAttr, nil
	case "paged":
		return core.StrategyPaged, nil
	case "auto":
		return core.StrategyAuto, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmsql:", err)
	os.Exit(1)
}
