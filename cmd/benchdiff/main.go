// Command benchdiff gates performance regressions: it compares a current
// `llmsql-bench -json` run against the checked-in baseline
// (BENCH_baseline.json) and fails when a watched metric regresses beyond
// the tolerance.
//
// Watched metrics are the machine-readable (CSV) columns of the efficiency
// experiments whose header names contain "calls", "tokens" or "wall" —
// call counts, token spend and simulated critical-path latency, the three
// quantities every PR is supposed to move in the right direction. Lower is
// better for all of them: a current value may be at most
// baseline*(1+tol) (plus a +2 absolute allowance so tiny counts don't trip
// on noise). Improvements never fail, but large ones are reported so the
// baseline gets regenerated (`make baseline`).
//
// Experiments present in the baseline must still exist in the current run
// (and so must their rows); brand-new experiments in the current run are
// ignored until the baseline is regenerated to include them. -require
// closes the remaining hole: the named experiments must carry watched
// metrics in BOTH runs, so regenerating the baseline (or editing the
// suite) cannot silently drop, say, the Table 11 limit sweep from the
// gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current current.json [-tol 0.15] [-require "Table 9,Table 11"]
//
// Exit status: 0 clean, 1 regression or comparison failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"llmsql/internal/bench"
)

// run mirrors cmd/llmsql-bench's -json output shape.
type run struct {
	Seed    int64          `json:"seed"`
	Scale   float64        `json:"scale"`
	Reports []bench.Report `json:"reports"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline run (llmsql-bench -json output)")
		currentPath  = flag.String("current", "", "current run to compare ('-' or empty reads stdin)")
		tol          = flag.Float64("tol", 0.15, "allowed relative regression per watched metric")
		require      = flag.String("require", "", "comma-separated experiment IDs that must carry watched metrics in both runs (e.g. \"Table 9,Table 11\")")
	)
	flag.Parse()

	base, err := loadRun(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := loadRun(*currentPath)
	if err != nil {
		fatal(err)
	}
	if base.Seed != cur.Seed || base.Scale != cur.Scale {
		fatal(fmt.Errorf("runs are not comparable: baseline seed=%d scale=%g vs current seed=%d scale=%g",
			base.Seed, base.Scale, cur.Seed, cur.Scale))
	}

	var regressions, improvements []string
	checked := 0
	checkedByID := map[string]int{}
	curByID := map[string]bench.Report{}
	for _, r := range cur.Reports {
		curByID[r.ID] = r
	}
	for _, br := range base.Reports {
		if br.CSV == "" {
			continue
		}
		cr, ok := curByID[br.ID]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: experiment missing from current run", br.ID))
			continue
		}
		regs, imps, n, err := compareCSV(br.ID, br.CSV, cr.CSV, *tol)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", br.ID, err))
		}
		regressions = append(regressions, regs...)
		improvements = append(improvements, imps...)
		checked += n
		checkedByID[br.ID] = n
	}
	// Required experiments must actually contribute watched metrics to the
	// gate: a baseline regenerated without one, a dropped CSV series, or a
	// header rename that no longer matches the watched() patterns would
	// otherwise silently shrink the comparison.
	if *require != "" {
		for _, id := range strings.Split(*require, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if checkedByID[id] == 0 {
				regressions = append(regressions, fmt.Sprintf("%s: required experiment contributed no watched metrics to the gate", id))
			}
		}
	}

	for _, s := range improvements {
		fmt.Printf("note: %s (consider `make baseline`)\n", s)
	}
	if len(regressions) > 0 {
		fmt.Printf("benchdiff: %d regression(s) against %s (tolerance %.0f%%):\n", len(regressions), *baselinePath, 100**tol)
		for _, s := range regressions {
			fmt.Println("  " + s)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d watched metrics within %.0f%% of %s\n", checked, 100**tol, *baselinePath)
}

// compareCSV diffs the watched columns of one experiment's CSV series.
// Rows are matched by their first-column label so reordering or appended
// rows never misalign the comparison.
func compareCSV(id, baseCSV, curCSV string, tol float64) (regressions, improvements []string, checked int, err error) {
	baseHdr, baseRows, err := parseCSV(baseCSV)
	if err != nil {
		return nil, nil, 0, err
	}
	curHdr, curRows, err := parseCSV(curCSV)
	if err != nil {
		return nil, nil, 0, err
	}
	curCol := map[string]int{}
	for i, h := range curHdr {
		curCol[h] = i
	}
	// Walk rows in sorted-label order so the report lines (and the exit
	// path taken on ties) are identical across runs of the same inputs.
	labels := make([]string, 0, len(baseRows))
	for label := range baseRows {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for bi, col := range baseHdr {
		if !watched(col) {
			continue
		}
		ci, ok := curCol[col]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: column %q missing from current run", id, col))
			continue
		}
		for _, label := range labels {
			baseRow := baseRows[label]
			curRow, ok := curRows[label]
			if !ok {
				regressions = append(regressions, fmt.Sprintf("%s [%s]: row missing from current run", id, label))
				continue
			}
			if bi >= len(baseRow) || ci >= len(curRow) {
				continue
			}
			baseVal, bok := parseMetric(baseRow[bi])
			curVal, cok := parseMetric(curRow[ci])
			if !bok || !cok {
				continue // non-numeric cell (labels, booleans, blanks)
			}
			checked++
			// Lower is better; +2 absolute slack keeps tiny counts from
			// tripping on simulation noise.
			if curVal > baseVal*(1+tol)+2 {
				regressions = append(regressions, fmt.Sprintf("%s [%s] %s: %s -> %s (+%.0f%%)",
					id, label, col, baseRow[bi], curRow[ci], 100*(curVal/baseVal-1)))
			} else if baseVal > 0 && curVal < baseVal*(1-tol)-2 {
				improvements = append(improvements, fmt.Sprintf("%s [%s] %s improved: %s -> %s",
					id, label, col, baseRow[bi], curRow[ci]))
			}
		}
	}
	return regressions, improvements, checked, nil
}

// watched reports whether a CSV column participates in the perf gate.
// "allocs" columns gate front-end allocation counts (deterministic, unlike
// ns/op, which stays out of the gate because it varies across machines).
func watched(col string) bool {
	c := strings.ToLower(col)
	return strings.Contains(c, "calls") || strings.Contains(c, "tokens") ||
		strings.Contains(c, "wall") || strings.Contains(c, "allocs")
}

// parseCSV splits a report's CSV series into its header and rows keyed by
// first-column label.
func parseCSV(s string) ([]string, map[string][]string, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 2 {
		return nil, nil, fmt.Errorf("CSV series has no data rows")
	}
	header := strings.Split(lines[0], ",")
	rows := make(map[string][]string, len(lines)-1)
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) == 0 || strings.TrimSpace(fields[0]) == "" {
			continue
		}
		rows[strings.TrimSpace(fields[0])] = fields
	}
	return header, rows, nil
}

// parseMetric reads a cell as a plain number or a Go duration (seconds).
func parseMetric(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, true
	}
	if d, err := time.ParseDuration(s); err == nil {
		return d.Seconds(), true
	}
	return 0, false
}

func loadRun(path string) (run, error) {
	var r run
	var data []byte
	var err error
	if path == "" || path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
