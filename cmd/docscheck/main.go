// Command docscheck is the documentation gate behind `make docs-check`.
//
// It enforces two invariants the repo's docs depend on:
//
//   - godoc coverage: every package (the root llmsql facade and everything
//     under internal/) carries a package comment, and the exported
//     identifiers of the API-surface packages (core, llm, plan, storage,
//     exec) all carry doc comments — types, functions and methods alike.
//
//   - README flag tables: the markdown tables committed inside
//     <!-- flags:NAME --> ... <!-- /flags:NAME --> markers must be
//     byte-identical to the output of the matching binary's -print-flags
//     mode, so documented flags can never drift from the real ones. The
//     Makefile regenerates the live output and passes it in via -flags.
//
// Usage:
//
//	docscheck [-root DIR] [-readme README.md -flags name=file,name=file]
//
// Exit status is non-zero with one line per violation.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// apiPackages are the packages whose exported identifiers must all carry
// doc comments (the rest only need package comments).
var apiPackages = map[string]bool{"core": true, "llm": true, "plan": true, "storage": true, "exec": true}

func main() {
	var (
		root      = flag.String("root", ".", "repository root to lint")
		readme    = flag.String("readme", "", "README file whose committed flag tables are verified (empty = skip)")
		flagFiles = flag.String("flags", "", "comma-separated name=file pairs: live -print-flags output per binary, diffed against the README's <!-- flags:name --> section")
	)
	flag.Parse()

	var problems []string
	problems = append(problems, lintPackages(*root)...)
	if *readme != "" {
		problems = append(problems, checkFlagTables(*readme, *flagFiles)...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: OK")
}

// lintPackages checks the root package and every package under internal/.
func lintPackages(root string) []string {
	dirs := []string{root}
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return []string{fmt.Sprintf("read internal/: %v", err)}
	}
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(root, "internal", e.Name()))
		}
	}

	var problems []string
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") || name == "main" && dir == root {
				continue
			}
			problems = append(problems, lintPackage(fset, dir, name, pkg)...)
		}
	}
	sort.Strings(problems)
	return problems
}

// lintPackage checks one parsed package: a package comment always, and
// full exported-identifier coverage for the API-surface packages.
func lintPackage(fset *token.FileSet, dir, name string, pkg *ast.Package) []string {
	var problems []string
	hasDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasDoc = true
		}
	}
	if !hasDoc {
		problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, name))
	}
	if !apiPackages[name] {
		return problems
	}
	filenames := make([]string, 0, len(pkg.Files))
	for fname := range pkg.Files {
		filenames = append(filenames, fname)
	}
	sort.Strings(filenames)
	for _, fname := range filenames {
		for _, decl := range pkg.Files[fname].Decls {
			problems = append(problems, lintDecl(fset, decl)...)
		}
	}
	return problems
}

// lintDecl reports exported identifiers of one top-level declaration that
// lack doc comments.
func lintDecl(fset *token.FileSet, decl ast.Decl) []string {
	var problems []string
	at := func(pos token.Pos) string {
		p := fset.Position(pos)
		return fmt.Sprintf("%s:%d", p.Filename, p.Line)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if recv := receiverType(d); recv != "" {
			if !ast.IsExported(recv) {
				return nil // method on an unexported type
			}
			return []string{fmt.Sprintf("%s: method %s.%s has no doc comment", at(d.Pos()), recv, d.Name.Name)}
		}
		return []string{fmt.Sprintf("%s: func %s has no doc comment", at(d.Pos()), d.Name.Name)}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					problems = append(problems, fmt.Sprintf("%s: type %s has no doc comment", at(s.Pos()), s.Name.Name))
				}
			case *ast.ValueSpec:
				// A doc comment on the grouped decl covers every const/var
				// inside it (the common iota-block idiom).
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						problems = append(problems, fmt.Sprintf("%s: %s has no doc comment", at(n.Pos()), n.Name))
					}
				}
			}
		}
	}
	return problems
}

// receiverType names a method's receiver base type ("" for plain funcs).
func receiverType(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return ""
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// checkFlagTables verifies the README's committed flag tables against the
// live -print-flags output files.
func checkFlagTables(readmePath, pairs string) []string {
	readme, err := os.ReadFile(readmePath)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	for _, pair := range strings.Split(pairs, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, file, ok := strings.Cut(pair, "=")
		if !ok {
			problems = append(problems, fmt.Sprintf("-flags entry %q is not name=file", pair))
			continue
		}
		live, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		committed, err := markedSection(string(readme), name)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", readmePath, err))
			continue
		}
		if strings.TrimSpace(committed) != strings.TrimSpace(string(live)) {
			problems = append(problems, fmt.Sprintf(
				"%s: flag table %q is stale — regenerate with `go run ./cmd/%s -print-flags` and paste it between the <!-- flags:%s --> markers",
				readmePath, name, name, name))
		}
	}
	return problems
}

// markedSection extracts the text between <!-- flags:name --> and
// <!-- /flags:name --> markers.
func markedSection(text, name string) (string, error) {
	open := fmt.Sprintf("<!-- flags:%s -->", name)
	close := fmt.Sprintf("<!-- /flags:%s -->", name)
	_, rest, ok := strings.Cut(text, open)
	if !ok {
		return "", fmt.Errorf("marker %s not found", open)
	}
	section, _, ok := strings.Cut(rest, close)
	if !ok {
		return "", fmt.Errorf("marker %s not found", close)
	}
	return section, nil
}
