// Command llmsql-serve runs the query engine as a long-lived server.
//
// It builds one core.EngineGroup — a shared coalescing backend stack over
// the simulated model — and serves the line/JSON protocol on a TCP address
// or unix socket. Every connection gets its own session (engine, prepared
// statements, named-parameter defaults, per-session billing) while all
// sessions share the request coalescer, the optional disk cache and the
// local row store, so concurrent identical scans cost one live model
// fan-out. Admission control bounds global concurrency with a wait queue
// and enforces per-tenant concurrency and token budgets.
//
// On SIGINT/SIGTERM the server drains gracefully: listeners stop
// accepting, idle sessions close immediately, and in-flight requests
// finish and deliver their response before the connection closes (up to
// -drain-timeout).
//
// Usage:
//
//	llmsql-serve -listen 127.0.0.1:7878
//	llmsql-serve -listen /tmp/llmsql.sock -cache-dir /var/cache/llmsql
//
// Clients: `llmsql -connect <addr>` or any line/JSON speaker (see
// internal/serve).
//
// Flags: see -help, or -print-flags for the markdown reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"llmsql/internal/cliflags"
	"llmsql/internal/core"
	"llmsql/internal/llm"
	"llmsql/internal/serve"
	"llmsql/internal/world"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:7878", "listen address: host:port for TCP, or a unix socket path")
		seed       = flag.Int64("seed", 2024, "world and model seed")
		profile    = flag.String("model", "medium", "model quality tier: small, medium, large")
		strategy   = flag.String("strategy", "full-table", "prompt strategy: full-table, key-then-attr, paged, auto (cost-based per table)")
		temp       = flag.Float64("temp", 0.7, "sampling temperature")
		rounds     = flag.Int("rounds", 8, "max sampling rounds")
		votes      = flag.Int("votes", 1, "self-consistency votes for attribute retrieval")
		batch      = flag.Int("batch", 1, "keys per batched ATTR prompt on the key-then-attr path (1 = unbatched)")
		parallel   = flag.Int("parallel", 1, "worker-pool width for concurrent model calls per session (1 = serial)")
		cacheCap   = flag.Int("cache", 0, "per-session completion-cache capacity in entries (0 = off, negative = default)")
		cacheDir   = flag.String("cache-dir", "", "shared persistent prompt-cache directory (content-addressed; empty = off)")
		coalesce   = flag.Int("coalesce-memo", 0, "completed-results memo capacity of the shared request coalescer (0 = default, negative = in-flight coalescing only)")
		record     = flag.String("record", "", "record every live model completion into this trace file on shutdown (replay fixture)")
		replay     = flag.String("replay", "", "serve all completions from this trace file instead of the live model")
		pushdown   = flag.Bool("pushdown", true, "verbalise pushed filters into prompts and gate key-then-attr keys on key-only predicates")
		limitPush  = flag.Bool("limit-pushdown", true, "push LIMIT hints onto scans so streaming key-then-attr retrieval stops early")
		bindJoin   = flag.Bool("bind-join", true, "let joins pass the outer side's distinct keys into the inner key-then-attr scan")
		tolerant   = flag.Bool("tolerant", true, "use the repairing completion parser")
		viewTTL    = flag.Int("view-ttl", 0, "warm reads a session's materialized view serves before going stale and falling back to live scans until REFRESH (0 = never)")
		countries  = flag.Int("countries", 120, "world size: countries")
		movies     = flag.Int("movies", 200, "world size: movies")
		maxConc    = flag.Int("max-concurrent", 0, "global concurrent-query limit (0 = unlimited)")
		maxQueue   = flag.Int("max-queue", 0, "queries allowed to wait for a slot when the global limit is reached (0 = reject immediately)")
		queueWait  = flag.Duration("queue-timeout", serve.DefaultQueueTimeout, "longest a query waits in the admission queue before rejection")
		tenantConc = flag.Int("tenant-concurrent", 0, "per-tenant concurrent-query limit (0 = unlimited; exceeding it rejects immediately, never queues)")
		tenantTok  = flag.Int("tenant-tokens", 0, "per-tenant total token budget; queries from a tenant over budget are rejected (0 = unlimited)")
		idle       = flag.Duration("idle-timeout", 0, "close sessions idle for this long (0 = never)")
		writeWait  = flag.Duration("write-timeout", serve.DefaultWriteTimeout, "deadline for writing one response to a client (<=0 = no deadline)")
		drainWait  = flag.Duration("drain-timeout", 30*time.Second, "longest to wait for in-flight requests on shutdown before closing connections forcibly")
		quiet      = flag.Bool("quiet", false, "suppress per-session log lines")
		printFlags = flag.Bool("print-flags", false, "print the flag reference as a markdown table and exit (consumed by make docs-check)")
	)
	var faults cliflags.FaultFlags
	faults.Register(flag.CommandLine)
	flag.Parse()

	if *printFlags {
		fmt.Print(cliflags.Markdown(flag.CommandLine))
		return
	}

	w := world.Generate(world.Config{
		Seed:      *seed,
		Countries: *countries,
		Movies:    *movies,
		Laureates: 100,
		Companies: 100,
	})
	noise, err := profileByName(*profile)
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Temperature = *temp
	cfg.MaxRounds = *rounds
	cfg.Votes = *votes
	cfg.BatchSize = *batch
	cfg.Parallelism = *parallel
	cfg.CacheCapacity = *cacheCap
	cfg.CacheDir = *cacheDir
	cfg.CoalesceCapacity = *coalesce
	cfg.Pushdown = *pushdown
	cfg.LimitPushdown = *limitPush
	cfg.BindJoin = *bindJoin
	cfg.Tolerant = *tolerant
	cfg.ViewTTLReads = *viewTTL
	faults.Apply(&cfg)
	cfg.Strategy, err = strategyByName(*strategy)
	if err != nil {
		fatal(err)
	}
	if *record != "" && *replay != "" {
		fatal(fmt.Errorf("-record and -replay are mutually exclusive"))
	}
	var recordTrace *llm.Trace
	if *record != "" {
		recordTrace = llm.NewTrace()
		cfg.RecordTrace = recordTrace
	}
	if *replay != "" {
		cfg.ReplayTrace, err = llm.LoadTrace(*replay)
		if err != nil {
			fatal(err)
		}
	}

	group, err := core.NewEngineGroup(llm.NewSynthLM(w, noise, *seed), cfg)
	if err != nil {
		fatal(err)
	}
	defer group.Close()
	for _, name := range w.DomainNames() {
		group.RegisterWorldDomain(w.Domain(name))
	}

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	srv := serve.NewServer(serve.Config{
		Group: group,
		Admission: serve.AdmissionConfig{
			MaxConcurrent:    *maxConc,
			MaxQueue:         *maxQueue,
			QueueTimeout:     *queueWait,
			TenantConcurrent: *tenantConc,
			TenantTokens:     *tenantTok,
		},
		IdleTimeout:  *idle,
		WriteTimeout: writeTimeout(*writeWait),
		Logf:         logf,
	})

	network, target := serve.SplitAddr(*listen)
	if network == "unix" {
		// A previous unclean exit leaves the socket file behind; rebinding
		// requires removing it first.
		os.Remove(target)
	}
	ln, err := net.Listen(network, target)
	if err != nil {
		fatal(err)
	}
	log.Printf("llmsql-serve: listening on %s %s (model %s, strategy %s)", network, target, *profile, *strategy)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil {
			fatal(err)
		}
	case s := <-sig:
		log.Printf("llmsql-serve: %v — draining (timeout %v)", s, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("llmsql-serve: drain incomplete: %v", err)
		}
	}
	if network == "unix" {
		os.Remove(target)
	}

	st := srv.Stats()
	log.Printf("llmsql-serve: served %d sessions, %d queries (%d errors); coalescer: %d live calls, %d coalesced hits",
		st.TotalSessions, st.Queries, st.Errors, st.Group.Coalescer.LiveCalls, st.Group.Coalescer.Hits())
	if recordTrace != nil {
		if err := recordTrace.Save(*record); err != nil {
			log.Printf("llmsql-serve: save trace: %v", err)
		} else {
			log.Printf("llmsql-serve: recorded %d completions to %s", recordTrace.Len(), *record)
		}
	}
}

func profileByName(name string) (llm.NoiseProfile, error) {
	switch strings.ToLower(name) {
	case "small":
		return llm.ProfileSmall, nil
	case "medium":
		return llm.ProfileMedium, nil
	case "large":
		return llm.ProfileLarge, nil
	default:
		return llm.NoiseProfile{}, fmt.Errorf("unknown model tier %q (want small, medium or large)", name)
	}
}

func strategyByName(name string) (core.Strategy, error) {
	switch strings.ToLower(name) {
	case "full-table", "full":
		return core.StrategyFullTable, nil
	case "key-then-attr", "kta":
		return core.StrategyKeyThenAttr, nil
	case "paged":
		return core.StrategyPaged, nil
	case "auto":
		return core.StrategyAuto, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}

// writeTimeout maps the flag's "<=0 disables" convention onto
// serve.Config's "0 selects the default, negative disables".
func writeTimeout(d time.Duration) time.Duration {
	if d <= 0 {
		return -1
	}
	return d
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "llmsql-serve:", err)
	os.Exit(1)
}
