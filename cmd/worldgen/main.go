// Command worldgen dumps the synthetic world's ground-truth relations as
// CSV files, one per domain, for inspection or for loading into other
// systems.
//
// Usage:
//
//	worldgen [-seed N] [-countries N] [-movies N] [-laureates N] [-companies N] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"llmsql/internal/world"
)

func main() {
	var (
		seed      = flag.Int64("seed", 2024, "world seed")
		countries = flag.Int("countries", 180, "number of countries")
		movies    = flag.Int("movies", 400, "number of movies")
		laureates = flag.Int("laureates", 250, "number of laureates")
		companies = flag.Int("companies", 300, "number of companies")
		out       = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	w := world.Generate(world.Config{
		Seed:      *seed,
		Countries: *countries,
		Movies:    *movies,
		Laureates: *laureates,
		Companies: *companies,
	})
	db, err := world.LoadDB(w)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range w.DomainNames() {
		tbl, err := db.Table(name)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := tbl.ExportCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, tbl.RowCount())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "worldgen:", err)
	os.Exit(1)
}
