GO ?= go
# bench-check writes the current run's JSON here; empty (the default) means
# a per-run temp file that is cleaned up afterwards, so parallel local runs
# never clobber each other. CI sets it to a workspace path to upload the
# JSON as an artifact when the gate fails.
BENCH_CURRENT ?=
BENCH_REQUIRE := Table 9,Table 10,Table 11,Table 12,Table 13,Table 14,Table 15,Table 16,Figure 8,Frontend
REPLAY_FIXTURE := testdata/replay/bench_suite.json
REPLAY_SCALE := 0.25
REPLAY_ONLY := Table 9,Table 10,Table 11,Table 12,Table 13,Table 14,Table 16
# chaos-check runs the replayed efficiency suite with seeded fault
# injection on top (the chaos layer sits above the trace layer, so the two
# compose): each pinned seed must produce byte-identical output across two
# runs (fault streams are keyed on fingerprints, not timing), and the suite
# must complete — zero failed queries — because retries and PartialResults
# absorb every injected fault.
CHAOS_SEEDS := 7 1337 99991
CHAOS_FLAGS := -scale $(REPLAY_SCALE) -replay $(REPLAY_FIXTURE) -only "$(REPLAY_ONLY)" -chaos-error 0.10 -chaos-ratelimit 0.05 -chaos-spike 0.2 -hedge-after 1s -partial-results -json

# Single source of truth for the staticcheck pin; CI installs the same
# version via `make staticcheck-install`.
STATICCHECK_VERSION := 2024.1.1

.PHONY: check lint fmt vet llmsqlvet build test race staticcheck staticcheck-install bench baseline bench-check replay-check replay-fixture chaos-check fuzz docs-check

## check: everything the CI lint+test jobs run
check: fmt vet llmsqlvet build race docs-check

## lint: the static gates only (no tests)
lint: fmt vet llmsqlvet

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

## llmsqlvet: the project-invariant analyzers (mapiter, walltime, lockheld, errwrap)
llmsqlvet:
	$(GO) run ./cmd/llmsqlvet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## staticcheck: lint with staticcheck (pinned via `make staticcheck-install`)
staticcheck:
	staticcheck ./...

## staticcheck-install: install the pinned staticcheck version (what CI runs)
staticcheck-install:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

## bench: full-scale experiment suite to stdout
bench:
	$(GO) run ./cmd/llmsql-bench

## baseline: regenerate the checked-in perf baseline
baseline:
	$(GO) run ./cmd/llmsql-bench -json > BENCH_baseline.json

## bench-check: run the suite and fail on call/token/wall-latency regressions vs BENCH_baseline.json
bench-check:
	@current="$(BENCH_CURRENT)"; cleanup=""; \
	if [ -z "$$current" ]; then \
		current="$$(mktemp -t llmsql_bench_current.XXXXXX)"; cleanup="$$current"; \
	fi; \
	status=0; \
	$(GO) run ./cmd/llmsql-bench -json > "$$current" || status=$$?; \
	if [ "$$status" -eq 0 ]; then \
		$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current "$$current" \
			-require "$(BENCH_REQUIRE)" || status=$$?; \
	fi; \
	[ -z "$$cleanup" ] || rm -f "$$cleanup"; \
	exit $$status

## replay-check: run the efficiency suite twice from the checked-in replay fixture and fail on any byte difference (what the CI replay-determinism job runs)
replay-check:
	@a="$$(mktemp -t llmsql_replay_a.XXXXXX)"; b="$$(mktemp -t llmsql_replay_b.XXXXXX)"; status=0; \
	$(GO) run ./cmd/llmsql-bench -scale $(REPLAY_SCALE) -replay $(REPLAY_FIXTURE) -only "$(REPLAY_ONLY)" -json > "$$a" || status=$$?; \
	if [ "$$status" -eq 0 ]; then \
		$(GO) run ./cmd/llmsql-bench -scale $(REPLAY_SCALE) -replay $(REPLAY_FIXTURE) -only "$(REPLAY_ONLY)" -json > "$$b" || status=$$?; \
	fi; \
	if [ "$$status" -eq 0 ]; then \
		if cmp -s "$$a" "$$b"; then \
			echo "replay-check: OK — two replayed runs are byte-identical"; \
		else \
			echo "replay-check: FAIL — replayed runs differ:"; diff "$$a" "$$b" | head -40; status=1; \
		fi; \
	fi; \
	rm -f "$$a" "$$b"; exit $$status

## chaos-check: run the full suite under seeded fault injection for each pinned seed, twice, and fail if any run errors or the two runs differ (fault-recovery determinism gate)
chaos-check:
	@status=0; \
	for seed in $(CHAOS_SEEDS); do \
		a="$$(mktemp -t llmsql_chaos_a.XXXXXX)"; b="$$(mktemp -t llmsql_chaos_b.XXXXXX)"; \
		$(GO) run ./cmd/llmsql-bench $(CHAOS_FLAGS) -chaos-seed $$seed > "$$a" || status=$$?; \
		if [ "$$status" -eq 0 ]; then \
			$(GO) run ./cmd/llmsql-bench $(CHAOS_FLAGS) -chaos-seed $$seed > "$$b" || status=$$?; \
		fi; \
		if [ "$$status" -eq 0 ]; then \
			if cmp -s "$$a" "$$b"; then \
				echo "chaos-check: seed $$seed OK — two chaos runs are byte-identical"; \
			else \
				echo "chaos-check: seed $$seed FAIL — chaos runs differ:"; diff "$$a" "$$b" | head -40; status=1; \
			fi; \
		fi; \
		rm -f "$$a" "$$b"; \
		[ "$$status" -eq 0 ] || break; \
	done; exit $$status

## replay-fixture: re-record the checked-in replay fixture (after changing prompts, the engine, or the covered experiments)
replay-fixture:
	$(GO) run ./cmd/llmsql-bench -scale $(REPLAY_SCALE) -only "$(REPLAY_ONLY)" -record $(REPLAY_FIXTURE) -json > /dev/null

## docs-check: godoc-coverage lint plus README flag tables verified against each binary's -print-flags output
docs-check:
	@tmp="$$(mktemp -d -t llmsql_docs.XXXXXX)"; status=0; \
	$(GO) run ./cmd/llmsql -print-flags > "$$tmp/llmsql.md" && \
	$(GO) run ./cmd/llmsql-serve -print-flags > "$$tmp/llmsql-serve.md" && \
	$(GO) run ./cmd/llmsql-bench -print-flags > "$$tmp/llmsql-bench.md" && \
	$(GO) run ./cmd/docscheck -readme README.md \
		-flags "llmsql=$$tmp/llmsql.md,llmsql-serve=$$tmp/llmsql-serve.md,llmsql-bench=$$tmp/llmsql-bench.md" \
		|| status=$$?; \
	rm -rf "$$tmp"; exit $$status

## fuzz: 30s smoke of each native fuzz target (the weekly scheduled CI run uses FUZZTIME=10m)
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/sql -run '^$$' -fuzz '^FuzzParseExpr$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sql -run '^$$' -fuzz '^FuzzParseSelect$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sql -run '^$$' -fuzz '^FuzzParseParams$$' -fuzztime $(FUZZTIME)
