GO ?= go

.PHONY: check fmt vet build test race bench baseline

## check: everything CI runs
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: full-scale experiment suite to stdout
bench:
	$(GO) run ./cmd/llmsql-bench

## baseline: regenerate the checked-in perf baseline
baseline:
	$(GO) run ./cmd/llmsql-bench -json > BENCH_baseline.json
