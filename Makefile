GO ?= go
BENCH_CURRENT ?= /tmp/llmsql_bench_current.json

.PHONY: check fmt vet build test race staticcheck bench baseline bench-check fuzz

## check: everything the CI lint+test jobs run
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## staticcheck: lint with staticcheck (install: go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)
staticcheck:
	staticcheck ./...

## bench: full-scale experiment suite to stdout
bench:
	$(GO) run ./cmd/llmsql-bench

## baseline: regenerate the checked-in perf baseline
baseline:
	$(GO) run ./cmd/llmsql-bench -json > BENCH_baseline.json

## bench-check: run the suite and fail on call/token/wall-latency regressions vs BENCH_baseline.json
bench-check:
	$(GO) run ./cmd/llmsql-bench -json > $(BENCH_CURRENT)
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current $(BENCH_CURRENT) \
		-require "Table 9,Table 10,Table 11,Table 12,Figure 8"

## fuzz: 30s smoke of each native fuzz target (same as the CI fuzz job)
fuzz:
	$(GO) test ./internal/sql -run '^$$' -fuzz '^FuzzParseExpr$$' -fuzztime 30s
	$(GO) test ./internal/sql -run '^$$' -fuzz '^FuzzParseSelect$$' -fuzztime 30s
