package llmsql

// This file regenerates every table and figure of the (reconstructed)
// evaluation as Go benchmarks; see DESIGN.md §4 for the experiment index.
// Each benchmark runs the corresponding experiment at a reduced scale per
// iteration and reports the headline quality metric alongside the standard
// time/alloc columns. `cmd/llmsql-bench` runs the same experiments at full
// scale with full table output.

import (
	"strconv"
	"strings"
	"testing"

	"llmsql/internal/bench"
)

// benchOptions keeps per-iteration work bounded; full-scale numbers come
// from cmd/llmsql-bench.
func benchOptions() bench.Options { return bench.Options{Seed: 2024, Scale: 0.25} }

// runExperiment executes an experiment b.N times and reports metric
// (extracted from the first data row's named column) when found.
func runExperiment(b *testing.B, run func(bench.Options) (bench.Report, error), metricCol string, metricName string) {
	b.Helper()
	var last bench.Report
	for i := 0; i < b.N; i++ {
		r, err := run(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if v, ok := extractMetric(last.Body, metricCol); ok {
		b.ReportMetric(v, metricName)
	}
}

// extractMetric finds the named column in the header and returns its value
// from the first data row.
func extractMetric(body, col string) (float64, bool) {
	lines := strings.Split(body, "\n")
	if len(lines) < 3 {
		return 0, false
	}
	header := strings.Split(lines[0], "  ")
	colIdx := -1
	cleaned := make([]string, 0, len(header))
	for _, h := range header {
		h = strings.TrimSpace(h)
		if h != "" {
			cleaned = append(cleaned, h)
		}
	}
	for i, h := range cleaned {
		if h == col {
			colIdx = i
		}
	}
	if colIdx < 0 {
		return 0, false
	}
	for _, line := range lines[2:] {
		fields := strings.Fields(line)
		if len(fields) <= colIdx {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSuffix(fields[colIdx], "%"), 64)
		if err != nil {
			continue
		}
		return f, true
	}
	return 0, false
}

func BenchmarkTable2RetrievalQuality(b *testing.B) {
	runExperiment(b, bench.Table2RetrievalQuality, "F1", "F1")
}

func BenchmarkTable3QueryClasses(b *testing.B) {
	runExperiment(b, bench.Table3QueryClasses, "mean F1", "meanF1")
}

func BenchmarkTable4Strategies(b *testing.B) {
	runExperiment(b, bench.Table4Strategies, "F1", "F1")
}

func BenchmarkTable5Voting(b *testing.B) {
	runExperiment(b, bench.Table5Voting, "attr-acc", "attrAcc")
}

func BenchmarkTable6VsBaseline(b *testing.B) {
	runExperiment(b, bench.Table6VsBaseline, "LLM tokens", "tokens")
}

func BenchmarkTable7Ablations(b *testing.B) {
	runExperiment(b, bench.Table7Ablations, "F1", "F1")
}

func BenchmarkFigure4Convergence(b *testing.B) {
	runExperiment(b, bench.Figure4Convergence, "recall(country)", "recall")
}

func BenchmarkFigure5ModelQuality(b *testing.B) {
	runExperiment(b, bench.Figure5ModelQuality, "F1 (temp 0)", "F1temp0")
}

func BenchmarkFigure6Popularity(b *testing.B) {
	runExperiment(b, bench.Figure6Popularity, "recall(country)", "headRecall")
}

func BenchmarkFigure7Crossover(b *testing.B) {
	runExperiment(b, bench.Figure7Crossover, "LLM tokens", "tokens")
}

func BenchmarkTable8Confidence(b *testing.B) {
	runExperiment(b, bench.Table8Confidence, "precision", "precision")
}

func BenchmarkTable10Batching(b *testing.B) {
	runExperiment(b, bench.Table10Batching, "calls", "calls")
}
