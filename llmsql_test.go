package llmsql

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the facade exactly as the README does.
func TestPublicAPIQuickstart(t *testing.T) {
	w := GenerateWorld(WorldConfig{Seed: 1, Countries: 30, Movies: 30, Laureates: 10, Companies: 10})
	model := NewSynthLM(w, ProfileLarge, 1)
	eng := New(model, DefaultConfig())
	for _, name := range w.DomainNames() {
		eng.RegisterWorldDomain(w.Domain(name))
	}
	res, err := eng.Query(`SELECT name, capital FROM country WHERE population > 10 ORDER BY name LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) == 0 {
		t.Fatal("no rows")
	}
	out := FormatResult(res.Result)
	if !strings.Contains(out, "name") {
		t.Fatalf("format: %s", out)
	}
	if res.Usage.TotalTokens() == 0 {
		t.Fatal("no usage")
	}
}

// TestPublicAPICustomVirtualTable registers a hand-declared virtual table.
func TestPublicAPICustomVirtualTable(t *testing.T) {
	w := GenerateWorld(WorldConfig{Seed: 2, Countries: 20, Movies: 10, Laureates: 5, Companies: 5})
	model := NewSynthLM(w, ProfileLarge, 2)
	eng := New(model, DefaultConfig())
	// Declare only a subset of the world's country columns.
	eng.RegisterTable(VirtualTable{
		Name:        "country",
		Description: "a sovereign country of the world",
		Schema: NewSchema(
			Column{Name: "name", Type: TypeText, Key: true, Desc: "the country's name"},
			Column{Name: "population", Type: TypeInt, Desc: "population in millions of inhabitants"},
		),
	})
	res, err := eng.Query("SELECT name FROM country WHERE population > 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Schema.Len() != 1 {
		t.Fatalf("schema: %v", res.Result.Schema)
	}
}

// TestPublicAPIHybrid joins a local table with a virtual one.
func TestPublicAPIHybrid(t *testing.T) {
	w := GenerateWorld(WorldConfig{Seed: 3, Countries: 20, Movies: 10, Laureates: 5, Companies: 5})
	eng := New(NewSynthLM(w, ProfileLarge, 3), DefaultConfig())
	eng.RegisterWorldDomain(w.Domain("country"))

	local := NewDB()
	tbl, err := local.CreateTable("notes", NewSchema(
		Column{Name: "country_name", Type: TypeText, Key: true},
		Column{Name: "note", Type: TypeText},
	))
	if err != nil {
		t.Fatal(err)
	}
	top := w.Domain("country").TopKeys(2)
	for _, k := range top {
		if err := tbl.Insert(Row{Text(k), Text("visit")}); err != nil {
			t.Fatal(err)
		}
	}
	eng.AttachLocal(local)

	res, err := eng.Query(`SELECT n.country_name, c.capital, n.note FROM notes n JOIN country c ON c.name = n.country_name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) == 0 {
		t.Fatal("hybrid join empty")
	}
}
