// Package llmsql is the public facade of the LLM-as-storage SQL engine: a
// query processor that executes ordinary SQL against virtual tables whose
// tuples are retrieved by prompting a large language model, with classical
// relational operators (joins, aggregation, ordering) running on top.
//
// Quick start:
//
//	w := llmsql.GenerateWorld(llmsql.WorldConfig{Seed: 1})
//	model := llmsql.NewSynthLM(w, llmsql.ProfileMedium, 1)
//	eng := llmsql.New(model, llmsql.DefaultConfig())
//	for _, name := range w.DomainNames() {
//		eng.RegisterWorldDomain(w.Domain(name))
//	}
//	res, err := eng.Query(`SELECT name, capital FROM country WHERE population > 50`)
//
// Scans can fan out across a bounded worker pool (Config.Parallelism) and
// be fronted by a bounded LRU completion cache (Config.CacheCapacity);
// result rows are byte-identical to the serial path (merge order is
// deterministic, and speculatively prefetched rounds the convergence rule
// discards are paid for in Usage but never parsed — see Config.Parallelism
// for the fine print on stats), and QueryResult.Usage reports both total
// accumulated and critical-path simulated latency.
//
// StrategyAuto prices every prompt decomposition per table under a
// token/latency/$ cost model and runs the cheapest (EXPLAIN shows the
// breakdown), and Config.BatchSize groups keys into batched ATTR prompts
// on the key-then-attr path — ~BatchSize fewer calls at identical key sets
// and row order. Joins are cost-planned too: Config.BindJoin lets the
// engine drain the cheap join side and push its distinct key values into
// the other side's scan (a bind join), so only keys the join can use pay
// the attribute fan-out — byte-identical rows to the hash plan at a
// fraction of the calls when the outer side is selective.
//
// Queries take parameters ($1, ? or :name bound via NamedArgs) as trailing
// Query arguments, and Engine.Prepare returns a Stmt that parses and plans
// once for repeated execution; unprepared queries are amortized the same
// way by a per-engine plan cache keyed on normalized statement text
// (Config.PlanCacheCapacity, Engine.PlanCacheStats). EXPLAIN and EXPLAIN
// ANALYZE work as ordinary statements.
//
// The facade re-exports the stable surface of the internal packages; see
// README.md for an overview, DESIGN.md for the architecture and
// EXPERIMENTS.md for the reproduced evaluation.
package llmsql

import (
	"llmsql/internal/core"
	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/storage"
	"llmsql/internal/world"
)

// ---- engine ----

// Engine executes SQL over LLM storage. See core.Engine.
type Engine = core.Engine

// Config tunes the engine. See core.Config.
type Config = core.Config

// Strategy selects the prompt decomposition. See core.Strategy.
type Strategy = core.Strategy

// Prompt strategies. StrategyAuto defers the choice to the cost-based scan
// planner, which prices the other three per table and runs the cheapest.
const (
	StrategyFullTable   = core.StrategyFullTable
	StrategyKeyThenAttr = core.StrategyKeyThenAttr
	StrategyPaged       = core.StrategyPaged
	StrategyAuto        = core.StrategyAuto
)

// VirtualTable declares an LLM-backed relation. See core.VirtualTable.
type VirtualTable = core.VirtualTable

// QueryResult bundles rows with the execution report. See core.QueryResult.
type QueryResult = core.QueryResult

// Stmt is a prepared statement: parsed and planned once, executed many
// times with different parameter bindings via Engine.Prepare. See core.Stmt.
type Stmt = core.Stmt

// NamedArgs binds :name parameters by name; pass one as the sole argument
// of Query/Stmt.Query. See core.NamedArgs.
type NamedArgs = core.NamedArgs

// PlanCacheStats reports the engine's prepared-plan cache counters. See
// core.PlanCacheStats.
type PlanCacheStats = core.PlanCacheStats

// DefaultPlanCacheCapacity is the prepared-plan cache bound selected by
// Config.PlanCacheCapacity == 0.
const DefaultPlanCacheCapacity = core.DefaultPlanCacheCapacity

// New builds an engine over any Model. It panics when Config.CacheDir
// names a directory that cannot be opened; prefer Open for runtime-chosen
// cache directories.
func New(model Model, cfg Config) *Engine { return core.New(model, cfg) }

// Open builds an engine over any Model, assembling the configured backend
// stack (in-memory cache, persistent disk cache, record/replay trace) with
// an error path. See core.Open.
func Open(model Model, cfg Config) (*Engine, error) { return core.Open(model, cfg) }

// DefaultConfig returns the paper-style engine configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// FormatResult renders a result as an aligned text table.
func FormatResult(res *Result) string { return core.FormatResult(res) }

// ---- serving ----

// EngineGroup is the multi-session serving form of the engine: many
// Session() engines over one shared coalescing backend stack, so identical
// scans across sessions cost one live model fan-out while every session is
// billed exactly as if it ran solo. cmd/llmsql-serve builds one per server.
// See core.EngineGroup.
type EngineGroup = core.EngineGroup

// GroupStats is the operator-side view of a serving group: billed vs live
// usage and the coalescer's counters. See core.GroupStats.
type GroupStats = core.GroupStats

// NewEngineGroup assembles the shared serving stack over the model; the
// configuration's CacheDir, CacheMaxBytes, RecordTrace, ReplayTrace and
// CoalesceCapacity configure the shared layers, the rest stays per-session.
// See core.NewEngineGroup.
func NewEngineGroup(model Model, cfg Config) (*EngineGroup, error) {
	return core.NewEngineGroup(model, cfg)
}

// Coalescer merges concurrent and (via its bounded memo) consecutive
// identical completion requests into one inner call, preserving the
// original response's cache flags and billing. See llm.Coalescer.
type Coalescer = llm.Coalescer

// CoalescerStats reports request-coalescing effectiveness. See
// llm.CoalescerStats.
type CoalescerStats = llm.CoalescerStats

// NewCoalescer wraps a model with a request coalescer using the default
// memo capacity. EngineGroup manages its own; this wrapper is for
// standalone model stacks.
func NewCoalescer(m Model) *Coalescer { return llm.NewCoalescer(m) }

// NewCoalescerSized wraps a model with a request coalescer whose
// completed-results memo holds capacity entries (0 selects the default,
// negative disables the memo, keeping in-flight coalescing only).
func NewCoalescerSized(m Model, capacity int) *Coalescer { return llm.NewCoalescerSized(m, capacity) }

// ---- results and values ----

// Result is a materialized query result. See exec.Result.
type Result = exec.Result

// Value is a typed SQL value. See rel.Value.
type Value = rel.Value

// Row is a tuple of values. See rel.Row.
type Row = rel.Row

// Schema describes a relation. See rel.Schema.
type Schema = rel.Schema

// Column describes one attribute. See rel.Column.
type Column = rel.Column

// DataType enumerates column types. See rel.DataType.
type DataType = rel.DataType

// Column data types.
const (
	TypeBool  = rel.TypeBool
	TypeInt   = rel.TypeInt
	TypeFloat = rel.TypeFloat
	TypeText  = rel.TypeText
)

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return rel.NewSchema(cols...) }

// Value constructors for building rows programmatically (local tables,
// test fixtures).
var (
	// Int returns an INT value.
	Int = rel.Int
	// Float returns a FLOAT value.
	Float = rel.Float
	// Text returns a TEXT value.
	Text = rel.Text
	// Bool returns a BOOL value.
	Bool = rel.Bool
	// Null returns the SQL NULL value.
	Null = rel.Null
)

// ---- models ----

// Model is anything that completes prompts. See llm.Model.
type Model = llm.Model

// Backend is a pluggable completion provider — the same contract as Model,
// under the name used for the storage side of the stack. See llm.Backend.
type Backend = llm.Backend

// NoiseProfile controls the simulated model's reliability. See
// llm.NoiseProfile.
type NoiseProfile = llm.NoiseProfile

// Simulated model tiers.
var (
	ProfileLarge  = llm.ProfileLarge
	ProfileMedium = llm.ProfileMedium
	ProfileSmall  = llm.ProfileSmall
)

// Usage accumulates model consumption, including total accumulated
// (SimLatency) and critical-path (SimWall) simulated latency. See
// llm.Usage.
type Usage = llm.Usage

// CostModel converts token usage into simulated latency and dollars. See
// llm.CostModel.
type CostModel = llm.CostModel

// DefaultCostModel returns the benchmark harness's cost constants.
func DefaultCostModel() CostModel { return llm.DefaultCostModel() }

// CacheModel is a bounded LRU completion cache wrapper. See llm.CacheModel.
type CacheModel = llm.CacheModel

// CacheStats reports completion-cache effectiveness. See llm.CacheStats.
type CacheStats = llm.CacheStats

// NewCache wraps a model with an LRU completion cache of the default
// capacity. Engines configured with Config.CacheCapacity manage their own
// cache; this wrapper is for standalone model stacks.
func NewCache(m Model) *CacheModel { return llm.NewCache(m) }

// NewCacheSized wraps a model with an LRU completion cache bounded to
// capacity entries (values < 1 select the default capacity).
func NewCacheSized(m Model, capacity int) *CacheModel { return llm.NewCacheSized(m, capacity) }

// DiskCache is the persistent content-addressed prompt cache. Engines
// configured with Config.CacheDir manage their own; this wrapper is for
// standalone model stacks. See llm.DiskCache.
type DiskCache = llm.DiskCache

// DiskCacheStats reports the persistent cache's counters and occupancy.
// See llm.DiskCacheStats.
type DiskCacheStats = llm.DiskCacheStats

// NewDiskCache opens (creating if needed) a persistent prompt cache at dir
// over m, LRU-bounded to maxBytes live bytes (values < 1 select the
// default).
func NewDiskCache(m Model, dir string, maxBytes int64) (*DiskCache, error) {
	return llm.NewDiskCache(m, dir, maxBytes)
}

// Trace is a recorded set of completions keyed by content fingerprint —
// the record/replay fixture behind deterministic testing. See llm.Trace.
type Trace = llm.Trace

// NewTrace returns an empty trace (record into it via Config.RecordTrace).
func NewTrace() *Trace { return llm.NewTrace() }

// LoadTrace reads a trace fixture written by Trace.Save.
func LoadTrace(path string) (*Trace, error) { return llm.LoadTrace(path) }

// Fingerprint returns the versioned content address of one completion
// request against a named model — the key the persistent cache and traces
// share. See llm.Fingerprint.
var Fingerprint = llm.Fingerprint

// NewSynthLM builds the deterministic simulated LLM over a world.
func NewSynthLM(w *World, profile NoiseProfile, seed int64) *llm.SynthLM {
	return llm.NewSynthLM(w, profile, seed)
}

// ---- synthetic world & local storage ----

// World is the synthetic universe. See world.World.
type World = world.World

// WorldConfig sizes the world. See world.Config.
type WorldConfig = world.Config

// GenerateWorld builds a world from the configuration.
func GenerateWorld(cfg WorldConfig) *World { return world.Generate(cfg) }

// LoadWorldDB materializes the ground truth into a row store.
func LoadWorldDB(w *World) (*DB, error) { return world.LoadDB(w) }

// DB is the in-memory row store. See storage.DB.
type DB = storage.DB

// NewDB returns an empty row store (for hybrid queries and baselines).
func NewDB() *DB { return storage.NewDB() }
