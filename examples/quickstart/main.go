// Quickstart: declare a virtual table backed by an LLM, run SQL against it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"llmsql"
)

func main() {
	// 1. A world for the simulated model to "know". With a hosted model
	//    this step disappears — the model already knows the world.
	w := llmsql.GenerateWorld(llmsql.WorldConfig{Seed: 42})

	// 2. A model. llmsql ships a deterministic simulated LLM; anything
	//    implementing llmsql.Model (Complete(prompt) -> text) plugs in.
	model := llmsql.NewSynthLM(w, llmsql.ProfileMedium, 42)

	// 3. The engine, with virtual tables declared from the world's
	//    domains (schema + natural-language column descriptions).
	eng := llmsql.New(model, llmsql.DefaultConfig())
	for _, name := range w.DomainNames() {
		eng.RegisterWorldDomain(w.Domain(name))
	}

	// 4. SQL. The scan of `country` is answered by prompting the model;
	//    filtering, ordering and limiting run in the engine.
	res, err := eng.Query(`
		SELECT name, capital, population
		FROM country
		WHERE population > 50
		ORDER BY population DESC
		LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(llmsql.FormatResult(res.Result))
	fmt.Printf("\nmodel cost: %d calls, %d tokens, simulated %v ($%.4f)\n",
		res.Usage.Calls, res.Usage.TotalTokens(), res.Usage.SimLatency.Round(1e6), res.Usage.SimDollars)
	for _, s := range res.Scans {
		fmt.Printf("scan %s: %d prompts over %d rounds, %d rows (%d duplicates removed, %d parse repairs)\n",
			s.Table, s.Prompts, s.Rounds, s.RowsEmitted, s.Duplicates, s.Parse.Repairs)
	}
}
