// Geopolitics analytics over LLM storage: joins, grouping and aggregation
// across two virtual tables, with a ground-truth comparison showing how far
// the LLM answers drift — the workload class the paper's introduction
// motivates ("ask the model your BI questions in SQL").
//
//	go run ./examples/geopolitics
package main

import (
	"fmt"
	"log"

	"llmsql"
	"llmsql/internal/exec"
	"llmsql/internal/plan"
	"llmsql/internal/sql"
)

func main() {
	w := llmsql.GenerateWorld(llmsql.WorldConfig{Seed: 7})
	eng := llmsql.New(llmsql.NewSynthLM(w, llmsql.ProfileMedium, 7), llmsql.DefaultConfig())
	for _, name := range w.DomainNames() {
		eng.RegisterWorldDomain(w.Domain(name))
	}
	truthDB, err := llmsql.LoadWorldDB(w)
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		title string
		query string
	}{
		{
			"Population by continent",
			`SELECT continent, COUNT(*) AS countries, SUM(population) AS total_pop
			 FROM country GROUP BY continent ORDER BY total_pop DESC`,
		},
		{
			"Where do the big companies sit?",
			`SELECT c.continent, COUNT(*) AS hq_count
			 FROM company k JOIN country c ON k.country = c.name
			 WHERE k.revenue > 20
			 GROUP BY c.continent ORDER BY hq_count DESC`,
		},
		{
			"Laureates from populous countries",
			`SELECT l.field, COUNT(*) AS n
			 FROM laureate l
			 WHERE l.country IN (SELECT name FROM country WHERE population > 80)
			 GROUP BY l.field ORDER BY n DESC`,
		},
	}

	for _, q := range queries {
		fmt.Printf("== %s ==\n", q.title)
		res, err := eng.Query(q.query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("LLM storage says:")
		fmt.Print(llmsql.FormatResult(res.Result))

		truth, err := runBaseline(truthDB, q.query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("ground truth says:")
		fmt.Print(llmsql.FormatResult(truth))
		fmt.Printf("(query cost: %d prompts, %d tokens)\n\n", res.Usage.Calls, res.Usage.TotalTokens())
	}
}

func runBaseline(db *llmsql.DB, query string) (*llmsql.Result, error) {
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return nil, err
	}
	node, err := plan.Plan(sel, &exec.StorageCatalog{DB: db})
	if err != nil {
		return nil, err
	}
	return exec.Execute(node, &exec.StorageSource{DB: db})
}
