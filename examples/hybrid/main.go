// Hybrid execution: a private local table (your data) joined against a
// virtual LLM-backed table (world knowledge) in a single SQL statement —
// the engine routes each scan to the right source and only the virtual
// side consumes tokens.
//
//	go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"llmsql"
)

func main() {
	w := llmsql.GenerateWorld(llmsql.WorldConfig{Seed: 19})
	eng := llmsql.New(llmsql.NewSynthLM(w, llmsql.ProfileLarge, 19), llmsql.DefaultConfig())
	eng.RegisterWorldDomain(w.Domain("country"))

	// A local table the model has never seen: our sales pipeline.
	local := llmsql.NewDB()
	sales, err := local.CreateTable("pipeline", llmsql.NewSchema(
		llmsql.Column{Name: "country_name", Type: llmsql.TypeText, Key: true},
		llmsql.Column{Name: "deals", Type: llmsql.TypeInt},
		llmsql.Column{Name: "value_musd", Type: llmsql.TypeFloat},
	))
	if err != nil {
		log.Fatal(err)
	}
	for i, key := range w.Domain("country").TopKeys(8) {
		if err := sales.Insert(llmsql.Row{
			llmsql.Text(key),
			llmsql.Int(int64(3 + i%4)),
			llmsql.Float(float64(10 + 7*i)),
		}); err != nil {
			log.Fatal(err)
		}
	}
	eng.AttachLocal(local)

	// Enrich the private pipeline with world knowledge from the model:
	// which deals sit in large markets?
	res, err := eng.Query(`
		SELECT p.country_name, p.deals, p.value_musd, c.population, c.continent
		FROM pipeline p JOIN country c ON c.name = p.country_name
		WHERE c.population > 10
		ORDER BY p.value_musd DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(llmsql.FormatResult(res.Result))
	fmt.Printf("\ntokens spent (virtual side only): %d across %d prompts\n",
		res.Usage.TotalTokens(), res.Usage.Calls)
	for _, s := range res.Scans {
		fmt.Printf("LLM scan: %s (%d rows)\n", s.Table, s.RowsEmitted)
	}
}
