// Movie analytics: compares the three prompt strategies on the same SQL,
// showing the precision/recall/token trade-off the evaluation's Table 4
// quantifies — and demonstrates self-consistency voting on a weak model.
//
//	go run ./examples/moviedb
package main

import (
	"fmt"
	"log"

	"llmsql"
)

func main() {
	w := llmsql.GenerateWorld(llmsql.WorldConfig{Seed: 11, Movies: 120, Countries: 60})
	query := `SELECT title, director, year FROM movie WHERE year >= 1990 ORDER BY year DESC LIMIT 15`

	fmt.Println("Query:", query)
	fmt.Println()

	for _, strat := range []llmsql.Strategy{
		llmsql.StrategyFullTable,
		llmsql.StrategyPaged,
		llmsql.StrategyKeyThenAttr,
	} {
		cfg := llmsql.DefaultConfig()
		cfg.Strategy = strat
		cfg.MaxRounds = 4
		eng := llmsql.New(llmsql.NewSynthLM(w, llmsql.ProfileMedium, 11), cfg)
		eng.RegisterWorldDomain(w.Domain("movie"))
		eng.RegisterWorldDomain(w.Domain("country"))

		res, err := eng.Query(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- strategy %v: %d rows, %d prompts, %d tokens --\n",
			strat, len(res.Result.Rows), res.Usage.Calls, res.Usage.TotalTokens())
		fmt.Print(llmsql.FormatResult(res.Result))
		fmt.Println()
	}

	// Self-consistency voting: ask each attribute k times on a weak model
	// and keep the majority answer.
	fmt.Println("-- voting on a small model (key-then-attr) --")
	for _, k := range []int{1, 5} {
		cfg := llmsql.DefaultConfig()
		cfg.Strategy = llmsql.StrategyKeyThenAttr
		cfg.Votes = k
		cfg.Temperature = 0.8
		cfg.MaxRounds = 2
		eng := llmsql.New(llmsql.NewSynthLM(w, llmsql.ProfileSmall, 11), cfg)
		eng.RegisterWorldDomain(w.Domain("movie"))
		res, err := eng.Query(`SELECT title, director FROM movie LIMIT 8`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("k=%d: %d rows for %d tokens\n", k, len(res.Result.Rows), res.Usage.TotalTokens())
	}
}
