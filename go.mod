module llmsql

go 1.22
