package cliflags

import (
	"flag"
	"time"

	"llmsql/internal/core"
	"llmsql/internal/llm"
)

// FaultFlags groups the fault-injection and fault-tolerance flags so every
// binary exposes them with identical names, defaults and semantics. All
// defaults are off / zero-select-default, so a command line without any of
// these flags runs byte-identically to a build without the fault layer.
type FaultFlags struct {
	ChaosSeed         int64
	ChaosError        float64
	ChaosRateLimit    float64
	ChaosMalformed    float64
	ChaosSpike        float64
	ChaosSpikeLatency time.Duration
	Retries           int
	RetryBackoff      time.Duration
	HedgeAfter        time.Duration
	PartialResults    bool
}

// Register installs the fault flags on fs.
func (f *FaultFlags) Register(fs *flag.FlagSet) {
	fs.Int64Var(&f.ChaosSeed, "chaos-seed", 0, "seed of the deterministic fault-injection stream (same seed + same requests = byte-identical faults)")
	fs.Float64Var(&f.ChaosError, "chaos-error", 0, "probability in [0,1] of an injected transient backend error per attempt (0 = off)")
	fs.Float64Var(&f.ChaosRateLimit, "chaos-ratelimit", 0, "probability in [0,1] of an injected rate-limit rejection per attempt (0 = off)")
	fs.Float64Var(&f.ChaosMalformed, "chaos-malformed", 0, "probability in [0,1] of an injected malformed completion per attempt (0 = off)")
	fs.Float64Var(&f.ChaosSpike, "chaos-spike", 0, "probability in [0,1] of an injected virtual-latency spike per call (0 = off)")
	fs.DurationVar(&f.ChaosSpikeLatency, "chaos-spike-latency", 2*time.Second, "virtual latency each injected spike adds to its call")
	fs.IntVar(&f.Retries, "retries", 0, "per-call attempt budget of the retry layer (0 = default 4; 1 = no retries)")
	fs.DurationVar(&f.RetryBackoff, "retry-backoff", 0, "base backoff before the first retry, doubled each further retry (0 = default 200ms; virtual time, never a real sleep)")
	fs.DurationVar(&f.HedgeAfter, "hedge-after", 0, "race a duplicate request against any call slower than this virtual latency and keep the first finisher (0 = hedging off)")
	fs.BoolVar(&f.PartialResults, "partial-results", false, "degrade scans around calls that exhaust their retries — drop the affected keys, report them in the scan stats — instead of failing the query")
}

// Chaos renders the injection flags as the profile the engine consumes.
func (f *FaultFlags) Chaos() llm.ChaosProfile {
	return llm.ChaosProfile{
		Seed:          f.ChaosSeed,
		TransientRate: f.ChaosError,
		RateLimitRate: f.ChaosRateLimit,
		MalformedRate: f.ChaosMalformed,
		SpikeRate:     f.ChaosSpike,
		SpikeLatency:  f.ChaosSpikeLatency,
	}
}

// Retry renders the recovery flags as a policy (zero fields select the
// engine defaults).
func (f *FaultFlags) Retry() llm.RetryPolicy {
	return llm.RetryPolicy{
		MaxAttempts: f.Retries,
		BaseBackoff: f.RetryBackoff,
		HedgeAfter:  f.HedgeAfter,
	}
}

// Apply copies the flags onto an engine configuration.
func (f *FaultFlags) Apply(cfg *core.Config) {
	cfg.Chaos = f.Chaos()
	cfg.Retry = f.Retry()
	cfg.PartialResults = f.PartialResults
}
