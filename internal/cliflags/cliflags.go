// Package cliflags renders a flag set as the markdown table committed in
// README.md. Every binary exposes the rendering behind a -print-flags mode,
// and `make docs-check` diffs that output against the README's committed
// tables — so the documented flags can never drift from the real ones.
// It also hosts flag groups every binary shares (FaultFlags), so a knob
// spells and behaves the same on llmsql, llmsql-bench and llmsql-serve.
package cliflags

import (
	"flag"
	"fmt"
	"strings"
)

// Markdown renders fs as a three-column markdown table (flag, default,
// description), in the flag set's lexicographic visit order.
func Markdown(fs *flag.FlagSet) string {
	var b strings.Builder
	b.WriteString("| Flag | Default | Description |\n")
	b.WriteString("| --- | --- | --- |\n")
	fs.VisitAll(func(f *flag.Flag) {
		def := ""
		if f.DefValue != "" {
			def = "`" + f.DefValue + "`"
		}
		fmt.Fprintf(&b, "| `-%s` | %s | %s |\n", f.Name, def, escapeCell(f.Usage))
	})
	return b.String()
}

// escapeCell makes a usage string safe inside one markdown table cell.
func escapeCell(s string) string {
	s = strings.ReplaceAll(s, "\n", " ")
	return strings.ReplaceAll(s, "|", "\\|")
}
