package llm

import (
	"fmt"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	inner := &echoModel{}
	cache := NewCacheSized(inner, 2)
	get := func(p string) {
		t.Helper()
		if _, err := cache.Complete(CompletionRequest{Prompt: p}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now LRU
	get("c") // evicts b
	s := cache.CacheStats()
	if s.Evictions != 1 || s.Size != 2 || s.Capacity != 2 {
		t.Fatalf("stats: %+v", s)
	}
	get("a") // still cached
	get("b") // evicted above -> miss, evicts c
	s = cache.CacheStats()
	if s.Hits != 2 || s.Misses != 4 || s.Evictions != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if inner.calls != 4 {
		t.Fatalf("inner calls: %d", inner.calls)
	}
}

func TestCacheBoundHolds(t *testing.T) {
	cache := NewCacheSized(&echoModel{}, 8)
	for i := 0; i < 100; i++ {
		if _, err := cache.Complete(CompletionRequest{Prompt: fmt.Sprintf("p%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := cache.CacheStats()
	if s.Size != 8 {
		t.Fatalf("size must stay bounded: %+v", s)
	}
	if s.Evictions != 92 {
		t.Fatalf("evictions: %+v", s)
	}
	if len(cache.entries) != cache.order.Len() {
		t.Fatalf("map/list out of sync: %d vs %d", len(cache.entries), cache.order.Len())
	}
}

func TestNewCacheDefaultCapacity(t *testing.T) {
	cache := NewCache(&echoModel{})
	if got := cache.CacheStats().Capacity; got != DefaultCacheCapacity {
		t.Fatalf("default capacity: %d", got)
	}
	// Nonsense capacities fall back to the default too.
	if got := NewCacheSized(&echoModel{}, 0).CacheStats().Capacity; got != DefaultCacheCapacity {
		t.Fatalf("zero capacity: %d", got)
	}
}

func TestCacheMarksCachedResponses(t *testing.T) {
	cache := NewCache(&echoModel{})
	req := CompletionRequest{Prompt: "p"}
	r1, err := cache.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first response must not be marked cached")
	}
	r2, err := cache.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("second response must be marked cached")
	}
	if r2.Text != r1.Text {
		t.Fatal("cache changed the completion")
	}
}

func TestCountingChargesNothingForCachedCalls(t *testing.T) {
	cm := NewCounting(NewCache(&echoModel{}))
	req := CompletionRequest{Prompt: "hello world"}
	if _, err := cm.Complete(req); err != nil {
		t.Fatal(err)
	}
	cold := cm.Usage()
	if cold.SimLatency <= 0 || cold.TotalTokens() <= 0 {
		t.Fatalf("cold call must be charged: %+v", cold)
	}
	if _, err := cm.Complete(req); err != nil {
		t.Fatal(err)
	}
	warm := cm.Usage()
	if warm.Calls != 2 || warm.CachedCalls != 1 {
		t.Fatalf("call counting: %+v", warm)
	}
	if warm.SimLatency != cold.SimLatency || warm.SimDollars != cold.SimDollars ||
		warm.TotalTokens() != cold.TotalTokens() {
		t.Fatalf("cached call must be free: cold %+v warm %+v", cold, warm)
	}
}

func TestFindCache(t *testing.T) {
	inner := &echoModel{}
	cache := NewCache(inner)
	if FindCache(NewCounting(cache)) != cache {
		t.Fatal("cache inside counting not found")
	}
	if FindCache(NewCounting(inner)) != nil {
		t.Fatal("found a cache where there is none")
	}
	if FindCache(cache) != cache {
		t.Fatal("bare cache not found")
	}
}
