package llm

import (
	"sync"
	"time"
)

// CompletionRequest asks a model to continue a prompt.
type CompletionRequest struct {
	// Prompt is the full input text.
	Prompt string
	// MaxTokens bounds the completion length; 0 means the model default.
	MaxTokens int
	// Temperature in [0,2]: 0 is deterministic greedy decoding; higher
	// values diversify sampling (and, for SynthLM, raise hallucination).
	Temperature float64
	// Seed varies sampling between otherwise identical requests (the
	// engine passes the sampling round number). Ignored at temperature 0.
	Seed int64
}

// CompletionResponse is the model's answer plus usage accounting.
type CompletionResponse struct {
	// Text is the completion.
	Text string
	// PromptTokens and CompletionTokens are exact token counts.
	PromptTokens     int
	CompletionTokens int
	// Truncated reports that MaxTokens cut the completion.
	Truncated bool
	// Cached reports the response was served from a completion cache and
	// therefore cost no latency or dollars (set by CacheModel and
	// DiskCache).
	Cached bool
	// DiskCached narrows Cached: the response came from the persistent
	// on-disk prompt cache, not the in-memory LRU (set by DiskCache;
	// cleared by CacheModel when it re-serves a memoized copy). DiskBytes
	// is the on-disk record size served.
	DiskCached bool
	DiskBytes  int64
	// Coalesced reports the response was served by a Coalescer from another
	// caller's identical request (joined in flight, or replayed from the
	// coalescer's memo) rather than by a call of its own. Unlike Cached it
	// does NOT zero the accounting: the Cached/DiskCached flags of the
	// original response are preserved, so every caller is billed exactly as
	// if it had made the call itself — the saving is visible only in the
	// operator-side CoalescerStats. Per-scan consumption shows up as
	// ScanStats.CoalescedHits.
	Coalesced bool
	// SimLatency is the simulated wall-clock time of this one call under the
	// accounting CostModel (zero for cached responses; set by CountingModel).
	// Schedulers use it to compute critical-path latency of concurrent scans.
	// It includes FaultLatency.
	SimLatency time.Duration
	// FaultLatency is extra virtual time the fault-tolerance layer charged
	// this call: failed attempts, backoff waits and the losing half of a
	// hedge race (Retrier), plus injected latency spikes (Chaos).
	// CountingModel folds it into SimLatency; cached responses carry none.
	FaultLatency time.Duration
	// Attempts is how many completions the Retrier issued to produce this
	// response (0 or 1 = first try; hedges count too). Attempts-1 retries
	// are billed to Usage.Retries.
	Attempts int
	// HedgeLaunched / HedgeWon report that the Retrier raced a duplicate
	// request against a slow primary, and whether the duplicate won.
	HedgeLaunched bool
	HedgeWon      bool
	// WastedPromptTokens / WastedCompletionTokens are tokens consumed by
	// attempts whose answer was discarded (the losing half of a hedge
	// race). They cost dollars but carry no information; CountingModel
	// bills them into Usage separately from the useful tokens.
	WastedPromptTokens     int
	WastedCompletionTokens int
}

// stripFaultMarkings zeroes the fault-accounting fields on a response
// copy served from a cache: the stored attempt's retries were billed when
// it was produced, and the cached copy costs nothing.
func (r *CompletionResponse) stripFaultMarkings() {
	r.FaultLatency = 0
	r.Attempts = 0
	r.HedgeLaunched = false
	r.HedgeWon = false
	r.WastedPromptTokens = 0
	r.WastedCompletionTokens = 0
}

// Model is anything that completes prompts. Implementations must be safe
// for concurrent use.
type Model interface {
	// Complete runs one completion.
	Complete(req CompletionRequest) (CompletionResponse, error)
	// Name identifies the model in reports.
	Name() string
}

// CostModel converts token usage into simulated latency and dollar cost,
// with defaults loosely shaped like a 2023 hosted API (the absolute
// constants are configuration, not claims).
type CostModel struct {
	// PerCallLatency is the fixed round-trip overhead.
	PerCallLatency time.Duration
	// PerPromptToken and PerCompletionToken add linear latency.
	PerPromptToken     time.Duration
	PerCompletionToken time.Duration
	// PromptUSDPerMTok / CompletionUSDPerMTok price a million tokens.
	PromptUSDPerMTok     float64
	CompletionUSDPerMTok float64
}

// DefaultCostModel returns the constants used by the benchmark harness.
func DefaultCostModel() CostModel {
	return CostModel{
		PerCallLatency:       250 * time.Millisecond,
		PerPromptToken:       100 * time.Microsecond,
		PerCompletionToken:   20 * time.Millisecond,
		PromptUSDPerMTok:     1.0,
		CompletionUSDPerMTok: 3.0,
	}
}

// Latency returns the simulated wall-clock time of one call.
func (c CostModel) Latency(promptTokens, completionTokens int) time.Duration {
	return c.PerCallLatency +
		time.Duration(promptTokens)*c.PerPromptToken +
		time.Duration(completionTokens)*c.PerCompletionToken
}

// Dollars returns the simulated price of one call.
func (c CostModel) Dollars(promptTokens, completionTokens int) float64 {
	return float64(promptTokens)/1e6*c.PromptUSDPerMTok +
		float64(completionTokens)/1e6*c.CompletionUSDPerMTok
}

// Usage accumulates model consumption across calls.
type Usage struct {
	Calls            int
	PromptTokens     int
	CompletionTokens int
	// CachedCalls counts calls answered by a completion cache (no latency
	// or dollar cost).
	CachedCalls int
	// SimLatency is the total accumulated simulated latency under a
	// CostModel: the sum over all calls, as if every call ran serially.
	SimLatency time.Duration
	// SimWall is the simulated critical-path (wall-clock) latency: the time
	// the work actually takes when independent calls overlap under a bounded
	// worker pool. Serial pipelines have SimWall == SimLatency; concurrent
	// ones have SimWall < SimLatency. Scans report it via WallAdder.
	SimWall time.Duration
	// SimDollars is the total simulated spend (wasted tokens included).
	SimDollars float64
	// Retries counts attempts beyond the first across all calls (failed
	// attempts the Retrier re-issued, plus hedge duplicates).
	Retries int
	// HedgesLaunched / HedgesWon count hedge races and how many the
	// duplicate request won.
	HedgesLaunched int
	HedgesWon      int
	// WastedPromptTokens / WastedCompletionTokens are tokens bought but
	// discarded (losing hedge attempts). Billed into SimDollars; kept out
	// of PromptTokens/CompletionTokens so those still mean useful spend.
	WastedPromptTokens     int
	WastedCompletionTokens int
}

// TotalTokens returns prompt+completion tokens.
func (u Usage) TotalTokens() int { return u.PromptTokens + u.CompletionTokens }

// Derived ratios (concurrency speedup, cache hit rate) live on
// metrics.Efficiency — this package only keeps the raw counters.

// Add merges another usage into u.
func (u *Usage) Add(o Usage) {
	u.Calls += o.Calls
	u.PromptTokens += o.PromptTokens
	u.CompletionTokens += o.CompletionTokens
	u.CachedCalls += o.CachedCalls
	u.SimLatency += o.SimLatency
	u.SimWall += o.SimWall
	u.SimDollars += o.SimDollars
	u.Retries += o.Retries
	u.HedgesLaunched += o.HedgesLaunched
	u.HedgesWon += o.HedgesWon
	u.WastedPromptTokens += o.WastedPromptTokens
	u.WastedCompletionTokens += o.WastedCompletionTokens
}

// Sub returns u minus o field-wise (for before/after snapshots around one
// query).
func (u Usage) Sub(o Usage) Usage {
	return Usage{
		Calls:            u.Calls - o.Calls,
		PromptTokens:     u.PromptTokens - o.PromptTokens,
		CompletionTokens: u.CompletionTokens - o.CompletionTokens,
		CachedCalls:      u.CachedCalls - o.CachedCalls,
		SimLatency:       u.SimLatency - o.SimLatency,
		SimWall:          u.SimWall - o.SimWall,
		SimDollars:       u.SimDollars - o.SimDollars,
		Retries:          u.Retries - o.Retries,
		HedgesLaunched:   u.HedgesLaunched - o.HedgesLaunched,
		HedgesWon:        u.HedgesWon - o.HedgesWon,

		WastedPromptTokens:     u.WastedPromptTokens - o.WastedPromptTokens,
		WastedCompletionTokens: u.WastedCompletionTokens - o.WastedCompletionTokens,
	}
}

// WallAdder is implemented by model wrappers that track critical-path
// latency. Scan pipelines call AddWall once per dependency chain with the
// simulated makespan of that chain.
type WallAdder interface {
	AddWall(d time.Duration)
}

// Unwrapper exposes the next model in a wrapper chain (CountingModel,
// CacheModel), so callers can locate a wrapper regardless of stacking order.
type Unwrapper interface {
	Unwrap() Model
}

// FindCache walks a wrapper chain and returns the first CacheModel, or nil.
func FindCache(m Model) *CacheModel {
	for m != nil {
		if c, ok := m.(*CacheModel); ok {
			return c
		}
		uw, ok := m.(Unwrapper)
		if !ok {
			return nil
		}
		m = uw.Unwrap()
	}
	return nil
}

// CountingModel wraps a Model, accumulating Usage under a CostModel.
type CountingModel struct {
	Inner Model
	Cost  CostModel

	mu    sync.Mutex
	usage Usage
}

// NewCounting wraps m with the default cost model.
func NewCounting(m Model) *CountingModel {
	return &CountingModel{Inner: m, Cost: DefaultCostModel()}
}

// Name implements Model.
func (c *CountingModel) Name() string { return c.Inner.Name() }

// Unwrap implements Unwrapper.
func (c *CountingModel) Unwrap() Model { return c.Inner }

// Complete implements Model. Cached responses (see CacheModel) are counted
// as calls but cost no tokens, latency or dollars; every response leaves
// with SimLatency stamped so schedulers can reason about it. FaultLatency
// charged by the Retrier/Chaos layers below is folded into SimLatency, and
// wasted tokens (losing hedge attempts) are billed into SimDollars — so a
// faulty run prices its recovery honestly.
func (c *CountingModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	resp, err := c.Inner.Complete(req)
	if err != nil {
		return resp, err
	}
	var lat time.Duration
	var usd float64
	if !resp.Cached {
		lat = c.Cost.Latency(resp.PromptTokens, resp.CompletionTokens) + resp.FaultLatency
		usd = c.Cost.Dollars(resp.PromptTokens, resp.CompletionTokens) +
			c.Cost.Dollars(resp.WastedPromptTokens, resp.WastedCompletionTokens)
	}
	resp.SimLatency = lat
	c.mu.Lock()
	c.usage.Calls++
	if resp.Cached {
		c.usage.CachedCalls++
	} else {
		c.usage.PromptTokens += resp.PromptTokens
		c.usage.CompletionTokens += resp.CompletionTokens
		if resp.Attempts > 1 {
			c.usage.Retries += resp.Attempts - 1
		}
		if resp.HedgeLaunched {
			c.usage.HedgesLaunched++
		}
		if resp.HedgeWon {
			c.usage.HedgesWon++
		}
		c.usage.WastedPromptTokens += resp.WastedPromptTokens
		c.usage.WastedCompletionTokens += resp.WastedCompletionTokens
	}
	c.usage.SimLatency += lat
	c.usage.SimDollars += usd
	c.mu.Unlock()
	return resp, nil
}

// AddWall implements WallAdder: it extends the critical-path latency by d.
// Sequential dependency chains (scans of one query, queries of one session)
// add their makespans.
func (c *CountingModel) AddWall(d time.Duration) {
	c.mu.Lock()
	c.usage.SimWall += d
	c.mu.Unlock()
}

// Usage returns a snapshot of the accumulated usage.
func (c *CountingModel) Usage() Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usage
}

// Reset zeroes the accumulated usage.
func (c *CountingModel) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.usage = Usage{}
}
