package llm

import (
	"sync"
	"time"
)

// CompletionRequest asks a model to continue a prompt.
type CompletionRequest struct {
	// Prompt is the full input text.
	Prompt string
	// MaxTokens bounds the completion length; 0 means the model default.
	MaxTokens int
	// Temperature in [0,2]: 0 is deterministic greedy decoding; higher
	// values diversify sampling (and, for SynthLM, raise hallucination).
	Temperature float64
	// Seed varies sampling between otherwise identical requests (the
	// engine passes the sampling round number). Ignored at temperature 0.
	Seed int64
}

// CompletionResponse is the model's answer plus usage accounting.
type CompletionResponse struct {
	// Text is the completion.
	Text string
	// PromptTokens and CompletionTokens are exact token counts.
	PromptTokens     int
	CompletionTokens int
	// Truncated reports that MaxTokens cut the completion.
	Truncated bool
}

// Model is anything that completes prompts. Implementations must be safe
// for concurrent use.
type Model interface {
	// Complete runs one completion.
	Complete(req CompletionRequest) (CompletionResponse, error)
	// Name identifies the model in reports.
	Name() string
}

// CostModel converts token usage into simulated latency and dollar cost,
// with defaults loosely shaped like a 2023 hosted API (the absolute
// constants are configuration, not claims).
type CostModel struct {
	// PerCallLatency is the fixed round-trip overhead.
	PerCallLatency time.Duration
	// PerPromptToken and PerCompletionToken add linear latency.
	PerPromptToken     time.Duration
	PerCompletionToken time.Duration
	// PromptUSDPerMTok / CompletionUSDPerMTok price a million tokens.
	PromptUSDPerMTok     float64
	CompletionUSDPerMTok float64
}

// DefaultCostModel returns the constants used by the benchmark harness.
func DefaultCostModel() CostModel {
	return CostModel{
		PerCallLatency:       250 * time.Millisecond,
		PerPromptToken:       100 * time.Microsecond,
		PerCompletionToken:   20 * time.Millisecond,
		PromptUSDPerMTok:     1.0,
		CompletionUSDPerMTok: 3.0,
	}
}

// Latency returns the simulated wall-clock time of one call.
func (c CostModel) Latency(promptTokens, completionTokens int) time.Duration {
	return c.PerCallLatency +
		time.Duration(promptTokens)*c.PerPromptToken +
		time.Duration(completionTokens)*c.PerCompletionToken
}

// Dollars returns the simulated price of one call.
func (c CostModel) Dollars(promptTokens, completionTokens int) float64 {
	return float64(promptTokens)/1e6*c.PromptUSDPerMTok +
		float64(completionTokens)/1e6*c.CompletionUSDPerMTok
}

// Usage accumulates model consumption across calls.
type Usage struct {
	Calls            int
	PromptTokens     int
	CompletionTokens int
	// SimLatency is the total simulated wall-clock time under a CostModel.
	SimLatency time.Duration
	// SimDollars is the total simulated spend.
	SimDollars float64
}

// TotalTokens returns prompt+completion tokens.
func (u Usage) TotalTokens() int { return u.PromptTokens + u.CompletionTokens }

// Add merges another usage into u.
func (u *Usage) Add(o Usage) {
	u.Calls += o.Calls
	u.PromptTokens += o.PromptTokens
	u.CompletionTokens += o.CompletionTokens
	u.SimLatency += o.SimLatency
	u.SimDollars += o.SimDollars
}

// CountingModel wraps a Model, accumulating Usage under a CostModel.
type CountingModel struct {
	Inner Model
	Cost  CostModel

	mu    sync.Mutex
	usage Usage
}

// NewCounting wraps m with the default cost model.
func NewCounting(m Model) *CountingModel {
	return &CountingModel{Inner: m, Cost: DefaultCostModel()}
}

// Name implements Model.
func (c *CountingModel) Name() string { return c.Inner.Name() }

// Complete implements Model.
func (c *CountingModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	resp, err := c.Inner.Complete(req)
	if err != nil {
		return resp, err
	}
	c.mu.Lock()
	c.usage.Calls++
	c.usage.PromptTokens += resp.PromptTokens
	c.usage.CompletionTokens += resp.CompletionTokens
	c.usage.SimLatency += c.Cost.Latency(resp.PromptTokens, resp.CompletionTokens)
	c.usage.SimDollars += c.Cost.Dollars(resp.PromptTokens, resp.CompletionTokens)
	c.mu.Unlock()
	return resp, nil
}

// Usage returns a snapshot of the accumulated usage.
func (c *CountingModel) Usage() Usage {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usage
}

// Reset zeroes the accumulated usage.
func (c *CountingModel) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.usage = Usage{}
}

// CacheModel memoises completions keyed by (prompt, max tokens, temperature,
// seed). It models a prompt cache in front of the API: repeated identical
// requests cost nothing extra.
type CacheModel struct {
	Inner Model

	mu    sync.Mutex
	cache map[cacheKey]CompletionResponse
	hits  int
	miss  int
}

type cacheKey struct {
	prompt    string
	maxTokens int
	temp      float64
	seed      int64
}

// NewCache wraps m with an unbounded memo table.
func NewCache(m Model) *CacheModel {
	return &CacheModel{Inner: m, cache: make(map[cacheKey]CompletionResponse)}
}

// Name implements Model.
func (c *CacheModel) Name() string { return c.Inner.Name() }

// Complete implements Model.
func (c *CacheModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	key := cacheKey{req.Prompt, req.MaxTokens, req.Temperature, req.Seed}
	c.mu.Lock()
	if resp, ok := c.cache[key]; ok {
		c.hits++
		c.mu.Unlock()
		return resp, nil
	}
	c.miss++
	c.mu.Unlock()
	resp, err := c.Inner.Complete(req)
	if err != nil {
		return resp, err
	}
	c.mu.Lock()
	c.cache[key] = resp
	c.mu.Unlock()
	return resp, nil
}

// Stats returns (hits, misses).
func (c *CacheModel) Stats() (int, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.miss
}
