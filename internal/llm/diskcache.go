package llm

import (
	"bufio"
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DefaultDiskCacheBytes bounds a DiskCache when the caller passes no bound:
// 64 MiB of live completions, several full benchmark suites deep.
const DefaultDiskCacheBytes = 64 << 20

// compactionFloor is the minimum dead-byte volume before a compaction is
// worth the rewrite.
const compactionFloor = 1 << 20

// DiskCache is a persistent content-addressed prompt cache that layers in
// front of any Backend: completions are keyed by Fingerprint (model id +
// prompt + decode parameters, versioned) and survive across queries,
// sessions and processes. Hits come back with Cached and DiskCached set, so
// CountingModel charges them zero latency and dollars and scans can
// attribute them separately from in-memory hits.
//
// On disk the cache is a directory of append-only segment files of JSON
// records, one completion per line. The index — fingerprint to completion —
// lives in memory and is rebuilt by scanning the segments at Open, with the
// last record per fingerprint winning, so a crash mid-append loses at most
// the torn final record. Live entries are LRU-bounded by MaxBytes; evicted
// and overwritten records stay on disk as dead bytes until a compaction
// (triggered when dead bytes outgrow live bytes) rewrites the survivors
// into a fresh segment and deletes the old files. All methods are safe for
// concurrent use; records of a different FingerprintVersion are skipped at
// load, so bumping the version invalidates the persisted entries wholesale.
type DiskCache struct {
	Inner Model

	dir      string
	maxBytes int64
	version  int // fingerprint/record format version (FingerprintVersion)

	mu        sync.Mutex
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	liveBytes int64
	deadBytes int64
	seg       *os.File // active segment, append-only
	segIndex  int
	stats     DiskCacheStats
}

// diskEntry is one live completion: the decoded response plus the byte size
// of its on-disk record (the unit the LRU bound counts).
type diskEntry struct {
	fp   string
	resp CompletionResponse
	size int64
}

// diskRecord is the on-disk JSON shape of one completion. A record with
// Deleted set is a tombstone: it removes the fingerprint's live entry when
// replayed at load, making Invalidate durable across reopens.
type diskRecord struct {
	FP        string `json:"fp"`
	Version   int    `json:"v"`
	Text      string `json:"text"`
	Prompt    int    `json:"pt"`
	Compl     int    `json:"ct"`
	Truncated bool   `json:"tr,omitempty"`
	Deleted   bool   `json:"del,omitempty"`
}

// DiskCacheStats reports the persistent cache's effectiveness and occupancy.
type DiskCacheStats struct {
	// Hits / Misses / Evictions count lookups and LRU evictions since Open.
	Hits      int
	Misses    int
	Evictions int
	// WriteErrors counts records that failed to persist (the completion is
	// still returned; the cache is best-effort on the write path).
	WriteErrors int
	// Entries and LiveBytes describe the live set; DeadBytes is on-disk
	// volume awaiting compaction; MaxBytes is the LRU bound.
	Entries   int
	LiveBytes int64
	DeadBytes int64
	MaxBytes  int64
	// Compactions counts segment rewrites since Open.
	Compactions int
}

// NewDiskCache opens (creating if needed) the persistent prompt cache at
// dir, layered in front of inner. maxBytes bounds the live set; values < 1
// select DefaultDiskCacheBytes.
func NewDiskCache(inner Model, dir string, maxBytes int64) (*DiskCache, error) {
	return newDiskCacheAt(inner, dir, maxBytes, FingerprintVersion)
}

// newDiskCacheAt is NewDiskCache pinned to an explicit fingerprint version
// (exposed separately so versioning tests can write "old" caches).
func newDiskCacheAt(inner Model, dir string, maxBytes int64, version int) (*DiskCache, error) {
	if maxBytes < 1 {
		maxBytes = DefaultDiskCacheBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("llm: disk cache: %w", err)
	}
	c := &DiskCache{
		Inner:    inner,
		dir:      dir,
		maxBytes: maxBytes,
		version:  version,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
	if err := c.load(version); err != nil {
		return nil, err
	}
	seg, err := os.OpenFile(c.segPath(c.segIndex), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("llm: disk cache: %w", err)
	}
	c.seg = seg
	// The loaded set may exceed a smaller bound than it was written under.
	c.evictLocked()
	return c, nil
}

func (c *DiskCache) segPath(i int) string {
	return filepath.Join(c.dir, fmt.Sprintf("seg-%06d.jsonl", i))
}

// segments returns the existing segment files in write order.
func (c *DiskCache) segments() ([]string, error) {
	names, err := filepath.Glob(filepath.Join(c.dir, "seg-*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// load rebuilds the index by scanning the segments oldest-first. Later
// records override earlier ones (the overridden record becomes dead bytes),
// and read order doubles as recency: the last-written record is the most
// recently used. Records of a different fingerprint version are dead on
// arrival. A torn final line (crash mid-append) is skipped.
func (c *DiskCache) load(version int) error {
	segs, err := c.segments()
	if err != nil {
		return fmt.Errorf("llm: disk cache: %w", err)
	}
	for _, path := range segs {
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("llm: disk cache: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			size := int64(len(line) + 1) // the trailing newline
			var rec diskRecord
			if err := json.Unmarshal(line, &rec); err != nil || rec.FP == "" {
				c.deadBytes += size
				continue // torn or foreign line
			}
			if rec.Version != version {
				c.deadBytes += size
				continue // format change invalidates persisted entries
			}
			if rec.Deleted {
				// Tombstone: the fingerprint's earlier record (if still live)
				// and the tombstone itself are both dead bytes now.
				c.removeLocked(rec.FP)
				c.deadBytes += size
				continue
			}
			c.insertLocked(rec.FP, CompletionResponse{
				Text:             rec.Text,
				PromptTokens:     rec.Prompt,
				CompletionTokens: rec.Compl,
				Truncated:        rec.Truncated,
			}, size)
		}
		f.Close()
		if err := sc.Err(); err != nil {
			return fmt.Errorf("llm: disk cache %s: %w", path, err)
		}
		if i := segIndexOf(path); i >= c.segIndex {
			c.segIndex = i + 1
		}
	}
	return nil
}

func segIndexOf(path string) int {
	base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "seg-"), ".jsonl")
	var i int
	fmt.Sscanf(base, "%d", &i)
	return i
}

// Name implements Model.
func (c *DiskCache) Name() string { return c.Inner.Name() }

// Unwrap implements Unwrapper.
func (c *DiskCache) Unwrap() Model { return c.Inner }

// Complete implements Model. The lock is released around the inner call so
// misses for distinct prompts proceed concurrently; two simultaneous misses
// for the same fingerprint both call the model (deterministic backends
// return the same response, so last-writer-wins insertion is harmless).
func (c *DiskCache) Complete(req CompletionRequest) (CompletionResponse, error) {
	fp := fingerprintAt(c.version, c.Name(), req)
	c.mu.Lock()
	if el, ok := c.entries[fp]; ok {
		c.stats.Hits++
		c.order.MoveToFront(el)
		e := el.Value.(*diskEntry)
		resp := e.resp
		size := e.size
		c.mu.Unlock()
		resp.Cached = true
		resp.DiskCached = true
		resp.DiskBytes = size
		return resp, nil
	}
	c.stats.Misses++
	c.mu.Unlock()
	resp, err := c.Inner.Complete(req)
	if err != nil {
		return resp, err
	}
	c.put(fp, resp)
	return resp, nil
}

// Contains reports whether the request's completion is already persisted.
// A probe, not a lookup: it touches neither the hit/miss counters nor the
// LRU recency, so cost estimators can ask freely (warm-cache costing).
func (c *DiskCache) Contains(req CompletionRequest) bool {
	fp := fingerprintAt(c.version, c.Name(), req)
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[fp]
	return ok
}

// Invalidate drops the request's persisted completion, reporting whether an
// entry was live. The removal is durable: a tombstone record is appended to
// the active segment, so a reopened cache stays cold for the fingerprint
// until the model answers it again. Used to force selective re-asks —
// materialized-view refresh tests and staleness drills.
func (c *DiskCache) Invalidate(req CompletionRequest) bool {
	fp := fingerprintAt(c.version, c.Name(), req)
	rec := diskRecord{FP: fp, Version: c.version, Deleted: true}
	data, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	data = append(data, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[fp]; !ok {
		return false
	}
	if _, err := c.seg.Write(data); err != nil {
		c.stats.WriteErrors++
		// The in-memory removal still proceeds: this process stays cold, and
		// the worst case after a reopen is a stale hit, same as any lost write.
	}
	c.removeLocked(fp)
	c.deadBytes += int64(len(data))
	return true
}

// removeLocked drops the fingerprint's live entry (if any), moving its
// on-disk record to the dead set.
func (c *DiskCache) removeLocked(fp string) {
	el, ok := c.entries[fp]
	if !ok {
		return
	}
	e := el.Value.(*diskEntry)
	c.order.Remove(el)
	delete(c.entries, fp)
	c.liveBytes -= e.size
	c.deadBytes += e.size
}

// put persists one completion and inserts it into the index, evicting and
// compacting as the bounds require. Only the reproducible payload is stored
// — cache/latency markings are stripped so a replayed hit is
// indistinguishable from the original answer.
func (c *DiskCache) put(fp string, resp CompletionResponse) {
	rec := diskRecord{
		FP:        fp,
		Version:   c.version,
		Text:      resp.Text,
		Prompt:    resp.PromptTokens,
		Compl:     resp.CompletionTokens,
		Truncated: resp.Truncated,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		c.mu.Lock()
		c.stats.WriteErrors++
		c.mu.Unlock()
		return
	}
	data = append(data, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.seg.Write(data); err != nil {
		c.stats.WriteErrors++
		return
	}
	c.insertLocked(fp, CompletionResponse{
		Text:             resp.Text,
		PromptTokens:     resp.PromptTokens,
		CompletionTokens: resp.CompletionTokens,
		Truncated:        resp.Truncated,
	}, int64(len(data)))
	c.evictLocked()
	c.maybeCompactLocked()
}

// insertLocked adds or refreshes one live entry at the MRU position.
func (c *DiskCache) insertLocked(fp string, resp CompletionResponse, size int64) {
	if el, ok := c.entries[fp]; ok {
		// Overridden by a newer record: the old one is dead bytes now.
		old := el.Value.(*diskEntry)
		c.liveBytes -= old.size
		c.deadBytes += old.size
		old.resp, old.size = resp, size
		c.order.MoveToFront(el)
	} else {
		c.entries[fp] = c.order.PushFront(&diskEntry{fp: fp, resp: resp, size: size})
	}
	c.liveBytes += size
}

// evictLocked drops least-recently-used entries until the live set fits the
// byte bound. Evicted records stay on disk as dead bytes until compaction.
func (c *DiskCache) evictLocked() {
	for c.liveBytes > c.maxBytes && c.order.Len() > 1 {
		oldest := c.order.Back()
		e := oldest.Value.(*diskEntry)
		c.order.Remove(oldest)
		delete(c.entries, e.fp)
		c.liveBytes -= e.size
		c.deadBytes += e.size
		c.stats.Evictions++
	}
}

// maybeCompactLocked rewrites the live set into a fresh segment and deletes
// the old files once dead bytes outgrow live bytes (and a floor, so tiny
// caches don't churn). Live entries are written LRU-first so a reload
// reconstructs the same recency order.
func (c *DiskCache) maybeCompactLocked() {
	if c.deadBytes <= c.liveBytes || c.deadBytes < compactionFloor {
		return
	}
	oldSegs, err := c.segments()
	if err != nil {
		return
	}
	c.segIndex++
	seg, err := os.OpenFile(c.segPath(c.segIndex), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	w := bufio.NewWriter(seg)
	ok := true
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*diskEntry)
		data, err := json.Marshal(diskRecord{
			FP:        e.fp,
			Version:   c.version,
			Text:      e.resp.Text,
			Prompt:    e.resp.PromptTokens,
			Compl:     e.resp.CompletionTokens,
			Truncated: e.resp.Truncated,
		})
		if err != nil {
			ok = false
			break
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			ok = false
			break
		}
	}
	if err := w.Flush(); err != nil {
		ok = false
	}
	if !ok {
		// Leave the old segments in place; the half-written new segment is
		// harmless (its records are duplicates, dead on the next load).
		seg.Close()
		c.stats.WriteErrors++
		return
	}
	c.seg.Close()
	c.seg = seg
	for _, p := range oldSegs {
		os.Remove(p)
	}
	c.deadBytes = 0
	c.stats.Compactions++
}

// Stats returns a snapshot of the cache counters and occupancy.
func (c *DiskCache) Stats() DiskCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.order.Len()
	s.LiveBytes = c.liveBytes
	s.DeadBytes = c.deadBytes
	s.MaxBytes = c.maxBytes
	return s
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

// Close releases the active segment file. The cache must not be used after.
func (c *DiskCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seg == nil {
		return nil
	}
	err := c.seg.Close()
	c.seg = nil
	return err
}

// CheckCacheDir verifies dir can host a DiskCache — creating it if needed,
// scanning any existing segments and opening a writable segment — without
// touching a model. For validating user-supplied cache directories up
// front, where a clean error beats a panic from the first engine.
func CheckCacheDir(dir string) error {
	c, err := NewDiskCache(nopBackend{}, dir, 0)
	if err != nil {
		return err
	}
	return c.Close()
}

// nopBackend backs probe-only DiskCache instances; it never completes.
type nopBackend struct{}

// Name implements Model.
func (nopBackend) Name() string { return "nop" }

// Complete implements Model.
func (nopBackend) Complete(CompletionRequest) (CompletionResponse, error) {
	return CompletionResponse{}, fmt.Errorf("llm: the nop backend does not complete prompts")
}

// FindDiskCache walks a wrapper chain and returns the first DiskCache, or
// nil.
func FindDiskCache(m Model) *DiskCache {
	for m != nil {
		if c, ok := m.(*DiskCache); ok {
			return c
		}
		uw, ok := m.(Unwrapper)
		if !ok {
			return nil
		}
		m = uw.Unwrap()
	}
	return nil
}
