package llm

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"

	"llmsql/internal/expr"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
	"llmsql/internal/world"
)

// The prompt protocol: the engine (internal/core) emits prompts composed of
// tagged lines; SynthLM parses them the way an instruction-following model
// would. The tags are:
//
//	TASK: LIST | KEYS | ATTR | ATTRS
//	TABLE: <name> -- <description>
//	COLUMNS: <col> -- <desc> | <col> -- <desc> | ...   (LIST)
//	ENTITY: <key>                                      (ATTR)
//	ENTITIES: <key> | <key> | ...                      (ATTRS)
//	COLUMN: <col> -- <desc>                            (ATTR/ATTRS)
//	FILTER: <condition over the column names>          (optional)
//	EXCLUDE: <key> | <key> | ...                       (optional)
//	MAXROWS: <n>                                       (optional)
//
// LIST/KEYS answers are pipe-separated rows, one per line; ATTR answers are
// a single value, possibly wrapped in a sentence; ATTRS (batched attribute
// retrieval) answers one "<key> | <value>" line per entity. All answer-side
// noise
// (prose preambles, ragged rows, unit suffixes, hallucinations, truncation)
// is injected here so the engine's tolerant parser is exercised exactly as
// it would be against a hosted model.

// NoiseProfile controls how unreliable the simulated model is. All rates
// are probabilities in [0,1] unless noted.
type NoiseProfile struct {
	// Coverage scales which entities the model knows at all; the effective
	// per-entity probability also grows with prominence.
	Coverage float64
	// EnumRecall scales how reliably a known entity surfaces in a single
	// LIST/KEYS completion (per sampling round at temperature > 0).
	EnumRecall float64
	// AttrRecall scales how often a known entity's attribute is correct.
	AttrRecall float64
	// Hallucination is the per-row probability of inventing a nonexistent
	// entity in LIST/KEYS output; temperature amplifies it.
	Hallucination float64
	// ValueNoise is the max relative error applied to numerics the model
	// misremembers.
	ValueNoise float64
	// Confusion is the probability that a misremembered attribute takes
	// another entity's value instead of a perturbed/blank one.
	Confusion float64
	// FormatError is the per-row probability of emitting a malformed row.
	FormatError float64
	// FilterAdherence is the probability a row violating the prompt FILTER
	// is correctly suppressed.
	FilterAdherence float64
}

// Profiles shaped like three model tiers. The absolute values are
// configuration, chosen so the benchmark curves separate clearly.
var (
	// ProfileLarge imitates a frontier model.
	ProfileLarge = NoiseProfile{
		Coverage: 0.95, EnumRecall: 0.92, AttrRecall: 0.93,
		Hallucination: 0.02, ValueNoise: 0.05, Confusion: 0.5,
		FormatError: 0.03, FilterAdherence: 0.95,
	}
	// ProfileMedium imitates a mid-tier model.
	ProfileMedium = NoiseProfile{
		Coverage: 0.82, EnumRecall: 0.78, AttrRecall: 0.82,
		Hallucination: 0.05, ValueNoise: 0.12, Confusion: 0.5,
		FormatError: 0.08, FilterAdherence: 0.85,
	}
	// ProfileSmall imitates a small open model.
	ProfileSmall = NoiseProfile{
		Coverage: 0.60, EnumRecall: 0.60, AttrRecall: 0.65,
		Hallucination: 0.12, ValueNoise: 0.25, Confusion: 0.5,
		FormatError: 0.15, FilterAdherence: 0.70,
	}
)

// WithCoverage returns a copy of p with Coverage set to c (used by the
// model-quality sweep).
func (p NoiseProfile) WithCoverage(c float64) NoiseProfile {
	p.Coverage = c
	return p
}

// SynthLM is the deterministic simulated LLM. It is safe for concurrent use
// (all state is immutable after construction).
type SynthLM struct {
	world   *world.World
	profile NoiseProfile
	seed    int64
	name    string
	// defaultMaxTokens bounds completions when the request does not.
	defaultMaxTokens int
}

// NewSynthLM builds a simulated model over w.
func NewSynthLM(w *world.World, profile NoiseProfile, seed int64) *SynthLM {
	return &SynthLM{
		world:            w,
		profile:          profile,
		seed:             seed,
		name:             fmt.Sprintf("synthlm(cov=%.2f,seed=%d)", profile.Coverage, seed),
		defaultMaxTokens: 4096,
	}
}

// Name implements Model.
func (m *SynthLM) Name() string { return m.name }

// Complete implements Model.
func (m *SynthLM) Complete(req CompletionRequest) (CompletionResponse, error) {
	spec, err := parsePrompt(req.Prompt)
	if err != nil {
		// A real model answers *something* for malformed input; refusing
		// keeps engine bugs visible, so return the error.
		return CompletionResponse{}, err
	}
	maxTok := req.MaxTokens
	if maxTok == 0 {
		maxTok = m.defaultMaxTokens
	}

	var text string
	var truncated bool
	switch spec.task {
	case "LIST", "KEYS":
		text, truncated = m.completeList(spec, req, maxTok)
	case "ATTR":
		text = m.completeAttr(spec, req)
		if maxTok > 0 && CountTokens(text) > maxTok {
			text = TruncateTokens(text, maxTok)
			truncated = true
		}
	case "ATTRS":
		text, truncated = m.completeAttrBatch(spec, req, maxTok)
	default:
		return CompletionResponse{}, fmt.Errorf("llm: unknown task %q", spec.task)
	}

	return CompletionResponse{
		Text:             text,
		PromptTokens:     CountTokens(req.Prompt),
		CompletionTokens: CountTokens(text),
		Truncated:        truncated,
	}, nil
}

// promptSpec is the parsed request.
type promptSpec struct {
	task     string
	table    string
	columns  []string
	entity   string
	entities []string
	column   string
	filter   string
	exclude  map[string]bool
	maxRows  int
}

func parsePrompt(prompt string) (*promptSpec, error) {
	spec := &promptSpec{exclude: map[string]bool{}, maxRows: -1}
	for _, line := range strings.Split(prompt, "\n") {
		line = strings.TrimSpace(line)
		tag, rest, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(rest)
		switch strings.ToUpper(tag) {
		case "TASK":
			spec.task = strings.ToUpper(rest)
		case "TABLE":
			spec.table = strings.ToLower(nameBeforeDesc(rest))
		case "COLUMNS":
			for _, part := range strings.Split(rest, "|") {
				if c := strings.ToLower(nameBeforeDesc(part)); c != "" {
					spec.columns = append(spec.columns, c)
				}
			}
		case "ENTITY":
			spec.entity = rest
		case "ENTITIES":
			for _, part := range strings.Split(rest, "|") {
				if k := strings.TrimSpace(part); k != "" {
					spec.entities = append(spec.entities, k)
				}
			}
		case "COLUMN":
			spec.column = strings.ToLower(nameBeforeDesc(rest))
		case "FILTER":
			spec.filter = rest
		case "EXCLUDE":
			for _, part := range strings.Split(rest, "|") {
				if k := strings.ToLower(strings.TrimSpace(part)); k != "" {
					spec.exclude[k] = true
				}
			}
		case "MAXROWS":
			var n int
			if _, err := fmt.Sscanf(rest, "%d", &n); err == nil {
				spec.maxRows = n
			}
		}
	}
	if spec.task == "" {
		return nil, fmt.Errorf("llm: prompt has no TASK line")
	}
	if spec.table == "" {
		return nil, fmt.Errorf("llm: prompt has no TABLE line")
	}
	return spec, nil
}

func nameBeforeDesc(s string) string {
	name, _, _ := strings.Cut(s, "--")
	return strings.TrimSpace(name)
}

// ---- deterministic knowledge layer ----

// knowU derives a uniform in [0,1) that depends only on the model seed and
// the fact identity — the model's stable "memory".
func (m *SynthLM) knowU(parts ...string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", m.seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(strings.ToLower(p)))
	}
	return float64(h.Sum64()>>11) / float64(1<<53)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// entityKnown reports whether the model knows the entity at all. The
// probability is strongly prominence-weighted: head entities are almost
// surely known at full coverage while tail entities are mostly unknown —
// the defining property of LLM factual recall.
func (m *SynthLM) entityKnown(d *world.Domain, e *world.Entity) bool {
	p := clamp01(m.profile.Coverage * (0.15 + 0.90*e.Prominence))
	return m.knowU(d.Name, e.Key, "known") < p
}

// weakCorrectProb is the chance that a weakly remembered fact still comes
// out right in one sample at temperature > 0. Because the correct value is
// the single most likely answer while wrong answers scatter across donors,
// majority voting over k samples converges to the truth — the mechanism
// self-consistency exploits.
const weakCorrectProb = 0.5

// recalledValue returns the model's belief about one attribute of a known
// entity: (value, correct). Solidly known facts are always right. Weakly
// known facts are deterministic-wrong at temperature 0 (greedy decoding
// repeats the same mistake) but vary per sample at temperature > 0, being
// right with probability weakCorrectProb.
func (m *SynthLM) recalledValue(d *world.Domain, e *world.Entity, col int, rng *rand.Rand, temp float64) (rel.Value, bool) {
	truth := e.Row[col]
	if d.Schema.Col(col).Key {
		return truth, true // the key is the entity's identity
	}
	colName := d.Schema.Col(col).Name
	pCorrect := clamp01(m.profile.AttrRecall * (0.45 + 0.55*e.Prominence))
	if m.knowU(d.Name, e.Key, colName, "recall") < pCorrect {
		return truth, true
	}
	// Weakly known fact.
	if temp > 0 && rng != nil {
		if rng.Float64() < weakCorrectProb {
			return truth, true
		}
		return m.wrongValue(d, e, col, rng.Float64(), rng.Float64(), rng.Float64()), false
	}
	// Greedy decoding: a stable wrong answer derived from the fact hash.
	return m.wrongValue(d, e, col,
		m.knowU(d.Name, e.Key, colName, "mode"),
		m.knowU(d.Name, e.Key, colName, "donor"),
		m.knowU(d.Name, e.Key, colName, "eps")), false
}

// wrongValue fabricates an incorrect belief: either another entity's value
// (confusion) or a numeric perturbation, driven by three uniforms.
func (m *SynthLM) wrongValue(d *world.Domain, e *world.Entity, col int, uMode, uDonor, uEps float64) rel.Value {
	truth := e.Row[col]
	if uMode < m.profile.Confusion || !truth.Type().Numeric() {
		donor := int(uDonor * float64(len(d.Entities)))
		if donor >= len(d.Entities) {
			donor = len(d.Entities) - 1
		}
		return d.Entities[donor].Row[col]
	}
	eps := (2*uEps - 1) * m.profile.ValueNoise
	// Guarantee the perturbed value differs from the truth.
	if eps == 0 {
		eps = m.profile.ValueNoise
	}
	f := truth.AsFloat() * (1 + eps)
	if truth.Type() == rel.TypeInt {
		n := int64(math.Round(f))
		if n == truth.AsInt() {
			n++
		}
		return rel.Int(n)
	}
	return rel.Float(math.Round(f*10) / 10)
}

// beliefRow assembles the model's belief about a full entity row.
func (m *SynthLM) beliefRow(d *world.Domain, e *world.Entity, rng *rand.Rand, temp float64) rel.Row {
	out := make(rel.Row, d.Schema.Len())
	for i := range out {
		v, _ := m.recalledValue(d, e, i, rng, temp)
		out[i] = v
	}
	return out
}

// sessionRng derives the per-request sampling stream.
func (m *SynthLM) sessionRng(req CompletionRequest) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%g|", m.seed, req.Seed, req.Temperature)
	h.Write([]byte(req.Prompt))
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// ---- LIST / KEYS ----

func (m *SynthLM) completeList(spec *promptSpec, req CompletionRequest, maxTok int) (string, bool) {
	d := m.world.Domain(spec.table)
	if d == nil {
		return "I do not have information about that table.", false
	}
	rng := m.sessionRng(req)

	// Resolve requested columns to schema positions (KEYS = key column).
	var cols []int
	if spec.task == "KEYS" || len(spec.columns) == 0 {
		cols = []int{0}
	} else {
		for _, c := range spec.columns {
			if i := d.Schema.IndexOf(c); i >= 0 {
				cols = append(cols, i)
			}
		}
		if len(cols) == 0 {
			cols = []int{0}
		}
	}

	// Compile the filter against the domain schema; an unparseable filter
	// is simply ignored (the model "did not understand" it).
	var pred func(rel.Row) (rel.Tristate, error)
	if spec.filter != "" {
		if e, err := sql.ParseExpr(spec.filter); err == nil {
			if p, err := expr.CompileBool(e, d.Schema); err == nil {
				pred = p
			}
		}
	}

	var lines []string
	count := 0
	for i := range d.Entities {
		e := &d.Entities[i]
		if spec.maxRows >= 0 && count >= spec.maxRows {
			break
		}
		if !m.entityKnown(d, e) {
			continue
		}
		if spec.exclude[strings.ToLower(e.Key)] {
			continue
		}
		// Per-round enumeration: at temperature 0 the subset is fixed; at
		// temperature > 0 each round surfaces a random subset of known
		// entities, so unions across rounds converge upward.
		pEnum := clamp01(m.profile.EnumRecall * (0.40 + 0.60*e.Prominence))
		var u float64
		if req.Temperature <= 0 {
			u = m.knowU(d.Name, e.Key, "enum")
		} else {
			u = rng.Float64()
		}
		if u >= pEnum {
			continue
		}
		belief := m.beliefRow(d, e, rng, req.Temperature)
		if pred != nil {
			ts, err := pred(belief)
			keep := err == nil && ts == rel.True
			if !keep && rng.Float64() < m.profile.FilterAdherence {
				continue // correctly suppressed
			}
		}
		lines = append(lines, m.renderRow(rng, d, belief, cols))
		count++

		// Hallucinate an extra plausible-but-fake row occasionally.
		pH := m.profile.Hallucination * (0.3 + req.Temperature)
		if rng.Float64() < pH && (spec.maxRows < 0 || count < spec.maxRows) {
			fake := m.hallucinatedRow(rng, d)
			if spec.exclude[strings.ToLower(fake[0].AsText())] {
				continue
			}
			if pred != nil {
				ts, err := pred(fake)
				if (err != nil || ts != rel.True) && rng.Float64() < m.profile.FilterAdherence {
					continue
				}
			}
			lines = append(lines, m.renderRow(rng, d, fake, cols))
			count++
		}
	}

	if len(lines) == 0 {
		return "No further rows.", false
	}
	// Prose preamble sometimes (the parser must skip it).
	if rng.Float64() < 0.2 {
		lines = append([]string{fmt.Sprintf("Here are the %s rows I know of:", d.Name)}, lines...)
	}
	if rng.Float64() < 0.1 {
		lines = append(lines, "(end of list)")
	}
	return joinTruncated(lines, maxTok)
}

// renderRow formats a belief row over the chosen columns, injecting format
// noise at the configured rate.
func (m *SynthLM) renderRow(rng *rand.Rand, d *world.Domain, row rel.Row, cols []int) string {
	fields := make([]string, len(cols))
	for i, c := range cols {
		fields[i] = m.renderValue(rng, d, row[c], c)
	}
	line := strings.Join(fields, " | ")
	if rng.Float64() >= m.profile.FormatError {
		return line
	}
	// Malformed variants.
	switch rng.Intn(4) {
	case 0: // bullet prefix
		return "- " + line
	case 1: // comma separator instead of pipe
		return strings.Join(fields, ", ")
	case 2: // drop the last field
		if len(fields) > 1 {
			return strings.Join(fields[:len(fields)-1], " | ")
		}
		return line
	default: // wrap in commentary
		return fmt.Sprintf("Row: %s.", line)
	}
}

// renderValue renders one value, occasionally decorating numerics the way
// chatty models do ("about 68", "1,408").
func (m *SynthLM) renderValue(rng *rand.Rand, d *world.Domain, v rel.Value, col int) string {
	if v.IsNull() {
		return "unknown"
	}
	s := v.String()
	if !v.Type().Numeric() {
		return s
	}
	switch {
	case rng.Float64() < 0.05:
		return "about " + s
	case rng.Float64() < 0.05 && v.Type() == rel.TypeInt && v.AsInt() >= 1000:
		return addThousandsSeparators(v.AsInt())
	default:
		return s
	}
}

func addThousandsSeparators(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// hallucinatedRow fabricates a plausible fake entity for the domain.
func (m *SynthLM) hallucinatedRow(rng *rand.Rand, d *world.Domain) rel.Row {
	row := make(rel.Row, d.Schema.Len())
	// Fake key: blend of two real keys, which looks plausible and is
	// guaranteed distinct from both.
	a := d.Entities[rng.Intn(len(d.Entities))].Key
	b := d.Entities[rng.Intn(len(d.Entities))].Key
	fakeKey := blendNames(a, b)
	if d.Entity(fakeKey) != nil {
		fakeKey = fakeKey + "ia"
	}
	row[0] = rel.Text(fakeKey)
	// Fake attributes: borrow a random real entity's values column-wise.
	for i := 1; i < d.Schema.Len(); i++ {
		donor := d.Entities[rng.Intn(len(d.Entities))]
		row[i] = donor.Row[i]
	}
	return row
}

func blendNames(a, b string) string {
	ha := a[:(len(a)+1)/2]
	hb := b[len(b)/2:]
	out := strings.TrimSpace(ha + hb)
	if out == "" {
		return "Zzyzx"
	}
	return out
}

// ---- ATTR ----

func (m *SynthLM) completeAttr(spec *promptSpec, req CompletionRequest) string {
	d := m.world.Domain(spec.table)
	if d == nil {
		return "I do not have information about that table."
	}
	rng := m.sessionRng(req)
	e := d.Entity(spec.entity)
	col := d.Schema.IndexOf(spec.column)
	if col < 0 {
		return "I do not know that attribute."
	}
	if e == nil || !m.entityKnown(d, e) {
		// Unknown entity: either admit it or hallucinate confidently.
		if rng.Float64() < 0.5 {
			return "I'm not sure."
		}
		donor := d.Entities[rng.Intn(len(d.Entities))]
		return m.wrapAttr(rng, spec, donor.Row[col].String())
	}
	v, _ := m.recalledValue(d, e, col, rng, req.Temperature)
	if v.IsNull() {
		return "I'm not sure."
	}
	return m.wrapAttr(rng, spec, v.String())
}

// completeAttrBatch answers a batched attribute request (TASK: ATTRS): one
// "<key> | <value>" line per requested entity, in order. Beliefs come from
// the same deterministic knowledge layer as single ATTR answers, so a
// solidly known fact gets the same value whether asked alone or in a
// batch. Per-line format noise (dropped keys, wrong separators, bullets)
// is injected at the profile's rate so the engine's per-key fallback path
// is exercised like it would be against a hosted model.
func (m *SynthLM) completeAttrBatch(spec *promptSpec, req CompletionRequest, maxTok int) (string, bool) {
	d := m.world.Domain(spec.table)
	if d == nil {
		return "I do not have information about that table.", false
	}
	col := d.Schema.IndexOf(spec.column)
	if col < 0 {
		return "I do not know that attribute.", false
	}
	rng := m.sessionRng(req)
	var lines []string
	for _, key := range spec.entities {
		e := d.Entity(key)
		var value string
		switch {
		case e == nil || !m.entityKnown(d, e):
			if rng.Float64() < 0.5 {
				value = "unknown"
			} else {
				donor := d.Entities[rng.Intn(len(d.Entities))]
				value = donor.Row[col].String()
			}
		default:
			v, _ := m.recalledValue(d, e, col, rng, req.Temperature)
			if v.IsNull() {
				value = "unknown"
			} else {
				value = v.String()
			}
		}
		line := key + " | " + value
		if rng.Float64() < m.profile.FormatError {
			// Malformed variants; the bare value drops the key entirely and
			// cannot be attributed, forcing a single-key fallback.
			switch rng.Intn(3) {
			case 0:
				line = "- " + line
			case 1:
				line = value
			default:
				line = fmt.Sprintf("%s: %s", key, value)
			}
		}
		lines = append(lines, line)
	}
	if len(lines) == 0 {
		return "No entities given.", false
	}
	if rng.Float64() < 0.15 {
		lines = append([]string{"Here are the values:"}, lines...)
	}
	return joinTruncated(lines, maxTok)
}

// wrapAttr renders an attribute answer in one of several phrasings.
func (m *SynthLM) wrapAttr(rng *rand.Rand, spec *promptSpec, value string) string {
	switch rng.Intn(4) {
	case 0:
		return value
	case 1:
		return fmt.Sprintf("The %s of %s is %s.", spec.column, spec.entity, value)
	case 2:
		return value + "."
	default:
		return fmt.Sprintf("%s: %s", spec.column, value)
	}
}
