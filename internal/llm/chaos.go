package llm

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// ChaosProfile configures the deterministic fault injector. The zero value
// injects nothing (Enabled reports false), so a Config can carry one
// unconditionally. Rates are independent per-call probabilities in [0,1];
// their sum is clamped to 1 by normalization, faulting every call when the
// caller over-provisions.
type ChaosProfile struct {
	// Seed keys the fault stream. Two runs with the same seed and the same
	// request sequence inject byte-identical faults.
	Seed int64
	// TransientRate injects retryable provider errors (the request never
	// reaches the inner backend).
	TransientRate float64
	// RateLimitRate injects capacity rejections (classified RateLimited,
	// so the Retrier backs off harder).
	RateLimitRate float64
	// MalformedRate injects completions that fail response validation —
	// modeled as a retryable decode error, never as corrupted text handed
	// to the parser, so surviving rows stay byte-identical to a fault-free
	// run.
	MalformedRate float64
	// SpikeRate lets a call through but adds SpikeLatency of virtual time
	// to it (a slow replica, a long queue) — the trigger hedged requests
	// care about.
	SpikeRate    float64
	SpikeLatency time.Duration
}

// Enabled reports whether any fault class has a positive rate.
func (p ChaosProfile) Enabled() bool {
	return p.TransientRate > 0 || p.RateLimitRate > 0 || p.MalformedRate > 0 || p.SpikeRate > 0
}

// FailureRate returns the per-attempt probability that a call fails
// outright (transient, rate-limit or malformed; spikes delay but succeed),
// clamped to [0,1]. The scan cost estimator prices expected retry overhead
// from it.
func (p ChaosProfile) FailureRate() float64 {
	p = p.normalized()
	r := p.TransientRate + p.RateLimitRate + p.MalformedRate
	if r > 1 {
		r = 1
	}
	return r
}

// normalized clamps each rate into [0,1] and the spike latency to >= 0.
func (p ChaosProfile) normalized() ChaosProfile {
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	p.TransientRate = clamp(p.TransientRate)
	p.RateLimitRate = clamp(p.RateLimitRate)
	p.MalformedRate = clamp(p.MalformedRate)
	p.SpikeRate = clamp(p.SpikeRate)
	if p.SpikeLatency < 0 {
		p.SpikeLatency = 0
	}
	return p
}

// ChaosStats counts injected faults by class.
type ChaosStats struct {
	// Calls counts completions that reached the injector.
	Calls int
	// Transient / RateLimited / Malformed count injected failures (the
	// inner backend was never called); Spikes count delayed successes.
	Transient   int
	RateLimited int
	Malformed   int
	Spikes      int
}

// Chaos is a Backend wrapper that injects deterministic faults in front of
// the inner backend. Each completion draws one uniform from an fnv-64 hash
// of (profile seed, request fingerprint, per-fingerprint attempt number) —
// no wall clock, no global rand — and maps it onto the fault classes by
// cumulative rate. Keying on the attempt number means a retry of the same
// request re-draws independently (a transient fault clears on retry with
// probability 1-rate), while keying on the fingerprint makes the stream
// independent of call order: any interleaving of distinct requests sees
// the same per-request fault history, which is what makes chaos runs
// replayable at any Parallelism.
//
// Determinism assumes same-fingerprint requests are not issued
// concurrently; the engine's stacks guarantee that (the Coalescer
// single-flights duplicates, and the Retrier serializes its own attempts).
type Chaos struct {
	Inner Model

	profile ChaosProfile

	mu       sync.Mutex
	attempts map[string]int // fingerprint -> next attempt number
	stats    ChaosStats
}

// NewChaos wraps inner with the fault injector described by profile.
func NewChaos(inner Model, profile ChaosProfile) *Chaos {
	return &Chaos{
		Inner:    inner,
		profile:  profile.normalized(),
		attempts: make(map[string]int),
	}
}

// Name implements Model.
func (c *Chaos) Name() string { return c.Inner.Name() }

// Unwrap implements Unwrapper.
func (c *Chaos) Unwrap() Model { return c.Inner }

// Complete implements Model: it draws the fault class for this attempt
// and either fails without touching the inner backend, passes through, or
// passes through with SpikeLatency added to the response's FaultLatency.
func (c *Chaos) Complete(req CompletionRequest) (CompletionResponse, error) {
	fp := Fingerprint(c.Name(), req)
	c.mu.Lock()
	attempt := c.attempts[fp]
	c.attempts[fp] = attempt + 1
	c.stats.Calls++
	c.mu.Unlock()

	u := chaosU(c.profile.Seed, fp, attempt)
	p := c.profile
	switch {
	case u < p.TransientRate:
		c.count(func(s *ChaosStats) { s.Transient++ })
		return CompletionResponse{}, fmt.Errorf("chaos: injected transient failure (attempt %d): %w", attempt, Retryable)
	case u < p.TransientRate+p.RateLimitRate:
		c.count(func(s *ChaosStats) { s.RateLimited++ })
		return CompletionResponse{}, fmt.Errorf("chaos: injected rate limit (attempt %d): %w", attempt, RateLimited)
	case u < p.TransientRate+p.RateLimitRate+p.MalformedRate:
		c.count(func(s *ChaosStats) { s.Malformed++ })
		return CompletionResponse{}, fmt.Errorf("chaos: injected malformed completion (attempt %d): %w", attempt, Retryable)
	}
	resp, err := c.Inner.Complete(req)
	if err != nil {
		return resp, err
	}
	if u < p.TransientRate+p.RateLimitRate+p.MalformedRate+p.SpikeRate {
		c.count(func(s *ChaosStats) { s.Spikes++ })
		resp.FaultLatency += p.SpikeLatency
	}
	return resp, nil
}

func (c *Chaos) count(f func(*ChaosStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Stats returns a snapshot of the injection counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// chaosU derives the uniform in [0,1) deciding one attempt's fate. Same
// derivation idiom as SynthLM's knowledge layer: fnv-64a over the identity
// tuple, top 53 bits as the mantissa. The attempt number is hashed before
// the fingerprint: fnv's single post-xor multiply diffuses a trailing-byte
// difference only into the low ~48 bits, which the mantissa's top bits
// never see — attempt-last would make every retry redraw the first
// attempt's fate. Leading with it sends the difference through one
// multiply per fingerprint byte, which is plenty of avalanche.
func chaosU(seed int64, fp string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "chaos|%d|%d|%s", seed, attempt, fp)
	return float64(h.Sum64()>>11) / float64(1<<53)
}
