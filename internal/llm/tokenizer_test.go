package llm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize("The cat sat.")
	want := []string{"The", "cat", "sat", "."}
	if len(toks) != len(want) {
		t.Fatalf("tokens: %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("tok[%d] = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestTokenizeSubwordSplitting(t *testing.T) {
	toks := Tokenize("supersymmetrization")
	// 19 letters -> chunks of 4: 4+4+4+4+3 = 5 tokens.
	if len(toks) != 5 {
		t.Fatalf("subword count: %v", toks)
	}
	if strings.Join(toks, "") != "supersymmetrization" {
		t.Fatalf("subwords lose text: %v", toks)
	}
}

func TestTokenizePunctuation(t *testing.T) {
	toks := Tokenize("a|b || c")
	want := []string{"a", "|", "b", "|", "|", "c"}
	if len(toks) != len(want) {
		t.Fatalf("punct tokens: %v", toks)
	}
}

func TestCountTokensMatchesTokenize(t *testing.T) {
	f := func(s string) bool {
		return CountTokens(s) == len(Tokenize(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateTokens(t *testing.T) {
	text := "one two tree four five"
	if got := TruncateTokens(text, 3); got != "one two tree" {
		t.Fatalf("truncate: %q", got)
	}
	if got := TruncateTokens(text, 100); got != text {
		t.Fatalf("no-op truncate: %q", got)
	}
	if got := TruncateTokens(text, 0); got != "" {
		t.Fatalf("zero truncate: %q", got)
	}
	// Mid-word cut: "elephants" = 3 tokens (4+4+1).
	if got := TruncateTokens("elephants", 1); got != "elep" {
		t.Fatalf("mid-word: %q", got)
	}
}

// Property: truncation yields a prefix with exactly min(max, total) tokens.
func TestTruncateTokensProperty(t *testing.T) {
	f := func(s string, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		out := TruncateTokens(s, n)
		if !strings.HasPrefix(s, out) {
			return false
		}
		total := CountTokens(s)
		want := n
		if total < n {
			want = total
		}
		return CountTokens(out) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountTokensEmpty(t *testing.T) {
	if CountTokens("") != 0 || CountTokens("   \n\t ") != 0 {
		t.Fatal("whitespace must count zero tokens")
	}
}
