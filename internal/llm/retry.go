package llm

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// RetryPolicy tunes the Retrier. The zero value selects the defaults
// (DefaultRetryPolicy), so a Config can carry one unconditionally;
// negative values disable the optional pieces (jitter, breaker) where
// noted.
type RetryPolicy struct {
	// MaxAttempts is the per-call attempt budget (1 = no retries;
	// 0 selects the default).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it, capped at MaxBackoff. Both waits are virtual time,
	// charged through the response's FaultLatency — never a real sleep.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// RateLimitFactor multiplies the backoff when the failure classified
	// RateLimited: hammering a throttled backend extends the outage.
	RateLimitFactor float64
	// JitterFrac spreads each backoff deterministically into
	// [1-j, 1+j) × nominal, keyed on the request fingerprint and attempt
	// number — de-synchronizing retry storms without global rand.
	// 0 selects the default; negative disables jitter.
	JitterFrac float64
	// BreakerThreshold opens the circuit breaker after that many
	// consecutive exhausted calls; while open, BreakerCooldown calls fail
	// fast before one probe is let through (half-open). 0 selects the
	// defaults; a negative threshold disables the breaker.
	BreakerThreshold int
	BreakerCooldown  int
	// HedgeAfter races a duplicate request against any primary attempt
	// whose virtual latency exceeds it, taking whichever finishes first in
	// virtual time (0 = hedging off). The loser's tokens are billed as
	// waste.
	HedgeAfter time.Duration
}

// DefaultRetryPolicy returns the defaults: 4 attempts, 200ms–5s capped
// exponential backoff with 25% jitter, 4× rate-limit penalty, breaker at 8
// consecutive failures with a 4-call cooldown, hedging off.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:      4,
		BaseBackoff:      200 * time.Millisecond,
		MaxBackoff:       5 * time.Second,
		RateLimitFactor:  4,
		JitterFrac:       0.25,
		BreakerThreshold: 8,
		BreakerCooldown:  4,
	}
}

// Normalized resolves the zero-selects-default / negative-disables
// conventions into the concrete policy a Retrier built from p would run
// with (exported so cost estimators can price the same policy).
func (p RetryPolicy) Normalized() RetryPolicy { return p.normalized() }

// normalized resolves the zero-selects-default / negative-disables
// conventions into concrete values.
func (p RetryPolicy) normalized() RetryPolicy {
	def := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = def.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	if p.RateLimitFactor <= 0 {
		p.RateLimitFactor = def.RateLimitFactor
	}
	switch {
	case p.JitterFrac < 0:
		p.JitterFrac = 0
	case p.JitterFrac == 0:
		p.JitterFrac = def.JitterFrac
	case p.JitterFrac > 1:
		p.JitterFrac = 1
	}
	switch {
	case p.BreakerThreshold < 0:
		p.BreakerThreshold = 0 // disabled
	case p.BreakerThreshold == 0:
		p.BreakerThreshold = def.BreakerThreshold
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = def.BreakerCooldown
	}
	if p.HedgeAfter < 0 {
		p.HedgeAfter = 0
	}
	return p
}

// RetrierStats counts the recovery work a Retrier performed.
type RetrierStats struct {
	// Calls counts completions asked of the Retrier; Retries counts extra
	// attempts beyond each call's first (hedge duplicates included);
	// Failures counts calls that exhausted their budget.
	Calls    int
	Retries  int
	Failures int
	// HedgesLaunched / HedgesWon count hedge races and duplicate wins.
	HedgesLaunched int
	HedgesWon      int
	// BreakerOpens counts closed→open transitions; BreakerFastFails counts
	// calls rejected without an attempt while open.
	BreakerOpens     int
	BreakerFastFails int
	// BackoffWait is the total virtual time spent waiting between
	// attempts.
	BackoffWait time.Duration
}

// errBreakerOpen classifies breaker rejections as Retryable: the backend
// may recover, and a PartialResults scan may degrade around them.
var errBreakerOpen = fmt.Errorf("llm: circuit breaker open: %w", Retryable)

// Retrier is a Backend wrapper that re-issues failed completions with
// capped exponential backoff, deterministic jitter, a per-backend circuit
// breaker and optional hedged requests. All waiting is virtual: backoff
// and failed-attempt round trips are charged into the successful
// response's FaultLatency (or a RetryError's, when the budget is spent),
// which CountingModel folds into SimLatency and scans feed through
// llm.Sched — so SimWall prices retries honestly and EXPLAIN ANALYZE shows
// them, with no real sleep anywhere (the walltime analyzer enforces that).
//
// Error handling is class-based (see Retryable, RateLimited, Fatal):
// Fatal and unclassified errors pass through on the first attempt, which
// makes the Retrier a transparent no-op on a healthy deterministic stack.
type Retrier struct {
	Inner Model

	policy RetryPolicy

	mu          sync.Mutex
	cost        CostModel
	consecFails int
	open        bool
	fastFails   int // fail-fast calls remaining while open
	halfOpen    bool
	stats       RetrierStats
}

// NewRetrier wraps inner with policy (zero fields select defaults) under
// the default cost model; callers that charge a different CostModel must
// keep it in sync via SetCost.
func NewRetrier(inner Model, policy RetryPolicy) *Retrier {
	return &Retrier{Inner: inner, policy: policy.normalized(), cost: DefaultCostModel()}
}

// Name implements Model.
func (r *Retrier) Name() string { return r.Inner.Name() }

// Unwrap implements Unwrapper.
func (r *Retrier) Unwrap() Model { return r.Inner }

// SetCost updates the cost model used to price failed attempts, backoff
// and hedge races in virtual time.
func (r *Retrier) SetCost(c CostModel) {
	r.mu.Lock()
	r.cost = c
	r.mu.Unlock()
}

// Policy returns the normalized policy in force.
func (r *Retrier) Policy() RetryPolicy { return r.policy }

// Stats returns a snapshot of the recovery counters.
func (r *Retrier) Stats() RetrierStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Complete implements Model.
func (r *Retrier) Complete(req CompletionRequest) (CompletionResponse, error) {
	r.mu.Lock()
	r.stats.Calls++
	cost := r.cost
	if r.policy.BreakerThreshold > 0 && r.open {
		if r.fastFails > 0 {
			r.fastFails--
			r.stats.BreakerFastFails++
			r.mu.Unlock()
			return CompletionResponse{}, &RetryError{Attempts: 0, Err: errBreakerOpen}
		}
		// Cooldown spent: half-open, let this call probe the backend.
		r.open = false
		r.halfOpen = true
	}
	r.mu.Unlock()

	fp := Fingerprint(r.Name(), req)
	var fault time.Duration
	attempts := 0
	for {
		attempts++
		resp, err := r.Inner.Complete(req)
		if err == nil {
			resp, attempts = r.maybeHedge(req, resp, attempts, cost)
			resp.Attempts = attempts
			resp.FaultLatency += fault
			r.noteOutcome(true, attempts-1)
			return resp, nil
		}
		if !Degradable(err) {
			// Fatal or unclassified: an engine bug, not backend weather.
			// Surface it untouched and leave the breaker alone.
			return CompletionResponse{}, err
		}
		// The failed attempt still consumed a round trip of virtual time.
		fault += cost.PerCallLatency
		if attempts >= r.policy.MaxAttempts {
			r.noteOutcome(false, attempts-1)
			return CompletionResponse{}, &RetryError{Attempts: attempts, FaultLatency: fault, Err: err}
		}
		wait := r.backoff(fp, attempts, errors.Is(err, RateLimited))
		fault += wait
		r.mu.Lock()
		r.stats.BackoffWait += wait
		r.mu.Unlock()
	}
}

// maybeHedge races a duplicate request against a slow primary attempt.
// The race is decided in virtual time: the duplicate starts HedgeAfter
// after the primary, and whichever finishes first wins. Both attempts hit
// a deterministic backend with an identical request, so the winning text
// is identical either way — hedging moves latency, never rows. The
// loser's tokens are billed as waste on the winning response.
func (r *Retrier) maybeHedge(req CompletionRequest, primary CompletionResponse, attempts int, cost CostModel) (CompletionResponse, int) {
	ha := r.policy.HedgeAfter
	if ha <= 0 {
		return primary, attempts
	}
	l1 := cost.Latency(primary.PromptTokens, primary.CompletionTokens) + primary.FaultLatency
	if l1 <= ha {
		return primary, attempts
	}
	attempts++
	primary.HedgeLaunched = true
	r.mu.Lock()
	r.stats.HedgesLaunched++
	r.mu.Unlock()
	dup, err := r.Inner.Complete(req)
	if err != nil {
		// The duplicate faulted; it ran in the primary's shadow, so it
		// costs nothing beyond its (zero-token) spend.
		return primary, attempts
	}
	l2 := ha + cost.Latency(dup.PromptTokens, dup.CompletionTokens) + dup.FaultLatency
	if l2 < l1 {
		dup.HedgeLaunched, dup.HedgeWon = true, true
		dup.WastedPromptTokens += primary.PromptTokens
		dup.WastedCompletionTokens += primary.CompletionTokens
		// The winner's critical path includes the HedgeAfter delay before
		// the duplicate was launched.
		dup.FaultLatency += ha
		r.mu.Lock()
		r.stats.HedgesWon++
		r.mu.Unlock()
		return dup, attempts
	}
	primary.WastedPromptTokens += dup.PromptTokens
	primary.WastedCompletionTokens += dup.CompletionTokens
	return primary, attempts
}

// backoff returns the virtual wait before retry number attempt (1-based:
// the wait after the attempt'th failure), exponential from BaseBackoff,
// capped, rate-limit-scaled, and jittered deterministically.
func (r *Retrier) backoff(fp string, attempt int, rateLimited bool) time.Duration {
	p := r.policy
	d := p.MaxBackoff
	if shift := attempt - 1; shift < 20 {
		if b := p.BaseBackoff << shift; b < d {
			d = b
		}
	}
	if rateLimited {
		d = time.Duration(float64(d) * p.RateLimitFactor)
		if d > p.MaxBackoff*time.Duration(int64(p.RateLimitFactor)+1) {
			d = p.MaxBackoff * time.Duration(int64(p.RateLimitFactor)+1)
		}
	}
	if p.JitterFrac > 0 {
		d = time.Duration(float64(d) * (1 - p.JitterFrac + 2*p.JitterFrac*backoffU(fp, attempt)))
	}
	return d
}

// noteOutcome advances the circuit breaker and the retry counters after a
// call's terminal outcome.
func (r *Retrier) noteOutcome(success bool, retries int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Retries += retries
	if success {
		r.consecFails = 0
		r.halfOpen = false
		return
	}
	r.stats.Failures++
	if r.policy.BreakerThreshold <= 0 {
		return
	}
	r.consecFails++
	if r.halfOpen || r.consecFails >= r.policy.BreakerThreshold {
		r.open = true
		r.halfOpen = false
		r.fastFails = r.policy.BreakerCooldown
		r.consecFails = 0
		r.stats.BreakerOpens++
	}
}

// backoffU derives the deterministic jitter uniform in [0,1) for one
// (request, attempt) pair. Attempt-first for the same reason as chaosU:
// fnv barely diffuses a trailing-byte difference into the top mantissa
// bits.
func backoffU(fp string, attempt int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "backoff|%d|%s", attempt, fp)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// FindRetrier walks a wrapper chain and returns the first Retrier, or nil.
func FindRetrier(m Model) *Retrier {
	for m != nil {
		if r, ok := m.(*Retrier); ok {
			return r
		}
		uw, ok := m.(Unwrapper)
		if !ok {
			return nil
		}
		m = uw.Unwrap()
	}
	return nil
}

// FindChaos walks a wrapper chain and returns the first Chaos, or nil.
func FindChaos(m Model) *Chaos {
	for m != nil {
		if c, ok := m.(*Chaos); ok {
			return c
		}
		uw, ok := m.(Unwrapper)
		if !ok {
			return nil
		}
		m = uw.Unwrap()
	}
	return nil
}
