package llm

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoModel returns a canned completion, for wrapper tests.
type echoModel struct {
	mu    sync.Mutex
	calls int
}

func (e *echoModel) Name() string { return "echo" }

func (e *echoModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	e.mu.Lock()
	e.calls++
	e.mu.Unlock()
	text := fmt.Sprintf("echo:%d:%d", len(req.Prompt), req.Seed)
	return CompletionResponse{
		Text:             text,
		PromptTokens:     CountTokens(req.Prompt),
		CompletionTokens: CountTokens(text),
	}, nil
}

func TestCostModel(t *testing.T) {
	c := CostModel{
		PerCallLatency:       100 * time.Millisecond,
		PerPromptToken:       time.Millisecond,
		PerCompletionToken:   10 * time.Millisecond,
		PromptUSDPerMTok:     1.0,
		CompletionUSDPerMTok: 3.0,
	}
	lat := c.Latency(50, 20)
	want := 100*time.Millisecond + 50*time.Millisecond + 200*time.Millisecond
	if lat != want {
		t.Fatalf("latency: %v want %v", lat, want)
	}
	d := c.Dollars(1_000_000, 1_000_000)
	if d != 4.0 {
		t.Fatalf("dollars: %f", d)
	}
}

func TestCountingModel(t *testing.T) {
	inner := &echoModel{}
	cm := NewCounting(inner)
	for i := 0; i < 3; i++ {
		if _, err := cm.Complete(CompletionRequest{Prompt: "hello world"}); err != nil {
			t.Fatal(err)
		}
	}
	u := cm.Usage()
	if u.Calls != 3 {
		t.Fatalf("calls: %d", u.Calls)
	}
	// "hello world" tokenizes as hell|o|worl|d = 4 tokens per call.
	if u.PromptTokens != 3*4 {
		t.Fatalf("prompt tokens: %d", u.PromptTokens)
	}
	if u.SimLatency <= 0 || u.SimDollars <= 0 {
		t.Fatalf("cost accounting: %+v", u)
	}
	cm.Reset()
	if cm.Usage().Calls != 0 {
		t.Fatal("reset failed")
	}
}

func TestUsageAdd(t *testing.T) {
	a := Usage{Calls: 1, PromptTokens: 10, CompletionTokens: 5, SimLatency: time.Second, SimDollars: 0.5}
	b := Usage{Calls: 2, PromptTokens: 20, CompletionTokens: 15, SimLatency: time.Second, SimDollars: 1.0}
	a.Add(b)
	if a.Calls != 3 || a.TotalTokens() != 50 || a.SimDollars != 1.5 {
		t.Fatalf("add: %+v", a)
	}
}

func TestCacheModel(t *testing.T) {
	inner := &echoModel{}
	cache := NewCache(inner)
	req := CompletionRequest{Prompt: "p", Seed: 1}
	r1, err := cache.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cache.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r2.Text {
		t.Fatal("cache changed result")
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls: %d", inner.calls)
	}
	// Different seed misses.
	if _, err := cache.Complete(CompletionRequest{Prompt: "p", Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 2 {
		t.Fatalf("inner calls after seed change: %d", inner.calls)
	}
	s := cache.CacheStats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCountingModelConcurrent(t *testing.T) {
	cm := NewCounting(&echoModel{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := cm.Complete(CompletionRequest{Prompt: "x"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if cm.Usage().Calls != 400 {
		t.Fatalf("concurrent calls: %d", cm.Usage().Calls)
	}
}
