package llm

import (
	"strings"
	"testing"

	"llmsql/internal/world"
)

func synthWorld() *world.World {
	return world.Generate(world.Config{Seed: 21, Countries: 60, Movies: 80, Laureates: 40, Companies: 40})
}

func listPrompt(table string, extra ...string) string {
	lines := []string{
		"You are a precise data assistant. Answer strictly from your world knowledge.",
		"TASK: LIST",
		"TABLE: " + table + " -- test domain",
		"COLUMNS: name -- the key | capital -- the capital city | population -- population in millions",
	}
	lines = append(lines, extra...)
	lines = append(lines, "Respond with one row per line, fields separated by ' | ', in column order. Output data only.")
	return strings.Join(lines, "\n")
}

func TestSynthLMDeterministic(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 99)
	req := CompletionRequest{Prompt: listPrompt("country"), Seed: 1, Temperature: 0.7}
	r1, err := m.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r2.Text {
		t.Fatal("same request must give identical completion")
	}
	// Different seed gives (almost surely) different text at temp > 0.
	r3, err := m.Complete(CompletionRequest{Prompt: listPrompt("country"), Seed: 2, Temperature: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text == r3.Text {
		t.Log("warning: different seeds produced identical output (possible but unlikely)")
	}
}

func TestSynthLMGreedyIsSeedInvariant(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 99)
	// At temperature 0 the enumerated subset must not depend on the seed.
	r1, _ := m.Complete(CompletionRequest{Prompt: listPrompt("country"), Seed: 1, Temperature: 0})
	r2, _ := m.Complete(CompletionRequest{Prompt: listPrompt("country"), Seed: 77, Temperature: 0})
	keys1 := firstFields(r1.Text)
	keys2 := firstFields(r2.Text)
	if strings.Join(keys1, ";") != strings.Join(keys2, ";") {
		t.Fatalf("greedy subsets differ:\n%v\nvs\n%v", keys1, keys2)
	}
}

// firstFields extracts the first pipe-field of each data-looking line.
func firstFields(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, "|") {
			continue
		}
		f := strings.TrimSpace(strings.SplitN(line, "|", 2)[0])
		f = strings.TrimPrefix(f, "- ")
		f = strings.TrimPrefix(f, "Row: ")
		out = append(out, f)
	}
	return out
}

func TestSynthLMListRecallGrowsWithProfile(t *testing.T) {
	w := synthWorld()
	n := len(w.Domain("country").Entities)
	small := NewSynthLM(w, ProfileSmall, 5)
	large := NewSynthLM(w, ProfileLarge, 5)
	rs, _ := small.Complete(CompletionRequest{Prompt: listPrompt("country")})
	rl, _ := large.Complete(CompletionRequest{Prompt: listPrompt("country")})
	ns, nl := len(firstFields(rs.Text)), len(firstFields(rl.Text))
	if nl <= ns {
		t.Fatalf("large model (%d rows) must list more than small (%d rows)", nl, ns)
	}
	if nl > n+n/3 {
		t.Fatalf("too many rows (%d) for %d entities", nl, n)
	}
}

func TestSynthLMHeadBetterThanTail(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileMedium, 31)
	d := w.Domain("country")
	resp, _ := m.Complete(CompletionRequest{Prompt: listPrompt("country")})
	listed := map[string]bool{}
	for _, k := range firstFields(resp.Text) {
		listed[strings.ToLower(k)] = true
	}
	headHits, tailHits := 0, 0
	half := len(d.Entities) / 2
	for i, e := range d.Entities {
		if listed[strings.ToLower(e.Key)] {
			if i < half {
				headHits++
			} else {
				tailHits++
			}
		}
	}
	if headHits <= tailHits {
		t.Fatalf("head recall (%d) must beat tail recall (%d)", headHits, tailHits)
	}
}

func TestSynthLMExclude(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 7)
	base, _ := m.Complete(CompletionRequest{Prompt: listPrompt("country")})
	keys := firstFields(base.Text)
	if len(keys) < 3 {
		t.Fatalf("too few keys to test exclude: %v", keys)
	}
	excl := "EXCLUDE: " + keys[0] + " | " + keys[1]
	resp, _ := m.Complete(CompletionRequest{Prompt: listPrompt("country", excl)})
	for _, k := range firstFields(resp.Text) {
		if strings.EqualFold(k, keys[0]) || strings.EqualFold(k, keys[1]) {
			t.Fatalf("excluded key %q still listed", k)
		}
	}
}

func TestSynthLMMaxRows(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 7)
	resp, _ := m.Complete(CompletionRequest{Prompt: listPrompt("country", "MAXROWS: 5")})
	if n := len(firstFields(resp.Text)); n > 5 {
		t.Fatalf("maxrows violated: %d", n)
	}
}

func TestSynthLMFilterReducesRows(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 7)
	all, _ := m.Complete(CompletionRequest{Prompt: listPrompt("country")})
	filtered, _ := m.Complete(CompletionRequest{Prompt: listPrompt("country", "FILTER: population > 100")})
	nAll, nF := len(firstFields(all.Text)), len(firstFields(filtered.Text))
	if nF >= nAll {
		t.Fatalf("filter did not reduce rows: %d -> %d", nAll, nF)
	}
}

func TestSynthLMTruncation(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 7)
	resp, err := m.Complete(CompletionRequest{Prompt: listPrompt("country"), MaxTokens: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("expected truncation")
	}
	if resp.CompletionTokens > 30 {
		t.Fatalf("completion tokens %d > budget", resp.CompletionTokens)
	}
}

func TestSynthLMAttrTask(t *testing.T) {
	w := synthWorld()
	d := w.Domain("country")
	m := NewSynthLM(w, ProfileLarge, 7)
	top := d.Entities[0] // most prominent: almost surely known
	prompt := strings.Join([]string{
		"TASK: ATTR",
		"TABLE: country -- a country",
		"ENTITY: " + top.Key,
		"COLUMN: capital -- the capital city",
		"Respond with only the value.",
	}, "\n")
	resp, err := m.Complete(CompletionRequest{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	truth := top.Row[1].AsText()
	if !strings.Contains(resp.Text, truth) {
		t.Fatalf("attr answer %q does not contain truth %q", resp.Text, truth)
	}
}

func TestSynthLMAttrUnknownEntity(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 7)
	prompt := strings.Join([]string{
		"TASK: ATTR",
		"TABLE: country -- a country",
		"ENTITY: Definitely Not A Country",
		"COLUMN: capital -- the capital city",
	}, "\n")
	resp, err := m.Complete(CompletionRequest{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text == "" {
		t.Fatal("must answer something")
	}
}

func TestSynthLMErrorsOnGarbagePrompt(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 7)
	if _, err := m.Complete(CompletionRequest{Prompt: "tell me a story"}); err == nil {
		t.Fatal("garbage prompt must error")
	}
	if _, err := m.Complete(CompletionRequest{Prompt: "TASK: LIST"}); err == nil {
		t.Fatal("missing TABLE must error")
	}
}

func TestSynthLMUnknownTable(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 7)
	resp, err := m.Complete(CompletionRequest{Prompt: listPrompt("starships")})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(resp.Text, "|") {
		t.Fatalf("unknown table must not return rows: %q", resp.Text)
	}
}

func TestSynthLMSamplingUnionGrows(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileMedium, 13)
	seen := map[string]bool{}
	var counts []int
	for round := 0; round < 8; round++ {
		resp, err := m.Complete(CompletionRequest{
			Prompt:      listPrompt("country"),
			Temperature: 0.8,
			Seed:        int64(round),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range firstFields(resp.Text) {
			seen[strings.ToLower(k)] = true
		}
		counts = append(counts, len(seen))
	}
	if counts[len(counts)-1] <= counts[0] {
		t.Fatalf("union must grow across rounds: %v", counts)
	}
}

func TestAddThousandsSeparators(t *testing.T) {
	cases := map[int64]string{
		1:        "1",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-9876543: "-9,876,543",
	}
	for in, want := range cases {
		if got := addThousandsSeparators(in); got != want {
			t.Errorf("sep(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestKeysTask(t *testing.T) {
	w := synthWorld()
	m := NewSynthLM(w, ProfileLarge, 7)
	prompt := strings.Join([]string{
		"TASK: KEYS",
		"TABLE: country -- a country",
		"Respond with one name per line.",
	}, "\n")
	resp, err := m.Complete(CompletionRequest{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(resp.Text, "\n")
	dataLines := 0
	for _, l := range lines {
		if strings.TrimSpace(l) != "" && !strings.HasSuffix(l, ":") {
			dataLines++
		}
	}
	if dataLines < 10 {
		t.Fatalf("too few keys: %d\n%s", dataLines, resp.Text)
	}
}
