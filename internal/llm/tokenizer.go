// Package llm provides the language-model substrate: the Model interface the
// query engine talks to, an exact deterministic tokenizer for cost
// accounting, a token-based cost/latency model, instrumentation and caching
// wrappers, and SynthLM — a deterministic simulated LLM backed by the
// synthetic world (internal/world) with an explicit noise model.
//
// SynthLM substitutes for the hosted GPT-style model of the paper: every
// failure mode the engine must survive (missing facts, hallucinated rows,
// wrong attribute values, malformed output, truncation) is generated on the
// same Complete() code path a real API would exercise, at controllable rates.
package llm

import "strings"

// tokenSpan is one token's byte range within the source text.
type tokenSpan struct{ start, end int }

// tokenSpans computes the token boundaries of text. Runs of letters, digits
// and underscores form words; words are split into 4-rune subword chunks
// (approximating a BPE vocabulary); every other non-space rune is a token of
// its own. Whitespace separates tokens and is attributed to no token.
func tokenSpans(text string) []tokenSpan {
	var spans []tokenSpan
	wordStart := -1
	wordRunes := 0
	chunkStart := -1
	flush := func(end int) {
		if wordStart < 0 {
			return
		}
		spans = append(spans, tokenSpan{chunkStart, end})
		wordStart, wordRunes, chunkStart = -1, 0, -1
	}
	for i, r := range text {
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			flush(i)
		case isWordRune(r):
			if wordStart < 0 {
				wordStart, chunkStart = i, i
			}
			if wordRunes == 4 {
				// Close the previous 4-rune chunk and start a new one.
				spans = append(spans, tokenSpan{chunkStart, i})
				chunkStart = i
				wordRunes = 0
			}
			wordRunes++
		default:
			flush(i)
			spans = append(spans, tokenSpan{i, i + runeLen(r)})
		}
	}
	flush(len(text))
	return spans
}

func isWordRune(r rune) bool {
	return r == '_' ||
		('a' <= r && r <= 'z') ||
		('A' <= r && r <= 'Z') ||
		('0' <= r && r <= '9')
}

func runeLen(r rune) int {
	switch {
	case r < 0x80:
		return 1
	case r < 0x800:
		return 2
	case r < 0x10000:
		return 3
	default:
		return 4
	}
}

// Tokenize splits text into subword tokens (see tokenSpans for the rules).
func Tokenize(text string) []string {
	spans := tokenSpans(text)
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = text[s.start:s.end]
	}
	return out
}

// CountTokens returns the number of tokens in text.
func CountTokens(text string) int { return len(tokenSpans(text)) }

// TruncateTokens returns the prefix of text containing at most maxTokens
// tokens, cutting mid-text exactly where the budget runs out (as a hosted
// API does — possibly mid-row, which the engine's parser must tolerate).
func TruncateTokens(text string, maxTokens int) string {
	if maxTokens <= 0 {
		return ""
	}
	spans := tokenSpans(text)
	if len(spans) <= maxTokens {
		return text
	}
	return text[:spans[maxTokens-1].end]
}

// joinTruncated builds token-budgeted multi-line output; maxTokens <= 0
// means unbounded. The second result reports truncation.
func joinTruncated(lines []string, maxTokens int) (string, bool) {
	text := strings.Join(lines, "\n")
	if maxTokens > 0 && CountTokens(text) > maxTokens {
		return TruncateTokens(text, maxTokens), true
	}
	return text, false
}
