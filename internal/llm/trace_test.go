package llm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceRecordReplayRoundTrip(t *testing.T) {
	inner := &echoModel{}
	trace := NewTrace()
	rec := trace.Record(inner)
	reqs := []CompletionRequest{
		{Prompt: "alpha", Seed: 1},
		{Prompt: "alpha", Seed: 2},
		{Prompt: "beta", Temperature: 0.7, MaxTokens: 32},
	}
	want := make([]CompletionResponse, len(reqs))
	for i, req := range reqs {
		r, err := rec.Complete(req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	if trace.Len() != len(reqs) {
		t.Fatalf("trace length: %d", trace.Len())
	}

	rep := trace.Replay(inner.Name())
	for i, req := range reqs {
		r, err := rep.Complete(req)
		if err != nil {
			t.Fatal(err)
		}
		if r.Text != want[i].Text || r.PromptTokens != want[i].PromptTokens ||
			r.CompletionTokens != want[i].CompletionTokens || r.Truncated != want[i].Truncated {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, r, want[i])
		}
	}
	// A request outside the trace fails loudly instead of fabricating.
	if _, err := rep.Complete(CompletionRequest{Prompt: "never recorded"}); err == nil ||
		!strings.Contains(err.Error(), "replay miss") {
		t.Fatalf("miss error: %v", err)
	}
	// So does the right request against the wrong model identity.
	if _, err := trace.Replay("other-model").Complete(reqs[0]); err == nil {
		t.Fatal("wrong model name must miss")
	}
}

func TestTraceSaveIsDeterministic(t *testing.T) {
	inner := &echoModel{}
	trace := NewTrace()
	rec := trace.Record(inner)
	for _, p := range []string{"zulu", "alpha", "mike"} {
		if _, err := rec.Complete(CompletionRequest{Prompt: p}); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	if err := trace.Save(p1); err != nil {
		t.Fatal(err)
	}
	if err := trace.Save(p2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Fatal("save is not byte-deterministic")
	}

	loaded, err := LoadTrace(p1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != trace.Len() {
		t.Fatalf("loaded %d entries, want %d", loaded.Len(), trace.Len())
	}
	r, err := loaded.Replay(inner.Name()).Complete(CompletionRequest{Prompt: "alpha"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.Text, "echo:") {
		t.Fatalf("loaded replay: %+v", r)
	}
}

func TestLoadTraceRejectsVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(path, []byte(`{"version":0,"entries":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch must fail: %v", err)
	}
}
