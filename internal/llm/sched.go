package llm

import "time"

// Sched simulates list scheduling over a bounded pool of worker lanes in
// virtual time. The engine's scan pipeline issues real concurrent calls, but
// wall-clock latency there is the host's, not the simulated API's — so after
// each fan-out the pipeline replays the per-call simulated latencies through
// a Sched (in deterministic task order) to obtain the critical-path latency
// the same fan-out would have had against a real provider.
//
// Add assigns each task to the earliest-free lane (greedy in submission
// order, the classic list-scheduling bound). A Sched is not safe for
// concurrent use: replay happens after the fan-out completes, in task-index
// order, which also keeps the makespan independent of goroutine completion
// order.
type Sched struct {
	lanes []time.Duration
}

// NewSched returns a scheduler with the given number of lanes (values < 1
// mean 1: a serial chain whose makespan is the plain sum).
func NewSched(parallelism int) *Sched {
	if parallelism < 1 {
		parallelism = 1
	}
	return &Sched{lanes: make([]time.Duration, parallelism)}
}

// Add schedules one task of duration d on the earliest-free lane and
// returns the task's virtual finish time.
func (s *Sched) Add(d time.Duration) time.Duration {
	best := 0
	for i := 1; i < len(s.lanes); i++ {
		if s.lanes[i] < s.lanes[best] {
			best = i
		}
	}
	s.lanes[best] += d
	return s.lanes[best]
}

// Makespan returns the virtual time at which the last lane goes idle: the
// simulated wall-clock latency of everything added so far.
func (s *Sched) Makespan() time.Duration {
	var m time.Duration
	for _, free := range s.lanes {
		if free > m {
			m = free
		}
	}
	return m
}
