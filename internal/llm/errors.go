package llm

import (
	"errors"
	"fmt"
	"time"
)

// Error taxonomy for backend failures. Every error a Backend returns falls
// into exactly one class, checked with errors.Is against the three class
// sentinels below. The Retrier keys its policy off the class; the scan
// pipeline keys degradation off it (see Degradable).
//
// Errors that wrap none of the sentinels classify as Fatal: an unknown
// failure is an engine bug (a malformed prompt, a replay-trace miss) and
// must surface immediately rather than burn a retry budget hiding it. That
// default makes the Retrier a safe no-op on a healthy stack.
var (
	// Retryable marks transient faults — provider hiccups, torn
	// connections, malformed completions — where an identical re-issue has
	// independent odds of succeeding.
	Retryable = errors.New("llm: retryable fault")
	// RateLimited marks capacity rejections. Retryable in principle, but
	// the Retrier backs off harder: hammering a throttled backend extends
	// the outage.
	RateLimited = errors.New("llm: rate limited")
	// Fatal marks permanent failures: retrying cannot help and the error
	// must propagate to the caller.
	Fatal = errors.New("llm: fatal fault")
)

// Degradable reports whether a scan running with Config.PartialResults may
// absorb err by dropping the affected key instead of failing the query.
// Only exhausted-retry classes qualify; Fatal (and unclassified) errors
// always abort.
func Degradable(err error) bool {
	return errors.Is(err, Retryable) || errors.Is(err, RateLimited)
}

// RetryError is the Retrier's terminal failure: the attempt budget is
// spent (or the circuit breaker refused the call) and the last attempt's
// error is wrapped. It carries the accounting the scan layer needs to
// charge an abandoned call honestly — how many attempts burned and how
// much virtual time they cost — because no CompletionResponse exists to
// carry it.
type RetryError struct {
	// Attempts is the number of completions actually issued (0 when the
	// circuit breaker failed the call fast).
	Attempts int
	// FaultLatency is the virtual time the failed attempts and backoff
	// waits consumed.
	FaultLatency time.Duration
	// Err is the last attempt's error (or the breaker sentinel).
	Err error
}

// Error implements error.
func (e *RetryError) Error() string {
	return fmt.Sprintf("llm: retries exhausted after %d attempt(s): %v", e.Attempts, e.Err)
}

// Unwrap exposes the last attempt's error so errors.Is sees through to the
// class sentinel (Retryable, RateLimited, Fatal).
func (e *RetryError) Unwrap() error { return e.Err }
