package llm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// blockModel lets a test hold inner calls open so concurrent callers pile up
// on the single-flight layer.
type blockModel struct {
	mu      sync.Mutex
	calls   int
	release chan struct{} // when non-nil, Complete blocks until closed
	err     error
}

func (b *blockModel) Name() string { return "block" }

func (b *blockModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	b.mu.Lock()
	b.calls++
	release := b.release
	err := b.err
	b.mu.Unlock()
	if release != nil {
		<-release
	}
	if err != nil {
		return CompletionResponse{}, err
	}
	return CompletionResponse{
		Text:             "ans:" + req.Prompt,
		PromptTokens:     len(req.Prompt),
		CompletionTokens: 4,
	}, nil
}

func TestCoalescerFlightHits(t *testing.T) {
	inner := &blockModel{release: make(chan struct{})}
	c := NewCoalescer(inner)
	const K = 16
	results := make([]CompletionResponse, K)
	var wg sync.WaitGroup
	started := make(chan struct{}, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			resp, err := c.Complete(CompletionRequest{Prompt: "same"})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = resp
		}(i)
	}
	// Wait until every goroutine has at least launched, then let the single
	// leader through. (Followers may or may not be blocked yet; late ones
	// hit the memo instead, which is equally coalesced.)
	for i := 0; i < K; i++ {
		<-started
	}
	close(inner.release)
	wg.Wait()

	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want exactly 1", inner.calls)
	}
	coalesced := 0
	for i, r := range results {
		if r.Text != "ans:same" || r.PromptTokens != 4 || r.CompletionTokens != 4 {
			t.Fatalf("result %d differs: %+v", i, r)
		}
		if r.Coalesced {
			coalesced++
		}
	}
	if coalesced != K-1 {
		t.Fatalf("coalesced = %d, want %d", coalesced, K-1)
	}
	s := c.Stats()
	if s.LiveCalls != 1 || s.Hits() != K-1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCoalescerMemoServesLaterCallers(t *testing.T) {
	inner := &blockModel{}
	c := NewCoalescer(inner)
	first, err := c.Complete(CompletionRequest{Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if first.Coalesced {
		t.Fatal("leader must not be marked coalesced")
	}
	second, err := c.Complete(CompletionRequest{Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Coalesced {
		t.Fatal("memo hit must be marked coalesced")
	}
	// Everything but Coalesced is byte-identical to the leader's response.
	second.Coalesced = false
	if second != first {
		t.Fatalf("memo copy differs: %+v vs %+v", second, first)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d", inner.calls)
	}
	s := c.Stats()
	if s.LiveCalls != 1 || s.MemoHits != 1 || s.FlightHits != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCoalescerPreservesCachedFlags(t *testing.T) {
	// A response that came out of a cache below the coalescer keeps its
	// Cached flag on follower copies, so billing above stays solo-identical.
	inner := &blockModel{}
	cache := NewCache(inner)
	c := NewCoalescer(cache)
	if _, err := cache.Complete(CompletionRequest{Prompt: "warm"}); err != nil {
		t.Fatal(err)
	}
	first, err := c.Complete(CompletionRequest{Prompt: "warm"})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Cached {
		t.Fatalf("expected cached response, got %+v", first)
	}
	second, err := c.Complete(CompletionRequest{Prompt: "warm"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || !second.Coalesced {
		t.Fatalf("follower must keep Cached and add Coalesced: %+v", second)
	}
}

func TestCoalescerDistinctPromptsDoNotCoalesce(t *testing.T) {
	inner := &blockModel{}
	c := NewCoalescer(inner)
	for i := 0; i < 5; i++ {
		resp, err := c.Complete(CompletionRequest{Prompt: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Coalesced {
			t.Fatalf("distinct prompt %d coalesced", i)
		}
	}
	// Distinct decode params split fingerprints too.
	if resp, err := c.Complete(CompletionRequest{Prompt: "p0", Seed: 7}); err != nil || resp.Coalesced {
		t.Fatalf("distinct seed must not coalesce: %+v err=%v", resp, err)
	}
	if inner.calls != 6 {
		t.Fatalf("inner calls = %d", inner.calls)
	}
}

func TestCoalescerMemoBoundAndEviction(t *testing.T) {
	inner := &blockModel{}
	c := NewCoalescerSized(inner, 2)
	ask := func(p string) {
		t.Helper()
		if _, err := c.Complete(CompletionRequest{Prompt: p}); err != nil {
			t.Fatal(err)
		}
	}
	ask("a")
	ask("b")
	ask("a") // refresh a: b is LRU
	ask("c") // evicts b
	ask("b") // live again
	s := c.Stats()
	if s.Size != 2 || s.Capacity != 2 || s.Evictions != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if s.LiveCalls != 4 || s.MemoHits != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if len(c.entries) != c.order.Len() {
		t.Fatalf("map/list out of sync: %d vs %d", len(c.entries), c.order.Len())
	}
}

func TestCoalescerMemoDisabled(t *testing.T) {
	inner := &blockModel{}
	c := NewCoalescerSized(inner, -1)
	for i := 0; i < 3; i++ {
		if _, err := c.Complete(CompletionRequest{Prompt: "p"}); err != nil {
			t.Fatal(err)
		}
	}
	if inner.calls != 3 {
		t.Fatalf("memo disabled must not retain results: %d inner calls", inner.calls)
	}
	if s := c.Stats(); s.Capacity != 0 || s.MemoHits != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCoalescerErrorsPropagateAndAreNotMemoized(t *testing.T) {
	boom := errors.New("boom")
	inner := &blockModel{err: boom}
	c := NewCoalescer(inner)
	if _, err := c.Complete(CompletionRequest{Prompt: "p"}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	inner.mu.Lock()
	inner.err = nil
	inner.mu.Unlock()
	resp, err := c.Complete(CompletionRequest{Prompt: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Coalesced {
		t.Fatal("failed call must not be memoized")
	}
	if s := c.Stats(); s.Errors != 1 || s.LiveCalls != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFindCoalescer(t *testing.T) {
	inner := &blockModel{}
	c := NewCoalescer(inner)
	if FindCoalescer(NewCounting(NewCache(c))) != c {
		t.Fatal("FindCoalescer must walk the wrapper chain")
	}
	if FindCoalescer(NewCounting(inner)) != nil {
		t.Fatal("FindCoalescer on a chain without one must return nil")
	}
}

// gateModel blocks every Complete until released, so a test can hold a
// coalescer leader's call open while followers pile onto its flight.
type gateModel struct {
	inner   Model
	release chan struct{}
}

func (g *gateModel) Name() string { return g.inner.Name() }

func (g *gateModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	<-g.release
	return g.inner.Complete(req)
}

// TestCoalescerPromotionUnderChaos drives the follower-promotion path
// with the real fault injector: a chaos profile chosen so the shared
// request faults on its first attempt and succeeds on the second. The
// leader absorbs the injected error alone, exactly one follower is
// promoted to a fresh leader, and every caller that did not lead a failed
// call gets the answer — one backend failure never fans out to a cohort.
func TestCoalescerPromotionUnderChaos(t *testing.T) {
	profile := ChaosProfile{Seed: 1234, TransientRate: 0.5}
	// Find a prompt whose fault stream is fail-then-succeed under this
	// profile (the draw is a pure function of seed, fingerprint, attempt).
	prompt := ""
	for i := 0; i < 1000; i++ {
		cand := fmt.Sprintf("probe %d", i)
		fp := Fingerprint("echo", CompletionRequest{Prompt: cand})
		if chaosU(profile.Seed, fp, 0) < 0.5 && chaosU(profile.Seed, fp, 1) >= 0.5 {
			prompt = cand
			break
		}
	}
	if prompt == "" {
		t.Fatal("no fail-then-succeed prompt in 1000 candidates")
	}

	chaos := NewChaos(&echoModel{}, profile)
	gate := &gateModel{inner: chaos, release: make(chan struct{})}
	c := NewCoalescer(gate)

	const K = 8
	var wg sync.WaitGroup
	errc := make(chan error, K)
	respc := make(chan CompletionResponse, K)
	started := make(chan struct{}, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			resp, err := c.Complete(CompletionRequest{Prompt: prompt})
			if err != nil {
				errc <- err
			} else {
				respc <- resp
			}
		}()
	}
	for i := 0; i < K; i++ {
		<-started
	}
	// Wait until one caller has become leader and the rest have joined its
	// flight, then open the gate: the leader's attempt draws the injected
	// fault, the followers re-enter, and one of them is promoted.
	for {
		c.mu.Lock()
		waiting := c.stats.FlightHits
		c.mu.Unlock()
		if waiting == K-1 {
			break
		}
	}
	close(gate.release)
	wg.Wait()
	close(errc)
	close(respc)

	var errs []error
	for err := range errc {
		errs = append(errs, err)
	}
	if len(errs) != 1 {
		t.Fatalf("exactly the failed call's leader sees the error, got %d: %v", len(errs), errs)
	}
	if !errors.Is(errs[0], Retryable) {
		t.Fatalf("leader's error lost its class: %v", errs[0])
	}
	for resp := range respc {
		if !strings.HasPrefix(resp.Text, "echo:") {
			t.Fatalf("follower got a wrong answer: %+v", resp)
		}
	}
	s := c.Stats()
	if s.LiveCalls != 2 {
		t.Fatalf("live calls: %+v (want failed leader + promoted leader)", s)
	}
	if s.Promotions != 1 {
		t.Fatalf("promotions: %+v", s)
	}
	if s.Errors != 1 {
		t.Fatalf("errors: %+v", s)
	}
	if cs := chaos.Stats(); cs.Transient != 1 || cs.Calls != 2 {
		t.Fatalf("chaos counters: %+v", cs)
	}
}
