package llm

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// chaosRun replays one fixed request schedule — reqs distinct prompts,
// tries attempts each — against a fresh Chaos over a fresh echo model and
// returns the per-attempt outcome stream plus the injector's counters.
func chaosRun(t *testing.T, profile ChaosProfile, reqs, tries int) (string, ChaosStats) {
	t.Helper()
	c := NewChaos(&echoModel{}, profile)
	out := ""
	for i := 0; i < reqs; i++ {
		req := CompletionRequest{Prompt: fmt.Sprintf("prompt %d", i), Seed: int64(i)}
		for a := 0; a < tries; a++ {
			resp, err := c.Complete(req)
			switch {
			case err == nil && resp.FaultLatency > 0:
				out += "S" // spiked success
			case err == nil:
				out += "."
			case errors.Is(err, RateLimited):
				out += "R"
			case errors.Is(err, Retryable):
				out += "T"
			default:
				t.Fatalf("chaos produced an unclassified error: %v", err)
			}
		}
	}
	return out, c.Stats()
}

func TestChaosDeterministicStream(t *testing.T) {
	p := ChaosProfile{Seed: 42, TransientRate: 0.15, RateLimitRate: 0.1, SpikeRate: 0.1, SpikeLatency: time.Second}
	a, sa := chaosRun(t, p, 40, 3)
	b, sb := chaosRun(t, p, 40, 3)
	if a != b {
		t.Fatalf("same seed produced different fault streams:\n%s\n%s", a, b)
	}
	if sa != sb {
		t.Fatalf("same seed produced different stats: %+v vs %+v", sa, sb)
	}
	if sa.Transient == 0 || sa.RateLimited == 0 || sa.Spikes == 0 {
		t.Fatalf("expected every configured fault class to fire: %+v", sa)
	}
	c, _ := chaosRun(t, ChaosProfile{Seed: 43, TransientRate: 0.15, RateLimitRate: 0.1, SpikeRate: 0.1, SpikeLatency: time.Second}, 40, 3)
	if a == c {
		t.Fatal("different seeds produced identical fault streams")
	}
}

// TestChaosAttemptIndependence pins the retry contract: a request that
// faults on its first attempt must redraw on later attempts, so at a
// moderate rate most faulted requests clear well inside a 4-attempt
// budget. (This is the regression test for hashing the attempt number
// last, where fnv's weak trailing-byte diffusion made every attempt of a
// faulted fingerprint fail.)
func TestChaosAttemptIndependence(t *testing.T) {
	p := ChaosProfile{Seed: 7, TransientRate: 0.3}
	c := NewChaos(&echoModel{}, p)
	faulted, allFourFailed := 0, 0
	for i := 0; i < 300; i++ {
		req := CompletionRequest{Prompt: fmt.Sprintf("key %d", i)}
		fails := 0
		for a := 0; a < 4; a++ {
			if _, err := c.Complete(req); err != nil {
				fails++
			} else {
				break
			}
		}
		if fails > 0 {
			faulted++
		}
		if fails == 4 {
			allFourFailed++
		}
	}
	if faulted < 50 {
		t.Fatalf("30%% transient rate faulted only %d of 300 first attempts", faulted)
	}
	// P(4 consecutive faults) = 0.3^4 ≈ 0.8%: a handful at most, never
	// the majority of faulted requests.
	if allFourFailed > faulted/4 {
		t.Fatalf("retry draws are not independent: %d of %d faulted requests failed all 4 attempts", allFourFailed, faulted)
	}
}

func TestChaosInjectionRate(t *testing.T) {
	p := ChaosProfile{Seed: 11, TransientRate: 0.2}
	_, s := chaosRun(t, p, 1000, 1)
	if s.Calls != 1000 {
		t.Fatalf("calls: %d", s.Calls)
	}
	if s.Transient < 150 || s.Transient > 250 {
		t.Fatalf("20%% rate injected %d of 1000 faults", s.Transient)
	}
}

func TestChaosSpikeDelaysButSucceeds(t *testing.T) {
	p := ChaosProfile{Seed: 5, SpikeRate: 1, SpikeLatency: 3 * time.Second}
	c := NewChaos(&echoModel{}, p)
	resp, err := c.Complete(CompletionRequest{Prompt: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FaultLatency != 3*time.Second {
		t.Fatalf("spike latency: %v", resp.FaultLatency)
	}
	plain, _ := (&echoModel{}).Complete(CompletionRequest{Prompt: "hello"})
	if resp.Text != plain.Text {
		t.Fatalf("spike changed the completion text: %q vs %q", resp.Text, plain.Text)
	}
}

func TestChaosErrorClassification(t *testing.T) {
	for _, tc := range []struct {
		name    string
		profile ChaosProfile
		class   error
	}{
		{"transient", ChaosProfile{Seed: 1, TransientRate: 1}, Retryable},
		{"ratelimit", ChaosProfile{Seed: 1, RateLimitRate: 1}, RateLimited},
		{"malformed", ChaosProfile{Seed: 1, MalformedRate: 1}, Retryable},
	} {
		c := NewChaos(&echoModel{}, tc.profile)
		_, err := c.Complete(CompletionRequest{Prompt: "x"})
		if err == nil {
			t.Fatalf("%s: rate 1 must fault every call", tc.name)
		}
		if !errors.Is(err, tc.class) {
			t.Fatalf("%s: error %v is not %v", tc.name, err, tc.class)
		}
		if !Degradable(err) {
			t.Fatalf("%s: injected fault must be degradable", tc.name)
		}
		if errors.Is(err, Fatal) {
			t.Fatalf("%s: injected fault classified fatal", tc.name)
		}
	}
}

func TestChaosProfileNormalization(t *testing.T) {
	p := ChaosProfile{TransientRate: 2, RateLimitRate: -1, SpikeLatency: -time.Second}
	if r := p.FailureRate(); r != 1 {
		t.Fatalf("FailureRate with over-provisioned rates: %v", r)
	}
	if (ChaosProfile{}).Enabled() {
		t.Fatal("zero profile must be disabled")
	}
	if (ChaosProfile{}).FailureRate() != 0 {
		t.Fatal("zero profile must have zero failure rate")
	}
	if !(ChaosProfile{SpikeRate: 0.1}).Enabled() {
		t.Fatal("spike-only profile must be enabled")
	}
	if (ChaosProfile{SpikeRate: 1}).FailureRate() != 0 {
		t.Fatal("spikes delay but succeed; they are not failures")
	}
}

func TestFindChaos(t *testing.T) {
	inner := &echoModel{}
	c := NewChaos(inner, ChaosProfile{Seed: 1, TransientRate: 0.1})
	r := NewRetrier(c, RetryPolicy{})
	if FindChaos(r) != c {
		t.Fatal("FindChaos did not walk the chain")
	}
	if FindChaos(inner) != nil {
		t.Fatal("FindChaos on a bare model must return nil")
	}
}
