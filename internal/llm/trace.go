package llm

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// A Trace is a set of recorded completions keyed by Fingerprint — the
// checked-in fixture format behind deterministic CI. One trace can hold the
// traffic of many distinct models (the model id is part of every
// fingerprint), so a whole benchmark suite records into a single file.
//
// Recording wraps the base backend and captures every completion that
// actually reaches it; replaying substitutes the base backend entirely,
// answering from the trace and failing loudly on a miss. Replayed responses
// carry the recorded token counts, so CountingModel derives identical
// SimLatency per call and the virtual-time scheduler reproduces Usage —
// calls, tokens, SimWall, dollars — byte-identically on any machine.
type Trace struct {
	mu      sync.Mutex
	entries map[string]TraceEntry
}

// TraceEntry is one recorded completion. Only the reproducible payload is
// kept: text, exact token counts and the truncation flag.
type TraceEntry struct {
	Model     string `json:"model"`
	Text      string `json:"text"`
	Prompt    int    `json:"pt"`
	Compl     int    `json:"ct"`
	Truncated bool   `json:"tr,omitempty"`
}

// traceFile is the on-disk fixture shape. Version follows
// FingerprintVersion: entries of another version cannot be addressed and a
// load fails fast instead of replaying stale completions.
type traceFile struct {
	Version int                   `json:"version"`
	Entries map[string]TraceEntry `json:"entries"`
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{entries: make(map[string]TraceEntry)}
}

// LoadTrace reads a fixture written by Save.
func LoadTrace(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("llm: trace: %w", err)
	}
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("llm: trace %s: %w", path, err)
	}
	if f.Version != FingerprintVersion {
		return nil, fmt.Errorf("llm: trace %s: fingerprint version %d, want %d — re-record the fixture",
			path, f.Version, FingerprintVersion)
	}
	t := NewTrace()
	for fp, e := range f.Entries {
		t.entries[fp] = e
	}
	return t, nil
}

// Save writes the fixture. Output is deterministic — entries marshal in
// sorted fingerprint order — so re-recording an unchanged workload yields a
// byte-identical file and fixture diffs are reviewable.
func (t *Trace) Save(path string) error {
	t.mu.Lock()
	f := traceFile{Version: FingerprintVersion, Entries: make(map[string]TraceEntry, len(t.entries))}
	for fp, e := range t.entries {
		f.Entries[fp] = e
	}
	t.mu.Unlock()
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Len returns the number of recorded completions.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Record returns a Backend that passes requests through to inner and
// captures every successful completion into the trace. It sits directly
// over the base backend — below any caches — so the trace holds exactly the
// traffic a cache-identical replay run will demand.
func (t *Trace) Record(inner Model) Model { return &recorder{trace: t, inner: inner} }

// Replay returns a Backend answering for the named model entirely from the
// trace. The name must match the recorded model's (fingerprints embed it);
// a request the trace does not contain is an error, never a silent
// fabrication.
func (t *Trace) Replay(name string) Model { return &replayer{trace: t, name: name} }

type recorder struct {
	trace *Trace
	inner Model
}

// Name implements Model.
func (r *recorder) Name() string { return r.inner.Name() }

// Unwrap implements Unwrapper.
func (r *recorder) Unwrap() Model { return r.inner }

// Complete implements Model.
func (r *recorder) Complete(req CompletionRequest) (CompletionResponse, error) {
	resp, err := r.inner.Complete(req)
	if err != nil {
		return resp, err
	}
	fp := Fingerprint(r.inner.Name(), req)
	r.trace.mu.Lock()
	r.trace.entries[fp] = TraceEntry{
		Model:     r.inner.Name(),
		Text:      resp.Text,
		Prompt:    resp.PromptTokens,
		Compl:     resp.CompletionTokens,
		Truncated: resp.Truncated,
	}
	r.trace.mu.Unlock()
	return resp, nil
}

type replayer struct {
	trace *Trace
	name  string
}

// Name implements Model.
func (r *replayer) Name() string { return r.name }

// Complete implements Model.
func (r *replayer) Complete(req CompletionRequest) (CompletionResponse, error) {
	fp := Fingerprint(r.name, req)
	r.trace.mu.Lock()
	e, ok := r.trace.entries[fp]
	r.trace.mu.Unlock()
	if !ok {
		return CompletionResponse{}, fmt.Errorf(
			"llm: replay miss for model %s (fingerprint %.12s…): the trace does not contain this request — re-record the fixture",
			r.name, fp)
	}
	return CompletionResponse{
		Text:             e.Text,
		PromptTokens:     e.Prompt,
		CompletionTokens: e.Compl,
		Truncated:        e.Truncated,
	}, nil
}
