package llm

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

func mustDiskCache(t *testing.T, inner Model, dir string, maxBytes int64) *DiskCache {
	t.Helper()
	c, err := NewDiskCache(inner, dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDiskCacheHitAndPersistence(t *testing.T) {
	dir := t.TempDir()
	inner := &echoModel{}
	c := mustDiskCache(t, inner, dir, 0)
	req := CompletionRequest{Prompt: "capital of France", Seed: 3}

	r1, err := c.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached || r1.DiskCached {
		t.Fatalf("first response must be a miss: %+v", r1)
	}
	r2, err := c.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || !r2.DiskCached || r2.DiskBytes <= 0 {
		t.Fatalf("second response must be a disk hit: %+v", r2)
	}
	if r2.Text != r1.Text || r2.PromptTokens != r1.PromptTokens || r2.CompletionTokens != r1.CompletionTokens {
		t.Fatalf("cache changed the completion: %+v vs %+v", r1, r2)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls: %d", inner.calls)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process (new cache instance, new inner) is served from disk.
	inner2 := &echoModel{}
	c2 := mustDiskCache(t, inner2, dir, 0)
	r3, err := c2.Complete(req)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.DiskCached || r3.Text != r1.Text {
		t.Fatalf("reopened cache must hit: %+v", r3)
	}
	if inner2.calls != 0 {
		t.Fatalf("inner called after reopen: %d", inner2.calls)
	}
	// Decode-parameter changes are different fingerprints.
	if r, _ := c2.Complete(CompletionRequest{Prompt: "capital of France", Seed: 4}); r.DiskCached {
		t.Fatal("different seed must miss")
	}
	if inner2.calls != 1 {
		t.Fatalf("inner calls after seed change: %d", inner2.calls)
	}
}

func TestDiskCacheContainsIsAPureProbe(t *testing.T) {
	c := mustDiskCache(t, &echoModel{}, t.TempDir(), 0)
	req := CompletionRequest{Prompt: "probe me"}
	if c.Contains(req) {
		t.Fatal("empty cache contains nothing")
	}
	if _, err := c.Complete(req); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if !c.Contains(req) {
		t.Fatal("persisted request must be contained")
	}
	after := c.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("probe touched the counters: %+v vs %+v", before, after)
	}
}

func TestDiskCacheFingerprintVersioning(t *testing.T) {
	req := CompletionRequest{Prompt: "p", MaxTokens: 9, Temperature: 0.5, Seed: 2}
	if fingerprintAt(1, "m", req) == fingerprintAt(2, "m", req) {
		t.Fatal("fingerprints must differ across versions")
	}
	if Fingerprint("m", req) == Fingerprint("m2", req) {
		t.Fatal("fingerprints must differ across models")
	}

	// Entries persisted at one version are invalidated by a bump: the next
	// open at a newer version skips them wholesale.
	dir := t.TempDir()
	inner := &echoModel{}
	old, err := newDiskCacheAt(inner, dir, 0, FingerprintVersion)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := old.Complete(req); err != nil {
		t.Fatal(err)
	}
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	bumped, err := newDiskCacheAt(&echoModel{}, dir, 0, FingerprintVersion+1)
	if err != nil {
		t.Fatal(err)
	}
	defer bumped.Close()
	if s := bumped.Stats(); s.Entries != 0 {
		t.Fatalf("old-version entries survived the bump: %+v", s)
	}
	if bumped.Contains(req) {
		t.Fatal("old-version record must not be addressable")
	}
	// Same-version reopen keeps them.
	same, err := newDiskCacheAt(&echoModel{}, dir, 0, FingerprintVersion)
	if err != nil {
		t.Fatal(err)
	}
	defer same.Close()
	if s := same.Stats(); s.Entries != 1 {
		t.Fatalf("same-version entries lost: %+v", s)
	}
}

func TestDiskCacheLRUByteBound(t *testing.T) {
	inner := &echoModel{}
	c := mustDiskCache(t, inner, t.TempDir(), 2048)
	for i := 0; i < 100; i++ {
		if _, err := c.Complete(CompletionRequest{Prompt: fmt.Sprintf("prompt number %d padding padding", i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.LiveBytes > s.MaxBytes {
		t.Fatalf("live bytes exceed the bound: %+v", s)
	}
	if s.Evictions == 0 {
		t.Fatalf("pressure must evict: %+v", s)
	}
	if s.Entries == 0 {
		t.Fatalf("eviction emptied the cache: %+v", s)
	}
	// MRU retained, LRU gone.
	if !c.Contains(CompletionRequest{Prompt: "prompt number 99 padding padding"}) {
		t.Fatal("most recent entry evicted")
	}
	if c.Contains(CompletionRequest{Prompt: "prompt number 0 padding padding"}) {
		t.Fatal("least recent entry survived")
	}
}

// bigModel answers with a fixed large completion so byte-bound pressure and
// compaction thresholds are reached in few calls.
type bigModel struct{ size int }

func (b *bigModel) Name() string { return "big" }
func (b *bigModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	return CompletionResponse{Text: strings.Repeat("x", b.size), PromptTokens: 2, CompletionTokens: b.size / 4}, nil
}

func TestDiskCacheCompaction(t *testing.T) {
	dir := t.TempDir()
	c := mustDiskCache(t, &bigModel{size: 64 << 10}, dir, 128<<10)
	// Each record is ~64 KiB; a 128 KiB bound keeps ~2 live, so dozens of
	// inserts push dead bytes past both the floor and the live volume.
	for i := 0; i < 40; i++ {
		if _, err := c.Complete(CompletionRequest{Prompt: fmt.Sprintf("big %d", i), Seed: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Compactions == 0 {
		t.Fatalf("dead bytes never compacted: %+v", s)
	}
	if s.DeadBytes > s.LiveBytes+compactionFloor {
		t.Fatalf("compaction left too much garbage: %+v", s)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted cache reloads to the same live set.
	c2 := mustDiskCache(t, &bigModel{size: 64 << 10}, dir, 128<<10)
	if got := c2.Stats().Entries; got != s.Entries {
		t.Fatalf("reload after compaction: %d entries, want %d", got, s.Entries)
	}
	if !c2.Contains(CompletionRequest{Prompt: "big 39", Seed: 39}) {
		t.Fatal("most recent entry lost in compaction")
	}
}

func TestDiskCacheConcurrentAccountingConsistent(t *testing.T) {
	c := mustDiskCache(t, &echoModel{}, t.TempDir(), 0)
	const goroutines, rounds, keys = 8, 40, 13
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				req := CompletionRequest{Prompt: fmt.Sprintf("k%d", (g+i)%keys)}
				if _, err := c.Complete(req); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != goroutines*rounds {
		t.Fatalf("lookup accounting drifted: %+v (want %d lookups)", s, goroutines*rounds)
	}
	if s.Entries != keys {
		t.Fatalf("entries: %+v (want %d)", s, keys)
	}
	if len(c.entries) != c.order.Len() {
		t.Fatalf("map/list out of sync: %d vs %d", len(c.entries), c.order.Len())
	}
}

func TestFindDiskCache(t *testing.T) {
	inner := &echoModel{}
	dc := mustDiskCache(t, inner, t.TempDir(), 0)
	if FindDiskCache(NewCounting(NewCache(dc))) != dc {
		t.Fatal("disk cache inside the stack not found")
	}
	if FindDiskCache(NewCounting(inner)) != nil {
		t.Fatal("found a disk cache where there is none")
	}
}

// TestDiskCacheCrashRecovery simulates a crash mid-append: the active
// segment ends in a torn half-record, with stray garbage bytes behind it.
// A reopen must not error or panic, must keep every intact record with
// the last record per fingerprint winning, and must lose exactly the torn
// tail — the "at most one record" crash contract the type documents.
func TestDiskCacheCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	reqA := CompletionRequest{Prompt: "alpha"}
	reqB := CompletionRequest{Prompt: "beta"}
	reqC := CompletionRequest{Prompt: "gamma"}
	reqD := CompletionRequest{Prompt: "delta"}

	c := mustDiskCache(t, &echoModel{}, dir, 0)
	for _, req := range []CompletionRequest{reqA, reqB, reqC} {
		if _, err := c.Complete(req); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite A's record (a later, different completion for the same
	// fingerprint) and persist D — the record the crash will tear.
	fpA := Fingerprint(c.Name(), reqA)
	c.put(fpA, CompletionResponse{Text: "alpha-overridden", PromptTokens: 9, CompletionTokens: 9})
	if _, err := c.Complete(reqD); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := c.segments()
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear D's record (the final line) in half, then scribble garbage
	// after it — a crash racing a concurrent write.
	body := data[:len(data)-1] // drop the final newline
	cut := bytes.LastIndexByte(body, '\n') + 1 + 12
	if cut >= len(body) {
		t.Fatalf("segment too small to tear: %d bytes", len(body))
	}
	torn := append([]byte{}, data[:cut]...)
	torn = append(torn, []byte("\x00\xfe{]garbage not json\n{\"fp\": tr")...)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	inner := &echoModel{}
	c2 := mustDiskCache(t, inner, dir, 0)
	// Intact records survive; the override is what A answers with.
	rA, err := c2.Complete(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if !rA.DiskCached || rA.Text != "alpha-overridden" {
		t.Fatalf("last record must win after recovery: %+v", rA)
	}
	for _, req := range []CompletionRequest{reqB, reqC} {
		r, err := c2.Complete(req)
		if err != nil {
			t.Fatal(err)
		}
		if !r.DiskCached {
			t.Fatalf("intact record lost in recovery: %+v", r)
		}
	}
	if inner.calls != 0 {
		t.Fatalf("recovery reached the backend for intact records: %d calls", inner.calls)
	}
	// The torn record is gone — D misses and is re-completed live.
	rD, err := c2.Complete(reqD)
	if err != nil {
		t.Fatal(err)
	}
	if rD.DiskCached {
		t.Fatal("torn record must be dropped, not resurrected")
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls after the torn-record miss: %d", inner.calls)
	}
	if s := c2.Stats(); s.DeadBytes == 0 {
		t.Fatalf("torn tail and garbage must be accounted dead: %+v", s)
	}
	// The reopened cache keeps appending normally after recovery.
	if _, err := c2.Complete(CompletionRequest{Prompt: "epsilon"}); err != nil {
		t.Fatal(err)
	}
	if r, err := c2.Complete(CompletionRequest{Prompt: "epsilon"}); err != nil || !r.DiskCached {
		t.Fatalf("post-recovery write path broken: %+v %v", r, err)
	}
}
