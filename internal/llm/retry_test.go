package llm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// flakyModel fails its first failFirst calls with err, then answers like
// an echo model.
type flakyModel struct {
	mu        sync.Mutex
	calls     int
	failFirst int
	err       error
	latency   time.Duration // FaultLatency stamped on successful responses
}

func (f *flakyModel) Name() string { return "flaky" }

func (f *flakyModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	if n <= f.failFirst {
		return CompletionResponse{}, f.err
	}
	return CompletionResponse{
		Text:             "ans:" + req.Prompt,
		PromptTokens:     len(req.Prompt),
		CompletionTokens: 4,
		FaultLatency:     f.latency,
	}, nil
}

func TestRetrierTransparentOnSuccess(t *testing.T) {
	inner := &flakyModel{}
	r := NewRetrier(inner, RetryPolicy{})
	resp, err := r.Complete(CompletionRequest{Prompt: "easy"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 1 || resp.FaultLatency != 0 || resp.HedgeLaunched {
		t.Fatalf("first-attempt success must be unmarked: %+v", resp)
	}
	if s := r.Stats(); s.Calls != 1 || s.Retries != 0 || s.Failures != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRetrierRecoversTransientFault(t *testing.T) {
	inner := &flakyModel{failFirst: 2, err: fmt.Errorf("hiccup: %w", Retryable)}
	r := NewRetrier(inner, RetryPolicy{MaxAttempts: 4, BaseBackoff: 100 * time.Millisecond, JitterFrac: -1, BreakerThreshold: -1})
	r.SetCost(CostModel{PerCallLatency: time.Second})
	resp, err := r.Complete(CompletionRequest{Prompt: "bumpy"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "ans:bumpy" {
		t.Fatalf("text: %q", resp.Text)
	}
	if resp.Attempts != 3 {
		t.Fatalf("attempts: %d", resp.Attempts)
	}
	// Two failed round trips at 1s plus backoffs of 100ms and 200ms.
	if want := 2*time.Second + 300*time.Millisecond; resp.FaultLatency != want {
		t.Fatalf("fault latency: %v, want %v", resp.FaultLatency, want)
	}
	if s := r.Stats(); s.Retries != 2 || s.Failures != 0 || s.BackoffWait != 300*time.Millisecond {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRetrierExhaustsBudget(t *testing.T) {
	inner := &flakyModel{failFirst: 1 << 30, err: fmt.Errorf("down: %w", Retryable)}
	r := NewRetrier(inner, RetryPolicy{MaxAttempts: 3, BaseBackoff: 100 * time.Millisecond, JitterFrac: -1, BreakerThreshold: -1})
	r.SetCost(CostModel{PerCallLatency: time.Second})
	_, err := r.Complete(CompletionRequest{Prompt: "doomed"})
	var re *RetryError
	if !errors.As(err, &re) {
		t.Fatalf("want *RetryError, got %v", err)
	}
	if re.Attempts != 3 {
		t.Fatalf("attempts: %d", re.Attempts)
	}
	if want := 3*time.Second + 300*time.Millisecond; re.FaultLatency != want {
		t.Fatalf("fault latency: %v, want %v", re.FaultLatency, want)
	}
	if !errors.Is(err, Retryable) || !Degradable(err) {
		t.Fatalf("RetryError must expose the class sentinel: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls: %d", inner.calls)
	}
	if s := r.Stats(); s.Failures != 1 || s.Retries != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRetrierFatalPassesThrough(t *testing.T) {
	for _, err := range []error{
		fmt.Errorf("bad prompt: %w", Fatal),
		errors.New("unclassified bug"),
	} {
		inner := &flakyModel{failFirst: 1 << 30, err: err}
		r := NewRetrier(inner, RetryPolicy{})
		_, got := r.Complete(CompletionRequest{Prompt: "x"})
		if !errors.Is(got, err) {
			t.Fatalf("error rewritten: %v", got)
		}
		var re *RetryError
		if errors.As(got, &re) {
			t.Fatalf("fatal error wrapped in RetryError: %v", got)
		}
		if inner.calls != 1 {
			t.Fatalf("fatal error burned retries: %d calls", inner.calls)
		}
	}
}

func TestRetrierBackoff(t *testing.T) {
	r := NewRetrier(&echoModel{}, RetryPolicy{
		BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second,
		RateLimitFactor: 4, JitterFrac: -1,
	})
	for _, tc := range []struct {
		attempt     int
		rateLimited bool
		want        time.Duration
	}{
		{1, false, 100 * time.Millisecond},
		{2, false, 200 * time.Millisecond},
		{3, false, 400 * time.Millisecond},
		{5, false, time.Second},  // capped
		{60, false, time.Second}, // shift overflow guard
		{1, true, 400 * time.Millisecond},
		{5, true, 4 * time.Second}, // cap × factor
	} {
		if got := r.backoff("fp", tc.attempt, tc.rateLimited); got != tc.want {
			t.Fatalf("backoff(attempt=%d, rl=%v) = %v, want %v", tc.attempt, tc.rateLimited, got, tc.want)
		}
	}
}

func TestRetrierJitterDeterministicAndBounded(t *testing.T) {
	r := NewRetrier(&echoModel{}, RetryPolicy{BaseBackoff: time.Second, MaxBackoff: time.Hour, JitterFrac: 0.25})
	seen := map[time.Duration]bool{}
	for i := 0; i < 20; i++ {
		fp := fmt.Sprintf("request %d", i)
		d := r.backoff(fp, 1, false)
		if d != r.backoff(fp, 1, false) {
			t.Fatal("jitter is not deterministic")
		}
		if d < 750*time.Millisecond || d >= 1250*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [0.75s, 1.25s)", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Fatalf("jitter barely spreads: %d distinct values of 20", len(seen))
	}
}

func TestRetrierBreaker(t *testing.T) {
	inner := &flakyModel{failFirst: 1 << 30, err: fmt.Errorf("down: %w", Retryable)}
	r := NewRetrier(inner, RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, JitterFrac: -1, BreakerThreshold: 2, BreakerCooldown: 3})

	// Two exhausted calls trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := r.Complete(CompletionRequest{Prompt: "a"}); err == nil {
			t.Fatal("want failure")
		}
	}
	if s := r.Stats(); s.BreakerOpens != 1 {
		t.Fatalf("breaker did not open: %+v", s)
	}
	callsBefore := inner.calls

	// While open, the cooldown's worth of calls fail fast without touching
	// the backend, classified retryable (degradable) with zero attempts.
	for i := 0; i < 3; i++ {
		_, err := r.Complete(CompletionRequest{Prompt: "b"})
		var re *RetryError
		if !errors.As(err, &re) || re.Attempts != 0 {
			t.Fatalf("fast-fail shape: %v", err)
		}
		if !Degradable(err) {
			t.Fatalf("fast-fail must be degradable: %v", err)
		}
	}
	if inner.calls != callsBefore {
		t.Fatal("open breaker let calls through")
	}
	if s := r.Stats(); s.BreakerFastFails != 3 {
		t.Fatalf("fast fails: %+v", s)
	}

	// Cooldown spent: the next call probes (half-open). It fails, so the
	// breaker reopens immediately.
	if _, err := r.Complete(CompletionRequest{Prompt: "c"}); err == nil {
		t.Fatal("probe should have failed")
	}
	if inner.calls == callsBefore {
		t.Fatal("half-open probe never reached the backend")
	}
	if s := r.Stats(); s.BreakerOpens != 2 {
		t.Fatalf("failed probe must reopen: %+v", s)
	}

	// Next cooldown, then a healthy backend closes the breaker via the
	// probe and traffic flows again.
	for i := 0; i < 3; i++ {
		r.Complete(CompletionRequest{Prompt: "d"})
	}
	inner.mu.Lock()
	inner.failFirst = 0
	inner.mu.Unlock()
	if _, err := r.Complete(CompletionRequest{Prompt: "e"}); err != nil {
		t.Fatalf("probe against healthy backend: %v", err)
	}
	if _, err := r.Complete(CompletionRequest{Prompt: "f"}); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
}

func TestRetrierHedgeWins(t *testing.T) {
	// The primary response carries a 5s latency spike; the duplicate is
	// clean, so launching it HedgeAfter=1s in costs ~1.3s total and wins.
	inner := &spikeOnceModel{spike: 5 * time.Second}
	r := NewRetrier(inner, RetryPolicy{HedgeAfter: time.Second, BreakerThreshold: -1})
	resp, err := r.Complete(CompletionRequest{Prompt: "spiky"})
	if err != nil {
		t.Fatal(err)
	}
	inner.mu.Lock()
	calls := inner.calls
	inner.mu.Unlock()
	if calls != 2 {
		t.Fatalf("hedge must issue a duplicate: %d calls", calls)
	}
	if !resp.HedgeLaunched || !resp.HedgeWon {
		t.Fatalf("hedge flags: %+v", resp)
	}
	if resp.Text != "ans:spiky" {
		t.Fatalf("hedging changed the answer: %q", resp.Text)
	}
	if resp.WastedPromptTokens == 0 {
		t.Fatal("the losing primary's tokens must be billed as waste")
	}
	// The winner's fault latency is the hedge delay, not the 5s spike.
	if resp.FaultLatency != time.Second {
		t.Fatalf("winner fault latency: %v", resp.FaultLatency)
	}
	if resp.Attempts != 2 {
		t.Fatalf("attempts: %d", resp.Attempts)
	}
	if s := r.Stats(); s.HedgesLaunched != 1 || s.HedgesWon != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestRetrierHedgeLoses(t *testing.T) {
	// Every response is slow, so the duplicate (launched 1s later) cannot
	// beat the primary; the primary is kept and the duplicate is waste.
	inner := &flakyModel{latency: 5 * time.Second}
	r := NewRetrier(inner, RetryPolicy{HedgeAfter: time.Second, BreakerThreshold: -1})
	resp, err := r.Complete(CompletionRequest{Prompt: "always slow"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.HedgeLaunched || resp.HedgeWon {
		t.Fatalf("hedge flags: %+v", resp)
	}
	if resp.WastedPromptTokens == 0 {
		t.Fatal("the losing duplicate's tokens must be billed as waste")
	}
	if resp.FaultLatency != 5*time.Second {
		t.Fatalf("primary keeps its own latency: %v", resp.FaultLatency)
	}
	if s := r.Stats(); s.HedgesLaunched != 1 || s.HedgesWon != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// spikeOnceModel answers like an echo model with a latency spike on its
// first call only — the shape where a hedge duplicate pays off.
type spikeOnceModel struct {
	mu    sync.Mutex
	calls int
	spike time.Duration
}

func (s *spikeOnceModel) Name() string { return "spike-once" }

func (s *spikeOnceModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	s.mu.Lock()
	s.calls++
	n := s.calls
	s.mu.Unlock()
	resp := CompletionResponse{
		Text:             "ans:" + req.Prompt,
		PromptTokens:     len(req.Prompt),
		CompletionTokens: 4,
	}
	if n == 1 {
		resp.FaultLatency = s.spike
	}
	return resp, nil
}

func TestRetrierHedgeBelowThresholdDoesNothing(t *testing.T) {
	inner := &flakyModel{}
	r := NewRetrier(inner, RetryPolicy{HedgeAfter: time.Hour})
	resp, err := r.Complete(CompletionRequest{Prompt: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.HedgeLaunched || inner.calls != 1 {
		t.Fatalf("fast primary must not hedge: %+v, %d calls", resp, inner.calls)
	}
}

// TestRetrierOverChaosDeterministic is the end-to-end determinism check
// for the fault layer: the exact per-call outcome sequence (attempts,
// fault latency, text) of a Retrier over a Chaos is identical run to run.
func TestRetrierOverChaosDeterministic(t *testing.T) {
	run := func() string {
		chaos := NewChaos(&echoModel{}, ChaosProfile{Seed: 99, TransientRate: 0.3, RateLimitRate: 0.1, SpikeRate: 0.2, SpikeLatency: time.Second})
		r := NewRetrier(chaos, RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Millisecond, HedgeAfter: 800 * time.Millisecond})
		out := ""
		for i := 0; i < 60; i++ {
			resp, err := r.Complete(CompletionRequest{Prompt: fmt.Sprintf("q%d", i)})
			if err != nil {
				var re *RetryError
				if !errors.As(err, &re) {
					t.Fatalf("unexpected error shape: %v", err)
				}
				out += fmt.Sprintf("E(%d,%v) ", re.Attempts, re.FaultLatency)
				continue
			}
			out += fmt.Sprintf("S(%d,%v,%q) ", resp.Attempts, resp.FaultLatency, resp.Text[:4])
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fault-layer outcomes differ across runs:\n%s\n%s", a, b)
	}
}

func TestFindRetrier(t *testing.T) {
	inner := &echoModel{}
	r := NewRetrier(inner, RetryPolicy{})
	c := NewCache(r)
	if FindRetrier(c) != r {
		t.Fatal("FindRetrier did not walk the chain")
	}
	if FindRetrier(inner) != nil {
		t.Fatal("FindRetrier on a bare model must return nil")
	}
}
