package llm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// The model stack is built from pluggable backends. A Backend is anything
// that completes prompts — the same contract as Model; the two names are
// aliases. "Backend" is used when talking about the bottom of the stack and
// the persistence layers above it, "Model" when talking about the
// engine-facing top. The full stack, outermost first:
//
//	CountingModel          usage accounting (always outermost)
//	CacheModel             in-memory bounded LRU (Config.CacheCapacity)
//	DiskCache              persistent content-addressed prompt cache
//	Recorder | Replayer    trace capture / deterministic playback
//	SynthLM (or any API)   the base backend
//
// Every layer implements Unwrapper, so capabilities can be located
// regardless of stacking order (FindCache, FindDiskCache). All persistent
// layers address completions by Fingerprint, the versioned content hash of
// (model id, prompt, decode parameters) — two requests share an answer
// exactly when their fingerprints match.

// Backend is a pluggable completion provider. It is the same interface as
// Model under the name used for the storage side of the stack: SynthLM, a
// hosted API adapter, a Replayer serving a recorded trace, or a DiskCache
// layered over any of them.
type Backend = Model

// FingerprintVersion versions the content-address format. Bumping it
// invalidates every previously persisted cache entry and trace record: old
// fingerprints can no longer be produced, so stale completions are never
// served after a change to the prompt protocol or the fingerprint encoding
// itself.
const FingerprintVersion = 1

// Fingerprint returns the content address of one completion request against
// a named model: the hex SHA-256 of a versioned canonical encoding of the
// model id, the prompt and the decode parameters (max tokens, temperature,
// seed). Everything that can change a deterministic backend's answer is in
// the hash; nothing else is.
func Fingerprint(model string, req CompletionRequest) string {
	return fingerprintAt(FingerprintVersion, model, req)
}

// fingerprintAt is Fingerprint pinned to an explicit format version
// (exposed separately so versioning tests can produce "old" fingerprints).
func fingerprintAt(version int, model string, req CompletionRequest) string {
	h := sha256.New()
	// NUL-separated fields: no field can contain NUL, so the encoding is
	// injective and fingerprints cannot collide across field boundaries.
	fmt.Fprintf(h, "llmsql-fp-v%d\x00%s\x00%d\x00%g\x00%d\x00",
		version, model, req.MaxTokens, req.Temperature, req.Seed)
	h.Write([]byte(req.Prompt))
	return hex.EncodeToString(h.Sum(nil))
}
