package llm

import (
	"container/list"
	"sync"
)

// DefaultCoalescerMemo bounds the Coalescer's completed-results memo. It is
// sized like DefaultCacheCapacity: large enough that every prompt of a
// serving burst against one virtual table stays resident, small enough that
// worst-case memory for real prompt sizes stays in the tens of megabytes.
const DefaultCoalescerMemo = 4096

// Coalescer merges identical completion requests across concurrent callers.
// It is the cross-query sharing layer of the serving engine: requests are
// keyed by Fingerprint, the first caller for a key becomes the leader and
// runs the inner call, and every other caller — concurrent (joined in
// flight) or later (served from a bounded LRU memo of completed responses) —
// receives a copy of the leader's response without touching the inner
// backend.
//
// Accounting contract: follower copies keep the leader's Cached/DiskCached
// flags and token counts, and only additionally set Coalesced. A
// CountingModel above the Coalescer therefore bills a coalesced caller
// exactly as if it had made the call itself, which is what keeps per-session
// Usage bit-identical to a solo run; the operator-side saving (calls that
// never reached the inner backend) is visible only in CoalescerStats.
//
// The memo exists for determinism as much as for savings: with pure
// in-flight single-flight, whether two sessions coalesce would depend on
// request timing. The memo makes "one live call per distinct fingerprint"
// hold regardless of interleaving, up to memo capacity.
//
// Errors are not memoized, and they do not fan out either: when a leader
// fails, the followers that joined it in flight do not inherit the error —
// each re-enters the coalescer, the first to arrive becomes a fresh leader
// and the rest join it. One backend failure therefore costs one caller one
// retry tier, never a whole coalesced cohort; a caller only sees an error
// from a call it led itself.
type Coalescer struct {
	Inner Model

	mu       sync.Mutex
	inflight map[string]*flight
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	capacity int
	stats    CoalescerStats
}

// flight is one in-progress leader call; followers block on done.
type flight struct {
	done chan struct{}
	resp CompletionResponse
	err  error
}

// memoEntry is one completed response retained for later callers.
type memoEntry struct {
	fp   string
	resp CompletionResponse
}

// CoalescerStats reports the coalescing effectiveness as raw counters.
type CoalescerStats struct {
	// LiveCalls counts requests that actually reached the inner backend
	// (leaders). This is what the operator pays for.
	LiveCalls int
	// FlightHits counts callers that joined a concurrent leader in flight.
	FlightHits int
	// MemoHits counts callers served from the completed-results memo.
	MemoHits int
	// Errors counts leader calls that failed (propagated, never memoized).
	Errors int
	// Promotions counts followers that re-dispatched as a fresh leader
	// after the leader they had joined failed.
	Promotions int
	// Size and Capacity describe the memo occupancy; Evictions counts
	// entries dropped by the LRU bound.
	Size      int
	Capacity  int
	Evictions int
}

// Hits returns the total requests answered without an inner call.
func (s CoalescerStats) Hits() int { return s.FlightHits + s.MemoHits }

// NewCoalescer wraps m with a single-flight layer and a completed-results
// memo of DefaultCoalescerMemo entries.
func NewCoalescer(m Model) *Coalescer { return NewCoalescerSized(m, DefaultCoalescerMemo) }

// NewCoalescerSized wraps m with a single-flight layer and a memo bounded to
// capacity entries (0 selects DefaultCoalescerMemo; negative values disable
// the memo, leaving pure in-flight coalescing).
func NewCoalescerSized(m Model, capacity int) *Coalescer {
	if capacity == 0 {
		capacity = DefaultCoalescerMemo
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Coalescer{
		Inner:    m,
		inflight: make(map[string]*flight),
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		capacity: capacity,
	}
}

// Name implements Model.
func (c *Coalescer) Name() string { return c.Inner.Name() }

// Unwrap implements Unwrapper.
func (c *Coalescer) Unwrap() Model { return c.Inner }

// Complete implements Model. The first caller for a fingerprint runs the
// inner call; everyone else gets a Coalesced copy of its response. A
// follower whose leader failed loops: it re-enters the critical section
// and either becomes the fresh leader itself (a promotion) or joins the
// promoted one — so the cohort behind a failed call drains one leader at a
// time until a call succeeds or every waiter has led (and failed) a call
// of its own. Termination: each iteration a caller either leads (and then
// returns, whatever the outcome) or waits on another caller's flight, so
// with finitely many callers the loop cannot run forever.
func (c *Coalescer) Complete(req CompletionRequest) (CompletionResponse, error) {
	fp := Fingerprint(c.Inner.Name(), req)

	c.mu.Lock()
	joined := false
	for {
		if el, ok := c.entries[fp]; ok {
			c.stats.MemoHits++
			c.order.MoveToFront(el)
			resp := el.Value.(*memoEntry).resp
			c.mu.Unlock()
			resp.Coalesced = true
			return resp, nil
		}
		fl, ok := c.inflight[fp]
		if !ok {
			break
		}
		c.stats.FlightHits++
		joined = true
		c.mu.Unlock()
		<-fl.done
		if fl.err == nil {
			resp := fl.resp
			resp.Coalesced = true
			return resp, nil
		}
		c.mu.Lock()
	}
	if joined {
		c.stats.Promotions++
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[fp] = fl
	c.stats.LiveCalls++
	c.mu.Unlock()

	fl.resp, fl.err = c.Inner.Complete(req)
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, fp)
	if fl.err != nil {
		c.stats.Errors++
	} else if c.capacity > 0 {
		c.entries[fp] = c.order.PushFront(&memoEntry{fp: fp, resp: fl.resp})
		if c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*memoEntry).fp)
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()
	return fl.resp, fl.err
}

// Stats returns a snapshot of the counters.
func (c *Coalescer) Stats() CoalescerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.order.Len()
	s.Capacity = c.capacity
	return s
}

// FindCoalescer walks a wrapper chain and returns the first Coalescer, or
// nil.
func FindCoalescer(m Model) *Coalescer {
	for m != nil {
		if c, ok := m.(*Coalescer); ok {
			return c
		}
		uw, ok := m.(Unwrapper)
		if !ok {
			return nil
		}
		m = uw.Unwrap()
	}
	return nil
}
