package llm

import (
	"container/list"
	"sync"
)

// DefaultCacheCapacity bounds NewCache's memo table. 4096 entries covers the
// working set of the benchmark suite's largest scan several times over while
// keeping worst-case memory for real prompt sizes in the tens of megabytes.
const DefaultCacheCapacity = 4096

// CacheModel memoises completions keyed by (prompt, max tokens, temperature,
// seed) with a bounded LRU eviction policy. It models a prompt cache in
// front of the API: repeated identical requests cost nothing extra. Cached
// responses come back with Cached set, so CountingModel charges them zero
// latency and dollars.
type CacheModel struct {
	Inner Model

	mu       sync.Mutex
	capacity int
	entries  map[cacheKey]*list.Element
	order    *list.List // front = most recently used
	stats    CacheStats
}

type cacheKey struct {
	prompt    string
	maxTokens int
	temp      float64
	seed      int64
}

type cacheEntry struct {
	key  cacheKey
	resp CompletionResponse
}

// CacheStats reports cache effectiveness and occupancy as raw counters
// (the hit-rate ratio lives on metrics.Efficiency).
type CacheStats struct {
	Hits      int
	Misses    int
	Evictions int
	Size      int
	Capacity  int
}

// NewCache wraps m with a memo table of DefaultCacheCapacity entries.
func NewCache(m Model) *CacheModel { return NewCacheSized(m, DefaultCacheCapacity) }

// NewCacheSized wraps m with a memo table bounded to capacity entries
// (values < 1 fall back to DefaultCacheCapacity). Least-recently-used
// entries are evicted when the bound is hit.
func NewCacheSized(m Model, capacity int) *CacheModel {
	if capacity < 1 {
		capacity = DefaultCacheCapacity
	}
	return &CacheModel{
		Inner:    m,
		capacity: capacity,
		entries:  make(map[cacheKey]*list.Element),
		order:    list.New(),
	}
}

// Name implements Model.
func (c *CacheModel) Name() string { return c.Inner.Name() }

// Unwrap implements Unwrapper.
func (c *CacheModel) Unwrap() Model { return c.Inner }

// Complete implements Model. The lock is released around the inner call so
// misses for distinct prompts proceed concurrently; two simultaneous misses
// for the same key both call the model (deterministic models return the same
// response, so last-writer-wins insertion is harmless).
func (c *CacheModel) Complete(req CompletionRequest) (CompletionResponse, error) {
	key := cacheKey{req.Prompt, req.MaxTokens, req.Temperature, req.Seed}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.order.MoveToFront(el)
		resp := el.Value.(*cacheEntry).resp
		c.mu.Unlock()
		resp.Cached = true
		// Served from memory, wherever the stored copy originally came from.
		// The stored attempt's retries and hedges were billed when it was
		// produced; this copy cost nothing.
		resp.DiskCached = false
		resp.DiskBytes = 0
		resp.stripFaultMarkings()
		return resp, nil
	}
	c.stats.Misses++
	c.mu.Unlock()
	resp, err := c.Inner.Complete(req)
	if err != nil {
		return resp, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// A concurrent miss for the same key beat us; refresh in place.
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
		if c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()
	return resp, nil
}

// CacheStats returns a snapshot of the full counters.
func (c *CacheModel) CacheStats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.order.Len()
	s.Capacity = c.capacity
	return s
}
