package llm

import (
	"testing"
	"time"
)

func TestSchedSerialIsSum(t *testing.T) {
	s := NewSched(1)
	s.Add(100 * time.Millisecond)
	s.Add(200 * time.Millisecond)
	s.Add(300 * time.Millisecond)
	if got := s.Makespan(); got != 600*time.Millisecond {
		t.Fatalf("serial makespan: %v", got)
	}
}

func TestSchedWideIsMax(t *testing.T) {
	s := NewSched(8)
	for _, d := range []time.Duration{100, 200, 300} {
		s.Add(d * time.Millisecond)
	}
	if got := s.Makespan(); got != 300*time.Millisecond {
		t.Fatalf("wide makespan: %v", got)
	}
}

func TestSchedGreedyAssignment(t *testing.T) {
	// 2 lanes, tasks 3,3,1,1,4: greedy gives lanes (3,1,...) and (3,1) ->
	// the 4 lands on a lane at 4, finishing at 8.
	s := NewSched(2)
	for _, d := range []time.Duration{3, 3, 1, 1, 4} {
		s.Add(d * time.Second)
	}
	if got := s.Makespan(); got != 8*time.Second {
		t.Fatalf("greedy makespan: %v", got)
	}
}

func TestSchedFinishTimes(t *testing.T) {
	s := NewSched(2)
	if f := s.Add(2 * time.Second); f != 2*time.Second {
		t.Fatalf("first finish: %v", f)
	}
	if f := s.Add(1 * time.Second); f != 1*time.Second {
		t.Fatalf("second finish: %v", f)
	}
	// Earliest-free lane is the one that finished at 1s.
	if f := s.Add(3 * time.Second); f != 4*time.Second {
		t.Fatalf("third finish: %v", f)
	}
}

func TestSchedClampsParallelism(t *testing.T) {
	s := NewSched(0)
	s.Add(time.Second)
	s.Add(time.Second)
	if got := s.Makespan(); got != 2*time.Second {
		t.Fatalf("clamped scheduler must be serial: %v", got)
	}
}

func TestUsageSub(t *testing.T) {
	a := Usage{Calls: 5, CachedCalls: 2, PromptTokens: 100, SimWall: 3 * time.Second}
	b := Usage{Calls: 2, CachedCalls: 1, PromptTokens: 40, SimWall: time.Second}
	d := a.Sub(b)
	if d.Calls != 3 || d.CachedCalls != 1 || d.PromptTokens != 60 || d.SimWall != 2*time.Second {
		t.Fatalf("sub: %+v", d)
	}
}
