package bench

import (
	"fmt"

	"llmsql/internal/core"
	"llmsql/internal/llm"
)

// coalesceQueries are the distinct workloads of the overlap scenarios, one
// key-then-attr scan per domain so distinct queries share no prompts.
var coalesceQueries = []string{
	"SELECT name, capital, population FROM country",
	"SELECT title, year FROM movie",
	"SELECT name, revenue FROM company",
	"SELECT name, field FROM laureate",
}

// Table14Coalesce measures cross-session prompt coalescing in the serving
// engine: N session engines over one shared EngineGroup run the same (or
// overlapping) queries, and the group's request coalescer merges identical
// completions so repeats cost no live model traffic. Billed usage is what
// the sessions collectively experienced — identical to solo runs — while
// live usage is what actually reached the base model; the gap is the
// serving layer's saving. Sessions run serially so the report is
// byte-deterministic: the coalescer's memo merges identical requests
// across session boundaries regardless of timing, which is also why a
// serial schedule measures the same saving a concurrent one would get.
func Table14Coalesce(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	type scenario struct {
		sessions int
		distinct int // how many of coalesceQueries the sessions cycle over
	}
	scenarios := []scenario{{1, 1}, {4, 1}, {16, 1}, {4, 4}, {16, 4}}
	if o.Scale < 0.5 {
		scenarios = []scenario{{1, 1}, {4, 1}, {4, 4}}
	}

	t := NewTable("sessions", "queries", "billed calls", "live calls", "coalesced",
		"billed tokens", "live tokens", "billed $", "live $")
	identical := true
	for _, sc := range scenarios {
		cfg := keyThenAttrConfig()
		cfg.Parallelism = 2
		cfg.BatchSize = 2
		// Room for every distinct completion of the scenario, so the memo
		// never evicts mid-sweep and "one live fan-out per distinct query"
		// holds exactly. The suite-wide CacheDir is deliberately not applied:
		// a shared disk cache would serve the repeats before the coalescer
		// could, hiding the effect under measurement (Table 13 covers it).
		cfg.CoalesceCapacity = 1 << 16
		cfg.RecordTrace = o.Record
		cfg.ReplayTrace = o.Replay
		o.applyFaults(&cfg)
		group, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, o.Seed+20), cfg)
		if err != nil {
			return Report{}, err
		}
		for _, name := range w.DomainNames() {
			group.RegisterWorldDomain(w.Domain(name))
		}
		firstRows := make(map[string]string)
		for k := 0; k < sc.sessions; k++ {
			e := group.Session()
			q := coalesceQueries[k%sc.distinct]
			res, err := e.Query(q)
			if err != nil {
				return Report{}, err
			}
			rows := renderRows(res.Result.Rows)
			if prev, seen := firstRows[q]; seen {
				identical = identical && rows == prev
			} else {
				firstRows[q] = rows
			}
			group.CloseSession(e)
		}
		gs := group.Stats()
		if err := group.Close(); err != nil {
			return Report{}, err
		}
		t.AddRow(d(sc.sessions), d(sc.distinct),
			d(gs.Billed.Calls), d(gs.Live.Calls), d(gs.Coalescer.Hits()),
			d(gs.Billed.TotalTokens()), d(gs.Live.TotalTokens()),
			fmt.Sprintf("%.4f", gs.Billed.SimDollars), fmt.Sprintf("%.4f", gs.Live.SimDollars))
	}

	extra := fmt.Sprintf("\nEvery repeat session's rows byte-identical to the first run of its query: %v.\n"+
		"Billed = what the sessions were charged (solo-identical); live = what reached the base model.\n", identical)
	return Report{
		ID: "Table 14",
		Title: "Cross-session prompt coalescing in the serving engine " +
			"(key-then-attr, 3 votes, batch 2, parallelism 2, medium model; sessions share one EngineGroup)",
		Body: t.String() + extra,
		CSV:  t.CSV(),
	}, nil
}
