package bench

import (
	"fmt"

	"llmsql/internal/core"
	"llmsql/internal/llm"
	"llmsql/internal/metrics"
	"llmsql/internal/world"
)

// Table2RetrievalQuality measures full-relation retrieval per domain:
// SELECT * against ground truth, medium model, default engine.
func Table2RetrievalQuality(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}
	e := o.newEngine(w, llm.ProfileMedium, core.DefaultConfig(), o.Seed+1)

	t := NewTable("domain", "truth", "retrieved", "precision", "recall", "F1", "attr-acc", "halluc")
	for _, name := range w.DomainNames() {
		m, _, err := scoreAgainstBaseline(e, db, "SELECT * FROM "+name, metrics.Options{NumTolerance: attrTolerance})
		if err != nil {
			return Report{}, err
		}
		t.AddRow(name, d(m.TruthRows), d(m.ResultRows),
			f3(m.Precision()), f3(m.Recall()), f3(m.F1()),
			f3(m.AttrAccuracy()), pct(m.HallucinationRate()))
	}
	return Report{
		ID:    "Table 2",
		Title: "Retrieval quality of full-relation scans per domain (medium model, full-table strategy)",
		Body:  t.String(),
	}, nil
}

// classQuery is one workload query with its scoring mode.
type classQuery struct {
	class string
	query string
	// scalar marks single-value aggregate queries scored by relative
	// error instead of set metrics.
	scalar bool
	// tol is the attribute tolerance for set-scored queries.
	tol float64
}

func queryClassSuite() []classQuery {
	return []classQuery{
		{class: "selection", query: "SELECT name, population FROM country WHERE population > 50", tol: attrTolerance},
		{class: "selection", query: "SELECT title, year FROM movie WHERE year >= 2000", tol: attrTolerance},
		{class: "selection", query: "SELECT name, revenue FROM company WHERE revenue > 10", tol: attrTolerance},
		{class: "projection", query: "SELECT name, capital FROM country", tol: attrTolerance},
		{class: "projection", query: "SELECT title, director FROM movie", tol: attrTolerance},
		{class: "join", query: "SELECT m.title, c.continent FROM movie m JOIN country c ON m.country = c.name", tol: attrTolerance},
		{class: "join", query: "SELECT k.name, c.capital FROM company k JOIN country c ON k.country = c.name", tol: attrTolerance},
		{class: "aggregate", query: "SELECT COUNT(*) FROM country", scalar: true},
		{class: "aggregate", query: "SELECT AVG(population) FROM country", scalar: true},
		{class: "aggregate", query: "SELECT MAX(year) FROM movie", scalar: true},
		{class: "group-by", query: "SELECT continent, COUNT(*) FROM country GROUP BY continent", tol: 0.30},
		{class: "group-by", query: "SELECT genre, COUNT(*) FROM movie GROUP BY genre", tol: 0.30},
	}
}

// Table3QueryClasses scores the workload suite per query class.
func Table3QueryClasses(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}
	e := o.newEngine(w, llm.ProfileMedium, core.DefaultConfig(), o.Seed+2)

	type agg struct {
		f1s, errs []float64
		n         int
	}
	byClass := map[string]*agg{}
	var order []string
	for _, cq := range queryClassSuite() {
		a, ok := byClass[cq.class]
		if !ok {
			a = &agg{}
			byClass[cq.class] = a
			order = append(order, cq.class)
		}
		a.n++
		if cq.scalar {
			truth, _, err := baseline(db, cq.query)
			if err != nil {
				return Report{}, err
			}
			got, err := e.Query(cq.query)
			if err != nil {
				return Report{}, err
			}
			a.errs = append(a.errs, metrics.ScalarError(scalarAnswer(got.Result), scalarAnswer(truth)))
			continue
		}
		m, _, err := scoreAgainstBaseline(e, db, cq.query, metrics.Options{NumTolerance: cq.tol})
		if err != nil {
			return Report{}, err
		}
		a.f1s = append(a.f1s, m.F1())
	}

	t := NewTable("class", "queries", "mean F1", "mean rel. error")
	for _, class := range order {
		a := byClass[class]
		f1 := "-"
		if len(a.f1s) > 0 {
			f1 = f3(metrics.Mean(a.f1s))
		}
		re := "-"
		if len(a.errs) > 0 {
			re = f3(metrics.Mean(a.errs))
		}
		t.AddRow(class, d(a.n), f1, re)
	}
	return Report{
		ID:    "Table 3",
		Title: "Answer quality by query class (medium model, default engine)",
		Body:  t.String(),
	}, nil
}

// Table4Strategies compares the prompt decomposition strategies on the
// country domain: retrieval quality versus token cost.
func Table4Strategies(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}

	t := NewTable("strategy", "precision", "recall", "F1", "attr-acc", "prompts", "tokens")
	for _, strat := range []core.Strategy{core.StrategyFullTable, core.StrategyPaged, core.StrategyKeyThenAttr} {
		cfg := core.DefaultConfig()
		cfg.Strategy = strat
		cfg.MaxRounds = 6
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+3)
		m, usage, err := scoreAgainstBaseline(e, db, "SELECT name, capital, population FROM country", metrics.Options{NumTolerance: attrTolerance})
		if err != nil {
			return Report{}, err
		}
		// usage.Calls equals prompt count for a single-scan query.
		prompts := usage.Calls
		t.AddRow(strat.String(), f3(m.Precision()), f3(m.Recall()), f3(m.F1()),
			f3(m.AttrAccuracy()), d(prompts), d(usage.TotalTokens()))
	}
	return Report{
		ID:    "Table 4",
		Title: "Prompt strategy comparison on country(name, capital, population) (medium model)",
		Body:  t.String(),
	}, nil
}

// Table5Voting sweeps the self-consistency factor k for attribute
// retrieval with the key-then-attr strategy on a weak model.
func Table5Voting(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}

	t := NewTable("votes k", "attr-acc", "precision", "F1", "tokens")
	for _, k := range []int{1, 3, 5, 7} {
		cfg := core.DefaultConfig()
		cfg.Strategy = core.StrategyKeyThenAttr
		cfg.Votes = k
		cfg.Temperature = 0.8
		cfg.MaxRounds = 3
		e := o.newEngine(w, llm.ProfileSmall, cfg, o.Seed+4)
		m, usage, err := scoreAgainstBaseline(e, db, "SELECT name, capital, population FROM country", metrics.Options{NumTolerance: attrTolerance})
		if err != nil {
			return Report{}, err
		}
		t.AddRow(d(k), f3(m.AttrAccuracy()), f3(m.Precision()), f3(m.F1()), d(usage.TotalTokens()))
	}
	return Report{
		ID:    "Table 5",
		Title: "Self-consistency voting for attribute retrieval (small model, key-then-attr)",
		Body:  t.String(),
	}, nil
}

// Table6VsBaseline runs identical SQL on the LLM engine and the row store,
// reporting answer quality and cost side by side.
func Table6VsBaseline(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}
	e := o.newEngine(w, llm.ProfileMedium, core.DefaultConfig(), o.Seed+5)

	t := NewTable("class", "query", "F1/err", "LLM tokens", "LLM sim latency", "store latency")
	for _, cq := range queryClassSuite()[:8] {
		truth, storeLat, err := baseline(db, cq.query)
		if err != nil {
			return Report{}, err
		}
		got, err := e.Query(cq.query)
		if err != nil {
			return Report{}, err
		}
		var quality string
		if cq.scalar {
			quality = "err " + f3(metrics.ScalarError(scalarAnswer(got.Result), scalarAnswer(truth)))
		} else {
			m := metrics.Compare(got.Result.Rows, truth.Rows, metrics.Options{NumTolerance: cq.tol})
			quality = "F1 " + f3(m.F1())
		}
		q := cq.query
		if len(q) > 48 {
			q = q[:45] + "..."
		}
		t.AddRow(cq.class, q, quality, d(got.Usage.TotalTokens()),
			got.Usage.SimLatency.Round(1e6).String(), storeLat.String())
	}
	return Report{
		ID:    "Table 6",
		Title: "LLM storage vs classical row store on identical SQL (medium model)",
		Body:  t.String(),
	}, nil
}

// Table7Ablations toggles the engine's design choices one at a time.
func Table7Ablations(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}

	type variant struct {
		name string
		mut  func(*core.Config)
	}
	variants := []variant{
		{"default", func(*core.Config) {}},
		{"no dedup", func(c *core.Config) { c.Dedup = false }},
		{"strict parser", func(c *core.Config) { c.Tolerant = false }},
		{"no pushdown", func(c *core.Config) { c.Pushdown = false }},
		{"1 round (no resampling)", func(c *core.Config) { c.MaxRounds = 1 }},
	}
	query := "SELECT name, capital, population FROM country WHERE population > 20"

	t := NewTable("variant", "rows", "precision", "recall", "F1", "tokens")
	for _, v := range variants {
		cfg := core.DefaultConfig()
		v.mut(&cfg)
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+6)
		m, usage, err := scoreAgainstBaseline(e, db, query, metrics.Options{NumTolerance: attrTolerance})
		if err != nil {
			return Report{}, err
		}
		t.AddRow(v.name, d(m.ResultRows), f3(m.Precision()), f3(m.Recall()), f3(m.F1()), d(usage.TotalTokens()))
	}

	// Prompt-cache ablation: the identical query re-run with a cache in
	// front of the model answers entirely from memoised completions.
	w2 := o.buildWorld()
	cache := llm.NewCache(llm.NewSynthLM(w2, llm.ProfileMedium, o.Seed+6))
	cacheCfg := core.DefaultConfig()
	o.applyFaults(&cacheCfg)
	e2 := core.New(cache, cacheCfg)
	for _, name := range w2.DomainNames() {
		e2.RegisterWorldDomain(w2.Domain(name))
	}
	if _, err := e2.Query(query); err != nil {
		return Report{}, err
	}
	if _, err := e2.Query(query); err != nil {
		return Report{}, err
	}
	cs := cache.CacheStats()
	extra := fmt.Sprintf("\nPrompt cache on an identical re-run: %d of %d model calls served from cache (%.0f%%).\n",
		cs.Hits, cs.Hits+cs.Misses, 100*float64(cs.Hits)/float64(cs.Hits+cs.Misses))

	return Report{
		ID:    "Table 7",
		Title: "Ablation of engine design choices (medium model, filtered country scan)",
		Body:  t.String() + extra,
	}, nil
}

// Table8Confidence sweeps the row-confidence threshold (extension feature):
// entities appearing in few sampling rounds are dropped, trading recall for
// precision — frequency voting at the row level.
func Table8Confidence(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}

	query := "SELECT name, capital FROM country"
	truth, _, err := baseline(db, query)
	if err != nil {
		return Report{}, err
	}
	t := NewTable("min confidence", "rows", "precision", "recall", "F1", "halluc", "dropped")
	for _, minConf := range []float64{0, 0.2, 0.4, 0.6} {
		cfg := core.DefaultConfig()
		cfg.Temperature = 0.8
		cfg.MaxRounds = 8
		cfg.StableRounds = 8 // fixed-round protocol for a fair frequency signal
		cfg.MinConfidence = minConf
		e := o.newEngine(w, llm.ProfileSmall, cfg, o.Seed+12)
		got, err := e.Query(query)
		if err != nil {
			return Report{}, err
		}
		m := metrics.Compare(got.Result.Rows, truth.Rows, metrics.Options{NumTolerance: attrTolerance})
		dropped := 0
		for _, s := range got.Scans {
			dropped += s.LowConfidenceDropped
		}
		t.AddRow(f2(minConf), d(m.ResultRows), f3(m.Precision()), f3(m.Recall()), f3(m.F1()),
			pct(m.HallucinationRate()), d(dropped))
	}
	return Report{
		ID:    "Table 8",
		Title: "Row-confidence filtering (extension): precision/recall trade-off (small model)",
		Body:  t.String(),
	}, nil
}
