package bench

import (
	"fmt"
	"strings"

	"llmsql/internal/core"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
)

// renderKeys serializes the key column (first output column) of a result,
// to assert that batching changes prompt counts but never which entities
// come back or in what order.
func renderKeys(rows []rel.Row) string {
	var b strings.Builder
	for _, row := range rows {
		b.WriteString(row[0].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Table10Batching sweeps Config.BatchSize on the key-then-attr hot path:
// the ATTR phase pays one prompt per key x column x vote unbatched, and
// ~1/BatchSize of that batched, with identical key sets and row order.
// The batch=1 row is the PR 1 baseline the call-count reduction is measured
// against. A final row runs Strategy auto at batch 8: the cost-based
// planner prices all three decompositions for the same workload and runs
// the cheapest, which on an enumeration-heavy scan undercuts even the
// batched key-then-attr path.
func Table10Batching(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	var baselineCalls int
	var baseKeys string
	var batch8Calls int
	t := NewTable("batch", "strategy", "calls", "batched", "fallbacks", "tokens", "wall latency", "rows", "same keys")
	for _, b := range []int{1, 2, 4, 8, 16} {
		cfg := keyThenAttrConfig()
		cfg.Parallelism = 8
		cfg.BatchSize = b
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+15)
		res, err := e.Query(concurrencyQuery)
		if err != nil {
			return Report{}, err
		}
		keys := renderKeys(res.Result.Rows)
		if b == 1 {
			baselineCalls = res.Usage.Calls
			baseKeys = keys
		}
		if b == 8 {
			batch8Calls = res.Usage.Calls
		}
		batched, fallbacks := 0, 0
		for _, s := range res.Scans {
			batched += s.BatchedPrompts
			fallbacks += s.BatchFallbacks
		}
		t.AddRow(d(b), scanStrategyLabel(res.Scans), d(res.Usage.Calls), d(batched), d(fallbacks),
			d(res.Usage.TotalTokens()), res.Usage.SimWall.Round(1e6).String(),
			d(len(res.Result.Rows)), fmt.Sprintf("%v", keys == baseKeys))
	}

	// Cost-based planning on the same workload: auto prices the candidates
	// and is free to leave key-then-attr entirely.
	cfg := keyThenAttrConfig()
	cfg.Parallelism = 8
	cfg.BatchSize = 8
	cfg.Strategy = core.StrategyAuto
	e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+15)
	res, err := e.Query(concurrencyQuery)
	if err != nil {
		return Report{}, err
	}
	t.AddRow("8 (auto)", scanStrategyLabel(res.Scans), d(res.Usage.Calls), "", "",
		d(res.Usage.TotalTokens()), res.Usage.SimWall.Round(1e6).String(),
		d(len(res.Result.Rows)), "-")

	extra := ""
	if batch8Calls > 0 {
		extra = fmt.Sprintf("\nLLM calls at batch 8 vs the unbatched baseline: %d vs %d (%.1fx fewer).\n",
			batch8Calls, baselineCalls, float64(baselineCalls)/float64(batch8Calls))
	}
	return Report{
		ID: "Table 10",
		Title: "Batched ATTR prompts: calls/tokens/wall latency vs batch size " +
			"(key-then-attr, 3 votes, parallelism 8, medium model; batch 1 is the unbatched baseline)",
		Body: t.String() + extra,
		CSV:  t.CSV(),
	}, nil
}

// scanStrategyLabel names the strategies the query's scans ran.
func scanStrategyLabel(scans []core.ScanStats) string {
	var parts []string
	for _, s := range scans {
		parts = append(parts, s.Label())
	}
	return strings.Join(parts, ",")
}
