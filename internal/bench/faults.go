package bench

import (
	"fmt"
	"strings"

	"llmsql/internal/llm"
)

// faultQuery is the fault-sweep workload: a key-then-attr country scan,
// the pipeline whose graceful degradation the sweep exercises.
const faultQuery = "SELECT name, capital, population FROM country"

// Table15FaultSweep runs one scan under increasingly hostile injected
// fault regimes — transient errors, rate limits, malformed completions,
// latency spikes — with the retry layer and PartialResults degradation
// on, and checks the recovery contract row by row:
//
//   - every variant completes (zero failed queries under chaos);
//   - when retries absorb every fault the rows are byte-identical to the
//     fault-free run;
//   - when a call exhausts its budget the result is a strict subset of
//     the fault-free rows (dropped keys, never corrupted ones);
//   - a hedged variant shows duplicate requests beating latency spikes.
//
// The fault stream is seeded from the suite seed, so the whole table is
// byte-deterministic (the chaos-check gate replays it under pinned seeds).
func Table15FaultSweep(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	type variant struct {
		name  string
		chaos llm.ChaosProfile
		retry llm.RetryPolicy
	}
	seed := o.Seed + 30
	variants := []variant{
		{"fault-free", llm.ChaosProfile{}, llm.RetryPolicy{}},
		{"5% errors", llm.ChaosProfile{Seed: seed, TransientRate: 0.05}, llm.RetryPolicy{}},
		{"10% errors", llm.ChaosProfile{Seed: seed, TransientRate: 0.10}, llm.RetryPolicy{}},
		{"20% errors", llm.ChaosProfile{Seed: seed, TransientRate: 0.20}, llm.RetryPolicy{}},
		{"10% errors + 10% rate limits", llm.ChaosProfile{Seed: seed, TransientRate: 0.10, RateLimitRate: 0.10}, llm.RetryPolicy{}},
		{"10% malformed", llm.ChaosProfile{Seed: seed, MalformedRate: 0.10}, llm.RetryPolicy{}},
		{"60% errors (overwhelmed)", llm.ChaosProfile{Seed: seed, TransientRate: 0.60}, llm.RetryPolicy{}},
		// No comma in the variant name: it is the CSV row label, and
		// benchdiff splits rows on commas.
		{"30% spikes (hedged)", llm.ChaosProfile{Seed: seed, SpikeRate: 0.30, SpikeLatency: 2e9},
			llm.RetryPolicy{HedgeAfter: 1e9}},
	}

	var baseRows string
	contract := true
	t := NewTable("variant", "calls", "faults injected", "retries", "hedges won",
		"keys failed", "tokens", "wall latency", "rows vs fault-free")
	for i, v := range variants {
		cfg := keyThenAttrConfig()
		cfg.Parallelism = 4
		cfg.Chaos = v.chaos
		cfg.Retry = v.retry
		cfg.PartialResults = true
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+15)
		res, err := e.Query(faultQuery)
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", v.name, err)
		}
		rows := renderRows(res.Result.Rows)
		if i == 0 {
			baseRows = rows
		}
		retries, keysFailed, hedgesWon := 0, 0, 0
		for _, s := range res.Scans {
			retries += s.RetriesSpent
			keysFailed += s.KeysFailed
			hedgesWon += s.HedgesWon
		}
		cs := e.ChaosStats()
		faults := cs.Transient + cs.RateLimited + cs.Malformed + cs.Spikes
		rel := rowRelation(baseRows, rows, keysFailed)
		contract = contract && rel != "VIOLATION"
		t.AddRow(v.name, d(res.Usage.Calls), d(faults), d(retries), d(hedgesWon),
			d(keysFailed), d(res.Usage.TotalTokens()), res.Usage.SimWall.Round(1e6).String(), rel)
	}

	extra := fmt.Sprintf("\nRecovery contract (identical when retries suffice, strict subset when keys drop) held for every variant: %v.\n"+
		"Retries and hedge losers are billed (tokens and wall grow with the fault rate); injected faults never corrupt a row.\n", contract)
	return Report{
		ID: "Table 15",
		Title: "Fault injection and graceful degradation " +
			"(key-then-attr, 3 votes, parallelism 4, medium model; seeded chaos, retries on, partial results on)",
		Body: t.String() + extra,
		CSV:  t.CSV(),
	}, nil
}

// rowRelation classifies a degraded run's rows against the fault-free
// run's: byte-identical, a strict subset (only whole rows missing), or a
// contract violation (a row the fault-free run never produced, or an
// identical result that still reported failed keys).
func rowRelation(base, got string, keysFailed int) string {
	if got == base {
		if keysFailed > 0 {
			return "VIOLATION"
		}
		return "identical"
	}
	baseSet := make(map[string]int)
	for _, r := range strings.Split(base, "\n") {
		baseSet[r]++
	}
	dropped := 0
	for _, r := range strings.Split(got, "\n") {
		if baseSet[r] == 0 {
			return "VIOLATION"
		}
		baseSet[r]--
	}
	for _, n := range baseSet {
		dropped += n
	}
	return fmt.Sprintf("subset (%d rows dropped)", dropped)
}
