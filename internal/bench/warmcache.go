package bench

import (
	"fmt"
	"os"
	"strings"

	"llmsql/internal/core"
	"llmsql/internal/llm"
)

// Table13WarmCache measures the persistent prompt cache across session
// boundaries: the same workload runs cold (fresh directory), warm on the
// same engine, and warm on a fresh engine over the same directory — the
// cross-process case the in-memory cache of Figure 8 cannot cover. Warm
// runs must cost zero live model calls, zero tokens and zero simulated
// wall/dollars while returning byte-identical rows; the disk hit/miss/byte
// counters come from ScanStats. A second part demonstrates the byte-bounded
// LRU: a cache bounded far below the working set evicts constantly while
// its live volume stays within the bound.
func Table13WarmCache(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	dir, err := os.MkdirTemp("", "llmsql-warmcache-*")
	if err != nil {
		return Report{}, err
	}
	defer os.RemoveAll(dir)

	cacheConfig := func(cacheDir string, maxBytes int64) core.Config {
		cfg := keyThenAttrConfig()
		cfg.Parallelism = 8
		cfg.BatchSize = 4
		cfg.CacheDir = cacheDir
		cfg.CacheMaxBytes = maxBytes
		return cfg
	}
	engine := func(cacheDir string, maxBytes int64) *core.Engine {
		return o.newEngine(w, llm.ProfileMedium, cacheConfig(cacheDir, maxBytes), o.Seed+18)
	}

	type phase struct {
		name  string
		fresh bool // build a new engine over the same directory
	}
	phases := []phase{
		{"cold", true},
		{"warm same engine", false},
		{"warm fresh engine", true},
	}
	t := NewTable("run", "calls", "live calls", "tokens", "disk hits", "disk misses", "wall", "$")
	var e *core.Engine
	var rowsByPhase []string
	var warmExplain string
	for _, ph := range phases {
		if ph.fresh {
			if e != nil {
				if err := e.Close(); err != nil {
					return Report{}, err
				}
			}
			e = engine(dir, 0)
		}
		res, err := e.Query(concurrencyQuery)
		if err != nil {
			return Report{}, err
		}
		rowsByPhase = append(rowsByPhase, renderRows(res.Result.Rows))
		diskHits, diskMisses := 0, 0
		for _, s := range res.Scans {
			diskHits += s.DiskHits
			diskMisses += s.DiskMisses
		}
		t.AddRow(ph.name, d(res.Usage.Calls), d(res.Usage.Calls-res.Usage.CachedCalls),
			d(res.Usage.TotalTokens()), d(diskHits), d(diskMisses),
			res.Usage.SimWall.Round(1e6).String(), fmt.Sprintf("%.4f", res.Usage.SimDollars))
		if ph.name == "warm fresh engine" {
			// The warm cache also discounts the planner's estimates.
			warmExplain, err = e.Explain(concurrencyQuery)
			if err != nil {
				return Report{}, err
			}
		}
	}
	stats := e.DiskCacheStats()
	if err := e.Close(); err != nil {
		return Report{}, err
	}
	identical := rowsByPhase[1] == rowsByPhase[0] && rowsByPhase[2] == rowsByPhase[0]

	// Part (b): the byte-bounded LRU under pressure. 4 KiB holds a handful
	// of completions while the workload persists hundreds, so the cache
	// must evict constantly and stay within its bound. Serial pipeline:
	// which entries survive a byte-bounded LRU depends on insertion order,
	// and concurrent misses insert in goroutine completion order — the
	// report must stay byte-deterministic.
	pressureCfg := cacheConfig(dir+"-pressure", 4<<10)
	pressureCfg.Parallelism = 1
	pressured := o.newEngine(w, llm.ProfileMedium, pressureCfg, o.Seed+18)
	defer os.RemoveAll(dir + "-pressure")
	for i := 0; i < 2; i++ {
		if _, err := pressured.Query(concurrencyQuery); err != nil {
			return Report{}, err
		}
	}
	ps := pressured.DiskCacheStats()
	if err := pressured.Close(); err != nil {
		return Report{}, err
	}

	extra := fmt.Sprintf("\nIdentical rows across all runs: %v. Final cache: %d entries, %d live bytes.\n"+
		"Warm EXPLAIN carries the discount: %v.\n"+
		"Byte-bounded LRU under pressure (bound %d B): %d live bytes, %d entries, %d evictions, %d hits / %d misses.\n",
		identical, stats.Entries, stats.LiveBytes,
		containsWarmHit(warmExplain),
		ps.MaxBytes, ps.LiveBytes, ps.Entries, ps.Evictions, ps.Hits, ps.Misses)

	return Report{
		ID: "Table 13",
		Title: "Persistent prompt cache warm vs cold across engine/session boundaries " +
			"(key-then-attr, 3 votes, batch 4, parallelism 8, medium model)",
		Body: t.String() + extra,
		CSV:  t.CSV(),
	}, nil
}

// containsWarmHit reports whether an EXPLAIN rendering carries the
// warm-cache discount annotation.
func containsWarmHit(plan string) bool {
	return strings.Contains(plan, "warm-hit=")
}
