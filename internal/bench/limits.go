package bench

import (
	"fmt"

	"llmsql/internal/core"
	"llmsql/internal/llm"
)

// Table11LimitPushdown sweeps LIMIT k on the key-then-attr hot path with
// limit pushdown on and off. Pushed plans attribute at most k plus one
// prefetch window of keys — calls/tokens/wall collapse from O(table) to
// O(k) — while returning byte-identical rows to the unpushed plan, which
// always materializes the full attribute fan-out. The unlimited row pins
// that pushdown costs nothing when there is nothing to push. A second part
// demonstrates the local key gate: enumerated keys a key-only pushed
// conjunct rejects never reach the attribute phase.
func Table11LimitPushdown(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	run := func(query string, push bool) (*core.QueryResult, error) {
		cfg := keyThenAttrConfig()
		cfg.Parallelism = 8
		cfg.LimitPushdown = push
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+16)
		return e.Query(query)
	}

	t := NewTable("limit k", "calls", "calls (no push)", "tokens", "tokens (no push)",
		"wall", "wall (no push)", "rows", "identical rows")
	for _, k := range []int{1, 4, 16, -1} {
		query := concurrencyQuery
		label := "inf"
		if k >= 0 {
			query = fmt.Sprintf("%s LIMIT %d", concurrencyQuery, k)
			label = d(k)
		}
		pushed, err := run(query, true)
		if err != nil {
			return Report{}, err
		}
		unpushed, err := run(query, false)
		if err != nil {
			return Report{}, err
		}
		t.AddRow(label,
			d(pushed.Usage.Calls), d(unpushed.Usage.Calls),
			d(pushed.Usage.TotalTokens()), d(unpushed.Usage.TotalTokens()),
			pushed.Usage.SimWall.Round(1e6).String(), unpushed.Usage.SimWall.Round(1e6).String(),
			d(len(pushed.Result.Rows)),
			fmt.Sprintf("%v", renderRows(pushed.Result.Rows) == renderRows(unpushed.Result.Rows)))
	}

	// Part (b): the key gate. The pushed predicate is decidable from the
	// key alone, so with pushdown on the gate drops non-matching keys
	// before any ATTR spend; with pushdown off every enumerated key pays
	// the full attribute fan-out and the executor discards the rows after.
	gateQuery := "SELECT name, capital FROM country WHERE name LIKE 'B%'"
	gt := NewTable("pushdown", "calls", "tokens", "keys gated", "keys attributed", "rows")
	for _, push := range []bool{true, false} {
		cfg := keyThenAttrConfig()
		cfg.Parallelism = 8
		cfg.Pushdown = push
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+16)
		res, err := e.Query(gateQuery)
		if err != nil {
			return Report{}, err
		}
		gated, attributed := 0, 0
		for _, s := range res.Scans {
			gated += s.KeysGated
			attributed += s.KeysAttributed
		}
		gt.AddRow(fmt.Sprintf("%v", push), d(res.Usage.Calls), d(res.Usage.TotalTokens()),
			d(gated), d(attributed), d(len(res.Result.Rows)))
	}

	body := "(a) LIMIT sweep, " + concurrencyQuery + " (pushdown on vs off):\n" + t.String() +
		"\n(b) Local key gate, " + gateQuery + ":\n" + gt.String()
	return Report{
		ID: "Table 11",
		Title: "LIMIT pushdown on the streaming key-then-attr scan: calls/tokens/wall vs k " +
			"(3 votes, parallelism 8, medium model; rows byte-identical to the unpushed plan)",
		Body: body,
		CSV:  t.CSV(),
	}, nil
}
