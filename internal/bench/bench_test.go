package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// testOptions keeps experiment tests fast.
func testOptions() Options { return Options{Seed: 77, Scale: 0.15} }

func TestTableFormatting(t *testing.T) {
	tab := NewTable("a", "bb")
	tab.AddRow("1", "2")
	tab.AddRow("333") // short row padded
	out := tab.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count: %d", len(lines))
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestTable2RetrievalQuality(t *testing.T) {
	r, err := Table2RetrievalQuality(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "country") || !strings.Contains(r.Body, "movie") {
		t.Fatalf("domains missing:\n%s", r.Body)
	}
	// Shape check: every domain row has recall strictly above zero.
	for _, line := range dataLines(r.Body) {
		fields := strings.Fields(line)
		recall := mustFloat(t, fields[4])
		if recall <= 0 {
			t.Fatalf("zero recall row: %s", line)
		}
		if recall > 1 {
			t.Fatalf("recall > 1: %s", line)
		}
	}
}

func TestTable3QueryClasses(t *testing.T) {
	r, err := Table3QueryClasses(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []string{"selection", "projection", "join", "aggregate", "group-by"} {
		if !strings.Contains(r.Body, class) {
			t.Fatalf("missing class %s:\n%s", class, r.Body)
		}
	}
}

func TestTable4StrategiesShape(t *testing.T) {
	r, err := Table4Strategies(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := dataLines(r.Body)
	if len(rows) != 3 {
		t.Fatalf("strategy rows: %v", rows)
	}
	// Paper shape: key-then-attr costs more prompts than full-table.
	var fullPrompts, ktaPrompts int
	for _, line := range rows {
		fields := strings.Fields(line)
		prompts, _ := strconv.Atoi(fields[len(fields)-2])
		if strings.HasPrefix(line, "full-table") {
			fullPrompts = prompts
		}
		if strings.HasPrefix(line, "key-then-attr") {
			ktaPrompts = prompts
		}
	}
	if ktaPrompts <= fullPrompts {
		t.Fatalf("expected key-then-attr to use more prompts: %d vs %d\n%s", ktaPrompts, fullPrompts, r.Body)
	}
}

func TestTable5VotingShape(t *testing.T) {
	r, err := Table5Voting(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := dataLines(r.Body)
	if len(rows) != 4 {
		t.Fatalf("voting rows: %v", rows)
	}
	// Paper shape: token cost grows monotonically with k.
	prevTokens := -1
	for _, line := range rows {
		fields := strings.Fields(line)
		tokens, err := strconv.Atoi(fields[len(fields)-1])
		if err != nil {
			t.Fatalf("tokens field: %s", line)
		}
		if tokens <= prevTokens {
			t.Fatalf("token cost must grow with k:\n%s", r.Body)
		}
		prevTokens = tokens
	}
	// And accuracy at k=7 is not below k=1.
	first := strings.Fields(rows[0])
	last := strings.Fields(rows[3])
	if mustFloat(t, last[1]) < mustFloat(t, first[1])-0.02 {
		t.Fatalf("voting reduced accuracy:\n%s", r.Body)
	}
}

func TestTable6VsBaseline(t *testing.T) {
	r, err := Table6VsBaseline(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "F1") || !strings.Contains(r.Body, "err") {
		t.Fatalf("quality columns missing:\n%s", r.Body)
	}
}

func TestTable7Ablations(t *testing.T) {
	r, err := Table7Ablations(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"default", "no dedup", "strict parser", "no pushdown"} {
		if !strings.Contains(r.Body, v) {
			t.Fatalf("missing variant %q:\n%s", v, r.Body)
		}
	}
}

func TestFigure4ConvergenceShape(t *testing.T) {
	r, err := Figure4Convergence(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := dataLines(r.Body)
	if len(rows) < 3 {
		t.Fatalf("rounds rows: %v", rows)
	}
	// Paper shape: recall is (weakly) increasing in rounds and the last
	// round beats the first.
	first := mustFloat(t, strings.Fields(rows[0])[1])
	last := mustFloat(t, strings.Fields(rows[len(rows)-1])[1])
	if last < first {
		t.Fatalf("recall decreased with rounds:\n%s", r.Body)
	}
	if r.CSV == "" {
		t.Fatal("figure must emit CSV")
	}
}

func TestFigure5ModelQualityShape(t *testing.T) {
	r, err := Figure5ModelQuality(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := dataLines(r.Body)
	first := mustFloat(t, strings.Fields(rows[0])[1])
	last := mustFloat(t, strings.Fields(rows[len(rows)-1])[1])
	if last <= first {
		t.Fatalf("F1 must grow with coverage:\n%s", r.Body)
	}
}

func TestFigure6PopularityShape(t *testing.T) {
	r, err := Figure6Popularity(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := dataLines(r.Body)
	if len(rows) != 10 {
		t.Fatalf("decile rows: %d", len(rows))
	}
	head := mustFloat(t, strings.Fields(rows[0])[1])
	tail := mustFloat(t, strings.Fields(rows[9])[1])
	if head <= tail {
		t.Fatalf("head recall (%f) must beat tail (%f):\n%s", head, tail, r.Body)
	}
}

func TestFigure7CrossoverShape(t *testing.T) {
	// Full scale: the pushdown-vs-selectivity shape only stabilises once
	// the table is large enough that completion savings dominate the
	// longer prompt.
	r, err := Figure7Crossover(Options{Seed: 77, Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "table size") || !strings.Contains(r.Body, "selectivity") {
		t.Fatalf("sections missing:\n%s", r.Body)
	}
	// Pushdown must save tokens at moderate selectivity (the 0.20 row).
	// At extreme selectivity over tiny tables the longer prompt repeated
	// across rounds can dominate — a real crossover the figure exists to
	// show — so the assertion targets the moderate point.
	var modRow string
	for _, line := range dataLines(r.Body) {
		if strings.HasPrefix(line, "0.20") {
			modRow = line
		}
	}
	if modRow == "" {
		t.Fatalf("missing 0.20 selectivity row:\n%s", r.Body)
	}
	fields := strings.Fields(modRow)
	push, _ := strconv.Atoi(fields[2])
	noPush, _ := strconv.Atoi(fields[3])
	if push >= noPush {
		t.Fatalf("pushdown cost (%d) must beat no-pushdown (%d) at selectivity 0.20:\n%s", push, noPush, r.Body)
	}
}

func TestReportString(t *testing.T) {
	r := Report{ID: "Table 9", Title: "demo", Body: "x\n", CSV: "a,b\n"}
	out := r.String()
	if !strings.Contains(out, "## Table 9") || !strings.Contains(out, "CSV series") {
		t.Fatalf("report:\n%s", out)
	}
}

// dataLines extracts the data rows of a formatted table (skips headers,
// separators, prose and blank lines).
func dataLines(body string) []string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "-") && strings.Count(trimmed, "-") > 3 {
			continue
		}
		fields := strings.Fields(trimmed)
		if len(fields) < 2 {
			continue
		}
		// Data rows start with a value whose second field parses as a
		// number OR the row is a known label; use a loose rule: skip the
		// header (contains the word "recall"/"precision"/"F1" headers) by
		// requiring at least one numeric field.
		numeric := false
		for _, f := range fields[1:] {
			f = strings.TrimSuffix(f, "%")
			if _, err := strconv.ParseFloat(f, 64); err == nil {
				numeric = true
				break
			}
		}
		if numeric {
			out = append(out, trimmed)
		}
	}
	return out
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return f
}

func TestTable8ConfidenceShape(t *testing.T) {
	r, err := Table8Confidence(Options{Seed: 77, Scale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	rows := dataLines(r.Body)
	if len(rows) != 4 {
		t.Fatalf("confidence rows: %v", rows)
	}
	// Paper shape: raising the threshold must not reduce precision and
	// must not increase recall.
	var prevPrec, prevRecall float64 = -1, 2
	for _, line := range rows {
		fields := strings.Fields(line)
		prec := mustFloat(t, fields[2])
		recall := mustFloat(t, fields[3])
		if prec < prevPrec-0.02 {
			t.Fatalf("precision dropped with threshold:\n%s", r.Body)
		}
		if recall > prevRecall+0.02 {
			t.Fatalf("recall rose with threshold:\n%s", r.Body)
		}
		prevPrec, prevRecall = prec, recall
	}
}

func TestTable9ParallelismSpeedupAndDeterminism(t *testing.T) {
	r, err := Table9Parallelism(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	sawP8 := false
	for _, line := range dataLines(r.Body) {
		fields := strings.Fields(line)
		if fields[len(fields)-1] != "true" {
			t.Fatalf("rows not identical to serial: %s", line)
		}
		if fields[0] == "8" {
			sawP8 = true
			speedup := mustFloat(t, strings.TrimSuffix(fields[5], "x"))
			if speedup < 4 {
				t.Fatalf("speedup at parallelism 8 is %.2fx, want >= 4x:\n%s", speedup, r.Body)
			}
		}
	}
	if !sawP8 {
		t.Fatalf("no parallelism-8 row:\n%s", r.Body)
	}
}

func TestTable14CoalesceShape(t *testing.T) {
	r, err := Table14Coalesce(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	rows := dataLines(r.Body)
	if len(rows) != 3 {
		t.Fatalf("scenario rows: %v", rows)
	}
	if !strings.Contains(r.Body, "byte-identical to the first run of its query: true") {
		t.Fatalf("coalescing changed answers:\n%s", r.Body)
	}
	// fields: sessions queries billed-calls live-calls coalesced ...
	solo := strings.Fields(rows[0])
	four := strings.Fields(rows[1])
	soloBilled, _ := strconv.Atoi(solo[2])
	soloLive, _ := strconv.Atoi(solo[3])
	fourBilled, _ := strconv.Atoi(four[2])
	fourLive, _ := strconv.Atoi(four[3])
	fourCoalesced, _ := strconv.Atoi(four[4])
	if soloBilled != soloLive {
		t.Fatalf("solo session must be all live: billed %d, live %d\n%s", soloBilled, soloLive, r.Body)
	}
	// The tentpole claim: 4 sessions over one query are billed 4x a solo
	// run but cost exactly one live fan-out.
	if fourBilled != 4*soloBilled {
		t.Fatalf("billed calls not solo-identical per session: %d vs 4*%d\n%s", fourBilled, soloBilled, r.Body)
	}
	if fourLive != soloLive {
		t.Fatalf("repeat sessions caused live calls: %d vs %d\n%s", fourLive, soloLive, r.Body)
	}
	if fourCoalesced == 0 {
		t.Fatalf("no coalesced hits recorded:\n%s", r.Body)
	}
}

func TestFigure8CacheWarmup(t *testing.T) {
	r, err := Figure8CacheWarmup(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "cold") || !strings.Contains(r.Body, "warm") {
		t.Fatalf("runs missing:\n%s", r.Body)
	}
	if !strings.Contains(r.Body, "Identical rows cold vs warm: true") {
		t.Fatalf("cache changed answers:\n%s", r.Body)
	}
	// The warm run must be served (almost) entirely from cache.
	for _, line := range dataLines(r.Body) {
		fields := strings.Fields(line)
		if len(fields) < 7 || fields[0] != "warm" {
			continue
		}
		if fields[3] != "0" {
			t.Fatalf("warm run charged tokens: %s", line)
		}
	}
	// The pressure block must demonstrate real eviction within the bound.
	pressure := ""
	for _, line := range strings.Split(r.Body, "\n") {
		if strings.Contains(line, "Bounded LRU under pressure") {
			pressure = line
		}
	}
	var capacity, size, evictions, hits, misses int
	if _, err := fmt.Sscanf(pressure, "Bounded LRU under pressure (capacity %d): size %d, %d evictions, %d hits / %d misses.",
		&capacity, &size, &evictions, &hits, &misses); err != nil {
		t.Fatalf("pressure line %q: %v", pressure, err)
	}
	if evictions == 0 {
		t.Fatalf("pressure block evicted nothing: %s", pressure)
	}
	if size > capacity {
		t.Fatalf("cache exceeded its bound: %s", pressure)
	}
}
