package bench

import (
	"fmt"
	"strings"
	"testing"

	"llmsql/internal/llm"
)

func TestTable13WarmCache(t *testing.T) {
	r, err := Table13WarmCache(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Body, "Identical rows across all runs: true") {
		t.Fatalf("cache changed answers:\n%s", r.Body)
	}
	if !strings.Contains(r.Body, "Warm EXPLAIN carries the discount: true") {
		t.Fatalf("warm-hit estimate missing:\n%s", r.Body)
	}
	if r.CSV == "" {
		t.Fatal("Table 13 must emit CSV (benchdiff gates it)")
	}
	// Warm runs — same engine and fresh engine alike — must cost zero live
	// calls and zero tokens.
	warmRows := 0
	for _, line := range dataLines(r.Body) {
		fields := strings.Fields(line)
		if fields[0] != "warm" {
			continue
		}
		warmRows++
		// run label is "warm same engine" / "warm fresh engine": live
		// calls and tokens sit after the 3-word label.
		if fields[4] != "0" || fields[5] != "0" {
			t.Fatalf("warm run paid live calls/tokens: %s", line)
		}
	}
	if warmRows != 2 {
		t.Fatalf("expected 2 warm rows:\n%s", r.Body)
	}
	// The pressure block must evict within the byte bound.
	pressure := ""
	for _, line := range strings.Split(r.Body, "\n") {
		if strings.Contains(line, "Byte-bounded LRU under pressure") {
			pressure = line
		}
	}
	var bound, live, entries, evictions, hits, misses int
	if _, err := fmt.Sscanf(pressure, "Byte-bounded LRU under pressure (bound %d B): %d live bytes, %d entries, %d evictions, %d hits / %d misses.",
		&bound, &live, &entries, &evictions, &hits, &misses); err != nil {
		t.Fatalf("pressure line %q: %v", pressure, err)
	}
	if evictions == 0 {
		t.Fatalf("pressure block evicted nothing: %s", pressure)
	}
	if live > bound {
		t.Fatalf("cache exceeded its byte bound: %s", pressure)
	}
}

// TestSuiteReplayDeterminism is the CI replay gate in miniature: record the
// efficiency experiments once, then replay them twice and require
// byte-identical reports — the property the replay-determinism job asserts
// over the checked-in fixture.
func TestSuiteReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the efficiency suite three times")
	}
	runners := map[string]func(Options) (Report, error){
		"Table 9":  Table9Parallelism,
		"Table 11": Table11LimitPushdown,
		"Table 13": Table13WarmCache,
	}
	trace := llm.NewTrace()
	rec := testOptions()
	rec.Record = trace
	recorded := map[string]string{}
	for id, run := range runners {
		r, err := run(rec)
		if err != nil {
			t.Fatalf("%s record: %v", id, err)
		}
		recorded[id] = r.String()
	}
	if trace.Len() == 0 {
		t.Fatal("recording captured nothing")
	}
	for round := 0; round < 2; round++ {
		rep := testOptions()
		rep.Replay = trace
		for id, run := range runners {
			r, err := run(rep)
			if err != nil {
				t.Fatalf("%s replay: %v", id, err)
			}
			if r.String() != recorded[id] {
				t.Fatalf("%s replay round %d diverged from the recorded run:\nrecorded:\n%s\nreplayed:\n%s",
					id, round, recorded[id], r.String())
			}
		}
	}
}
