package bench

import (
	"fmt"
	"strings"

	"llmsql/internal/core"
	"llmsql/internal/llm"
	"llmsql/internal/metrics"
	"llmsql/internal/rel"
)

// concurrencyQuery is the hot-path workload for the concurrency
// experiments: a key-then-attr scan pays one ATTR prompt per key x column x
// vote, the worst serial latency in the engine.
const concurrencyQuery = "SELECT name, capital, population FROM country"

func keyThenAttrConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Strategy = core.StrategyKeyThenAttr
	cfg.Votes = 3
	cfg.Temperature = 0.7
	cfg.MaxRounds = 3
	return cfg
}

// renderRows serializes result rows byte-exactly, to assert that
// parallelism does not change answers.
func renderRows(rows []rel.Row) string {
	var b strings.Builder
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table9Parallelism sweeps the scan worker pool width on the key-then-attr
// hot path: identical answers, identical token spend, shrinking
// critical-path latency.
func Table9Parallelism(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	var serialRows string
	var serialWall float64
	// "calls" is Usage.Calls: consumed prompts plus any discarded
	// speculative prefetch calls (ScanStats.Prompts stays identical across
	// widths; total calls may not).
	t := NewTable("parallelism", "calls", "tokens", "total latency", "wall latency", "speedup", "identical rows")
	for _, p := range []int{1, 2, 4, 8, 16} {
		cfg := keyThenAttrConfig()
		cfg.Parallelism = p
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+13)
		res, err := e.Query(concurrencyQuery)
		if err != nil {
			return Report{}, err
		}
		rows := renderRows(res.Result.Rows)
		if p == 1 {
			serialRows = rows
			serialWall = float64(res.Usage.SimWall)
		}
		speedup := serialWall / float64(res.Usage.SimWall)
		t.AddRow(d(p), d(res.Usage.Calls), d(res.Usage.TotalTokens()),
			res.Usage.SimLatency.Round(1e6).String(), res.Usage.SimWall.Round(1e6).String(),
			fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%v", rows == serialRows))
	}
	return Report{
		ID: "Table 9",
		Title: "Scan worker-pool width vs critical-path latency " +
			"(key-then-attr, 3 votes, medium model; speedup is wall latency vs serial)",
		Body: t.String(),
		CSV:  t.CSV(),
	}, nil
}

// Figure8CacheWarmup contrasts a cold completion cache with a warm one on
// an identical re-run, and shows the bounded LRU evicting under pressure.
func Figure8CacheWarmup(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	cfg := keyThenAttrConfig()
	cfg.Parallelism = 8
	cfg.CacheCapacity = 1 << 16
	e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+14)

	t := NewTable("run", "calls", "cached", "tokens charged", "wall latency", "cache hit rate", "$")
	var rowsByRun []string
	for _, run := range []string{"cold", "warm"} {
		res, err := e.Query(concurrencyQuery)
		if err != nil {
			return Report{}, err
		}
		rowsByRun = append(rowsByRun, renderRows(res.Result.Rows))
		hits, misses := 0, 0
		for _, s := range res.Scans {
			hits += s.CacheHits
			misses += s.CacheMisses
		}
		eff := metrics.Efficiency{
			Calls:        res.Usage.Calls,
			CachedCalls:  res.Usage.CachedCalls,
			Tokens:       res.Usage.TotalTokens(),
			TotalLatency: res.Usage.SimLatency,
			WallLatency:  res.Usage.SimWall,
			CacheHits:    hits,
			CacheMisses:  misses,
		}
		t.AddRow(run, d(res.Usage.Calls), d(res.Usage.CachedCalls), d(res.Usage.TotalTokens()),
			res.Usage.SimWall.Round(1e6).String(), pct(eff.CacheHitRate()),
			fmt.Sprintf("%.4f", res.Usage.SimDollars))
	}
	identical := rowsByRun[0] == rowsByRun[1]

	// Eviction under pressure: the key-then-attr working set (one entry per
	// key x column x vote, plus key rounds) is far larger than an 8-entry
	// cache, so the LRU must evict constantly while its size stays bounded.
	small := keyThenAttrConfig()
	small.CacheCapacity = 8
	e2 := o.newEngine(w, llm.ProfileMedium, small, o.Seed+14)
	for i := 0; i < 2; i++ {
		if _, err := e2.Query(concurrencyQuery); err != nil {
			return Report{}, err
		}
	}
	cs := e2.CacheStats()
	extra := fmt.Sprintf("\nIdentical rows cold vs warm: %v.\n"+
		"Bounded LRU under pressure (capacity %d): size %d, %d evictions, %d hits / %d misses.\n",
		identical, cs.Capacity, cs.Size, cs.Evictions, cs.Hits, cs.Misses)

	return Report{
		ID:    "Figure 8",
		Title: "Completion-cache warm-up: identical re-run served from the bounded LRU (key-then-attr, parallelism 8)",
		Body:  t.String() + extra,
		CSV:   t.CSV(),
	}, nil
}
