package bench

import (
	"fmt"
	"math"
	"runtime"

	"llmsql/internal/core"
	"llmsql/internal/llm"
	"llmsql/internal/sql"
)

// frontendQuery exercises the whole front end: keywords, qualified
// identifiers, strings, numbers, two-char operators, comments, a join,
// aggregation, ordering and a positional parameter. No doubled-quote
// escapes — those are the lexer's only allocating path. The tables and
// columns resolve against the synthetic world, so the same text also
// drives the parse+plan case.
const frontendQuery = `SELECT c.continent, COUNT(*) AS n, SUM(c.population) * 1.5
FROM country AS c JOIN laureate AS l ON c.name = l.country -- inline comment
WHERE c.population >= $1 AND c.continent <> 'Europe'
GROUP BY c.continent HAVING COUNT(*) > 0
ORDER BY n DESC, c.continent LIMIT 10`

// allocsPerRun reports the average number of heap allocations per call to
// f, measured over runs calls after one warm-up (the same protocol as
// testing.AllocsPerRun, without importing the testing package into the
// bench binary).
func allocsPerRun(runs int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm up: one-time lazy initialization doesn't count
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// FrontendAllocs measures the SQL front end's allocation profile — the
// regression series behind the bench-check gate's "Frontend" requirement.
// Steady-state tokenization must stay at 0 allocs/op (tokens alias the
// source string); parse and parse+plan are pinned so front-end allocation
// regressions surface as gate failures, not as profile noise in query
// latency. A second part demonstrates the prepared-statement plan cache:
// repeated parameterized queries hit the cache and return rows
// byte-identical to the same statement with values inlined as literals.
func FrontendAllocs(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	// (a) Allocation profile. Planning needs a catalog, so the parse+plan
	// case goes through an engine with the plan cache disabled (every call
	// re-plans); Explain never executes, so no model traffic is issued.
	var lx sql.Lexer
	tokenize := allocsPerRun(200, func() {
		lx.Reset(frontendQuery)
		for {
			tok, err := lx.Next()
			if err != nil || tok.Kind == sql.TokEOF {
				return
			}
		}
	})
	parse := allocsPerRun(200, func() {
		if _, err := sql.Parse(frontendQuery); err != nil {
			panic(err)
		}
	})
	cfg := core.DefaultConfig()
	cfg.PlanCacheCapacity = -1
	cold := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+21)
	defer cold.Close()
	parsePlan := allocsPerRun(200, func() {
		if _, err := cold.Explain(frontendQuery); err != nil {
			panic(err)
		}
	})
	if tokenize != 0 {
		return Report{}, fmt.Errorf("frontend: steady-state tokenization allocated %.1f/op, want 0", tokenize)
	}

	t := NewTable("case", "allocs")
	t.AddRow("tokenize", d(int(math.Round(tokenize))))
	t.AddRow("parse", d(int(math.Round(parse))))
	t.AddRow("parse+plan", d(int(math.Round(parsePlan))))

	// (b) Plan cache and parameter binding. The same parameterized text is
	// planned once and served from the cache afterwards; each execution binds
	// a fresh value. A twin engine runs the literal spellings — rows must be
	// byte-identical (binding substitutes typed literals into a copy of the
	// cached plan; the scan prompts are unchanged).
	cached := o.newEngine(w, llm.ProfileMedium, core.DefaultConfig(), o.Seed+22)
	defer cached.Close()
	literal := o.newEngine(w, llm.ProfileMedium, core.DefaultConfig(), o.Seed+22)
	defer literal.Close()
	paramQ := "SELECT name, capital FROM country WHERE population > $1"
	identical := true
	for _, threshold := range []int64{20, 60, 20} {
		bound, err := cached.Query(paramQ, threshold)
		if err != nil {
			return Report{}, err
		}
		inlined, err := literal.Query(fmt.Sprintf(
			"SELECT name, capital FROM country WHERE population > %d", threshold))
		if err != nil {
			return Report{}, err
		}
		if renderRows(bound.Result.Rows) != renderRows(inlined.Result.Rows) {
			identical = false
		}
	}
	stats := cached.PlanCacheStats()

	body := "(a) Front-end allocations per operation (steady-state, source-aliasing tokens):\n" +
		t.String() +
		fmt.Sprintf("\n(b) Plan cache over 3 parameterized executions of %q:\n", paramQ) +
		fmt.Sprintf("plan cache: %d hits, %d misses, %d entries; rows byte-identical to inlined literals: %v\n",
			stats.Hits, stats.Misses, stats.Entries, identical)
	return Report{
		ID: "Frontend",
		Title: "Allocation-free SQL front end: tokenize/parse/plan allocs per op " +
			"and the prepared-statement plan cache",
		Body: body,
		CSV:  t.CSV(),
	}, nil
}
