package bench

import (
	"fmt"
	"sort"

	"llmsql/internal/core"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/storage"
	"llmsql/internal/world"
)

// Table12BindJoins sweeps the bind join against the hash baseline on the
// canonical sideways-passing workload: a cheap local driving table joined
// to an LLM virtual table on its entity key. With bind on, the outer
// side's distinct join keys are pushed into the country scan, whose
// attribute fan-out (attrCols x votes ATTR prompts per key — the dominant
// cost) collapses from the whole table to the bound keys; the KEYS
// enumeration keeps its identical prompt as the membership oracle, so
// result rows are byte-identical to the hash plan. Part (b) shows the same
// machinery on an IN-subquery (semi join); part (c) joins two LLM tables,
// where the outer scan's own cost bounds the total win.
func Table12BindJoins(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	// Local driving table materialized from the movie ground truth.
	movies := w.Domain("movie")
	yi := movies.Schema.IndexOf("year")
	ci := movies.Schema.IndexOf("country")
	mkLocal := func() (*storage.DB, error) {
		db := storage.NewDB()
		tbl, err := db.CreateTable("film_ref", rel.NewSchema(
			rel.Column{Name: "title", Type: rel.TypeText, Key: true},
			rel.Column{Name: "year", Type: rel.TypeInt},
			rel.Column{Name: "country", Type: rel.TypeText},
		))
		if err != nil {
			return nil, err
		}
		for _, e := range movies.Entities {
			if err := tbl.Insert(rel.Row{e.Row[0], e.Row[yi], e.Row[ci]}); err != nil {
				return nil, err
			}
		}
		return db, nil
	}

	run := func(query string, bind bool) (*core.QueryResult, error) {
		cfg := keyThenAttrConfig()
		cfg.Parallelism = 8
		cfg.BindJoin = bind
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+17)
		db, err := mkLocal()
		if err != nil {
			return nil, err
		}
		e.AttachLocal(db)
		return e.Query(query)
	}
	boundKeys := func(res *core.QueryResult) int {
		n := 0
		for _, s := range res.Scans {
			n += s.KeysBound
		}
		return n
	}

	// Outer selectivity controlled by year thresholds at fixed quantiles
	// of the ground-truth distribution, so labels are stable across
	// scales and seeds.
	quantiles := []float64{0, 0.75, 0.90, 0.98}
	labels := []string{"100%", "25%", "10%", "2%"}
	years := yearQuantiles(w, quantiles)

	t := NewTable("outer sel", "calls", "calls (hash)", "tokens", "tokens (hash)",
		"wall", "wall (hash)", "keys bound", "rows", "identical rows")
	for i, y := range years {
		query := fmt.Sprintf(
			"SELECT f.title, c.capital FROM film_ref f JOIN country c ON f.country = c.name WHERE f.year >= %d", y)
		bound, err := run(query, true)
		if err != nil {
			return Report{}, err
		}
		hash, err := run(query, false)
		if err != nil {
			return Report{}, err
		}
		t.AddRow(labels[i],
			d(bound.Usage.Calls), d(hash.Usage.Calls),
			d(bound.Usage.TotalTokens()), d(hash.Usage.TotalTokens()),
			bound.Usage.SimWall.Round(1e6).String(), hash.Usage.SimWall.Round(1e6).String(),
			d(boundKeys(bound)), d(len(bound.Result.Rows)),
			fmt.Sprintf("%v", renderRows(bound.Result.Rows) == renderRows(hash.Result.Rows)))
	}

	// (b) Semi join: the IN-subquery plans as a semi join whose right side
	// binds through the subquery projection; the pushed continent filter
	// rides along into the bound scan's prompt.
	semiQuery := fmt.Sprintf(
		"SELECT f.title FROM film_ref f WHERE f.year >= %d AND f.country IN (SELECT name FROM country WHERE continent = 'Europe')", years[2])
	st := NewTable("strategy", "semi calls", "semi tokens", "semi wall", "rows")
	var semiRows []string
	for _, bind := range []bool{true, false} {
		res, err := run(semiQuery, bind)
		if err != nil {
			return Report{}, err
		}
		name := "bind"
		if !bind {
			name = "hash"
		}
		semiRows = append(semiRows, renderRows(res.Result.Rows))
		st.AddRow(name, d(res.Usage.Calls), d(res.Usage.TotalTokens()),
			res.Usage.SimWall.Round(1e6).String(), d(len(res.Result.Rows)))
	}

	// (c) Two LLM tables: the movie side pays its own full scan either
	// way, so the total win is bounded by the country side's share.
	llmQuery := "SELECT m.title, c.capital FROM movie m JOIN country c ON m.country = c.name"
	lt := NewTable("strategy", "calls", "tokens", "wall", "rows")
	var llmRows []string
	for _, bind := range []bool{true, false} {
		res, err := run(llmQuery, bind)
		if err != nil {
			return Report{}, err
		}
		name := "bind"
		if !bind {
			name = "hash"
		}
		llmRows = append(llmRows, renderRows(res.Result.Rows))
		lt.AddRow(name, d(res.Usage.Calls), d(res.Usage.TotalTokens()),
			res.Usage.SimWall.Round(1e6).String(), d(len(res.Result.Rows)))
	}

	body := "(a) Outer-selectivity sweep, local film_ref ⋈ country(capital) on the entity key (bind vs hash):\n" +
		t.String() +
		fmt.Sprintf("\n(b) Semi join, %s (identical rows: %v):\n", semiQuery, semiRows[0] == semiRows[1]) +
		st.String() +
		fmt.Sprintf("\n(c) LLM ⋈ LLM, %s (identical rows: %v):\n", llmQuery, llmRows[0] == llmRows[1]) +
		lt.String()
	return Report{
		ID: "Table 12",
		Title: "Bind joins: semi-join key pushdown into LLM scans vs the hash baseline " +
			"(3 votes, parallelism 8, medium model; rows byte-identical at every point)",
		Body: body,
		CSV:  t.CSV(),
	}, nil
}

// yearQuantiles returns year thresholds at the given quantiles of the
// movie domain, so "year >= q(p)" keeps roughly a 1-p fraction of rows.
func yearQuantiles(w *world.World, qs []float64) []int64 {
	d := w.Domain("movie")
	idx := d.Schema.IndexOf("year")
	var years []int64
	for _, e := range d.Entities {
		if !e.Row[idx].IsNull() {
			years = append(years, e.Row[idx].AsInt())
		}
	}
	sort.Slice(years, func(i, j int) bool { return years[i] < years[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		pos := int(q * float64(len(years)))
		if pos >= len(years) {
			pos = len(years) - 1
		}
		out[i] = years[pos]
	}
	return out
}
