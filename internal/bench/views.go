package bench

import (
	"fmt"
	"os"
	"strings"

	"llmsql/internal/llm"
)

// Table16MaterializedViews measures the materialized-view lifecycle on the
// key-then-attr hot path: a cold CREATE MATERIALIZED VIEW pays the full
// defining scan once, warm reads then serve from the row store at zero
// model calls and zero simulated wall, and REFRESH after a partial prompt-
// cache invalidation re-asks live exactly the fingerprints that went cold
// (an all-warm refresh re-asks none). The identity row checks that the warm
// view read is byte-identical to a live run of the defining query.
func Table16MaterializedViews(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	dir, err := os.MkdirTemp("", "llmsql-views-*")
	if err != nil {
		return Report{}, err
	}
	defer os.RemoveAll(dir)

	// Deterministic single-round enumeration, no voting, unbatched ATTRs:
	// the refresh manifest then mirrors the issued prompts one-to-one, so
	// "live calls == invalidated fingerprints" is exact.
	cfg := keyThenAttrConfig()
	cfg.Votes = 1
	cfg.Temperature = 0
	cfg.MaxRounds = 1
	cfg.Parallelism = 4
	cfg.CacheDir = dir
	e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+21)
	defer e.Close()

	// Live reference for the identity check: the defining query on a
	// second engine over the same model seed but its own empty prompt
	// cache, so nothing is shared with the view engine.
	refDir, err := os.MkdirTemp("", "llmsql-views-ref-*")
	if err != nil {
		return Report{}, err
	}
	defer os.RemoveAll(refDir)
	refCfg := cfg
	refCfg.CacheDir = refDir
	ref := o.newEngine(w, llm.ProfileMedium, refCfg, o.Seed+21)
	defer ref.Close()
	liveRes, err := ref.Query(concurrencyQuery)
	if err != nil {
		return Report{}, err
	}
	liveRows := renderRows(liveRes.Result.Rows)

	t := NewTable("run", "calls", "live calls", "tokens", "rows", "wall", "$", "cold-only refresh")
	record := func(name string, u llm.Usage, rows int, coldOnly string) {
		t.AddRow(name, d(u.Calls), d(u.Calls-u.CachedCalls), d(u.TotalTokens()),
			d(rows), u.SimWall.Round(1e6).String(), fmt.Sprintf("%.4f", u.SimDollars), coldOnly)
	}
	usageAround := func(f func() error) (llm.Usage, error) {
		before := e.TotalUsage()
		if err := f(); err != nil {
			return llm.Usage{}, err
		}
		return e.TotalUsage().Sub(before), nil
	}

	// Cold build: the defining query runs live once and its rows are bulk-
	// loaded into the view's row store.
	buildUsage, err := usageAround(func() error {
		return e.Exec("CREATE MATERIALIZED VIEW country_summary AS " + concurrencyQuery)
	})
	if err != nil {
		return Report{}, err
	}
	info, _ := e.View("country_summary")
	record("cold build", buildUsage, info.Rows, "-")
	coldWall := buildUsage.SimWall

	// Warm read: served from the materialized rows, zero model traffic.
	readQuery := "SELECT name, capital, population FROM country_summary"
	warm, err := e.Query(readQuery)
	if err != nil {
		return Report{}, err
	}
	record("warm read", warm.Usage, len(warm.Result.Rows), "-")
	identical := renderRows(warm.Result.Rows) == liveRows
	explain, err := e.Explain(readQuery)
	if err != nil {
		return Report{}, err
	}

	// Partial refresh: invalidate ~a quarter of the view's fingerprint
	// manifest, then REFRESH — live calls must equal the invalidated count
	// (every other prompt answers warm from the persistent cache).
	reqs, err := e.ViewRequests("country_summary")
	if err != nil {
		return Report{}, err
	}
	target := len(reqs) / 4
	if target < 1 {
		target = 1
	}
	invalidated := 0
	for _, req := range reqs {
		if invalidated == target {
			break
		}
		invalidated += e.InvalidateCachedCompletions(req)
	}
	refreshUsage, err := usageAround(func() error {
		return e.Exec("REFRESH MATERIALIZED VIEW country_summary")
	})
	if err != nil {
		return Report{}, err
	}
	info, _ = e.View("country_summary")
	coldOnly := fmt.Sprintf("%v (%d cold)", refreshUsage.Calls-refreshUsage.CachedCalls == invalidated, invalidated)
	record("partial refresh", refreshUsage, info.Rows, coldOnly)

	// All-warm refresh: nothing was invalidated, nothing goes live.
	warmRefresh, err := usageAround(func() error {
		return e.Exec("REFRESH MATERIALIZED VIEW country_summary")
	})
	if err != nil {
		return Report{}, err
	}
	info, _ = e.View("country_summary")
	record("all-warm refresh", warmRefresh,
		info.Rows, fmt.Sprintf("%v (0 cold)", warmRefresh.Calls-warmRefresh.CachedCalls == 0))

	speedup := "inf"
	if warm.Usage.SimWall > 0 {
		speedup = fmt.Sprintf("%.0fx", float64(coldWall)/float64(warm.Usage.SimWall))
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nwarm read byte-identical to live defining scan: %v\n", identical)
	fmt.Fprintf(&b, "warm-read wall speedup vs cold build: %s\n", speedup)
	fmt.Fprintf(&b, "fingerprint manifest: %d requests, %d invalidated before refresh\n", len(reqs), invalidated)
	b.WriteString("EXPLAIN of the warm read:\n")
	b.WriteString(explain)
	return Report{
		ID: "Table 16",
		Title: "Materialized views: cold build, warm reads, fingerprint-keyed refresh " +
			"(key-then-attr, medium model; live calls = calls minus cache hits)",
		Body: b.String(),
		CSV:  t.CSV(),
	}, nil
}
