// Package bench implements the experiment harness: one runner per table and
// figure of the (reconstructed) evaluation. Each runner builds worlds,
// engines and baselines, executes the workload, scores it with
// internal/metrics, and renders a paper-style table plus, for figures, a
// CSV series. See DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for recorded outputs.
package bench

import (
	"fmt"
	"strings"
)

// Table accumulates aligned text output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.headers) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (for figure series).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Report is one experiment's output. The struct marshals to JSON for
// machine-readable runs (llmsql-bench -json, BENCH_baseline.json).
type Report struct {
	// ID is the table/figure identifier ("Table 2", "Figure 4").
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// Body is the formatted result table.
	Body string `json:"body"`
	// CSV is the machine-readable series (figures only; may be empty).
	CSV string `json:"csv,omitempty"`
}

// String renders the report for terminals and EXPERIMENTS.md.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	b.WriteString(r.Body)
	if r.CSV != "" {
		b.WriteString("\nCSV series:\n")
		b.WriteString(r.CSV)
	}
	return b.String()
}

func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
func d(n int) string       { return fmt.Sprintf("%d", n) }
