package bench

import (
	"fmt"
	"time"

	"llmsql/internal/core"
	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/metrics"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
	"llmsql/internal/storage"
	"llmsql/internal/world"
)

// Options scales and seeds the experiment suite.
type Options struct {
	// Seed drives world generation and model identity.
	Seed int64
	// Scale multiplies workload sizes; 1.0 is the paper-style run, tests
	// use smaller values. Values below 0.05 are clamped.
	Scale float64
	// CacheDir, when non-empty, gives every experiment engine a persistent
	// prompt cache at this directory (experiments that manage their own
	// cache, like Table 13, keep theirs). Engines are used sequentially, so
	// sharing one directory across the suite is safe.
	CacheDir string
	// Record, when non-nil, captures every completion that reaches an
	// experiment model into the trace — the replay-fixture recorder (one
	// trace holds all experiment models; fingerprints embed the model id).
	Record *llm.Trace
	// Replay, when non-nil, serves every experiment model from the trace
	// instead of a live SynthLM; a request outside the trace is an error.
	// Deterministic playback for CI. Replay wins when both are set.
	Replay *llm.Trace
	// Chaos, when enabled, injects the deterministic fault stream into every
	// experiment engine — the fault-sweep (Table 15) and chaos-check runs.
	Chaos llm.ChaosProfile
	// Retry overrides the engines' retry policy; the zero value keeps each
	// experiment's own (the engine defaults).
	Retry llm.RetryPolicy
	// PartialResults lets experiment scans degrade around exhausted retries
	// instead of failing — required for full-suite runs under chaos.
	PartialResults bool
}

// DefaultOptions is the paper-style configuration.
func DefaultOptions() Options { return Options{Seed: 2024, Scale: 1.0} }

func (o Options) normalize() Options {
	if o.Scale < 0.05 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 2024
	}
	return o
}

// scaled returns max(lo, round(n*Scale)).
func (o Options) scaled(n, lo int) int {
	v := int(float64(n) * o.Scale)
	if v < lo {
		v = lo
	}
	return v
}

// buildWorld generates the evaluation world at the configured scale.
func (o Options) buildWorld() *world.World {
	return world.Generate(world.Config{
		Seed:      o.Seed,
		Countries: o.scaled(180, 20),
		Movies:    o.scaled(400, 30),
		Laureates: o.scaled(250, 20),
		Companies: o.scaled(300, 20),
	})
}

// newEngine wires a fresh engine over a fresh SynthLM for the world,
// applying the suite-wide cache directory and record/replay trace from the
// options (per-experiment config settings win).
func (o Options) newEngine(w *world.World, profile llm.NoiseProfile, cfg core.Config, seed int64) *core.Engine {
	if cfg.CacheDir == "" {
		cfg.CacheDir = o.CacheDir
	}
	if cfg.RecordTrace == nil {
		cfg.RecordTrace = o.Record
	}
	if cfg.ReplayTrace == nil {
		cfg.ReplayTrace = o.Replay
	}
	o.applyFaults(&cfg)
	model := llm.NewSynthLM(w, profile, seed)
	e := core.New(model, cfg)
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}
	return e
}

// applyFaults overlays the suite-wide fault options onto one engine config
// (per-experiment settings win, mirroring the cache/trace overlay above).
func (o Options) applyFaults(cfg *core.Config) {
	if !cfg.Chaos.Enabled() {
		cfg.Chaos = o.Chaos
	}
	if cfg.Retry == (llm.RetryPolicy{}) {
		cfg.Retry = o.Retry
	}
	if o.PartialResults {
		cfg.PartialResults = true
	}
}

// baseline runs the query on the ground-truth row store, returning rows
// and wall-clock time.
func baseline(db *storage.DB, query string) (*exec.Result, time.Duration, error) {
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return nil, 0, err
	}
	node, err := plan.Plan(sel, &exec.StorageCatalog{DB: db})
	if err != nil {
		return nil, 0, err
	}
	//llmsql:allow walltime the baseline runs on the real row store; measuring its actual wall time is the point (Table 6 µs vs simulated seconds) and it never reaches replayed output
	start := time.Now()
	res, err := exec.Execute(node, &exec.StorageSource{DB: db})
	//llmsql:allow walltime same real-row-store measurement as above
	return res, time.Since(start), err
}

// scoreAgainstBaseline runs query on both engines and compares the result
// sets key-wise on the first output column.
func scoreAgainstBaseline(e *core.Engine, db *storage.DB, query string, opt metrics.Options) (metrics.SetMetrics, llm.Usage, error) {
	truth, _, err := baseline(db, query)
	if err != nil {
		return metrics.SetMetrics{}, llm.Usage{}, fmt.Errorf("baseline %q: %w", query, err)
	}
	got, err := e.Query(query)
	if err != nil {
		return metrics.SetMetrics{}, llm.Usage{}, fmt.Errorf("llm %q: %w", query, err)
	}
	return metrics.Compare(got.Result.Rows, truth.Rows, opt), got.Usage, nil
}

// scalarAnswer extracts the single value of a one-row one-column result.
func scalarAnswer(res *exec.Result) rel.Value {
	if len(res.Rows) == 0 || len(res.Rows[0]) == 0 {
		return rel.Null()
	}
	return res.Rows[0][0]
}

// attrTolerance is the relative numeric tolerance used when scoring
// attribute cells: small perturbations from the model's value noise below
// this threshold count as correct, mirroring the paper's "approximately
// correct" judgement for numeric facts.
const attrTolerance = 0.02
