package bench

import (
	"fmt"
	"strings"

	"llmsql/internal/core"
	"llmsql/internal/llm"
	"llmsql/internal/metrics"
	"llmsql/internal/world"
)

// Figure4Convergence measures enumeration recall as a function of the
// number of sampling rounds (temperature 0.8, medium model): the concave
// saturation curve that justifies the stopping rule.
func Figure4Convergence(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()

	maxRounds := o.scaled(12, 4)
	t := NewTable("rounds", "recall(country)", "recall(movie)", "tokens(country)")
	for r := 1; r <= maxRounds; r++ {
		cfg := core.DefaultConfig()
		cfg.Temperature = 0.8
		cfg.MaxRounds = r
		cfg.StableRounds = r + 1 // disable the early stop: measure raw rounds
		e := o.newEngine(w, llm.ProfileMedium, cfg, o.Seed+7)

		recall := func(domain string) (float64, int, error) {
			res, err := e.Query("SELECT " + w.Domain(domain).Schema.Col(0).Name + " FROM " + domain)
			if err != nil {
				return 0, 0, err
			}
			truth := w.Domain(domain).Rows()
			// Key-only retrieval: compare no attribute cells.
			m := metrics.Compare(res.Result.Rows, truth, metrics.Options{CompareCols: []int{}})
			return m.Recall(), res.Usage.TotalTokens(), nil
		}
		rc, tokC, err := recall("country")
		if err != nil {
			return Report{}, err
		}
		rm, _, err := recall("movie")
		if err != nil {
			return Report{}, err
		}
		t.AddRow(d(r), f3(rc), f3(rm), d(tokC))
	}
	return Report{
		ID:    "Figure 4",
		Title: "Enumeration recall vs sampling rounds (temperature 0.8, medium model)",
		Body:  t.String(),
		CSV:   t.CSV(),
	}, nil
}

// Figure5ModelQuality sweeps knowledge coverage (the model-quality axis) at
// two temperatures, measuring F1 of a full country retrieval.
func Figure5ModelQuality(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}

	coverages := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if o.Scale < 0.5 {
		coverages = []float64{0.3, 0.6, 0.9}
	}
	t := NewTable("coverage", "F1 (temp 0)", "F1 (temp 0.7)")
	for _, cov := range coverages {
		f1At := func(temp float64) (float64, error) {
			cfg := core.DefaultConfig()
			cfg.Temperature = temp
			e := o.newEngine(w, llm.ProfileMedium.WithCoverage(cov), cfg, o.Seed+8)
			m, _, err := scoreAgainstBaseline(e, db, "SELECT name, capital, population FROM country", metrics.Options{NumTolerance: attrTolerance})
			if err != nil {
				return 0, err
			}
			return m.F1(), nil
		}
		f0, err := f1At(0)
		if err != nil {
			return Report{}, err
		}
		f7, err := f1At(0.7)
		if err != nil {
			return Report{}, err
		}
		t.AddRow(f2(cov), f3(f0), f3(f7))
	}
	return Report{
		ID:    "Figure 5",
		Title: "Answer quality vs model knowledge coverage (country retrieval)",
		Body:  t.String(),
		CSV:   t.CSV(),
	}, nil
}

// Figure6Popularity breaks retrieval recall down by entity-popularity
// decile (0 = most famous) — the head-vs-tail gap. Per-decile samples are
// small, so recall is averaged over several independently seeded models.
func Figure6Popularity(o Options) (Report, error) {
	o = o.normalize()
	w := o.buildWorld()
	const modelSeeds = 5

	decileRecall := func(domain string) ([10]float64, error) {
		d := w.Domain(domain)
		var total [10]int
		for i := range d.Entities {
			total[i*10/len(d.Entities)]++
		}
		var sum [10]float64
		for s := 0; s < modelSeeds; s++ {
			e := o.newEngine(w, llm.ProfileMedium, core.DefaultConfig(), o.Seed+9+int64(s)*31)
			res, err := e.Query("SELECT " + d.Schema.Col(0).Name + " FROM " + domain)
			if err != nil {
				return [10]float64{}, err
			}
			var hit [10]int
			seen := map[string]bool{}
			for _, row := range res.Result.Rows {
				key := row[0].AsText()
				dec := d.ProminenceDecile(key)
				if dec < 0 || seen[key] {
					continue
				}
				seen[key] = true
				hit[dec]++
			}
			for i := range sum {
				if total[i] > 0 {
					sum[i] += float64(hit[i]) / float64(total[i])
				}
			}
		}
		for i := range sum {
			sum[i] /= modelSeeds
		}
		return sum, nil
	}
	country, err := decileRecall("country")
	if err != nil {
		return Report{}, err
	}
	movie, err := decileRecall("movie")
	if err != nil {
		return Report{}, err
	}

	t := NewTable("popularity decile", "recall(country)", "recall(movie)")
	for i := 0; i < 10; i++ {
		t.AddRow(d(i), f3(country[i]), f3(movie[i]))
	}
	return Report{
		ID:    "Figure 6",
		Title: "Retrieval recall by entity popularity decile (0 = head, 9 = tail; mean of 5 model seeds)",
		Body:  t.String(),
		CSV:   t.CSV(),
	}, nil
}

// Figure7Crossover studies cost scaling: (a) token/latency cost of an LLM
// scan vs base-table size compared with the row store's wall clock, and
// (b) the effect of predicate selectivity with and without prompt
// pushdown.
func Figure7Crossover(o Options) (Report, error) {
	o = o.normalize()

	sizes := []int{10, 25, 50, 100, 200, 400}
	if o.Scale < 0.5 {
		sizes = []int{10, 25, 50}
	}
	sizeTable := NewTable("table size", "LLM tokens", "LLM sim latency", "store latency", "LLM recall")
	for _, n := range sizes {
		w := world.Generate(world.Config{Seed: o.Seed, Countries: n, Movies: 10, Laureates: 10, Companies: 10})
		db, err := world.LoadDB(w)
		if err != nil {
			return Report{}, err
		}
		e := o.newEngine(w, llm.ProfileMedium, core.DefaultConfig(), o.Seed+10)
		query := "SELECT name, population FROM country"
		truth, storeLat, err := baseline(db, query)
		if err != nil {
			return Report{}, err
		}
		got, err := e.Query(query)
		if err != nil {
			return Report{}, err
		}
		m := metrics.Compare(got.Result.Rows, truth.Rows, metrics.Options{NumTolerance: attrTolerance})
		sizeTable.AddRow(d(n), d(got.Usage.TotalTokens()),
			got.Usage.SimLatency.Round(1e6).String(), storeLat.String(), f3(m.Recall()))
	}

	// Selectivity sweep: thresholds at population quantiles.
	w := o.buildWorld()
	db, err := world.LoadDB(w)
	if err != nil {
		return Report{}, err
	}
	thresholds := populationQuantiles(w, []float64{0.0, 0.5, 0.8, 0.95})
	selTable := NewTable("selectivity", "threshold", "tokens (pushdown)", "tokens (no pushdown)", "F1 (pushdown)")
	labels := []string{"1.00", "0.50", "0.20", "0.05"}
	for i, thr := range thresholds {
		query := fmt.Sprintf("SELECT name, population FROM country WHERE population > %d", thr)
		cfgPush := core.DefaultConfig()
		ePush := o.newEngine(w, llm.ProfileMedium, cfgPush, o.Seed+11)
		mPush, usagePush, err := scoreAgainstBaseline(ePush, db, query, metrics.Options{NumTolerance: attrTolerance})
		if err != nil {
			return Report{}, err
		}
		cfgNo := core.DefaultConfig()
		cfgNo.Pushdown = false
		eNo := o.newEngine(w, llm.ProfileMedium, cfgNo, o.Seed+11)
		_, usageNo, err := scoreAgainstBaseline(eNo, db, query, metrics.Options{NumTolerance: attrTolerance})
		if err != nil {
			return Report{}, err
		}
		selTable.AddRow(labels[i], d(int(thr)), d(usagePush.TotalTokens()), d(usageNo.TotalTokens()), f3(mPush.F1()))
	}

	body := "(a) Cost vs base-table size, SELECT name, population FROM country:\n" +
		sizeTable.String() +
		"\n(b) Predicate selectivity with vs without prompt pushdown:\n" +
		selTable.String()
	return Report{
		ID:    "Figure 7",
		Title: "Cost scaling and the pushdown effect (medium model)",
		Body:  body,
		CSV:   sizeTable.CSV(),
	}, nil
}

// populationQuantiles returns population thresholds at the given quantiles
// of the country domain.
func populationQuantiles(w *world.World, qs []float64) []int64 {
	d := w.Domain("country")
	idx := d.Schema.IndexOf("population")
	var pops []int64
	for _, e := range d.Entities {
		if !e.Row[idx].IsNull() {
			pops = append(pops, e.Row[idx].AsInt())
		}
	}
	// insertion sort (n is small)
	for i := 1; i < len(pops); i++ {
		for j := i; j > 0 && pops[j-1] > pops[j]; j-- {
			pops[j-1], pops[j] = pops[j], pops[j-1]
		}
	}
	out := make([]int64, len(qs))
	for i, q := range qs {
		pos := int(q * float64(len(pops)))
		if pos >= len(pops) {
			pos = len(pops) - 1
		}
		out[i] = pops[pos] - 1
	}
	return out
}

// experiments pairs every runner with its report ID, in paper order, so
// subsets can be selected without running the rest (a replay fixture only
// has to cover the experiments that actually run).
var experiments = []struct {
	ID  string
	Run func(Options) (Report, error)
}{
	{"Table 2", Table2RetrievalQuality},
	{"Table 3", Table3QueryClasses},
	{"Table 4", Table4Strategies},
	{"Table 5", Table5Voting},
	{"Table 6", Table6VsBaseline},
	{"Table 7", Table7Ablations},
	{"Table 8", Table8Confidence},
	{"Table 9", Table9Parallelism},
	{"Table 10", Table10Batching},
	{"Table 11", Table11LimitPushdown},
	{"Table 12", Table12BindJoins},
	{"Table 13", Table13WarmCache},
	{"Table 14", Table14Coalesce},
	{"Table 15", Table15FaultSweep},
	{"Table 16", Table16MaterializedViews},
	{"Figure 4", Figure4Convergence},
	{"Figure 5", Figure5ModelQuality},
	{"Figure 6", Figure6Popularity},
	{"Figure 7", Figure7Crossover},
	{"Figure 8", Figure8CacheWarmup},
	{"Frontend", FrontendAllocs},
}

// RunAll executes every experiment and returns the reports in paper order.
func RunAll(o Options) ([]Report, error) { return RunOnly(o, "") }

// RunOnly executes the experiments whose ID contains any of the
// comma-separated, case-insensitive substrings in filter (empty = all), in
// paper order. A filter matching nothing is an error.
func RunOnly(o Options, filter string) ([]Report, error) {
	var subs []string
	for _, s := range strings.Split(filter, ",") {
		if s = strings.TrimSpace(strings.ToLower(s)); s != "" {
			subs = append(subs, s)
		}
	}
	matches := func(id string) bool {
		if len(subs) == 0 {
			return true
		}
		for _, s := range subs {
			if strings.Contains(strings.ToLower(id), s) {
				return true
			}
		}
		return false
	}
	var out []Report
	for _, ex := range experiments {
		if !matches(ex.ID) {
			continue
		}
		r, err := ex.Run(o)
		if err != nil {
			return out, fmt.Errorf("%s: %w", ex.ID, err)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no experiment matches %q", filter)
	}
	return out, nil
}
