package exec

import (
	"fmt"

	"llmsql/internal/expr"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
)

// accumulator folds values for one aggregate within one group.
type accumulator interface {
	add(v rel.Value)
	result() rel.Value
}

type countStarAcc struct{ n int64 }

func (a *countStarAcc) add(rel.Value)     { a.n++ }
func (a *countStarAcc) result() rel.Value { return rel.Int(a.n) }

type countAcc struct{ n int64 }

func (a *countAcc) add(v rel.Value) {
	if !v.IsNull() {
		a.n++
	}
}
func (a *countAcc) result() rel.Value { return rel.Int(a.n) }

type sumAcc struct {
	isInt  bool
	intSum int64
	fltSum float64
	sawAny bool
}

func (a *sumAcc) add(v rel.Value) {
	if v.IsNull() {
		return
	}
	f, err := rel.Coerce(v, rel.TypeFloat)
	if err != nil {
		return
	}
	a.sawAny = true
	a.fltSum += f.AsFloat()
	if v.Type() == rel.TypeInt {
		a.intSum += v.AsInt()
	} else {
		a.isInt = false
	}
}

func (a *sumAcc) result() rel.Value {
	if !a.sawAny {
		return rel.Null()
	}
	if a.isInt {
		return rel.Int(a.intSum)
	}
	return rel.Float(a.fltSum)
}

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) add(v rel.Value) {
	if v.IsNull() {
		return
	}
	f, err := rel.Coerce(v, rel.TypeFloat)
	if err != nil {
		return
	}
	a.sum += f.AsFloat()
	a.n++
}

func (a *avgAcc) result() rel.Value {
	if a.n == 0 {
		return rel.NullOf(rel.TypeFloat)
	}
	return rel.Float(a.sum / float64(a.n))
}

type minMaxAcc struct {
	max  bool
	best rel.Value
	set  bool
}

func (a *minMaxAcc) add(v rel.Value) {
	if v.IsNull() {
		return
	}
	if !a.set {
		a.best = v
		a.set = true
		return
	}
	c, ts := rel.Compare(v, a.best)
	if ts != rel.True {
		return
	}
	if (a.max && c > 0) || (!a.max && c < 0) {
		a.best = v
	}
}

func (a *minMaxAcc) result() rel.Value {
	if !a.set {
		return rel.Null()
	}
	return a.best
}

// distinctAcc wraps another accumulator, feeding each distinct value once.
type distinctAcc struct {
	inner accumulator
	seen  map[string]bool
}

func (a *distinctAcc) add(v rel.Value) {
	if v.IsNull() {
		a.inner.add(v) // inner ignores NULLs itself
		return
	}
	key := (rel.Row{v}).AllKey()
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.inner.add(v)
}

func (a *distinctAcc) result() rel.Value { return a.inner.result() }

func newAccumulator(spec plan.AggSpec) (accumulator, error) {
	var acc accumulator
	switch spec.Func {
	case "COUNT":
		if spec.Arg == nil {
			acc = &countStarAcc{}
		} else {
			acc = &countAcc{}
		}
	case "SUM":
		acc = &sumAcc{isInt: spec.Type == rel.TypeInt}
	case "AVG":
		acc = &avgAcc{}
	case "MIN":
		acc = &minMaxAcc{max: false}
	case "MAX":
		acc = &minMaxAcc{max: true}
	default:
		return nil, fmt.Errorf("exec: unknown aggregate %s", spec.Func)
	}
	if spec.Distinct {
		acc = &distinctAcc{inner: acc, seen: make(map[string]bool)}
	}
	return acc, nil
}

func (b *builder) buildAggregate(n *plan.AggregateNode) (RowIter, error) {
	child, err := b.build(n.Child)
	if err != nil {
		return nil, err
	}
	inSchema := n.Child.Schema()

	groupEvals := make([]*expr.Compiled, len(n.GroupBy))
	for i, g := range n.GroupBy {
		c, err := expr.Compile(g, inSchema)
		if err != nil {
			child.Close()
			return nil, err
		}
		groupEvals[i] = c
	}
	argEvals := make([]*expr.Compiled, len(n.Aggs))
	for i, a := range n.Aggs {
		if a.Arg == nil {
			continue
		}
		c, err := expr.Compile(a.Arg, inSchema)
		if err != nil {
			child.Close()
			return nil, err
		}
		argEvals[i] = c
	}

	type group struct {
		key  rel.Row
		accs []accumulator
	}
	groups := make(map[string]*group)
	var order []string // deterministic output order: first-seen

	rows, err := Drain(child)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		keyVals := make(rel.Row, len(groupEvals))
		for i, g := range groupEvals {
			v, err := g.Eval(row)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
		}
		key := keyVals.AllKey()
		grp, ok := groups[key]
		if !ok {
			accs := make([]accumulator, len(n.Aggs))
			for i, spec := range n.Aggs {
				acc, err := newAccumulator(spec)
				if err != nil {
					return nil, err
				}
				accs[i] = acc
			}
			grp = &group{key: keyVals, accs: accs}
			groups[key] = grp
			order = append(order, key)
		}
		for i, spec := range n.Aggs {
			if spec.Arg == nil {
				grp.accs[i].add(rel.Null())
				continue
			}
			v, err := argEvals[i].Eval(row)
			if err != nil {
				return nil, err
			}
			grp.accs[i].add(v)
		}
	}

	var out []rel.Row
	if len(groups) == 0 && len(n.GroupBy) == 0 {
		// Global aggregate over empty input: one row of defaults.
		row := make(rel.Row, 0, len(n.Aggs))
		for _, spec := range n.Aggs {
			acc, err := newAccumulator(spec)
			if err != nil {
				return nil, err
			}
			row = append(row, acc.result())
		}
		out = append(out, row)
	} else {
		for _, key := range order {
			grp := groups[key]
			row := make(rel.Row, 0, len(grp.key)+len(grp.accs))
			row = append(row, grp.key...)
			for _, acc := range grp.accs {
				row = append(row, acc.result())
			}
			out = append(out, row)
		}
	}
	return newSliceIter(out), nil
}
