package exec

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// memSource serves fixed row sets per table, for operator-level tests that
// bypass storage.
type memSource struct {
	tables map[string][]rel.Row
}

func (m *memSource) Scan(req ScanRequest) (RowIter, error) {
	rows, ok := m.tables[req.Table]
	if !ok {
		return nil, errors.New("memSource: unknown table " + req.Table)
	}
	return newSliceIter(rows), nil
}

// failingIter errors after n rows.
type failingIter struct{ n int }

func (f *failingIter) Next() (rel.Row, bool, error) {
	if f.n <= 0 {
		return nil, false, errors.New("source exploded")
	}
	f.n--
	return rel.Row{rel.Int(int64(f.n))}, true, nil
}
func (f *failingIter) Close() error { return nil }

type failingSource struct{ after int }

func (f *failingSource) Scan(ScanRequest) (RowIter, error) {
	return &failingIter{n: f.after}, nil
}

func joinSchemas() (rel.Schema, rel.Schema) {
	left := rel.NewSchema(
		rel.Column{Name: "k", Type: rel.TypeInt, Table: "l"},
		rel.Column{Name: "lv", Type: rel.TypeInt, Table: "l"},
	)
	right := rel.NewSchema(
		rel.Column{Name: "k", Type: rel.TypeInt, Table: "r"},
		rel.Column{Name: "rv", Type: rel.TypeInt, Table: "r"},
	)
	return left, right
}

// randRows builds n rows with keys drawn from a small domain (guaranteeing
// both matches and misses) including occasional NULL keys.
func randRows(rng *rand.Rand, n int) []rel.Row {
	rows := make([]rel.Row, n)
	for i := range rows {
		var key rel.Value
		if rng.Intn(10) == 0 {
			key = rel.Null()
		} else {
			key = rel.Int(int64(rng.Intn(8)))
		}
		rows[i] = rel.Row{key, rel.Int(int64(rng.Intn(100)))}
	}
	return rows
}

// sortedKeys canonicalises a result set for comparison.
func sortedKeys(rows []rel.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.AllKey()
	}
	sort.Strings(out)
	return out
}

// TestHashVsNestedLoopJoinEquivalence: for random inputs, the hash join and
// the nested-loop join must produce identical multisets for inner and left
// equi-joins.
func TestHashVsNestedLoopJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	leftSchema, rightSchema := joinSchemas()
	on, err := sql.ParseExpr("l.k = r.k")
	if err != nil {
		t.Fatal(err)
	}
	leftKey, _ := sql.ParseExpr("l.k")
	rightKey, _ := sql.ParseExpr("r.k")

	for iter := 0; iter < 200; iter++ {
		leftRows := randRows(rng, rng.Intn(20))
		rightRows := randRows(rng, rng.Intn(20))
		src := &memSource{tables: map[string][]rel.Row{"l": leftRows, "r": rightRows}}
		for _, kind := range []plan.JoinKind{plan.KindInner, plan.KindLeft} {
			mk := func() (*plan.ScanNode, *plan.ScanNode) {
				return &plan.ScanNode{Table: "l", Alias: "l", TableSchema: leftSchema},
					&plan.ScanNode{Table: "r", Alias: "r", TableSchema: rightSchema}
			}
			l1, r1 := mk()
			hashJoin := &plan.JoinNode{
				Kind: kind, Left: l1, Right: r1,
				LeftKey: []sql.Expr{leftKey}, RightKey: []sql.Expr{rightKey},
			}
			l2, r2 := mk()
			nlJoin := &plan.JoinNode{Kind: kind, Left: l2, Right: r2, On: on}

			hres, err := Execute(hashJoin, src)
			if err != nil {
				t.Fatalf("hash join: %v", err)
			}
			nres, err := Execute(nlJoin, src)
			if err != nil {
				t.Fatalf("nl join: %v", err)
			}
			hk, nk := sortedKeys(hres.Rows), sortedKeys(nres.Rows)
			if len(hk) != len(nk) {
				t.Fatalf("iter %d kind %v: hash %d rows vs nl %d rows", iter, kind, len(hk), len(nk))
			}
			for i := range hk {
				if hk[i] != nk[i] {
					t.Fatalf("iter %d kind %v: row %d differs:\n%v\nvs\n%v", iter, kind, i, hk[i], nk[i])
				}
			}
		}
	}
}

// TestSemiAntiJoinPartition: for any inputs, semi-join output plus
// anti-join output equals the left input whenever the right side has no
// NULL keys and is non-empty (NOT IN null semantics break the partition
// otherwise, which is also asserted).
func TestSemiAntiJoinPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	leftSchema, rightSchema := joinSchemas()
	leftKey, _ := sql.ParseExpr("l.k")
	rightKey, _ := sql.ParseExpr("r.k")

	for iter := 0; iter < 200; iter++ {
		leftRows := randRows(rng, 1+rng.Intn(15))
		// Right side without NULL keys for the partition property.
		rightRows := randRows(rng, 1+rng.Intn(15))
		for i := range rightRows {
			if rightRows[i][0].IsNull() {
				rightRows[i][0] = rel.Int(int64(rng.Intn(8)))
			}
		}
		src := &memSource{tables: map[string][]rel.Row{"l": leftRows, "r": rightRows}}
		run := func(kind plan.JoinKind) []rel.Row {
			node := &plan.JoinNode{
				Kind:    kind,
				Left:    &plan.ScanNode{Table: "l", Alias: "l", TableSchema: leftSchema},
				Right:   &plan.ScanNode{Table: "r", Alias: "r", TableSchema: rightSchema},
				LeftKey: []sql.Expr{leftKey}, RightKey: []sql.Expr{rightKey},
			}
			res, err := Execute(node, src)
			if err != nil {
				t.Fatal(err)
			}
			return res.Rows
		}
		semi := run(plan.KindSemi)
		anti := run(plan.KindAnti)
		// NULL-keyed left rows appear in neither (IN and NOT IN are both
		// UNKNOWN for NULL).
		nullKeyed := 0
		for _, r := range leftRows {
			if r[0].IsNull() {
				nullKeyed++
			}
		}
		if len(semi)+len(anti)+nullKeyed != len(leftRows) {
			t.Fatalf("iter %d: semi(%d) + anti(%d) + nullkeys(%d) != left(%d)",
				iter, len(semi), len(anti), nullKeyed, len(leftRows))
		}
	}
}

// TestAntiJoinNullPoisoning: a single NULL key on the right suppresses
// every left row (SQL NOT IN semantics).
func TestAntiJoinNullPoisoning(t *testing.T) {
	leftSchema, rightSchema := joinSchemas()
	leftKey, _ := sql.ParseExpr("l.k")
	rightKey, _ := sql.ParseExpr("r.k")
	src := &memSource{tables: map[string][]rel.Row{
		"l": {{rel.Int(1), rel.Int(0)}, {rel.Int(2), rel.Int(0)}},
		"r": {{rel.Int(9), rel.Int(0)}, {rel.Null(), rel.Int(0)}},
	}}
	node := &plan.JoinNode{
		Kind:    plan.KindAnti,
		Left:    &plan.ScanNode{Table: "l", Alias: "l", TableSchema: leftSchema},
		Right:   &plan.ScanNode{Table: "r", Alias: "r", TableSchema: rightSchema},
		LeftKey: []sql.Expr{leftKey}, RightKey: []sql.Expr{rightKey},
	}
	res, err := Execute(node, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("anti join with right NULL must be empty: %v", res.Rows)
	}
	// Empty right side passes everything.
	src.tables["r"] = nil
	node.Left = &plan.ScanNode{Table: "l", Alias: "l", TableSchema: leftSchema}
	node.Right = &plan.ScanNode{Table: "r", Alias: "r", TableSchema: rightSchema}
	res, err = Execute(node, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("anti join with empty right must pass all: %v", res.Rows)
	}
}

// TestSourceErrorPropagation: an error mid-stream must surface through the
// whole operator stack.
func TestSourceErrorPropagation(t *testing.T) {
	schema := rel.NewSchema(rel.Column{Name: "n", Type: rel.TypeInt, Table: "t"})
	scan := &plan.ScanNode{Table: "t", Alias: "t", TableSchema: schema}
	pred, _ := sql.ParseExpr("n >= 0")
	node := plan.Node(&plan.FilterNode{Child: scan, Pred: pred})
	node = &plan.DistinctNode{Child: node}
	node = &plan.LimitNode{Child: node, Limit: 100}
	_, err := Execute(node, &failingSource{after: 3})
	if err == nil || err.Error() != "source exploded" {
		t.Fatalf("error not propagated: %v", err)
	}
	// Sort materializes eagerly and must also propagate.
	sortNode := &plan.SortNode{Child: scan, Keys: []plan.SortKey{{Col: 0}}}
	if _, err := Execute(sortNode, &failingSource{after: 2}); err == nil {
		t.Fatal("sort must propagate source errors")
	}
	// Aggregates too.
	aggNode := &plan.AggregateNode{
		Child: scan,
		Aggs:  []plan.AggSpec{{Func: "COUNT", Name: "#a0", Type: rel.TypeInt}},
		Out:   rel.NewSchema(rel.Column{Name: "#a0", Type: rel.TypeInt}),
	}
	if _, err := Execute(aggNode, &failingSource{after: 2}); err == nil {
		t.Fatal("aggregate must propagate source errors")
	}
}

// TestScanWidthValidation: a source returning the wrong row width is an
// error, not silent corruption.
func TestScanWidthValidation(t *testing.T) {
	schema := rel.NewSchema(
		rel.Column{Name: "a", Type: rel.TypeInt, Table: "t"},
		rel.Column{Name: "b", Type: rel.TypeInt, Table: "t"},
	)
	src := &memSource{tables: map[string][]rel.Row{"t": {{rel.Int(1)}}}} // too narrow
	scan := &plan.ScanNode{Table: "t", Alias: "t", TableSchema: schema}
	if _, err := Execute(scan, src); err == nil {
		t.Fatal("width mismatch must error")
	}
}
