package exec

import (
	"strings"
	"testing"

	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
	"llmsql/internal/storage"
)

// testDB builds the fixture database used by all executor tests.
func testDB(t *testing.T) *storage.DB {
	t.Helper()
	db := storage.NewDB()

	country, err := db.CreateTable("country", rel.NewSchema(
		rel.Column{Name: "name", Type: rel.TypeText, Key: true},
		rel.Column{Name: "capital", Type: rel.TypeText},
		rel.Column{Name: "continent", Type: rel.TypeText},
		rel.Column{Name: "population", Type: rel.TypeInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	rows := []rel.Row{
		{rel.Text("France"), rel.Text("Paris"), rel.Text("Europe"), rel.Int(68)},
		{rel.Text("Germany"), rel.Text("Berlin"), rel.Text("Europe"), rel.Int(84)},
		{rel.Text("Italy"), rel.Text("Rome"), rel.Text("Europe"), rel.Int(59)},
		{rel.Text("Japan"), rel.Text("Tokyo"), rel.Text("Asia"), rel.Int(125)},
		{rel.Text("India"), rel.Text("New Delhi"), rel.Text("Asia"), rel.Int(1408)},
		{rel.Text("Brazil"), rel.Text("Brasilia"), rel.Text("South America"), rel.Int(214)},
		{rel.Text("Mystery"), rel.Null(), rel.Text("Atlantis"), rel.Null()},
	}
	if err := country.InsertAll(rows); err != nil {
		t.Fatal(err)
	}

	movie, err := db.CreateTable("movie", rel.NewSchema(
		rel.Column{Name: "title", Type: rel.TypeText, Key: true},
		rel.Column{Name: "director", Type: rel.TypeText},
		rel.Column{Name: "year", Type: rel.TypeInt},
		rel.Column{Name: "country", Type: rel.TypeText},
	))
	if err != nil {
		t.Fatal(err)
	}
	mrows := []rel.Row{
		{rel.Text("Amelie"), rel.Text("Jeunet"), rel.Int(2001), rel.Text("France")},
		{rel.Text("Seven Samurai"), rel.Text("Kurosawa"), rel.Int(1954), rel.Text("Japan")},
		{rel.Text("Ran"), rel.Text("Kurosawa"), rel.Int(1985), rel.Text("Japan")},
		{rel.Text("City of God"), rel.Text("Meirelles"), rel.Int(2002), rel.Text("Brazil")},
		{rel.Text("Metropolis"), rel.Text("Lang"), rel.Int(1927), rel.Text("Germany")},
		{rel.Text("Orphan Film"), rel.Text("Unknown"), rel.Int(1990), rel.Null()},
	}
	if err := movie.InsertAll(mrows); err != nil {
		t.Fatal(err)
	}
	return db
}

// run executes a SQL query over the fixture DB.
func run(t *testing.T, db *storage.DB, query string) *Result {
	t.Helper()
	res, err := tryRun(db, query)
	if err != nil {
		t.Fatalf("run %q: %v", query, err)
	}
	return res
}

func tryRun(db *storage.DB, query string) (*Result, error) {
	sel, err := sql.ParseSelect(query)
	if err != nil {
		return nil, err
	}
	node, err := plan.Plan(sel, &StorageCatalog{DB: db})
	if err != nil {
		return nil, err
	}
	return Execute(node, &StorageSource{DB: db})
}

// texts extracts column col of every row as strings (NULL -> "NULL").
func texts(res *Result, col int) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[col].String()
	}
	return out
}

func TestSelectStar(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT * FROM country")
	if len(res.Rows) != 7 || res.Schema.Len() != 4 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), res.Schema.Len())
	}
}

func TestFilterAndProject(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT name FROM country WHERE population > 100")
	got := texts(res, 0)
	want := map[string]bool{"Japan": true, "India": true, "Brazil": true}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected %q", g)
		}
	}
}

func TestNullsNeverPassFilters(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT name FROM country WHERE population > 0")
	for _, r := range res.Rows {
		if r[0].AsText() == "Mystery" {
			t.Fatal("NULL population row passed filter")
		}
	}
	res = run(t, db, "SELECT name FROM country WHERE population IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "Mystery" {
		t.Fatalf("IS NULL: %v", texts(res, 0))
	}
}

func TestExpressionsInProjection(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT name, population * 2 AS dbl FROM country WHERE name = 'France'")
	if res.Rows[0][1].AsInt() != 136 {
		t.Fatalf("expr: %v", res.Rows[0])
	}
	if res.Schema.Col(1).Name != "dbl" {
		t.Fatalf("alias: %v", res.Schema)
	}
}

func TestInnerJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT m.title, c.capital
		FROM movie m JOIN country c ON m.country = c.name
		ORDER BY m.title`)
	if len(res.Rows) != 5 {
		t.Fatalf("join rows: %v", texts(res, 0))
	}
	if res.Rows[0][0].AsText() != "Amelie" || res.Rows[0][1].AsText() != "Paris" {
		t.Fatalf("first join row: %v", res.Rows[0])
	}
}

func TestLeftJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT m.title, c.name
		FROM movie m LEFT JOIN country c ON m.country = c.name
		ORDER BY m.title`)
	if len(res.Rows) != 6 {
		t.Fatalf("left join rows: %d", len(res.Rows))
	}
	// The orphan film has no matching country.
	foundOrphan := false
	for _, r := range res.Rows {
		if r[0].AsText() == "Orphan Film" {
			foundOrphan = true
			if !r[1].IsNull() {
				t.Fatalf("orphan row not null-padded: %v", r)
			}
		}
	}
	if !foundOrphan {
		t.Fatal("orphan row missing")
	}
}

func TestCrossJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT c.name, m.title FROM country c CROSS JOIN movie m")
	if len(res.Rows) != 7*6 {
		t.Fatalf("cross join: %d", len(res.Rows))
	}
}

func TestCommaJoinWithWhere(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT m.title FROM movie m, country c
		WHERE m.country = c.name AND c.continent = 'Asia'
		ORDER BY m.title`)
	got := texts(res, 0)
	if len(got) != 2 || got[0] != "Ran" || got[1] != "Seven Samurai" {
		t.Fatalf("comma join: %v", got)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT m1.title, m2.title
		FROM movie m1
		JOIN movie m2 ON m1.director = m2.director AND m1.title <> m2.title
		JOIN country c ON m1.country = c.name
		ORDER BY m1.title`)
	// Kurosawa directed two movies -> two ordered pairs.
	if len(res.Rows) != 2 {
		t.Fatalf("three-way join: %v", res.Rows)
	}
}

func TestAggregatesGlobal(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT COUNT(*), COUNT(population), SUM(population), AVG(population), MIN(population), MAX(population) FROM country")
	r := res.Rows[0]
	if r[0].AsInt() != 7 {
		t.Fatalf("count(*): %v", r[0])
	}
	if r[1].AsInt() != 6 {
		t.Fatalf("count(pop) must skip NULL: %v", r[1])
	}
	if r[2].AsInt() != 68+84+59+125+1408+214 {
		t.Fatalf("sum: %v", r[2])
	}
	wantAvg := float64(68+84+59+125+1408+214) / 6
	if r[3].AsFloat() != wantAvg {
		t.Fatalf("avg: %v want %v", r[3], wantAvg)
	}
	if r[4].AsInt() != 59 || r[5].AsInt() != 1408 {
		t.Fatalf("min/max: %v %v", r[4], r[5])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT COUNT(*), SUM(population) FROM country WHERE name = 'Narnia'")
	if len(res.Rows) != 1 {
		t.Fatalf("global agg over empty input must emit one row: %v", res.Rows)
	}
	if res.Rows[0][0].AsInt() != 0 || !res.Rows[0][1].IsNull() {
		t.Fatalf("defaults: %v", res.Rows[0])
	}
	// Grouped aggregate over empty input emits nothing.
	res = run(t, db, "SELECT continent, COUNT(*) FROM country WHERE name = 'Narnia' GROUP BY continent")
	if len(res.Rows) != 0 {
		t.Fatalf("grouped agg over empty input: %v", res.Rows)
	}
}

func TestGroupByHaving(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT continent, COUNT(*) AS n, SUM(population) AS pop
		FROM country
		GROUP BY continent
		HAVING COUNT(*) >= 2
		ORDER BY n DESC, continent`)
	if len(res.Rows) != 2 {
		t.Fatalf("groups: %v", res.Rows)
	}
	if res.Rows[0][0].AsText() != "Europe" || res.Rows[0][1].AsInt() != 3 {
		t.Fatalf("europe group: %v", res.Rows[0])
	}
	if res.Rows[1][0].AsText() != "Asia" || res.Rows[1][2].AsInt() != 1533 {
		t.Fatalf("asia group: %v", res.Rows[1])
	}
}

func TestCountDistinct(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT COUNT(DISTINCT director) FROM movie")
	if res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("count distinct: %v", res.Rows[0])
	}
	res = run(t, db, "SELECT SUM(DISTINCT year) FROM movie WHERE director = 'Kurosawa'")
	if res.Rows[0][0].AsInt() != 1954+1985 {
		t.Fatalf("sum distinct: %v", res.Rows[0])
	}
}

func TestGroupByExpression(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT year / 10 AS decade, COUNT(*) AS n
		FROM movie GROUP BY year / 10 ORDER BY decade`)
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Ensure group expression equality matched between SELECT and GROUP BY.
	if res.Schema.Col(0).Name != "decade" {
		t.Fatalf("schema: %v", res.Schema)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT name, population FROM country ORDER BY population DESC LIMIT 2")
	got := texts(res, 0)
	if len(got) != 2 || got[0] != "India" || got[1] != "Brazil" {
		t.Fatalf("top2: %v", got)
	}
	// NULLs last ascending.
	res = run(t, db, "SELECT name FROM country ORDER BY population")
	got = texts(res, 0)
	if got[len(got)-1] != "Mystery" {
		t.Fatalf("nulls must sort last asc: %v", got)
	}
	// Offset.
	res = run(t, db, "SELECT name FROM country ORDER BY population DESC LIMIT 2 OFFSET 1")
	got = texts(res, 0)
	if got[0] != "Brazil" {
		t.Fatalf("offset: %v", got)
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT name FROM country WHERE population IS NOT NULL ORDER BY population DESC")
	if res.Schema.Len() != 1 {
		t.Fatalf("hidden col leaked: %v", res.Schema)
	}
	got := texts(res, 0)
	if got[0] != "India" || got[len(got)-1] != "Italy" {
		t.Fatalf("hidden order: %v", got)
	}
}

func TestDistinct(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT DISTINCT continent FROM country ORDER BY continent")
	got := texts(res, 0)
	if len(got) != 4 {
		t.Fatalf("distinct: %v", got)
	}
	res = run(t, db, "SELECT DISTINCT director FROM movie")
	if len(res.Rows) != 5 {
		t.Fatalf("distinct directors: %v", texts(res, 0))
	}
}

func TestInSubquerySemiJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT title FROM movie
		WHERE country IN (SELECT name FROM country WHERE continent = 'Europe')
		ORDER BY title`)
	got := texts(res, 0)
	if len(got) != 2 || got[0] != "Amelie" || got[1] != "Metropolis" {
		t.Fatalf("semi join: %v", got)
	}
}

func TestNotInAntiJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT title FROM movie
		WHERE country NOT IN (SELECT name FROM country WHERE continent = 'Europe')
		ORDER BY title`)
	got := texts(res, 0)
	// Orphan Film has NULL country -> suppressed by NOT IN semantics.
	if len(got) != 3 {
		t.Fatalf("anti join: %v", got)
	}
	for _, g := range got {
		if g == "Orphan Film" || g == "Amelie" || g == "Metropolis" {
			t.Fatalf("anti join leaked %q", g)
		}
	}
	// NOT IN over a set containing NULL suppresses everything.
	res = run(t, db, `
		SELECT title FROM movie
		WHERE title NOT IN (SELECT capital FROM country)`)
	if len(res.Rows) != 0 {
		t.Fatalf("NOT IN with NULL in set must be empty: %v", texts(res, 0))
	}
}

func TestDerivedTable(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT s.continent, s.n
		FROM (SELECT continent, COUNT(*) AS n FROM country GROUP BY continent) AS s
		WHERE s.n > 1
		ORDER BY s.n DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("derived: %v", res.Rows)
	}
	if res.Rows[0][0].AsText() != "Europe" {
		t.Fatalf("derived first: %v", res.Rows[0])
	}
}

func TestScalarFunctionsEndToEnd(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT UPPER(name) FROM country WHERE LENGTH(name) = 5 ORDER BY 1")
	got := texts(res, 0)
	if len(got) != 3 || got[0] != "INDIA" || got[1] != "ITALY" || got[2] != "JAPAN" {
		t.Fatalf("funcs: %v", got)
	}
}

func TestCaseEndToEnd(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT name,
		       CASE WHEN population > 500 THEN 'huge'
		            WHEN population > 100 THEN 'large'
		            ELSE 'normal' END AS size
		FROM country WHERE population IS NOT NULL ORDER BY name`)
	byName := map[string]string{}
	for _, r := range res.Rows {
		byName[r[0].AsText()] = r[1].AsText()
	}
	if byName["India"] != "huge" || byName["Japan"] != "large" || byName["France"] != "normal" {
		t.Fatalf("case: %v", byName)
	}
}

func TestLikeEndToEnd(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT name FROM country WHERE capital LIKE 'B%' ORDER BY name")
	got := texts(res, 0)
	if len(got) != 2 || got[0] != "Brazil" || got[1] != "Germany" {
		t.Fatalf("like: %v", got)
	}
}

func TestConstantQuery(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT 40 + 2 AS answer")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 42 {
		t.Fatalf("constant: %v", res.Rows)
	}
}

func TestBetweenEndToEnd(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT title FROM movie WHERE year BETWEEN 1980 AND 2001 ORDER BY year")
	got := texts(res, 0)
	if len(got) != 3 || got[0] != "Ran" {
		t.Fatalf("between: %v", got)
	}
}

func TestJoinWithResidualPredicate(t *testing.T) {
	db := testDB(t)
	// Equality key plus non-equi residual.
	res := run(t, db, `
		SELECT m.title FROM movie m JOIN country c
		ON m.country = c.name AND m.year > 1950 AND c.population < 100
		ORDER BY m.title`)
	got := texts(res, 0)
	if len(got) != 1 || got[0] != "Amelie" {
		t.Fatalf("residual: %v", got)
	}
}

func TestNonEquiJoin(t *testing.T) {
	db := testDB(t)
	res := run(t, db, `
		SELECT c1.name, c2.name
		FROM country c1 JOIN country c2 ON c1.population < c2.population
		WHERE c1.name = 'Japan'
		ORDER BY c2.name`)
	got := texts(res, 1)
	if len(got) != 2 || got[0] != "Brazil" || got[1] != "India" {
		t.Fatalf("non-equi: %v", got)
	}
}

func TestErrorPropagation(t *testing.T) {
	db := testDB(t)
	bad := []string{
		"SELECT * FROM nosuch",
		"SELECT nosuch FROM country",
		"SELECT name FROM country ORDER BY 9",
	}
	for _, q := range bad {
		if _, err := tryRun(db, q); err == nil {
			t.Errorf("%q: expected error", q)
		}
	}
}

func TestUnoptimizedMatchesOptimized(t *testing.T) {
	db := testDB(t)
	queries := []string{
		"SELECT name FROM country WHERE population > 100 ORDER BY name",
		"SELECT m.title, c.capital FROM movie m JOIN country c ON m.country = c.name WHERE c.continent = 'Asia' ORDER BY m.title",
		"SELECT continent, COUNT(*) FROM country GROUP BY continent ORDER BY 2 DESC, 1",
		"SELECT title FROM movie WHERE country IN (SELECT name FROM country WHERE population > 100) ORDER BY title",
	}
	for _, q := range queries {
		sel, err := sql.ParseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		cat := &StorageCatalog{DB: db}
		opt, err := plan.Plan(sel, cat)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		sel2, _ := sql.ParseSelect(q)
		unopt, err := plan.PlanUnoptimized(sel2, cat)
		if err != nil {
			t.Fatalf("%q unopt: %v", q, err)
		}
		r1, err := Execute(opt, &StorageSource{DB: db})
		if err != nil {
			t.Fatalf("%q opt exec: %v", q, err)
		}
		r2, err := Execute(unopt, &StorageSource{DB: db})
		if err != nil {
			t.Fatalf("%q unopt exec: %v", q, err)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("%q: optimized %d rows vs unoptimized %d", q, len(r1.Rows), len(r2.Rows))
		}
		for i := range r1.Rows {
			if r1.Rows[i].AllKey() != r2.Rows[i].AllKey() {
				t.Fatalf("%q row %d: %v vs %v", q, i, r1.Rows[i], r2.Rows[i])
			}
		}
	}
}

func TestConcatProjection(t *testing.T) {
	db := testDB(t)
	res := run(t, db, "SELECT name || ' -> ' || capital FROM country WHERE name = 'Japan'")
	if res.Rows[0][0].AsText() != "Japan -> Tokyo" {
		t.Fatalf("concat: %v", res.Rows[0])
	}
}

func TestExplainContainsStrategyDetails(t *testing.T) {
	db := testDB(t)
	sel, err := sql.ParseSelect("SELECT m.title FROM movie m JOIN country c ON m.country = c.name WHERE c.population > 100")
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Plan(sel, &StorageCatalog{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	out := plan.Explain(node)
	if !strings.Contains(out, "hash:") {
		t.Fatalf("expected hash join in explain:\n%s", out)
	}
	if !strings.Contains(out, "filter: c.population > 100") {
		t.Fatalf("expected pushed filter in explain:\n%s", out)
	}
}

func TestExecuteAnalyzedRowCounts(t *testing.T) {
	db := testDB(t)
	sel, err := sql.ParseSelect("SELECT name FROM country WHERE population > 100 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Plan(sel, &StorageCatalog{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	res, prof, err := ExecuteAnalyzed(node, &StorageSource{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows: %d", len(res.Rows))
	}
	// The root must report exactly the result cardinality.
	if prof.Rows[node] != 3 {
		t.Fatalf("root count: %d", prof.Rows[node])
	}
	// Every operator in the tree must have a recorded count.
	var check func(n plan.Node)
	check = func(n plan.Node) {
		if _, ok := prof.Rows[n]; !ok {
			t.Fatalf("no count for %T", n)
		}
		for _, c := range n.Children() {
			check(c)
		}
	}
	check(node)
	out := plan.ExplainWithRows(node, prof.Rows)
	if !strings.Contains(out, "[rows=3]") {
		t.Fatalf("explain analyze output:\n%s", out)
	}
	if !strings.Contains(out, "Scan country") {
		t.Fatalf("missing scan:\n%s", out)
	}
}

func TestExecuteAnalyzedMatchesExecute(t *testing.T) {
	db := testDB(t)
	queries := []string{
		"SELECT continent, COUNT(*) FROM country GROUP BY continent ORDER BY 2 DESC",
		"SELECT m.title FROM movie m JOIN country c ON m.country = c.name ORDER BY m.title",
	}
	for _, q := range queries {
		sel, _ := sql.ParseSelect(q)
		cat := &StorageCatalog{DB: db}
		n1, err := plan.Plan(sel, cat)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := Execute(n1, &StorageSource{DB: db})
		if err != nil {
			t.Fatal(err)
		}
		sel2, _ := sql.ParseSelect(q)
		n2, err := plan.Plan(sel2, cat)
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := ExecuteAnalyzed(n2, &StorageSource{DB: db})
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("%q: %d vs %d rows", q, len(r1.Rows), len(r2.Rows))
		}
		for i := range r1.Rows {
			if r1.Rows[i].AllKey() != r2.Rows[i].AllKey() {
				t.Fatalf("%q row %d differs", q, i)
			}
		}
	}
}
