package exec

import (
	"fmt"

	"llmsql/internal/expr"
	"llmsql/internal/rel"
	"llmsql/internal/storage"
)

// StorageSource adapts a storage.DB to the executor's Source interface.
// It honours filter pushdown (evaluating the predicate during the scan) —
// this is the "classical DBMS" execution path used as the paper's baseline.
type StorageSource struct {
	DB *storage.DB
}

// Scan implements Source.
func (s *StorageSource) Scan(req ScanRequest) (RowIter, error) {
	tbl, err := s.DB.Table(req.Table)
	if err != nil {
		return nil, err
	}
	if tbl.Schema().Len() != req.Schema.Len() {
		return nil, fmt.Errorf("exec: schema mismatch for %s", req.Table)
	}
	var pred func(rel.Row) (rel.Tristate, error)
	if req.Filter != nil {
		pred, err = expr.CompileBool(req.Filter, req.Schema)
		if err != nil {
			return nil, err
		}
	}
	it := tbl.Scan()
	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				row, ok := it.Next()
				if !ok {
					return nil, false, nil
				}
				if pred != nil {
					ts, err := pred(row)
					if err != nil {
						return nil, false, err
					}
					if ts != rel.True {
						continue
					}
				}
				return row, true, nil
			}
		},
	}, nil
}

// StorageCatalog adapts a storage.DB to the planner's Catalog interface.
type StorageCatalog struct {
	DB *storage.DB
}

// TableSchema implements plan.Catalog.
func (c *StorageCatalog) TableSchema(name string) (rel.Schema, error) {
	tbl, err := c.DB.Table(name)
	if err != nil {
		return rel.Schema{}, err
	}
	return tbl.Schema(), nil
}

// EstimateRows implements plan.Cardinalities with the exact row count —
// the one estimate a row store can always give for free.
func (c *StorageCatalog) EstimateRows(name string) (int, bool) {
	tbl, err := c.DB.Table(name)
	if err != nil {
		return 0, false
	}
	return tbl.RowCount(), true
}
