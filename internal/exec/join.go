package exec

import (
	"fmt"
	"sort"

	"llmsql/internal/expr"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

func (b *builder) buildJoin(n *plan.JoinNode) (RowIter, error) {
	if len(n.LeftKey) > 0 {
		if n.Strategy == plan.JoinBind && n.BindScan != nil {
			return b.buildBindJoin(n)
		}
		return b.buildHashJoin(n)
	}
	switch n.Kind {
	case plan.KindSemi, plan.KindAnti:
		return nil, fmt.Errorf("exec: %s requires hash keys", n.Kind)
	default:
		return b.buildNestedLoopJoin(n)
	}
}

// keyEvaluators compiles the key expressions over a schema.
func keyEvaluators(keys []sql.Expr, schema rel.Schema) ([]*expr.Compiled, error) {
	out := make([]*expr.Compiled, len(keys))
	for i, k := range keys {
		c, err := expr.Compile(k, schema)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// evalKey computes the composite hash key for a row; ok=false when any key
// component is NULL (NULL never equi-joins).
func evalKey(evals []*expr.Compiled, row rel.Row) (string, bool, error) {
	vals := make(rel.Row, len(evals))
	for i, e := range evals {
		v, err := e.Eval(row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil
		}
		vals[i] = v
	}
	return vals.AllKey(), true, nil
}

// hashJoin carries the compiled state shared by the hash and bind join
// strategies.
type hashJoin struct {
	kind       plan.JoinKind
	leftEvals  []*expr.Compiled
	rightEvals []*expr.Compiled
	residual   func(rel.Row) (rel.Tristate, error)
	nullRight  rel.Row
}

func (b *builder) prepareHashJoin(n *plan.JoinNode) (*hashJoin, error) {
	leftSchema := n.Left.Schema()
	rightSchema := n.Right.Schema()

	leftEvals, err := keyEvaluators(n.LeftKey, leftSchema)
	if err != nil {
		return nil, fmt.Errorf("exec: left join key: %w", err)
	}
	rightEvals, err := keyEvaluators(n.RightKey, rightSchema)
	if err != nil {
		return nil, fmt.Errorf("exec: right join key: %w", err)
	}

	var residual func(rel.Row) (rel.Tristate, error)
	if n.Residual != nil {
		residual, err = expr.CompileBool(n.Residual, leftSchema.Concat(rightSchema))
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %w", err)
		}
	}

	nullRight := make(rel.Row, rightSchema.Len())
	for i := range nullRight {
		nullRight[i] = rel.NullOf(rightSchema.Col(i).Type)
	}
	return &hashJoin{
		kind:       n.Kind,
		leftEvals:  leftEvals,
		rightEvals: rightEvals,
		residual:   residual,
		nullRight:  nullRight,
	}, nil
}

// hashRows builds the hash table over rows keyed by evals, reporting
// whether any row had a NULL key.
func hashRows(rows []rel.Row, evals []*expr.Compiled) (map[string][]rel.Row, bool, error) {
	table := make(map[string][]rel.Row)
	hasNull := false
	for _, row := range rows {
		key, ok, err := evalKey(evals, row)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			hasNull = true
			continue
		}
		table[key] = append(table[key], row)
	}
	return table, hasNull, nil
}

// probeLeft streams left rows against the materialized right side: the
// classic probe phase, emitting left-major output. rightEmpty and
// rightHasNull carry the anti join's NOT IN determinations.
func (h *hashJoin) probeLeft(leftIter RowIter, table map[string][]rel.Row, rightEmpty, rightHasNull bool) RowIter {
	var pending []rel.Row

	emitMatches := func(left rel.Row, matches []rel.Row) ([]rel.Row, error) {
		var out []rel.Row
		for _, right := range matches {
			joined := left.Concat(right)
			if h.residual != nil {
				ts, err := h.residual(joined)
				if err != nil {
					return nil, err
				}
				if ts != rel.True {
					continue
				}
			}
			out = append(out, joined)
		}
		return out, nil
	}

	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				if len(pending) > 0 {
					row := pending[0]
					pending = pending[1:]
					return row, true, nil
				}
				left, ok, err := leftIter.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				key, keyOK, err := evalKey(h.leftEvals, left)
				if err != nil {
					return nil, false, err
				}

				switch h.kind {
				case plan.KindSemi:
					if keyOK && len(table[key]) > 0 {
						return left, true, nil
					}

				case plan.KindAnti:
					// NOT IN semantics: an empty right side passes every
					// row; otherwise NULL on either side suppresses.
					if rightEmpty {
						return left, true, nil
					}
					if rightHasNull || !keyOK {
						continue
					}
					if len(table[key]) == 0 {
						return left, true, nil
					}

				case plan.KindLeft:
					var matches []rel.Row
					if keyOK {
						matches, err = emitMatches(left, table[key])
						if err != nil {
							return nil, false, err
						}
					}
					if len(matches) == 0 {
						return left.Concat(h.nullRight), true, nil
					}
					pending = matches

				default: // inner
					if !keyOK {
						continue
					}
					matches, err := emitMatches(left, table[key])
					if err != nil {
						return nil, false, err
					}
					pending = matches
				}
			}
		},
		close: leftIter.Close,
	}
}

// probeRight streams right rows against a materialized left side (inner
// joins built on the left): output is right-major, each match emitted as
// left ++ right.
func (h *hashJoin) probeRight(rightIter RowIter, table map[string][]rel.Row) RowIter {
	var pending []rel.Row
	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				if len(pending) > 0 {
					row := pending[0]
					pending = pending[1:]
					return row, true, nil
				}
				right, ok, err := rightIter.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				key, keyOK, err := evalKey(h.rightEvals, right)
				if err != nil || !keyOK {
					if err != nil {
						return nil, false, err
					}
					continue
				}
				for _, left := range table[key] {
					joined := left.Concat(right)
					if h.residual != nil {
						ts, err := h.residual(joined)
						if err != nil {
							return nil, false, err
						}
						if ts != rel.True {
							continue
						}
					}
					pending = append(pending, joined)
				}
			}
		},
		close: rightIter.Close,
	}
}

func (b *builder) buildHashJoin(n *plan.JoinNode) (RowIter, error) {
	h, err := b.prepareHashJoin(n)
	if err != nil {
		return nil, err
	}

	// Build phase: materialize and hash the build side — the right input
	// by default, the left when the join planner judged it smaller
	// (inner joins only; output order follows the probe side).
	if n.BuildLeft && n.Kind == plan.KindInner {
		leftIter, err := b.build(n.Left)
		if err != nil {
			return nil, err
		}
		leftRows, err := Drain(leftIter)
		if err != nil {
			return nil, err
		}
		table, _, err := hashRows(leftRows, h.leftEvals)
		if err != nil {
			return nil, err
		}
		rightIter, err := b.build(n.Right)
		if err != nil {
			return nil, err
		}
		return h.probeRight(rightIter, table), nil
	}

	rightIter, err := b.build(n.Right)
	if err != nil {
		return nil, err
	}
	rightRows, err := Drain(rightIter)
	if err != nil {
		return nil, err
	}
	table, rightHasNull, err := hashRows(rightRows, h.rightEvals)
	if err != nil {
		return nil, err
	}

	leftIter, err := b.build(n.Left)
	if err != nil {
		return nil, err
	}
	return h.probeLeft(leftIter, table, len(rightRows) == 0, rightHasNull), nil
}

// buildBindJoin executes the sideways-information-passing strategy: drain
// the non-bound (outer) side first, collect its distinct join-key values,
// and build the bound side with those keys pushed into its scan
// (ScanRequest.Keys). The bound side's rows are then filtered to the bound
// key set — sources are untrusted, so rows for keys that were never bound
// are dropped here — and, since both sides are now materialized, the probe
// runs in exactly the orientation the hash join would use (BuildLeft), so
// the output is byte-identical to the unbound plan, ordering included.
func (b *builder) buildBindJoin(n *plan.JoinNode) (RowIter, error) {
	h, err := b.prepareHashJoin(n)
	if err != nil {
		return nil, err
	}

	outerNode, boundNode := n.Left, n.Right
	outerEval, boundEval := h.leftEvals[0], h.rightEvals[0]
	if n.BindLeft {
		outerNode, boundNode = n.Right, n.Left
		outerEval, boundEval = h.rightEvals[0], h.leftEvals[0]
	}

	outerIter, err := b.build(outerNode)
	if err != nil {
		return nil, err
	}
	outerRows, err := Drain(outerIter)
	if err != nil {
		return nil, err
	}
	keys, outerHasNull, err := distinctKeyTexts(outerRows, outerEval)
	if err != nil {
		return nil, err
	}

	// Anti joins with NULL outer keys depend on whether the FULL right
	// side is empty (an empty NOT IN list passes every row, a non-empty
	// one suppresses NULL-keyed ones) — a bound scan cannot reveal that,
	// so fall back to the unbound build for exactly that case.
	bind := !(n.Kind == plan.KindAnti && outerHasNull)

	if bind {
		if b.bindKeys == nil {
			b.bindKeys = make(map[*plan.ScanNode][]string)
		}
		b.bindKeys[n.BindScan] = keys
	}
	boundIter, err := b.build(boundNode)
	if bind {
		delete(b.bindKeys, n.BindScan)
	}
	if err != nil {
		return nil, err
	}
	boundRows, err := Drain(boundIter)
	if err != nil {
		return nil, err
	}
	if bind {
		boundRows, err = filterBoundRows(boundRows, boundEval, keys)
		if err != nil {
			return nil, err
		}
	}

	leftRows, rightRows := outerRows, boundRows
	if n.BindLeft {
		leftRows, rightRows = boundRows, outerRows
	}
	if n.BuildLeft && n.Kind == plan.KindInner {
		table, _, err := hashRows(leftRows, h.leftEvals)
		if err != nil {
			return nil, err
		}
		return h.probeRight(newSliceIter(rightRows), table), nil
	}
	table, rightHasNull, err := hashRows(rightRows, h.rightEvals)
	if err != nil {
		return nil, err
	}
	return h.probeLeft(newSliceIter(leftRows), table, len(rightRows) == 0, rightHasNull), nil
}

// distinctKeyTexts collects the sorted distinct textual join-key values of
// the outer rows (NULL keys are reported, never bound).
func distinctKeyTexts(rows []rel.Row, eval *expr.Compiled) ([]string, bool, error) {
	seen := make(map[string]bool)
	hasNull := false
	for _, row := range rows {
		v, err := eval.Eval(row)
		if err != nil {
			return nil, false, err
		}
		if v.IsNull() {
			hasNull = true
			continue
		}
		seen[v.AsText()] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, hasNull, nil
}

// filterBoundRows drops bound-side rows whose join key is NULL or not among
// the bound keys: the source was asked for exactly these keys, and a row
// outside the set could never match the outer side — but it could corrupt
// the anti join's emptiness/NULL determinations, so the executor enforces
// the contract rather than trusting it.
func filterBoundRows(rows []rel.Row, eval *expr.Compiled, keys []string) ([]rel.Row, error) {
	bound := make(map[string]bool, len(keys))
	for _, k := range keys {
		bound[k] = true
	}
	kept := rows[:0]
	for _, row := range rows {
		v, err := eval.Eval(row)
		if err != nil {
			return nil, err
		}
		if v.IsNull() || !bound[v.AsText()] {
			continue
		}
		kept = append(kept, row)
	}
	return kept, nil
}

func (b *builder) buildNestedLoopJoin(n *plan.JoinNode) (RowIter, error) {
	leftSchema := n.Left.Schema()
	rightSchema := n.Right.Schema()

	var pred func(rel.Row) (rel.Tristate, error)
	on := n.On
	if n.Residual != nil {
		on = n.Residual
	}
	if on != nil {
		var err error
		pred, err = expr.CompileBool(on, leftSchema.Concat(rightSchema))
		if err != nil {
			return nil, fmt.Errorf("exec: join predicate: %w", err)
		}
	}

	rightIter, err := b.build(n.Right)
	if err != nil {
		return nil, err
	}
	rightRows, err := Drain(rightIter)
	if err != nil {
		return nil, err
	}

	leftIter, err := b.build(n.Left)
	if err != nil {
		return nil, err
	}

	nullRight := make(rel.Row, rightSchema.Len())
	for i := range nullRight {
		nullRight[i] = rel.NullOf(rightSchema.Col(i).Type)
	}

	var current rel.Row
	ri := 0
	matched := false

	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				if current == nil {
					row, ok, err := leftIter.Next()
					if err != nil || !ok {
						return nil, false, err
					}
					current = row
					ri = 0
					matched = false
				}
				for ri < len(rightRows) {
					right := rightRows[ri]
					ri++
					joined := current.Concat(right)
					if pred != nil {
						ts, err := pred(joined)
						if err != nil {
							return nil, false, err
						}
						if ts != rel.True {
							continue
						}
					}
					matched = true
					return joined, true, nil
				}
				// Left row exhausted.
				if n.Kind == plan.KindLeft && !matched {
					out := current.Concat(nullRight)
					current = nil
					return out, true, nil
				}
				current = nil
			}
		},
		close: leftIter.Close,
	}, nil
}
