package exec

import (
	"fmt"

	"llmsql/internal/expr"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

func (b *builder) buildJoin(n *plan.JoinNode) (RowIter, error) {
	if len(n.LeftKey) > 0 {
		return b.buildHashJoin(n)
	}
	switch n.Kind {
	case plan.KindSemi, plan.KindAnti:
		return nil, fmt.Errorf("exec: %s requires hash keys", n.Kind)
	default:
		return b.buildNestedLoopJoin(n)
	}
}

// keyEvaluators compiles the key expressions over a schema.
func keyEvaluators(keys []sql.Expr, schema rel.Schema) ([]*expr.Compiled, error) {
	out := make([]*expr.Compiled, len(keys))
	for i, k := range keys {
		c, err := expr.Compile(k, schema)
		if err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

// evalKey computes the composite hash key for a row; ok=false when any key
// component is NULL (NULL never equi-joins).
func evalKey(evals []*expr.Compiled, row rel.Row) (string, bool, error) {
	vals := make(rel.Row, len(evals))
	for i, e := range evals {
		v, err := e.Eval(row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil
		}
		vals[i] = v
	}
	return vals.AllKey(), true, nil
}

func (b *builder) buildHashJoin(n *plan.JoinNode) (RowIter, error) {
	leftSchema := n.Left.Schema()
	rightSchema := n.Right.Schema()

	leftEvals, err := keyEvaluators(n.LeftKey, leftSchema)
	if err != nil {
		return nil, fmt.Errorf("exec: left join key: %v", err)
	}
	rightEvals, err := keyEvaluators(n.RightKey, rightSchema)
	if err != nil {
		return nil, fmt.Errorf("exec: right join key: %v", err)
	}

	var residual func(rel.Row) (rel.Tristate, error)
	if n.Residual != nil {
		residual, err = expr.CompileBool(n.Residual, leftSchema.Concat(rightSchema))
		if err != nil {
			return nil, fmt.Errorf("exec: join residual: %v", err)
		}
	}

	// Build phase: materialize and hash the right input.
	rightIter, err := b.build(n.Right)
	if err != nil {
		return nil, err
	}
	rightRows, err := Drain(rightIter)
	if err != nil {
		return nil, err
	}
	table := make(map[string][]rel.Row)
	rightHasNull := false
	for _, row := range rightRows {
		key, ok, err := evalKey(rightEvals, row)
		if err != nil {
			return nil, err
		}
		if !ok {
			rightHasNull = true
			continue
		}
		table[key] = append(table[key], row)
	}

	leftIter, err := b.build(n.Left)
	if err != nil {
		return nil, err
	}

	nullRight := make(rel.Row, rightSchema.Len())
	for i := range nullRight {
		nullRight[i] = rel.NullOf(rightSchema.Col(i).Type)
	}

	// Probe state for streaming multiple matches per left row.
	var pending []rel.Row

	emitMatches := func(left rel.Row, matches []rel.Row) ([]rel.Row, error) {
		var out []rel.Row
		for _, right := range matches {
			joined := left.Concat(right)
			if residual != nil {
				ts, err := residual(joined)
				if err != nil {
					return nil, err
				}
				if ts != rel.True {
					continue
				}
			}
			out = append(out, joined)
		}
		return out, nil
	}

	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				if len(pending) > 0 {
					row := pending[0]
					pending = pending[1:]
					return row, true, nil
				}
				left, ok, err := leftIter.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				key, keyOK, err := evalKey(leftEvals, left)
				if err != nil {
					return nil, false, err
				}

				switch n.Kind {
				case plan.KindSemi:
					if keyOK && len(table[key]) > 0 {
						return left, true, nil
					}

				case plan.KindAnti:
					// NOT IN semantics: an empty right side passes every
					// row; otherwise NULL on either side suppresses.
					if len(rightRows) == 0 {
						return left, true, nil
					}
					if rightHasNull || !keyOK {
						continue
					}
					if len(table[key]) == 0 {
						return left, true, nil
					}

				case plan.KindLeft:
					var matches []rel.Row
					if keyOK {
						matches, err = emitMatches(left, table[key])
						if err != nil {
							return nil, false, err
						}
					}
					if len(matches) == 0 {
						return left.Concat(nullRight), true, nil
					}
					pending = matches

				default: // inner
					if !keyOK {
						continue
					}
					matches, err := emitMatches(left, table[key])
					if err != nil {
						return nil, false, err
					}
					pending = matches
				}
			}
		},
		close: leftIter.Close,
	}, nil
}

func (b *builder) buildNestedLoopJoin(n *plan.JoinNode) (RowIter, error) {
	leftSchema := n.Left.Schema()
	rightSchema := n.Right.Schema()

	var pred func(rel.Row) (rel.Tristate, error)
	on := n.On
	if n.Residual != nil {
		on = n.Residual
	}
	if on != nil {
		var err error
		pred, err = expr.CompileBool(on, leftSchema.Concat(rightSchema))
		if err != nil {
			return nil, fmt.Errorf("exec: join predicate: %v", err)
		}
	}

	rightIter, err := b.build(n.Right)
	if err != nil {
		return nil, err
	}
	rightRows, err := Drain(rightIter)
	if err != nil {
		return nil, err
	}

	leftIter, err := b.build(n.Left)
	if err != nil {
		return nil, err
	}

	nullRight := make(rel.Row, rightSchema.Len())
	for i := range nullRight {
		nullRight[i] = rel.NullOf(rightSchema.Col(i).Type)
	}

	var current rel.Row
	ri := 0
	matched := false

	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				if current == nil {
					row, ok, err := leftIter.Next()
					if err != nil || !ok {
						return nil, false, err
					}
					current = row
					ri = 0
					matched = false
				}
				for ri < len(rightRows) {
					right := rightRows[ri]
					ri++
					joined := current.Concat(right)
					if pred != nil {
						ts, err := pred(joined)
						if err != nil {
							return nil, false, err
						}
						if ts != rel.True {
							continue
						}
					}
					matched = true
					return joined, true, nil
				}
				// Left row exhausted.
				if n.Kind == plan.KindLeft && !matched {
					out := current.Concat(nullRight)
					current = nil
					return out, true, nil
				}
				current = nil
			}
		},
		close: leftIter.Close,
	}, nil
}
