package exec

import (
	"fmt"
	"sort"

	"llmsql/internal/expr"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
)

// Result is a fully materialized query result.
type Result struct {
	Schema rel.Schema
	Rows   []rel.Row
}

// ColumnNames returns the result column names.
func (r *Result) ColumnNames() []string { return r.Schema.Names() }

// Execute runs the plan against the source and materializes the result.
func Execute(node plan.Node, src Source) (*Result, error) {
	it, err := Build(node, src)
	if err != nil {
		return nil, err
	}
	rows, err := Drain(it)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: node.Schema(), Rows: rows}, nil
}

// Profile records per-operator output row counts (EXPLAIN ANALYZE).
type Profile struct {
	// Rows maps each plan node to the number of rows it emitted.
	Rows map[plan.Node]int64
}

// ExecuteAnalyzed runs the plan and returns the result together with the
// per-operator profile.
func ExecuteAnalyzed(node plan.Node, src Source) (*Result, *Profile, error) {
	prof := &Profile{Rows: make(map[plan.Node]int64)}
	b := &builder{src: src, prof: prof}
	it, err := b.build(node)
	if err != nil {
		return nil, nil, err
	}
	rows, err := Drain(it)
	if err != nil {
		return nil, nil, err
	}
	return &Result{Schema: node.Schema(), Rows: rows}, prof, nil
}

// Build compiles the plan into an iterator tree.
func Build(node plan.Node, src Source) (RowIter, error) {
	return (&builder{src: src}).build(node)
}

// builder carries the source and optional profile through the recursive
// iterator construction.
type builder struct {
	src  Source
	prof *Profile
	// bindKeys carries the distinct join-key values a bind join wants
	// pushed into a specific scan; buildScan consumes the entry when it
	// reaches that node (the bound side is built after the outer side has
	// been drained, so the keys are final by then).
	bindKeys map[*plan.ScanNode][]string
}

// instrument wraps it so the node's emitted rows are counted when a
// profile is attached.
func (b *builder) instrument(node plan.Node, it RowIter) RowIter {
	if b.prof == nil {
		return it
	}
	return &funcIter{
		next: func() (rel.Row, bool, error) {
			row, ok, err := it.Next()
			if ok {
				b.prof.Rows[node]++
			}
			return row, ok, err
		},
		close: it.Close,
	}
}

func (b *builder) build(node plan.Node) (RowIter, error) {
	it, err := b.buildRaw(node)
	if err != nil {
		return nil, err
	}
	return b.instrument(node, it), nil
}

func (b *builder) buildRaw(node plan.Node) (RowIter, error) {
	switch n := node.(type) {
	case *plan.ScanNode:
		return b.buildScan(n)
	case *plan.FilterNode:
		return b.buildFilter(n)
	case *plan.ProjectNode:
		return b.buildProject(n)
	case *plan.JoinNode:
		return b.buildJoin(n)
	case *plan.AggregateNode:
		return b.buildAggregate(n)
	case *plan.SortNode:
		return b.buildSort(n)
	case *plan.LimitNode:
		return b.buildLimit(n)
	case *plan.DistinctNode:
		return b.buildDistinct(n)
	case *plan.ValuesNode:
		return newSliceIter(n.Rows), nil
	default:
		return nil, fmt.Errorf("exec: unsupported plan node %T", node)
	}
}

func (b *builder) buildScan(n *plan.ScanNode) (RowIter, error) {
	it, err := b.src.Scan(ScanRequest{
		Table:  n.Table,
		Alias:  n.Alias,
		Schema: n.TableSchema,
		Needed: n.Needed,
		Filter: n.Filter,
		Limit:  n.Limit,
		Keys:   b.bindKeys[n],
	})
	if err != nil {
		return nil, err
	}
	width := n.TableSchema.Len()
	// Re-apply the pushed filter: sources are untrusted (the LLM source in
	// particular treats pushdown as a hint, not a guarantee).
	var pred func(rel.Row) (rel.Tristate, error)
	if n.Filter != nil {
		pred, err = expr.CompileBool(n.Filter, n.TableSchema)
		if err != nil {
			it.Close()
			return nil, err
		}
	}
	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				row, ok, err := it.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				if len(row) != width {
					return nil, false, fmt.Errorf("exec: scan of %s returned %d columns, want %d", n.Table, len(row), width)
				}
				if pred != nil {
					ts, err := pred(row)
					if err != nil {
						return nil, false, err
					}
					if ts != rel.True {
						continue
					}
				}
				return row, true, nil
			}
		},
		close: it.Close,
	}, nil
}

func (b *builder) buildFilter(n *plan.FilterNode) (RowIter, error) {
	child, err := b.build(n.Child)
	if err != nil {
		return nil, err
	}
	pred, err := expr.CompileBool(n.Pred, n.Child.Schema())
	if err != nil {
		child.Close()
		return nil, err
	}
	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				row, ok, err := child.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				ts, err := pred(row)
				if err != nil {
					return nil, false, err
				}
				if ts == rel.True {
					return row, true, nil
				}
			}
		},
		close: child.Close,
	}, nil
}

func (b *builder) buildProject(n *plan.ProjectNode) (RowIter, error) {
	child, err := b.build(n.Child)
	if err != nil {
		return nil, err
	}
	inSchema := n.Child.Schema()
	compiled := make([]*expr.Compiled, len(n.Exprs))
	for i, e := range n.Exprs {
		c, err := expr.Compile(e, inSchema)
		if err != nil {
			child.Close()
			return nil, err
		}
		compiled[i] = c
	}
	return &funcIter{
		next: func() (rel.Row, bool, error) {
			row, ok, err := child.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			out := make(rel.Row, len(compiled))
			for i, c := range compiled {
				v, err := c.Eval(row)
				if err != nil {
					return nil, false, err
				}
				out[i] = v
			}
			return out, true, nil
		},
		close: child.Close,
	}, nil
}

func (b *builder) buildSort(n *plan.SortNode) (RowIter, error) {
	child, err := b.build(n.Child)
	if err != nil {
		return nil, err
	}
	rows, err := Drain(child)
	if err != nil {
		return nil, err
	}
	keys := n.Keys
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			a, b := rows[i][k.Col], rows[j][k.Col]
			// NULLs sort after all values regardless of direction.
			switch {
			case a.IsNull() && b.IsNull():
				continue
			case a.IsNull():
				return false
			case b.IsNull():
				return true
			}
			c, ts := rel.Compare(a, b)
			if ts != rel.True || c == 0 {
				continue
			}
			if k.Desc {
				c = -c
			}
			return c < 0
		}
		return false
	})
	return newSliceIter(rows), nil
}

func (b *builder) buildLimit(n *plan.LimitNode) (RowIter, error) {
	child, err := b.build(n.Child)
	if err != nil {
		return nil, err
	}
	skipped := int64(0)
	emitted := int64(0)
	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				if n.Limit >= 0 && emitted >= n.Limit {
					return nil, false, nil
				}
				row, ok, err := child.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				if skipped < n.Offset {
					skipped++
					continue
				}
				emitted++
				return row, true, nil
			}
		},
		close: child.Close,
	}, nil
}

func (b *builder) buildDistinct(n *plan.DistinctNode) (RowIter, error) {
	child, err := b.build(n.Child)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	return &funcIter{
		next: func() (rel.Row, bool, error) {
			for {
				row, ok, err := child.Next()
				if err != nil || !ok {
					return nil, false, err
				}
				key := row.AllKey()
				if seen[key] {
					continue
				}
				seen[key] = true
				return row, true, nil
			}
		},
		close: child.Close,
	}, nil
}
