// Package exec executes logical plans (internal/plan) against pluggable
// table sources. The same operators serve the classical row store and the
// LLM-storage engine; only the Source implementation differs.
package exec

import (
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// RowIter is a forward-only row stream.
type RowIter interface {
	// Next returns the next row. ok=false signals exhaustion; err aborts.
	Next() (row rel.Row, ok bool, err error)
	// Close releases resources. It is safe to call multiple times.
	Close() error
}

// ScanRequest describes a base-table access. The Filter and Needed fields
// are advisory pushdowns: a source may use them to reduce work (the LLM
// source rewrites them into the prompt) but the executor re-applies the
// filter on every returned row, treating sources as untrusted.
type ScanRequest struct {
	// Table is the catalog table name.
	Table string
	// Alias is the binding name in the query.
	Alias string
	// Schema is the expected output schema (alias-qualified).
	Schema rel.Schema
	// Needed marks consumed columns; nil means all. Sources may return
	// NULL for unneeded columns.
	Needed []bool
	// Filter is a predicate over Schema, or nil.
	Filter sql.Expr
	// Limit, when positive, is an advisory row cap: the plan consumes at
	// most this many rows that survive the (re-applied) Filter. Sources
	// may stop retrieving early because of it but must never return fewer
	// qualifying rows than they otherwise would; the executor's LimitNode
	// enforces the real limit regardless. 0 means no hint.
	Limit int64
	// Keys, when non-nil, binds the scan to the given entity-key values
	// (sideways information passing from a bind join: the distinct join
	// keys the outer side produced). A source may use it to retrieve only
	// those entities — the LLM source restricts its attribute fan-out to
	// the bound keys — but must return every row it would otherwise
	// return whose key is among them. Like every pushdown it is advisory:
	// the bind join drops any returned row whose key was never bound, so
	// a source that ignores or violates the hint cannot change results.
	// An empty non-nil slice means no key can match (the scan may return
	// nothing at all).
	Keys []string
}

// Source provides table access for scans.
type Source interface {
	// Scan opens a row stream for the request.
	Scan(req ScanRequest) (RowIter, error)
}

// sliceIter iterates a materialized row slice.
type sliceIter struct {
	rows []rel.Row
	pos  int
}

func newSliceIter(rows []rel.Row) *sliceIter { return &sliceIter{rows: rows} }

func (s *sliceIter) Next() (rel.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

func (s *sliceIter) Close() error { return nil }

// Drain reads every row from it, closing it afterwards.
func Drain(it RowIter) ([]rel.Row, error) {
	defer it.Close()
	var out []rel.Row
	for {
		row, ok, err := it.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, row)
	}
}

// funcIter adapts a closure to RowIter.
type funcIter struct {
	next  func() (rel.Row, bool, error)
	close func() error
}

func (f *funcIter) Next() (rel.Row, bool, error) { return f.next() }

func (f *funcIter) Close() error {
	if f.close != nil {
		return f.close()
	}
	return nil
}
