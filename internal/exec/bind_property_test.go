package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// bindingSource serves fixed row sets and honours ScanRequest.Keys the way
// the LLM store does: a bound scan returns only rows whose key (column 0)
// is among the bound values.
type bindingSource struct {
	tables map[string][]rel.Row
	// bound records the key sets each table was bound with, for assertions.
	bound map[string][][]string
}

func (m *bindingSource) Scan(req ScanRequest) (RowIter, error) {
	rows, ok := m.tables[req.Table]
	if !ok {
		return nil, errors.New("bindingSource: unknown table " + req.Table)
	}
	if req.Keys == nil {
		return newSliceIter(rows), nil
	}
	if m.bound == nil {
		m.bound = map[string][][]string{}
	}
	m.bound[req.Table] = append(m.bound[req.Table], req.Keys)
	want := make(map[string]bool, len(req.Keys))
	for _, k := range req.Keys {
		want[k] = true
	}
	var kept []rel.Row
	for _, row := range rows {
		if !row[0].IsNull() && want[row[0].AsText()] {
			kept = append(kept, row)
		}
	}
	return newSliceIter(kept), nil
}

// lyingSource violates the binding contract: bound scans return the rows it
// was asked for plus fabricated rows for keys that were never bound and a
// NULL-keyed row. The executor must drop all of the extras.
type lyingSource struct {
	tables map[string][]rel.Row
}

func (m *lyingSource) Scan(req ScanRequest) (RowIter, error) {
	rows, ok := m.tables[req.Table]
	if !ok {
		return nil, errors.New("lyingSource: unknown table " + req.Table)
	}
	if req.Keys == nil {
		return newSliceIter(rows), nil
	}
	want := make(map[string]bool, len(req.Keys))
	for _, k := range req.Keys {
		want[k] = true
	}
	var kept []rel.Row
	for _, row := range rows {
		if !row[0].IsNull() && want[row[0].AsText()] {
			kept = append(kept, row)
		}
	}
	// Fabrications: rows for a key that was never bound, plus a NULL key.
	// A bind join that kept these could corrupt the anti join's emptiness
	// and NULL determinations; the executor must drop both. (Rows invented
	// for keys that WERE bound are indefensible at this layer — that is
	// the store's contract, upheld by keeping enumeration as the
	// membership oracle.)
	for _, fab := range []rel.Row{
		{rel.Text("never-bound-fabrication"), rel.Int(666)},
		{rel.Null(), rel.Int(667)},
	} {
		if !want[fab[0].AsText()] {
			kept = append(kept, fab)
		}
	}
	return newSliceIter(kept), nil
}

// exactKeys canonicalises a result set preserving row order.
func exactKeys(rows []rel.Row) string {
	out := ""
	for _, r := range rows {
		out += r.AllKey() + "\n"
	}
	return out
}

func bindSchemas() (rel.Schema, rel.Schema) {
	left := rel.NewSchema(
		rel.Column{Name: "k", Type: rel.TypeText, Table: "l"},
		rel.Column{Name: "lv", Type: rel.TypeInt, Table: "l"},
	)
	right := rel.NewSchema(
		rel.Column{Name: "k", Type: rel.TypeText, Table: "r", Key: true},
		rel.Column{Name: "rv", Type: rel.TypeInt, Table: "r"},
	)
	return left, right
}

// randTextRows builds rows keyed in a small text domain with NULLs,
// duplicates, and keys ("x0".."x2") that only ever exist on one side. The
// phantom key the lying source fabricates is planted occasionally so its
// extra build-side rows would match if they were not filtered.
func randTextRows(rng *rand.Rand, n int, side string) []rel.Row {
	rows := make([]rel.Row, n)
	for i := range rows {
		var key rel.Value
		switch r := rng.Intn(12); {
		case r == 0:
			key = rel.Null()
		case r == 1:
			key = rel.Text(fmt.Sprintf("%s-only%d", side, rng.Intn(3)))
		case r == 2:
			key = rel.Text("Phantom")
		default:
			key = rel.Text(fmt.Sprintf("key%d", rng.Intn(6)))
		}
		rows[i] = rel.Row{key, rel.Int(int64(rng.Intn(100)))}
	}
	return rows
}

// bindCase enumerates the (kind, bound side, build orientation)
// combinations the planner can produce: the right side binds for every
// kind, the left side for inner joins; the build orientation is free for
// inner joins and fixed right otherwise.
type bindCase struct {
	kind      plan.JoinKind
	bindLeft  bool
	buildLeft bool
}

func bindCases() []bindCase {
	return []bindCase{
		{plan.KindInner, false, false},
		{plan.KindInner, false, true},
		{plan.KindInner, true, false},
		{plan.KindInner, true, true},
		{plan.KindLeft, false, false},
		{plan.KindSemi, false, false},
		{plan.KindAnti, false, false},
	}
}

// TestBindJoinPropertyByteIdentical: for random inputs with NULL and
// duplicate join keys, the bind join must produce byte-identical row
// multisets to the reference plan — the nested-loop join where it supports
// the kind (inner, left), the hash join otherwise — whether the source
// honours the binding or lies about it.
func TestBindJoinPropertyByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	leftSchema, rightSchema := bindSchemas()
	on, err := sql.ParseExpr("l.k = r.k")
	if err != nil {
		t.Fatal(err)
	}
	leftKey, _ := sql.ParseExpr("l.k")
	rightKey, _ := sql.ParseExpr("r.k")

	for iter := 0; iter < 300; iter++ {
		leftRows := randTextRows(rng, rng.Intn(18), "l")
		rightRows := randTextRows(rng, rng.Intn(18), "r")

		for _, tc := range bindCases() {
			buildRows := rightRows
			if tc.kind == plan.KindAnti {
				// The planner only binds an anti join when the bound key is
				// the scan's entity-key column, which enumeration never
				// yields as NULL — a NULL in the full build side flips NOT
				// IN semantics invisibly to a bound scan. Mirror that
				// contract here (cf. TestSemiAntiJoinPartition).
				buildRows = nil
				for _, r := range rightRows {
					if !r[0].IsNull() {
						buildRows = append(buildRows, r)
					}
				}
			}
			tables := map[string][]rel.Row{"l": leftRows, "r": buildRows}
			mkScan := func() (*plan.ScanNode, *plan.ScanNode) {
				return &plan.ScanNode{Table: "l", Alias: "l", TableSchema: leftSchema},
					&plan.ScanNode{Table: "r", Alias: "r", TableSchema: rightSchema}
			}
			mkJoin := func(strategy plan.JoinStrategy) *plan.JoinNode {
				l, r := mkScan()
				j := &plan.JoinNode{
					Kind: tc.kind, Left: l, Right: r,
					LeftKey: []sql.Expr{leftKey}, RightKey: []sql.Expr{rightKey},
					Strategy:  strategy,
					BuildLeft: tc.buildLeft,
				}
				if strategy == plan.JoinBind {
					j.BindLeft = tc.bindLeft
					if tc.bindLeft {
						j.BindScan = l
					} else {
						j.BindScan = r
					}
				}
				return j
			}

			// Reference: nested loop where supported, hash otherwise, always
			// over the untouched base tables.
			var refNode plan.Node
			switch tc.kind {
			case plan.KindInner, plan.KindLeft:
				l, r := mkScan()
				refNode = &plan.JoinNode{Kind: tc.kind, Left: l, Right: r, On: on}
			default:
				refNode = mkJoin(plan.JoinHash)
			}
			ref, err := Execute(refNode, &bindingSource{tables: tables})
			if err != nil {
				t.Fatalf("iter %d %+v: reference: %v", iter, tc, err)
			}
			want := sortedKeys(ref.Rows)

			// The hash join with the same orientation is the exact-order
			// reference: bind must reproduce it byte for byte.
			hash, err := Execute(mkJoin(plan.JoinHash), &bindingSource{tables: tables})
			if err != nil {
				t.Fatalf("iter %d %+v: hash: %v", iter, tc, err)
			}
			wantExact := exactKeys(hash.Rows)

			for _, src := range []Source{
				&bindingSource{tables: tables},
				&lyingSource{tables: tables},
			} {
				got, err := Execute(mkJoin(plan.JoinBind), src)
				if err != nil {
					t.Fatalf("iter %d %+v %T: bind: %v", iter, tc, src, err)
				}
				gk := sortedKeys(got.Rows)
				if len(gk) != len(want) {
					t.Fatalf("iter %d %+v %T: bind %d rows vs reference %d",
						iter, tc, src, len(gk), len(want))
				}
				for i := range gk {
					if gk[i] != want[i] {
						t.Fatalf("iter %d %+v %T: row %d differs:\n%v\nvs\n%v",
							iter, tc, src, i, gk[i], want[i])
					}
				}
				if ge := exactKeys(got.Rows); ge != wantExact {
					t.Fatalf("iter %d %+v %T: bind row order diverged from hash:\n%v\nvs\n%v",
						iter, tc, src, ge, wantExact)
				}
			}
		}
	}
}

// TestBindJoinPushesDistinctSortedKeys: the bound scan receives exactly the
// outer side's distinct non-NULL key values, sorted.
func TestBindJoinPushesDistinctSortedKeys(t *testing.T) {
	leftSchema, rightSchema := bindSchemas()
	leftKey, _ := sql.ParseExpr("l.k")
	rightKey, _ := sql.ParseExpr("r.k")
	src := &bindingSource{tables: map[string][]rel.Row{
		"l": {
			{rel.Text("b"), rel.Int(1)},
			{rel.Text("a"), rel.Int(2)},
			{rel.Null(), rel.Int(3)},
			{rel.Text("b"), rel.Int(4)},
		},
		"r": {{rel.Text("a"), rel.Int(5)}, {rel.Text("z"), rel.Int(6)}},
	}}
	r := &plan.ScanNode{Table: "r", Alias: "r", TableSchema: rightSchema}
	node := &plan.JoinNode{
		Kind:     plan.KindInner,
		Left:     &plan.ScanNode{Table: "l", Alias: "l", TableSchema: leftSchema},
		Right:    r,
		LeftKey:  []sql.Expr{leftKey},
		RightKey: []sql.Expr{rightKey},
		Strategy: plan.JoinBind,
		BindScan: r,
	}
	res, err := Execute(node, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if len(src.bound["r"]) != 1 {
		t.Fatalf("bound scans: %v", src.bound)
	}
	got := src.bound["r"][0]
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("bound keys: %v", got)
	}
}

// TestBindAntiNullFallback: an anti join whose outer side carries a NULL
// key must not bind — whether its NULL-keyed rows pass depends on whether
// the FULL build side is empty, which a bound scan cannot reveal.
func TestBindAntiNullFallback(t *testing.T) {
	leftSchema, rightSchema := bindSchemas()
	leftKey, _ := sql.ParseExpr("l.k")
	rightKey, _ := sql.ParseExpr("r.k")

	run := func(rightRows []rel.Row) (*Result, *bindingSource) {
		src := &bindingSource{tables: map[string][]rel.Row{
			"l": {{rel.Text("a"), rel.Int(1)}, {rel.Null(), rel.Int(2)}},
			"r": rightRows,
		}}
		r := &plan.ScanNode{Table: "r", Alias: "r", TableSchema: rightSchema}
		node := &plan.JoinNode{
			Kind:     plan.KindAnti,
			Left:     &plan.ScanNode{Table: "l", Alias: "l", TableSchema: leftSchema},
			Right:    r,
			LeftKey:  []sql.Expr{leftKey},
			RightKey: []sql.Expr{rightKey},
			Strategy: plan.JoinBind,
			BindScan: r,
		}
		res, err := Execute(node, src)
		if err != nil {
			t.Fatal(err)
		}
		return res, src
	}

	// Non-empty right side that shares no key with the outer: a bound scan
	// would come back empty and (wrongly) pass the NULL-keyed row.
	res, src := run([]rel.Row{{rel.Text("z"), rel.Int(9)}})
	if len(src.bound) != 0 {
		t.Fatalf("anti join with NULL outer keys must not bind: %v", src.bound)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "a" {
		t.Fatalf("NOT IN with non-empty right: %v", res.Rows)
	}

	// Empty right side passes everything, including the NULL-keyed row.
	res, _ = run(nil)
	if len(res.Rows) != 2 {
		t.Fatalf("NOT IN with empty right: %v", res.Rows)
	}
}

// TestHashJoinBuildLeft: an inner hash join built on the left side produces
// the same multiset as the default build (order follows the probe side).
func TestHashJoinBuildLeft(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	leftSchema, rightSchema := bindSchemas()
	leftKey, _ := sql.ParseExpr("l.k")
	rightKey, _ := sql.ParseExpr("r.k")
	for iter := 0; iter < 100; iter++ {
		tables := map[string][]rel.Row{
			"l": randTextRows(rng, rng.Intn(15), "l"),
			"r": randTextRows(rng, rng.Intn(15), "r"),
		}
		run := func(buildLeft bool) []string {
			node := &plan.JoinNode{
				Kind:      plan.KindInner,
				Left:      &plan.ScanNode{Table: "l", Alias: "l", TableSchema: leftSchema},
				Right:     &plan.ScanNode{Table: "r", Alias: "r", TableSchema: rightSchema},
				LeftKey:   []sql.Expr{leftKey},
				RightKey:  []sql.Expr{rightKey},
				BuildLeft: buildLeft,
			}
			res, err := Execute(node, &bindingSource{tables: tables})
			if err != nil {
				t.Fatal(err)
			}
			return sortedKeys(res.Rows)
		}
		br, bl := run(false), run(true)
		if len(br) != len(bl) {
			t.Fatalf("iter %d: build-right %d rows vs build-left %d", iter, len(br), len(bl))
		}
		for i := range br {
			if br[i] != bl[i] {
				t.Fatalf("iter %d: row %d differs: %v vs %v", iter, i, br[i], bl[i])
			}
		}
	}
}
