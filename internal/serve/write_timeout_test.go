package serve

import (
	"testing"
	"time"

	"llmsql/internal/core"
	"llmsql/internal/llm"
)

// TestWriteTimeoutResolution pins the Config.WriteTimeout conventions:
// zero selects DefaultWriteTimeout (the previously hard-coded 30s),
// negative disables the deadline, positive passes through.
func TestWriteTimeoutResolution(t *testing.T) {
	w := testWorld()
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), servingConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	cases := []struct {
		in, want time.Duration
	}{
		{0, DefaultWriteTimeout},
		{-1, 0},
		{5 * time.Second, 5 * time.Second},
	}
	for _, tc := range cases {
		srv := NewServer(Config{Group: g, WriteTimeout: tc.in})
		if got := srv.cfg.WriteTimeout; got != tc.want {
			t.Errorf("WriteTimeout %v resolved to %v, want %v", tc.in, got, tc.want)
		}
	}
	if DefaultWriteTimeout != 30*time.Second {
		t.Errorf("DefaultWriteTimeout = %v, want the historical 30s", DefaultWriteTimeout)
	}
}

// TestWriteTimeoutServes makes sure an explicit (and a disabled) write
// deadline still serves ordinary traffic end to end.
func TestWriteTimeoutServes(t *testing.T) {
	for _, wt := range []time.Duration{2 * time.Second, -1} {
		w := testWorld()
		g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), servingConfig())
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		addr, _ := startServer(t, g, Config{WriteTimeout: wt})
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		resp, err := c.Do(Request{Op: "ping"})
		if err != nil || !resp.OK {
			t.Fatalf("ping with WriteTimeout=%v: %+v err=%v", wt, resp, err)
		}
	}
}
