package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"llmsql/internal/core"
	"llmsql/internal/sql"
)

// session is one connection's server-side state: its own engine (billing,
// caches, plan cache) over the group's shared coalescing stack, its
// prepared statements, and its named-parameter defaults.
type session struct {
	server *Server
	conn   net.Conn
	id     int64
	eng    *core.Engine
	tenant string

	stmts    map[int64]*core.Stmt
	stmtSQL  map[int64]string // original text, for named-default resolution
	nextStmt int64
	defaults map[string]any // session named-parameter state (set op)

	// mu guards the drain handshake: inFlight marks a request being
	// handled; closing asks the session to exit after the response is
	// written.
	mu       sync.Mutex
	inFlight bool
	closing  bool
}

func newSession(s *Server, conn net.Conn, id int64) *session {
	return &session{
		server:   s,
		conn:     conn,
		id:       id,
		eng:      s.cfg.Group.Session(),
		stmts:    make(map[int64]*core.Stmt),
		stmtSQL:  make(map[int64]string),
		defaults: make(map[string]any),
	}
}

// run is the session loop: decode one request per line, handle it, write
// one response line. It returns (closing the connection and retiring the
// session's engine) on client EOF, protocol errors, idle timeout or drain.
func (s *session) run() {
	defer func() {
		s.conn.Close()
		s.server.cfg.Group.CloseSession(s.eng)
		s.server.endSession(s)
	}()
	dec := json.NewDecoder(s.conn)
	dec.UseNumber()
	enc := json.NewEncoder(s.conn)
	for {
		if s.server.cfg.IdleTimeout > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.server.cfg.IdleTimeout))
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, net.ErrClosed) {
				var ne net.Error
				if errors.As(err, &ne) && ne.Timeout() {
					s.server.logf("session %d: idle timeout", s.id)
				}
			}
			return
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			// A request raced the drain deadline: answer it with the
			// machine-readable draining code before the connection closes,
			// so clients can distinguish shutdown from a dropped link and
			// reconnect instead of retrying here.
			resp := errResponse(&RejectError{Code: CodeDraining, Msg: "server shutting down"})
			resp.ID = req.ID
			s.server.countError()
			if wt := s.server.cfg.WriteTimeout; wt > 0 {
				s.conn.SetWriteDeadline(time.Now().Add(wt))
			}
			enc.Encode(resp)
			return
		}
		s.inFlight = true
		s.mu.Unlock()

		resp := s.handle(&req)
		resp.ID = req.ID
		if !resp.OK {
			s.server.countError()
			s.server.logf("session %d: %s failed: %s", s.id, req.Op, resp.Error)
		}
		// Writes get a deadline too, so a stalled client cannot wedge the
		// drain handshake.
		if wt := s.server.cfg.WriteTimeout; wt > 0 {
			s.conn.SetWriteDeadline(time.Now().Add(wt))
		}
		err := enc.Encode(resp)
		s.conn.SetWriteDeadline(time.Time{})

		s.mu.Lock()
		s.inFlight = false
		closing := s.closing
		s.mu.Unlock()
		if err != nil || closing {
			return
		}
	}
}

// drain asks the session to exit: immediately when idle (the blocked read
// is unblocked by closing the connection), or right after the in-flight
// request's response otherwise.
func (s *session) drain() {
	s.mu.Lock()
	s.closing = true
	idle := !s.inFlight
	s.mu.Unlock()
	if idle {
		s.conn.Close()
	}
}

// handle dispatches one request. It never writes to the connection.
func (s *session) handle(req *Request) *Response {
	switch req.Op {
	case "hello":
		s.tenant = req.Tenant
		return &Response{OK: true, Session: s.id}
	case "ping":
		return &Response{OK: true}
	case "stats":
		st := s.server.Stats()
		return &Response{OK: true, Stats: &st}
	case "set":
		for name, raw := range req.Named {
			if raw == nil {
				delete(s.defaults, name)
				continue
			}
			v, err := convertArg(raw)
			if err != nil {
				return errResponse(err)
			}
			s.defaults[strings.ToLower(name)] = v
		}
		return &Response{OK: true}
	case "explain":
		plan, err := s.eng.Explain(req.SQL)
		if err != nil {
			return errResponse(err)
		}
		return &Response{OK: true, Plan: plan}
	case "prepare":
		stmt, err := s.eng.Prepare(req.SQL)
		if err != nil {
			return errResponse(err)
		}
		s.nextStmt++
		s.stmts[s.nextStmt] = stmt
		s.stmtSQL[s.nextStmt] = req.SQL
		return &Response{OK: true, Stmt: s.nextStmt}
	case "close_stmt":
		if _, ok := s.stmts[req.Stmt]; !ok {
			return errResponse(fmt.Errorf("serve: unknown statement %d", req.Stmt))
		}
		delete(s.stmts, req.Stmt)
		delete(s.stmtSQL, req.Stmt)
		return &Response{OK: true}
	case "views":
		views := s.eng.Views()
		return &Response{OK: true, Views: views}
	case "exec":
		return s.runExec(req)
	case "query":
		return s.runQuery(req, req.SQL, nil)
	case "stmt":
		stmt, ok := s.stmts[req.Stmt]
		if !ok {
			return errResponse(fmt.Errorf("serve: unknown statement %d", req.Stmt))
		}
		return s.runQuery(req, s.stmtSQL[req.Stmt], stmt)
	default:
		return errResponse(fmt.Errorf("serve: unknown op %q", req.Op))
	}
}

// runExec runs a DDL/DML statement — local writes and the materialized-view
// lifecycle — under an admission slot. Model spend the statement incurred
// (a view build, the cold fingerprints of a refresh) is charged to the
// tenant's token budget; cached completions charge nothing, so an all-warm
// REFRESH is budget-free.
func (s *session) runExec(req *Request) *Response {
	release, err := s.server.adm.Acquire(s.tenant)
	if err != nil {
		return errResponse(err)
	}
	s.server.countQuery()
	before := s.eng.TotalUsage()
	if err := s.eng.Exec(req.SQL); err != nil {
		release(s.eng.TotalUsage().Sub(before).TotalTokens())
		return errResponse(err)
	}
	usage := s.eng.TotalUsage().Sub(before)
	release(usage.TotalTokens())
	// The write already invalidated this session's plans; the row store is
	// shared, so every other session's plans must notice too. (Materialized
	// views are session-local, but their builds can refine shared scan
	// statistics, so the broadcast stays unconditional.)
	s.server.cfg.Group.InvalidatePlans()
	return &Response{OK: true, Usage: &usage}
}

// runQuery executes SQL (or a prepared statement when stmt is non-nil)
// under an admission slot and encodes the result.
func (s *session) runQuery(req *Request, sqlText string, stmt *core.Stmt) *Response {
	args, err := s.bindArgs(req, sqlText)
	if err != nil {
		return errResponse(err)
	}
	release, err := s.server.adm.Acquire(s.tenant)
	if err != nil {
		return errResponse(err)
	}
	s.server.countQuery()
	var qr *core.QueryResult
	var analyzed string
	if stmt != nil {
		if req.Analyze {
			qr, analyzed, err = stmt.QueryAnalyze(args...)
		} else {
			qr, err = stmt.Query(args...)
		}
	} else {
		if req.Analyze {
			qr, analyzed, err = s.eng.QueryAnalyze(sqlText, args...)
		} else {
			qr, err = s.eng.Query(sqlText, args...)
		}
	}
	if err != nil {
		release(0)
		return errResponse(err)
	}
	release(qr.Usage.TotalTokens())
	s.server.countScans(qr.Scans)
	cols, types, rows := EncodeRows(qr.Result)
	resp := &Response{
		OK:      true,
		Columns: cols,
		Types:   types,
		Rows:    rows,
		Usage:   &qr.Usage,
		Scans:   qr.Scans,
	}
	if req.Analyze {
		resp.Plan = analyzed
	}
	return resp
}

// bindArgs turns a request's bindings into engine arguments. Positional
// args pass through. Named args are overlaid on the session's defaults —
// but only names the statement actually references are taken from the
// defaults, so stored defaults never trip the engine's exact-binding
// validation on statements that don't use them.
func (s *session) bindArgs(req *Request, sqlText string) ([]any, error) {
	if len(req.Args) > 0 {
		return convertArgs(req.Args)
	}
	named := make(core.NamedArgs)
	for name, raw := range req.Named {
		v, err := convertArg(raw)
		if err != nil {
			return nil, err
		}
		named[strings.ToLower(name)] = v
	}
	if len(s.defaults) > 0 {
		for _, name := range namedParams(sqlText) {
			if _, bound := named[name]; bound {
				continue
			}
			if v, ok := s.defaults[name]; ok {
				named[name] = v
			}
		}
	}
	if len(named) == 0 {
		return nil, nil
	}
	return []any{named}, nil
}

// namedParams lists the lower-cased :name parameters a statement
// references, or nil when it doesn't parse (the engine will report the
// parse error with position info; this helper stays quiet).
func namedParams(sqlText string) []string {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil
	}
	var names []string
	seen := make(map[string]bool)
	for _, p := range sql.CollectParams(stmt) {
		if p.Name == "" || seen[p.Name] {
			continue
		}
		seen[p.Name] = true
		names = append(names, strings.ToLower(p.Name))
	}
	return names
}

func errResponse(err error) *Response {
	code := "error"
	var rej *RejectError
	if errors.As(err, &rej) {
		code = rej.Code
	}
	return &Response{OK: false, Error: err.Error(), Code: code}
}
