package serve

import (
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"llmsql/internal/core"
)

// Config assembles a Server.
type Config struct {
	// Group supplies the per-session engines and the shared coalescing
	// backend stack. Required.
	Group *core.EngineGroup
	// Admission bounds concurrency and budgets (zero value: admit
	// everything).
	Admission AdmissionConfig
	// IdleTimeout closes sessions that send no request for this long
	// (0 = never).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write so a stalled client can
	// neither wedge the drain handshake nor pin a session forever
	// (0 selects DefaultWriteTimeout; negative disables the deadline).
	WriteTimeout time.Duration
	// Logf, when non-nil, receives one line per session open/close and per
	// failed request.
	Logf func(format string, args ...any)
}

// Stats is the server-wide counter snapshot returned by the stats op.
type Stats struct {
	// Sessions is the number of connected sessions; TotalSessions counts
	// every session ever accepted.
	Sessions      int `json:"sessions"`
	TotalSessions int `json:"total_sessions"`
	// Queries counts requests that executed SQL (query/stmt/exec); Errors
	// counts requests answered with ok=false, including admission
	// rejections.
	Queries int `json:"queries"`
	Errors  int `json:"errors"`
	// Admission reports slot and budget outcomes.
	Admission AdmissionStats `json:"admission"`
	// Faults aggregates the scan-level fault recovery and degradation of
	// every query served (all zero on a healthy backend).
	Faults FaultStats `json:"faults"`
	// Group is the operator-side engine view: billed vs live usage and the
	// coalescer's counters.
	Group core.GroupStats `json:"group"`
}

// FaultStats sums the fault counters of the ScanStats every served query
// reported: how many keys degraded away under PartialResults, and how much
// retry/hedge recovery the queries consumed.
type FaultStats struct {
	KeysFailed     int `json:"keys_failed"`
	RetriesSpent   int `json:"retries_spent"`
	HedgesLaunched int `json:"hedges_launched"`
	HedgesWon      int `json:"hedges_won"`
}

// add folds one query's scan statistics in.
func (f *FaultStats) add(scans []core.ScanStats) {
	for _, sc := range scans {
		f.KeysFailed += sc.KeysFailed
		f.RetriesSpent += sc.RetriesSpent
		f.HedgesLaunched += sc.HedgesLaunched
		f.HedgesWon += sc.HedgesWon
	}
}

// Server speaks the line/JSON protocol over any net.Listener. One Server
// may serve several listeners; Shutdown drains them all.
type Server struct {
	cfg Config
	adm *Admission

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	sessions  map[*session]struct{}
	draining  bool
	total     int
	queries   int
	errors    int
	faults    FaultStats
	wg        sync.WaitGroup
}

// DefaultWriteTimeout is the response-write deadline used when
// Config.WriteTimeout is zero.
const DefaultWriteTimeout = 30 * time.Second

// NewServer builds a server over the group.
func NewServer(cfg Config) *Server {
	if cfg.Group == nil {
		panic("serve: Config.Group is required")
	}
	switch {
	case cfg.WriteTimeout == 0:
		cfg.WriteTimeout = DefaultWriteTimeout
	case cfg.WriteTimeout < 0:
		cfg.WriteTimeout = 0
	}
	return &Server{
		cfg:       cfg,
		adm:       NewAdmission(cfg.Admission),
		listeners: make(map[net.Listener]struct{}),
		sessions:  make(map[*session]struct{}),
	}
}

// Serve accepts connections until the listener closes (normally via
// Shutdown, which makes Serve return nil).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("serve: server is shut down")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			delete(s.listeners, ln)
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.startSession(conn)
	}
}

func (s *Server) startSession(conn net.Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.total++
	sess := newSession(s, conn, int64(s.total))
	s.sessions[sess] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	s.logf("session %d: open (%s)", sess.id, conn.RemoteAddr())
	go func() {
		defer s.wg.Done()
		sess.run()
	}()
}

// endSession removes a finished session from the registry.
func (s *Server) endSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
	s.logf("session %d: closed", sess.id)
}

// Shutdown gracefully drains the server: listeners stop accepting, idle
// sessions are closed immediately, and sessions with a request in flight
// finish it and receive the response before their connection closes. If ctx
// expires first, remaining connections are closed forcibly and ctx's error
// is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for ln := range s.listeners {
		ln.Close()
	}
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		//llmsql:allow mapiter drain order is irrelevant: every session retires independently and Shutdown waits on all of them
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.drain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats returns a snapshot of the server-wide counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Sessions:      len(s.sessions),
		TotalSessions: s.total,
		Queries:       s.queries,
		Errors:        s.errors,
		Faults:        s.faults,
	}
	s.mu.Unlock()
	st.Admission = s.adm.Stats()
	st.Group = s.cfg.Group.Stats()
	return st
}

func (s *Server) countQuery() {
	s.mu.Lock()
	s.queries++
	s.mu.Unlock()
}

func (s *Server) countError() {
	s.mu.Lock()
	s.errors++
	s.mu.Unlock()
}

func (s *Server) countScans(scans []core.ScanStats) {
	s.mu.Lock()
	s.faults.add(scans)
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
