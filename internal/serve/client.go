package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"

	"llmsql/internal/core"
)

// Client is a minimal synchronous client for the line/JSON protocol: one
// request out, one response in. It is not safe for concurrent use — open
// one Client per goroutine (sessions are per-connection anyway).
type Client struct {
	conn   net.Conn
	enc    *json.Encoder
	dec    *json.Decoder
	nextID int64
}

// Dial connects to a server address. Addresses with a slash (or the
// explicit "unix:" prefix) are unix socket paths; everything else is TCP
// host:port.
func Dial(addr string) (*Client, error) {
	network, target := SplitAddr(addr)
	conn, err := net.DialTimeout(network, target, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s %s: %w", network, target, err)
	}
	dec := json.NewDecoder(conn)
	dec.UseNumber()
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: dec}, nil
}

// SplitAddr classifies a server address into a dial network and target:
// "unix:" prefixes and paths containing a slash are unix sockets, the rest
// TCP.
func SplitAddr(addr string) (network, target string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.Contains(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Close closes the connection (the server retires the session).
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its response. A response with
// ok=false is returned as-is, not as an error — callers inspect
// Response.OK/Error/Code.
func (c *Client) Do(req Request) (*Response, error) {
	c.nextID++
	req.ID = c.nextID
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("serve: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("serve: receive: %w", err)
	}
	return &resp, nil
}

// Hello announces the session's tenant.
func (c *Client) Hello(tenant string) (*Response, error) {
	return c.Do(Request{Op: "hello", Tenant: tenant})
}

// Query runs one SQL statement. args binds positional parameters, named
// binds :name parameters; pass nil for whichever the statement doesn't use.
func (c *Client) Query(sqlText string, args []any, named map[string]any) (*Response, error) {
	return c.Do(Request{Op: "query", SQL: sqlText, Args: args, Named: named})
}

// Exec runs a DDL/DML statement (local writes, CREATE/REFRESH/DROP
// MATERIALIZED VIEW).
func (c *Client) Exec(sqlText string) (*Response, error) {
	return c.Do(Request{Op: "exec", SQL: sqlText})
}

// Views lists the session's materialized views and their freshness state.
func (c *Client) Views() ([]core.ViewInfo, error) {
	resp, err := c.Do(Request{Op: "views"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("serve: views: %s", resp.Error)
	}
	return resp.Views, nil
}

// Explain returns the rendered plan without executing.
func (c *Client) Explain(sqlText string) (*Response, error) {
	return c.Do(Request{Op: "explain", SQL: sqlText})
}

// Stats fetches the server-wide counters.
func (c *Client) Stats() (*Stats, error) {
	resp, err := c.Do(Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("serve: stats: %s", resp.Error)
	}
	return resp.Stats, nil
}
