package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"llmsql/internal/core"
	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/world"
)

func testWorld() *world.World {
	return world.Generate(world.Config{Seed: 7, Countries: 30, Movies: 15, Laureates: 10, Companies: 10})
}

// servingConfig is the property-test workload shape: the key-then-attr hot
// path with voting, sampling and both fan-out axes live.
func servingConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Strategy = core.StrategyKeyThenAttr
	cfg.Votes = 2
	cfg.MaxRounds = 3
	cfg.Temperature = 0.7
	cfg.Parallelism = 2
	cfg.BatchSize = 2
	return cfg
}

// renderRows serializes rows byte-exactly for comparison.
func renderRows(rows []rel.Row) string {
	var b strings.Builder
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.SQLLiteral())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// startServer serves the group on a unix socket in a test dir and returns
// the socket address plus the server (for stats and shutdown).
func startServer(t *testing.T, g *core.EngineGroup, cfg Config) (string, *Server) {
	t.Helper()
	cfg.Group = g
	srv := NewServer(cfg)
	sock := filepath.Join(t.TempDir(), "llmsql.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return sock, srv
}

// TestServePropertyCoalescedSessionsReproduceSoloRun is the tentpole
// property: K concurrent sessions issuing the same query through the server
// produce rows, Usage and per-session ScanStats byte-identical to a solo
// engine run, while the backend sees exactly one live fan-out. The solo run
// is recorded and the server replays the trace, so any extra or altered
// request the serving path issued would fail loudly as a replay miss.
func TestServePropertyCoalescedSessionsReproduceSoloRun(t *testing.T) {
	w := testWorld()
	const query = "SELECT name, capital, population FROM country"

	// Solo reference run, recording the base-model traffic.
	trace := llm.NewTrace()
	soloCfg := servingConfig()
	soloCfg.RecordTrace = trace
	solo, err := core.Open(llm.NewSynthLM(w, llm.ProfileMedium, 7), soloCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range w.DomainNames() {
		solo.RegisterWorldDomain(w.Domain(name))
	}
	soloRes, err := solo.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Len() == 0 {
		t.Fatal("recording captured nothing")
	}
	// Round-trip the fixture through disk like the checked-in ones do.
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := trace.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := llm.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}

	// The served runs replay the recorded traffic.
	grpCfg := servingConfig()
	grpCfg.ReplayTrace = loaded
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), grpCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, name := range w.DomainNames() {
		g.RegisterWorldDomain(w.Domain(name))
	}
	addr, srv := startServer(t, g, Config{})

	const K = 4
	responses := make([]*Response, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			if _, err := c.Hello("t" + string(rune('a'+i))); err != nil {
				t.Error(err)
				return
			}
			resp, err := c.Query(query, nil, nil)
			if err != nil {
				t.Error(err)
				return
			}
			responses[i] = resp
		}(i)
	}
	wg.Wait()

	soloRows := renderRows(soloRes.Result.Rows)
	soloPrompts := 0
	for _, s := range soloRes.Scans {
		soloPrompts += s.Prompts
	}
	totalCoalesced := 0
	for i, resp := range responses {
		if resp == nil {
			t.Fatalf("session %d got no response", i)
		}
		if !resp.OK {
			t.Fatalf("session %d failed: %s (%s)", i, resp.Error, resp.Code)
		}
		res, err := DecodeRows(resp.Columns, resp.Types, resp.Rows)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if got := renderRows(res.Rows); got != soloRows {
			t.Fatalf("session %d rows differ from solo run", i)
		}
		if !reflect.DeepEqual(*resp.Usage, soloRes.Usage) {
			t.Fatalf("session %d usage differs:\n  got  %+v\n  want %+v", i, *resp.Usage, soloRes.Usage)
		}
		scans := make([]core.ScanStats, len(resp.Scans))
		copy(scans, resp.Scans)
		for j := range scans {
			totalCoalesced += scans[j].CoalescedHits
			scans[j].CoalescedHits = 0
		}
		if !reflect.DeepEqual(scans, soloRes.Scans) {
			t.Fatalf("session %d scans differ:\n  got  %+v\n  want %+v", i, scans, soloRes.Scans)
		}
	}
	// Exactly one fan-out reached the backend; every other consumed call
	// was coalesced.
	stats := srv.Stats()
	if got, want := stats.Group.Coalescer.LiveCalls, soloRes.Usage.Calls; got != want {
		t.Fatalf("live calls = %d, want one fan-out = %d", got, want)
	}
	if want := (K - 1) * soloPrompts; totalCoalesced != want {
		t.Fatalf("coalesced consumed calls = %d, want %d", totalCoalesced, want)
	}
	if got, want := stats.Group.Billed.Calls, K*soloRes.Usage.Calls; got != want {
		t.Fatalf("billed calls = %d, want %d", got, want)
	}
	if got, want := stats.Group.Live.TotalTokens(), soloRes.Usage.TotalTokens(); got != want {
		t.Fatalf("live tokens = %d, want solo %d", got, want)
	}
	if stats.Queries != K || stats.TotalSessions != K {
		t.Fatalf("server stats: %+v", stats)
	}
}

func TestServePreparedStatementsAndNamedDefaults(t *testing.T) {
	w := testWorld()
	cfg := servingConfig()
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.RegisterWorldDomain(w.Domain("country"))
	addr, _ := startServer(t, g, Config{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Prepared statement with positional parameters.
	prep, err := c.Do(Request{Op: "prepare", SQL: "SELECT name FROM country WHERE population > $1"})
	if err != nil || !prep.OK {
		t.Fatalf("prepare: %+v err=%v", prep, err)
	}
	r1, err := c.Do(Request{Op: "stmt", Stmt: prep.Stmt, Args: []any{int64(20)}})
	if err != nil || !r1.OK {
		t.Fatalf("stmt: %+v err=%v", r1, err)
	}
	direct, err := c.Query("SELECT name FROM country WHERE population > 20", nil, nil)
	if err != nil || !direct.OK {
		t.Fatalf("query: %+v err=%v", direct, err)
	}
	if !reflect.DeepEqual(r1.Rows, direct.Rows) {
		t.Fatal("prepared rows differ from direct query")
	}

	// Session named-parameter defaults: set once, use implicitly.
	if resp, err := c.Do(Request{Op: "set", Named: map[string]any{"minpop": 20}}); err != nil || !resp.OK {
		t.Fatalf("set: %+v err=%v", resp, err)
	}
	r2, err := c.Query("SELECT name FROM country WHERE population > :minpop", nil, nil)
	if err != nil || !r2.OK {
		t.Fatalf("named default: %+v err=%v", r2, err)
	}
	if !reflect.DeepEqual(r2.Rows, direct.Rows) {
		t.Fatal("default-bound rows differ")
	}
	// Explicit named bindings win over defaults; statements without params
	// are not polluted by stored defaults.
	r3, err := c.Query("SELECT name FROM country WHERE population > :minpop", nil, map[string]any{"minpop": 1000000})
	if err != nil || !r3.OK {
		t.Fatalf("named override: %+v err=%v", r3, err)
	}
	if len(r3.Rows) != 0 {
		t.Fatalf("override ignored: got %d rows", len(r3.Rows))
	}
	if resp, err := c.Query("SELECT name FROM country LIMIT 1", nil, nil); err != nil || !resp.OK {
		t.Fatalf("param-less query with defaults set: %+v err=%v", resp, err)
	}
	// Unset removes the default.
	if resp, err := c.Do(Request{Op: "set", Named: map[string]any{"minpop": nil}}); err != nil || !resp.OK {
		t.Fatalf("unset: %+v err=%v", resp, err)
	}
	r4, err := c.Query("SELECT name FROM country WHERE population > :minpop", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r4.OK || !strings.Contains(r4.Error, "parameter") {
		t.Fatalf("expected parameter-binding error, got %+v", r4)
	}

	// close_stmt invalidates the handle.
	if resp, err := c.Do(Request{Op: "close_stmt", Stmt: prep.Stmt}); err != nil || !resp.OK {
		t.Fatalf("close_stmt: %+v err=%v", resp, err)
	}
	if resp, err := c.Do(Request{Op: "stmt", Stmt: prep.Stmt, Args: []any{int64(1)}}); err != nil || resp.OK {
		t.Fatalf("closed stmt must fail: %+v err=%v", resp, err)
	}
}

func TestServeExecVisibleAcrossSessions(t *testing.T) {
	w := testWorld()
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), servingConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	addr, _ := startServer(t, g, Config{})

	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if resp, err := a.Exec("CREATE TABLE note (id INT PRIMARY KEY, body TEXT)"); err != nil || !resp.OK {
		t.Fatalf("create: %+v err=%v", resp, err)
	}
	if resp, err := a.Exec("INSERT INTO note VALUES (1, 'hello')"); err != nil || !resp.OK {
		t.Fatalf("insert: %+v err=%v", resp, err)
	}
	resp, err := b.Query("SELECT body FROM note", nil, nil)
	if err != nil || !resp.OK {
		t.Fatalf("cross-session read: %+v err=%v", resp, err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][0] != "hello" {
		t.Fatalf("rows: %+v", resp.Rows)
	}
}

func TestServeTokenBudgetRejectsAndIsObservable(t *testing.T) {
	w := testWorld()
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), servingConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.RegisterWorldDomain(w.Domain("country"))
	addr, srv := startServer(t, g, Config{Admission: AdmissionConfig{TenantTokens: 1}})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("smalltenant"); err != nil {
		t.Fatal(err)
	}
	// First query is admitted (the budget is checked, not reserved) and its
	// billed tokens exhaust the budget.
	first, err := c.Query("SELECT name FROM country LIMIT 1", nil, nil)
	if err != nil || !first.OK {
		t.Fatalf("first query: %+v err=%v", first, err)
	}
	second, err := c.Query("SELECT name FROM country LIMIT 1", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second.OK || second.Code != CodeBudget {
		t.Fatalf("expected budget rejection, got %+v", second)
	}
	stats := srv.Stats()
	ts := stats.Admission.Tenants["smalltenant"]
	if stats.Admission.Budget != 1 || ts.Rejected != 1 || ts.TokensUsed < 1 {
		t.Fatalf("admission stats: %+v", stats.Admission)
	}
}

func TestAdmissionConcurrencyAndQueue(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 50 * time.Millisecond})
	rel1, err := a.Acquire("t")
	if err != nil {
		t.Fatal(err)
	}
	// Slot taken, queue empty: a second acquire waits and times out.
	if _, err := a.Acquire("t"); err == nil {
		t.Fatal("expected queue-timeout")
	} else if rej := err.(*RejectError); rej.Code != CodeQueueTimeout {
		t.Fatalf("code = %s", rej.Code)
	}
	// Fill the queue, then the next arrival bounces immediately.
	done := make(chan error, 1)
	go func() {
		r, err := a.Acquire("t")
		if err == nil {
			r(0)
		}
		done <- err
	}()
	for {
		if a.Stats().Waiting == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire("t"); err == nil {
		t.Fatal("expected queue-full")
	} else if rej := err.(*RejectError); rej.Code != CodeQueueFull {
		t.Fatalf("code = %s", rej.Code)
	}
	rel1(0) // frees the slot for the queued waiter
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	s := a.Stats()
	if s.Admitted != 2 || s.QueueFull != 1 || s.QueueTimeout != 1 || s.Rejected != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestAdmissionTenantConcurrency(t *testing.T) {
	a := NewAdmission(AdmissionConfig{TenantConcurrent: 1})
	rel1, err := a.Acquire("t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire("t1"); err == nil {
		t.Fatal("expected tenant-concurrency rejection")
	} else if rej := err.(*RejectError); rej.Code != CodeTenantConcurrency {
		t.Fatalf("code = %s", rej.Code)
	}
	// Other tenants are unaffected.
	rel2, err := a.Acquire("t2")
	if err != nil {
		t.Fatal(err)
	}
	rel2(0)
	rel1(0)
	if rel3, err := a.Acquire("t1"); err != nil {
		t.Fatal(err)
	} else {
		rel3(0)
	}
}

func TestServeIdleTimeoutClosesSession(t *testing.T) {
	w := testWorld()
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), servingConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	addr, srv := startServer(t, g, Config{IdleTimeout: 50 * time.Millisecond})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Do(Request{Op: "ping"}); err != nil || !resp.OK {
		t.Fatalf("ping: %+v err=%v", resp, err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Sessions != 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session not reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Do(Request{Op: "ping"}); err == nil {
		t.Fatal("connection should be closed after idle timeout")
	}
}

func TestServeGracefulShutdownDrains(t *testing.T) {
	w := testWorld()
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), servingConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	cfg := Config{Group: g}
	srv := NewServer(cfg)
	sock := filepath.Join(t.TempDir(), "llmsql.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Do(Request{Op: "ping"}); err != nil || !resp.OK {
		t.Fatalf("ping: %+v err=%v", resp, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	// The idle session was closed and new connections are refused.
	if _, err := c.Do(Request{Op: "ping"}); err == nil {
		t.Fatal("drained connection should be closed")
	}
	if _, err := Dial(sock); err == nil {
		t.Fatal("dial after shutdown should fail")
	}
}

func TestProtocolValueRoundTrip(t *testing.T) {
	schema := rel.NewSchema(
		rel.Column{Name: "b", Type: rel.TypeBool},
		rel.Column{Name: "i", Type: rel.TypeInt},
		rel.Column{Name: "f", Type: rel.TypeFloat},
		rel.Column{Name: "t", Type: rel.TypeText},
	)
	rows := []rel.Row{
		{rel.Bool(true), rel.Int(9007199254740993), rel.Float(0.1), rel.Text("héllo|x")},
		{rel.Null(), rel.NullOf(rel.TypeInt), rel.NullOf(rel.TypeFloat), rel.NullOf(rel.TypeText)},
	}
	res := &exec.Result{Schema: schema, Rows: rows}
	cols, types, wire := EncodeRows(res)

	// Round-trip through real JSON, like the wire does. The big int is
	// beyond float64 precision and the float has no exact binary form, so
	// this catches any lossy re-encoding.
	var resp Response
	raw, err := json.Marshal(&Response{OK: true, Columns: cols, Types: types, Rows: wire})
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRows(resp.Columns, resp.Types, resp.Rows)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(got.Rows) != renderRows(rows) {
		t.Fatalf("round trip changed rows:\n%s\nvs\n%s", renderRows(got.Rows), renderRows(rows))
	}
	if got.Schema.String() != schema.String() {
		t.Fatalf("schema: %s vs %s", got.Schema.String(), schema.String())
	}
}

// TestServeDrainingRejectionCode pins the machine-readable shutdown
// rejection: a request that slips into the drain window — decoded after
// Shutdown marked the session closing but before its connection closed —
// is answered with ok=false and Code "draining", so clients can tell an
// orderly shutdown from a dropped link and reconnect elsewhere instead of
// retrying the same connection. The window is inherently a race, so the
// test holds it open deterministically: marking the session in-flight
// keeps drain() from closing the idle connection, exactly as if a request
// were being handled when shutdown began.
func TestServeDrainingRejectionCode(t *testing.T) {
	w := testWorld()
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), servingConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	addr, srv := startServer(t, g, Config{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Do(Request{Op: "ping"}); err != nil || !resp.OK {
		t.Fatalf("ping: %+v err=%v", resp, err)
	}

	srv.mu.Lock()
	if len(srv.sessions) != 1 {
		srv.mu.Unlock()
		t.Fatalf("sessions = %d, want 1", len(srv.sessions))
	}
	var sess *session
	for s := range srv.sessions {
		sess = s
	}
	srv.mu.Unlock()

	// Hold the drain window open, then start the shutdown and wait until
	// drain() has marked the session closing (it leaves the connection up
	// because of the in-flight request).
	sess.mu.Lock()
	sess.inFlight = true
	sess.mu.Unlock()
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sess.mu.Lock()
		closing := sess.closing
		sess.mu.Unlock()
		if closing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never marked the session closing")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := c.Do(Request{Op: "ping"})
	if err != nil {
		t.Fatalf("request in the drain window must still get a response: %v", err)
	}
	if resp.OK {
		t.Fatalf("request in the drain window succeeded: %+v", resp)
	}
	if resp.Code != CodeDraining {
		t.Fatalf("rejection code = %q, want %q", resp.Code, CodeDraining)
	}
	if resp.ID != 2 {
		t.Fatalf("draining response lost its request ID: %+v", resp)
	}
	// The rejection is terminal for this connection, and the shutdown
	// completes once the session retires.
	if _, err := c.Do(Request{Op: "ping"}); err == nil {
		t.Fatal("connection must close after the draining rejection")
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeViewLifecycleAndBudgetCharging drives the materialized-view
// surface over the wire: exec builds the view (and its model spend is
// charged to the tenant), warm reads cost zero tokens, the views op reports
// freshness, and an all-warm refresh charges nothing.
func TestServeViewLifecycleAndBudgetCharging(t *testing.T) {
	w := testWorld()
	g, err := core.NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), servingConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.RegisterWorldDomain(w.Domain("country"))
	addr, srv := startServer(t, g, Config{})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("viewtenant"); err != nil {
		t.Fatal(err)
	}
	build, err := c.Exec("CREATE MATERIALIZED VIEW top AS SELECT name, capital FROM country")
	if err != nil || !build.OK {
		t.Fatalf("create view: %+v err=%v", build, err)
	}
	if build.Usage == nil || build.Usage.TotalTokens() == 0 {
		t.Fatalf("view build reported no usage: %+v", build.Usage)
	}
	read, err := c.Query("SELECT name FROM top", nil, nil)
	if err != nil || !read.OK {
		t.Fatalf("view read: %+v err=%v", read, err)
	}
	if read.Usage.Calls != 0 {
		t.Fatalf("warm view read cost %d calls", read.Usage.Calls)
	}
	if len(read.Scans) != 1 || read.Scans[0].Materialized != "top" {
		t.Fatalf("scan stats: %+v", read.Scans)
	}
	views, err := c.Views()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 || views[0].Name != "top" || views[0].Stale || views[0].Rows == 0 {
		t.Fatalf("views: %+v", views)
	}
	// No persistent cache in this stack, but the in-session plan and the
	// deterministic synth model make the refresh re-ask everything live:
	// usage must be charged again, and the view must stay servable.
	refresh, err := c.Exec("REFRESH MATERIALIZED VIEW top")
	if err != nil || !refresh.OK {
		t.Fatalf("refresh: %+v err=%v", refresh, err)
	}
	drop, err := c.Exec("DROP MATERIALIZED VIEW top")
	if err != nil || !drop.OK {
		t.Fatalf("drop: %+v err=%v", drop, err)
	}
	if resp, err := c.Query("SELECT name FROM top", nil, nil); err != nil || resp.OK {
		t.Fatalf("dropped view still served: %+v err=%v", resp, err)
	}
	ts := srv.Stats().Admission.Tenants["viewtenant"]
	if ts.TokensUsed < build.Usage.TotalTokens() {
		t.Fatalf("tenant charged %d tokens, build alone cost %d", ts.TokensUsed, build.Usage.TotalTokens())
	}
	gs := g.Stats()
	if gs.Views.Created != 1 || gs.Views.WarmReads != 1 || gs.Views.Refreshes != 1 {
		t.Fatalf("group view stats: %+v", gs.Views)
	}
}
