package serve

import (
	"fmt"
	"sync"
	"time"
)

// Admission rejection codes, returned in Response.Code so clients can
// distinguish backpressure (retry later) from exhausted budgets (don't).
const (
	// CodeQueueFull: the global concurrency limit is reached and the wait
	// queue is at capacity.
	CodeQueueFull = "queue-full"
	// CodeQueueTimeout: the query waited QueueTimeout without a slot.
	CodeQueueTimeout = "queue-timeout"
	// CodeTenantConcurrency: the tenant is already running its maximum
	// number of concurrent queries.
	CodeTenantConcurrency = "tenant-concurrency"
	// CodeBudget: the tenant has consumed its token budget.
	CodeBudget = "budget"
	// CodeDraining: the server is shutting down and the session will close
	// after this response. Clients should reconnect elsewhere; unlike the
	// backpressure codes, retrying on this connection cannot succeed.
	CodeDraining = "draining"
)

// RejectError is an admission-control rejection; Code is one of the Code*
// constants above.
type RejectError struct {
	Code string
	Msg  string
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("serve: admission rejected (%s): %s", e.Code, e.Msg)
}

// AdmissionConfig bounds what the server lets run. The zero value admits
// everything.
type AdmissionConfig struct {
	// MaxConcurrent caps queries running at once across all sessions
	// (0 = unlimited).
	MaxConcurrent int
	// MaxQueue caps queries waiting for a global slot; arrivals beyond it
	// are rejected immediately with CodeQueueFull (meaningful only with
	// MaxConcurrent > 0).
	MaxQueue int
	// QueueTimeout bounds how long a queued query waits for a slot before a
	// CodeQueueTimeout rejection (0 selects DefaultQueueTimeout).
	QueueTimeout time.Duration
	// TenantConcurrent caps concurrently running queries per tenant
	// (0 = unlimited). Tenant limits never queue: exceeding them is an
	// immediate CodeTenantConcurrency rejection, pushing backpressure to
	// the offending tenant without holding global slots.
	TenantConcurrent int
	// TenantTokens is the per-tenant token budget (prompt + completion,
	// billed — coalesced and cached calls charge what a solo run would).
	// A tenant at or past its budget is rejected with CodeBudget;
	// 0 = unlimited.
	TenantTokens int
}

// DefaultQueueTimeout is the wait bound selected by QueueTimeout == 0.
const DefaultQueueTimeout = 5 * time.Second

// AdmissionStats reports admission outcomes since server start.
type AdmissionStats struct {
	// Admitted counts queries that got a slot; Rejected sums the four
	// rejection counters below.
	Admitted          int `json:"admitted"`
	Rejected          int `json:"rejected"`
	QueueFull         int `json:"queue_full"`
	QueueTimeout      int `json:"queue_timeout"`
	TenantConcurrency int `json:"tenant_concurrency"`
	Budget            int `json:"budget"`
	// Waiting is the current queue depth; Running the queries holding
	// slots.
	Waiting int `json:"waiting"`
	Running int `json:"running"`
	// Tenants reports per-tenant consumption, keyed by tenant name (the
	// default tenant appears as "default").
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's admission ledger.
type TenantStats struct {
	// Admitted and Rejected count this tenant's outcomes.
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	// TokensUsed is the billed token consumption charged against the
	// budget; TokenBudget echoes the configured limit (0 = unlimited).
	TokensUsed  int `json:"tokens_used"`
	TokenBudget int `json:"token_budget"`
}

// Admission enforces an AdmissionConfig. All methods are safe for
// concurrent use.
type Admission struct {
	cfg AdmissionConfig
	sem chan struct{} // nil when MaxConcurrent == 0

	mu      sync.Mutex
	waiting int
	running int
	stats   AdmissionStats
	tenants map[string]*tenantState
}

type tenantState struct {
	running  int
	tokens   int
	admitted int
	rejected int
}

// NewAdmission builds an admission controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = DefaultQueueTimeout
	}
	a := &Admission{cfg: cfg, tenants: make(map[string]*tenantState)}
	if cfg.MaxConcurrent > 0 {
		a.sem = make(chan struct{}, cfg.MaxConcurrent)
	}
	return a
}

// Acquire asks for a query slot on behalf of tenant. On admission it
// returns a release function the caller must invoke exactly once when the
// query finishes, passing the billed tokens it consumed (charged against
// the tenant's budget). On rejection it returns a *RejectError.
func (a *Admission) Acquire(tenant string) (release func(tokens int), err error) {
	if tenant == "" {
		tenant = "default"
	}
	a.mu.Lock()
	t := a.tenants[tenant]
	if t == nil {
		t = &tenantState{}
		a.tenants[tenant] = t
	}
	reject := func(code, msg string, counter *int) (func(int), error) {
		*counter++
		a.stats.Rejected++
		t.rejected++
		a.mu.Unlock()
		return nil, &RejectError{Code: code, Msg: msg}
	}
	if a.cfg.TenantTokens > 0 && t.tokens >= a.cfg.TenantTokens {
		return reject(CodeBudget,
			fmt.Sprintf("tenant %q consumed %d of %d budget tokens", tenant, t.tokens, a.cfg.TenantTokens),
			&a.stats.Budget)
	}
	if a.cfg.TenantConcurrent > 0 && t.running >= a.cfg.TenantConcurrent {
		return reject(CodeTenantConcurrency,
			fmt.Sprintf("tenant %q already runs %d concurrent queries", tenant, t.running),
			&a.stats.TenantConcurrency)
	}
	if a.sem != nil {
		select {
		case a.sem <- struct{}{}:
			// Fast path: a slot is free.
		default:
			if a.waiting >= a.cfg.MaxQueue {
				return reject(CodeQueueFull,
					fmt.Sprintf("%d running, %d waiting", a.running, a.waiting),
					&a.stats.QueueFull)
			}
			a.waiting++
			a.mu.Unlock()
			timer := time.NewTimer(a.cfg.QueueTimeout)
			select {
			case a.sem <- struct{}{}:
				timer.Stop()
				a.mu.Lock()
				a.waiting--
			case <-timer.C:
				a.mu.Lock()
				a.waiting--
				return reject(CodeQueueTimeout,
					fmt.Sprintf("no slot within %s", a.cfg.QueueTimeout),
					&a.stats.QueueTimeout)
			}
		}
	}
	t.running++
	t.admitted++
	a.running++
	a.stats.Admitted++
	a.mu.Unlock()
	return func(tokens int) {
		a.mu.Lock()
		t.running--
		t.tokens += tokens
		a.running--
		a.mu.Unlock()
		if a.sem != nil {
			<-a.sem
		}
	}, nil
}

// Stats returns a snapshot of the counters.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.Waiting = a.waiting
	s.Running = a.running
	if len(a.tenants) > 0 {
		s.Tenants = make(map[string]TenantStats, len(a.tenants))
		for name, t := range a.tenants {
			s.Tenants[name] = TenantStats{
				Admitted:    t.admitted,
				Rejected:    t.rejected,
				TokensUsed:  t.tokens,
				TokenBudget: a.cfg.TenantTokens,
			}
		}
	}
	return s
}
