// Package serve implements the long-lived serving layer over the core
// engine: a newline-delimited JSON protocol spoken over TCP or unix
// sockets, per-connection sessions with prepared statements and named
// parameter state, admission control with per-tenant concurrency and token
// budgets, and graceful drain. Each connection gets its own engine from a
// core.EngineGroup, so concurrent sessions scanning the same virtual tables
// coalesce their identical prompts into one live fan-out (see
// llm.Coalescer) while every session is billed and answered exactly as a
// solo run would be.
package serve

import (
	"encoding/json"
	"fmt"
	"strings"

	"llmsql/internal/core"
	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
)

// Request is one client-to-server message: a single JSON object on its own
// line. Op selects the action; the other fields are op-specific.
type Request struct {
	// ID is an opaque client correlation token echoed on the response.
	ID int64 `json:"id,omitempty"`
	// Op is one of: hello, query, exec, explain, prepare, stmt, close_stmt,
	// set, stats, views, ping. exec also carries the materialized-view
	// lifecycle (CREATE/REFRESH/DROP MATERIALIZED VIEW); views lists the
	// session's materialized views and their freshness state.
	Op string `json:"op"`
	// SQL carries the statement for query/exec/explain/prepare.
	SQL string `json:"sql,omitempty"`
	// Args binds positional parameters ($1/?) in order. JSON numbers become
	// INT when integral, FLOAT otherwise.
	Args []any `json:"args,omitempty"`
	// Named binds :name parameters, and is the payload of the set op (a
	// null value unsets the session default of that name).
	Named map[string]any `json:"named,omitempty"`
	// Stmt addresses a prepared statement (stmt/close_stmt).
	Stmt int64 `json:"stmt,omitempty"`
	// Tenant identifies the budget/concurrency bucket (hello only; empty
	// selects the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Analyze makes query/stmt return the EXPLAIN ANALYZE plan too.
	Analyze bool `json:"analyze,omitempty"`
}

// Response is one server-to-client message, one JSON object per line.
type Response struct {
	// ID echoes the request's correlation token.
	ID int64 `json:"id,omitempty"`
	// OK reports success; on failure Error describes it and Code classifies
	// it (admission rejections use the RejectError codes, everything else
	// "error").
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
	// Columns/Types/Rows carry a query result (Types uses rel.DataType
	// spellings: BOOL, INT, FLOAT, TEXT).
	Columns []string `json:"columns,omitempty"`
	Types   []string `json:"types,omitempty"`
	Rows    [][]any  `json:"rows,omitempty"`
	// Plan is the rendered plan (explain, or query/stmt with Analyze).
	Plan string `json:"plan,omitempty"`
	// Usage and Scans report the query's billed consumption, exactly as a
	// solo engine would report them. exec responses carry Usage too (a view
	// build or refresh spends model tokens; plain local DDL reports zeros).
	Usage *llm.Usage       `json:"usage,omitempty"`
	Scans []core.ScanStats `json:"scans,omitempty"`
	// Views lists the session's materialized views (views op).
	Views []core.ViewInfo `json:"views,omitempty"`
	// Stmt returns the prepared-statement handle (prepare).
	Stmt int64 `json:"stmt,omitempty"`
	// Session returns the server-assigned session id (hello).
	Session int64 `json:"session,omitempty"`
	// Stats is the server-wide counter snapshot (stats).
	Stats *Stats `json:"stats,omitempty"`
}

// EncodeRows flattens a result into the wire shape: column names, type
// spellings and one []any per row (nil for NULL, bool, int64, float64 or
// string otherwise — all round-trip exactly through JSON).
func EncodeRows(res *exec.Result) (cols []string, types []string, rows [][]any) {
	cols = res.Schema.Names()
	types = make([]string, res.Schema.Len())
	for i := 0; i < res.Schema.Len(); i++ {
		types[i] = res.Schema.Col(i).Type.String()
	}
	rows = make([][]any, len(res.Rows))
	for ri, row := range res.Rows {
		out := make([]any, len(row))
		for ci, v := range row {
			out[ci] = encodeValue(v)
		}
		rows[ri] = out
	}
	return cols, types, rows
}

func encodeValue(v rel.Value) any {
	if v.IsNull() {
		return nil
	}
	switch v.Type() {
	case rel.TypeBool:
		return v.AsBool()
	case rel.TypeInt:
		return v.AsInt()
	case rel.TypeFloat:
		return v.AsFloat()
	default:
		return v.AsText()
	}
}

// DecodeRows rebuilds a materialized result from the wire shape (the
// client-side inverse of EncodeRows). Numbers must have been decoded with
// json.Decoder.UseNumber for INT columns to round-trip exactly.
func DecodeRows(cols, types []string, rows [][]any) (*exec.Result, error) {
	if len(cols) != len(types) {
		return nil, fmt.Errorf("serve: %d columns but %d types", len(cols), len(types))
	}
	schemaCols := make([]rel.Column, len(cols))
	for i := range cols {
		t, err := typeFromString(types[i])
		if err != nil {
			return nil, err
		}
		schemaCols[i] = rel.Column{Name: cols[i], Type: t}
	}
	res := &exec.Result{Schema: rel.NewSchema(schemaCols...)}
	for ri, raw := range rows {
		if len(raw) != len(cols) {
			return nil, fmt.Errorf("serve: row %d has %d values, want %d", ri, len(raw), len(cols))
		}
		row := make(rel.Row, len(raw))
		for ci, cell := range raw {
			v, err := decodeValue(schemaCols[ci].Type, cell)
			if err != nil {
				return nil, fmt.Errorf("serve: row %d column %s: %w", ri, cols[ci], err)
			}
			row[ci] = v
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func typeFromString(s string) (rel.DataType, error) {
	switch strings.ToUpper(s) {
	case "BOOL":
		return rel.TypeBool, nil
	case "INT":
		return rel.TypeInt, nil
	case "FLOAT":
		return rel.TypeFloat, nil
	case "TEXT":
		return rel.TypeText, nil
	default:
		return rel.TypeUnknown, fmt.Errorf("serve: unknown column type %q", s)
	}
}

func decodeValue(t rel.DataType, cell any) (rel.Value, error) {
	if cell == nil {
		return rel.NullOf(t), nil
	}
	switch t {
	case rel.TypeBool:
		b, ok := cell.(bool)
		if !ok {
			return rel.Value{}, fmt.Errorf("not a bool: %v", cell)
		}
		return rel.Bool(b), nil
	case rel.TypeInt:
		switch n := cell.(type) {
		case json.Number:
			i, err := n.Int64()
			if err != nil {
				return rel.Value{}, err
			}
			return rel.Int(i), nil
		case float64:
			return rel.Int(int64(n)), nil
		}
		return rel.Value{}, fmt.Errorf("not an int: %v", cell)
	case rel.TypeFloat:
		switch n := cell.(type) {
		case json.Number:
			f, err := n.Float64()
			if err != nil {
				return rel.Value{}, err
			}
			return rel.Float(f), nil
		case float64:
			return rel.Float(n), nil
		}
		return rel.Value{}, fmt.Errorf("not a float: %v", cell)
	default:
		s, ok := cell.(string)
		if !ok {
			return rel.Value{}, fmt.Errorf("not text: %v", cell)
		}
		return rel.Text(s), nil
	}
}

// convertArg maps one wire argument onto a Go value the engine's binding
// layer accepts: JSON numbers become int64 when integral and float64
// otherwise; bool, string and nil pass through.
func convertArg(raw any) (any, error) {
	switch v := raw.(type) {
	case nil, bool, string, int64, float64:
		return v, nil
	case json.Number:
		if i, err := v.Int64(); err == nil {
			return i, nil
		}
		f, err := v.Float64()
		if err != nil {
			return nil, fmt.Errorf("serve: bad numeric argument %q", v.String())
		}
		return f, nil
	default:
		return nil, fmt.Errorf("serve: unsupported argument type %T", raw)
	}
}

// convertArgs converts a positional argument list.
func convertArgs(raw []any) ([]any, error) {
	out := make([]any, len(raw))
	for i, r := range raw {
		v, err := convertArg(r)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
