package sql

import (
	"fmt"
	"sort"

	"llmsql/internal/rel"
)

// Bindings maps parameter placeholders to concrete values for one execution
// of a statement. Positional bindings serve $n and auto-numbered ? params;
// named bindings serve :name params. A statement uses exactly one style
// (enforced by the parser), so at most one of the two sets is consulted.
type Bindings struct {
	pos   []rel.Value
	named map[string]rel.Value
}

// NewPositional builds bindings for $1..$n from args in order.
func NewPositional(args []rel.Value) *Bindings { return &Bindings{pos: args} }

// NewNamed builds bindings for :name params. Keys are lower-cased to match
// the parser's normalization.
func NewNamed(args map[string]rel.Value) *Bindings {
	m := make(map[string]rel.Value, len(args))
	for k, v := range args {
		m[toLowerASCII(k)] = v
	}
	return &Bindings{named: m}
}

func toLowerASCII(s string) string {
	lower := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			lower = false
			break
		}
	}
	if lower {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}

// Resolve returns the value bound to p.
func (b *Bindings) Resolve(p *Param) (rel.Value, error) {
	if b == nil {
		return rel.Value{}, fmt.Errorf("sql: unbound parameter %s", p)
	}
	if p.Name != "" {
		v, ok := b.named[p.Name]
		if !ok {
			return rel.Value{}, fmt.Errorf("sql: unbound parameter :%s", p.Name)
		}
		return v, nil
	}
	if p.Ordinal < 1 || p.Ordinal > len(b.pos) {
		return rel.Value{}, fmt.Errorf("sql: unbound parameter $%d (%d argument(s) supplied)", p.Ordinal, len(b.pos))
	}
	return b.pos[p.Ordinal-1], nil
}

// CollectParams returns every parameter placeholder in the statement, in
// visit order (including inside subqueries).
func CollectParams(s Statement) []*Param {
	var out []*Param
	WalkStmtExprs(s, func(e Expr) bool {
		if p, ok := e.(*Param); ok {
			out = append(out, p)
		}
		return true
	})
	return out
}

// HasParams reports whether e contains a parameter placeholder.
func HasParams(e Expr) bool {
	found := false
	walkExprDeep(e, func(x Expr) bool {
		if _, ok := x.(*Param); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// StmtHasParams reports whether any expression in s contains a parameter.
func StmtHasParams(s Statement) bool {
	found := false
	WalkStmtExprs(s, func(e Expr) bool {
		if _, ok := e.(*Param); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// ValidateBindings checks that the supplied bindings match the statement's
// parameters exactly: every placeholder is bound, and no argument is unused.
// positional is the number of positional arguments supplied (ignored when
// the statement uses named parameters), names the supplied named set.
func ValidateBindings(s Statement, positional int, names map[string]rel.Value) error {
	params := CollectParams(s)
	if len(params) == 0 {
		if positional > 0 || len(names) > 0 {
			return fmt.Errorf("sql: statement has no parameters but %d argument(s) supplied", positional+len(names))
		}
		return nil
	}
	if params[0].Name != "" {
		used := map[string]bool{}
		for _, p := range params {
			if _, ok := names[p.Name]; !ok {
				return fmt.Errorf("sql: unbound parameter :%s", p.Name)
			}
			used[p.Name] = true
		}
		var extra []string
		for k := range names {
			if !used[toLowerASCII(k)] {
				extra = append(extra, k)
			}
		}
		if len(extra) > 0 {
			sort.Strings(extra)
			return fmt.Errorf("sql: extra named argument %q (statement has no :%s)", extra[0], extra[0])
		}
		if positional > 0 {
			return fmt.Errorf("sql: statement uses named parameters; bind them by name")
		}
		return nil
	}
	// Positional: the ordinal set must be exactly 1..positional.
	seen := map[int]bool{}
	max := 0
	for _, p := range params {
		seen[p.Ordinal] = true
		if p.Ordinal > max {
			max = p.Ordinal
		}
	}
	if len(names) > 0 {
		return fmt.Errorf("sql: statement uses positional parameters; bind them by position")
	}
	if max > positional {
		return fmt.Errorf("sql: unbound parameter $%d (%d argument(s) supplied)", max, positional)
	}
	if positional > max {
		return fmt.Errorf("sql: %d argument(s) supplied but statement has only $1..$%d", positional, max)
	}
	for i := 1; i <= max; i++ {
		if !seen[i] {
			return fmt.Errorf("sql: argument %d is unused (statement skips $%d)", i, i)
		}
	}
	return nil
}

// BindExpr substitutes every parameter in e with its bound value as a typed
// literal, returning a new tree (copy-on-write: subtrees without parameters
// are shared, and a param-free e is returned unchanged).
func BindExpr(e Expr, b *Bindings) (Expr, error) {
	if e == nil || !HasParams(e) {
		return e, nil
	}
	return bindExpr(e, b)
}

func bindExpr(e Expr, b *Bindings) (Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Param:
		v, err := b.Resolve(x)
		if err != nil {
			return nil, err
		}
		return &Literal{Value: v}, nil
	case *Literal, *ColumnRef:
		return e, nil
	case *BinaryExpr:
		l, err := bindExpr(x.Left, b)
		if err != nil {
			return nil, err
		}
		r, err := bindExpr(x.Right, b)
		if err != nil {
			return nil, err
		}
		if l == x.Left && r == x.Right {
			return x, nil
		}
		return &BinaryExpr{Op: x.Op, Left: l, Right: r}, nil
	case *UnaryExpr:
		c, err := bindExpr(x.X, b)
		if err != nil {
			return nil, err
		}
		if c == x.X {
			return x, nil
		}
		return &UnaryExpr{Op: x.Op, X: c}, nil
	case *FuncCall:
		args, changed, err := bindExprs(x.Args, b)
		if err != nil {
			return nil, err
		}
		if !changed {
			return x, nil
		}
		return &FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}, nil
	case *IsNullExpr:
		c, err := bindExpr(x.X, b)
		if err != nil {
			return nil, err
		}
		if c == x.X {
			return x, nil
		}
		return &IsNullExpr{X: c, Not: x.Not}, nil
	case *InExpr:
		c, err := bindExpr(x.X, b)
		if err != nil {
			return nil, err
		}
		list, changed, err := bindExprs(x.List, b)
		if err != nil {
			return nil, err
		}
		sub, err := BindSelect(x.Subquery, b)
		if err != nil {
			return nil, err
		}
		if c == x.X && !changed && sub == x.Subquery {
			return x, nil
		}
		return &InExpr{X: c, List: list, Subquery: sub, Not: x.Not}, nil
	case *BetweenExpr:
		c, err := bindExpr(x.X, b)
		if err != nil {
			return nil, err
		}
		lo, err := bindExpr(x.Lo, b)
		if err != nil {
			return nil, err
		}
		hi, err := bindExpr(x.Hi, b)
		if err != nil {
			return nil, err
		}
		if c == x.X && lo == x.Lo && hi == x.Hi {
			return x, nil
		}
		return &BetweenExpr{X: c, Lo: lo, Hi: hi, Not: x.Not}, nil
	case *LikeExpr:
		c, err := bindExpr(x.X, b)
		if err != nil {
			return nil, err
		}
		pat, err := bindExpr(x.Pattern, b)
		if err != nil {
			return nil, err
		}
		if c == x.X && pat == x.Pattern {
			return x, nil
		}
		return &LikeExpr{X: c, Pattern: pat, Not: x.Not}, nil
	case *CaseExpr:
		op, err := bindExpr(x.Operand, b)
		if err != nil {
			return nil, err
		}
		els, err := bindExpr(x.Else, b)
		if err != nil {
			return nil, err
		}
		whens := make([]WhenClause, len(x.Whens))
		changed := op != x.Operand || els != x.Else
		for i, w := range x.Whens {
			cond, err := bindExpr(w.Cond, b)
			if err != nil {
				return nil, err
			}
			then, err := bindExpr(w.Then, b)
			if err != nil {
				return nil, err
			}
			if cond != w.Cond || then != w.Then {
				changed = true
			}
			whens[i] = WhenClause{Cond: cond, Then: then}
		}
		if !changed {
			return x, nil
		}
		return &CaseExpr{Operand: op, Whens: whens, Else: els}, nil
	case *CastExpr:
		c, err := bindExpr(x.X, b)
		if err != nil {
			return nil, err
		}
		if c == x.X {
			return x, nil
		}
		return &CastExpr{X: c, Type: x.Type}, nil
	default:
		return nil, fmt.Errorf("sql: cannot bind parameters in %T", e)
	}
}

func bindExprs(list []Expr, b *Bindings) ([]Expr, bool, error) {
	changed := false
	out := make([]Expr, len(list))
	for i, e := range list {
		c, err := bindExpr(e, b)
		if err != nil {
			return nil, false, err
		}
		if c != e {
			changed = true
		}
		out[i] = c
	}
	if !changed {
		return list, false, nil
	}
	return out, true, nil
}

// BindSelect substitutes parameters throughout a SELECT statement,
// returning a new statement that shares every parameter-free subtree with
// the original (copy-on-write, like BindExpr). Plan-level binding
// (plan.Bind) is the execution path — it reaches expressions after the
// optimizer has moved them into plan nodes — so this AST-level binder
// serves IN (SELECT ...) subqueries during plan binding, plus tests and
// tools that rewrite statements before planning.
func BindSelect(s *SelectStmt, b *Bindings) (*SelectStmt, error) {
	if s == nil || !stmtHasParamsSelect(s) {
		return s, nil
	}
	out := *s
	out.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		e, err := bindExpr(it.Expr, b)
		if err != nil {
			return nil, err
		}
		out.Items[i] = SelectItem{Star: it.Star, StarTable: it.StarTable, Expr: e, Alias: it.Alias}
	}
	var err error
	if out.From, err = bindTable(s.From, b); err != nil {
		return nil, err
	}
	if out.Where, err = bindExpr(s.Where, b); err != nil {
		return nil, err
	}
	if len(s.GroupBy) > 0 {
		if out.GroupBy, _, err = bindExprs(s.GroupBy, b); err != nil {
			return nil, err
		}
	}
	if out.Having, err = bindExpr(s.Having, b); err != nil {
		return nil, err
	}
	if len(s.OrderBy) > 0 {
		out.OrderBy = make([]OrderItem, len(s.OrderBy))
		for i, o := range s.OrderBy {
			e, err := bindExpr(o.Expr, b)
			if err != nil {
				return nil, err
			}
			out.OrderBy[i] = OrderItem{Expr: e, Desc: o.Desc}
		}
	}
	if out.Limit, err = bindExpr(s.Limit, b); err != nil {
		return nil, err
	}
	if out.Offset, err = bindExpr(s.Offset, b); err != nil {
		return nil, err
	}
	return &out, nil
}

// bindTable substitutes params inside FROM items (join ON clauses, derived
// tables).
func bindTable(t TableExpr, b *Bindings) (TableExpr, error) {
	switch tt := t.(type) {
	case *JoinExpr:
		l, err := bindTable(tt.Left, b)
		if err != nil {
			return nil, err
		}
		r, err := bindTable(tt.Right, b)
		if err != nil {
			return nil, err
		}
		on, err := bindExpr(tt.On, b)
		if err != nil {
			return nil, err
		}
		if l == tt.Left && r == tt.Right && on == tt.On {
			return tt, nil
		}
		return &JoinExpr{Type: tt.Type, Left: l, Right: r, On: on}, nil
	case *SubqueryRef:
		s2, err := BindSelect(tt.Select, b)
		if err != nil {
			return nil, err
		}
		if s2 == tt.Select {
			return tt, nil
		}
		return &SubqueryRef{Select: s2, Alias: tt.Alias}, nil
	default:
		return t, nil
	}
}

func stmtHasParamsSelect(s *SelectStmt) bool {
	found := false
	walkSelectExprs(s, func(e Expr) bool {
		if _, ok := e.(*Param); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
