package sql

import (
	"math/rand"
	"reflect"
	"testing"

	"llmsql/internal/rel"
)

// genExpr builds a random expression tree of bounded depth. It exercises
// every AST node type the deparser must round-trip.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return genLeaf(rng)
	}
	switch rng.Intn(10) {
	case 0:
		return &BinaryExpr{
			Op:    []BinaryOp{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpConcat}[rng.Intn(6)],
			Left:  genExpr(rng, depth-1),
			Right: genExpr(rng, depth-1),
		}
	case 1:
		return &BinaryExpr{
			Op:    []BinaryOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[rng.Intn(6)],
			Left:  genExpr(rng, depth-1),
			Right: genExpr(rng, depth-1),
		}
	case 2:
		return &BinaryExpr{
			Op:    []BinaryOp{OpAnd, OpOr}[rng.Intn(2)],
			Left:  genExpr(rng, depth-1),
			Right: genExpr(rng, depth-1),
		}
	case 3:
		return &UnaryExpr{Op: "NOT", X: genExpr(rng, depth-1)}
	case 4:
		n := 1 + rng.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = genExpr(rng, depth-1)
		}
		names := []string{"COALESCE", "CONCAT", "UPPER", "LENGTH"}
		name := names[rng.Intn(len(names))]
		if name == "UPPER" || name == "LENGTH" {
			args = args[:1]
		}
		return &FuncCall{Name: name, Args: args}
	case 5:
		return &IsNullExpr{X: genExpr(rng, depth-1), Not: rng.Intn(2) == 0}
	case 6:
		n := 1 + rng.Intn(3)
		list := make([]Expr, n)
		for i := range list {
			list[i] = genLeaf(rng)
		}
		return &InExpr{X: genExpr(rng, depth-1), List: list, Not: rng.Intn(2) == 0}
	case 7:
		return &BetweenExpr{
			X:   genExpr(rng, depth-1),
			Lo:  genLeaf(rng),
			Hi:  genLeaf(rng),
			Not: rng.Intn(2) == 0,
		}
	case 8:
		c := &CaseExpr{}
		if rng.Intn(2) == 0 {
			c.Operand = genLeaf(rng)
		}
		for i := 0; i <= rng.Intn(2); i++ {
			c.Whens = append(c.Whens, WhenClause{Cond: genExpr(rng, depth-1), Then: genLeaf(rng)})
		}
		if rng.Intn(2) == 0 {
			c.Else = genLeaf(rng)
		}
		return c
	default:
		types := []rel.DataType{rel.TypeInt, rel.TypeFloat, rel.TypeText, rel.TypeBool}
		return &CastExpr{X: genExpr(rng, depth-1), Type: types[rng.Intn(len(types))]}
	}
}

func genLeaf(rng *rand.Rand) Expr {
	switch rng.Intn(8) {
	case 6:
		// Positional parameters ($n only: the parser rejects mixed styles,
		// so a generator drawing styles independently would trip on its own
		// output, not on a deparse bug).
		return &Param{Ordinal: 1 + rng.Intn(3)}
	case 7:
		// Column names that force quoting: spaces, reserved words, embedded
		// double quotes. Lowercase, since the parser canonicalizes case.
		names := []string{"weird name", "select", "group", `o"brien`, "from", "9lives"}
		return &ColumnRef{Name: names[rng.Intn(len(names))]}
	case 0:
		return &Literal{Value: rel.Int(int64(rng.Intn(2000) - 1000))}
	case 1:
		return &Literal{Value: rel.Float(float64(rng.Intn(1000)) / 4)}
	case 2:
		// Strings including quote characters to stress escaping.
		strs := []string{"x", "it's", "a|b", "", "percent%under_score", "O''Brien"}
		return &Literal{Value: rel.Text(strs[rng.Intn(len(strs))])}
	case 3:
		return &Literal{Value: rel.Null()}
	case 4:
		cols := []string{"a", "b", "population", "name"}
		tables := []string{"", "", "t", "c"}
		return &ColumnRef{Table: tables[rng.Intn(len(tables))], Name: cols[rng.Intn(len(cols))]}
	default:
		return &Literal{Value: rel.Bool(rng.Intn(2) == 0)}
	}
}

// TestFuzzExprRoundTrip: parse(Deparse(e)) == e for thousands of random
// expression trees. This pins the deparser's precedence/parenthesisation
// and the parser together.
func TestFuzzExprRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for i := 0; i < 3000; i++ {
		e := genExpr(rng, 3)
		text := Deparse(e)
		back, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("iteration %d: reparse of %q failed: %v\noriginal: %#v", i, text, err, e)
		}
		// Compare via a second deparse: the text form is the canonical
		// equality witness (AST equality would be confounded by literal
		// folding of negative numbers).
		if again := Deparse(back); again != text {
			t.Fatalf("iteration %d: round trip unstable:\n first: %s\nsecond: %s", i, text, again)
		}
	}
}

// TestFuzzExprASTRoundTrip additionally checks structural equality for the
// subset of trees that cannot be altered by parser-side normalisation
// (no unary minus folding involved since genExpr never emits it).
func TestFuzzExprASTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for i := 0; i < 1500; i++ {
		e := genExpr(rng, 2)
		text := Deparse(e)
		back, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("iteration %d: %v (%q)", i, err, text)
		}
		if !reflect.DeepEqual(e, back) {
			t.Fatalf("iteration %d: AST changed:\ntext: %s\n in: %#v\nout: %#v", i, text, e, back)
		}
	}
}

// TestFuzzSelectRoundTrip assembles random (valid) SELECT statements and
// round-trips them through the deparser.
func TestFuzzSelectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 800; i++ {
		sel := &SelectStmt{}
		nItems := 1 + rng.Intn(3)
		for j := 0; j < nItems; j++ {
			item := SelectItem{Expr: genExpr(rng, 2)}
			if rng.Intn(3) == 0 {
				item.Alias = "alias" + string(rune('a'+j))
			}
			sel.Items = append(sel.Items, item)
		}
		sel.From = &TableRef{Name: "t"}
		if rng.Intn(2) == 0 {
			sel.Where = genExpr(rng, 2)
		}
		if rng.Intn(3) == 0 {
			sel.OrderBy = append(sel.OrderBy, OrderItem{Expr: genLeaf(rng), Desc: rng.Intn(2) == 0})
		}
		text := DeparseStmt(sel)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, text)
		}
		if again := DeparseStmt(back); again != text {
			t.Fatalf("iteration %d: unstable:\n first: %s\nsecond: %s", i, text, again)
		}
	}
}
