package sql

import (
	"fmt"
	"strconv"
	"strings"

	"llmsql/internal/rel"
)

// Parser is a recursive-descent parser pulling tokens from the lexer on
// demand through a small fixed lookahead buffer (the grammar needs at most
// three tokens of lookahead, for "t.*" projections).
type Parser struct {
	lx  Lexer
	buf [3]Token
	n   int // buffered lookahead tokens
	// lexErr records the first lexer error; from then on the stream is a
	// synthesized EOF at eofTok and the error surfaces when the parser
	// reaches it.
	lexErr error
	eofTok Token
	// Parameter bookkeeping: `?` placeholders are auto-numbered in textual
	// order, and the three styles must not be mixed in one statement.
	qCount                   int
	sawQ, sawDollar, sawName bool
}

// newParser returns a parser over src.
func newParser(src string) *Parser {
	p := &Parser{}
	p.lx.Reset(src)
	return p
}

// Parse parses a single SQL statement (trailing semicolon optional).
func Parse(src string) (Statement, error) {
	p := newParser(src)
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

// ParseExpr parses a standalone scalar expression (used by tests and tools).
func ParseExpr(src string) (Expr, error) {
	p := newParser(src)
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEnd(); err != nil {
		return nil, err
	}
	return e, nil
}

// ---- token helpers ----

// fill buffers tokens until index i is available. After a lexer error the
// stream continues with synthesized EOF tokens at the error position.
func (p *Parser) fill(i int) {
	for p.n <= i {
		if p.lexErr != nil {
			p.buf[p.n] = p.eofTok
			p.n++
			continue
		}
		t, err := p.lx.Next()
		if err != nil {
			p.lexErr = err
			p.eofTok = Token{
				Kind: TokEOF,
				Pos:  p.lx.pos,
				Line: p.lx.line,
				Col:  p.lx.pos - p.lx.lineStart + 1,
			}
			continue
		}
		p.buf[p.n] = t
		p.n++
	}
}

func (p *Parser) peek() Token {
	p.fill(0)
	return p.buf[0]
}

// peekAt returns the i-th lookahead token (0 = next).
func (p *Parser) peekAt(i int) Token {
	p.fill(i)
	return p.buf[i]
}

func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *Parser) advance() Token {
	t := p.peek()
	if t.Kind != TokEOF {
		copy(p.buf[:], p.buf[1:p.n])
		p.n--
	}
	return t
}

// expectEnd verifies the statement consumed the whole input, surfacing a
// pending lexer error hidden behind the synthesized EOF.
func (p *Parser) expectEnd() error {
	if !p.atEOF() {
		return p.errorf("unexpected trailing input %q", p.peek().String())
	}
	if p.lexErr != nil {
		return p.lexErr
	}
	return nil
}

// errorf formats a parse error at the current token's line:column. When the
// parser is stuck on the EOF a lexer error synthesized, the lexer error (at
// the same position) is the real diagnosis and wins.
func (p *Parser) errorf(format string, args ...any) error {
	t := p.peek()
	if t.Kind == TokEOF && p.lexErr != nil {
		return p.lexErr
	}
	return fmt.Errorf("sql: parse error at %d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

// peekKeyword reports whether the next token is the given keyword (bare
// identifiers only — quoted identifiers never match keywords).
func (p *Parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && KeywordEq(t.Text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().String())
	}
	return nil
}

func (p *Parser) peekSymbol(sym string) bool {
	t := p.peek()
	return t.Kind == TokSymbol && t.Text == sym
}

func (p *Parser) acceptSymbol(sym string) bool {
	if p.peekSymbol(sym) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %q", sym, p.peek().String())
	}
	return nil
}

// reservedAfterTable lists keywords that terminate alias positions: an
// unquoted identifier in alias position must not be one of these.
var reservedAfterTable = map[string]bool{
	"WHERE": true, "GROUP": true, "HAVING": true, "ORDER": true, "LIMIT": true,
	"OFFSET": true, "JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true,
	"CROSS": true, "ON": true, "AS": true, "UNION": true, "FROM": true,
	"AND": true, "OR": true, "NOT": true, "SELECT": true, "SET": true,
	"DESC": true, "ASC": true, "BY": true, "OUTER": true, "FULL": true,
	"VALUES": true,
}

// isReserved reports whether t is a bare identifier spelling a reserved
// word. Quoted identifiers are never reserved.
func isReserved(t Token) bool {
	return t.Kind == TokIdent && lookupKeyword(reservedAfterTable, t.Text)
}

// isIdentTok reports whether t can serve as an identifier.
func isIdentTok(t Token) bool {
	return t.Kind == TokIdent || t.Kind == TokQuotedIdent
}

func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	if !isIdentTok(t) {
		return "", p.errorf("expected identifier, found %q", t.String())
	}
	p.advance()
	return t.Text, nil
}

// ---- statements ----

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKeyword("SELECT"):
		return p.parseSelect()
	case p.peekKeyword("CREATE"):
		if t := p.peekAt(1); t.Kind == TokIdent && KeywordEq(t.Text, "MATERIALIZED") {
			return p.parseCreateView()
		}
		return p.parseCreateTable()
	case p.peekKeyword("REFRESH"):
		p.advance()
		name, err := p.parseViewName()
		if err != nil {
			return nil, err
		}
		return &RefreshViewStmt{Name: name}, nil
	case p.peekKeyword("DROP"):
		p.advance()
		name, err := p.parseViewName()
		if err != nil {
			return nil, err
		}
		return &DropViewStmt{Name: name}, nil
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("EXPLAIN"):
		p.advance()
		analyze := p.acceptKeyword("ANALYZE")
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: sel, Analyze: analyze}, nil
	default:
		return nil, p.errorf("expected SELECT, CREATE, INSERT, REFRESH, DROP or EXPLAIN, found %q", p.peek().String())
	}
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}

	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}

	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}

	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}

	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// "*"
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// "t.*"
	if isIdentTok(p.peek()) &&
		p.peekAt(1).Kind == TokSymbol && p.peekAt(1).Text == "." &&
		p.peekAt(2).Kind == TokSymbol && p.peekAt(2).Text == "*" {
		tbl := p.advance().Text
		p.advance() // .
		p.advance() // *
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); isIdentTok(t) && !isReserved(t) {
		p.advance()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *Parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol(","):
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Type: JoinCross, Left: left, Right: right}
		case p.peekKeyword("JOIN") || p.peekKeyword("INNER") || p.peekKeyword("LEFT") || p.peekKeyword("CROSS"):
			jt := JoinInner
			if p.acceptKeyword("LEFT") {
				p.acceptKeyword("OUTER")
				jt = JoinLeft
			} else if p.acceptKeyword("CROSS") {
				jt = JoinCross
			} else {
				p.acceptKeyword("INNER")
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			join := &JoinExpr{Type: jt, Left: left, Right: right}
			if jt != JoinCross {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				join.On = on
			}
			left = join
		default:
			return left, nil
		}
	}
}

func (p *Parser) parseTablePrimary() (TableExpr, error) {
	if p.acceptSymbol("(") {
		if p.peekKeyword("SELECT") {
			sel, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			alias, err := p.parseAlias(true)
			if err != nil {
				return nil, err
			}
			return &SubqueryRef{Select: sel, Alias: alias}, nil
		}
		// Parenthesised join expression.
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	alias, err := p.parseAlias(false)
	if err != nil {
		return nil, err
	}
	return &TableRef{Name: strings.ToLower(name), Alias: strings.ToLower(alias)}, nil
}

// parseAlias parses an optional [AS] alias; required=true makes it mandatory
// (derived tables must be named).
func (p *Parser) parseAlias(required bool) (string, error) {
	if p.acceptKeyword("AS") {
		a, err := p.parseIdent()
		return strings.ToLower(a), err
	}
	if t := p.peek(); isIdentTok(t) && !isReserved(t) {
		p.advance()
		return strings.ToLower(t.Text), nil
	}
	if required {
		return "", p.errorf("derived table requires an alias")
	}
	return "", nil
}

func (p *Parser) parseCreateTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: strings.ToLower(name)}
	for {
		colName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typeName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		dt, err := rel.ParseDataType(typeName)
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		def := ColumnDef{Name: strings.ToLower(colName), Type: dt}
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			def.PrimaryKey = true
		}
		stmt.Columns = append(stmt.Columns, def)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

// parseCreateView parses CREATE MATERIALIZED VIEW name AS SELECT ...
// (CREATE has been peeked, not consumed).
func (p *Parser) parseCreateView() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("MATERIALIZED"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VIEW"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateViewStmt{Name: strings.ToLower(name), Select: sel}, nil
}

// parseViewName parses the "MATERIALIZED VIEW name" tail shared by REFRESH
// and DROP (the verb has already been consumed).
func (p *Parser) parseViewName() (string, error) {
	if err := p.expectKeyword("MATERIALIZED"); err != nil {
		return "", err
	}
	if err := p.expectKeyword("VIEW"); err != nil {
		return "", err
	}
	name, err := p.parseIdent()
	if err != nil {
		return "", err
	}
	return strings.ToLower(name), nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: strings.ToLower(name)}
	if p.acceptSymbol("(") {
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, strings.ToLower(col))
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return stmt, nil
}

// ---- expressions (precedence climbing) ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates: IS [NOT] NULL, [NOT] IN, [NOT] BETWEEN, [NOT] LIKE.
	for {
		switch {
		case p.peekKeyword("IS"):
			p.advance()
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{X: left, Not: not}
		case p.peekKeyword("NOT") && p.lookaheadPostfix():
			p.advance()
			switch {
			case p.peekKeyword("IN"):
				e, err := p.parseIn(left, true)
				if err != nil {
					return nil, err
				}
				left = e
			case p.peekKeyword("BETWEEN"):
				e, err := p.parseBetween(left, true)
				if err != nil {
					return nil, err
				}
				left = e
			case p.peekKeyword("LIKE"):
				e, err := p.parseLike(left, true)
				if err != nil {
					return nil, err
				}
				left = e
			default:
				return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
			}
		case p.peekKeyword("IN"):
			e, err := p.parseIn(left, false)
			if err != nil {
				return nil, err
			}
			left = e
		case p.peekKeyword("BETWEEN"):
			e, err := p.parseBetween(left, false)
			if err != nil {
				return nil, err
			}
			left = e
		case p.peekKeyword("LIKE"):
			e, err := p.parseLike(left, false)
			if err != nil {
				return nil, err
			}
			left = e
		default:
			// Binary comparison operators.
			op, ok := p.peekComparisonOp()
			if !ok {
				return left, nil
			}
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: op, Left: left, Right: right}
		}
	}
}

// lookaheadPostfix reports whether the token after NOT begins a postfix
// predicate (IN/BETWEEN/LIKE), distinguishing "a NOT IN ..." from boolean
// "x AND NOT y".
func (p *Parser) lookaheadPostfix() bool {
	t := p.peekAt(1)
	return t.Kind == TokIdent &&
		(KeywordEq(t.Text, "IN") || KeywordEq(t.Text, "BETWEEN") || KeywordEq(t.Text, "LIKE"))
}

func (p *Parser) peekComparisonOp() (BinaryOp, bool) {
	t := p.peek()
	if t.Kind != TokSymbol {
		return 0, false
	}
	switch t.Text {
	case "=":
		return OpEq, true
	case "<>", "!=":
		return OpNe, true
	case "<":
		return OpLt, true
	case "<=":
		return OpLe, true
	case ">":
		return OpGt, true
	case ">=":
		return OpGe, true
	}
	return 0, false
}

func (p *Parser) parseIn(left Expr, not bool) (Expr, error) {
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	in := &InExpr{X: left, Not: not}
	if p.peekKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		in.Subquery = sel
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) parseBetween(left Expr, not bool) (Expr, error) {
	if err := p.expectKeyword("BETWEEN"); err != nil {
		return nil, err
	}
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
}

func (p *Parser) parseLike(left Expr, not bool) (Expr, error) {
	if err := p.expectKeyword("LIKE"); err != nil {
		return nil, err
	}
	pat, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &LikeExpr{X: left, Pattern: pat, Not: not}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.peekSymbol("+"):
			op = OpAdd
		case p.peekSymbol("-"):
			op = OpSub
		case p.peekSymbol("||"):
			op = OpConcat
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinaryOp
		switch {
		case p.peekSymbol("*"):
			op = OpMul
		case p.peekSymbol("/"):
			op = OpDiv
		case p.peekSymbol("%"):
			op = OpMod
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative literals immediately so "-5" is a literal.
		if lit, ok := x.(*Literal); ok && lit.Value.Type().Numeric() {
			if lit.Value.Type() == rel.TypeInt {
				return &Literal{Value: rel.Int(-lit.Value.AsInt())}, nil
			}
			return &Literal{Value: rel.Float(-lit.Value.AsFloat())}, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Value: rel.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			// Overflowing integers degrade to float.
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Value: rel.Float(f)}, nil
		}
		return &Literal{Value: rel.Int(n)}, nil

	case TokString:
		p.advance()
		return &Literal{Value: rel.Text(t.Text)}, nil

	case TokParam:
		return p.parseParam()

	case TokSymbol:
		if t.Text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %q", t.Text)

	case TokQuotedIdent:
		// Quoted identifiers are always names, never keywords or function
		// calls.
		p.advance()
		if p.acceptSymbol(".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: strings.ToLower(t.Text), Name: strings.ToLower(col)}, nil
		}
		return &ColumnRef{Name: strings.ToLower(t.Text)}, nil

	case TokIdent:
		switch {
		case KeywordEq(t.Text, "NULL"):
			p.advance()
			return &Literal{Value: rel.Null()}, nil
		case KeywordEq(t.Text, "TRUE"):
			p.advance()
			return &Literal{Value: rel.Bool(true)}, nil
		case KeywordEq(t.Text, "FALSE"):
			p.advance()
			return &Literal{Value: rel.Bool(false)}, nil
		case KeywordEq(t.Text, "CASE"):
			return p.parseCase()
		case KeywordEq(t.Text, "CAST"):
			return p.parseCast()
		}
		// Reject bare keywords as column refs or function names. The set
		// mirrors deparseIdent's quoting: anything deparse would quote must
		// not parse bare, or quoted spellings could not round-trip.
		if isReserved(t) || lookupKeyword(deparseReserved, t.Text) {
			return nil, p.errorf("unexpected keyword %q in expression", t.Text)
		}
		p.advance()
		// Function call?
		if p.peekSymbol("(") {
			return p.parseFuncCall(t)
		}
		// Qualified column?
		if p.acceptSymbol(".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: strings.ToLower(t.Text), Name: strings.ToLower(col)}, nil
		}
		return &ColumnRef{Name: strings.ToLower(t.Text)}, nil
	}
	return nil, p.errorf("unexpected token %q", t.String())
}

// parseParam consumes a TokParam and resolves its style. `?` placeholders
// are numbered in textual order; mixing styles in one statement is an error
// (the binding would be ambiguous).
func (p *Parser) parseParam() (Expr, error) {
	t := p.peek()
	switch t.Text[0] {
	case '?':
		if p.sawDollar || p.sawName {
			return nil, p.errorf("cannot mix ? with $n or :name parameters")
		}
		p.advance()
		p.sawQ = true
		p.qCount++
		return &Param{Ordinal: p.qCount}, nil
	case '$':
		if p.sawQ || p.sawName {
			return nil, p.errorf("cannot mix $n with ? or :name parameters")
		}
		n, err := strconv.Atoi(t.Text[1:])
		if err != nil || n < 1 {
			return nil, p.errorf("bad parameter ordinal %q", t.Text)
		}
		p.advance()
		p.sawDollar = true
		return &Param{Ordinal: n}, nil
	default: // ':'
		if p.sawQ || p.sawDollar {
			return nil, p.errorf("cannot mix :name with ? or $n parameters")
		}
		p.advance()
		p.sawName = true
		return &Param{Name: strings.ToLower(t.Text[1:])}, nil
	}
}

func (p *Parser) parseFuncCall(name Token) (Expr, error) {
	p.advance() // (
	f := &FuncCall{Name: strings.ToUpper(name.Text)}
	if p.acceptSymbol("*") {
		f.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptSymbol(")") {
		return f, nil
	}
	if p.acceptKeyword("DISTINCT") {
		f.Distinct = true
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *Parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	if !p.peekKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN clause")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCast() (Expr, error) {
	if err := p.expectKeyword("CAST"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	typeName, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	dt, err := rel.ParseDataType(typeName)
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CastExpr{X: x, Type: dt}, nil
}
