package sql

import "testing"

// Native go-fuzz targets (run by the CI fuzz-smoke job with
// `go test -fuzz=FuzzX -fuzztime=30s`; without -fuzz they execute the seed
// corpus as regular tests). The randomized round-trip tests in
// fuzz_test.go generate *valid* inputs; these targets feed the parsers
// arbitrary bytes, pinning two properties: no panics on any input, and a
// stable Deparse/reparse round trip whenever parsing succeeds.

func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"a + b * 3",
		"population > 50 AND continent = 'Europe'",
		"x IN (1, 2, 3)",
		"name LIKE 'A%' OR year BETWEEN 1990 AND 2000",
		"CASE WHEN a IS NULL THEN 0 ELSE -a END",
		"CAST(x AS INT) = ((1))",
		"NOT (a <= b) <> (c >= d)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := ParseExpr(input)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		text := Deparse(e)
		back, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("deparse of accepted input does not reparse: %q -> %q: %v", input, text, err)
		}
		if again := Deparse(back); again != text {
			t.Fatalf("round trip unstable: %q -> %q -> %q", input, text, again)
		}
	})
}

func FuzzParseSelect(f *testing.F) {
	for _, seed := range []string{
		"SELECT 1",
		"SELECT name, capital FROM country WHERE population > 50 ORDER BY name LIMIT 5",
		"SELECT m.title, c.continent FROM movie m JOIN country c ON m.country = c.name",
		"SELECT continent, COUNT(*) FROM country GROUP BY continent HAVING COUNT(*) > 2",
		"SELECT DISTINCT genre FROM movie WHERE year IN (SELECT year FROM movie)",
		"SELECT * FROM t LEFT JOIN u ON t.a = u.b OFFSET 3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sel, err := ParseSelect(input)
		if err != nil {
			return
		}
		text := DeparseStmt(sel)
		back, err := ParseSelect(text)
		if err != nil {
			t.Fatalf("deparse of accepted input does not reparse: %q -> %q: %v", input, text, err)
		}
		if again := DeparseStmt(back); again != text {
			t.Fatalf("round trip unstable: %q -> %q -> %q", input, text, again)
		}
	})
}
