package sql

import (
	"testing"

	"llmsql/internal/rel"
)

// Native go-fuzz targets (run by the CI fuzz-smoke job with
// `go test -fuzz=FuzzX -fuzztime=30s`; without -fuzz they execute the seed
// corpus as regular tests). The randomized round-trip tests in
// fuzz_test.go generate *valid* inputs; these targets feed the parsers
// arbitrary bytes, pinning two properties: no panics on any input, and a
// stable Deparse/reparse round trip whenever parsing succeeds.

func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"a + b * 3",
		"population > 50 AND continent = 'Europe'",
		"x IN (1, 2, 3)",
		"name LIKE 'A%' OR year BETWEEN 1990 AND 2000",
		"CASE WHEN a IS NULL THEN 0 ELSE -a END",
		"CAST(x AS INT) = ((1))",
		"NOT (a <= b) <> (c >= d)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := ParseExpr(input)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		text := Deparse(e)
		back, err := ParseExpr(text)
		if err != nil {
			t.Fatalf("deparse of accepted input does not reparse: %q -> %q: %v", input, text, err)
		}
		if again := Deparse(back); again != text {
			t.Fatalf("round trip unstable: %q -> %q -> %q", input, text, again)
		}
	})
}

func FuzzParseSelect(f *testing.F) {
	for _, seed := range []string{
		"SELECT 1",
		"SELECT name, capital FROM country WHERE population > 50 ORDER BY name LIMIT 5",
		"SELECT m.title, c.continent FROM movie m JOIN country c ON m.country = c.name",
		"SELECT continent, COUNT(*) FROM country GROUP BY continent HAVING COUNT(*) > 2",
		"SELECT DISTINCT genre FROM movie WHERE year IN (SELECT year FROM movie)",
		"SELECT * FROM t LEFT JOIN u ON t.a = u.b OFFSET 3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sel, err := ParseSelect(input)
		if err != nil {
			return
		}
		text := DeparseStmt(sel)
		back, err := ParseSelect(text)
		if err != nil {
			t.Fatalf("deparse of accepted input does not reparse: %q -> %q: %v", input, text, err)
		}
		if again := DeparseStmt(back); again != text {
			t.Fatalf("round trip unstable: %q -> %q -> %q", input, text, again)
		}
	})
}

// FuzzParseParams stresses the parameterized front end: arbitrary inputs
// must never panic the parser, the normalizer or the binder, and any
// accepted statement must round-trip through Deparse, normalize to a
// fixed point, collect a consistent parameter set, and bind successfully
// with exactly that set.
func FuzzParseParams(f *testing.F) {
	for _, seed := range []string{
		"SELECT name FROM country WHERE population > $1",
		"SELECT name FROM country WHERE population > ? AND continent = ?",
		"SELECT name FROM country WHERE population > :min AND continent = :cont",
		"SELECT * FROM t WHERE a IN ($1, $2, $1)",
		"SELECT CASE WHEN a > :x THEN :y ELSE :x END FROM t",
		"EXPLAIN SELECT name FROM country WHERE population > $1",
		"EXPLAIN ANALYZE SELECT 1 WHERE $1 = $2",
		"SELECT \"Weird Name\" FROM \"Quoted Table\" WHERE x = $1 -- comment",
		"SELECT a FROM t WHERE b = $1 AND c IN (SELECT d FROM u WHERE e = $2)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		// Normalization of any parseable input must succeed and reach a
		// fixed point (it only lexes, so parse success implies lex success).
		norm, err := Normalize(input)
		if err != nil {
			t.Fatalf("parseable input does not normalize: %q: %v", input, err)
		}
		if norm2, err := Normalize(norm); err != nil || norm2 != norm {
			t.Fatalf("normalize not a fixed point: %q -> %q -> %q (%v)", input, norm, norm2, err)
		}
		// Deparse must reparse to an identical spelling with an identical
		// parameter set.
		text := DeparseStmt(stmt)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("deparse of accepted input does not reparse: %q -> %q: %v", input, text, err)
		}
		if again := DeparseStmt(back); again != text {
			t.Fatalf("round trip unstable: %q -> %q -> %q", input, text, again)
		}
		params := CollectParams(stmt)
		if len(params) != len(CollectParams(back)) {
			t.Fatalf("parameter set changed across round trip: %q", input)
		}
		// Binding the exact parameter set must succeed and leave no
		// placeholder behind.
		if len(params) == 0 {
			return
		}
		var b *Bindings
		if params[0].Name != "" {
			vals := map[string]rel.Value{}
			for _, p := range params {
				vals[p.Name] = rel.Int(1)
			}
			if err := ValidateBindings(stmt, 0, vals); err != nil {
				t.Fatalf("exact named bindings rejected: %q: %v", input, err)
			}
			b = NewNamed(vals)
		} else {
			max := 0
			for _, p := range params {
				if p.Ordinal > max {
					max = p.Ordinal
				}
			}
			if max > 1024 {
				// Don't materialize absurd binding sets for inputs like $1e9;
				// exact validation rejects the gap anyway.
				return
			}
			vals := make([]rel.Value, max)
			for i := range vals {
				vals[i] = rel.Int(1)
			}
			if err := ValidateBindings(stmt, len(vals), nil); err != nil {
				// Sparse ordinals ($2 without $1) legitimately fail exact
				// validation; that is the contract, not a bug.
				return
			}
			b = NewPositional(vals)
		}
		bound := mustBindStmt(t, stmt, b)
		if StmtHasParams(bound) {
			t.Fatalf("bound statement still has parameters: %q", input)
		}
	})
}

// mustBindStmt binds every expression position of a statement, failing the
// test on error.
func mustBindStmt(t *testing.T, s Statement, b *Bindings) Statement {
	t.Helper()
	switch st := s.(type) {
	case *SelectStmt:
		out, err := BindSelect(st, b)
		if err != nil {
			t.Fatalf("bind failed: %v", err)
		}
		return out
	case *ExplainStmt:
		out, err := BindSelect(st.Stmt, b)
		if err != nil {
			t.Fatalf("bind failed: %v", err)
		}
		return &ExplainStmt{Stmt: out, Analyze: st.Analyze}
	default:
		return s
	}
}
