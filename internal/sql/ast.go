package sql

import (
	"fmt"

	"llmsql/internal/rel"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface{ expr() }

// TableExpr is a FROM-clause item.
type TableExpr interface{ tableExpr() }

// ---- Statements ----

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil means a FROM-less SELECT (constant query)
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // integer literal or nil
	Offset   Expr // integer literal or nil
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	// Star is true for "*" or "t.*"; StarTable holds t when qualified.
	Star      bool
	StarTable string
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateTableStmt declares a table.
type CreateTableStmt struct {
	Name    string
	Columns []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       rel.DataType
	PrimaryKey bool
}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table   string
	Columns []string // optional; empty means positional
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// ExplainStmt wraps a SELECT for plan display. Analyze marks EXPLAIN
// ANALYZE: execute the query and annotate the plan with observed row counts.
type ExplainStmt struct {
	Stmt    *SelectStmt
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// CreateViewStmt is CREATE MATERIALIZED VIEW name AS SELECT ...: run the
// defining query once and persist its rows so later scans of the view name
// are served at row-store cost.
type CreateViewStmt struct {
	Name   string
	Select *SelectStmt
}

func (*CreateViewStmt) stmt() {}

// RefreshViewStmt is REFRESH MATERIALIZED VIEW name: re-run the defining
// query (warm prompt-cache fingerprints answer for free; only cold ones
// reach the live model) and swap in the fresh rows.
type RefreshViewStmt struct {
	Name string
}

func (*RefreshViewStmt) stmt() {}

// DropViewStmt is DROP MATERIALIZED VIEW name.
type DropViewStmt struct {
	Name string
}

func (*DropViewStmt) stmt() {}

// ---- Table expressions ----

// JoinType enumerates supported join types.
type JoinType int

const (
	// JoinInner is INNER JOIN (and the implicit comma/cross join with an ON
	// predicate supplied via WHERE).
	JoinInner JoinType = iota
	// JoinLeft is LEFT OUTER JOIN.
	JoinLeft
	// JoinCross is CROSS JOIN (no predicate).
	JoinCross
)

func (j JoinType) String() string {
	switch j {
	case JoinLeft:
		return "LEFT JOIN"
	case JoinCross:
		return "CROSS JOIN"
	default:
		return "JOIN"
	}
}

// TableRef names a base (or virtual) table, optionally aliased.
type TableRef struct {
	Name  string
	Alias string
}

func (*TableRef) tableExpr() {}

// Binding returns the name the table is known by in the query.
func (t *TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinExpr combines two table expressions.
type JoinExpr struct {
	Type  JoinType
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for CROSS JOIN
}

func (*JoinExpr) tableExpr() {}

// SubqueryRef is a derived table: (SELECT ...) AS alias.
type SubqueryRef struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryRef) tableExpr() {}

// ---- Expressions ----

// BinaryOp enumerates binary operators.
type BinaryOp int

const (
	// OpOr etc. follow SQL spelling; see String.
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

func (op BinaryOp) String() string {
	switch op {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		return "||"
	default:
		return "?"
	}
}

// ColumnRef references a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) expr() {}

// Literal is a constant value.
type Literal struct {
	Value rel.Value
}

func (*Literal) expr() {}

// Param is a query parameter placeholder: $n (Ordinal > 0, 1-based) or
// :name (Name set, lower-cased). `?` placeholders are auto-numbered by the
// parser, so they surface as ordinals. Params are bound to literal values
// at execution time (see BindExpr).
type Param struct {
	Ordinal int
	Name    string
}

func (*Param) expr() {}

// String renders the placeholder as it deparses.
func (p *Param) String() string {
	if p.Name != "" {
		return ":" + p.Name
	}
	return fmt.Sprintf("$%d", p.Ordinal)
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op    BinaryOp
	Left  Expr
	Right Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	// Op is "NOT" or "-".
	Op string
	X  Expr
}

func (*UnaryExpr) expr() {}

// FuncCall is a scalar or aggregate function call.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (*FuncCall) expr() {}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) expr() {}

// InExpr is "x [NOT] IN (list)" or "x [NOT] IN (SELECT ...)".
type InExpr struct {
	X        Expr
	List     []Expr
	Subquery *SelectStmt
	Not      bool
}

func (*InExpr) expr() {}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	X   Expr
	Lo  Expr
	Hi  Expr
	Not bool
}

func (*BetweenExpr) expr() {}

// LikeExpr is "x [NOT] LIKE pattern".
type LikeExpr struct {
	X       Expr
	Pattern Expr
	Not     bool
}

func (*LikeExpr) expr() {}

// WhenClause is one WHEN ... THEN ... arm of a CASE.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched or simple CASE expression.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // nil means NULL
}

func (*CaseExpr) expr() {}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	X    Expr
	Type rel.DataType
}

func (*CastExpr) expr() {}

// AggregateFuncs is the set of supported aggregate function names.
var AggregateFuncs = map[string]bool{
	"COUNT": true,
	"SUM":   true,
	"AVG":   true,
	"MIN":   true,
	"MAX":   true,
}

// ContainsAggregate reports whether e contains an aggregate function call.
func ContainsAggregate(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && AggregateFuncs[f.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// WalkExpr visits e and its children in preorder. The visitor returns false
// to prune descent.
func WalkExpr(e Expr, visit func(Expr) bool) {
	if e == nil || !visit(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.Left, visit)
		WalkExpr(x.Right, visit)
	case *UnaryExpr:
		WalkExpr(x.X, visit)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, visit)
		}
	case *IsNullExpr:
		WalkExpr(x.X, visit)
	case *InExpr:
		WalkExpr(x.X, visit)
		for _, a := range x.List {
			WalkExpr(a, visit)
		}
	case *BetweenExpr:
		WalkExpr(x.X, visit)
		WalkExpr(x.Lo, visit)
		WalkExpr(x.Hi, visit)
	case *LikeExpr:
		WalkExpr(x.X, visit)
		WalkExpr(x.Pattern, visit)
	case *CaseExpr:
		WalkExpr(x.Operand, visit)
		for _, w := range x.Whens {
			WalkExpr(w.Cond, visit)
			WalkExpr(w.Then, visit)
		}
		WalkExpr(x.Else, visit)
	case *CastExpr:
		WalkExpr(x.X, visit)
	}
}

// ColumnRefs returns every column reference in e, in visit order.
func ColumnRefs(e Expr) []*ColumnRef {
	var refs []*ColumnRef
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			refs = append(refs, c)
		}
		return true
	})
	return refs
}

// WalkStmtExprs visits every expression appearing anywhere in a statement,
// descending into subqueries (derived tables, IN (SELECT ...), join ON
// clauses). Unlike WalkExpr — which stays within one scope so callers like
// ColumnRefs see only names resolvable there — this walk is exhaustive; it
// is what parameter collection and binding build on.
func WalkStmtExprs(s Statement, visit func(Expr) bool) {
	switch st := s.(type) {
	case *SelectStmt:
		walkSelectExprs(st, visit)
	case *ExplainStmt:
		walkSelectExprs(st.Stmt, visit)
	case *CreateViewStmt:
		walkSelectExprs(st.Select, visit)
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				walkExprDeep(e, visit)
			}
		}
	}
}

func walkSelectExprs(s *SelectStmt, visit func(Expr) bool) {
	if s == nil {
		return
	}
	for _, it := range s.Items {
		walkExprDeep(it.Expr, visit)
	}
	walkTableExprs(s.From, visit)
	walkExprDeep(s.Where, visit)
	for _, g := range s.GroupBy {
		walkExprDeep(g, visit)
	}
	walkExprDeep(s.Having, visit)
	for _, o := range s.OrderBy {
		walkExprDeep(o.Expr, visit)
	}
	walkExprDeep(s.Limit, visit)
	walkExprDeep(s.Offset, visit)
}

func walkTableExprs(t TableExpr, visit func(Expr) bool) {
	switch tt := t.(type) {
	case *JoinExpr:
		walkTableExprs(tt.Left, visit)
		walkTableExprs(tt.Right, visit)
		walkExprDeep(tt.On, visit)
	case *SubqueryRef:
		walkSelectExprs(tt.Select, visit)
	}
}

// walkExprDeep is WalkExpr plus descent into IN (SELECT ...) subqueries.
func walkExprDeep(e Expr, visit func(Expr) bool) {
	WalkExpr(e, func(x Expr) bool {
		if !visit(x) {
			return false
		}
		if in, ok := x.(*InExpr); ok && in.Subquery != nil {
			walkSelectExprs(in.Subquery, visit)
		}
		return true
	})
}

// SplitConjuncts flattens a tree of ANDs into its conjunct list.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.Left), SplitConjuncts(b.Right)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds an AND tree from conjuncts (nil for empty input).
func JoinConjuncts(list []Expr) Expr {
	var out Expr
	for _, e := range list {
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: OpAnd, Left: out, Right: e}
		}
	}
	return out
}
