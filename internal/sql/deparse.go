package sql

import (
	"fmt"
	"strings"
)

// Deparse renders an expression back to SQL text. Parsing the result yields
// an equivalent AST (round-trip property tested in deparse_test.go and
// fuzzed in fuzz_targets_test.go).
func Deparse(e Expr) string {
	var b strings.Builder
	deparseExpr(&b, e)
	return b.String()
}

// deparseReserved lists words (beyond reservedAfterTable) whose bare
// spelling the expression grammar claims, so an identifier spelled like one
// must be double-quoted to re-parse as a name.
var deparseReserved = map[string]bool{
	"NULL": true, "TRUE": true, "FALSE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "CAST": true, "IS": true,
	"IN": true, "LIKE": true, "BETWEEN": true, "DISTINCT": true,
	"PRIMARY": true, "KEY": true, "EXPLAIN": true,
}

// plainIdent reports whether s lexes as a single bare identifier token.
func plainIdent(s string) bool {
	for i, r := range s {
		switch {
		case r == '_', 'a' <= r && r <= 'z', 'A' <= r && r <= 'Z':
		case i > 0 && '0' <= r && r <= '9':
		default:
			return false
		}
	}
	return s != ""
}

// deparseIdent writes an identifier, double-quoting it when its bare
// spelling would not re-lex to the same name (non-plain shapes, reserved
// words).
func deparseIdent(b *strings.Builder, name string) {
	upper := strings.ToUpper(name)
	if plainIdent(name) && !deparseReserved[upper] && !reservedAfterTable[upper] {
		b.WriteString(name)
		return
	}
	b.WriteByte('"')
	b.WriteString(strings.ReplaceAll(name, `"`, `""`))
	b.WriteByte('"')
}

// DeparseStmt renders a statement back to SQL text.
func DeparseStmt(s Statement) string {
	var b strings.Builder
	switch st := s.(type) {
	case *SelectStmt:
		deparseSelect(&b, st)
	case *CreateTableStmt:
		b.WriteString("CREATE TABLE ")
		deparseIdent(&b, st.Name)
		b.WriteString(" (")
		for i, c := range st.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			deparseIdent(&b, c.Name)
			b.WriteByte(' ')
			b.WriteString(c.Type.String())
			if c.PrimaryKey {
				b.WriteString(" PRIMARY KEY")
			}
		}
		b.WriteByte(')')
	case *InsertStmt:
		b.WriteString("INSERT INTO ")
		deparseIdent(&b, st.Table)
		if len(st.Columns) > 0 {
			b.WriteString(" (")
			for i, col := range st.Columns {
				if i > 0 {
					b.WriteString(", ")
				}
				deparseIdent(&b, col)
			}
			b.WriteByte(')')
		}
		b.WriteString(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteByte('(')
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				deparseExpr(&b, e)
			}
			b.WriteByte(')')
		}
	case *ExplainStmt:
		b.WriteString("EXPLAIN ")
		if st.Analyze {
			b.WriteString("ANALYZE ")
		}
		deparseSelect(&b, st.Stmt)
	case *CreateViewStmt:
		b.WriteString("CREATE MATERIALIZED VIEW ")
		deparseIdent(&b, st.Name)
		b.WriteString(" AS ")
		deparseSelect(&b, st.Select)
	case *RefreshViewStmt:
		b.WriteString("REFRESH MATERIALIZED VIEW ")
		deparseIdent(&b, st.Name)
	case *DropViewStmt:
		b.WriteString("DROP MATERIALIZED VIEW ")
		deparseIdent(&b, st.Name)
	}
	return b.String()
}

func deparseSelect(b *strings.Builder, s *SelectStmt) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, item := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if item.Star {
			if item.StarTable != "" {
				deparseIdent(b, item.StarTable)
				b.WriteByte('.')
			}
			b.WriteByte('*')
			continue
		}
		deparseExpr(b, item.Expr)
		if item.Alias != "" {
			b.WriteString(" AS ")
			deparseIdent(b, item.Alias)
		}
	}
	if s.From != nil {
		b.WriteString(" FROM ")
		deparseTable(b, s.From)
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		deparseExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			deparseExpr(b, e)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		deparseExpr(b, s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			deparseExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT ")
		deparseExpr(b, s.Limit)
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET ")
		deparseExpr(b, s.Offset)
	}
}

func deparseTable(b *strings.Builder, t TableExpr) {
	switch tt := t.(type) {
	case *TableRef:
		deparseIdent(b, tt.Name)
		if tt.Alias != "" && tt.Alias != tt.Name {
			b.WriteString(" AS ")
			deparseIdent(b, tt.Alias)
		}
	case *JoinExpr:
		deparseTable(b, tt.Left)
		b.WriteByte(' ')
		b.WriteString(tt.Type.String())
		b.WriteByte(' ')
		if _, nested := tt.Right.(*JoinExpr); nested {
			b.WriteByte('(')
			deparseTable(b, tt.Right)
			b.WriteByte(')')
		} else {
			deparseTable(b, tt.Right)
		}
		if tt.On != nil {
			b.WriteString(" ON ")
			deparseExpr(b, tt.On)
		}
	case *SubqueryRef:
		b.WriteByte('(')
		deparseSelect(b, tt.Select)
		b.WriteString(") AS ")
		deparseIdent(b, tt.Alias)
	}
}

func deparseExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Literal:
		b.WriteString(x.Value.SQLLiteral())
	case *Param:
		b.WriteString(x.String())
	case *ColumnRef:
		if x.Table != "" {
			deparseIdent(b, x.Table)
			b.WriteByte('.')
		}
		deparseIdent(b, x.Name)
	case *BinaryExpr:
		deparseChild(b, x.Left, precOf(x.Op), true)
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		deparseChild(b, x.Right, precOf(x.Op), false)
	case *UnaryExpr:
		if x.Op == "NOT" {
			b.WriteString("NOT ")
		} else {
			b.WriteString(x.Op)
		}
		if _, ok := x.X.(*BinaryExpr); ok {
			b.WriteByte('(')
			deparseExpr(b, x.X)
			b.WriteByte(')')
		} else {
			deparseExpr(b, x.X)
		}
	case *FuncCall:
		deparseIdent(b, x.Name)
		b.WriteByte('(')
		if x.Star {
			b.WriteByte('*')
		} else {
			if x.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				deparseExpr(b, a)
			}
		}
		b.WriteByte(')')
	case *IsNullExpr:
		deparseWithMinPrec(b, x.X, 3)
		if x.Not {
			b.WriteString(" IS NOT NULL")
		} else {
			b.WriteString(" IS NULL")
		}
	case *InExpr:
		deparseWithMinPrec(b, x.X, 3)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if x.Subquery != nil {
			deparseSelect(b, x.Subquery)
		} else {
			for i, a := range x.List {
				if i > 0 {
					b.WriteString(", ")
				}
				deparseExpr(b, a)
			}
		}
		b.WriteByte(')')
	case *BetweenExpr:
		deparseWithMinPrec(b, x.X, 3)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		deparseWithMinPrec(b, x.Lo, 4)
		b.WriteString(" AND ")
		deparseWithMinPrec(b, x.Hi, 4)
	case *LikeExpr:
		deparseWithMinPrec(b, x.X, 3)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		deparseWithMinPrec(b, x.Pattern, 4)
	case *CaseExpr:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteByte(' ')
			deparseExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			deparseExpr(b, w.Cond)
			b.WriteString(" THEN ")
			deparseExpr(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			deparseExpr(b, x.Else)
		}
		b.WriteString(" END")
	case *CastExpr:
		b.WriteString("CAST(")
		deparseExpr(b, x.X)
		b.WriteString(" AS ")
		b.WriteString(x.Type.String())
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "<?expr %T>", e)
	}
}

// precOf assigns a precedence level to binary operators for minimal
// parenthesisation in deparsed output.
func precOf(op BinaryOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return 3
	case OpAdd, OpSub, OpConcat:
		return 4
	case OpMul, OpDiv, OpMod:
		return 5
	default:
		return 6
	}
}

// exprPrec returns the effective parse precedence of an expression when it
// appears as an operand: primaries are 100, postfix predicates parse at
// comparison level (3), NOT between AND and comparisons (2).
func exprPrec(e Expr) int {
	switch x := e.(type) {
	case *BinaryExpr:
		return precOf(x.Op)
	case *UnaryExpr:
		if x.Op == "NOT" {
			return 2
		}
		return 100
	case *IsNullExpr, *InExpr, *BetweenExpr, *LikeExpr:
		return 3
	default:
		return 100
	}
}

// deparseChild writes a child of a binary expression, adding parentheses
// when the child binds more loosely than the parent (or equally, on the
// right side, to preserve left associativity).
func deparseChild(b *strings.Builder, e Expr, parentPrec int, isLeft bool) {
	childPrec := exprPrec(e)
	need := childPrec < parentPrec || (childPrec == parentPrec && !isLeft)
	if need {
		b.WriteByte('(')
		deparseExpr(b, e)
		b.WriteByte(')')
	} else {
		deparseExpr(b, e)
	}
}

// deparseWithMinPrec writes an operand that the parser reads at the given
// precedence level, parenthesising looser-binding expressions.
func deparseWithMinPrec(b *strings.Builder, e Expr, minPrec int) {
	if exprPrec(e) < minPrec {
		b.WriteByte('(')
		deparseExpr(b, e)
		b.WriteByte(')')
		return
	}
	deparseExpr(b, e)
}
