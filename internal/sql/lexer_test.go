package sql

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, b FROM t WHERE x >= 10.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"SELECT", "a", ",", "b", "FROM", "t", "WHERE", "x", ">=", "10.5", "<eof>"}
	if len(toks) != len(want) {
		t.Fatalf("token count %d want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want[:len(want)-1] {
		if toks[i].Text != w {
			t.Errorf("tok[%d] = %q, want %q", i, toks[i].Text, w)
		}
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatal("missing EOF")
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := Tokenize("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "it's" {
		t.Fatalf("string token: %+v", toks[0])
	}
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Fatal("expected error for unterminated string")
	}
}

func TestTokenizeQuotedIdent(t *testing.T) {
	toks, err := Tokenize(`"Weird ""Name"""`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokQuotedIdent || toks[0].Text != `Weird "Name"` {
		t.Fatalf("quoted ident: %+v", toks[0])
	}
	if _, err := Tokenize(`"open`); err == nil {
		t.Fatal("expected error for unterminated quoted ident")
	}
}

func TestTokenizeComments(t *testing.T) {
	toks, err := Tokenize("a -- comment\n b /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	if len(texts) != 3 || texts[0] != "a" || texts[1] != "b" || texts[2] != "c" {
		t.Fatalf("comment skipping: %v", texts)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.14":   "3.14",
		".5":     ".5",
		"1e9":    "1e9",
		"2.5e-3": "2.5e-3",
	}
	for in, want := range cases {
		toks, err := Tokenize(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != want {
			t.Errorf("%q -> %+v, want number %q", in, toks[0], want)
		}
	}
	// "1e" is number 1 followed by ident e.
	toks, err := Tokenize("1e")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "1" || toks[1].Text != "e" {
		t.Fatalf("1e split: %v", toks)
	}
}

func TestTokenizeOperators(t *testing.T) {
	toks, err := Tokenize("a<>b!=c<=d>=e||f")
	if err != nil {
		t.Fatal(err)
	}
	wantSyms := []string{"<>", "!=", "<=", ">=", "||"}
	got := []string{}
	for _, tok := range toks {
		if tok.Kind == TokSymbol {
			got = append(got, tok.Text)
		}
	}
	if len(got) != len(wantSyms) {
		t.Fatalf("symbols: %v", got)
	}
	for i := range got {
		if got[i] != wantSyms[i] {
			t.Errorf("sym[%d] = %q want %q", i, got[i], wantSyms[i])
		}
	}
}

func TestTokenizeBadChar(t *testing.T) {
	if _, err := Tokenize("a @ b"); err == nil {
		t.Fatal("expected error for @")
	}
}

func TestTokenizeDotAccess(t *testing.T) {
	toks, err := Tokenize("t.col")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds(toks)) != 4 || toks[1].Text != "." {
		t.Fatalf("dot access: %v", toks)
	}
}
