// Package sql implements the SQL front end: a hand-written zero-copy lexer,
// the abstract syntax tree, a recursive-descent parser for the SELECT dialect
// the engine supports, and a deparser that renders AST fragments back to SQL
// text (used both for EXPLAIN output and for verbalising predicates into LLM
// prompts).
package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies lexer tokens.
type TokenKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is a bare identifier or keyword (keywords are resolved by
	// the parser with a case-insensitive compare; see KeywordEq).
	TokIdent
	// TokQuotedIdent is a double-quoted identifier with quotes removed and
	// doubled quotes collapsed. Quoted identifiers never match keywords.
	TokQuotedIdent
	// TokString is a single-quoted string literal with quotes removed and
	// doubled quotes collapsed.
	TokString
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokSymbol is punctuation or an operator: ( ) , . * + - / % = <> != < <= > >= || ;
	TokSymbol
	// TokParam is a query parameter: $1 (ordinal), ? (auto-numbered), or
	// :name (named). Text holds the raw spelling including the sigil.
	TokParam
)

// Token is one lexical unit. In steady state Text is a slice into the source
// string (zero-copy); only string literals and quoted identifiers containing
// doubled quotes materialize an unescaped copy.
type Token struct {
	Kind TokenKind
	// Text is the literal text (for TokString/TokQuotedIdent, the unescaped
	// contents; for TokParam, the raw spelling including the sigil).
	Text string
	// Pos is the byte offset of the token start.
	Pos int
	// Line is the 1-based line of the token start.
	Line int
	// Col is the 1-based byte column of the token start within its line.
	Col int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return "'" + t.Text + "'"
	case TokQuotedIdent:
		return `"` + t.Text + `"`
	default:
		return t.Text
	}
}

// KeywordEq reports whether text spells the keyword kw, ignoring ASCII case.
// kw must be the upper-case spelling. Unlike strings.ToUpper-then-compare it
// never allocates.
func KeywordEq(text, kw string) bool {
	if len(text) != len(kw) {
		return false
	}
	for i := 0; i < len(kw); i++ {
		c := text[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != kw[i] {
			return false
		}
	}
	return true
}

// maxKeywordLen bounds the upper-casing stack buffer of keywordSet lookups;
// no reserved word is longer.
const maxKeywordLen = 16

// lookupKeyword reports whether text is in set (a map keyed by upper-case
// spellings). The upper-cased probe lives in a stack buffer, so the map index
// does not allocate.
func lookupKeyword(set map[string]bool, text string) bool {
	if len(text) > maxKeywordLen {
		return false
	}
	var buf [maxKeywordLen]byte
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		buf[i] = c
	}
	return set[string(buf[:len(text)])]
}

// Lexer turns SQL text into tokens incrementally. The zero value is not
// usable; construct with NewLexer or recycle with Reset.
type Lexer struct {
	src string
	pos int
	// line is the 1-based line number at pos; lineStart is the byte offset
	// where that line begins. Together they derive Token.Line/Col without a
	// per-token scan.
	line      int
	lineStart int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	l := &Lexer{}
	l.Reset(src)
	return l
}

// Reset points the lexer at new input, reusing the allocation.
func (l *Lexer) Reset(src string) {
	l.src = src
	l.pos = 0
	l.line = 1
	l.lineStart = 0
}

// Tokenize scans the whole input, returning the token stream terminated by a
// TokEOF token. The parser pulls tokens on demand instead; this helper serves
// tests, tools and Normalize.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// tok builds a token whose text is the source slice [start:l.pos).
func (l *Lexer) tok(kind TokenKind, start, line, col int) Token {
	return Token{Kind: kind, Text: l.src[start:l.pos], Pos: start, Line: line, Col: col}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	start := l.pos
	line, col := l.line, start-l.lineStart+1
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: start, Line: line, Col: col}, nil
	}
	c := l.src[l.pos]
	// Identifiers are scanned rune-wise: a multi-byte letter is one
	// character, and an invalid UTF-8 byte is never part of an identifier
	// (it falls through to lexSymbol's unexpected-character error, so bad
	// bytes are rejected instead of producing names that cannot re-lex).
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	switch {
	case isIdentStart(r):
		l.scanIdent()
		return l.tok(TokIdent, start, line, col), nil
	case c == '"':
		return l.lexQuoted(start, line, col, '"', TokQuotedIdent, "quoted identifier")
	case c >= '0' && c <= '9':
		l.scanNumber(start)
		return l.tok(TokNumber, start, line, col), nil
	case c == '.':
		// ".5" is a number; "." alone is a symbol.
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			l.scanNumber(start)
			return l.tok(TokNumber, start, line, col), nil
		}
		l.pos++
		return l.tok(TokSymbol, start, line, col), nil
	case c == '\'':
		return l.lexQuoted(start, line, col, '\'', TokString, "string literal")
	case c == '$' || c == '?' || c == ':':
		return l.lexParam(start, line, col)
	default:
		return l.lexSymbol(start, line, col)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '\n':
			l.pos++
			l.line++
			l.lineStart = l.pos
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
					l.lineStart = l.pos + 1
				}
				l.pos++
			}
			if l.pos+1 < len(l.src) {
				l.pos += 2
			} else {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// scanIdent advances past an identifier (the caller consumed nothing yet).
func (l *Lexer) scanIdent() {
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if (r == utf8.RuneError && size == 1) || !isIdentPart(r) {
			break
		}
		l.pos += size
	}
}

// lexQuoted scans a quote-delimited token ('...' string or "..." identifier).
// The fast path — no doubled quotes — returns a slice into the source; only
// escaped content materializes an unescaped copy.
func (l *Lexer) lexQuoted(start, line, col int, quote byte, kind TokenKind, what string) (Token, error) {
	l.pos++ // opening quote
	body := l.pos
	escaped := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				escaped = true
				l.pos += 2
				continue
			}
			text := l.src[body:l.pos]
			if escaped {
				q := string(quote)
				text = strings.ReplaceAll(text, q+q, q)
			}
			l.pos++
			return Token{Kind: kind, Text: text, Pos: start, Line: line, Col: col}, nil
		}
		if c == '\n' {
			l.line++
			l.lineStart = l.pos + 1
		}
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated %s at %d:%d", what, line, col)
}

// scanNumber advances past a numeric literal.
func (l *Lexer) scanNumber(start int) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			// Accept exponent with optional sign when followed by a digit.
			next := l.pos + 1
			if next < len(l.src) && (l.src[next] == '+' || l.src[next] == '-') {
				next++
			}
			if next < len(l.src) && isDigit(l.src[next]) {
				seenExp = true
				l.pos = next + 1
			} else {
				return
			}
		default:
			return
		}
	}
}

// lexParam scans $1, ?, or :name.
func (l *Lexer) lexParam(start, line, col int) (Token, error) {
	switch l.src[l.pos] {
	case '?':
		l.pos++
		return l.tok(TokParam, start, line, col), nil
	case '$':
		l.pos++
		digits := l.pos
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == digits {
			return Token{}, fmt.Errorf("sql: expected ordinal after '$' at %d:%d", line, col)
		}
		return l.tok(TokParam, start, line, col), nil
	default: // ':'
		l.pos++
		nameStart := l.pos
		for l.pos < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[l.pos:])
			if (r == utf8.RuneError && size == 1) || !isIdentPart(r) {
				break
			}
			l.pos += size
		}
		if l.pos == nameStart {
			return Token{}, fmt.Errorf("sql: expected name after ':' at %d:%d", line, col)
		}
		return l.tok(TokParam, start, line, col), nil
	}
}

func (l *Lexer) lexSymbol(start, line, col int) (Token, error) {
	c := l.src[l.pos]
	if l.pos+1 < len(l.src) {
		n := l.src[l.pos+1]
		if (c == '<' && (n == '>' || n == '=')) ||
			(c == '!' && n == '=') ||
			(c == '>' && n == '=') ||
			(c == '|' && n == '|') {
			l.pos += 2
			return l.tok(TokSymbol, start, line, col), nil
		}
	}
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', ';':
		l.pos++
		return l.tok(TokSymbol, start, line, col), nil
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at %d:%d", c, line, col)
}
