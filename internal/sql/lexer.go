// Package sql implements the SQL front end: a hand-written lexer, the
// abstract syntax tree, a recursive-descent parser for the SELECT dialect the
// engine supports, and a deparser that renders AST fragments back to SQL text
// (used both for EXPLAIN output and for verbalising predicates into LLM
// prompts).
package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies lexer tokens.
type TokenKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier or keyword (keywords are resolved by the
	// parser; Upper holds the upper-cased spelling for keyword matching).
	TokIdent
	// TokString is a single-quoted string literal with quotes removed and
	// doubled quotes collapsed.
	TokString
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokSymbol is punctuation or an operator: ( ) , . * + - / % = <> != < <= > >= ||
	TokSymbol
)

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	// Text is the literal text (for TokString, the unescaped contents).
	Text string
	// Upper caches strings.ToUpper(Text) for identifiers.
	Upper string
	// Pos is the byte offset of the token start, used in error messages.
	Pos int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return "'" + t.Text + "'"
	default:
		return t.Text
	}
}

// Lexer turns SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Tokenize scans the whole input, returning the token stream terminated by a
// TokEOF token.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	// Identifiers are scanned rune-wise: a multi-byte letter is one
	// character, and an invalid UTF-8 byte is never part of an identifier
	// (it falls through to lexSymbol's unexpected-character error, so bad
	// bytes are rejected instead of producing names that cannot re-lex).
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	switch {
	case isIdentStart(r):
		return l.lexIdent(start), nil
	case c == '"':
		return l.lexQuotedIdent(start)
	case c >= '0' && c <= '9':
		return l.lexNumber(start), nil
	case c == '.':
		// ".5" is a number; "." alone is a symbol.
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber(start), nil
		}
		l.pos++
		return Token{Kind: TokSymbol, Text: ".", Pos: start}, nil
	case c == '\'':
		return l.lexString(start)
	default:
		return l.lexSymbol(start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				l.pos++
			}
			if l.pos+1 < len(l.src) {
				l.pos += 2
			} else {
				l.pos = len(l.src)
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) lexIdent(start int) Token {
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if (r == utf8.RuneError && size == 1) || !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	text := l.src[start:l.pos]
	return Token{Kind: TokIdent, Text: text, Upper: strings.ToUpper(text), Pos: start}
}

func (l *Lexer) lexQuotedIdent(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
				b.WriteByte('"')
				l.pos += 2
				continue
			}
			l.pos++
			text := b.String()
			return Token{Kind: TokIdent, Text: text, Upper: strings.ToUpper(text), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", start)
}

func (l *Lexer) lexNumber(start int) Token {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			// Accept exponent with optional sign when followed by a digit.
			next := l.pos + 1
			if next < len(l.src) && (l.src[next] == '+' || l.src[next] == '-') {
				next++
			}
			if next < len(l.src) && isDigit(l.src[next]) {
				seenExp = true
				l.pos = next + 1
			} else {
				return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}
			}
		default:
			return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}
		}
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

// twoCharSymbols lists operators spelled with two characters; order matters
// only in that they are checked before single characters.
var twoCharSymbols = []string{"<>", "!=", "<=", ">=", "||"}

func (l *Lexer) lexSymbol(start int) (Token, error) {
	rest := l.src[l.pos:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			l.pos += len(s)
			return Token{Kind: TokSymbol, Text: s, Pos: start}, nil
		}
	}
	switch rest[0] {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', ';':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(rest[0]), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", rest[0], start)
}
