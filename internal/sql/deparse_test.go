package sql

import (
	"reflect"
	"testing"
)

// TestDeparseRoundTrip checks parse -> deparse -> parse is a fixed point on
// the AST for a corpus of statements.
func TestDeparseRoundTrip(t *testing.T) {
	corpus := []string{
		"SELECT 1",
		"SELECT * FROM t",
		"SELECT a, b AS bb FROM t WHERE a > 1 AND b < 2",
		"SELECT DISTINCT x FROM t ORDER BY x DESC LIMIT 3 OFFSET 1",
		"SELECT continent, COUNT(*) AS n FROM country GROUP BY continent HAVING COUNT(*) > 2",
		"SELECT c.name FROM country AS c JOIN movie AS m ON m.country = c.name",
		"SELECT * FROM a LEFT JOIN b ON a.x = b.x",
		"SELECT * FROM a CROSS JOIN b",
		"SELECT * FROM t WHERE x IN (1, 2, 3)",
		"SELECT * FROM t WHERE x NOT IN (SELECT y FROM u)",
		"SELECT * FROM t WHERE x BETWEEN 1 AND 10",
		"SELECT * FROM t WHERE s LIKE 'A%' AND s IS NOT NULL",
		"SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
		"SELECT CAST(x AS FLOAT) FROM t",
		"SELECT (a + b) * c FROM t",
		"SELECT a - (b - c) FROM t",
		"SELECT name || ' (' || capital || ')' FROM country",
		"SELECT s.n FROM (SELECT COUNT(*) AS n FROM t) AS s",
		"SELECT * FROM t WHERE NOT (a = 1 OR b = 2)",
		"SELECT SUM(DISTINCT x) FROM t",
	}
	for _, src := range corpus {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out := DeparseStmt(s1)
		s2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", out, src, err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("round trip changed AST:\n in: %s\nout: %s\nfirst: %#v\nsecond: %#v", src, out, s1, s2)
		}
		// Deparse must be a fixed point after one round.
		if again := DeparseStmt(s2); again != out {
			t.Errorf("deparse not stable: %q vs %q", out, again)
		}
	}
}

func TestDeparsePrecedenceParens(t *testing.T) {
	cases := map[string]string{
		"(a + b) * c":    "(a + b) * c",
		"a + b * c":      "a + b * c",
		"a - (b - c)":    "a - (b - c)",
		"(a OR b) AND c": "(a OR b) AND c",
		"NOT (a AND b)":  "NOT (a AND b)",
		"a / b / c":      "a / b / c",
	}
	for in, want := range cases {
		e, err := ParseExpr(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got := Deparse(e); got != want {
			t.Errorf("Deparse(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDeparseCreateInsert(t *testing.T) {
	src := "CREATE TABLE t (a INT PRIMARY KEY, b TEXT)"
	stmt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := DeparseStmt(stmt); got != src {
		t.Errorf("create deparse: %q", got)
	}
	src = "INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)"
	stmt, err = Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := DeparseStmt(stmt); got != src {
		t.Errorf("insert deparse: %q", got)
	}
}

func TestDeparseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if got := DeparseStmt(stmt); got != "EXPLAIN SELECT a FROM t" {
		t.Errorf("explain deparse: %q", got)
	}
}
