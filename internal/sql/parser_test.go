package sql

import (
	"testing"

	"llmsql/internal/rel"
)

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT name, population FROM country WHERE population > 50")
	if len(sel.Items) != 2 {
		t.Fatalf("items: %d", len(sel.Items))
	}
	c0, ok := sel.Items[0].Expr.(*ColumnRef)
	if !ok || c0.Name != "name" {
		t.Fatalf("item0: %#v", sel.Items[0].Expr)
	}
	ref, ok := sel.From.(*TableRef)
	if !ok || ref.Name != "country" {
		t.Fatalf("from: %#v", sel.From)
	}
	cmp, ok := sel.Where.(*BinaryExpr)
	if !ok || cmp.Op != OpGt {
		t.Fatalf("where: %#v", sel.Where)
	}
}

func TestParseStarVariants(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t")
	if !sel.Items[0].Star || sel.Items[0].StarTable != "" {
		t.Fatalf("star: %+v", sel.Items[0])
	}
	sel = mustSelect(t, "SELECT t.* , x FROM t")
	if !sel.Items[0].Star || sel.Items[0].StarTable != "t" {
		t.Fatalf("t.*: %+v", sel.Items[0])
	}
}

func TestParseAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT population AS pop, name n FROM country AS c")
	if sel.Items[0].Alias != "pop" || sel.Items[1].Alias != "n" {
		t.Fatalf("aliases: %+v", sel.Items)
	}
	ref := sel.From.(*TableRef)
	if ref.Alias != "c" || ref.Binding() != "c" {
		t.Fatalf("table alias: %+v", ref)
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT c.name, m.title FROM country c JOIN movie m ON m.country = c.name`)
	j, ok := sel.From.(*JoinExpr)
	if !ok || j.Type != JoinInner || j.On == nil {
		t.Fatalf("join: %#v", sel.From)
	}
	sel = mustSelect(t, `SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x`)
	j = sel.From.(*JoinExpr)
	if j.Type != JoinLeft {
		t.Fatalf("left join type: %v", j.Type)
	}
	sel = mustSelect(t, `SELECT * FROM a CROSS JOIN b`)
	j = sel.From.(*JoinExpr)
	if j.Type != JoinCross || j.On != nil {
		t.Fatalf("cross join: %#v", j)
	}
	sel = mustSelect(t, `SELECT * FROM a, b WHERE a.x = b.x`)
	j = sel.From.(*JoinExpr)
	if j.Type != JoinCross {
		t.Fatalf("comma join: %#v", j)
	}
	// Three-way chains left-deep.
	sel = mustSelect(t, `SELECT * FROM a JOIN b ON a.x=b.x JOIN c ON b.y=c.y`)
	outer := sel.From.(*JoinExpr)
	if _, ok := outer.Left.(*JoinExpr); !ok {
		t.Fatalf("not left-deep: %#v", outer)
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	sel := mustSelect(t, `
		SELECT continent, COUNT(*) AS n, AVG(population)
		FROM country
		GROUP BY continent
		HAVING COUNT(*) > 3
		ORDER BY n DESC, continent
		LIMIT 5 OFFSET 2`)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatalf("group/having: %+v", sel)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order: %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset missing")
	}
	fc, ok := sel.Items[1].Expr.(*FuncCall)
	if !ok || fc.Name != "COUNT" || !fc.Star {
		t.Fatalf("count(*): %#v", sel.Items[1].Expr)
	}
}

func TestParseDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT continent FROM country")
	if !sel.Distinct {
		t.Fatal("distinct flag")
	}
	sel = mustSelect(t, "SELECT COUNT(DISTINCT continent) FROM country")
	fc := sel.Items[0].Expr.(*FuncCall)
	if !fc.Distinct {
		t.Fatal("count distinct flag")
	}
}

func TestParsePredicates(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL`)
	conj := SplitConjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
	if n, ok := conj[0].(*IsNullExpr); !ok || n.Not {
		t.Fatalf("is null: %#v", conj[0])
	}
	if n, ok := conj[1].(*IsNullExpr); !ok || !n.Not {
		t.Fatalf("is not null: %#v", conj[1])
	}

	sel = mustSelect(t, `SELECT * FROM t WHERE x IN (1, 2, 3) AND y NOT IN ('a')`)
	conj = SplitConjuncts(sel.Where)
	in0 := conj[0].(*InExpr)
	if in0.Not || len(in0.List) != 3 {
		t.Fatalf("in: %#v", in0)
	}
	in1 := conj[1].(*InExpr)
	if !in1.Not {
		t.Fatalf("not in: %#v", in1)
	}

	sel = mustSelect(t, `SELECT * FROM t WHERE x BETWEEN 1 AND 10 AND s LIKE 'A%'`)
	conj = SplitConjuncts(sel.Where)
	if _, ok := conj[0].(*BetweenExpr); !ok {
		t.Fatalf("between: %#v", conj[0])
	}
	if _, ok := conj[1].(*LikeExpr); !ok {
		t.Fatalf("like: %#v", conj[1])
	}
}

func TestParseInSubquery(t *testing.T) {
	sel := mustSelect(t, `SELECT * FROM movie WHERE director IN (SELECT name FROM person WHERE born > 1960)`)
	in := sel.Where.(*InExpr)
	if in.Subquery == nil {
		t.Fatalf("subquery: %#v", in)
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := mustSelect(t, `SELECT s.n FROM (SELECT COUNT(*) AS n FROM t) AS s`)
	sub, ok := sel.From.(*SubqueryRef)
	if !ok || sub.Alias != "s" {
		t.Fatalf("derived: %#v", sel.From)
	}
	if _, err := ParseSelect(`SELECT * FROM (SELECT 1)`); err == nil {
		t.Fatal("derived table requires alias")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add := e.(*BinaryExpr)
	if add.Op != OpAdd {
		t.Fatalf("root: %v", add.Op)
	}
	mul := add.Right.(*BinaryExpr)
	if mul.Op != OpMul {
		t.Fatalf("right: %v", mul.Op)
	}

	e, err = ParseExpr("a OR b AND c")
	if err != nil {
		t.Fatal(err)
	}
	or := e.(*BinaryExpr)
	if or.Op != OpOr {
		t.Fatalf("or root: %v", or.Op)
	}
	if and := or.Right.(*BinaryExpr); and.Op != OpAnd {
		t.Fatalf("and right: %v", and.Op)
	}

	e, err = ParseExpr("NOT a = b")
	if err != nil {
		t.Fatal(err)
	}
	not := e.(*UnaryExpr)
	if not.Op != "NOT" {
		t.Fatalf("not: %#v", e)
	}
	if cmpE := not.X.(*BinaryExpr); cmpE.Op != OpEq {
		t.Fatalf("not binds over comparison: %#v", not.X)
	}
}

func TestParseNegativeNumbersFold(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*Literal)
	if !ok || lit.Value.AsInt() != -5 {
		t.Fatalf("folded literal: %#v", e)
	}
	e, err = ParseExpr("-2.5")
	if err != nil {
		t.Fatal(err)
	}
	if lit := e.(*Literal); lit.Value.AsFloat() != -2.5 {
		t.Fatalf("float fold: %#v", e)
	}
}

func TestParseCaseAndCast(t *testing.T) {
	e, err := ParseExpr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
	if err != nil {
		t.Fatal(err)
	}
	c := e.(*CaseExpr)
	if c.Operand != nil || len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("case: %#v", c)
	}
	e, err = ParseExpr("CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END")
	if err != nil {
		t.Fatal(err)
	}
	c = e.(*CaseExpr)
	if c.Operand == nil || len(c.Whens) != 2 || c.Else != nil {
		t.Fatalf("simple case: %#v", c)
	}
	e, err = ParseExpr("CAST(x AS FLOAT)")
	if err != nil {
		t.Fatal(err)
	}
	cast := e.(*CastExpr)
	if cast.Type != rel.TypeFloat {
		t.Fatalf("cast: %#v", cast)
	}
}

func TestParseLiterals(t *testing.T) {
	for src, want := range map[string]rel.Value{
		"NULL":  rel.Null(),
		"TRUE":  rel.Bool(true),
		"FALSE": rel.Bool(false),
		"'str'": rel.Text("str"),
		"12":    rel.Int(12),
		"1.5":   rel.Float(1.5),
		"1e3":   rel.Float(1000),
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		lit, ok := e.(*Literal)
		if !ok {
			t.Fatalf("%q: not literal: %#v", src, e)
		}
		if !lit.Value.IdenticalTo(want) && !(lit.Value.IsNull() && want.IsNull()) {
			t.Errorf("%q = %v, want %v", src, lit.Value, want)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE country (name TEXT PRIMARY KEY, capital TEXT, population INT, gdp FLOAT)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if ct.Name != "country" || len(ct.Columns) != 4 {
		t.Fatalf("create: %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != rel.TypeText {
		t.Fatalf("pk: %+v", ct.Columns[0])
	}
	if ct.Columns[2].Type != rel.TypeInt {
		t.Fatalf("int col: %+v", ct.Columns[2])
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse(`INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("insert: %+v", ins)
	}
	stmt, err = Parse(`INSERT INTO t VALUES (1, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if ins := stmt.(*InsertStmt); len(ins.Columns) != 0 {
		t.Fatalf("positional insert: %+v", ins)
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*ExplainStmt); !ok {
		t.Fatalf("explain: %#v", stmt)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT a FROM t ORDER",
		"SELECT CASE END",
		"SELECT CAST(a AS blob)",
		"SELECT a FROM t extra extra2",
		"INSERT INTO t",
		"CREATE TABLE t",
		"SELECT * FROM t WHERE a NOT 5",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Fatal(err)
	}
}

func TestWalkAndHelpers(t *testing.T) {
	e, err := ParseExpr("a + b * 2 > LENGTH(c) AND d IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	refs := ColumnRefs(e)
	if len(refs) != 4 {
		t.Fatalf("refs: %d", len(refs))
	}
	if ContainsAggregate(e) {
		t.Fatal("no aggregate here")
	}
	agg, _ := ParseExpr("SUM(x) + 1")
	if !ContainsAggregate(agg) {
		t.Fatal("aggregate not found")
	}
	conj := SplitConjuncts(e)
	if len(conj) != 2 {
		t.Fatalf("conjuncts: %d", len(conj))
	}
	back := JoinConjuncts(conj)
	if len(SplitConjuncts(back)) != 2 {
		t.Fatal("join/split roundtrip")
	}
	if JoinConjuncts(nil) != nil {
		t.Fatal("empty join")
	}
}
