package sql

import (
	"strings"
	"testing"

	"llmsql/internal/rel"
)

func TestParseParamStyles(t *testing.T) {
	cases := []struct {
		src  string
		want []Param // expected collected params in order
	}{
		{"SELECT a FROM t WHERE b = $1 AND c = $2", []Param{{Ordinal: 1}, {Ordinal: 2}}},
		{"SELECT a FROM t WHERE b = ? AND c = ?", []Param{{Ordinal: 1}, {Ordinal: 2}}},
		{"SELECT a FROM t WHERE b = :lo AND c = :HI", []Param{{Name: "lo"}, {Name: "hi"}}},
		{"SELECT a FROM t WHERE b IN ($2, $1, $2)", []Param{{Ordinal: 2}, {Ordinal: 1}, {Ordinal: 2}}},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%q: %v", tc.src, err)
		}
		got := CollectParams(stmt)
		if len(got) != len(tc.want) {
			t.Fatalf("%q: got %d params, want %d", tc.src, len(got), len(tc.want))
		}
		for i, p := range got {
			if p.Ordinal != tc.want[i].Ordinal || p.Name != tc.want[i].Name {
				t.Errorf("%q param %d: got %+v, want %+v", tc.src, i, *p, tc.want[i])
			}
		}
	}
}

func TestParseParamMixingRejected(t *testing.T) {
	for _, src := range []string{
		"SELECT a FROM t WHERE b = $1 AND c = ?",
		"SELECT a FROM t WHERE b = ? AND c = :x",
		"SELECT a FROM t WHERE b = :x AND c = $1",
	} {
		if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "mix") {
			t.Errorf("%q: want mixing error, got %v", src, err)
		}
	}
}

func TestParseErrorsCarryLineColumn(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the error
	}{
		{"SELECT +", "1:9"}, // unary + consumed; error points at EOF
		{"SELECT a\nFROM t\nWHERE >", "3:7"},
		{"SELECT 'unterminated", "1:8"},
		{"SELECT a FROM t WHERE b = 'x\ny' AND", "2:7"}, // line counted through the multi-line literal
		{"SELECT a,\n  b,,c FROM t", "2:5"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Fatalf("%q: expected error", tc.src)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not mention position %s", tc.src, err, tc.want)
		}
	}
}

func TestLexErrorNotDroppedAfterCompleteStatement(t *testing.T) {
	// The statement parses to completion before the lexer reaches the
	// unterminated string; the error must still surface.
	if _, err := Parse("SELECT a FROM t 'oops"); err == nil {
		t.Fatal("unterminated trailing literal silently dropped")
	}
}

func TestValidateBindings(t *testing.T) {
	pos := func(src string, n int) error {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		return ValidateBindings(stmt, n, nil)
	}
	if err := pos("SELECT a FROM t WHERE b = $1 AND c = $2", 2); err != nil {
		t.Errorf("exact positional set rejected: %v", err)
	}
	if err := pos("SELECT a FROM t WHERE b = $1 AND c = $2", 1); err == nil ||
		!strings.Contains(err.Error(), "unbound parameter $2") {
		t.Errorf("missing $2 not reported: %v", err)
	}
	if err := pos("SELECT a FROM t WHERE b = $1", 3); err == nil {
		t.Errorf("extra arguments not reported: %v", err)
	}
	if err := pos("SELECT a FROM t WHERE b = $2", 2); err == nil ||
		!strings.Contains(err.Error(), "unused") {
		t.Errorf("sparse ordinals not reported: %v", err)
	}

	named, err := Parse("SELECT a FROM t WHERE b = :x AND c = :y")
	if err != nil {
		t.Fatal(err)
	}
	ok := map[string]rel.Value{"x": rel.Int(1), "y": rel.Int(2)}
	if err := ValidateBindings(named, 0, ok); err != nil {
		t.Errorf("exact named set rejected: %v", err)
	}
	if err := ValidateBindings(named, 0, map[string]rel.Value{"x": rel.Int(1)}); err == nil {
		t.Error("missing :y not reported")
	}
	if err := ValidateBindings(named, 0, map[string]rel.Value{
		"x": rel.Int(1), "y": rel.Int(2), "z": rel.Int(3)}); err == nil {
		t.Error("extra :z not reported")
	}
}

func TestBindSelectSubstitutesEverywhere(t *testing.T) {
	src := `SELECT a + $1 FROM (SELECT a FROM u WHERE k = $2) s
JOIN t ON s.a = t.a AND t.w > $3
WHERE t.b IN (SELECT c FROM v WHERE d = $4)
GROUP BY a HAVING COUNT(*) > $5 ORDER BY a`
	stmt, err := ParseSelect(src)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]rel.Value, 5)
	for i := range vals {
		vals[i] = rel.Int(int64(10 + i))
	}
	bound, err := BindSelect(stmt, NewPositional(vals))
	if err != nil {
		t.Fatal(err)
	}
	if StmtHasParams(bound) {
		t.Fatalf("placeholders survived binding: %s", DeparseStmt(bound))
	}
	if !StmtHasParams(stmt) {
		t.Fatal("binding mutated the original statement")
	}
	text := DeparseStmt(bound)
	for _, lit := range []string{"10", "11", "12", "13", "14"} {
		if !strings.Contains(text, lit) {
			t.Errorf("bound value %s missing from %s", lit, text)
		}
	}
}

func TestDeparseParamRoundTrip(t *testing.T) {
	for _, src := range []string{
		"SELECT a FROM t WHERE b = $1 AND c IN ($2, $3)",
		"SELECT a FROM t WHERE b = :lo AND c < :hi",
		"SELECT CASE WHEN a > $1 THEN $2 ELSE $1 END FROM t",
		`SELECT "weird name" FROM t WHERE "select" = $1`,
		// Precedence edges: the deparser must parenthesize so the shape
		// survives reparsing.
		"SELECT (a + b) * c - -d FROM t",
		"SELECT NOT (a AND b) OR c FROM t",
		"SELECT a - (b - c), (a || b) || c FROM t",
		"EXPLAIN SELECT a FROM t WHERE b = $1",
		"EXPLAIN ANALYZE SELECT a FROM t WHERE b = $1",
	} {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		text := DeparseStmt(stmt)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("%q: deparse %q does not reparse: %v", src, text, err)
		}
		if again := DeparseStmt(back); again != text {
			t.Errorf("%q: unstable round trip %q -> %q", src, text, again)
		}
	}
}

func TestNormalize(t *testing.T) {
	groups := [][]string{
		// Spellings that must share one plan-cache key.
		{
			"SELECT name FROM country WHERE population > $1",
			"select NAME from COUNTRY where POPULATION > ?;",
			"  SELECT  name -- c\n FROM country WHERE population > $1  ",
			"SELECT/*x*/name FROM country WHERE population>?",
		},
		{
			`SELECT "Weird" FROM t`,
		},
	}
	for _, g := range groups {
		want, err := Normalize(g[0])
		if err != nil {
			t.Fatalf("%q: %v", g[0], err)
		}
		for _, src := range g[1:] {
			got, err := Normalize(src)
			if err != nil {
				t.Fatalf("%q: %v", src, err)
			}
			if got != want {
				t.Errorf("Normalize(%q) = %q, want %q (same key as %q)", src, got, want, g[0])
			}
		}
		// Fixed point.
		if twice, err := Normalize(want); err != nil || twice != want {
			t.Errorf("Normalize(%q) not a fixed point: %q (%v)", want, twice, err)
		}
	}
	// Distinct statements must not collide.
	a, _ := Normalize("SELECT a FROM t")
	b, _ := Normalize("SELECT a FROM u")
	if a == b {
		t.Error("different statements share a normalized key")
	}
	// Case inside string literals and quoted identifiers is significant.
	c1, _ := Normalize("SELECT 'A' FROM t")
	c2, _ := Normalize("SELECT 'a' FROM t")
	if c1 == c2 {
		t.Error("string-literal case was folded")
	}
	if _, err := Normalize("SELECT 'unterminated"); err == nil {
		t.Error("lex error not surfaced")
	}
}
