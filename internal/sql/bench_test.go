package sql

import (
	"testing"
)

// benchQuery exercises most of the token vocabulary: keywords, quoted
// identifiers, strings, numbers, operators, comments and parameters. It
// contains no doubled-quote escapes — those are the lexer's only allocating
// path (unescaping cannot alias the source) and are pinned separately.
const benchQuery = `SELECT c.name, c.capital, COUNT(*) AS n, SUM(c.population) * 1.5
FROM country AS c JOIN city ON c.capital = city.name -- inline comment
WHERE c.population >= $1 AND c.region <> 'Europe' AND "Weird Name" IS NOT NULL
GROUP BY c.name, c.capital HAVING COUNT(*) > $2
ORDER BY n DESC, c.name LIMIT 10`

// TestTokenizeZeroAlloc pins the tentpole invariant: steady-state
// tokenization performs no heap allocation. Tokens alias the source string;
// keyword classification and symbol scanning stay on the stack.
func TestTokenizeZeroAlloc(t *testing.T) {
	var lx Lexer
	allocs := testing.AllocsPerRun(100, func() {
		lx.Reset(benchQuery)
		for {
			tok, err := lx.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tok.Kind == TokEOF {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("tokenization allocated %.1f times per run, want 0", allocs)
	}
}

// TestTokenizeEscapeAllocs pins the slow path: a doubled-quote escape must
// materialize the unescaped text (it cannot alias the source), and that is
// the only allocation.
func TestTokenizeEscapeAllocs(t *testing.T) {
	var lx Lexer
	allocs := testing.AllocsPerRun(100, func() {
		lx.Reset(`SELECT 'Euro''pe'`)
		for {
			tok, err := lx.Next()
			if err != nil {
				t.Fatal(err)
			}
			if tok.Kind == TokEOF {
				break
			}
		}
	})
	if allocs > 1 {
		t.Fatalf("escaped-string tokenization allocated %.1f times per run, want <= 1", allocs)
	}
}

func BenchmarkTokenize(b *testing.B) {
	var lx Lexer
	b.ReportAllocs()
	b.SetBytes(int64(len(benchQuery)))
	for i := 0; i < b.N; i++ {
		lx.Reset(benchQuery)
		for {
			tok, err := lx.Next()
			if err != nil {
				b.Fatal(err)
			}
			if tok.Kind == TokEOF {
				break
			}
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}
