package sql

import (
	"strconv"
	"strings"
)

// Normalize renders src as a canonical single-line spelling suitable as a
// plan-cache key: whitespace and comments collapse to single separators,
// bare identifiers and keywords lower-case, string literals and quoted
// identifiers re-quote with case preserved, `?` placeholders number as $n,
// and trailing semicolons drop. Two statements normalize equal exactly when
// they parse to identical ASTs modulo parameter spelling, so a cache keyed
// on the normalized text can safely share plans.
//
// Normalization is lex-only — it never parses — so it costs one token scan.
// Input that does not lex returns an error (such statements can never have
// a plan to share).
func Normalize(src string) (string, error) {
	lx := NewLexer(src)
	var b strings.Builder
	b.Grow(len(src))
	q := 0
	first := true
	for {
		t, err := lx.Next()
		if err != nil {
			return "", err
		}
		if t.Kind == TokEOF {
			return b.String(), nil
		}
		if t.Kind == TokSymbol && t.Text == ";" {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		switch t.Kind {
		case TokIdent:
			writeLowerASCII(&b, t.Text)
		case TokQuotedIdent:
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(t.Text, `"`, `""`))
			b.WriteByte('"')
		case TokString:
			b.WriteByte('\'')
			b.WriteString(strings.ReplaceAll(t.Text, `'`, `''`))
			b.WriteByte('\'')
		case TokParam:
			if t.Text == "?" {
				q++
				b.WriteByte('$')
				b.WriteString(strconv.Itoa(q))
			} else if t.Text[0] == ':' {
				b.WriteByte(':')
				writeLowerASCII(&b, t.Text[1:])
			} else {
				b.WriteString(t.Text)
			}
		default:
			b.WriteString(t.Text)
		}
	}
}

// writeLowerASCII writes s lower-casing ASCII letters without allocating.
func writeLowerASCII(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b.WriteByte(c)
	}
}
