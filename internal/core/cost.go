package core

import (
	"strings"

	"llmsql/internal/llm"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
)

// This file bridges the engine to the planner's scan-cost estimator
// (internal/plan/cost.go): it measures prompt token counts on the real
// prompt templates, estimates completion token widths from column types,
// supplies a per-table cardinality estimate (registration metadata refined
// by prior-scan statistics), and maps the resulting decision back onto
// core.Strategy.

// defaultCardinality is the rows estimate for tables registered without
// metadata and never scanned. It matches DefaultConfig's page size: one
// page of unknown.
const defaultCardinality = 40

// Completion-token width estimates per column type. These feed the cost
// estimator only — accounting always charges exact measured tokens.
func estValueTokens(t rel.DataType) int {
	switch t {
	case rel.TypeBool:
		return 1
	case rel.TypeInt, rel.TypeFloat:
		return 3
	default: // TEXT: a short name or phrase
		return 4
	}
}

// estRowTokens estimates completion tokens for one full row over cols
// (fields plus separators).
func estRowTokens(schema rel.Schema, cols []int) int {
	tok := 0
	for _, c := range cols {
		tok += estValueTokens(schema.Col(c).Type) + 1 // " | " separator
	}
	return tok
}

// cardinalityEstimate returns the rows estimate for a table: prior-scan
// statistics win over registration metadata, which wins over the default.
// Callers must hold s.mu or own the table exclusively.
func (s *LLMStore) cardinalityEstimate(t *VirtualTable) int {
	if n, ok := s.estRows[t.Name]; ok && n > 0 {
		return n
	}
	if t.EstRows > 0 {
		return t.EstRows
	}
	return defaultCardinality
}

// scanCostModel assembles the estimator inputs for scanning cols of t.
func (s *LLMStore) scanCostModel(t *VirtualTable, cols []int) plan.ScanCostModel {
	cfg := s.cfg
	keyPos := t.Schema.KeyIndexes()[0]
	attrCols := 0
	for _, c := range cols {
		if c != keyPos {
			attrCols++
		}
	}
	// Measure prompt boilerplate on the real templates. The ATTR prompt is
	// measured with the table name standing in for an entity key — keys
	// and table names have comparable token widths.
	sampleKey := t.Name
	attrCol := keyPos
	for _, c := range cols {
		if c != keyPos {
			attrCol = c
			break
		}
	}
	rounds := cfg.MaxRounds
	if cfg.Temperature <= 0 {
		rounds = 1
	}
	return plan.ScanCostModel{
		Cost:             s.costModel,
		Rows:             s.cardinalityEstimate(t),
		AttrCols:         attrCols,
		ListPromptTokens: llm.CountTokens(buildListPrompt(t, cols, nil, nil, 0)),
		KeysPromptTokens: llm.CountTokens(buildKeysPrompt(t, nil, nil, 0)),
		AttrPromptTokens: llm.CountTokens(buildAttrPrompt(t, sampleKey, attrCol)),
		RowTokens:        estRowTokens(t.Schema, cols),
		KeyTokens:        estValueTokens(t.Schema.Col(keyPos).Type),
		AttrTokens:       estValueTokens(t.Schema.Col(attrCol).Type) + 4, // answers arrive wrapped in short sentences
		Rounds:           rounds,
		MaxRounds:        cfg.MaxRounds,
		Votes:            cfg.Votes,
		PageSize:         cfg.PageSize,
		BatchSize:        cfg.BatchSize,
		Parallelism:      cfg.Parallelism,
	}
}

// decide prices the scan of cols over t and returns the decision. With
// StrategyAuto the cost model chooses; otherwise the configured strategy is
// reported as forced, with the candidate breakdown kept advisory.
func (s *LLMStore) decide(t *VirtualTable, cols []int) plan.ScanDecision {
	m := s.scanCostModel(t, cols)
	d := m.Decide()
	if s.cfg.Strategy != StrategyAuto {
		d.Auto = false
		d.Chosen = s.cfg.Strategy.String()
	}
	return d
}

// ScanDecision implements plan.ScanAdvisor: the planner calls it while
// annotating scans so EXPLAIN can show the strategy choice and its cost
// breakdown.
func (s *LLMStore) ScanDecision(table string, needed []bool) (plan.ScanDecision, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[strings.ToLower(table)]
	if !ok {
		return plan.ScanDecision{}, false
	}
	return s.decide(t, neededColumns(t.Schema, needed)), true
}

// strategyByName maps a decision back to the executable strategy.
func strategyByName(name string) Strategy {
	switch name {
	case "key-then-attr":
		return StrategyKeyThenAttr
	case "paged":
		return StrategyPaged
	default:
		return StrategyFullTable
	}
}

// noteCardinality records an observed row count as the table's refined
// cardinality estimate for future decisions. Zero observations are ignored
// (an empty retrieval says more about the model than the table).
func (s *LLMStore) noteCardinality(table string, rows int) {
	if rows <= 0 {
		return
	}
	s.mu.Lock()
	s.estRows[table] = rows
	s.mu.Unlock()
}
