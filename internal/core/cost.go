package core

import (
	"strings"

	"llmsql/internal/llm"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// This file bridges the engine to the planner's scan-cost estimator
// (internal/plan/cost.go): it measures prompt token counts on the real
// prompt templates, estimates completion token widths from column types,
// supplies a per-table cardinality estimate (registration metadata refined
// by prior-scan statistics), and maps the resulting decision back onto
// core.Strategy.

// defaultCardinality is the rows estimate for tables registered without
// metadata and never scanned. It matches DefaultConfig's page size: one
// page of unknown.
const defaultCardinality = 40

// Completion-token width estimates per column type. These feed the cost
// estimator only — accounting always charges exact measured tokens.
func estValueTokens(t rel.DataType) int {
	switch t {
	case rel.TypeBool:
		return 1
	case rel.TypeInt, rel.TypeFloat:
		return 3
	default: // TEXT: a short name or phrase
		return 4
	}
}

// estRowTokens estimates completion tokens for one full row over cols
// (fields plus separators).
func estRowTokens(schema rel.Schema, cols []int) int {
	tok := 0
	for _, c := range cols {
		tok += estValueTokens(schema.Col(c).Type) + 1 // " | " separator
	}
	return tok
}

// cardinalityEstimate returns the rows estimate for a table: prior-scan
// statistics win over registration metadata, which wins over the default.
// Callers must hold s.mu or own the table exclusively.
func (s *LLMStore) cardinalityEstimate(t *VirtualTable) int {
	if n, ok := s.estRows[t.Name]; ok && n > 0 {
		return n
	}
	if t.EstRows > 0 {
		return t.EstRows
	}
	return defaultCardinality
}

// keySelectivity crudely estimates the fraction of entities surviving the
// key-only conjuncts of a pushed filter — the conjuncts the scan's gate
// enforces locally, so they genuinely shrink the attribute fan-out.
// Equality and IN pin a handful of keys; any other key-only predicate is
// guessed at one third. Non-key conjuncts contribute nothing: the gate
// cannot decide them, so every enumerated key still reaches the attribute
// phase. The guess only feeds estimates (EXPLAIN labels them "est");
// accounting always charges what actually ran.
func keySelectivity(filter sql.Expr, keyName string, rows int) float64 {
	if filter == nil {
		return 1
	}
	if rows < 1 {
		rows = 1
	}
	sel := 1.0
	for _, c := range keyOnlyConjuncts(filter, keyName) {
		switch x := c.(type) {
		case *sql.BinaryExpr:
			if x.Op == sql.OpEq {
				sel *= 1 / float64(rows)
			} else {
				sel *= 1.0 / 3
			}
		case *sql.InExpr:
			if !x.Not && len(x.List) > 0 {
				sel *= float64(len(x.List)) / float64(rows)
			} else {
				sel *= 1.0 / 3
			}
		default:
			sel *= 1.0 / 3
		}
	}
	if sel < 1/float64(rows) {
		sel = 1 / float64(rows)
	}
	if sel > 1 {
		sel = 1
	}
	return sel
}

// warmHitRate estimates the persistent prompt-cache hit rate this scan
// would see, by probing the cache's content-addressed index with the scan's
// deterministic round-0 enumeration fingerprints (LIST, paged page 0,
// KEYS) — cache metadata, not a model call. A content-addressed cache is
// all-or-nothing for a repeated workload, so a warm enumeration prompt
// means the scan replays warm (rate 1); all probes cold means rate 0.
// Callers must hold s.mu or own the table exclusively.
func (s *LLMStore) warmHitRate(t *VirtualTable, cols []int, filter sql.Expr) float64 {
	if s.disk == nil {
		return 0
	}
	keyName := t.Schema.Col(t.Schema.KeyIndexes()[0]).Name
	keyFilter := sql.JoinConjuncts(keyOnlyConjuncts(filter, keyName))
	probes := []string{
		buildListPrompt(t, cols, filter, nil, 0),
		buildListPrompt(t, cols, filter, nil, s.cfg.PageSize),
		buildKeysPrompt(t, keyFilter, nil, 0),
	}
	for _, prompt := range probes {
		if s.disk.Contains(llm.CompletionRequest{
			Prompt:      prompt,
			MaxTokens:   s.cfg.MaxCompletionTokens,
			Temperature: s.cfg.Temperature,
			Seed:        s.cfg.Seed,
		}) {
			return 1
		}
	}
	return 0
}

// scanCostModel assembles the estimator inputs for scanning cols of t
// under the given pushed filter and advisory limit.
func (s *LLMStore) scanCostModel(t *VirtualTable, cols []int, filter sql.Expr, limit int64) plan.ScanCostModel {
	cfg := s.cfg
	keyPos := t.Schema.KeyIndexes()[0]
	attrCols := 0
	for _, c := range cols {
		if c != keyPos {
			attrCols++
		}
	}
	// Measure prompt boilerplate on the real templates. The ATTR prompt is
	// measured with the table name standing in for an entity key — keys
	// and table names have comparable token widths.
	sampleKey := t.Name
	attrCol := keyPos
	for _, c := range cols {
		if c != keyPos {
			attrCol = c
			break
		}
	}
	rounds := cfg.MaxRounds
	if cfg.Temperature <= 0 {
		rounds = 1
	}
	estRows := s.cardinalityEstimate(t)
	// Price expected fault recovery when a chaos profile is in force: the
	// injector publishes its per-attempt failure probability, the retry
	// policy the backoff the Retrier will charge. On a healthy backend both
	// are zero-cost no-ops.
	retry := cfg.Retry.Normalized()
	return plan.ScanCostModel{
		Cost:             s.costModel,
		Rows:             estRows,
		AttrCols:         attrCols,
		ListPromptTokens: llm.CountTokens(buildListPrompt(t, cols, nil, nil, 0)),
		KeysPromptTokens: llm.CountTokens(buildKeysPrompt(t, nil, nil, 0)),
		AttrPromptTokens: llm.CountTokens(buildAttrPrompt(t, sampleKey, attrCol)),
		RowTokens:        estRowTokens(t.Schema, cols),
		KeyTokens:        estValueTokens(t.Schema.Col(keyPos).Type),
		AttrTokens:       estValueTokens(t.Schema.Col(attrCol).Type) + 4, // answers arrive wrapped in short sentences
		Rounds:           rounds,
		MaxRounds:        cfg.MaxRounds,
		Votes:            cfg.Votes,
		PageSize:         cfg.PageSize,
		BatchSize:        cfg.BatchSize,
		Parallelism:      cfg.Parallelism,
		Limit:            limit,
		Selectivity:      keySelectivity(filter, t.Schema.Col(keyPos).Name, estRows),
		WarmHitRate:      s.warmHitRate(t, cols, filter),
		FaultRate:        cfg.Chaos.FailureRate(),
		RetryBackoff:     retry.BaseBackoff,
		MaxAttempts:      retry.MaxAttempts,
	}
}

// decide prices the scan of cols over t — under the pushed filter and
// advisory limit the scan will actually run with — and returns the
// decision. With StrategyAuto the cost model chooses; otherwise the
// configured strategy is reported as forced, with the candidate breakdown
// kept advisory. filter and limit must already respect the Pushdown /
// LimitPushdown configuration (callers pass nil / 0 when disabled).
func (s *LLMStore) decide(t *VirtualTable, cols []int, filter sql.Expr, limit int64) plan.ScanDecision {
	m := s.scanCostModel(t, cols, filter, limit)
	d := m.Decide()
	if s.cfg.Strategy != StrategyAuto {
		d.Auto = false
		d.Chosen = s.cfg.Strategy.String()
	}
	return d
}

// ScanDecision implements plan.ScanAdvisor: the planner calls it while
// annotating scans so EXPLAIN can show the strategy choice and its cost
// breakdown, including the limit hint and the expected attribute fan-out.
func (s *LLMStore) ScanDecision(table string, needed []bool, filter sql.Expr, limit int64) (plan.ScanDecision, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[strings.ToLower(table)]
	if !ok {
		return plan.ScanDecision{}, false
	}
	if !s.cfg.Pushdown {
		filter = nil
	} else {
		filter = stripQualifiers(filter)
	}
	if !s.cfg.LimitPushdown || limit < 0 {
		limit = 0
	}
	return s.decide(t, neededColumns(t.Schema, needed), filter, limit), true
}

// BindScanCost implements plan.BindAdvisor: it prices the bound
// key-then-attr scan a bind join would issue against this table, with the
// attribute fan-out restricted to boundKeys outer join-key values. Binding
// only applies when the scan's effective strategy is key-then-attr — with
// any other (forced or auto-chosen) decomposition the bound scan could not
// stay byte-identical to the unbound one — so ok is false otherwise, and
// the join planner falls back to hash.
func (s *LLMStore) BindScanCost(table string, needed []bool, filter sql.Expr, boundKeys int) (plan.StrategyCost, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[strings.ToLower(table)]
	if !ok || !s.cfg.BindJoin {
		return plan.StrategyCost{}, false
	}
	if !s.cfg.Pushdown {
		filter = nil
	} else {
		filter = stripQualifiers(filter)
	}
	cols := neededColumns(t.Schema, needed)
	if s.cfg.Strategy != StrategyKeyThenAttr &&
		(s.cfg.Strategy != StrategyAuto || s.decide(t, cols, filter, 0).Chosen != "key-then-attr") {
		return plan.StrategyCost{}, false
	}
	return s.scanCostModel(t, cols, filter, 0).BindScan(boundKeys), true
}

// EstimateRows implements plan.Cardinalities with the same estimate the
// scan planner prices from (registration metadata refined by prior scans).
func (s *LLMStore) EstimateRows(table string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[strings.ToLower(table)]
	if !ok {
		return 0, false
	}
	return s.cardinalityEstimate(t), true
}

// strategyByName maps a decision back to the executable strategy.
func strategyByName(name string) Strategy {
	switch name {
	case "key-then-attr":
		return StrategyKeyThenAttr
	case "paged":
		return StrategyPaged
	default:
		return StrategyFullTable
	}
}

// noteCardinality records an observed row count as the table's refined
// cardinality estimate for future decisions. Zero observations are ignored
// (an empty retrieval says more about the model than the table).
func (s *LLMStore) noteCardinality(table string, rows int) {
	if rows <= 0 {
		return
	}
	s.mu.Lock()
	s.estRows[table] = rows
	s.mu.Unlock()
}
