package core

import (
	"testing"

	"llmsql/internal/rel"
)

var parseSchema = rel.NewSchema(
	rel.Column{Name: "name", Type: rel.TypeText, Key: true},
	rel.Column{Name: "capital", Type: rel.TypeText},
	rel.Column{Name: "population", Type: rel.TypeInt},
)

func allCols() []int { return []int{0, 1, 2} }

func TestParseCleanRows(t *testing.T) {
	text := "France | Paris | 68\nJapan | Tokyo | 125"
	rows, stats := parseListCompletion(text, parseSchema, allCols(), 0, true)
	if len(rows) != 2 || stats.RowsParsed != 2 || stats.RowsDropped != 0 {
		t.Fatalf("rows=%d stats=%+v", len(rows), stats)
	}
	if rows[0][0].AsText() != "France" || rows[0][2].AsInt() != 68 {
		t.Fatalf("row0: %v", rows[0])
	}
	if stats.Repairs != 0 {
		t.Fatalf("clean input needed repairs: %+v", stats)
	}
}

func TestParseSkipsProse(t *testing.T) {
	text := "Here are the rows I know of:\nFrance | Paris | 68\n(end of list)"
	rows, stats := parseListCompletion(text, parseSchema, allCols(), 0, true)
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	if stats.RowsDropped != 2 {
		t.Fatalf("prose lines must be dropped: %+v", stats)
	}
}

func TestParseRepairsBulletsAndCommentary(t *testing.T) {
	text := "- France | Paris | 68\nRow: Japan | Tokyo | 125."
	rows, stats := parseListCompletion(text, parseSchema, allCols(), 0, true)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if stats.Repairs == 0 {
		t.Fatal("repairs must be counted")
	}
	if rows[1][2].AsInt() != 125 {
		t.Fatalf("trailing period handling: %v", rows[1])
	}
}

func TestParseCommaFallback(t *testing.T) {
	text := "France, Paris, 68"
	rows, stats := parseListCompletion(text, parseSchema, allCols(), 0, true)
	if len(rows) != 1 || rows[0][1].AsText() != "Paris" {
		t.Fatalf("comma fallback: %v (%+v)", rows, stats)
	}
	// Strict mode rejects it.
	rows, _ = parseListCompletion(text, parseSchema, allCols(), 0, false)
	if len(rows) != 0 {
		t.Fatalf("strict mode accepted comma row: %v", rows)
	}
}

func TestParseRaggedRows(t *testing.T) {
	// Missing field -> NULL-padded; extra field -> truncated.
	text := "France | Paris\nJapan | Tokyo | 125 | extra"
	rows, stats := parseListCompletion(text, parseSchema, allCols(), 0, true)
	if len(rows) != 2 {
		t.Fatalf("ragged rows: %v", rows)
	}
	if !rows[0][2].IsNull() {
		t.Fatalf("missing field must be NULL: %v", rows[0])
	}
	if rows[1][2].AsInt() != 125 {
		t.Fatalf("extra field must be dropped: %v", rows[1])
	}
	if stats.Repairs < 2 {
		t.Fatalf("repairs: %+v", stats)
	}
	// Strict mode rejects both.
	rows, _ = parseListCompletion(text, parseSchema, allCols(), 0, false)
	if len(rows) != 0 {
		t.Fatalf("strict accepted ragged rows: %v", rows)
	}
}

func TestParseNumericRescue(t *testing.T) {
	text := "France | Paris | about 68 million\nJapan | Tokyo | 1,254"
	rows, stats := parseListCompletion(text, parseSchema, allCols(), 0, true)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[0][2].AsInt() != 68 {
		t.Fatalf("unit words: %v", rows[0][2])
	}
	if rows[1][2].AsInt() != 1254 {
		t.Fatalf("thousands separators: %v", rows[1][2])
	}
	_ = stats
}

func TestParseDropsRowsWithoutKey(t *testing.T) {
	text := " | Paris | 68\nunknown | Rome | 59"
	rows, _ := parseListCompletion(text, parseSchema, allCols(), 0, true)
	// First row has empty key; second has "unknown" which ParseTyped maps
	// to NULL for text? No: "unknown" maps to NULL only for non-text; for
	// TEXT it is the literal string "unknown"... which IS the NULL marker.
	for _, r := range rows {
		if r[0].IsNull() || r[0].AsText() == "" {
			t.Fatalf("row with null key leaked: %v", r)
		}
	}
}

func TestParsePartialColumns(t *testing.T) {
	// Only columns 0 and 2 requested; column 1 must be NULL.
	text := "France | 68"
	rows, _ := parseListCompletion(text, parseSchema, []int{0, 2}, 0, true)
	if len(rows) != 1 {
		t.Fatalf("rows: %v", rows)
	}
	if !rows[0][1].IsNull() || rows[0][2].AsInt() != 68 {
		t.Fatalf("partial columns: %v", rows[0])
	}
}

func TestParseKeysOnly(t *testing.T) {
	text := "France\nJapan\nHere are more:\nBrazil."
	rows, _ := parseListCompletion(text, parseSchema, []int{0}, 0, true)
	if len(rows) != 3 {
		t.Fatalf("keys: %v", rows)
	}
	if rows[2][0].AsText() != "Brazil" {
		t.Fatalf("trailing period on key: %v", rows[2])
	}
}

func TestParseTruncatedLastLine(t *testing.T) {
	// Mid-row truncation: last line misses the numeric tail.
	text := "France | Paris | 68\nJapan | Tok"
	rows, _ := parseListCompletion(text, parseSchema, allCols(), 0, true)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if !rows[1][2].IsNull() {
		t.Fatalf("truncated row numeric must be NULL: %v", rows[1])
	}
}

func TestExtractNumber(t *testing.T) {
	cases := map[string]string{
		"about 68 million":      "68",
		"≈1,408 (2021)":         "1,408",
		"-12 degrees":           "-12",
		"value: 3.5 approx":     "3.5",
		"no digits here at all": "",
	}
	for in, want := range cases {
		got, ok := extractNumber(in)
		if want == "" {
			if ok {
				t.Errorf("extractNumber(%q) = %q, want none", in, got)
			}
			continue
		}
		if !ok || got != want {
			t.Errorf("extractNumber(%q) = %q,%v want %q", in, got, ok, want)
		}
	}
}

func TestParseAttrCompletion(t *testing.T) {
	cases := []struct {
		text string
		typ  rel.DataType
		want string
		ok   bool
	}{
		{"Paris", rel.TypeText, "Paris", true},
		{"Paris.", rel.TypeText, "Paris", true},
		{"The capital of France is Paris.", rel.TypeText, "Paris", true},
		{"capital: Paris", rel.TypeText, "Paris", true},
		{"I'm not sure.", rel.TypeText, "", false},
		{"68", rel.TypeInt, "68", true},
		{"The population of France is 68.", rel.TypeInt, "68", true},
		{"about 68 million", rel.TypeInt, "68", true},
		{"population: 1,408", rel.TypeInt, "1408", true},
		{"", rel.TypeText, "", false},
	}
	for _, c := range cases {
		v, ok := parseAttrCompletion(c.text, c.typ, true)
		if ok != c.ok {
			t.Errorf("parseAttr(%q): ok=%v want %v", c.text, ok, c.ok)
			continue
		}
		if ok && v.String() != c.want {
			t.Errorf("parseAttr(%q) = %q, want %q", c.text, v.String(), c.want)
		}
	}
}

func TestParseAttrMultiline(t *testing.T) {
	v, ok := parseAttrCompletion("Paris\nIt is a lovely city.", rel.TypeText, true)
	if !ok || v.AsText() != "Paris" {
		t.Fatalf("multiline attr: %v %v", v, ok)
	}
}

func TestParseNormalizesKeyWhitespace(t *testing.T) {
	// Interior whitespace runs in the entity key are collapsed at parse
	// time, so the emitted row, dedup identity, ATTR prompts and cache all
	// agree on one spelling (regression: variants used to flow through).
	text := "United  Kingdom | London | 67\nNew\t York | Albany | 20"
	rows, stats := parseListCompletion(text, parseSchema, allCols(), 0, true)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if got := rows[0][0].AsText(); got != "United Kingdom" {
		t.Fatalf("key not normalized: %q", got)
	}
	if got := rows[1][0].AsText(); got != "New York" {
		t.Fatalf("key not normalized: %q", got)
	}
	// Non-key fields keep their parsed spelling.
	if rows[0][1].AsText() != "London" {
		t.Fatalf("capital: %v", rows[0][1])
	}
	// Canonicalization is not a repair: the strict-parser ablation must
	// stay repair-free on well-formed lines.
	if stats.Repairs != 0 {
		t.Fatalf("normalization must not count as a repair: %+v", stats)
	}
	strictRows, strictStats := parseListCompletion(text, parseSchema, allCols(), 0, false)
	if len(strictRows) != 2 || strictStats.Repairs != 0 {
		t.Fatalf("strict parse: rows=%d stats=%+v", len(strictRows), strictStats)
	}
	if got := strictRows[0][0].AsText(); got != "United Kingdom" {
		t.Fatalf("strict parser must canonicalize keys too: %q", got)
	}
}

func TestParseBatchMatchesWhitespaceVariantKeys(t *testing.T) {
	// A batched ATTRS answer echoing a key with different interior spacing
	// must still be attributed to that key, not dropped into fallback.
	vals, ok, found := parseAttrBatchCompletion(
		"United  Kingdom | London\nFrance | Paris",
		[]string{"United Kingdom", "France"}, rel.TypeText, true)
	if !found[0] || !ok[0] || vals[0].AsText() != "London" {
		t.Fatalf("whitespace-variant echo not matched: found=%v ok=%v vals=%v", found, ok, vals)
	}
	if !found[1] || vals[1].AsText() != "Paris" {
		t.Fatalf("clean echo broken: %v", vals)
	}
}
