package core

import (
	"fmt"
	"strings"
	"testing"

	"llmsql/internal/llm"
)

// viewTestConfig is the key-then-attr configuration the view tests stress:
// voting and batching on, so the defining scan exercises the interesting
// prompt paths.
func viewTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Temperature = 0.7
	cfg.MaxRounds = 3
	cfg.Votes = 3
	return cfg
}

// TestViewReadsByteIdenticalToLiveScan checks the determinism contract at
// every Parallelism x BatchSize corner: the rows a warm materialized view
// serves are byte-identical to the live defining scan that built it, and
// the warm read costs zero model calls.
func TestViewReadsByteIdenticalToLiveScan(t *testing.T) {
	w := testWorld()
	const defQ = "SELECT name, capital, population FROM country"
	for _, par := range []int{1, 4} {
		for _, batch := range []int{1, 3} {
			t.Run(fmt.Sprintf("par=%d batch=%d", par, batch), func(t *testing.T) {
				cfg := viewTestConfig()
				cfg.Parallelism = par
				cfg.BatchSize = batch
				e := newTestEngine(t, w, llm.ProfileMedium, cfg)
				live, err := e.Query(defQ)
				if err != nil {
					t.Fatal(err)
				}
				if err := e.Exec("CREATE MATERIALIZED VIEW v AS " + defQ); err != nil {
					t.Fatal(err)
				}
				warm, err := e.Query("SELECT name, capital, population FROM v")
				if err != nil {
					t.Fatal(err)
				}
				if got, want := FormatResult(warm.Result), FormatResult(live.Result); got != want {
					t.Fatalf("view rows differ from live scan:\nlive:\n%s\nview:\n%s", want, got)
				}
				if warm.Usage.Calls != 0 {
					t.Fatalf("warm view read cost %d model calls, want 0", warm.Usage.Calls)
				}
				if len(warm.Scans) != 1 || warm.Scans[0].Materialized != "v" {
					t.Fatalf("scan stats not marked materialized: %+v", warm.Scans)
				}
				if warm.Scans[0].Label() != "materialized" {
					t.Fatalf("label = %q, want materialized", warm.Scans[0].Label())
				}
				if warm.Scans[0].RowsEmitted != len(warm.Result.Rows) {
					t.Fatalf("emitted %d != rows %d", warm.Scans[0].RowsEmitted, len(warm.Result.Rows))
				}
			})
		}
	}
}

// TestViewRefreshReasksOnlyColdFingerprints is the incremental-maintenance
// property: REFRESH issues live calls for exactly the fingerprints that
// were invalidated, and a fully-warm refresh issues none.
func TestViewRefreshReasksOnlyColdFingerprints(t *testing.T) {
	w := testWorld()
	cfg := viewTestConfig()
	cfg.Temperature = 0 // single deterministic enumeration round
	cfg.Votes = 1
	cfg.CacheDir = t.TempDir()
	e := newTestEngine(t, w, llm.ProfileMedium, cfg)
	defer e.Close()

	if err := e.Exec("CREATE MATERIALIZED VIEW v AS SELECT name, capital FROM country"); err != nil {
		t.Fatal(err)
	}
	info, ok := e.View("v")
	if !ok || info.Rows == 0 || info.LastLiveCalls == 0 {
		t.Fatalf("build info: %+v", info)
	}

	// Fully warm refresh: every fingerprint of the defining query is still
	// in the prompt cache, so nothing reaches the live model.
	before := e.TotalUsage()
	if err := e.Exec("REFRESH MATERIALIZED VIEW v"); err != nil {
		t.Fatal(err)
	}
	diff := e.TotalUsage().Sub(before)
	if live := diff.Calls - diff.CachedCalls; live != 0 {
		t.Fatalf("all-warm refresh made %d live calls, want 0", live)
	}
	info, _ = e.View("v")
	if info.Refreshes != 1 || info.LastLiveCalls != 0 {
		t.Fatalf("refresh info: %+v", info)
	}
	if info.LastWarmFingerprints == 0 {
		t.Fatalf("refresh probe found no warm fingerprints: %+v", info)
	}

	// Invalidate a handful of cached completions; the next refresh must
	// re-ask exactly those prompts live.
	reqs, err := e.ViewRequests("v")
	if err != nil {
		t.Fatal(err)
	}
	invalidated := 0
	for _, req := range reqs {
		if invalidated == 5 {
			break
		}
		invalidated += e.InvalidateCachedCompletions(req)
	}
	if invalidated != 5 {
		t.Fatalf("invalidated %d cached completions, want 5 (manifest %d)", invalidated, len(reqs))
	}
	before = e.TotalUsage()
	if err := e.Exec("REFRESH MATERIALIZED VIEW v"); err != nil {
		t.Fatal(err)
	}
	diff = e.TotalUsage().Sub(before)
	if live := diff.Calls - diff.CachedCalls; live != invalidated {
		t.Fatalf("partial refresh made %d live calls, want %d", live, invalidated)
	}
	info, _ = e.View("v")
	if info.Refreshes != 2 || info.LastLiveCalls != invalidated {
		t.Fatalf("partial refresh info: %+v", info)
	}
	if info.LastColdFingerprints < invalidated {
		t.Fatalf("probe reported %d cold, want >= %d", info.LastColdFingerprints, invalidated)
	}
}

// TestViewDropAndRefreshEvictCachedPlans checks the generation contract:
// cached plans (including prepared statements) never serve a dropped or
// rebuilt view.
func TestViewDropAndRefreshEvictCachedPlans(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileMedium, viewTestConfig())
	if err := e.Exec("CREATE MATERIALIZED VIEW v AS SELECT name, capital FROM country"); err != nil {
		t.Fatal(err)
	}
	stmt, err := e.Prepare("SELECT name FROM v")
	if err != nil {
		t.Fatal(err)
	}
	first, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Scans) != 1 || first.Scans[0].Materialized != "v" {
		t.Fatalf("prepared read not served by view: %+v", first.Scans)
	}

	// REFRESH bumps the generation: the handle re-prepares and keeps
	// serving the (rebuilt) view.
	if err := e.Exec("REFRESH MATERIALIZED VIEW v"); err != nil {
		t.Fatal(err)
	}
	again, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if FormatResult(again.Result) != FormatResult(first.Result) {
		t.Fatalf("rows changed across refresh of an unchanged world")
	}

	// DROP bumps it again: the cached plan must not survive.
	if err := e.Exec("DROP MATERIALIZED VIEW v"); err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); err == nil {
		t.Fatalf("prepared statement still served a dropped view")
	}
	if _, err := e.Query("SELECT name FROM v"); err == nil {
		t.Fatalf("ad-hoc query still served a dropped view")
	}
}

// TestViewTTLExpiryFallsBackToLiveScans checks the freshness policy: after
// Config.ViewTTLReads warm reads the view goes stale, later statements plan
// live retrieval again, and REFRESH re-arms the view.
func TestViewTTLExpiryFallsBackToLiveScans(t *testing.T) {
	w := testWorld()
	cfg := viewTestConfig()
	cfg.ViewTTLReads = 2
	e := newTestEngine(t, w, llm.ProfileMedium, cfg)
	if err := e.Exec("CREATE MATERIALIZED VIEW v AS SELECT name, capital FROM country"); err != nil {
		t.Fatal(err)
	}
	q := "SELECT name, capital FROM v"
	var rendered []string
	for i := 0; i < 2; i++ {
		res, err := e.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Usage.Calls != 0 {
			t.Fatalf("read %d: %d model calls on a fresh view", i, res.Usage.Calls)
		}
		rendered = append(rendered, FormatResult(res.Result))
	}
	info, _ := e.View("v")
	if !info.Stale || info.Reads != 2 {
		t.Fatalf("after TTL reads: %+v", info)
	}
	// The third read plans against the live fallback.
	res, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.Calls == 0 {
		t.Fatalf("stale view served without live calls")
	}
	if len(res.Scans) != 1 || res.Scans[0].Materialized != "" {
		t.Fatalf("stale read still marked materialized: %+v", res.Scans)
	}
	// Fallback rows equal the view rows (unchanged world, deterministic
	// model): the freshness transition is invisible in the data.
	if FormatResult(res.Result) != rendered[0] {
		t.Fatalf("live fallback rows differ from view rows")
	}
	// REFRESH re-arms freshness.
	if err := e.Exec("REFRESH MATERIALIZED VIEW v"); err != nil {
		t.Fatal(err)
	}
	res, err = e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.Calls != 0 || len(res.Scans) != 1 || res.Scans[0].Materialized != "v" {
		t.Fatalf("refresh did not re-arm the view: calls=%d scans=%+v", res.Usage.Calls, res.Scans)
	}
	info, _ = e.View("v")
	if info.Stale || info.Reads != 1 {
		t.Fatalf("after refresh: %+v", info)
	}
}

// TestViewExplainShowsSubstitution checks the EXPLAIN surface.
func TestViewExplainShowsSubstitution(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileMedium, viewTestConfig())
	if err := e.Exec("CREATE MATERIALIZED VIEW v AS SELECT name, capital FROM country"); err != nil {
		t.Fatal(err)
	}
	text, err := e.Explain("SELECT name FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "materialized=v age=0") {
		t.Fatalf("EXPLAIN missing view annotation:\n%s", text)
	}
	if _, err := e.Query("SELECT name FROM v"); err != nil {
		t.Fatal(err)
	}
	text, err = e.Explain("SELECT capital FROM v")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "materialized=v age=1") {
		t.Fatalf("EXPLAIN age not counting warm reads:\n%s", text)
	}
}

// TestViewStatementRoutingAndErrors checks the statement surface: DDL is
// Exec-only, Query rejects it, and lifecycle errors are reported.
func TestViewStatementRoutingAndErrors(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileMedium, viewTestConfig())
	if _, err := e.Query("CREATE MATERIALIZED VIEW v AS SELECT name FROM country"); err == nil {
		t.Fatalf("Query accepted view DDL")
	}
	if err := e.Exec("REFRESH MATERIALIZED VIEW nope"); err == nil {
		t.Fatalf("refresh of unknown view succeeded")
	}
	if err := e.Exec("DROP MATERIALIZED VIEW nope"); err == nil {
		t.Fatalf("drop of unknown view succeeded")
	}
	if err := e.Exec("CREATE MATERIALIZED VIEW country AS SELECT name FROM country"); err == nil {
		t.Fatalf("view shadowing a virtual table succeeded")
	}
	if err := e.Exec("CREATE MATERIALIZED VIEW v AS SELECT name FROM country WHERE name = $1"); err == nil {
		t.Fatalf("parameterized defining query succeeded")
	}
	if err := e.Exec("CREATE MATERIALIZED VIEW v AS SELECT name FROM country"); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec("CREATE MATERIALIZED VIEW v AS SELECT name FROM country"); err == nil {
		t.Fatalf("duplicate view succeeded")
	}
	views := e.Views()
	if len(views) != 1 || views[0].Name != "v" {
		t.Fatalf("views: %+v", views)
	}
	st := e.ViewStats()
	if st.Created != 1 {
		t.Fatalf("view stats: %+v", st)
	}
}

// TestGroupViewStatsAggregation checks that session-local view activity is
// folded into the group's operator stats, across live and closed sessions.
func TestGroupViewStatsAggregation(t *testing.T) {
	w := testWorld()
	g, err := NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), viewTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range w.DomainNames() {
		g.RegisterWorldDomain(w.Domain(name))
	}
	s1 := g.Session()
	if err := s1.Exec("CREATE MATERIALIZED VIEW v AS SELECT name FROM country"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Query("SELECT name FROM v"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Exec("REFRESH MATERIALIZED VIEW v"); err != nil {
		t.Fatal(err)
	}
	st := g.Stats().Views
	if st.Created != 1 || st.WarmReads != 1 || st.Refreshes != 1 {
		t.Fatalf("live session stats: %+v", st)
	}
	g.CloseSession(s1)
	st = g.Stats().Views
	if st.Created != 1 || st.WarmReads != 1 || st.Refreshes != 1 {
		t.Fatalf("closed session stats lost: %+v", st)
	}
}
