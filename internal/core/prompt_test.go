package core

import (
	"strings"
	"testing"

	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

func promptTable() *VirtualTable {
	return &VirtualTable{
		Name:        "country",
		Description: "a sovereign country of the world",
		Schema: rel.NewSchema(
			rel.Column{Name: "name", Type: rel.TypeText, Key: true, Desc: "the country's name"},
			rel.Column{Name: "capital", Type: rel.TypeText, Desc: "the capital city"},
			rel.Column{Name: "population", Type: rel.TypeInt, Desc: "population in millions"},
		),
	}
}

func TestBuildListPrompt(t *testing.T) {
	filter, err := sql.ParseExpr("population > 50")
	if err != nil {
		t.Fatal(err)
	}
	p := buildListPrompt(promptTable(), []int{0, 2}, filter, []string{"France", "Japan"}, 40)
	for _, want := range []string{
		"TASK: LIST",
		"TABLE: country -- a sovereign country of the world",
		"name -- the country's name",
		"population -- population in millions",
		"FILTER: population > 50",
		"population is greater than 50",
		"EXCLUDE: France | Japan",
		"MAXROWS: 40",
	} {
		if !strings.Contains(p, want) {
			t.Errorf("prompt missing %q:\n%s", want, p)
		}
	}
	if strings.Contains(p, "capital") {
		t.Error("unneeded column leaked into prompt")
	}
}

func TestBuildKeysPrompt(t *testing.T) {
	p := buildKeysPrompt(promptTable(), nil, nil, 0)
	if !strings.Contains(p, "TASK: KEYS") {
		t.Errorf("keys prompt:\n%s", p)
	}
	if !strings.Contains(p, "name -- the country's name") {
		t.Errorf("key column missing:\n%s", p)
	}
	if strings.Contains(p, "FILTER") || strings.Contains(p, "MAXROWS") {
		t.Errorf("unexpected optional lines:\n%s", p)
	}
}

func TestBuildAttrPrompt(t *testing.T) {
	p := buildAttrPrompt(promptTable(), "France", 1)
	for _, want := range []string{"TASK: ATTR", "ENTITY: France", "COLUMN: capital -- the capital city"} {
		if !strings.Contains(p, want) {
			t.Errorf("attr prompt missing %q:\n%s", want, p)
		}
	}
}

func TestFilterQualifiersStripped(t *testing.T) {
	filter, err := sql.ParseExpr("c.population > 50 AND c.name LIKE 'A%'")
	if err != nil {
		t.Fatal(err)
	}
	p := buildListPrompt(promptTable(), []int{0, 1, 2}, filter, nil, 0)
	if strings.Contains(p, "c.population") {
		t.Errorf("qualifier leaked:\n%s", p)
	}
	if !strings.Contains(p, "FILTER: population > 50 AND name LIKE 'A%'") {
		t.Errorf("canonical filter wrong:\n%s", p)
	}
}

func TestVerbalizePredicate(t *testing.T) {
	cases := map[string]string{
		"population > 50":   "population is greater than 50",
		"a = 1 AND b < 2":   "a equals 1 and b is less than 2",
		"x BETWEEN 1 AND 5": "x is between 1 and 5",
		"name LIKE 'A%'":    "name matches the pattern 'A%'",
		"c IN ('x', 'y')":   "c is one of 'x', 'y'",
		"c NOT IN ('x')":    "c is none of 'x'",
		"v IS NULL":         "v is unknown",
		"v IS NOT NULL":     "v is known",
		"NOT (a = 1)":       "not (a equals 1)",
		"population >= 10":  "population is at least 10",
		"population <= 10":  "population is at most 10",
		"population <> 10":  "population differs from 10",
	}
	for in, want := range cases {
		e, err := sql.ParseExpr(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got := VerbalizePredicate(e); got != want {
			t.Errorf("Verbalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNeededColumns(t *testing.T) {
	schema := promptTable().Schema
	// nil mask = all columns.
	cols := neededColumns(schema, nil)
	if len(cols) != 3 {
		t.Fatalf("all: %v", cols)
	}
	// Key always included even when masked out.
	cols = neededColumns(schema, []bool{false, false, true})
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Fatalf("masked: %v", cols)
	}
}
