package core

import (
	"fmt"
	"strings"
	"testing"

	"llmsql/internal/exec"
	"llmsql/internal/llm"
)

// ktaEngine wires an engine over a scriptModel with the key-then-attr
// strategy at the given parallelism/batch/limit-pushdown settings.
func ktaEngine(model llm.Model, mut func(*Config)) *Engine {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Temperature = 0
	if mut != nil {
		mut(&cfg)
	}
	e := New(model, cfg)
	e.RegisterTable(storeTable())
	return e
}

// countryScript answers KEYS with n countries and every ATTR/ATTRS prompt
// deterministically from the entity name, so any subset of the fan-out
// yields the same cell values.
func countryScript(n int) func(req llm.CompletionRequest) string {
	return func(req llm.CompletionRequest) string {
		switch {
		case strings.Contains(req.Prompt, "TASK: KEYS"):
			var b strings.Builder
			for i := 0; i < n; i++ {
				fmt.Fprintf(&b, "Country%02d\n", i)
			}
			return b.String()
		case strings.Contains(req.Prompt, "TASK: ATTRS"):
			// Batched: echo "<entity> | <value>" per requested entity.
			line := entityLine(req.Prompt)
			var b strings.Builder
			for _, k := range strings.Split(line, " | ") {
				if strings.Contains(req.Prompt, "COLUMN: capital") {
					fmt.Fprintf(&b, "%s | City-%s\n", k, k)
				} else {
					fmt.Fprintf(&b, "%s | %d\n", k, 10+len(k))
				}
			}
			return b.String()
		case strings.Contains(req.Prompt, "COLUMN: capital"):
			return "City-" + entityLine(req.Prompt)
		default:
			return "42"
		}
	}
}

// entityLine extracts the ENTITY/ENTITIES payload of an ATTR prompt.
func entityLine(prompt string) string {
	for _, line := range strings.Split(prompt, "\n") {
		if rest, ok := strings.CutPrefix(line, "ENTITY: "); ok {
			return rest
		}
		if rest, ok := strings.CutPrefix(line, "ENTITIES: "); ok {
			return rest
		}
	}
	return ""
}

// attrCallsFor counts model calls whose prompt attributes the given entity.
func attrCallsFor(m *scriptModel, entity string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, req := range m.calls {
		if strings.Contains(req.Prompt, "ENTITY: "+entity) ||
			(strings.Contains(req.Prompt, "ENTITIES: ") && strings.Contains(req.Prompt, entity)) {
			n++
		}
	}
	return n
}

// TestLimitPushdownPropertyByteIdentical is the determinism contract of the
// streaming scan: for every Parallelism x BatchSize x LIMIT combination the
// pushed plan returns byte-identical rows to the unpushed plan (which
// materializes the whole table), never spending more calls.
func TestLimitPushdownPropertyByteIdentical(t *testing.T) {
	w := parWorld()
	query := func(k int) string {
		if k < 0 {
			return "SELECT name, capital, population FROM country"
		}
		return fmt.Sprintf("SELECT name, capital, population FROM country LIMIT %d", k)
	}
	run := func(parallelism, batch, k int, push bool) *QueryResult {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyKeyThenAttr
		cfg.Votes = 2
		cfg.MaxRounds = 2
		cfg.Temperature = 0.7
		cfg.Parallelism = parallelism
		cfg.BatchSize = batch
		cfg.LimitPushdown = push
		res, err := worldEngine(w, cfg).Query(query(k))
		if err != nil {
			t.Fatalf("P=%d B=%d k=%d push=%v: %v", parallelism, batch, k, push, err)
		}
		return res
	}
	for _, k := range []int{1, 3, 7, 1000, -1} {
		for _, b := range []int{1, 3, 8} {
			// The reference for this batch size: serial and fully
			// materializing. (Batching itself changes which prompts are
			// issued, so references are per batch size; see Table 10 for
			// the batching contract.)
			want := renderRows(run(1, b, k, false).Result.Rows)
			for _, p := range []int{1, 4, 8} {
				unpushed := run(p, b, k, false)
				pushed := run(p, b, k, true)
				if got := renderRows(unpushed.Result.Rows); got != want {
					t.Fatalf("P=%d B=%d k=%d unpushed rows diverged from reference", p, b, k)
				}
				if got := renderRows(pushed.Result.Rows); got != want {
					t.Fatalf("P=%d B=%d k=%d pushed rows diverged:\n%s\nvs\n%s", p, b, k, got, want)
				}
				if pushed.Usage.Calls > unpushed.Usage.Calls {
					t.Fatalf("P=%d B=%d k=%d pushed spent more calls (%d) than unpushed (%d)",
						p, b, k, pushed.Usage.Calls, unpushed.Usage.Calls)
				}
				if k == 1 && pushed.Usage.Calls >= unpushed.Usage.Calls {
					t.Fatalf("P=%d B=%d LIMIT 1 did not save calls: %d vs %d",
						p, b, pushed.Usage.Calls, unpushed.Usage.Calls)
				}
			}
		}
	}
}

// TestLimitBoundsAttrCalls pins the acceptance bound: LIMIT k attributes at
// most k plus one prefetch window of keys, each costing attrCols x votes
// prompts, instead of the whole table.
func TestLimitBoundsAttrCalls(t *testing.T) {
	const tableRows = 40
	model := &scriptModel{respond: countryScript(tableRows)}
	votes := 3
	parallelism := 8
	e := ktaEngine(model, func(c *Config) {
		c.Votes = votes
		c.Parallelism = parallelism
	})
	res, err := e.Query("SELECT name, capital, population FROM country LIMIT 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) != 4 {
		t.Fatalf("rows: %d", len(res.Result.Rows))
	}
	attrCols := 2
	window := 2 // PrefetchWindow(8, 2 cols, 3 votes, batch 1, limit 4)
	maxAttr := (4 + window) * attrCols * votes
	attr := model.callCount() - 1 // one KEYS round at temperature 0
	if attr > maxAttr {
		t.Fatalf("LIMIT 4 issued %d ATTR calls, want <= %d", attr, maxAttr)
	}
	if full := tableRows * attrCols * votes; attr >= full {
		t.Fatalf("limit did not reduce the fan-out: %d vs full %d", attr, full)
	}
	if s := res.Scans[0]; s.KeysAttributed >= tableRows || s.KeysAttributed < 4 {
		t.Fatalf("keys attributed: %+v", s)
	}
}

// TestKeyGateBlocksAttrSpend is the satellite bugfix: keys that a key-only
// pushed conjunct rejects must never generate attribute prompts, and must
// be counted in KeysGated.
func TestKeyGateBlocksAttrSpend(t *testing.T) {
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		if strings.Contains(req.Prompt, "TASK: KEYS") {
			// The model ignores the pushed filter: an untrusted source.
			return "France\nJapan\nGermany"
		}
		if strings.Contains(req.Prompt, "COLUMN: capital") {
			return "City-" + entityLine(req.Prompt)
		}
		return "42"
	}}
	e := ktaEngine(model, nil)
	res, err := e.Query("SELECT name, capital FROM country WHERE name = 'France'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) != 1 || res.Result.Rows[0][0].AsText() != "France" {
		t.Fatalf("rows: %v", res.Result.Rows)
	}
	if s := res.Scans[0]; s.KeysGated != 2 || s.KeysAttributed != 1 {
		t.Fatalf("gate stats: %+v", s)
	}
	for _, rejected := range []string{"Japan", "Germany"} {
		if n := attrCallsFor(model, rejected); n != 0 {
			t.Fatalf("gated key %s still got %d attribute prompts", rejected, n)
		}
	}
	if n := attrCallsFor(model, "France"); n != 1 { // one needed column
		t.Fatalf("France attribute prompts: %d", n)
	}
}

// TestUntrustedSourceViolations drives the scan with completions that
// violate the pushdown and limit hints in every direction; the executor's
// re-filter and the limit node must still produce exactly the unpushed
// plan's rows.
func TestUntrustedSourceViolations(t *testing.T) {
	t.Run("filtered-out keys returned", func(t *testing.T) {
		model := &scriptModel{respond: func(req llm.CompletionRequest) string {
			if strings.Contains(req.Prompt, "TASK: KEYS") {
				return "Nope\nFrance\nAlsoNope"
			}
			return "7"
		}}
		e := ktaEngine(model, nil)
		res, err := e.Query("SELECT name, population FROM country WHERE name = 'France' LIMIT 5")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Result.Rows) != 1 || res.Result.Rows[0][0].AsText() != "France" {
			t.Fatalf("rows: %v", res.Result.Rows)
		}
	})

	t.Run("extra rows beyond the limit", func(t *testing.T) {
		// The scan over-fetches (window rounding) and the source returns
		// plenty; the executor's LimitNode truncates to exactly k.
		model := &scriptModel{respond: countryScript(30)}
		e := ktaEngine(model, func(c *Config) { c.Parallelism = 16 })
		res, err := e.Query("SELECT name, capital FROM country LIMIT 3")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Result.Rows) != 3 {
			t.Fatalf("rows: %d", len(res.Result.Rows))
		}
	})

	t.Run("short response under-fills the limit", func(t *testing.T) {
		// Fewer keys than LIMIT k: the scan must emit everything it has —
		// under-fetch is never allowed — and the query returns them all.
		model := &scriptModel{respond: countryScript(2)}
		e := ktaEngine(model, nil)
		res, err := e.Query("SELECT name, capital FROM country LIMIT 10")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Result.Rows) != 2 {
			t.Fatalf("rows: %d", len(res.Result.Rows))
		}
	})

	t.Run("filter violations plus limit", func(t *testing.T) {
		// Keys 0..29, but only every third key has population > 20 per the
		// attribute answers; the pushed limit must not cause under-fetch
		// when the re-filter rejects most rows.
		model := &scriptModel{respond: func(req llm.CompletionRequest) string {
			switch {
			case strings.Contains(req.Prompt, "TASK: KEYS"):
				var b strings.Builder
				for i := 0; i < 30; i++ {
					fmt.Fprintf(&b, "K%02d\n", i)
				}
				return b.String()
			case strings.Contains(req.Prompt, "COLUMN: capital"):
				return "City-" + entityLine(req.Prompt)
			default:
				// population: 30 for K00, K03, K06...; 5 otherwise.
				key := entityLine(req.Prompt)
				var idx int
				fmt.Sscanf(key, "K%d", &idx)
				if idx%3 == 0 {
					return "30"
				}
				return "5"
			}
		}}
		run := func(push bool) *QueryResult {
			model.mu.Lock()
			model.calls = nil
			model.mu.Unlock()
			e := ktaEngine(model, func(c *Config) { c.LimitPushdown = push })
			res, err := e.Query("SELECT name, population FROM country WHERE population > 20 LIMIT 4")
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		pushed, unpushed := run(true), run(false)
		if renderRows(pushed.Result.Rows) != renderRows(unpushed.Result.Rows) {
			t.Fatalf("pushed rows diverged:\n%s\nvs\n%s",
				renderRows(pushed.Result.Rows), renderRows(unpushed.Result.Rows))
		}
		if len(pushed.Result.Rows) != 4 {
			t.Fatalf("rows: %d", len(pushed.Result.Rows))
		}
	})
}

// TestScanAbandonedEarlyFlushesStats: a stream closed before exhaustion
// (how a LIMIT abandons a scan) must still publish its statistics, counting
// only the consumed rows.
func TestScanAbandonedEarlyFlushesStats(t *testing.T) {
	model := &scriptModel{respond: countryScript(10)}
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Temperature = 0
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	it, err := s.Scan(exec.ScanRequest{Table: "country", Schema: storeTable().Schema, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); !ok || err != nil {
		t.Fatalf("first row: ok=%v err=%v", ok, err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	stats := s.TakeStats()
	if len(stats) != 1 {
		t.Fatalf("stats not flushed on early close: %d entries", len(stats))
	}
	if stats[0].RowsEmitted != 1 {
		t.Fatalf("rows emitted: %+v", stats[0])
	}
	if stats[0].KeysAttributed >= 10 {
		t.Fatalf("early close still attributed everything: %+v", stats[0])
	}
	// Closing again is a no-op; no duplicate stats entry.
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if extra := s.TakeStats(); len(extra) != 0 {
		t.Fatalf("double close duplicated stats: %d", len(extra))
	}
}
