package core

import (
	"testing"

	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/world"
)

// batchTestQuery retrieves two attribute columns, so the key-then-attr
// phase has real fan-out to batch.
const batchTestQuery = "SELECT name, capital, population FROM country"

func batchTestEngine(t *testing.T, strategy Strategy, batch, parallelism int, profile llm.NoiseProfile) *Engine {
	t.Helper()
	w := world.Generate(world.Config{Seed: 21, Countries: 80, Movies: 10, Laureates: 5, Companies: 5})
	cfg := DefaultConfig()
	cfg.Strategy = strategy
	cfg.Votes = 3
	cfg.MaxRounds = 3
	cfg.BatchSize = batch
	cfg.Parallelism = parallelism
	e := New(llm.NewSynthLM(w, profile, 21), cfg)
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}
	return e
}

func queryRows(t *testing.T, e *Engine, query string) (*QueryResult, string) {
	t.Helper()
	res, err := e.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	return res, renderRowsTest(res)
}

// TestBatchNoOpOnEnumerationStrategies: BatchSize only affects the
// key-then-attr ATTR phase; full-table and paged results must be
// byte-identical at any batch size.
func TestBatchNoOpOnEnumerationStrategies(t *testing.T) {
	for _, strat := range []Strategy{StrategyFullTable, StrategyPaged} {
		_, base := queryRows(t, batchTestEngine(t, strat, 1, 1, llm.ProfileMedium), batchTestQuery)
		res, batched := queryRows(t, batchTestEngine(t, strat, 8, 1, llm.ProfileMedium), batchTestQuery)
		if base != batched {
			t.Fatalf("%s: BatchSize changed rows", strat)
		}
		for _, s := range res.Scans {
			if s.BatchedPrompts != 0 || s.BatchFallbacks != 0 {
				t.Fatalf("%s: batching stats on a non-ATTR strategy: %+v", strat, s)
			}
		}
	}
}

// TestBatchSameKeysFewerPrompts: on key-then-attr, batching must preserve
// the retrieved key set and row order exactly (phase 1 is untouched and the
// merge is key-ordered) while cutting prompts by roughly the batch factor.
func TestBatchSameKeysFewerPrompts(t *testing.T) {
	base, baseRows := queryRows(t, batchTestEngine(t, StrategyKeyThenAttr, 1, 1, llm.ProfileMedium), batchTestQuery)
	batched, batchedRows := queryRows(t, batchTestEngine(t, StrategyKeyThenAttr, 8, 1, llm.ProfileMedium), batchTestQuery)

	keysOf := func(s string) []string {
		var keys []string
		for _, line := range splitLines(s) {
			if i := indexByte(line, '|'); i >= 0 {
				keys = append(keys, line[:i])
			}
		}
		return keys
	}
	bk, ck := keysOf(baseRows), keysOf(batchedRows)
	if len(bk) != len(ck) {
		t.Fatalf("row count changed: %d vs %d", len(bk), len(ck))
	}
	for i := range bk {
		if bk[i] != ck[i] {
			t.Fatalf("key order changed at %d: %q vs %q", i, bk[i], ck[i])
		}
	}
	if batched.Usage.Calls*4 > base.Usage.Calls {
		t.Fatalf("batch 8 should cut calls >= 4x: %d vs %d", batched.Usage.Calls, base.Usage.Calls)
	}
	if batched.Scans[0].BatchedPrompts == 0 {
		t.Fatal("no batched prompts recorded")
	}
}

// TestBatchDeterministicAcrossParallelism: the batched path must stay
// byte-identical at any worker-pool width (run under -race in CI, this also
// exercises the two-stage fan-out for data races).
func TestBatchDeterministicAcrossParallelism(t *testing.T) {
	_, serial := queryRows(t, batchTestEngine(t, StrategyKeyThenAttr, 8, 1, llm.ProfileMedium), batchTestQuery)
	for _, p := range []int{2, 8, 16} {
		res, rows := queryRows(t, batchTestEngine(t, StrategyKeyThenAttr, 8, p, llm.ProfileMedium), batchTestQuery)
		if rows != serial {
			t.Fatalf("parallelism %d changed batched rows", p)
		}
		if res.Scans[0].Prompts == 0 {
			t.Fatal("no prompts recorded")
		}
	}
}

// TestBatchFallbackRepairsCells: a noisy model malformes batched lines at a
// visible rate; those cells must be re-asked individually and counted.
func TestBatchFallbackRepairsCells(t *testing.T) {
	res, _ := queryRows(t, batchTestEngine(t, StrategyKeyThenAttr, 8, 4, llm.ProfileSmall), batchTestQuery)
	s := res.Scans[0]
	if s.BatchFallbacks == 0 {
		t.Fatalf("small profile (15%% format error) should force fallbacks: %+v", s)
	}
	if s.Prompts <= s.BatchedPrompts {
		t.Fatalf("fallback prompts missing from Prompts: %+v", s)
	}
	if s.RowsEmitted == 0 {
		t.Fatal("no rows")
	}
}

// TestParseAttrBatchCompletion pins the tolerant multi-row parser: lines
// match keys case-insensitively in any order, repairs cover bullets and
// colon separators, refusals are found-but-not-ok, and unattributable or
// missing lines signal fallback via found=false.
func TestParseAttrBatchCompletion(t *testing.T) {
	keys := []string{"France", "Japan", "Brazil", "Kenya", "Chile"}
	text := "Here are the values:\n" +
		"japan | Tokyo\n" + // reordered + lowercased: still attributable
		"- France | Paris\n" + // bullet repair
		"Brazil: Brasilia\n" + // colon separator repair
		"Kenya | unknown\n" + // refusal: found but no vote
		"Santiago\n" // dropped key: unattributable, Chile must fall back
	vals, ok, found := parseAttrBatchCompletion(text, keys, rel.TypeText, true)

	wantFound := []bool{true, true, true, true, false}
	wantOK := []bool{true, true, true, false, false}
	wantVal := []string{"Paris", "Tokyo", "Brasilia", "", ""}
	for i := range keys {
		if found[i] != wantFound[i] || ok[i] != wantOK[i] {
			t.Fatalf("%s: found=%v ok=%v, want %v/%v", keys[i], found[i], ok[i], wantFound[i], wantOK[i])
		}
		if wantOK[i] && vals[i].AsText() != wantVal[i] {
			t.Fatalf("%s: value %q, want %q", keys[i], vals[i].AsText(), wantVal[i])
		}
	}

	// Strict parsing accepts only exact "key | value" lines.
	_, okStrict, foundStrict := parseAttrBatchCompletion(text, keys, rel.TypeText, false)
	if !foundStrict[1] || !okStrict[1] {
		t.Fatal("strict parser should still accept the plain japan line")
	}
	if foundStrict[0] || foundStrict[2] {
		t.Fatal("strict parser must reject bullet and colon repairs")
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
