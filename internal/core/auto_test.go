package core

import (
	"strings"
	"testing"

	"llmsql/internal/llm"
	"llmsql/internal/world"
)

func autoTestEngine(t *testing.T, mut func(*Config)) (*Engine, *world.World) {
	t.Helper()
	w := world.Generate(world.Config{Seed: 11, Countries: 40, Movies: 20, Laureates: 10, Companies: 10})
	cfg := DefaultConfig()
	cfg.Strategy = StrategyAuto
	if mut != nil {
		mut(&cfg)
	}
	e := New(llm.NewSynthLM(w, llm.ProfileMedium, 11), cfg)
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}
	return e, w
}

// TestExplainAutoDecision: EXPLAIN of an auto-strategy engine surfaces the
// chosen decomposition and the full per-strategy cost breakdown.
func TestExplainAutoDecision(t *testing.T) {
	e, _ := autoTestEngine(t, nil)
	out, err := e.Explain("SELECT name, capital FROM country WHERE population > 50")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"auto=", "est-rows=40", "full-table:", "paged:", "key-then-attr:", "$"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
}

// TestExplainForcedStrategyDecision: with a fixed strategy the decision is
// reported as forced, candidates stay advisory.
func TestExplainForcedStrategyDecision(t *testing.T) {
	e, _ := autoTestEngine(t, func(c *Config) { c.Strategy = StrategyKeyThenAttr })
	out, err := e.Explain("SELECT name FROM country")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "strategy=key-then-attr") {
		t.Fatalf("EXPLAIN should report the forced strategy:\n%s", out)
	}
	if strings.Contains(out, "auto=") {
		t.Fatalf("forced strategy must not be labelled auto:\n%s", out)
	}
}

// TestAutoQueryRunsChosenStrategy: executing under auto resolves to a
// concrete strategy, reports it in ScanStats with the Auto flag, and the
// chosen strategy matches the planner's annotation.
func TestAutoQueryRunsChosenStrategy(t *testing.T) {
	e, _ := autoTestEngine(t, nil)
	res, err := e.Query("SELECT name, capital FROM country")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scans) != 1 {
		t.Fatalf("want 1 scan, got %d", len(res.Scans))
	}
	s := res.Scans[0]
	if !s.Auto {
		t.Fatal("ScanStats.Auto not set under StrategyAuto")
	}
	if s.Strategy == StrategyAuto {
		t.Fatal("ScanStats.Strategy must be the resolved strategy, not auto")
	}
	if !strings.Contains(res.Plan, "auto="+s.Strategy.String()) {
		t.Fatalf("plan annotation (%s) disagrees with executed strategy %s", res.Plan, s.Strategy)
	}
	if len(res.Result.Rows) == 0 {
		t.Fatal("auto scan returned no rows")
	}
}

// TestAutoCardinalityRefinement: prior-scan statistics replace the
// registration estimate in later decisions.
func TestAutoCardinalityRefinement(t *testing.T) {
	e, _ := autoTestEngine(t, nil)
	d, ok := e.store.ScanDecision("country", nil, nil, 0)
	if !ok {
		t.Fatal("no decision for registered table")
	}
	if d.EstRows != 40 {
		t.Fatalf("initial estimate should come from world metadata (40), got %d", d.EstRows)
	}
	res, err := e.Query("SELECT name FROM country")
	if err != nil {
		t.Fatal(err)
	}
	got := len(res.Result.Rows)
	d, _ = e.store.ScanDecision("country", nil, nil, 0)
	if d.EstRows != got {
		t.Fatalf("estimate after scan should equal observed rows %d, got %d", got, d.EstRows)
	}
}

// TestFilteredScanDoesNotPolluteCardinality: a pushed-down predicate makes
// the emitted row count a selectivity artifact; it must not overwrite the
// table's cardinality estimate.
func TestFilteredScanDoesNotPolluteCardinality(t *testing.T) {
	e, _ := autoTestEngine(t, nil)
	if _, err := e.Query("SELECT name FROM country WHERE population > 5000"); err != nil {
		t.Fatal(err)
	}
	d, _ := e.store.ScanDecision("country", nil, nil, 0)
	if d.EstRows != 40 {
		t.Fatalf("filtered scan changed the cardinality estimate: %d", d.EstRows)
	}
	// An unfiltered scan still refines it.
	res, err := e.Query("SELECT name FROM country")
	if err != nil {
		t.Fatal(err)
	}
	d, _ = e.store.ScanDecision("country", nil, nil, 0)
	if d.EstRows != len(res.Result.Rows) {
		t.Fatalf("unfiltered scan should refine the estimate to %d, got %d", len(res.Result.Rows), d.EstRows)
	}
}

// TestAutoDeterministic: two identical engines make identical decisions and
// return byte-identical rows under auto.
func TestAutoDeterministic(t *testing.T) {
	run := func() (string, string) {
		e, _ := autoTestEngine(t, nil)
		out, err := e.Explain("SELECT name, capital FROM country")
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Query("SELECT name, capital FROM country")
		if err != nil {
			t.Fatal(err)
		}
		return out, renderRowsTest(res)
	}
	p1, r1 := run()
	p2, r2 := run()
	if p1 != p2 {
		t.Fatalf("plans differ:\n%s\nvs\n%s", p1, p2)
	}
	if r1 != r2 {
		t.Fatal("rows differ between identical auto engines")
	}
}

func renderRowsTest(res *QueryResult) string {
	var b strings.Builder
	for _, row := range res.Result.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
