package core

import (
	"fmt"
	"sync"

	"llmsql/internal/exec"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// NamedArgs binds :name parameters by name: pass one NamedArgs (or plain
// map[string]any) as the sole argument of Query/Stmt.Query.
type NamedArgs map[string]any

// prepare returns the prepared form of query, consulting the plan cache
// first (keyed on normalized SQL text, so case/whitespace/comment/placeholder
// spelling differences share one plan).
func (e *Engine) prepare(query string) (*preparedQuery, error) {
	gen := e.generation()
	var key string
	if e.plans != nil {
		k, err := sql.Normalize(query)
		if err != nil {
			return nil, err
		}
		key = k
		if pq := e.plans.get(key, gen); pq != nil {
			return pq, nil
		}
	}
	pq, err := e.planQuery(query, gen)
	if err != nil {
		return nil, err
	}
	if e.plans != nil {
		e.plans.put(key, pq)
	}
	return pq, nil
}

// planQuery parses, classifies and plans one statement. This is the single
// classification path behind Query, QueryAnalyze, Explain and Prepare:
// SELECT, EXPLAIN SELECT and EXPLAIN ANALYZE SELECT are all accepted
// everywhere and behave identically.
func (e *Engine) planQuery(query string, gen uint64) (*preparedQuery, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	pq := &preparedQuery{gen: gen}
	switch st := stmt.(type) {
	case *sql.SelectStmt:
		pq.kind, pq.sel = kindSelect, st
	case *sql.ExplainStmt:
		pq.sel = st.Stmt
		if st.Analyze {
			pq.kind = kindExplainAnalyze
		} else {
			pq.kind = kindExplain
		}
	case *sql.CreateTableStmt, *sql.InsertStmt:
		return nil, fmt.Errorf("core: use Exec for CREATE TABLE and INSERT statements")
	case *sql.CreateViewStmt, *sql.RefreshViewStmt, *sql.DropViewStmt:
		return nil, fmt.Errorf("core: use Exec for materialized view statements")
	default:
		return nil, fmt.Errorf("core: unsupported statement %T", stmt)
	}
	// Stale views fall back to live retrieval: their references become
	// derived tables over the defining query before planning, so the name
	// never resolves to the expired row store. Fresh views plan as ordinary
	// row-store scans, annotated for EXPLAIN. Both passes are skipped when
	// no views exist, keeping the view-free plan path allocation-identical.
	hasViews := e.hasViews()
	if hasViews {
		e.expandStaleViews(pq.sel, map[string]bool{})
	}
	node, err := plan.PlanOpts(pq.sel, e.catalog(), e.planOptions())
	if err != nil {
		return nil, err
	}
	if hasViews {
		e.annotateViewScans(node)
	}
	pq.node = node
	pq.params = sql.CollectParams(pq.sel)
	if len(pq.params) > 0 {
		if pq.params[0].Name != "" {
			pq.named = true
		} else {
			for _, p := range pq.params {
				if p.Ordinal > pq.nparams {
					pq.nparams = p.Ordinal
				}
			}
		}
	}
	return pq, nil
}

// run executes a prepared query with the given arguments. forceAnalyze
// additionally profiles per-operator row counts (QueryAnalyze); the second
// return is the analyzed plan text when profiling ran.
func (e *Engine) run(pq *preparedQuery, args []any, forceAnalyze bool) (*QueryResult, string, error) {
	node := pq.node
	// EXPLAIN (without ANALYZE) may render a parameterized plan unbound —
	// placeholders appear as $n — but binds when arguments are supplied.
	if len(pq.params) > 0 && !(pq.kind == kindExplain && len(args) == 0) {
		binds, err := e.makeBindings(pq, args)
		if err != nil {
			return nil, "", err
		}
		bound, err := plan.Bind(pq.node, binds)
		if err != nil {
			return nil, "", err
		}
		node = bound
	} else if len(args) > 0 {
		return nil, "", fmt.Errorf("sql: statement has no parameters but %d argument(s) supplied", len(args))
	}

	if pq.kind == kindExplain {
		return planTextResult(plan.Explain(node)), "", nil
	}

	before := e.model.Usage()
	e.store.TakeStats() // clear any stale stats
	var (
		res      *exec.Result
		analyzed string
	)
	if forceAnalyze || pq.kind == kindExplainAnalyze {
		r, prof, err := exec.ExecuteAnalyzed(node, e.source())
		if err != nil {
			return nil, "", err
		}
		res = r
		analyzed = plan.ExplainWithRows(node, prof.Rows)
	} else {
		r, err := exec.Execute(node, e.source())
		if err != nil {
			return nil, "", err
		}
		res = r
	}
	after := e.model.Usage()
	qr := &QueryResult{
		Result: res,
		Usage:  after.Sub(before),
		Scans:  e.store.TakeStats(),
		Plan:   plan.Explain(node),
	}
	if pq.kind == kindExplainAnalyze {
		// Like a real database, EXPLAIN ANALYZE returns the annotated plan as
		// the result rows; the query's own rows are discarded after execution.
		qr.Result = planTextResult(analyzed).Result
	}
	return qr, analyzed, nil
}

// planTextResult wraps rendered plan text as a one-column result.
func planTextResult(text string) *QueryResult {
	schema := rel.NewSchema(rel.Column{Name: "plan", Type: rel.TypeText})
	var rows []rel.Row
	for _, line := range planTextLines(text) {
		rows = append(rows, rel.Row{rel.Text(line)})
	}
	return &QueryResult{Result: &exec.Result{Schema: schema, Rows: rows}, Plan: text}
}

func planTextLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// makeBindings converts Go argument values into typed bindings and validates
// them against the statement's parameter set (exact match: no unbound
// placeholders, no extra arguments).
func (e *Engine) makeBindings(pq *preparedQuery, args []any) (*sql.Bindings, error) {
	if pq.named {
		if len(args) != 1 {
			return nil, fmt.Errorf("sql: statement uses named parameters; pass one NamedArgs map")
		}
		var raw map[string]any
		switch m := args[0].(type) {
		case NamedArgs:
			raw = m
		case map[string]any:
			raw = m
		default:
			return nil, fmt.Errorf("sql: statement uses named parameters; pass NamedArgs, got %T", args[0])
		}
		vals := make(map[string]rel.Value, len(raw))
		for k, a := range raw {
			v, err := toValue(a)
			if err != nil {
				return nil, fmt.Errorf("sql: argument %q: %w", k, err)
			}
			vals[k] = v
		}
		if err := sql.ValidateBindings(pq.sel, 0, vals); err != nil {
			return nil, err
		}
		return sql.NewNamed(vals), nil
	}
	vals := make([]rel.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("sql: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	if err := sql.ValidateBindings(pq.sel, len(vals), nil); err != nil {
		return nil, err
	}
	return sql.NewPositional(vals), nil
}

// toValue converts a Go value into a typed SQL value.
func toValue(a any) (rel.Value, error) {
	switch v := a.(type) {
	case nil:
		return rel.Null(), nil
	case rel.Value:
		return v, nil
	case bool:
		return rel.Bool(v), nil
	case int:
		return rel.Int(int64(v)), nil
	case int8:
		return rel.Int(int64(v)), nil
	case int16:
		return rel.Int(int64(v)), nil
	case int32:
		return rel.Int(int64(v)), nil
	case int64:
		return rel.Int(v), nil
	case uint:
		return rel.Int(int64(v)), nil
	case uint8:
		return rel.Int(int64(v)), nil
	case uint16:
		return rel.Int(int64(v)), nil
	case uint32:
		return rel.Int(int64(v)), nil
	case uint64:
		if v > 1<<63-1 {
			return rel.Value{}, fmt.Errorf("uint64 value %d overflows INT", v)
		}
		return rel.Int(int64(v)), nil
	case float32:
		return rel.Float(float64(v)), nil
	case float64:
		return rel.Float(v), nil
	case string:
		return rel.Text(v), nil
	default:
		return rel.Value{}, fmt.Errorf("unsupported argument type %T", a)
	}
}

// Stmt is a prepared statement: it owns the parsed AST and planned tree of
// one SELECT (or EXPLAIN [ANALYZE] SELECT) and executes it repeatedly with
// different parameter bindings, without re-parsing or re-planning. Handles
// survive plan-cache eviction (they hold their own plan) and transparently
// re-prepare when the engine's catalog or cost model changes.
type Stmt struct {
	eng *Engine
	src string

	mu sync.Mutex
	pq *preparedQuery
}

// Prepare parses and plans query once, returning a reusable handle.
// Parameters ($1/?/:name) stay unbound until Query is called.
func (e *Engine) Prepare(query string) (*Stmt, error) {
	pq, err := e.prepare(query)
	if err != nil {
		return nil, err
	}
	return &Stmt{eng: e, src: query, pq: pq}, nil
}

// current returns the statement's plan, re-preparing if the engine's catalog
// generation moved since planning (a registered table or cost-model change
// could invalidate name resolution or the scan decisions).
func (s *Stmt) current() (*preparedQuery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pq.gen != s.eng.generation() {
		pq, err := s.eng.prepare(s.src)
		if err != nil {
			return nil, err
		}
		s.pq = pq
	}
	return s.pq, nil
}

// Query executes the prepared statement with the given arguments bound to
// its parameters: positionally for $n/?, or via one NamedArgs map for
// :name. Rows are byte-identical to Engine.Query of the same statement with
// the same values inlined as literals.
func (s *Stmt) Query(args ...any) (*QueryResult, error) {
	pq, err := s.current()
	if err != nil {
		return nil, err
	}
	qr, _, err := s.eng.run(pq, args, false)
	return qr, err
}

// QueryAnalyze executes the statement and additionally returns the plan
// annotated with observed per-operator row counts.
func (s *Stmt) QueryAnalyze(args ...any) (*QueryResult, string, error) {
	pq, err := s.current()
	if err != nil {
		return nil, "", err
	}
	return s.eng.run(pq, args, true)
}

// Explain renders the prepared plan without executing it. Parameters appear
// as placeholders ($n / :name).
func (s *Stmt) Explain() (string, error) {
	pq, err := s.current()
	if err != nil {
		return "", err
	}
	return plan.Explain(pq.node), nil
}
