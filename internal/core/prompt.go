package core

import (
	"fmt"
	"strings"

	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// VirtualTable declares one LLM-backed relation.
type VirtualTable struct {
	// Name is the table name used in SQL.
	Name string
	// Description is a one-line natural-language description of the
	// entity type ("a sovereign country of the world").
	Description string
	// Schema declares columns; Desc strings verbalise each column in
	// prompts; the first column (or Key-marked columns) identifies the
	// entity.
	Schema rel.Schema
	// EstRows, when positive, seeds the scan planner's cardinality
	// estimate for this table (RegisterWorldDomain fills it from the
	// domain size). Prior-scan statistics refine it; zero means unknown.
	EstRows int
}

const promptHeader = "You are a precise data assistant. Answer strictly from your world knowledge."

// buildListPrompt asks for full rows over the given column positions.
func buildListPrompt(t *VirtualTable, cols []int, filter sql.Expr, exclude []string, maxRows int) string {
	var b strings.Builder
	b.WriteString(promptHeader)
	b.WriteString("\nTASK: LIST\n")
	writeTableLine(&b, t)
	b.WriteString("COLUMNS: ")
	for i, c := range cols {
		if i > 0 {
			b.WriteString(" | ")
		}
		col := t.Schema.Col(c)
		b.WriteString(col.Name)
		if col.Desc != "" {
			b.WriteString(" -- ")
			b.WriteString(col.Desc)
		}
	}
	b.WriteByte('\n')
	writeFilterLines(&b, filter)
	writeExcludeLine(&b, exclude)
	if maxRows > 0 {
		fmt.Fprintf(&b, "MAXROWS: %d\n", maxRows)
	}
	b.WriteString("Respond with one row per line, fields separated by ' | ', in the column order given. Output data only, no commentary.")
	return b.String()
}

// buildKeysPrompt asks only for entity keys.
func buildKeysPrompt(t *VirtualTable, filter sql.Expr, exclude []string, maxRows int) string {
	var b strings.Builder
	b.WriteString(promptHeader)
	b.WriteString("\nTASK: KEYS\n")
	writeTableLine(&b, t)
	key := t.Schema.Col(t.Schema.KeyIndexes()[0])
	fmt.Fprintf(&b, "COLUMNS: %s -- %s\n", key.Name, key.Desc)
	writeFilterLines(&b, filter)
	writeExcludeLine(&b, exclude)
	if maxRows > 0 {
		fmt.Fprintf(&b, "MAXROWS: %d\n", maxRows)
	}
	fmt.Fprintf(&b, "Respond with one %s per line. Output data only, no commentary.", key.Name)
	return b.String()
}

// buildAttrPrompt asks for a single attribute of a single entity.
func buildAttrPrompt(t *VirtualTable, entityKey string, col int) string {
	var b strings.Builder
	b.WriteString(promptHeader)
	b.WriteString("\nTASK: ATTR\n")
	writeTableLine(&b, t)
	fmt.Fprintf(&b, "ENTITY: %s\n", entityKey)
	c := t.Schema.Col(col)
	fmt.Fprintf(&b, "COLUMN: %s -- %s\n", c.Name, c.Desc)
	b.WriteString("Respond with only the value.")
	return b.String()
}

// buildAttrBatchPrompt asks for one attribute of a batch of entities
// (Config.BatchSize > 1): the answer is expected as one
// "<entity> | <value>" line per entity, in the given order.
func buildAttrBatchPrompt(t *VirtualTable, entityKeys []string, col int) string {
	var b strings.Builder
	b.WriteString(promptHeader)
	b.WriteString("\nTASK: ATTRS\n")
	writeTableLine(&b, t)
	fmt.Fprintf(&b, "ENTITIES: %s\n", strings.Join(entityKeys, " | "))
	c := t.Schema.Col(col)
	fmt.Fprintf(&b, "COLUMN: %s -- %s\n", c.Name, c.Desc)
	b.WriteString("Respond with one line per entity, in the order given, formatted as '<entity> | <value>'. Output data only, no commentary.")
	return b.String()
}

func writeTableLine(b *strings.Builder, t *VirtualTable) {
	fmt.Fprintf(b, "TABLE: %s -- %s\n", strings.ToLower(t.Name), t.Description)
}

// writeFilterLines emits both the canonical condition (FILTER:) and a
// human-oriented sentence. The canonical line carries unqualified column
// names so the model can interpret it against the declared columns.
func writeFilterLines(b *strings.Builder, filter sql.Expr) {
	if filter == nil {
		return
	}
	canon := stripQualifiers(filter)
	fmt.Fprintf(b, "FILTER: %s\n", sql.Deparse(canon))
	fmt.Fprintf(b, "Only include rows where this condition holds: %s.\n", VerbalizePredicate(canon))
}

func writeExcludeLine(b *strings.Builder, exclude []string) {
	if len(exclude) == 0 {
		return
	}
	fmt.Fprintf(b, "EXCLUDE: %s\n", strings.Join(exclude, " | "))
	b.WriteString("Do not repeat any excluded entry.\n")
}

// stripQualifiers rewrites table-qualified column references to bare names,
// since prompts describe columns without aliases.
func stripQualifiers(e sql.Expr) sql.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sql.ColumnRef:
		return &sql.ColumnRef{Name: x.Name}
	case *sql.Literal:
		return x
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: x.Op, Left: stripQualifiers(x.Left), Right: stripQualifiers(x.Right)}
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, X: stripQualifiers(x.X)}
	case *sql.FuncCall:
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = stripQualifiers(a)
		}
		return &sql.FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{X: stripQualifiers(x.X), Not: x.Not}
	case *sql.InExpr:
		list := make([]sql.Expr, len(x.List))
		for i, a := range x.List {
			list[i] = stripQualifiers(a)
		}
		return &sql.InExpr{X: stripQualifiers(x.X), List: list, Not: x.Not}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{X: stripQualifiers(x.X), Lo: stripQualifiers(x.Lo), Hi: stripQualifiers(x.Hi), Not: x.Not}
	case *sql.LikeExpr:
		return &sql.LikeExpr{X: stripQualifiers(x.X), Pattern: stripQualifiers(x.Pattern), Not: x.Not}
	case *sql.CaseExpr:
		out := &sql.CaseExpr{Operand: stripQualifiers(x.Operand), Else: stripQualifiers(x.Else)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sql.WhenClause{Cond: stripQualifiers(w.Cond), Then: stripQualifiers(w.Then)})
		}
		return out
	case *sql.CastExpr:
		return &sql.CastExpr{X: stripQualifiers(x.X), Type: x.Type}
	default:
		return e
	}
}

// VerbalizePredicate renders a predicate as approximate English, e.g.
// "population > 50 AND continent = 'Europe'" becomes
// "population is greater than 50 and continent equals 'Europe'".
func VerbalizePredicate(e sql.Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *sql.ColumnRef:
		return x.Name
	case *sql.Literal:
		return x.Value.SQLLiteral()
	case *sql.BinaryExpr:
		l, r := VerbalizePredicate(x.Left), VerbalizePredicate(x.Right)
		switch x.Op {
		case sql.OpAnd:
			return l + " and " + r
		case sql.OpOr:
			return l + " or " + r
		case sql.OpEq:
			return l + " equals " + r
		case sql.OpNe:
			return l + " differs from " + r
		case sql.OpLt:
			return l + " is less than " + r
		case sql.OpLe:
			return l + " is at most " + r
		case sql.OpGt:
			return l + " is greater than " + r
		case sql.OpGe:
			return l + " is at least " + r
		default:
			return l + " " + x.Op.String() + " " + r
		}
	case *sql.UnaryExpr:
		if x.Op == "NOT" {
			return "not (" + VerbalizePredicate(x.X) + ")"
		}
		return x.Op + VerbalizePredicate(x.X)
	case *sql.IsNullExpr:
		if x.Not {
			return VerbalizePredicate(x.X) + " is known"
		}
		return VerbalizePredicate(x.X) + " is unknown"
	case *sql.InExpr:
		var items []string
		for _, it := range x.List {
			items = append(items, VerbalizePredicate(it))
		}
		verb := " is one of "
		if x.Not {
			verb = " is none of "
		}
		return VerbalizePredicate(x.X) + verb + strings.Join(items, ", ")
	case *sql.BetweenExpr:
		verb := " is between "
		if x.Not {
			verb = " is not between "
		}
		return VerbalizePredicate(x.X) + verb + VerbalizePredicate(x.Lo) + " and " + VerbalizePredicate(x.Hi)
	case *sql.LikeExpr:
		verb := " matches the pattern "
		if x.Not {
			verb = " does not match the pattern "
		}
		return VerbalizePredicate(x.X) + verb + VerbalizePredicate(x.Pattern)
	default:
		return sql.Deparse(e)
	}
}
