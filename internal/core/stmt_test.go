package core

import (
	"fmt"
	"strings"
	"testing"

	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/world"
)

func stmtTestEngine(t *testing.T, mut func(*Config)) *Engine {
	t.Helper()
	w := world.Generate(world.Config{Seed: 31, Countries: 60, Movies: 20, Laureates: 10, Companies: 10})
	cfg := DefaultConfig()
	cfg.MaxRounds = 3
	if mut != nil {
		mut(&cfg)
	}
	e := New(llm.NewSynthLM(w, llm.ProfileMedium, 31), cfg)
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}
	return e
}

// TestPreparedMatchesUnprepared: a prepared statement with bound values
// must return rows byte-identical to the same statement with the values
// inlined as literals, across the execution-shape knobs (the bound plan is
// the planned parameterized plan with literals substituted, so every
// downstream pipeline sees identical inputs).
func TestPreparedMatchesUnprepared(t *testing.T) {
	for _, shape := range []struct{ parallelism, batch int }{
		{1, 1}, {4, 1}, {1, 4}, {8, 4},
	} {
		mut := func(c *Config) {
			c.Strategy = StrategyKeyThenAttr
			c.Parallelism = shape.parallelism
			c.BatchSize = shape.batch
		}
		for _, threshold := range []int64{10, 55} {
			prep := stmtTestEngine(t, mut)
			stmt, err := prep.Prepare("SELECT name, capital FROM country WHERE population > $1")
			if err != nil {
				t.Fatal(err)
			}
			bound, err := stmt.Query(threshold)
			if err != nil {
				t.Fatal(err)
			}
			plain := stmtTestEngine(t, mut)
			inlined, err := plain.Query(fmt.Sprintf(
				"SELECT name, capital FROM country WHERE population > %d", threshold))
			if err != nil {
				t.Fatal(err)
			}
			if renderRowsTest(bound) != renderRowsTest(inlined) {
				t.Fatalf("parallelism=%d batch=%d threshold=%d: prepared rows differ from inlined literals",
					shape.parallelism, shape.batch, threshold)
			}
		}
	}
}

// TestPlanCacheHits: repeated Query of the same normalized text must plan
// once; different spellings of the same statement share the entry.
func TestPlanCacheHits(t *testing.T) {
	e := stmtTestEngine(t, nil)
	for i, q := range []string{
		"SELECT name FROM country WHERE population > $1",
		"select name from country where population > ?;",
		"SELECT name -- c\n FROM country WHERE population > $1",
	} {
		if _, err := e.Query(q, int64(40+i)); err != nil {
			t.Fatal(err)
		}
	}
	s := e.PlanCacheStats()
	if s.Misses != 1 || s.Hits != 2 || s.Entries != 1 {
		t.Fatalf("spellings did not share one plan: %+v", s)
	}
}

// TestPlanCacheInvalidation: catalog and cost-model changes must discard
// cached plans, and outstanding Stmt handles must re-prepare.
func TestPlanCacheInvalidation(t *testing.T) {
	e := stmtTestEngine(t, nil)
	q := "SELECT name FROM country WHERE population > 40"
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if s := e.PlanCacheStats(); s.Entries != 1 {
		t.Fatalf("expected one cached plan: %+v", s)
	}
	e.CostModel(llm.DefaultCostModel())
	if s := e.PlanCacheStats(); s.Entries != 0 {
		t.Fatalf("cost-model change kept cached plans: %+v", s)
	}
	// A Stmt prepared before the invalidation transparently re-prepares.
	stmt, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	before, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	e.RegisterTable(VirtualTable{
		Name:        "scratch",
		Description: "a scratch table",
		Schema:      rel.NewSchema(rel.Column{Name: "k", Type: rel.TypeText, Key: true}),
		EstRows:     1,
	})
	after, err := stmt.Query()
	if err != nil {
		t.Fatalf("stmt did not survive invalidation: %v", err)
	}
	if renderRowsTest(before) != renderRowsTest(after) {
		t.Fatal("re-prepared stmt changed rows")
	}
}

// TestPlanCacheDisabled: PlanCacheCapacity < 0 turns the cache off without
// changing results.
func TestPlanCacheDisabled(t *testing.T) {
	e := stmtTestEngine(t, func(c *Config) { c.PlanCacheCapacity = -1 })
	q := "SELECT name FROM country WHERE population > 40"
	a, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if renderRowsTest(a) != renderRowsTest(b) {
		t.Fatal("rows differ across repeated queries")
	}
	if s := e.PlanCacheStats(); s != (PlanCacheStats{}) {
		t.Fatalf("disabled cache reported stats: %+v", s)
	}
}

// TestNamedParams: :name parameters bind via one NamedArgs map, with exact
// validation of the name set.
func TestNamedParams(t *testing.T) {
	e := stmtTestEngine(t, nil)
	q := "SELECT name FROM country WHERE population > :min AND population < :max"
	res, err := e.Query(q, NamedArgs{"min": 10, "max": 90})
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := e.Query("SELECT name FROM country WHERE population > 10 AND population < 90")
	if err != nil {
		t.Fatal(err)
	}
	if renderRowsTest(res) != renderRowsTest(inlined) {
		t.Fatal("named binding rows differ from inlined literals")
	}
	if _, err := e.Query(q, NamedArgs{"min": 10}); err == nil {
		t.Error("missing :max not reported")
	}
	if _, err := e.Query(q, NamedArgs{"min": 10, "max": 90, "x": 1}); err == nil {
		t.Error("extra name not reported")
	}
	if _, err := e.Query(q, 10, 90); err == nil {
		t.Error("positional args accepted for named statement")
	}
}

// TestBindingErrors: unbound, extra and ill-typed arguments produce clear
// errors instead of executing.
func TestBindingErrors(t *testing.T) {
	e := stmtTestEngine(t, nil)
	q := "SELECT name FROM country WHERE population > $1"
	if _, err := e.Query(q); err == nil || !strings.Contains(err.Error(), "unbound parameter $1") {
		t.Errorf("unbound param: %v", err)
	}
	if _, err := e.Query(q, 1, 2); err == nil {
		t.Errorf("extra arg accepted")
	}
	if _, err := e.Query(q, struct{}{}); err == nil || !strings.Contains(err.Error(), "unsupported argument type") {
		t.Errorf("unsupported type: %v", err)
	}
	if _, err := e.Query("SELECT name FROM country", 1); err == nil {
		t.Errorf("arg accepted for parameterless statement")
	}
}

// TestExplainStatements: EXPLAIN returns the plan as rows without
// executing; EXPLAIN ANALYZE executes and returns the annotated plan. The
// same classification applies to prepared statements.
func TestExplainStatements(t *testing.T) {
	e := stmtTestEngine(t, nil)
	q := "SELECT name FROM country WHERE population > 40"

	res, err := e.Query("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage.Calls != 0 {
		t.Fatalf("EXPLAIN executed the query: %d calls", res.Usage.Calls)
	}
	if len(res.Result.Rows) == 0 || res.Result.Schema.Names()[0] != "plan" {
		t.Fatalf("EXPLAIN did not return plan rows: %+v", res.Result.Schema.Names())
	}
	planText, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	var joined strings.Builder
	for _, row := range res.Result.Rows {
		joined.WriteString(row[0].AsText())
		joined.WriteByte('\n')
	}
	if joined.String() != planText {
		t.Fatalf("EXPLAIN rows differ from Explain():\n%s\nvs\n%s", joined.String(), planText)
	}

	ares, err := e.Query("EXPLAIN ANALYZE " + q)
	if err != nil {
		t.Fatal(err)
	}
	if ares.Usage.Calls == 0 {
		t.Fatal("EXPLAIN ANALYZE did not execute")
	}
	found := false
	for _, row := range ares.Result.Rows {
		if strings.Contains(row[0].AsText(), "rows=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN ANALYZE rows carry no row counts")
	}

	// Prepared EXPLAIN with a parameter renders the placeholder unbound and
	// binds when a value is supplied.
	stmt, err := e.Prepare("EXPLAIN SELECT name FROM country WHERE population > $1")
	if err != nil {
		t.Fatal(err)
	}
	unbound, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(renderRowsTest(unbound), "$1") {
		t.Fatal("unbound EXPLAIN lost the placeholder")
	}
	boundPlan, err := stmt.Query(40)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(renderRowsTest(boundPlan), "$1") {
		t.Fatal("bound EXPLAIN kept the placeholder")
	}
}
