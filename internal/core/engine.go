package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"llmsql/internal/exec"
	"llmsql/internal/expr"
	"llmsql/internal/llm"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
	"llmsql/internal/storage"
	"llmsql/internal/world"
)

// Engine is the user-facing facade: SQL in, typed rows plus a cost report
// out. Virtual (LLM-backed) tables and local row-store tables can be mixed
// freely in one query (hybrid execution).
type Engine struct {
	store   *LLMStore
	model   *llm.CountingModel
	cache   *llm.CacheModel // optional, per Config.CacheCapacity
	disk    *llm.DiskCache  // optional, per Config.CacheDir
	retrier *llm.Retrier    // fault tolerance, always present below the caches
	chaos   *llm.Chaos      // optional, per Config.Chaos
	local   *storage.DB     // optional
	plans   *planCache      // optional, per Config.PlanCacheCapacity
	// gen is the catalog generation: bumped whenever a change could make a
	// cached plan wrong (table registered, local store attached or written,
	// cost model replaced, materialized view created/refreshed/dropped or
	// gone stale). Cached plans carry the generation they were planned at
	// and are discarded on mismatch.
	gen atomic.Uint64

	// viewMu guards the materialized-view registry and counters below.
	// viewDB holds the materialized rows, one table per view, separate from
	// the user's local store so DROP MATERIALIZED VIEW can never collide
	// with user tables.
	viewMu     sync.Mutex
	viewDB     *storage.DB
	views      map[string]*matView
	viewTotals ViewStats
}

// New builds an engine over the model with the given configuration. It is
// Open without the error path: a persistent cache directory that cannot be
// opened panics here, so callers configuring Config.CacheDir at runtime
// should prefer Open.
func New(model llm.Model, cfg Config) *Engine {
	e, err := Open(model, cfg)
	if err != nil {
		panic("core: " + err.Error())
	}
	return e
}

// Open builds an engine over the model, assembling the backend stack the
// configuration asks for — outermost first:
//
//	CountingModel                       usage accounting (always)
//	CacheModel                          Config.CacheCapacity != 0
//	DiskCache                           Config.CacheDir != ""
//	Retrier                             fault tolerance (always)
//	Chaos                               Config.Chaos enabled
//	trace recorder | trace replayer     Config.RecordTrace / ReplayTrace
//	model                               the base backend
//
// The counting wrapper sits outside every cache, so hits are counted as
// calls but charged zero latency and dollars. The Retrier sits below the
// caches — a cache hit can never fault, and a retried answer is cached
// once — and above the fault injector, so retries see fresh fault draws.
// Chaos sits above the trace layer: recorded traces hold only clean
// completions, and a replayed suite can still be stressed with injected
// faults. A replay trace substitutes the base model entirely (only its
// name is used); a record trace captures exactly the traffic the caches
// let through.
func Open(model llm.Model, cfg Config) (*Engine, error) {
	base := model
	switch {
	case cfg.ReplayTrace != nil:
		base = cfg.ReplayTrace.Replay(model.Name())
	case cfg.RecordTrace != nil:
		base = cfg.RecordTrace.Record(model)
	}
	var chaos *llm.Chaos
	if cfg.Chaos.Enabled() {
		chaos = llm.NewChaos(base, cfg.Chaos)
		base = chaos
	}
	var retrier *llm.Retrier
	if !cfg.sharedFaultLayer {
		retrier = llm.NewRetrier(base, cfg.Retry)
		base = retrier
	}
	var disk *llm.DiskCache
	if cfg.CacheDir != "" {
		var err error
		disk, err = llm.NewDiskCache(base, cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("core: open cache dir %q: %w", cfg.CacheDir, err)
		}
		base = disk
	}
	var cache *llm.CacheModel
	if cfg.CacheCapacity != 0 {
		cache = llm.NewCacheSized(base, cfg.CacheCapacity)
		base = cache
	}
	counting := llm.NewCounting(base)
	var plans *planCache
	switch {
	case cfg.PlanCacheCapacity > 0:
		plans = newPlanCache(cfg.PlanCacheCapacity)
	case cfg.PlanCacheCapacity == 0:
		plans = newPlanCache(DefaultPlanCacheCapacity)
	}
	return &Engine{
		store:   NewLLMStore(counting, cfg),
		model:   counting,
		cache:   cache,
		disk:    disk,
		retrier: retrier,
		chaos:   chaos,
		plans:   plans,
	}, nil
}

// Close releases resources held by the backend stack (the persistent
// cache's segment file). The engine must not be used after Close; engines
// without a Config.CacheDir need not be closed.
func (e *Engine) Close() error {
	if e.disk == nil {
		return nil
	}
	return e.disk.Close()
}

// CostModel replaces the simulated cost constants, for both accounting and
// the scan planner's strategy pricing (they always share constants). Cached
// plans are invalidated: their scan-strategy decisions were priced under the
// old constants.
func (e *Engine) CostModel(c llm.CostModel) {
	e.model.Cost = c
	e.store.SetCostModel(c)
	if e.retrier != nil {
		// The Retrier prices failed attempts, backoff and hedge races in
		// virtual time under the same constants.
		e.retrier.SetCost(c)
	}
	e.invalidatePlans()
}

// generation returns the current catalog generation.
func (e *Engine) generation() uint64 { return e.gen.Load() }

// invalidatePlans bumps the catalog generation and empties the plan cache.
// Outstanding Stmt handles notice the bump and re-prepare on next use.
func (e *Engine) invalidatePlans() {
	e.gen.Add(1)
	if e.plans != nil {
		e.plans.purge()
	}
}

// PlanCacheStats reports the prepared-plan cache's counters (the zero value
// when the cache is disabled via Config.PlanCacheCapacity < 0).
func (e *Engine) PlanCacheStats() PlanCacheStats {
	if e.plans == nil {
		return PlanCacheStats{}
	}
	return e.plans.stats()
}

// CacheStats reports the completion cache's counters (the zero value when
// no cache is configured).
func (e *Engine) CacheStats() llm.CacheStats {
	if e.cache == nil {
		return llm.CacheStats{}
	}
	return e.cache.CacheStats()
}

// DiskCacheStats reports the persistent prompt cache's counters and
// occupancy (the zero value when no Config.CacheDir is configured).
func (e *Engine) DiskCacheStats() llm.DiskCacheStats {
	if e.disk == nil {
		return llm.DiskCacheStats{}
	}
	return e.disk.Stats()
}

// RetrierStats reports the fault-tolerance layer's recovery counters
// (all zero on a healthy stack).
func (e *Engine) RetrierStats() llm.RetrierStats {
	if e.retrier == nil {
		return llm.RetrierStats{}
	}
	return e.retrier.Stats()
}

// ChaosStats reports the fault injector's counters (the zero value when
// Config.Chaos is disabled).
func (e *Engine) ChaosStats() llm.ChaosStats {
	if e.chaos == nil {
		return llm.ChaosStats{}
	}
	return e.chaos.Stats()
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.store.Config() }

// RegisterTable declares a virtual LLM-backed table.
func (e *Engine) RegisterTable(t VirtualTable) {
	e.store.Register(t)
	e.invalidatePlans()
}

// RegisterWorldDomain declares a virtual table mirroring a synthetic-world
// domain's schema and descriptions (the usual setup for experiments). The
// domain size seeds the scan planner's cardinality estimate.
func (e *Engine) RegisterWorldDomain(d *world.Domain) {
	e.RegisterTable(VirtualTable{
		Name:        d.Name,
		Description: d.Description,
		Schema:      d.Schema,
		EstRows:     len(d.Entities),
	})
}

// AttachLocal registers a row-store database whose tables can be joined
// with virtual tables. Virtual tables shadow local ones of the same name.
func (e *Engine) AttachLocal(db *storage.DB) {
	e.local = db
	e.invalidatePlans()
}

// QueryResult bundles the rows with the execution report.
type QueryResult struct {
	// Result holds the output schema and rows.
	Result *exec.Result
	// Usage is the model consumption attributable to this query.
	Usage llm.Usage
	// Scans reports per-virtual-table retrieval statistics.
	Scans []ScanStats
	// Plan is the executed plan, rendered.
	Plan string
}

// Query plans and executes a SELECT (or EXPLAIN [ANALYZE] SELECT)
// statement. Parameter placeholders ($1/?/:name) are bound from args:
// positionally, or via one NamedArgs map for :name style. Plans are served
// from the engine's prepared-plan cache when the normalized statement text
// has been planned before.
//
// EXPLAIN returns the rendered plan as the result rows without executing;
// EXPLAIN ANALYZE executes and returns the plan annotated with observed
// per-operator row counts.
func (e *Engine) Query(query string, args ...any) (*QueryResult, error) {
	pq, err := e.prepare(query)
	if err != nil {
		return nil, err
	}
	qr, _, err := e.run(pq, args, false)
	return qr, err
}

// Exec runs a DDL/DML statement: CREATE TABLE and INSERT against the local
// row store (created automatically on first use), and the materialized-view
// lifecycle — CREATE MATERIALIZED VIEW ... AS SELECT, REFRESH MATERIALIZED
// VIEW, DROP MATERIALIZED VIEW. Virtual tables cannot be created or written
// this way — the model is read-only storage.
func (e *Engine) Exec(statement string) error {
	stmt, err := sql.Parse(statement)
	if err != nil {
		return err
	}
	switch st := stmt.(type) {
	case *sql.CreateTableStmt:
		if e.store.Has(st.Name) {
			return fmt.Errorf("core: %q is a virtual table; local CREATE would be shadowed", st.Name)
		}
		if e.local == nil {
			e.local = storage.NewDB()
		}
		cols := make([]rel.Column, len(st.Columns))
		for i, c := range st.Columns {
			cols[i] = rel.Column{Name: c.Name, Type: c.Type, Key: c.PrimaryKey}
		}
		if _, err := e.local.CreateTable(st.Name, rel.NewSchema(cols...)); err != nil {
			return err
		}
		e.invalidatePlans()
		return nil

	case *sql.InsertStmt:
		if e.store.Has(st.Table) {
			return fmt.Errorf("core: cannot INSERT into virtual table %q (the model is read-only)", st.Table)
		}
		if e.local == nil {
			return fmt.Errorf("core: unknown table %q", st.Table)
		}
		tbl, err := e.local.Table(st.Table)
		if err != nil {
			return err
		}
		if err := insertRows(tbl, st); err != nil {
			return err
		}
		// Inserted rows can change local-table statistics a cached plan's
		// join ordering relied on.
		e.invalidatePlans()
		return nil

	case *sql.CreateViewStmt:
		return e.createView(st)

	case *sql.RefreshViewStmt:
		return e.refreshView(st.Name)

	case *sql.DropViewStmt:
		return e.dropView(st.Name)

	case *sql.SelectStmt:
		return fmt.Errorf("core: use Query for SELECT statements")
	default:
		return fmt.Errorf("core: unsupported statement %T", stmt)
	}
}

// insertRows evaluates the literal rows of an INSERT and stores them,
// honouring an optional column list (missing columns become NULL).
func insertRows(tbl *storage.Table, st *sql.InsertStmt) error {
	schema := tbl.Schema()
	// Map insert position -> schema position.
	target := make([]int, 0, schema.Len())
	if len(st.Columns) == 0 {
		for i := 0; i < schema.Len(); i++ {
			target = append(target, i)
		}
	} else {
		for _, name := range st.Columns {
			idx := schema.IndexOf(name)
			if idx < 0 {
				return fmt.Errorf("core: table %s has no column %q", tbl.Name(), name)
			}
			target = append(target, idx)
		}
	}
	for rowIdx, exprs := range st.Rows {
		if len(exprs) != len(target) {
			return fmt.Errorf("core: row %d has %d values, want %d", rowIdx+1, len(exprs), len(target))
		}
		row := make(rel.Row, schema.Len())
		for i := range row {
			row[i] = rel.NullOf(schema.Col(i).Type)
		}
		for i, ex := range exprs {
			c, err := expr.Compile(ex, rel.Schema{})
			if err != nil {
				return fmt.Errorf("core: row %d value %d: %w", rowIdx+1, i+1, err)
			}
			v, err := c.Eval(nil)
			if err != nil {
				return fmt.Errorf("core: row %d value %d: %w", rowIdx+1, i+1, err)
			}
			row[target[i]] = v
		}
		if err := tbl.Insert(row); err != nil {
			return fmt.Errorf("core: row %d: %w", rowIdx+1, err)
		}
	}
	return nil
}

// QueryAnalyze executes the query and returns the result plus the plan
// annotated with per-operator row counts (EXPLAIN ANALYZE). A bare EXPLAIN
// statement is not executed; its analyzed-plan text is empty.
func (e *Engine) QueryAnalyze(query string, args ...any) (*QueryResult, string, error) {
	pq, err := e.prepare(query)
	if err != nil {
		return nil, "", err
	}
	return e.run(pq, args, true)
}

// Explain plans the query and renders the plan without executing it.
// Parameters appear as placeholders; an EXPLAIN [ANALYZE] prefix in the
// statement is accepted and ignored.
func (e *Engine) Explain(query string) (string, error) {
	pq, err := e.prepare(query)
	if err != nil {
		return "", err
	}
	return plan.Explain(pq.node), nil
}

// TotalUsage returns the model consumption since engine creation.
func (e *Engine) TotalUsage() llm.Usage { return e.model.Usage() }

// planOptions maps the engine configuration onto optimizer rule options:
// the advisory LIMIT hint on scans and the bind-join strategy.
func (e *Engine) planOptions() plan.Options {
	opts := plan.DefaultOptions()
	opts.LimitPushdown = e.store.Config().LimitPushdown
	opts.BindJoin = e.store.Config().BindJoin
	return opts
}

// catalog resolves virtual tables first, then materialized views, then
// local ones. Stale views never reach the catalog by name — planQuery
// expands them into their defining queries first — so a view table here is
// always servable.
func (e *Engine) catalog() plan.Catalog {
	cats := plan.MultiCatalog{e.store}
	if e.viewDB != nil {
		cats = append(cats, &exec.StorageCatalog{DB: e.viewDB})
	}
	if e.local != nil {
		cats = append(cats, &exec.StorageCatalog{DB: e.local})
	}
	return cats
}

// source routes scans to the LLM store or the local row store.
func (e *Engine) source() exec.Source {
	return &routingSource{engine: e}
}

type routingSource struct {
	engine *Engine
}

// Scan implements exec.Source.
func (r *routingSource) Scan(req exec.ScanRequest) (exec.RowIter, error) {
	if r.engine.store.Has(req.Table) {
		return r.engine.store.Scan(req)
	}
	if v := r.engine.freshView(req.Table); v != nil {
		return r.engine.scanView(v, req)
	}
	if r.engine.local != nil && r.engine.local.HasTable(req.Table) {
		src := &exec.StorageSource{DB: r.engine.local}
		return src.Scan(req)
	}
	return nil, fmt.Errorf("core: no source for table %q", req.Table)
}

// FormatResult renders a result as an aligned text table (for CLIs and
// examples).
func FormatResult(res *exec.Result) string {
	names := res.Schema.Names()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	cells := make([][]string, len(res.Rows))
	for ri, row := range res.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(fields []string) {
		for i, f := range fields {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(f)
			for p := len(f); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	sep := make([]string, len(names))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(res.Rows))
	return b.String()
}
