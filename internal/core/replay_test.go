package core

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"llmsql/internal/llm"
)

// replayConfig is the record/replay property-test workload shape: the
// key-then-attr hot path with voting, sampling and both fan-out axes live.
func replayConfig(parallelism, batch int) Config {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Votes = 2
	cfg.MaxRounds = 3
	cfg.Temperature = 0.7
	cfg.Parallelism = parallelism
	cfg.BatchSize = batch
	return cfg
}

// TestReplayByteIdenticalToLiveRun is the tentpole's determinism property:
// replaying a recorded trace reproduces the live SynthLM run byte-for-byte
// — result rows, scan stats and the full Usage accounting (calls, tokens,
// SimLatency, SimWall, dollars) — at any Parallelism x BatchSize.
func TestReplayByteIdenticalToLiveRun(t *testing.T) {
	w := parWorld()
	queries := []string{
		"SELECT name, capital, population FROM country",
		"SELECT name, capital FROM country WHERE population > 20 LIMIT 3",
	}
	trace := llm.NewTrace()
	type variant struct{ p, b int }
	variants := []variant{{1, 1}, {4, 1}, {8, 3}, {2, 4}}

	type outcome struct {
		rows  string
		usage llm.Usage
		scans []ScanStats
	}
	run := func(cfg Config, query string) outcome {
		t.Helper()
		e := New(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
		for _, name := range w.DomainNames() {
			e.RegisterWorldDomain(w.Domain(name))
		}
		res, err := e.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{rows: renderRows(res.Result.Rows), usage: res.Usage, scans: res.Scans}
	}

	// Live runs, recording every completion that reaches the model —
	// including speculative prefetch calls, which replay must also serve.
	live := map[variant]map[string]outcome{}
	for _, v := range variants {
		live[v] = map[string]outcome{}
		for _, q := range queries {
			cfg := replayConfig(v.p, v.b)
			cfg.RecordTrace = trace
			live[v][q] = run(cfg, q)
		}
	}
	if trace.Len() == 0 {
		t.Fatal("recording captured nothing")
	}

	// The fixture round-trips through disk like the checked-in one does.
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := trace.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := llm.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, v := range variants {
		for _, q := range queries {
			cfg := replayConfig(v.p, v.b)
			cfg.ReplayTrace = loaded
			got := run(cfg, q)
			want := live[v][q]
			if got.rows != want.rows {
				t.Fatalf("P=%d B=%d %q: replay changed rows", v.p, v.b, q)
			}
			if !usageEquivalent(got.usage, want.usage) {
				t.Fatalf("P=%d B=%d %q: replay changed usage:\nlive   %+v\nreplay %+v", v.p, v.b, q, want.usage, got.usage)
			}
			if !scanStatsEqual(got.scans, want.scans) {
				t.Fatalf("P=%d B=%d %q: replay changed scan stats:\nlive   %+v\nreplay %+v", v.p, v.b, q, want.scans, got.scans)
			}
		}
	}

	// A workload outside the trace fails loudly instead of fabricating.
	cfg := replayConfig(1, 1)
	cfg.ReplayTrace = loaded
	e := New(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}
	if _, err := e.Query("SELECT name, genre FROM movie"); err == nil {
		t.Fatal("unrecorded query must fail under replay")
	}
}

// usageEquivalent compares all integer-valued Usage fields exactly —
// calls, tokens, SimLatency and SimWall are duration/count sums and must
// reproduce bit-for-bit — and SimDollars to within float summation noise
// (the per-call dollar terms are added in completion order under a mutex,
// so the last ULP wobbles with goroutine scheduling even live-vs-live).
func usageEquivalent(a, b llm.Usage) bool {
	dollars := a.SimDollars - b.SimDollars
	if dollars < 0 {
		dollars = -dollars
	}
	a.SimDollars, b.SimDollars = 0, 0
	return a == b && dollars < 1e-12
}

// TestDiskCacheWarmSecondRunCostsNothing pins the warm-cache acceptance
// property: a second engine over the same cache directory answers the same
// workload with zero live model calls, and the scan attributes the disk
// hits.
func TestDiskCacheWarmSecondRunCostsNothing(t *testing.T) {
	w := parWorld()
	dir := t.TempDir()
	query := "SELECT name, capital, population FROM country"
	newDiskEngine := func() *Engine {
		cfg := replayConfig(8, 3)
		cfg.CacheDir = dir
		e := New(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
		for _, name := range w.DomainNames() {
			e.RegisterWorldDomain(w.Domain(name))
		}
		return e
	}

	cold := newDiskEngine()
	coldRes, err := cold.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.Usage.CachedCalls != 0 {
		t.Fatalf("cold run served from cache: %+v", coldRes.Usage)
	}
	if s := cold.DiskCacheStats(); s.Entries == 0 || s.Hits != 0 {
		t.Fatalf("cold disk stats: %+v", s)
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh engine, fresh process as far as the cache is concerned.
	warm := newDiskEngine()
	defer warm.Close()
	warmRes, err := warm.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if warmRes.Usage.CachedCalls != warmRes.Usage.Calls {
		t.Fatalf("warm run paid live calls: %+v", warmRes.Usage)
	}
	if warmRes.Usage.TotalTokens() != 0 || warmRes.Usage.SimDollars != 0 || warmRes.Usage.SimWall != 0 {
		t.Fatalf("warm run was charged: %+v", warmRes.Usage)
	}
	if renderRows(warmRes.Result.Rows) != renderRows(coldRes.Result.Rows) {
		t.Fatal("disk cache changed result rows")
	}
	var hits, misses int
	var bytes int64
	for _, s := range warmRes.Scans {
		hits += s.DiskHits
		misses += s.DiskMisses
		bytes += s.DiskBytes
	}
	if misses != 0 || hits == 0 || bytes <= 0 {
		t.Fatalf("warm scan disk counters: hits=%d misses=%d bytes=%d", hits, misses, bytes)
	}
	if hits != warmRes.Usage.Calls {
		t.Fatalf("disk hits (%d) must cover every consumed call (%d)", hits, warmRes.Usage.Calls)
	}

	// The warm cache shows up in the planner's estimates.
	plan, err := warm.Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "warm-hit=1.00") {
		t.Fatalf("EXPLAIN missing warm-hit discount:\n%s", plan)
	}
}

// TestScanStatsTierAttributionWithBothCaches pins per-scan counting with
// the memory and disk tiers stacked: a disk hit travels out through the
// memory layer's miss path with Cached still set, and must land in
// CacheMisses + DiskHits — never CacheHits.
func TestScanStatsTierAttributionWithBothCaches(t *testing.T) {
	w := parWorld()
	dir := t.TempDir()
	query := "SELECT name, capital FROM country"
	newBoth := func() *Engine {
		cfg := replayConfig(1, 1)
		cfg.CacheCapacity = 1 << 16
		cfg.CacheDir = dir
		e := New(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
		for _, name := range w.DomainNames() {
			e.RegisterWorldDomain(w.Domain(name))
		}
		return e
	}
	scanTotals := func(res *QueryResult) (memHits, memMisses, diskHits, diskMisses int) {
		for _, s := range res.Scans {
			memHits += s.CacheHits
			memMisses += s.CacheMisses
			diskHits += s.DiskHits
			diskMisses += s.DiskMisses
		}
		return
	}

	// Cold engine, cold disk: every call misses both tiers.
	e1 := newBoth()
	res, err := e1.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if mh, mm, dh, dm := scanTotals(res); mh != 0 || dh != 0 || mm != res.Usage.Calls || dm != res.Usage.Calls {
		t.Fatalf("cold/cold: mem %d/%d disk %d/%d (calls %d)", mh, mm, dh, dm, res.Usage.Calls)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh engine over the warm directory: the memory tier misses every
	// call, the disk tier serves every call.
	e2 := newBoth()
	defer e2.Close()
	res, err = e2.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if mh, mm, dh, dm := scanTotals(res); mh != 0 || mm != res.Usage.Calls || dh != res.Usage.Calls || dm != 0 {
		t.Fatalf("cold mem/warm disk: mem %d/%d disk %d/%d (calls %d)", mh, mm, dh, dm, res.Usage.Calls)
	}
	// Second query on the same engine: the memory tier now serves
	// everything and the disk index is never consulted.
	res, err = e2.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if mh, mm, dh, dm := scanTotals(res); mh != res.Usage.Calls || mm != 0 || dh != 0 || dm != 0 {
		t.Fatalf("warm mem: mem %d/%d disk %d/%d (calls %d)", mh, mm, dh, dm, res.Usage.Calls)
	}
}

// TestCacheAccountingConsistentUnderConcurrentScans hammers the in-memory
// and persistent caches from concurrent queries at Parallelism 8 with
// capacities small enough to evict constantly, then checks the cross-layer
// invariants: every counted call did exactly one memory-cache lookup, every
// memory miss did exactly one disk lookup, and CountingModel's CachedCalls
// agrees with the cache layers' own hit counters.
func TestCacheAccountingConsistentUnderConcurrentScans(t *testing.T) {
	w := parWorld()
	cfg := replayConfig(8, 3)
	cfg.CacheCapacity = 4 // far below the working set: constant eviction
	cfg.CacheDir = t.TempDir()
	e := New(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
	defer e.Close()
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}

	queries := []string{
		"SELECT name, capital FROM country",
		"SELECT name, population FROM country",
		"SELECT name, capital, population FROM country",
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := e.Query(queries[(g+i)%len(queries)]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	usage := e.TotalUsage()
	mem := e.CacheStats()
	disk := e.DiskCacheStats()
	if mem.Evictions == 0 {
		t.Fatalf("no eviction pressure: %+v", mem)
	}
	if mem.Size > mem.Capacity {
		t.Fatalf("memory cache exceeded its bound: %+v", mem)
	}
	if got := mem.Hits + mem.Misses; got != usage.Calls {
		t.Fatalf("memory lookups (%d) != counted calls (%d)", got, usage.Calls)
	}
	if got := disk.Hits + disk.Misses; got != mem.Misses {
		t.Fatalf("disk lookups (%d) != memory misses (%d)", got, mem.Misses)
	}
	if got := mem.Hits + disk.Hits; got != usage.CachedCalls {
		t.Fatalf("cache hits (%d mem + %d disk) != cached calls (%d)", mem.Hits, disk.Hits, usage.CachedCalls)
	}
	if disk.LiveBytes > disk.MaxBytes {
		t.Fatalf("disk cache exceeded its bound: %+v", disk)
	}
}
