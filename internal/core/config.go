// Package core implements the paper's primary contribution: a SQL query
// engine whose storage layer is a large language model. Virtual tables are
// declared with schemas and natural-language descriptions; scans are
// answered by prompting the model for tuples, parsing completions back into
// typed rows, deduplicating, optionally voting for self-consistency, and
// re-checking every pushed-down predicate — the model is treated as an
// untrusted index. Joins, aggregation and ordering run on the shared
// executor (internal/exec).
package core

import "llmsql/internal/llm"

// Strategy selects how a table scan is decomposed into prompts.
type Strategy int

const (
	// StrategyFullTable issues one LIST prompt asking for every row with
	// all needed columns (repeated across sampling rounds at temperature
	// > 0, unioning results).
	StrategyFullTable Strategy = iota
	// StrategyKeyThenAttr first enumerates entity keys (KEYS prompts),
	// then issues one small ATTR prompt per key and needed column —
	// the Galois-style decomposition. Self-consistency voting applies to
	// the ATTR calls.
	StrategyKeyThenAttr
	// StrategyPaged issues LIST prompts with MAXROWS pages and EXCLUDE
	// continuation until the model reports no further rows.
	StrategyPaged
	// StrategyAuto defers the choice to the cost-based scan planner: each
	// virtual-table scan prices the three decompositions above under the
	// engine's cost model and cardinality estimate and runs the cheapest.
	// The decision and its cost breakdown appear in EXPLAIN and ScanStats.
	StrategyAuto
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case StrategyKeyThenAttr:
		return "key-then-attr"
	case StrategyPaged:
		return "paged"
	case StrategyAuto:
		return "auto"
	default:
		return "full-table"
	}
}

// Config tunes the engine. The zero value is NOT usable; call
// DefaultConfig.
type Config struct {
	// Strategy picks the prompt decomposition.
	Strategy Strategy
	// Temperature for sampling; 0 is deterministic (a single round).
	Temperature float64
	// MaxRounds bounds repeated sampling of enumeration prompts.
	MaxRounds int
	// StableRounds stops sampling after this many consecutive rounds
	// that contribute no new entity (the convergence rule).
	StableRounds int
	// Votes is the self-consistency factor for attribute retrieval
	// (KeyThenAttr): each attribute is asked Votes times and the majority
	// value wins. 1 disables voting.
	Votes int
	// BatchSize groups up to this many entity keys into one ATTR prompt on
	// the key-then-attr path (one prompt asks for one column of N
	// entities), amortizing the per-prompt boilerplate. Values <= 1 keep
	// the one-key-per-prompt decomposition. Batched answers are parsed
	// tolerantly per key; keys whose batched line is missing or malformed
	// fall back to a single-key prompt, so the retrieved key set and row
	// order are identical to the unbatched path at any batch size.
	BatchSize int
	// PageSize is MAXROWS per prompt for StrategyPaged.
	PageSize int
	// Pushdown verbalises pushed filters into prompts when true; the
	// executor re-checks them either way. It also arms the key gate of the
	// key-then-attr pipeline: enumerated keys that a key-only pushed
	// conjunct rejects are dropped locally before any attribute prompt is
	// spent (they could never survive the executor's re-check).
	Pushdown bool
	// LimitPushdown lets `SELECT ... LIMIT k` terminate scans early: the
	// planner pushes an advisory row cap through prefix-safe operators
	// onto the scan, and the key-then-attr pipeline issues its attribute
	// prompts in demand-driven prefetch windows, launching no new window
	// once downstream has consumed enough rows. Results are byte-identical
	// to the unpushed plan at any Parallelism/BatchSize — the scan may
	// over-fetch at most one prefetch window, never under-fetch. Disabling
	// it restores the fully materializing scan (ablation/debugging).
	LimitPushdown bool
	// BindJoin lets joins pass sideways information into scans: the join
	// planner drains the cheaper join side first and pushes its distinct
	// join-key values into the other side's key-then-attr scan, which then
	// restricts the attribute fan-out (the dominant cost, attrCols x votes
	// prompts per key) to the batch groups containing bound keys. Key
	// enumeration still runs with the identical prompt — it is the
	// membership oracle that keeps bound results byte-identical to the
	// full scan, and it costs only O(rounds) calls — and the bind gate
	// drops whole batch groups (attributing up to BatchSize-1 rider keys
	// per kept group, masked from emission) so every issued prompt is one
	// the unbound scan would issue. Result rows are therefore
	// byte-identical to the hash-join plan at any Parallelism/BatchSize.
	// Applies when the bound scan's effective strategy is key-then-attr;
	// disabling restores the full build-side scan (ablation/debugging).
	BindJoin bool
	// Tolerant enables the repairing completion parser; when false only
	// perfectly formatted rows are accepted (ablation).
	Tolerant bool
	// Dedup removes duplicate entities from scan output (ablation).
	Dedup bool
	// MaxCompletionTokens bounds each completion (0 = model default).
	MaxCompletionTokens int
	// MinConfidence drops entities that appear in fewer than this fraction
	// of sampling rounds (hallucinations tend to be one-off while real
	// entities recur). 0 disables the filter; it only applies when more
	// than one round actually ran. Extension feature, swept in Table 8.
	MinConfidence float64
	// Parallelism bounds the number of model calls a scan may have in
	// flight at once: ATTR prompts and self-consistency votes of the
	// key-then-attr strategy fan out across a worker pool, and independent
	// sampling rounds of constant-prompt enumerations are prefetched
	// concurrently. 1 (the default) is the exact serial pipeline. Result
	// rows are byte-identical at every value — responses are merged in
	// deterministic key/column/round order, never completion order — and so
	// are ScanStats, except that with a cache configured the cache counters
	// of later scans can shift (speculative prefetch may warm the cache).
	// Usage may charge more at higher values: speculative round prefetch
	// issues up to Parallelism-1 calls the convergence rule then discards,
	// and those cost real tokens/latency/dollars exactly as they would
	// against a live API (wasted spend traded for wall-clock latency).
	Parallelism int
	// CacheCapacity, when non-zero, puts a bounded LRU completion cache of
	// that many entries in front of the model (negative values select the
	// default capacity). Cache hits cost no simulated latency or dollars.
	CacheCapacity int
	// CacheDir, when non-empty, layers a persistent on-disk prompt cache
	// (llm.DiskCache) under the in-memory one: completions are
	// content-addressed by a versioned fingerprint of model id + prompt +
	// decode parameters and survive across queries, engines and processes.
	// Hits cost no simulated latency or dollars, are attributed per scan in
	// ScanStats.DiskHits/DiskMisses/DiskBytes, and warm the scan planner's
	// estimates (a probed-warm scan's estimated $ and wall are discounted,
	// visible in EXPLAIN as warm-hit). Engines with a CacheDir should be
	// Closed to release the cache's segment file.
	CacheDir string
	// CacheMaxBytes bounds the persistent cache's live set (LRU by bytes);
	// values < 1 select llm.DefaultDiskCacheBytes. Meaningful only with
	// CacheDir.
	CacheMaxBytes int64
	// CoalesceCapacity bounds the completed-results memo of the serving-mode
	// request coalescer (EngineGroup only; single engines never coalesce).
	// 0 selects llm.DefaultCoalescerMemo; negative values disable the memo,
	// leaving pure in-flight single-flight. See llm.Coalescer.
	CoalesceCapacity int
	// PlanCacheCapacity bounds the engine's prepared-plan cache, an LRU of
	// planned statements keyed on normalized SQL text: repeated queries (and
	// prepared statements) skip re-parsing and re-planning. 0 selects
	// DefaultPlanCacheCapacity; negative values disable the cache. The cache
	// affects neither results nor model traffic — only front-end CPU work —
	// and is invalidated whenever the catalog or cost model changes.
	PlanCacheCapacity int
	// RecordTrace, when non-nil, wraps the base model so every completion
	// that actually reaches it (cache hits never do) is captured into the
	// trace, keyed by the same versioned fingerprint the caches use. Saved
	// traces are the replay fixtures behind deterministic CI.
	RecordTrace *llm.Trace
	// ReplayTrace, when non-nil, replaces the base model entirely: every
	// completion is answered from the trace by fingerprint (the model
	// argument of New/Open contributes only its name), and a request the
	// trace does not contain is an error. Replayed token counts reproduce
	// Usage — calls, tokens, SimWall, dollars — byte-identically on any
	// machine. ReplayTrace wins when both are set.
	ReplayTrace *llm.Trace
	// Seed offsets sampling seeds so experiments can decorrelate runs.
	Seed int64
	// Chaos, when any rate is positive, inserts a deterministic fault
	// injector (llm.Chaos) directly above the base model: transient errors,
	// rate-limit rejections, malformed completions and latency spikes are
	// drawn from a stream keyed on (Chaos.Seed, request fingerprint,
	// attempt number) — no wall clock, no global rand — so a chaos run is
	// exactly replayable at any Parallelism. The zero value injects
	// nothing. Chaos sits above RecordTrace/ReplayTrace, so recorded traces
	// stay clean and replayed suites can be stressed with faults.
	Chaos llm.ChaosProfile
	// Retry tunes the fault-tolerance layer (llm.Retrier) that sits below
	// the caches: typed error classification, capped exponential backoff
	// with deterministic jitter, a per-backend circuit breaker and optional
	// hedged requests (Retry.HedgeAfter). All waiting is virtual time —
	// backoff and failed attempts are charged into SimLatency/SimWall and
	// surfaced in ScanStats.RetriesSpent. Zero fields select
	// llm.DefaultRetryPolicy, under which the layer is a transparent no-op
	// until something actually fails.
	Retry llm.RetryPolicy
	// ViewTTLReads is the freshness budget of materialized views: a view
	// that has served this many warm reads since its last build or refresh
	// goes stale — later statements re-plan onto live retrieval until
	// REFRESH MATERIALIZED VIEW rebuilds it. Views age by use, never by
	// wall clock, so replayed runs expire views at identical points. 0 (the
	// default) means views never expire on their own.
	ViewTTLReads int
	// PartialResults lets scans survive exhausted retries instead of
	// failing the query: a key whose attribute call still fails after the
	// full retry budget is dropped from the result (counted in
	// ScanStats.KeysFailed), a failed batched call drops its whole batch
	// group, and a failed enumeration round stops enumeration at the keys
	// already found. Row guarantee under any fault seed: emitted rows are
	// byte-identical to the fault-free run whenever retries sufficed, and a
	// strict subset (in the same order) otherwise. Only retryable failures
	// degrade; fatal errors still abort the query.
	PartialResults bool

	// sharedFaultLayer marks a session config built by EngineGroup.Session:
	// the Retrier (and Chaos) live in the shared stack below the coalescer,
	// so Open must not add a second retry tier on top — stacked retriers
	// would multiply attempt budgets.
	sharedFaultLayer bool
}

// DefaultConfig returns the configuration used by the paper-style runs:
// full-table strategy, temperature 0.7, up to 8 rounds with a 2-round
// convergence rule, no voting, pushdown and all robustness features on.
func DefaultConfig() Config {
	return Config{
		Strategy:            StrategyFullTable,
		Temperature:         0.7,
		MaxRounds:           8,
		StableRounds:        2,
		Votes:               1,
		BatchSize:           1,
		PageSize:            40,
		Pushdown:            true,
		LimitPushdown:       true,
		BindJoin:            true,
		Tolerant:            true,
		Dedup:               true,
		MaxCompletionTokens: 0,
		Parallelism:         1,
		CacheCapacity:       0,
		Seed:                0,
	}
}

// normalize clamps nonsense values so a partially filled Config behaves.
func (c Config) normalize() Config {
	if c.MaxRounds < 1 {
		c.MaxRounds = 1
	}
	if c.StableRounds < 1 {
		c.StableRounds = 1
	}
	if c.Votes < 1 {
		c.Votes = 1
	}
	if c.BatchSize < 1 {
		c.BatchSize = 1
	}
	if c.PageSize < 1 {
		c.PageSize = 40
	}
	if c.Temperature < 0 {
		c.Temperature = 0
	}
	if c.MinConfidence < 0 {
		c.MinConfidence = 0
	}
	if c.MinConfidence > 1 {
		c.MinConfidence = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.ViewTTLReads < 0 {
		c.ViewTTLReads = 0
	}
	return c
}
