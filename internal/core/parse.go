package core

import (
	"strings"

	"llmsql/internal/rel"
)

// ParseStats counts what the tolerant parser had to do, for ablation and
// per-query reports.
type ParseStats struct {
	// LinesSeen counts non-empty completion lines.
	LinesSeen int
	// RowsParsed counts lines accepted as rows.
	RowsParsed int
	// RowsDropped counts lines rejected entirely.
	RowsDropped int
	// Repairs counts individual fixes (stripped bullets, padded fields,
	// rescued numerics, comma fallbacks, ...).
	Repairs int
}

// Add merges another stats value.
func (s *ParseStats) Add(o ParseStats) {
	s.LinesSeen += o.LinesSeen
	s.RowsParsed += o.RowsParsed
	s.RowsDropped += o.RowsDropped
	s.Repairs += o.Repairs
}

// parseListCompletion parses a LIST/KEYS completion into rows over the full
// table schema: fields arrive in the order of cols (positions into the
// schema); all other columns become typed NULLs. keyPos is the schema
// position of the entity key; rows with a NULL key are dropped.
//
// tolerant enables the repair heuristics; when false, only lines with the
// exact field count and cleanly parsing values are accepted.
func parseListCompletion(text string, schema rel.Schema, cols []int, keyPos int, tolerant bool) ([]rel.Row, ParseStats) {
	var stats ParseStats
	var rows []rel.Row
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		stats.LinesSeen++
		fields, repairs, ok := splitRowLine(line, len(cols), tolerant)
		if !ok {
			stats.RowsDropped++
			continue
		}
		stats.Repairs += repairs

		row := make(rel.Row, schema.Len())
		for i := range row {
			row[i] = rel.NullOf(schema.Col(i).Type)
		}
		bad := false
		for i, c := range cols {
			if i >= len(fields) {
				if !tolerant {
					bad = true
					break
				}
				stats.Repairs++ // padded missing field with NULL
				continue
			}
			v, rescued, err := parseField(fields[i], schema.Col(c).Type, tolerant)
			if err != nil {
				if !tolerant {
					bad = true
					break
				}
				stats.Repairs++ // unparseable value becomes NULL
				continue
			}
			if rescued {
				stats.Repairs++
			}
			row[c] = v
		}
		if bad || row[keyPos].IsNull() || strings.TrimSpace(row[keyPos].AsText()) == "" {
			stats.RowsDropped++
			continue
		}
		// Normalize the entity key once, here, so the emitted row, the
		// dedup/convergence key, exclusion lists and every downstream ATTR
		// prompt all agree on one spelling. Without this, whitespace
		// variants of one entity ("United  Kingdom") defeat dedup, desync
		// the prompt<->row pairing of the attribute phase, and miss the
		// completion cache. This is unconditional canonicalization, not a
		// repair: it applies (and is uncounted) under the strict parser
		// too, which accepts or rejects lines before this point.
		if schema.Col(keyPos).Type == rel.TypeText {
			if norm := normalizeKeyText(row[keyPos].AsText()); norm != row[keyPos].AsText() {
				row[keyPos] = rel.Text(norm)
			}
		}
		rows = append(rows, row)
		stats.RowsParsed++
	}
	return rows, stats
}

// normalizeKeyText canonicalizes an entity key's whitespace: edges
// trimmed, interior runs collapsed to single spaces. Parsing already trims
// field edges, so this is about interior variants.
func normalizeKeyText(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// splitRowLine turns a completion line into fields. It reports the number
// of repairs applied and whether the line is usable at all.
func splitRowLine(line string, wantFields int, tolerant bool) ([]string, int, bool) {
	repairs := 0
	if tolerant {
		// Strip decoration the model sometimes adds.
		for _, prefix := range []string{"- ", "* ", "Row: ", "row: "} {
			if strings.HasPrefix(line, prefix) {
				line = strings.TrimPrefix(line, prefix)
				repairs++
				break
			}
		}
		// Trailing period after a pipe row ("Row: a | b.").
		if strings.HasSuffix(line, ".") && strings.Contains(line, "|") {
			line = strings.TrimSuffix(line, ".")
		}
	}
	if strings.Contains(line, "|") {
		parts := strings.Split(line, "|")
		fields := make([]string, len(parts))
		for i, p := range parts {
			fields[i] = strings.TrimSpace(p)
		}
		if !tolerant && len(fields) != wantFields {
			return nil, 0, false
		}
		if len(fields) > wantFields {
			fields = fields[:wantFields]
			repairs++
		}
		if len(fields) < wantFields {
			repairs++ // will be padded by the caller
		}
		return fields, repairs, true
	}
	// No pipe separator.
	if wantFields == 1 {
		// A single-column answer; prose lines are filtered by heuristics:
		// skip obvious commentary (trailing colon, parenthesised notes).
		if looksLikeProse(line) {
			return nil, 0, false
		}
		return []string{strings.TrimSuffix(line, ".")}, repairs, true
	}
	if !tolerant {
		return nil, 0, false
	}
	// Comma fallback for rows emitted with the wrong separator.
	if strings.Count(line, ",") >= wantFields-1 {
		parts := strings.SplitN(line, ",", wantFields)
		fields := make([]string, len(parts))
		for i, p := range parts {
			fields[i] = strings.TrimSpace(p)
		}
		return fields, repairs + 1, true
	}
	return nil, 0, false
}

// looksLikeProse detects preamble/closing lines such as "Here are the rows:"
// or "(end of list)".
func looksLikeProse(line string) bool {
	if strings.HasSuffix(line, ":") {
		return true
	}
	if strings.HasPrefix(line, "(") && strings.HasSuffix(line, ")") {
		return true
	}
	lower := strings.ToLower(line)
	for _, marker := range []string{"here are", "no further", "i do not", "i don't", "end of list", "i'm not sure", "as requested"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// parseField parses one field into the column type. rescued reports that a
// lenient extraction was needed (a repair).
func parseField(field string, t rel.DataType, tolerant bool) (rel.Value, bool, error) {
	v, err := rel.ParseTyped(field, t)
	if err == nil {
		return v, false, nil
	}
	if !tolerant {
		return rel.Value{}, false, err
	}
	if t.Numeric() {
		if num, ok := extractNumber(field); ok {
			v, err := rel.ParseTyped(num, t)
			if err == nil {
				return v, true, nil
			}
		}
	}
	return rel.Value{}, false, err
}

// extractNumber pulls the first numeric substring out of chatty values like
// "about 68 million" or "≈1,408 (2021 estimate)".
func extractNumber(s string) (string, bool) {
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		isNumChar := (c >= '0' && c <= '9') || c == '.' || c == ','
		if start < 0 {
			if c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
				start = i
			} else if c >= '0' && c <= '9' {
				start = i
			}
			continue
		}
		if !isNumChar {
			return strings.Trim(s[start:i], ".,"), true
		}
	}
	if start >= 0 {
		return strings.Trim(s[start:], ".,"), true
	}
	return "", false
}

// parseAttrBatchCompletion extracts per-key values from a batched ATTRS
// completion ("<entity> | <value>" lines). Lines are matched to keys by
// the key field, case-insensitively, so reordered or dropped lines cannot
// misattribute a value; under tolerant parsing bullet prefixes and a
// "key: value" separator are repaired. The three returned slices are
// parallel to keys:
//
//   - found[i] reports that key i's line was located and syntactically
//     usable — when false the caller should fall back to a single-key
//     prompt;
//   - ok[i] reports that the located value parsed into the column type and
//     was not a refusal (mirrors parseAttrCompletion's second result);
//   - vals[i] is the parsed value (typed NULL unless ok).
func parseAttrBatchCompletion(text string, keys []string, t rel.DataType, tolerant bool) (vals []rel.Value, ok []bool, found []bool) {
	vals = make([]rel.Value, len(keys))
	ok = make([]bool, len(keys))
	found = make([]bool, len(keys))
	for i := range vals {
		vals[i] = rel.NullOf(t)
	}
	index := make(map[string]int, len(keys))
	for i, k := range keys {
		index[strings.ToLower(normalizeKeyText(k))] = i
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || looksLikeProse(line) {
			continue
		}
		if tolerant {
			for _, prefix := range []string{"- ", "* "} {
				if strings.HasPrefix(line, prefix) {
					line = strings.TrimPrefix(line, prefix)
					break
				}
			}
		}
		keyPart, valPart, split := strings.Cut(line, "|")
		if !split {
			if !tolerant {
				continue
			}
			// Colon fallback ("key: value") for lines emitted with the
			// wrong separator.
			keyPart, valPart, split = strings.Cut(line, ":")
			if !split {
				continue
			}
		}
		i, known := index[strings.ToLower(normalizeKeyText(keyPart))]
		if !known || found[i] {
			continue // unattributable line, or a duplicate for a seen key
		}
		found[i] = true
		vals[i], ok[i] = parseAttrCompletion(strings.TrimSpace(valPart), t, tolerant)
	}
	return vals, ok, found
}

// parseAttrCompletion extracts a single value from an ATTR completion,
// handling the phrasings the model uses ("Paris", "Paris.",
// "The capital of France is Paris.", "capital: Paris", "I'm not sure.").
func parseAttrCompletion(text string, t rel.DataType, tolerant bool) (rel.Value, bool) {
	line := strings.TrimSpace(text)
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = strings.TrimSpace(line[:i])
	}
	if line == "" {
		return rel.NullOf(t), false
	}
	lower := strings.ToLower(line)
	for _, refusal := range []string{"i'm not sure", "i am not sure", "i do not know", "i don't know", "unknown"} {
		if strings.Contains(lower, refusal) {
			return rel.NullOf(t), false
		}
	}
	// "The X of Y is VALUE."
	if idx := strings.LastIndex(lower, " is "); idx >= 0 && tolerant {
		candidate := strings.TrimSpace(line[idx+4:])
		candidate = strings.TrimSuffix(candidate, ".")
		if v, err := rel.ParseTyped(candidate, t); err == nil && !v.IsNull() {
			return v, true
		}
		if t.Numeric() {
			if num, ok := extractNumber(candidate); ok {
				if v, err := rel.ParseTyped(num, t); err == nil {
					return v, true
				}
			}
		}
	}
	// "column: VALUE"
	if idx := strings.Index(line, ":"); idx >= 0 && tolerant {
		candidate := strings.TrimSpace(line[idx+1:])
		candidate = strings.TrimSuffix(candidate, ".")
		if v, err := rel.ParseTyped(candidate, t); err == nil && !v.IsNull() {
			return v, true
		}
	}
	// Bare value, maybe with trailing period.
	candidate := strings.TrimSuffix(line, ".")
	if v, err := rel.ParseTyped(candidate, t); err == nil && !v.IsNull() {
		return v, true
	}
	if tolerant && t.Numeric() {
		if num, ok := extractNumber(line); ok {
			if v, err := rel.ParseTyped(num, t); err == nil {
				return v, true
			}
		}
	}
	if t == rel.TypeText {
		return rel.Text(candidate), true
	}
	return rel.NullOf(t), false
}
