package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"llmsql/internal/exec"
	"llmsql/internal/expr"
	"llmsql/internal/llm"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// ScanStats reports what one LLM-backed scan did.
type ScanStats struct {
	// Table is the scanned virtual table.
	Table string
	// Strategy used. With Config.Strategy == StrategyAuto this is the
	// strategy the cost-based planner actually chose.
	Strategy Strategy
	// Auto reports that Strategy was chosen by the cost model.
	Auto bool
	// Prompts issued.
	Prompts int
	// BatchedPrompts counts ATTR prompts that asked for a batch of keys
	// (Config.BatchSize > 1, key-then-attr only).
	BatchedPrompts int
	// BatchFallbacks counts (key, column, vote) cells whose batched answer
	// failed to parse and were re-asked with a single-key prompt.
	BatchFallbacks int
	// Rounds of enumeration sampling actually run.
	Rounds int
	// Rows emitted to the executor. A scan abandoned early (a LIMIT
	// upstream stopped pulling) counts only the rows actually consumed.
	RowsEmitted int
	// KeysGated counts enumerated keys dropped by the local key gate of
	// the key-then-attr pipeline: a key-only pushed conjunct rejected them,
	// so they never generated attribute prompts (the executor's re-check
	// would have dropped their rows anyway).
	KeysGated int
	// KeysAttributed counts keys that actually entered the attribute
	// phase. With a pushed limit this stops at the last demand-driven
	// prefetch window; without one it equals the surviving key count.
	KeysAttributed int
	// KeysBound counts the distinct join-key values a bind join pushed
	// into this scan (0 when the scan was unbound). Enumerated keys
	// outside the bound set skip the attribute phase entirely.
	KeysBound int
	// Duplicates removed by entity-key dedup.
	Duplicates int
	// LowConfidenceDropped counts entities removed by the MinConfidence
	// filter (seen in too few sampling rounds).
	LowConfidenceDropped int
	// CacheHits and CacheMisses count completion-cache lookups among the
	// calls this scan consumed (zero when no cache is configured; discarded
	// speculative prefetch calls are excluded, mirroring Prompts — though
	// at Parallelism > 1 they may warm the cache for later scans).
	CacheHits   int
	CacheMisses int
	// DiskHits and DiskMisses count persistent prompt-cache lookups among
	// the calls this scan consumed, and DiskBytes the on-disk record bytes
	// those hits served (all zero without Config.CacheDir). An in-memory
	// cache hit performs no disk lookup and counts in neither.
	DiskHits   int
	DiskMisses int
	DiskBytes  int64
	// CoalescedHits counts calls this scan consumed that a serving-mode
	// Coalescer answered from another session's identical request instead of
	// a call of its own (zero outside serve mode). Coalesced responses keep
	// their original cache flags and billing, so every other counter —
	// Prompts, CacheHits/Misses, DiskHits/Misses, Usage — reads exactly as
	// it would in a solo run; this field is the only place the sharing
	// shows. See llm.Coalescer.
	CoalescedHits int
	// KeysFailed counts keys dropped under Config.PartialResults: an
	// attribute call of theirs still failed after the full retry budget (a
	// failed batched call drops its whole batch group). Zero on a healthy
	// backend, and zero whenever retries sufficed — nonzero KeysFailed is
	// exactly the strict-subset case of the row guarantee. Only keys that
	// would have been emitted count; bind-gate rider keys do not.
	KeysFailed int
	// RetriesSpent counts extra attempts beyond the first across the calls
	// this scan consumed — the llm.Retrier's recovery work, including the
	// attempts burned by calls that still failed and degraded.
	RetriesSpent int
	// HedgesLaunched and HedgesWon count hedge races among this scan's
	// calls and how many the duplicate request won (Retry.HedgeAfter).
	HedgesLaunched int
	HedgesWon      int
	// Parse aggregates the parser counters.
	Parse ParseStats
	// Materialized, when non-empty, names the materialized view whose row
	// store served this scan: no prompts, no model calls — only Table,
	// RowsEmitted and ViewAge are meaningful.
	Materialized string
	// ViewAge is the number of warm reads the view had served since its
	// last build or refresh when this scan ran (0 = first read).
	ViewAge int
}

// Label names the scan's strategy for display, marking cost-based choices
// ("auto:paged") and materialized-view substitutions ("materialized").
func (s ScanStats) Label() string {
	if s.Materialized != "" {
		return "materialized"
	}
	if s.Auto {
		return "auto:" + s.Strategy.String()
	}
	return s.Strategy.String()
}

// LLMStore exposes virtual tables as an exec.Source and plan.Catalog.
// It is safe for concurrent use.
type LLMStore struct {
	model llm.Model
	cache *llm.CacheModel // in-memory completion cache in the model chain, if any
	disk  *llm.DiskCache  // persistent prompt cache in the model chain, if any
	coal  *llm.Coalescer  // serving-mode request coalescer in the chain, if any
	cfg   Config
	// costModel prices candidate decompositions for the scan planner; it
	// mirrors the accounting CostModel (Engine.CostModel keeps them in
	// sync) so estimates and charges share constants.
	costModel llm.CostModel

	mu     sync.Mutex
	tables map[string]*VirtualTable
	stats  []ScanStats
	// estRows caches observed per-table cardinalities from prior scans,
	// refining the planner's estimates (see cost.go).
	estRows map[string]int
}

// NewLLMStore builds a store over the model with the given configuration.
func NewLLMStore(model llm.Model, cfg Config) *LLMStore {
	return &LLMStore{
		model:     model,
		cache:     llm.FindCache(model),
		disk:      llm.FindDiskCache(model),
		coal:      llm.FindCoalescer(model),
		cfg:       cfg.normalize(),
		costModel: llm.DefaultCostModel(),
		tables:    make(map[string]*VirtualTable),
		estRows:   make(map[string]int),
	}
}

// SetCostModel replaces the constants the scan planner prices with.
func (s *LLMStore) SetCostModel(c llm.CostModel) {
	s.mu.Lock()
	s.costModel = c
	s.mu.Unlock()
}

// Register declares a virtual table.
func (s *LLMStore) Register(t VirtualTable) {
	t.Name = strings.ToLower(t.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[t.Name] = &t
}

// TableSchema implements plan.Catalog.
func (s *LLMStore) TableSchema(name string) (rel.Schema, error) {
	s.mu.Lock()
	t, ok := s.tables[strings.ToLower(name)]
	s.mu.Unlock()
	if !ok {
		return rel.Schema{}, fmt.Errorf("core: unknown virtual table %q", name)
	}
	return t.Schema, nil
}

// Has reports whether a virtual table is registered.
func (s *LLMStore) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.tables[strings.ToLower(name)]
	return ok
}

// table returns the registered virtual table, for in-package callers that
// need more than the schema (prompt reconstruction).
func (s *LLMStore) table(name string) (*VirtualTable, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// noteViewScan publishes the synthesized statistics of a scan a
// materialized view absorbed, so QueryResult.Scans reports the substitution
// alongside real retrievals.
func (s *LLMStore) noteViewScan(st ScanStats) {
	s.mu.Lock()
	s.stats = append(s.stats, st)
	s.mu.Unlock()
}

// TakeStats returns and clears the accumulated scan statistics.
func (s *LLMStore) TakeStats() []ScanStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	s.stats = nil
	return out
}

// Config returns the store configuration.
func (s *LLMStore) Config() Config { return s.cfg }

// Scan implements exec.Source: it runs the configured prompt strategy and
// returns a row stream. The enumeration phase runs eagerly (its errors
// surface here); the key-then-attr attribute phase streams demand-driven,
// so a LIMIT upstream that stops pulling also stops the prompt spend. The
// scan's statistics and critical-path accounting are published when the
// stream is exhausted or closed.
func (s *LLMStore) Scan(req exec.ScanRequest) (exec.RowIter, error) {
	s.mu.Lock()
	t, ok := s.tables[strings.ToLower(req.Table)]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: unknown virtual table %q", req.Table)
	}
	cols := neededColumns(t.Schema, req.Needed)
	var filter sql.Expr
	if s.cfg.Pushdown {
		filter = stripQualifiers(req.Filter)
	}
	limit := req.Limit
	if limit < 0 || !s.cfg.LimitPushdown {
		limit = 0
	}
	// Resolve the effective strategy: with StrategyAuto the cost-based
	// planner prices the decompositions for this table, column set and
	// limit hint and the cheapest runs (the same decision EXPLAIN
	// annotates).
	strategy := s.cfg.Strategy
	auto := strategy == StrategyAuto
	if auto {
		strategy = strategyByName(s.decide(t, cols, filter, limit).Chosen)
	}
	// Bind-join key binding applies only to the key-then-attr pipeline —
	// any other decomposition could not honour it without changing its
	// prompts, and therefore its rows, relative to the unbound scan. The
	// strategy resolution above never sees the binding, so the bound scan
	// runs exactly the strategy the hash-join plan's scan would.
	var bound []string
	if req.Keys != nil && s.cfg.BindJoin && strategy == StrategyKeyThenAttr {
		bound = canonicalBoundKeys(req.Keys)
	}
	s.mu.Unlock()

	scan := &llmScan{
		store:    s,
		table:    t,
		schema:   req.Schema,
		cols:     cols,
		strategy: strategy,
		filter:   filter,
		limit:    limit,
		bound:    bound,
		stats:    ScanStats{Table: t.Name, Strategy: strategy, Auto: auto},
	}
	if bound != nil {
		scan.stats.KeysBound = len(bound)
		// Bound to nothing: no key can match, so no prompt can pay off.
		if len(bound) == 0 {
			return &scanIter{scan: scan, next: func() (rel.Row, bool, error) {
				return nil, false, nil
			}}, nil
		}
	}

	var stream func() (rel.Row, bool, error)
	if strategy == StrategyKeyThenAttr {
		st, err := scan.startKeyThenAttr()
		if err != nil {
			return nil, err
		}
		stream = st
	} else {
		var rows []rel.Row
		var err error
		if strategy == StrategyPaged {
			rows, err = scan.runPaged()
		} else {
			rows, err = scan.runFullTable()
		}
		if err != nil {
			return nil, err
		}
		if s.cfg.Dedup {
			rows = scan.dedup(rows)
		}
		// Refine the planner's cardinality estimate — but only from
		// unfiltered scans: a pushed-down predicate makes the count a
		// selectivity artifact, not the table's size.
		if scan.filter == nil {
			s.noteCardinality(t.Name, len(rows))
		}
		pos := 0
		stream = func() (rel.Row, bool, error) {
			if pos >= len(rows) {
				return nil, false, nil
			}
			r := rows[pos]
			pos++
			return r, true, nil
		}
	}
	return &scanIter{scan: scan, next: stream}, nil
}

// neededColumns converts the executor's needed mask into schema positions,
// always including the key column(s) first.
func neededColumns(schema rel.Schema, needed []bool) []int {
	keyIdx := schema.KeyIndexes()
	inKey := map[int]bool{}
	cols := make([]int, 0, schema.Len())
	for _, k := range keyIdx {
		cols = append(cols, k)
		inKey[k] = true
	}
	for i := 0; i < schema.Len(); i++ {
		if inKey[i] {
			continue
		}
		if needed == nil || needed[i] {
			cols = append(cols, i)
		}
	}
	sort.Ints(cols)
	return cols
}

// llmScan is the per-scan state machine. Model calls may fan out across a
// worker pool (Config.Parallelism), but all scan state — stats, parser
// counters, the wall-clock accumulator — is only ever touched from the
// scan's own goroutine: concurrent tasks write into index-disjoint slots and
// results are merged in deterministic order afterwards.
type llmScan struct {
	store    *LLMStore
	table    *VirtualTable
	schema   rel.Schema // alias-renamed schema expected by the executor
	cols     []int
	strategy Strategy // effective strategy (auto already resolved)
	filter   sql.Expr
	limit    int64 // advisory row cap (0 = none; already gated on config)
	// bound, when non-nil, is the canonicalized distinct join-key set a
	// bind join passed in: only enumerated keys in this set reach the
	// attribute phase (key-then-attr only; already gated on config).
	bound []string
	stats ScanStats
	wall  time.Duration // simulated critical-path latency of this scan
}

func (sc *llmScan) cfg() Config { return sc.store.cfg }

func (sc *llmScan) keyPos() int { return sc.table.Schema.KeyIndexes()[0] }

// modelCall issues one raw model call. It does no accounting — callers own
// prompt counting and critical-path bookkeeping — and is safe to invoke from
// pool workers (Model implementations are concurrency-safe by contract).
func (sc *llmScan) modelCall(prompt string, seed int64) (llm.CompletionResponse, error) {
	return sc.store.model.Complete(llm.CompletionRequest{
		Prompt:      prompt,
		MaxTokens:   sc.cfg().MaxCompletionTokens,
		Temperature: sc.cfg().Temperature,
		Seed:        sc.cfg().Seed + seed,
	})
}

// addWall extends the scan's simulated critical path by d.
func (sc *llmScan) addWall(d time.Duration) { sc.wall += d }

// countCache attributes one consumed completion to the scan's cache and
// fault-recovery counters. Counting from the response's own flags is exact
// even when queries run concurrently (a global before/after counter diff is
// not), and discarded speculative calls are never attributed, mirroring
// Prompts. Fan-out phases keep responses in index-disjoint slots and
// attribute on the scan goroutine afterwards.
//
// Cache flags: the disk layer is consulted only when the in-memory layer
// missed, so an uncached response is a disk miss but a memory hit is neither
// — and a disk-cached response, which kept Cached set on its way out through
// the memory layer's miss path, is a memory miss, not a memory hit.
// Coalesced responses carry the flags of the original call, so the cache
// counters read as they would solo; CoalescedHits is counted on top, not
// instead. Retry/hedge markings survive only on live responses (cache hits
// strip them), so on a healthy backend the fault counters stay zero.
func (sc *llmScan) countCache(resp llm.CompletionResponse) {
	if sc.store.cache != nil {
		if resp.Cached && !resp.DiskCached {
			sc.stats.CacheHits++
		} else {
			sc.stats.CacheMisses++
		}
	}
	if sc.store.disk != nil {
		if resp.DiskCached {
			sc.stats.DiskHits++
			sc.stats.DiskBytes += resp.DiskBytes
		} else if !resp.Cached {
			sc.stats.DiskMisses++
		}
	}
	if sc.store.coal != nil && resp.Coalesced {
		sc.stats.CoalescedHits++
	}
	if resp.Attempts > 1 {
		sc.stats.RetriesSpent += resp.Attempts - 1
	}
	if resp.HedgeLaunched {
		sc.stats.HedgesLaunched++
	}
	if resp.HedgeWon {
		sc.stats.HedgesWon++
	}
}

// degrade decides whether a failed model call degrades the scan instead of
// aborting the query — Config.PartialResults must be on and the error must
// be retryable-class (fatal errors always abort) — and extracts the
// accounting the failure carries: the attempts it burned and the virtual
// time it spent. A failed call has no response, so llm.RetryError is the
// only carrier; a degradable error that is not a RetryError (retries
// disabled outright) charges one attempt and no latency. Safe to call from
// pool workers; callers record the outcome in their index-disjoint slots.
func (sc *llmScan) degrade(err error) (attempts int, fault time.Duration, ok bool) {
	if !sc.cfg().PartialResults || !llm.Degradable(err) {
		return 0, 0, false
	}
	var re *llm.RetryError
	if errors.As(err, &re) {
		return re.Attempts, re.FaultLatency, true
	}
	return 1, 0, true
}

// countFailed attributes a degraded call on the scan goroutine: the burned
// attempts extend RetriesSpent and the failure's virtual time occupies a
// lane of the fan-out's scheduler just as a successful call's latency would
// (nil sched charges the serial critical path directly). Cache counters are
// left alone — a call that never completed hit nothing.
func (sc *llmScan) countFailed(attempts int, fault time.Duration, sched *llm.Sched) {
	if attempts > 1 {
		sc.stats.RetriesSpent += attempts - 1
	}
	if sched != nil {
		sched.Add(fault)
	} else {
		sc.addWall(fault)
	}
}

// runRounds obtains one enumeration round per seed, accumulating rows keyed
// by entity, until MaxRounds or the convergence rule (StableRounds rounds
// without a new entity) stops it. At temperature zero a single round is
// issued — greedy decoding cannot produce new rows — unless promptVaries
// says each round changes the prompt (paged scans).
//
// issue performs the model call for one round; parse turns completion text
// into rows. parse always runs on the scan goroutine in round order, so
// parser statistics and caller state (paged exclude lists) need no locking.
// When the prompt is constant across rounds (promptVaries == false) and
// Parallelism allows, rounds are independent and are prefetched concurrently
// — speculatively, since convergence may stop before consuming them all.
// Consumed rounds are accounted exactly as in the serial path, so result
// rows and ScanStats are byte-identical at any parallelism; discarded
// speculative calls show up only in the model's Usage.
func (sc *llmScan) runRounds(promptVaries bool, issue func(seed int64) (llm.CompletionResponse, error), parse func(text string) []rel.Row) ([]rel.Row, error) {
	maxRounds := sc.cfg().MaxRounds
	if sc.cfg().Temperature <= 0 && !promptVaries {
		maxRounds = 1
	}

	// next yields round r's completion with critical-path accounting folded
	// in: serial rounds chain their latencies; prefetched rounds become
	// available at their virtual finish time under the lane scheduler.
	serialNext := func(round int) (llm.CompletionResponse, error) {
		resp, err := issue(int64(round))
		if err == nil {
			sc.addWall(resp.SimLatency)
		}
		return resp, err
	}
	next := serialNext
	par := sc.cfg().Parallelism
	if !promptVaries && par > 1 && maxRounds > 1 {
		// Prefetch a window of min(Parallelism, MaxRounds) rounds
		// concurrently. Speculation past the window would waste spend
		// without shortening the critical path (the lanes are already
		// full), so this caps discarded calls at Parallelism-1; rounds the
		// convergence rule wants beyond the window run serially.
		spec := par
		if spec > maxRounds {
			spec = maxRounds
		}
		resps := make([]llm.CompletionResponse, spec)
		errs := make([]error, spec)
		runTasks(par, spec, func(r int) error {
			resps[r], errs[r] = issue(int64(r))
			return nil // an error surfaces when (and if) its round is consumed
		})
		// The window never exceeds the lane count, so every round starts at
		// virtual time zero and finishes after exactly its own latency.
		finish := make([]time.Duration, spec)
		for r := range resps {
			finish[r] = resps[r].SimLatency
		}
		var consumedWall time.Duration
		next = func(round int) (llm.CompletionResponse, error) {
			if round >= spec {
				return serialNext(round)
			}
			if errs[round] != nil {
				return llm.CompletionResponse{}, errs[round]
			}
			if finish[round] > consumedWall {
				sc.addWall(finish[round] - consumedWall)
				consumedWall = finish[round]
			}
			return resps[round], nil
		}
	}

	seenKeys := map[string]bool{}
	appearances := map[string]int{} // rounds in which each entity appeared
	dedup := sc.cfg().Dedup
	var out []rel.Row
	stable := 0
	for round := 0; round < maxRounds; round++ {
		sc.stats.Rounds++
		resp, err := next(round)
		if err != nil {
			if tries, fault, ok := sc.degrade(err); ok {
				// A failed enumeration round stops enumeration at the rows
				// already found. Earlier rounds consumed identical
				// completions to the fault-free run (faults are keyed per
				// request, not per call order), so the surviving rows are a
				// subset of what full enumeration would have produced.
				sc.countFailed(tries, fault, nil)
				break
			}
			return nil, err
		}
		sc.stats.Prompts++
		sc.countCache(resp)
		rows := parse(resp.Text)
		newThisRound := 0
		seenThisRound := map[string]bool{}
		for _, row := range rows {
			key := entityKey(row, sc.keyPos())
			if !seenThisRound[key] {
				seenThisRound[key] = true
				appearances[key]++
			}
			if seenKeys[key] {
				// Convergence always tracks entity novelty, but only the
				// dedup feature (ablated in Table 7) suppresses the
				// duplicate row itself.
				if dedup {
					sc.stats.Duplicates++
					continue
				}
				out = append(out, row)
				continue
			}
			seenKeys[key] = true
			out = append(out, row)
			newThisRound++
		}
		if newThisRound == 0 {
			stable++
			if stable >= sc.cfg().StableRounds {
				break
			}
		} else {
			stable = 0
		}
	}
	out = sc.filterByConfidence(out, appearances)
	return out, nil
}

// filterByConfidence drops entities whose appearance frequency across the
// sampling rounds falls below Config.MinConfidence. Hallucinated rows tend
// to be one-off samples while real entities recur, so the filter trades a
// little recall for precision (swept in Table 8).
func (sc *llmScan) filterByConfidence(rows []rel.Row, appearances map[string]int) []rel.Row {
	minConf := sc.cfg().MinConfidence
	rounds := sc.stats.Rounds
	if minConf <= 0 || rounds <= 1 {
		return rows
	}
	// Paged scans exclude previously seen keys, so every entity appears in
	// exactly one round by construction — frequency is meaningless there.
	if sc.strategy == StrategyPaged {
		return rows
	}
	keyPos := sc.keyPos()
	kept := rows[:0]
	for _, row := range rows {
		conf := float64(appearances[entityKey(row, keyPos)]) / float64(rounds)
		if conf+1e-9 < minConf {
			sc.stats.LowConfidenceDropped++
			continue
		}
		kept = append(kept, row)
	}
	return kept
}

// entityKey is the dedup/convergence identity of a row: the parse-time
// normalized key (see normalizeKeyText), case-folded. The normalization
// here is defensive — rows from parseListCompletion already carry
// canonical keys.
func entityKey(row rel.Row, keyPos int) string {
	return strings.ToLower(normalizeKeyText(row[keyPos].AsText()))
}

// ---- strategies ----

func (sc *llmScan) runFullTable() ([]rel.Row, error) {
	prompt := buildListPrompt(sc.table, sc.cols, sc.filter, nil, 0)
	return sc.runRounds(false,
		func(seed int64) (llm.CompletionResponse, error) {
			return sc.modelCall(prompt, seed)
		},
		func(text string) []rel.Row {
			rows, stats := parseListCompletion(text, sc.table.Schema, sc.cols, sc.keyPos(), sc.cfg().Tolerant)
			sc.stats.Parse.Add(stats)
			return rows
		})
}

func (sc *llmScan) runPaged() ([]rel.Row, error) {
	// Paged enumeration: each page excludes everything already seen; the
	// rounds machinery handles convergence across pages. Pages form a
	// dependency chain (each prompt needs the previous pages' keys), so
	// promptVaries keeps them strictly serial.
	var exclude []string
	excludeSet := map[string]bool{}
	return sc.runRounds(true,
		func(seed int64) (llm.CompletionResponse, error) {
			prompt := buildListPrompt(sc.table, sc.cols, sc.filter, exclude, sc.cfg().PageSize)
			return sc.modelCall(prompt, seed)
		},
		func(text string) []rel.Row {
			rows, stats := parseListCompletion(text, sc.table.Schema, sc.cols, sc.keyPos(), sc.cfg().Tolerant)
			sc.stats.Parse.Add(stats)
			for _, row := range rows {
				key := entityKey(row, sc.keyPos())
				if !excludeSet[key] {
					excludeSet[key] = true
					exclude = append(exclude, row[sc.keyPos()].AsText())
				}
			}
			return rows
		})
}

// attrVote is one self-consistency vote for one attribute cell.
type attrVote struct {
	val rel.Value
	ok  bool
	// failed marks a cell whose model call still failed after the full
	// retry budget (Config.PartialResults only): any failed cell drops its
	// key from the window's output.
	failed bool
	// failTries and fault carry a failed call's accounting — the attempts
	// it burned and the virtual time it spent — since no response exists to
	// count from.
	failTries int
	fault     time.Duration
	// resp is the completion the vote was parsed from; zero for scatter
	// copies of a batched answer (the call is counted once, on its task).
	resp llm.CompletionResponse
}

// startKeyThenAttr runs the enumeration phase of the key-then-attr
// pipeline eagerly — KEYS prompts, then the local key gate — and returns a
// demand-driven stream over the attribute phase. Attribute prompts are
// issued in batch-aligned prefetch windows: a window's fan-out launches
// only when the consumer demands a row beyond what is buffered, so a LIMIT
// upstream that stops pulling stops the spend after at most one window of
// over-fetch. Rows stream in key order, so at any Parallelism/BatchSize the
// emitted prefix is byte-identical to the fully materialized scan.
func (sc *llmScan) startKeyThenAttr() (func() (rel.Row, bool, error), error) {
	// Phase 1: enumerate keys. The prompt carries the conjuncts the key
	// column alone can decide; the gate below enforces them locally.
	keyPos := sc.keyPos()
	keyFilter := sc.keyOnlyFilter()
	keyPrompt := buildKeysPrompt(sc.table, keyFilter, nil, 0)
	keyRows, err := sc.runRounds(false,
		func(seed int64) (llm.CompletionResponse, error) {
			return sc.modelCall(keyPrompt, seed)
		},
		func(text string) []rel.Row {
			rows, stats := parseListCompletion(text, sc.table.Schema, []int{keyPos}, keyPos, sc.cfg().Tolerant)
			sc.stats.Parse.Add(stats)
			return rows
		})
	if err != nil {
		return nil, err
	}
	// The enumeration is complete regardless of how much of the stream the
	// consumer ends up pulling, so the cardinality estimate can be noted
	// now (unfiltered scans only, as ever).
	if sc.filter == nil {
		sc.store.noteCardinality(sc.table.Name, len(keyRows))
	}
	// The gate: keys a key-only pushed conjunct rejects would have their
	// rows dropped by the executor's re-check anyway — spending attribute
	// prompts on them buys nothing.
	keyRows = sc.gateKeys(keyRows, keyFilter)
	// The bind gate: a bind join bound this scan to the outer side's
	// distinct join keys, so entities outside that set could never survive
	// the join — their attribute fan-out is skipped. The enumeration above
	// ran with the prompt of an unbound scan (it is the membership oracle
	// that keeps bound results identical to the full scan), and the gate
	// drops whole batch groups so every surviving (batched) ATTR prompt
	// and vote seed is byte-identical to the unbound scan's; emit masks
	// the rider keys that were attributed only to preserve their group's
	// prompt.
	keyRows, emit := sc.bindGate(keyRows)

	attrCols := make([]int, 0, len(sc.cols))
	for _, c := range sc.cols {
		if c != keyPos {
			attrCols = append(attrCols, c)
		}
	}
	keys := make([]string, len(keyRows))
	for i, row := range keyRows {
		keys[i] = row[keyPos].AsText()
	}
	votes := sc.cfg().Votes
	// Without limit pushdown every key is attributed in one window — the
	// fully materializing scan, bit-for-bit.
	window := len(keyRows)
	if sc.cfg().LimitPushdown {
		window = plan.PrefetchWindow(sc.cfg().Parallelism, len(attrCols), votes, sc.cfg().BatchSize, sc.limit)
	}
	if window < 1 {
		window = 1
	}
	st := &attrStream{
		sc:       sc,
		keyRows:  keyRows,
		keys:     keys,
		emit:     emit,
		attrCols: attrCols,
		votes:    votes,
		window:   window,
		primary:  llm.NewSched(sc.cfg().Parallelism),
		fallback: llm.NewSched(sc.cfg().Parallelism),
	}
	return st.nextRow, nil
}

// keyOnlyConjuncts returns the pushed conjuncts that reference no column
// but the entity key. They are the only predicate parts decidable between
// the enumeration and attribute phases, so the gate enforces exactly this
// set and the cost model's selectivity estimate prices exactly this set
// (keySelectivity) — keep the two from drifting by sharing the predicate.
func keyOnlyConjuncts(filter sql.Expr, keyName string) []sql.Expr {
	var keep []sql.Expr
	for _, c := range sql.SplitConjuncts(filter) {
		if len(sql.ColumnRefs(c)) > 0 && filterUsesOnly(c, keyName) {
			keep = append(keep, c)
		}
	}
	return keep
}

// keyOnlyFilter returns the conjunction of the scan's key-only pushed
// conjuncts (nil when there are none).
func (sc *llmScan) keyOnlyFilter() sql.Expr {
	if sc.filter == nil {
		return nil
	}
	keyName := sc.table.Schema.Col(sc.keyPos()).Name
	return sql.JoinConjuncts(keyOnlyConjuncts(sc.filter, keyName))
}

// gateKeys enforces the key-only pushed conjuncts locally on the
// enumerated key rows, before any attribute spend. Only rows the
// executor's re-applied filter would certainly drop are removed: a row
// whose predicate evaluation errors is kept so the error still surfaces
// where the unpushed plan would raise it.
func (sc *llmScan) gateKeys(keyRows []rel.Row, keyFilter sql.Expr) []rel.Row {
	if keyFilter == nil || len(keyRows) == 0 {
		return keyRows
	}
	pred, err := expr.CompileBool(keyFilter, sc.schema)
	if err != nil {
		// The hint is advisory; an uncompilable predicate (which the
		// executor will reject on its own) must not break the scan.
		return keyRows
	}
	kept := keyRows[:0]
	for _, row := range keyRows {
		ts, err := pred(row)
		if err == nil && ts != rel.True {
			sc.stats.KeysGated++
			continue
		}
		kept = append(kept, row)
	}
	return kept
}

// canonicalBoundKeys normalizes a bind join's key values through the same
// whitespace canonicalization the parser applies to enumerated keys (see
// normalizeKeyText) and removes case-insensitive duplicates, so the bind
// gate's membership test, entity dedup and the completion cache all agree
// on one spelling per entity. Always returns a non-nil slice.
func canonicalBoundKeys(keys []string) []string {
	out := make([]string, 0, len(keys))
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		norm := normalizeKeyText(k)
		if norm == "" {
			continue
		}
		lower := strings.ToLower(norm)
		if seen[lower] {
			continue
		}
		seen[lower] = true
		out = append(out, norm)
	}
	return out
}

// bindGate keeps the enumerated keys a bind join asked for, at batch-group
// granularity: the unbound scan chunks its key list into BatchSize groups
// by position, and a batched ATTRS answer depends on the whole group's
// prompt, so dropping individual keys would regroup the survivors and
// change the prompts (and, on a real model, the answers) of keys the join
// keeps. Instead the gate keeps every group containing at least one bound
// key — whole, so concatenating the kept groups reproduces the original
// grouping exactly (all groups are full-size except possibly the last,
// which stays last) — and returns an emit mask marking the rider keys
// that were retained only to preserve their group's prompt; their rows
// are attributed but never emitted. At BatchSize 1 groups are single keys
// and the gate degenerates to exact membership. Matching is
// case-insensitive on canonicalized spellings (like entity dedup); a kept
// row whose exact spelling differs from the outer value is still dropped
// by the executor's equality check, so the gate can only waste — never
// corrupt — an attribute prompt.
func (sc *llmScan) bindGate(keyRows []rel.Row) ([]rel.Row, []bool) {
	if sc.bound == nil || len(keyRows) == 0 {
		return keyRows, nil
	}
	inBound := make(map[string]bool, len(sc.bound))
	for _, k := range sc.bound {
		inBound[strings.ToLower(k)] = true
	}
	keyPos := sc.keyPos()
	batch := sc.cfg().BatchSize
	var kept []rel.Row
	var emit []bool
	for lo := 0; lo < len(keyRows); lo += batch {
		hi := lo + batch
		if hi > len(keyRows) {
			hi = len(keyRows)
		}
		group := keyRows[lo:hi]
		any := false
		for _, row := range group {
			if inBound[entityKey(row, keyPos)] {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		for _, row := range group {
			kept = append(kept, row)
			emit = append(emit, inBound[entityKey(row, keyPos)])
		}
	}
	return kept, emit
}

// attrStream is the demand-driven attribute phase of a key-then-attr scan.
// Keys are attributed window by window; within a window the (batched) ATTR
// prompts fan out across the worker pool exactly as in the materialized
// scan. Windows are batch-aligned, so prompt grouping, vote seeds and the
// merged values are independent of the window size — early termination
// changes how far the key list gets, never what any row contains.
type attrStream struct {
	sc      *llmScan
	keyRows []rel.Row
	keys    []string
	// emit, when non-nil, marks which keys produce output rows: bind-gate
	// rider keys are attributed (their group's prompt needs them) but
	// never emitted.
	emit     []bool
	attrCols []int
	votes    int
	window   int // keys attributed per fetch
	next     int // first key index not yet attributed
	buf      []rel.Row
	// primary and fallback accumulate the whole phase's fan-out latencies
	// across windows, so the critical-path account at full consumption is
	// identical to the single big fan-out of the materialized scan.
	primary  *llm.Sched
	fallback *llm.Sched
}

func (st *attrStream) nextRow() (rel.Row, bool, error) {
	for len(st.buf) == 0 {
		if st.next >= len(st.keyRows) {
			return nil, false, nil
		}
		if err := st.fetchWindow(); err != nil {
			return nil, false, err
		}
	}
	row := st.buf[0]
	st.buf = st.buf[1:]
	return row, true, nil
}

// fetchWindow attributes the next window of keys and buffers their rows.
func (st *attrStream) fetchWindow() error {
	sc := st.sc
	lo := st.next
	hi := lo + st.window
	if hi > len(st.keyRows) {
		hi = len(st.keyRows)
	}
	st.next = hi
	keys := st.keys[lo:hi]
	var results []attrVote
	var err error
	if sc.cfg().BatchSize > 1 && len(keys) > 0 && len(st.attrCols) > 0 {
		results, err = sc.attrBatched(keys, st.attrCols, st.votes, st.primary, st.fallback)
	} else {
		results, err = sc.attrSingle(keys, st.attrCols, st.votes, st.primary)
	}
	if err != nil {
		return err
	}
	sc.stats.KeysAttributed += len(keys)
	keyPos := sc.keyPos()
	for ki := lo; ki < hi; ki++ {
		if st.emit != nil && !st.emit[ki] {
			continue
		}
		// Graceful degradation: a key with any failed cell is dropped whole
		// rather than emitted with a fabricated NULL — a partial result must
		// be a subset of the fault-free rows, never a variation of them.
		// Only cells of failed calls are marked; merely unparsable answers
		// keep flowing through mergeVotes as ever.
		cellLo := (ki - lo) * len(st.attrCols) * st.votes
		dropped := false
		for j := cellLo; j < cellLo+len(st.attrCols)*st.votes; j++ {
			if results[j].failed {
				sc.stats.KeysFailed++
				dropped = true
				break
			}
		}
		if dropped {
			continue
		}
		row := make(rel.Row, sc.table.Schema.Len())
		for i := range row {
			row[i] = rel.NullOf(sc.table.Schema.Col(i).Type)
		}
		row[keyPos] = st.keyRows[ki][keyPos]
		for ci, c := range st.attrCols {
			base := ((ki-lo)*len(st.attrCols) + ci) * st.votes
			row[c] = mergeVotes(results[base:base+st.votes], sc.table.Schema.Col(c).Type)
		}
		st.buf = append(st.buf, row)
	}
	return nil
}

// attrSingle is the unbatched attribute phase for one window of keys: one
// ATTR prompt per (key, column, vote), fanned out across the worker pool.
// The returned slice is indexed (key-major, then column, then vote). sched
// is shared across the scan's windows so the accumulated critical path
// matches one big fan-out.
func (sc *llmScan) attrSingle(keys []string, attrCols []int, votes int, sched *llm.Sched) ([]attrVote, error) {
	n := len(keys) * len(attrCols) * votes
	results := make([]attrVote, n)
	err := runTasks(sc.cfg().Parallelism, n, func(i int) error {
		ki := i / (len(attrCols) * votes)
		c := attrCols[i/votes%len(attrCols)]
		v := i % votes
		resp, err := sc.modelCall(buildAttrPrompt(sc.table, keys[ki], c), int64(1000+v))
		if err != nil {
			if tries, fault, ok := sc.degrade(err); ok {
				results[i] = attrVote{failed: true, failTries: tries, fault: fault}
				return nil
			}
			return err
		}
		val, ok := parseAttrCompletion(resp.Text, sc.table.Schema.Col(c).Type, sc.cfg().Tolerant)
		results[i] = attrVote{val: val, ok: ok, resp: resp}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sc.stats.Prompts += n
	// Replay the fan-out's latencies through the lane scheduler (in task
	// order) to account the phase's simulated critical path; failed calls
	// occupied their lane for the fault's duration.
	before := sched.Makespan()
	for i := range results {
		if results[i].failed {
			sc.countFailed(results[i].failTries, results[i].fault, sched)
			continue
		}
		sched.Add(results[i].resp.SimLatency)
		sc.countCache(results[i].resp)
	}
	sc.addWall(sched.Makespan() - before)
	return results, nil
}

// attrBatched is the batched attribute phase for one window of keys: the
// window is chunked in order into groups of BatchSize (callers keep
// windows batch-aligned, so the groups are the same ones the materialized
// scan would form), and one ATTRS prompt asks for one column of a whole
// group per vote. Batched answers are parsed per key; cells whose line is
// missing or malformed fall back to single-key prompts in a second
// fan-out, so every (key, column, vote) cell ends with exactly one vote —
// the same accounting as the unbatched phase, at ~BatchSize fewer prompts.
// The returned slice is indexed exactly like attrSingle's. primary and
// fallback are the scan-wide schedulers for the two fan-outs.
func (sc *llmScan) attrBatched(keys []string, attrCols []int, votes int, primary, fallback *llm.Sched) ([]attrVote, error) {
	batch := sc.cfg().BatchSize
	numBatches := (len(keys) + batch - 1) / batch

	// One task per (batch, column, vote), indexed batch-major.
	type batchAnswer struct {
		vals      []rel.Value
		ok        []bool
		found     []bool
		failed    bool // degraded call: the whole group's cells fail
		failTries int
		fault     time.Duration
		resp      llm.CompletionResponse
	}
	n := numBatches * len(attrCols) * votes
	tasks := make([]batchAnswer, n)
	err := runTasks(sc.cfg().Parallelism, n, func(i int) error {
		bi := i / (len(attrCols) * votes)
		c := attrCols[i/votes%len(attrCols)]
		v := i % votes
		lo, hi := bi*batch, (bi+1)*batch
		if hi > len(keys) {
			hi = len(keys)
		}
		group := keys[lo:hi]
		resp, err := sc.modelCall(buildAttrBatchPrompt(sc.table, group, c), int64(1000+v))
		if err != nil {
			if tries, fault, ok := sc.degrade(err); ok {
				tasks[i] = batchAnswer{failed: true, failTries: tries, fault: fault}
				return nil
			}
			return err
		}
		vals, ok, found := parseAttrBatchCompletion(resp.Text, group, sc.table.Schema.Col(c).Type, sc.cfg().Tolerant)
		tasks[i] = batchAnswer{vals: vals, ok: ok, found: found, resp: resp}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sc.stats.Prompts += n
	sc.stats.BatchedPrompts += n
	before := primary.Makespan()
	for i := range tasks {
		if tasks[i].failed {
			sc.countFailed(tasks[i].failTries, tasks[i].fault, primary)
			continue
		}
		primary.Add(tasks[i].resp.SimLatency)
		sc.countCache(tasks[i].resp)
	}
	sc.addWall(primary.Makespan() - before)

	// Scatter batched answers into the (key, column, vote) layout and
	// collect the cells that need a single-key fallback. A degraded batched
	// call fails its whole group's cells outright — no single-key repair:
	// its retry budget is already spent, and turning one failed prompt into
	// BatchSize fresh ones would amplify load exactly when the backend is
	// unhealthy. Dropping the group keeps the degraded run a strict subset.
	results := make([]attrVote, len(keys)*len(attrCols)*votes)
	var repair []int
	for i := range results {
		ki := i / (len(attrCols) * votes)
		ci := i / votes % len(attrCols)
		v := i % votes
		t := &tasks[(ki/batch*len(attrCols)+ci)*votes+v]
		if t.failed {
			results[i] = attrVote{failed: true}
			continue
		}
		off := ki % batch
		if off < len(t.found) && t.found[off] {
			results[i] = attrVote{val: t.vals[off], ok: t.ok[off]}
			continue
		}
		repair = append(repair, i)
	}
	if len(repair) == 0 {
		return results, nil
	}

	// Fallback fan-out: the single-key prompts use the same vote seeds as
	// the unbatched phase, so a repaired cell gets the answer attrSingle
	// would have retrieved for it.
	sc.stats.BatchFallbacks += len(repair)
	fb := make([]attrVote, len(repair))
	err = runTasks(sc.cfg().Parallelism, len(repair), func(j int) error {
		i := repair[j]
		ki := i / (len(attrCols) * votes)
		c := attrCols[i/votes%len(attrCols)]
		v := i % votes
		resp, err := sc.modelCall(buildAttrPrompt(sc.table, keys[ki], c), int64(1000+v))
		if err != nil {
			if tries, fault, ok := sc.degrade(err); ok {
				fb[j] = attrVote{failed: true, failTries: tries, fault: fault}
				return nil
			}
			return err
		}
		val, ok := parseAttrCompletion(resp.Text, sc.table.Schema.Col(c).Type, sc.cfg().Tolerant)
		fb[j] = attrVote{val: val, ok: ok, resp: resp}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sc.stats.Prompts += len(repair)
	before = fallback.Makespan()
	for j := range fb {
		if fb[j].failed {
			sc.countFailed(fb[j].failTries, fb[j].fault, fallback)
			results[repair[j]] = attrVote{failed: true}
			continue
		}
		fallback.Add(fb[j].resp.SimLatency)
		sc.countCache(fb[j].resp)
		results[repair[j]] = attrVote{val: fb[j].val, ok: fb[j].ok}
	}
	sc.addWall(fallback.Makespan() - before)
	return results, nil
}

// mergeVotes resolves one attribute cell from its self-consistency votes:
// the value observed most often wins; ties break toward the earliest vote
// seed; all-unparsable vote sets yield NULL.
func mergeVotes(votes []attrVote, t rel.DataType) rel.Value {
	counts := map[string]int{}
	values := map[string]rel.Value{}
	var order []string
	for _, vote := range votes {
		if !vote.ok {
			continue
		}
		k := (rel.Row{vote.val}).AllKey()
		if _, seen := counts[k]; !seen {
			values[k] = vote.val
			order = append(order, k)
		}
		counts[k]++
	}
	best := ""
	bestN := 0
	for _, k := range order {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	if bestN == 0 {
		return rel.NullOf(t)
	}
	return values[best]
}

// filterUsesOnly reports whether every column reference in e is the named
// column.
func filterUsesOnly(e sql.Expr, column string) bool {
	for _, ref := range sql.ColumnRefs(e) {
		if !strings.EqualFold(ref.Name, column) {
			return false
		}
	}
	return true
}

// dedup keeps the first row per entity key.
func (sc *llmScan) dedup(rows []rel.Row) []rel.Row {
	seen := map[string]bool{}
	out := rows[:0]
	keyPos := sc.keyPos()
	for _, row := range rows {
		key := entityKey(row, keyPos)
		if seen[key] {
			sc.stats.Duplicates++
			continue
		}
		seen[key] = true
		out = append(out, row)
	}
	return out
}

// scanIter adapts a strategy's row stream to exec.RowIter. It counts the
// rows actually emitted and publishes the scan's statistics and simulated
// critical path to the store exactly once — on exhaustion, error or Close,
// whichever comes first (early Close is how an upstream LIMIT abandons the
// stream).
type scanIter struct {
	scan    *llmScan
	next    func() (rel.Row, bool, error)
	flushed bool
}

// Next implements exec.RowIter.
func (it *scanIter) Next() (rel.Row, bool, error) {
	if it.flushed {
		return nil, false, nil
	}
	row, ok, err := it.next()
	if err != nil || !ok {
		it.flush()
		return nil, false, err
	}
	it.scan.stats.RowsEmitted++
	return row, true, nil
}

// Close implements exec.RowIter.
func (it *scanIter) Close() error {
	it.flush()
	return nil
}

// flush publishes the scan's accumulated statistics and critical-path
// latency. Idempotent: the executor may Close an already-exhausted stream.
func (it *scanIter) flush() {
	if it.flushed {
		return
	}
	it.flushed = true
	sc := it.scan
	s := sc.store
	// Report this scan's simulated critical path: its phases are a
	// dependency chain, so their makespans added up along the way.
	if wa, ok := s.model.(llm.WallAdder); ok {
		wa.AddWall(sc.wall)
	}
	s.mu.Lock()
	s.stats = append(s.stats, sc.stats)
	s.mu.Unlock()
}
