package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// ScanStats reports what one LLM-backed scan did.
type ScanStats struct {
	// Table is the scanned virtual table.
	Table string
	// Strategy used. With Config.Strategy == StrategyAuto this is the
	// strategy the cost-based planner actually chose.
	Strategy Strategy
	// Auto reports that Strategy was chosen by the cost model.
	Auto bool
	// Prompts issued.
	Prompts int
	// BatchedPrompts counts ATTR prompts that asked for a batch of keys
	// (Config.BatchSize > 1, key-then-attr only).
	BatchedPrompts int
	// BatchFallbacks counts (key, column, vote) cells whose batched answer
	// failed to parse and were re-asked with a single-key prompt.
	BatchFallbacks int
	// Rounds of enumeration sampling actually run.
	Rounds int
	// Rows emitted to the executor.
	RowsEmitted int
	// Duplicates removed by entity-key dedup.
	Duplicates int
	// LowConfidenceDropped counts entities removed by the MinConfidence
	// filter (seen in too few sampling rounds).
	LowConfidenceDropped int
	// CacheHits and CacheMisses count completion-cache lookups among the
	// calls this scan consumed (zero when no cache is configured; discarded
	// speculative prefetch calls are excluded, mirroring Prompts — though
	// at Parallelism > 1 they may warm the cache for later scans).
	CacheHits   int
	CacheMisses int
	// Parse aggregates the parser counters.
	Parse ParseStats
}

// Label names the scan's strategy for display, marking cost-based choices
// ("auto:paged").
func (s ScanStats) Label() string {
	if s.Auto {
		return "auto:" + s.Strategy.String()
	}
	return s.Strategy.String()
}

// LLMStore exposes virtual tables as an exec.Source and plan.Catalog.
// It is safe for concurrent use.
type LLMStore struct {
	model llm.Model
	cache *llm.CacheModel // completion cache in the model chain, if any
	cfg   Config
	// costModel prices candidate decompositions for the scan planner; it
	// mirrors the accounting CostModel (Engine.CostModel keeps them in
	// sync) so estimates and charges share constants.
	costModel llm.CostModel

	mu     sync.Mutex
	tables map[string]*VirtualTable
	stats  []ScanStats
	// estRows caches observed per-table cardinalities from prior scans,
	// refining the planner's estimates (see cost.go).
	estRows map[string]int
}

// NewLLMStore builds a store over the model with the given configuration.
func NewLLMStore(model llm.Model, cfg Config) *LLMStore {
	return &LLMStore{
		model:     model,
		cache:     llm.FindCache(model),
		cfg:       cfg.normalize(),
		costModel: llm.DefaultCostModel(),
		tables:    make(map[string]*VirtualTable),
		estRows:   make(map[string]int),
	}
}

// SetCostModel replaces the constants the scan planner prices with.
func (s *LLMStore) SetCostModel(c llm.CostModel) {
	s.mu.Lock()
	s.costModel = c
	s.mu.Unlock()
}

// Register declares a virtual table.
func (s *LLMStore) Register(t VirtualTable) {
	t.Name = strings.ToLower(t.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[t.Name] = &t
}

// TableSchema implements plan.Catalog.
func (s *LLMStore) TableSchema(name string) (rel.Schema, error) {
	s.mu.Lock()
	t, ok := s.tables[strings.ToLower(name)]
	s.mu.Unlock()
	if !ok {
		return rel.Schema{}, fmt.Errorf("core: unknown virtual table %q", name)
	}
	return t.Schema, nil
}

// Has reports whether a virtual table is registered.
func (s *LLMStore) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.tables[strings.ToLower(name)]
	return ok
}

// TakeStats returns and clears the accumulated scan statistics.
func (s *LLMStore) TakeStats() []ScanStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	s.stats = nil
	return out
}

// Config returns the store configuration.
func (s *LLMStore) Config() Config { return s.cfg }

// Scan implements exec.Source: it runs the configured prompt strategy and
// returns the retrieved rows.
func (s *LLMStore) Scan(req exec.ScanRequest) (exec.RowIter, error) {
	s.mu.Lock()
	t, ok := s.tables[strings.ToLower(req.Table)]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("core: unknown virtual table %q", req.Table)
	}
	cols := neededColumns(t.Schema, req.Needed)
	// Resolve the effective strategy: with StrategyAuto the cost-based
	// planner prices the decompositions for this table and column set and
	// the cheapest runs (the same decision EXPLAIN annotates).
	strategy := s.cfg.Strategy
	auto := strategy == StrategyAuto
	if auto {
		strategy = strategyByName(s.decide(t, cols).Chosen)
	}
	s.mu.Unlock()

	scan := &llmScan{
		store:    s,
		table:    t,
		schema:   req.Schema,
		cols:     cols,
		strategy: strategy,
		stats:    ScanStats{Table: t.Name, Strategy: strategy, Auto: auto},
	}
	if s.cfg.Pushdown {
		scan.filter = stripQualifiers(req.Filter)
	}

	var rows []rel.Row
	var err error
	switch strategy {
	case StrategyKeyThenAttr:
		rows, err = scan.runKeyThenAttr()
	case StrategyPaged:
		rows, err = scan.runPaged()
	default:
		rows, err = scan.runFullTable()
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.Dedup {
		rows = scan.dedup(rows)
	}
	scan.stats.RowsEmitted = len(rows)
	// Refine the planner's cardinality estimate — but only from unfiltered
	// scans: a pushed-down predicate makes the emitted count a selectivity
	// artifact, not the table's size.
	if scan.filter == nil {
		s.noteCardinality(t.Name, len(rows))
	}
	// Report this scan's simulated critical path: its phases are a
	// dependency chain, so their makespans added up along the way.
	if wa, ok := s.model.(llm.WallAdder); ok {
		wa.AddWall(scan.wall)
	}

	s.mu.Lock()
	s.stats = append(s.stats, scan.stats)
	s.mu.Unlock()
	return newSliceIter(rows), nil
}

// neededColumns converts the executor's needed mask into schema positions,
// always including the key column(s) first.
func neededColumns(schema rel.Schema, needed []bool) []int {
	keyIdx := schema.KeyIndexes()
	inKey := map[int]bool{}
	cols := make([]int, 0, schema.Len())
	for _, k := range keyIdx {
		cols = append(cols, k)
		inKey[k] = true
	}
	for i := 0; i < schema.Len(); i++ {
		if inKey[i] {
			continue
		}
		if needed == nil || needed[i] {
			cols = append(cols, i)
		}
	}
	sort.Ints(cols)
	return cols
}

// llmScan is the per-scan state machine. Model calls may fan out across a
// worker pool (Config.Parallelism), but all scan state — stats, parser
// counters, the wall-clock accumulator — is only ever touched from the
// scan's own goroutine: concurrent tasks write into index-disjoint slots and
// results are merged in deterministic order afterwards.
type llmScan struct {
	store    *LLMStore
	table    *VirtualTable
	schema   rel.Schema // alias-renamed schema expected by the executor
	cols     []int
	strategy Strategy // effective strategy (auto already resolved)
	filter   sql.Expr
	stats    ScanStats
	wall     time.Duration // simulated critical-path latency of this scan
}

func (sc *llmScan) cfg() Config { return sc.store.cfg }

func (sc *llmScan) keyPos() int { return sc.table.Schema.KeyIndexes()[0] }

// modelCall issues one raw model call. It does no accounting — callers own
// prompt counting and critical-path bookkeeping — and is safe to invoke from
// pool workers (Model implementations are concurrency-safe by contract).
func (sc *llmScan) modelCall(prompt string, seed int64) (llm.CompletionResponse, error) {
	return sc.store.model.Complete(llm.CompletionRequest{
		Prompt:      prompt,
		MaxTokens:   sc.cfg().MaxCompletionTokens,
		Temperature: sc.cfg().Temperature,
		Seed:        sc.cfg().Seed + seed,
	})
}

// addWall extends the scan's simulated critical path by d.
func (sc *llmScan) addWall(d time.Duration) { sc.wall += d }

// countCache attributes one consumed completion to the scan's cache
// counters. Counting from the response's own Cached flag is exact even when
// queries run concurrently (a global before/after counter diff is not), and
// discarded speculative calls are never attributed, mirroring Prompts.
func (sc *llmScan) countCache(cached bool) {
	if sc.store.cache == nil {
		return
	}
	if cached {
		sc.stats.CacheHits++
	} else {
		sc.stats.CacheMisses++
	}
}

// runRounds obtains one enumeration round per seed, accumulating rows keyed
// by entity, until MaxRounds or the convergence rule (StableRounds rounds
// without a new entity) stops it. At temperature zero a single round is
// issued — greedy decoding cannot produce new rows — unless promptVaries
// says each round changes the prompt (paged scans).
//
// issue performs the model call for one round; parse turns completion text
// into rows. parse always runs on the scan goroutine in round order, so
// parser statistics and caller state (paged exclude lists) need no locking.
// When the prompt is constant across rounds (promptVaries == false) and
// Parallelism allows, rounds are independent and are prefetched concurrently
// — speculatively, since convergence may stop before consuming them all.
// Consumed rounds are accounted exactly as in the serial path, so result
// rows and ScanStats are byte-identical at any parallelism; discarded
// speculative calls show up only in the model's Usage.
func (sc *llmScan) runRounds(promptVaries bool, issue func(seed int64) (llm.CompletionResponse, error), parse func(text string) []rel.Row) ([]rel.Row, error) {
	maxRounds := sc.cfg().MaxRounds
	if sc.cfg().Temperature <= 0 && !promptVaries {
		maxRounds = 1
	}

	// next yields round r's completion with critical-path accounting folded
	// in: serial rounds chain their latencies; prefetched rounds become
	// available at their virtual finish time under the lane scheduler.
	serialNext := func(round int) (llm.CompletionResponse, error) {
		resp, err := issue(int64(round))
		if err == nil {
			sc.addWall(resp.SimLatency)
		}
		return resp, err
	}
	next := serialNext
	par := sc.cfg().Parallelism
	if !promptVaries && par > 1 && maxRounds > 1 {
		// Prefetch a window of min(Parallelism, MaxRounds) rounds
		// concurrently. Speculation past the window would waste spend
		// without shortening the critical path (the lanes are already
		// full), so this caps discarded calls at Parallelism-1; rounds the
		// convergence rule wants beyond the window run serially.
		spec := par
		if spec > maxRounds {
			spec = maxRounds
		}
		resps := make([]llm.CompletionResponse, spec)
		errs := make([]error, spec)
		runTasks(par, spec, func(r int) error {
			resps[r], errs[r] = issue(int64(r))
			return nil // an error surfaces when (and if) its round is consumed
		})
		// The window never exceeds the lane count, so every round starts at
		// virtual time zero and finishes after exactly its own latency.
		finish := make([]time.Duration, spec)
		for r := range resps {
			finish[r] = resps[r].SimLatency
		}
		var consumedWall time.Duration
		next = func(round int) (llm.CompletionResponse, error) {
			if round >= spec {
				return serialNext(round)
			}
			if errs[round] != nil {
				return llm.CompletionResponse{}, errs[round]
			}
			if finish[round] > consumedWall {
				sc.addWall(finish[round] - consumedWall)
				consumedWall = finish[round]
			}
			return resps[round], nil
		}
	}

	seenKeys := map[string]bool{}
	appearances := map[string]int{} // rounds in which each entity appeared
	dedup := sc.cfg().Dedup
	var out []rel.Row
	stable := 0
	for round := 0; round < maxRounds; round++ {
		sc.stats.Rounds++
		resp, err := next(round)
		if err != nil {
			return nil, err
		}
		sc.stats.Prompts++
		sc.countCache(resp.Cached)
		rows := parse(resp.Text)
		newThisRound := 0
		seenThisRound := map[string]bool{}
		for _, row := range rows {
			key := entityKey(row, sc.keyPos())
			if !seenThisRound[key] {
				seenThisRound[key] = true
				appearances[key]++
			}
			if seenKeys[key] {
				// Convergence always tracks entity novelty, but only the
				// dedup feature (ablated in Table 7) suppresses the
				// duplicate row itself.
				if dedup {
					sc.stats.Duplicates++
					continue
				}
				out = append(out, row)
				continue
			}
			seenKeys[key] = true
			out = append(out, row)
			newThisRound++
		}
		if newThisRound == 0 {
			stable++
			if stable >= sc.cfg().StableRounds {
				break
			}
		} else {
			stable = 0
		}
	}
	out = sc.filterByConfidence(out, appearances)
	return out, nil
}

// filterByConfidence drops entities whose appearance frequency across the
// sampling rounds falls below Config.MinConfidence. Hallucinated rows tend
// to be one-off samples while real entities recur, so the filter trades a
// little recall for precision (swept in Table 8).
func (sc *llmScan) filterByConfidence(rows []rel.Row, appearances map[string]int) []rel.Row {
	minConf := sc.cfg().MinConfidence
	rounds := sc.stats.Rounds
	if minConf <= 0 || rounds <= 1 {
		return rows
	}
	// Paged scans exclude previously seen keys, so every entity appears in
	// exactly one round by construction — frequency is meaningless there.
	if sc.strategy == StrategyPaged {
		return rows
	}
	keyPos := sc.keyPos()
	kept := rows[:0]
	for _, row := range rows {
		conf := float64(appearances[entityKey(row, keyPos)]) / float64(rounds)
		if conf+1e-9 < minConf {
			sc.stats.LowConfidenceDropped++
			continue
		}
		kept = append(kept, row)
	}
	return kept
}

func entityKey(row rel.Row, keyPos int) string {
	return strings.ToLower(strings.TrimSpace(row[keyPos].AsText()))
}

// ---- strategies ----

func (sc *llmScan) runFullTable() ([]rel.Row, error) {
	prompt := buildListPrompt(sc.table, sc.cols, sc.filter, nil, 0)
	return sc.runRounds(false,
		func(seed int64) (llm.CompletionResponse, error) {
			return sc.modelCall(prompt, seed)
		},
		func(text string) []rel.Row {
			rows, stats := parseListCompletion(text, sc.table.Schema, sc.cols, sc.keyPos(), sc.cfg().Tolerant)
			sc.stats.Parse.Add(stats)
			return rows
		})
}

func (sc *llmScan) runPaged() ([]rel.Row, error) {
	// Paged enumeration: each page excludes everything already seen; the
	// rounds machinery handles convergence across pages. Pages form a
	// dependency chain (each prompt needs the previous pages' keys), so
	// promptVaries keeps them strictly serial.
	var exclude []string
	excludeSet := map[string]bool{}
	return sc.runRounds(true,
		func(seed int64) (llm.CompletionResponse, error) {
			prompt := buildListPrompt(sc.table, sc.cols, sc.filter, exclude, sc.cfg().PageSize)
			return sc.modelCall(prompt, seed)
		},
		func(text string) []rel.Row {
			rows, stats := parseListCompletion(text, sc.table.Schema, sc.cols, sc.keyPos(), sc.cfg().Tolerant)
			sc.stats.Parse.Add(stats)
			for _, row := range rows {
				key := entityKey(row, sc.keyPos())
				if !excludeSet[key] {
					excludeSet[key] = true
					exclude = append(exclude, strings.TrimSpace(row[sc.keyPos()].AsText()))
				}
			}
			return rows
		})
}

// attrVote is one self-consistency vote for one attribute cell.
type attrVote struct {
	val    rel.Value
	ok     bool
	cached bool
	lat    time.Duration
}

func (sc *llmScan) runKeyThenAttr() ([]rel.Row, error) {
	// Phase 1: enumerate keys (pushing down only filters the key column
	// alone can decide).
	keyPos := sc.keyPos()
	keyFilter := sc.filter
	if keyFilter != nil && !filterUsesOnly(keyFilter, sc.table.Schema.Col(keyPos).Name) {
		keyFilter = nil
	}
	keyPrompt := buildKeysPrompt(sc.table, keyFilter, nil, 0)
	keyRows, err := sc.runRounds(false,
		func(seed int64) (llm.CompletionResponse, error) {
			return sc.modelCall(keyPrompt, seed)
		},
		func(text string) []rel.Row {
			rows, stats := parseListCompletion(text, sc.table.Schema, []int{keyPos}, keyPos, sc.cfg().Tolerant)
			sc.stats.Parse.Add(stats)
			return rows
		})
	if err != nil {
		return nil, err
	}

	// Phase 2: attribute retrieval with Votes-way self-consistency. With
	// BatchSize <= 1 every (key, column, vote) is one small ATTR prompt;
	// with BatchSize > 1 up to BatchSize keys share one prompt per
	// (column, vote) and keys whose batched answer fails to parse fall
	// back to single-key prompts. Either way the calls are independent and
	// fan out across the worker pool; votes land in index-disjoint slots
	// and are merged in deterministic key/column/vote order afterwards,
	// never in completion order.
	attrCols := make([]int, 0, len(sc.cols))
	for _, c := range sc.cols {
		if c != keyPos {
			attrCols = append(attrCols, c)
		}
	}
	votes := sc.cfg().Votes
	keys := make([]string, len(keyRows))
	for i, row := range keyRows {
		keys[i] = strings.TrimSpace(row[keyPos].AsText())
	}
	var results []attrVote
	if sc.cfg().BatchSize > 1 && len(keys) > 0 && len(attrCols) > 0 {
		results, err = sc.attrBatched(keys, attrCols, votes)
	} else {
		results, err = sc.attrSingle(keys, attrCols, votes)
	}
	if err != nil {
		return nil, err
	}

	out := make([]rel.Row, 0, len(keyRows))
	for ki, keyRow := range keyRows {
		row := make(rel.Row, sc.table.Schema.Len())
		for i := range row {
			row[i] = rel.NullOf(sc.table.Schema.Col(i).Type)
		}
		row[keyPos] = keyRow[keyPos]
		for ci, c := range attrCols {
			base := (ki*len(attrCols) + ci) * votes
			row[c] = mergeVotes(results[base:base+votes], sc.table.Schema.Col(c).Type)
		}
		out = append(out, row)
	}
	return out, nil
}

// attrSingle is the unbatched attribute phase: one ATTR prompt per
// (key, column, vote), fanned out across the worker pool. The returned
// slice is indexed (key-major, then column, then vote).
func (sc *llmScan) attrSingle(keys []string, attrCols []int, votes int) ([]attrVote, error) {
	n := len(keys) * len(attrCols) * votes
	results := make([]attrVote, n)
	err := runTasks(sc.cfg().Parallelism, n, func(i int) error {
		ki := i / (len(attrCols) * votes)
		c := attrCols[i/votes%len(attrCols)]
		v := i % votes
		resp, err := sc.modelCall(buildAttrPrompt(sc.table, keys[ki], c), int64(1000+v))
		if err != nil {
			return err
		}
		val, ok := parseAttrCompletion(resp.Text, sc.table.Schema.Col(c).Type, sc.cfg().Tolerant)
		results[i] = attrVote{val: val, ok: ok, cached: resp.Cached, lat: resp.SimLatency}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sc.stats.Prompts += n
	// Replay the fan-out's latencies through the lane scheduler (in task
	// order) to account the phase's simulated critical path.
	sched := llm.NewSched(sc.cfg().Parallelism)
	for i := range results {
		sched.Add(results[i].lat)
		sc.countCache(results[i].cached)
	}
	sc.addWall(sched.Makespan())
	return results, nil
}

// attrBatched is the batched attribute phase: keys are chunked in order
// into groups of BatchSize, and one ATTRS prompt asks for one column of a
// whole group per vote. Batched answers are parsed per key; cells whose
// line is missing or malformed fall back to single-key prompts in a second
// fan-out, so every (key, column, vote) cell ends with exactly one vote —
// the same accounting as the unbatched phase, at ~BatchSize fewer prompts.
// The returned slice is indexed exactly like attrSingle's.
func (sc *llmScan) attrBatched(keys []string, attrCols []int, votes int) ([]attrVote, error) {
	batch := sc.cfg().BatchSize
	numBatches := (len(keys) + batch - 1) / batch

	// One task per (batch, column, vote), indexed batch-major.
	type batchAnswer struct {
		vals   []rel.Value
		ok     []bool
		found  []bool
		cached bool
		lat    time.Duration
	}
	n := numBatches * len(attrCols) * votes
	tasks := make([]batchAnswer, n)
	err := runTasks(sc.cfg().Parallelism, n, func(i int) error {
		bi := i / (len(attrCols) * votes)
		c := attrCols[i/votes%len(attrCols)]
		v := i % votes
		lo, hi := bi*batch, (bi+1)*batch
		if hi > len(keys) {
			hi = len(keys)
		}
		group := keys[lo:hi]
		resp, err := sc.modelCall(buildAttrBatchPrompt(sc.table, group, c), int64(1000+v))
		if err != nil {
			return err
		}
		vals, ok, found := parseAttrBatchCompletion(resp.Text, group, sc.table.Schema.Col(c).Type, sc.cfg().Tolerant)
		tasks[i] = batchAnswer{vals: vals, ok: ok, found: found, cached: resp.Cached, lat: resp.SimLatency}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sc.stats.Prompts += n
	sc.stats.BatchedPrompts += n
	sched := llm.NewSched(sc.cfg().Parallelism)
	for i := range tasks {
		sched.Add(tasks[i].lat)
		sc.countCache(tasks[i].cached)
	}
	sc.addWall(sched.Makespan())

	// Scatter batched answers into the (key, column, vote) layout and
	// collect the cells that need a single-key fallback.
	results := make([]attrVote, len(keys)*len(attrCols)*votes)
	var fallback []int
	for i := range results {
		ki := i / (len(attrCols) * votes)
		ci := i / votes % len(attrCols)
		v := i % votes
		t := &tasks[(ki/batch*len(attrCols)+ci)*votes+v]
		off := ki % batch
		if off < len(t.found) && t.found[off] {
			results[i] = attrVote{val: t.vals[off], ok: t.ok[off]}
			continue
		}
		fallback = append(fallback, i)
	}
	if len(fallback) == 0 {
		return results, nil
	}

	// Fallback fan-out: the single-key prompts use the same vote seeds as
	// the unbatched phase, so a repaired cell gets the answer attrSingle
	// would have retrieved for it.
	sc.stats.BatchFallbacks += len(fallback)
	fb := make([]attrVote, len(fallback))
	err = runTasks(sc.cfg().Parallelism, len(fallback), func(j int) error {
		i := fallback[j]
		ki := i / (len(attrCols) * votes)
		c := attrCols[i/votes%len(attrCols)]
		v := i % votes
		resp, err := sc.modelCall(buildAttrPrompt(sc.table, keys[ki], c), int64(1000+v))
		if err != nil {
			return err
		}
		val, ok := parseAttrCompletion(resp.Text, sc.table.Schema.Col(c).Type, sc.cfg().Tolerant)
		fb[j] = attrVote{val: val, ok: ok, cached: resp.Cached, lat: resp.SimLatency}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sc.stats.Prompts += len(fallback)
	sched = llm.NewSched(sc.cfg().Parallelism)
	for j := range fb {
		sched.Add(fb[j].lat)
		sc.countCache(fb[j].cached)
		results[fallback[j]] = attrVote{val: fb[j].val, ok: fb[j].ok}
	}
	sc.addWall(sched.Makespan())
	return results, nil
}

// mergeVotes resolves one attribute cell from its self-consistency votes:
// the value observed most often wins; ties break toward the earliest vote
// seed; all-unparsable vote sets yield NULL.
func mergeVotes(votes []attrVote, t rel.DataType) rel.Value {
	counts := map[string]int{}
	values := map[string]rel.Value{}
	var order []string
	for _, vote := range votes {
		if !vote.ok {
			continue
		}
		k := (rel.Row{vote.val}).AllKey()
		if _, seen := counts[k]; !seen {
			values[k] = vote.val
			order = append(order, k)
		}
		counts[k]++
	}
	best := ""
	bestN := 0
	for _, k := range order {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	if bestN == 0 {
		return rel.NullOf(t)
	}
	return values[best]
}

// filterUsesOnly reports whether every column reference in e is the named
// column.
func filterUsesOnly(e sql.Expr, column string) bool {
	for _, ref := range sql.ColumnRefs(e) {
		if !strings.EqualFold(ref.Name, column) {
			return false
		}
	}
	return true
}

// dedup keeps the first row per entity key.
func (sc *llmScan) dedup(rows []rel.Row) []rel.Row {
	seen := map[string]bool{}
	out := rows[:0]
	keyPos := sc.keyPos()
	for _, row := range rows {
		key := entityKey(row, keyPos)
		if seen[key] {
			sc.stats.Duplicates++
			continue
		}
		seen[key] = true
		out = append(out, row)
	}
	return out
}

// sliceIter adapts materialized rows to exec.RowIter.
type sliceIter struct {
	rows []rel.Row
	pos  int
}

func newSliceIter(rows []rel.Row) *sliceIter { return &sliceIter{rows: rows} }

// Next implements exec.RowIter.
func (s *sliceIter) Next() (rel.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements exec.RowIter.
func (s *sliceIter) Close() error { return nil }
