package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// ScanStats reports what one LLM-backed scan did.
type ScanStats struct {
	// Table is the scanned virtual table.
	Table string
	// Strategy used.
	Strategy Strategy
	// Prompts issued.
	Prompts int
	// Rounds of enumeration sampling actually run.
	Rounds int
	// Rows emitted to the executor.
	RowsEmitted int
	// Duplicates removed by entity-key dedup.
	Duplicates int
	// LowConfidenceDropped counts entities removed by the MinConfidence
	// filter (seen in too few sampling rounds).
	LowConfidenceDropped int
	// Parse aggregates the parser counters.
	Parse ParseStats
}

// LLMStore exposes virtual tables as an exec.Source and plan.Catalog.
// It is safe for concurrent use.
type LLMStore struct {
	model llm.Model
	cfg   Config

	mu     sync.Mutex
	tables map[string]*VirtualTable
	stats  []ScanStats
}

// NewLLMStore builds a store over the model with the given configuration.
func NewLLMStore(model llm.Model, cfg Config) *LLMStore {
	return &LLMStore{
		model:  model,
		cfg:    cfg.normalize(),
		tables: make(map[string]*VirtualTable),
	}
}

// Register declares a virtual table.
func (s *LLMStore) Register(t VirtualTable) {
	t.Name = strings.ToLower(t.Name)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[t.Name] = &t
}

// TableSchema implements plan.Catalog.
func (s *LLMStore) TableSchema(name string) (rel.Schema, error) {
	s.mu.Lock()
	t, ok := s.tables[strings.ToLower(name)]
	s.mu.Unlock()
	if !ok {
		return rel.Schema{}, fmt.Errorf("core: unknown virtual table %q", name)
	}
	return t.Schema, nil
}

// Has reports whether a virtual table is registered.
func (s *LLMStore) Has(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.tables[strings.ToLower(name)]
	return ok
}

// TakeStats returns and clears the accumulated scan statistics.
func (s *LLMStore) TakeStats() []ScanStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	s.stats = nil
	return out
}

// Config returns the store configuration.
func (s *LLMStore) Config() Config { return s.cfg }

// Scan implements exec.Source: it runs the configured prompt strategy and
// returns the retrieved rows.
func (s *LLMStore) Scan(req exec.ScanRequest) (exec.RowIter, error) {
	s.mu.Lock()
	t, ok := s.tables[strings.ToLower(req.Table)]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown virtual table %q", req.Table)
	}

	scan := &llmScan{
		store:  s,
		table:  t,
		schema: req.Schema,
		cols:   neededColumns(t.Schema, req.Needed),
		stats:  ScanStats{Table: t.Name, Strategy: s.cfg.Strategy},
	}
	if s.cfg.Pushdown {
		scan.filter = stripQualifiers(req.Filter)
	}

	var rows []rel.Row
	var err error
	switch s.cfg.Strategy {
	case StrategyKeyThenAttr:
		rows, err = scan.runKeyThenAttr()
	case StrategyPaged:
		rows, err = scan.runPaged()
	default:
		rows, err = scan.runFullTable()
	}
	if err != nil {
		return nil, err
	}
	if s.cfg.Dedup {
		rows = scan.dedup(rows)
	}
	scan.stats.RowsEmitted = len(rows)

	s.mu.Lock()
	s.stats = append(s.stats, scan.stats)
	s.mu.Unlock()
	return newSliceIter(rows), nil
}

// neededColumns converts the executor's needed mask into schema positions,
// always including the key column(s) first.
func neededColumns(schema rel.Schema, needed []bool) []int {
	keyIdx := schema.KeyIndexes()
	inKey := map[int]bool{}
	cols := make([]int, 0, schema.Len())
	for _, k := range keyIdx {
		cols = append(cols, k)
		inKey[k] = true
	}
	for i := 0; i < schema.Len(); i++ {
		if inKey[i] {
			continue
		}
		if needed == nil || needed[i] {
			cols = append(cols, i)
		}
	}
	sort.Ints(cols)
	return cols
}

// llmScan is the per-scan state machine.
type llmScan struct {
	store  *LLMStore
	table  *VirtualTable
	schema rel.Schema // alias-renamed schema expected by the executor
	cols   []int
	filter sql.Expr
	stats  ScanStats
}

func (sc *llmScan) cfg() Config { return sc.store.cfg }

func (sc *llmScan) keyPos() int { return sc.table.Schema.KeyIndexes()[0] }

// complete issues one model call, counting it.
func (sc *llmScan) complete(prompt string, seed int64) (llm.CompletionResponse, error) {
	sc.stats.Prompts++
	return sc.store.model.Complete(llm.CompletionRequest{
		Prompt:      prompt,
		MaxTokens:   sc.cfg().MaxCompletionTokens,
		Temperature: sc.cfg().Temperature,
		Seed:        sc.cfg().Seed + seed,
	})
}

// runRounds repeatedly invokes fetch (one enumeration round per seed),
// accumulating rows keyed by entity, until MaxRounds or the convergence
// rule (StableRounds rounds without a new entity) stops it. At temperature
// zero a single round is issued — greedy decoding cannot produce new rows —
// unless promptVaries says each round changes the prompt (paged scans).
func (sc *llmScan) runRounds(promptVaries bool, fetch func(seed int64) ([]rel.Row, error)) ([]rel.Row, error) {
	maxRounds := sc.cfg().MaxRounds
	if sc.cfg().Temperature <= 0 && !promptVaries {
		maxRounds = 1
	}
	seenKeys := map[string]bool{}
	appearances := map[string]int{} // rounds in which each entity appeared
	dedup := sc.cfg().Dedup
	var out []rel.Row
	stable := 0
	for round := 0; round < maxRounds; round++ {
		sc.stats.Rounds++
		rows, err := fetch(int64(round))
		if err != nil {
			return nil, err
		}
		newThisRound := 0
		seenThisRound := map[string]bool{}
		for _, row := range rows {
			key := entityKey(row, sc.keyPos())
			if !seenThisRound[key] {
				seenThisRound[key] = true
				appearances[key]++
			}
			if seenKeys[key] {
				// Convergence always tracks entity novelty, but only the
				// dedup feature (ablated in Table 7) suppresses the
				// duplicate row itself.
				if dedup {
					sc.stats.Duplicates++
					continue
				}
				out = append(out, row)
				continue
			}
			seenKeys[key] = true
			out = append(out, row)
			newThisRound++
		}
		if newThisRound == 0 {
			stable++
			if stable >= sc.cfg().StableRounds {
				break
			}
		} else {
			stable = 0
		}
	}
	out = sc.filterByConfidence(out, appearances)
	return out, nil
}

// filterByConfidence drops entities whose appearance frequency across the
// sampling rounds falls below Config.MinConfidence. Hallucinated rows tend
// to be one-off samples while real entities recur, so the filter trades a
// little recall for precision (swept in Table 8).
func (sc *llmScan) filterByConfidence(rows []rel.Row, appearances map[string]int) []rel.Row {
	minConf := sc.cfg().MinConfidence
	rounds := sc.stats.Rounds
	if minConf <= 0 || rounds <= 1 {
		return rows
	}
	// Paged scans exclude previously seen keys, so every entity appears in
	// exactly one round by construction — frequency is meaningless there.
	if sc.cfg().Strategy == StrategyPaged {
		return rows
	}
	keyPos := sc.keyPos()
	kept := rows[:0]
	for _, row := range rows {
		conf := float64(appearances[entityKey(row, keyPos)]) / float64(rounds)
		if conf+1e-9 < minConf {
			sc.stats.LowConfidenceDropped++
			continue
		}
		kept = append(kept, row)
	}
	return kept
}

func entityKey(row rel.Row, keyPos int) string {
	return strings.ToLower(strings.TrimSpace(row[keyPos].AsText()))
}

// ---- strategies ----

func (sc *llmScan) runFullTable() ([]rel.Row, error) {
	prompt := buildListPrompt(sc.table, sc.cols, sc.filter, nil, 0)
	return sc.runRounds(false, func(seed int64) ([]rel.Row, error) {
		resp, err := sc.complete(prompt, seed)
		if err != nil {
			return nil, err
		}
		rows, stats := parseListCompletion(resp.Text, sc.table.Schema, sc.cols, sc.keyPos(), sc.cfg().Tolerant)
		sc.stats.Parse.Add(stats)
		return rows, nil
	})
}

func (sc *llmScan) runPaged() ([]rel.Row, error) {
	// Paged enumeration: each page excludes everything already seen; the
	// rounds machinery handles convergence across pages.
	var exclude []string
	excludeSet := map[string]bool{}
	return sc.runRounds(true, func(seed int64) ([]rel.Row, error) {
		prompt := buildListPrompt(sc.table, sc.cols, sc.filter, exclude, sc.cfg().PageSize)
		resp, err := sc.complete(prompt, seed)
		if err != nil {
			return nil, err
		}
		rows, stats := parseListCompletion(resp.Text, sc.table.Schema, sc.cols, sc.keyPos(), sc.cfg().Tolerant)
		sc.stats.Parse.Add(stats)
		for _, row := range rows {
			key := entityKey(row, sc.keyPos())
			if !excludeSet[key] {
				excludeSet[key] = true
				exclude = append(exclude, strings.TrimSpace(row[sc.keyPos()].AsText()))
			}
		}
		return rows, nil
	})
}

func (sc *llmScan) runKeyThenAttr() ([]rel.Row, error) {
	// Phase 1: enumerate keys (pushing down only filters the key column
	// alone can decide).
	keyPos := sc.keyPos()
	keyFilter := sc.filter
	if keyFilter != nil && !filterUsesOnly(keyFilter, sc.table.Schema.Col(keyPos).Name) {
		keyFilter = nil
	}
	keyPrompt := buildKeysPrompt(sc.table, keyFilter, nil, 0)
	keyRows, err := sc.runRounds(false, func(seed int64) ([]rel.Row, error) {
		resp, err := sc.complete(keyPrompt, seed)
		if err != nil {
			return nil, err
		}
		rows, stats := parseListCompletion(resp.Text, sc.table.Schema, []int{keyPos}, keyPos, sc.cfg().Tolerant)
		sc.stats.Parse.Add(stats)
		return rows, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: one ATTR prompt per key and needed non-key column, with
	// self-consistency voting.
	out := make([]rel.Row, 0, len(keyRows))
	for _, keyRow := range keyRows {
		key := strings.TrimSpace(keyRow[keyPos].AsText())
		row := make(rel.Row, sc.table.Schema.Len())
		for i := range row {
			row[i] = rel.NullOf(sc.table.Schema.Col(i).Type)
		}
		row[keyPos] = keyRow[keyPos]
		for _, c := range sc.cols {
			if c == keyPos {
				continue
			}
			v, err := sc.fetchAttr(key, c)
			if err != nil {
				return nil, err
			}
			row[c] = v
		}
		out = append(out, row)
	}
	return out, nil
}

// fetchAttr retrieves one attribute with Votes-way self-consistency: the
// value observed most often wins; ties break toward the earliest seed.
func (sc *llmScan) fetchAttr(key string, col int) (rel.Value, error) {
	t := sc.table.Schema.Col(col).Type
	prompt := buildAttrPrompt(sc.table, key, col)
	votes := sc.cfg().Votes
	counts := map[string]int{}
	values := map[string]rel.Value{}
	var order []string
	for v := 0; v < votes; v++ {
		resp, err := sc.complete(prompt, int64(1000+v))
		if err != nil {
			return rel.Value{}, err
		}
		val, ok := parseAttrCompletion(resp.Text, t, sc.cfg().Tolerant)
		if !ok {
			continue
		}
		k := (rel.Row{val}).AllKey()
		if _, seen := counts[k]; !seen {
			values[k] = val
			order = append(order, k)
		}
		counts[k]++
	}
	best := ""
	bestN := 0
	for _, k := range order {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	if bestN == 0 {
		return rel.NullOf(t), nil
	}
	return values[best], nil
}

// filterUsesOnly reports whether every column reference in e is the named
// column.
func filterUsesOnly(e sql.Expr, column string) bool {
	for _, ref := range sql.ColumnRefs(e) {
		if !strings.EqualFold(ref.Name, column) {
			return false
		}
	}
	return true
}

// dedup keeps the first row per entity key.
func (sc *llmScan) dedup(rows []rel.Row) []rel.Row {
	seen := map[string]bool{}
	out := rows[:0]
	keyPos := sc.keyPos()
	for _, row := range rows {
		key := entityKey(row, keyPos)
		if seen[key] {
			sc.stats.Duplicates++
			continue
		}
		seen[key] = true
		out = append(out, row)
	}
	return out
}

// sliceIter adapts materialized rows to exec.RowIter.
type sliceIter struct {
	rows []rel.Row
	pos  int
}

func newSliceIter(rows []rel.Row) *sliceIter { return &sliceIter{rows: rows} }

// Next implements exec.RowIter.
func (s *sliceIter) Next() (rel.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements exec.RowIter.
func (s *sliceIter) Close() error { return nil }
