package core

import (
	"fmt"
	"sync"

	"llmsql/internal/llm"
	"llmsql/internal/storage"
	"llmsql/internal/world"
)

// EngineGroup is the multi-session form of the engine, built for serving:
// one shared backend stack answers many per-session engines. The shared
// layers — outermost first —
//
//	Coalescer                           cross-session request coalescing
//	DiskCache                           Config.CacheDir != ""
//	Retrier                             fault tolerance (always)
//	CountingModel                       live (operator-side) usage
//	Chaos                               Config.Chaos enabled
//	trace recorder | trace replayer     Config.RecordTrace / ReplayTrace
//	model                               the base backend
//
// sit below every session, while each Session() engine keeps its own
// CountingModel (billing), optional in-memory CacheModel and plan cache on
// top. The coalescer merges identical requests across sessions — concurrent
// or, via its memo, consecutive — so N sessions scanning the same virtual
// table cost one live fan-out; because coalesced responses preserve the
// original cache flags and billing, every session's rows, ScanStats (modulo
// CoalescedHits) and Usage are bit-identical to what a solo engine would
// report, and the saving appears only in the group's operator-side stats.
//
// The group also acts as the session registry: tables registered on the
// group (before or after sessions exist) propagate to every session, all
// sessions share one local row store, and local writes through any session
// can be broadcast to the others' plan caches via InvalidatePlans. All
// methods are safe for concurrent use.
type EngineGroup struct {
	shared  llm.Model // the stack below the sessions, coalescer outermost
	coal    *llm.Coalescer
	live    *llm.CountingModel
	disk    *llm.DiskCache
	retrier *llm.Retrier
	chaos   *llm.Chaos // optional, per Config.Chaos
	cfg     Config

	mu       sync.Mutex
	tables   []VirtualTable
	local    *storage.DB
	sessions map[*Engine]struct{}
	total    int       // sessions ever created
	closed   llm.Usage // billed usage of sessions already closed
	// closedViews accumulates the materialized-view counters of sessions
	// already closed (views are session-local, like prepared statements).
	closedViews ViewStats
}

// NewEngineGroup assembles the shared serving stack over the model. The
// configuration is the one every session engine will run with; its CacheDir,
// CacheMaxBytes, RecordTrace, ReplayTrace and CoalesceCapacity configure the
// shared layers (sessions never re-add them), while CacheCapacity and
// PlanCacheCapacity stay per-session.
func NewEngineGroup(model llm.Model, cfg Config) (*EngineGroup, error) {
	base := model
	switch {
	case cfg.ReplayTrace != nil:
		base = cfg.ReplayTrace.Replay(model.Name())
	case cfg.RecordTrace != nil:
		base = cfg.RecordTrace.Record(model)
	}
	var chaos *llm.Chaos
	if cfg.Chaos.Enabled() {
		chaos = llm.NewChaos(base, cfg.Chaos)
		base = chaos
	}
	// Live counting sits below the disk cache and the retrier: it sees
	// exactly the successful traffic the operator pays the provider for
	// (disk hits never reach it; hedge duplicates do, since both halves of
	// a race are real calls).
	live := llm.NewCounting(base)
	// One shared retrier below the coalescer: retries and hedges of a
	// coalesced leader are run once and every follower receives the same
	// recovered (and identically billed) response — hedging never
	// double-bills a cohort.
	retrier := llm.NewRetrier(live, cfg.Retry)
	shared := llm.Model(retrier)
	var disk *llm.DiskCache
	if cfg.CacheDir != "" {
		var err error
		disk, err = llm.NewDiskCache(shared, cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, fmt.Errorf("core: open cache dir %q: %w", cfg.CacheDir, err)
		}
		shared = disk
	}
	coal := llm.NewCoalescerSized(shared, cfg.CoalesceCapacity)
	return &EngineGroup{
		shared:   coal,
		coal:     coal,
		live:     live,
		disk:     disk,
		retrier:  retrier,
		chaos:    chaos,
		cfg:      cfg,
		local:    storage.NewDB(),
		sessions: make(map[*Engine]struct{}),
	}, nil
}

// Session returns a fresh engine over the shared stack: its own billing
// CountingModel, in-memory cache and plan cache, with every table the group
// knows already registered and the group's local row store attached. Release
// it with CloseSession when the session ends.
func (g *EngineGroup) Session() *Engine {
	cfg := g.cfg
	// The shared layers must not be duplicated per session: in particular a
	// per-session Retrier above the shared one would multiply attempt
	// budgets, and a per-session Chaos would fault the same request twice.
	cfg.CacheDir = ""
	cfg.CacheMaxBytes = 0
	cfg.RecordTrace = nil
	cfg.ReplayTrace = nil
	cfg.Chaos = llm.ChaosProfile{}
	cfg.sharedFaultLayer = true
	e := New(g.shared, cfg)
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, t := range g.tables {
		e.RegisterTable(t)
	}
	e.AttachLocal(g.local)
	g.sessions[e] = struct{}{}
	g.total++
	return e
}

// CloseSession retires a session engine: its billed usage is folded into the
// group totals and it leaves the registry. The engine must not be used
// afterwards.
func (g *EngineGroup) CloseSession(e *Engine) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.sessions[e]; !ok {
		return
	}
	delete(g.sessions, e)
	g.closed.Add(e.TotalUsage())
	g.closedViews.Add(e.ViewStats())
}

// RegisterTable declares a virtual table on the group and on every live
// session.
func (g *EngineGroup) RegisterTable(t VirtualTable) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tables = append(g.tables, t)
	for e := range g.sessions {
		e.RegisterTable(t)
	}
}

// RegisterWorldDomain declares a virtual table mirroring a synthetic-world
// domain, like Engine.RegisterWorldDomain.
func (g *EngineGroup) RegisterWorldDomain(d *world.Domain) {
	g.RegisterTable(VirtualTable{
		Name:        d.Name,
		Description: d.Description,
		Schema:      d.Schema,
		EstRows:     len(d.Entities),
	})
}

// Local returns the shared local row store. Operators load reference tables
// into it before serving; sessions join them with virtual tables.
func (g *EngineGroup) Local() *storage.DB { return g.local }

// AttachLocal replaces the shared local row store for the group and every
// live session (normally done before serving starts).
func (g *EngineGroup) AttachLocal(db *storage.DB) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.local = db
	for e := range g.sessions {
		e.AttachLocal(db)
	}
}

// InvalidatePlans discards every session's cached plans. Serving layers call
// it after a local write through one session: the write already invalidated
// that session's cache, but the others share the row store and must notice
// too.
func (g *EngineGroup) InvalidatePlans() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for e := range g.sessions {
		e.invalidatePlans()
	}
}

// Close releases the shared stack (the persistent cache's segment file).
// Sessions must be closed first; the group must not be used after Close.
func (g *EngineGroup) Close() error {
	if g.disk == nil {
		return nil
	}
	return g.disk.Close()
}

// GroupStats is the operator-side view of a serving group: how many
// sessions, what they were billed, and what the backend actually cost after
// coalescing and caching.
type GroupStats struct {
	// Sessions is the live session count; TotalSessions counts every
	// session ever created.
	Sessions      int
	TotalSessions int
	// Billed is the sum of every session's Usage (live and closed): what
	// the sessions collectively experienced, identical to what the same
	// queries would have cost run solo.
	Billed llm.Usage
	// Live is the consumption that actually reached the base backend, below
	// the coalescer and the persistent cache — what the operator pays. The
	// gap between Billed and Live is the serving layer's saving.
	Live llm.Usage
	// Coalescer reports the request-coalescing counters.
	Coalescer llm.CoalescerStats
	// DiskCache reports the shared persistent cache (zero without one).
	DiskCache llm.DiskCacheStats
	// Retrier reports the shared fault-tolerance layer's recovery work
	// (all zero on a healthy backend).
	Retrier llm.RetrierStats
	// Chaos reports the fault injector's counters (zero when Config.Chaos
	// is disabled).
	Chaos llm.ChaosStats
	// Views aggregates materialized-view activity across every session,
	// live and closed: how many views were built, how many scans the row
	// stores absorbed, and what refreshes actually cost live.
	Views ViewStats
}

// Stats returns a snapshot of the group's operator-side counters.
func (g *EngineGroup) Stats() GroupStats {
	g.mu.Lock()
	s := GroupStats{
		Sessions:      len(g.sessions),
		TotalSessions: g.total,
		Billed:        g.closed,
		Views:         g.closedViews,
	}
	for e := range g.sessions {
		s.Billed.Add(e.TotalUsage())
		s.Views.Add(e.ViewStats())
	}
	g.mu.Unlock()
	s.Live = g.live.Usage()
	s.Coalescer = g.coal.Stats()
	if g.disk != nil {
		s.DiskCache = g.disk.Stats()
	}
	s.Retrier = g.retrier.Stats()
	if g.chaos != nil {
		s.Chaos = g.chaos.Stats()
	}
	return s
}

// CoalescerStats returns the shared coalescer's counters.
func (g *EngineGroup) CoalescerStats() llm.CoalescerStats { return g.coal.Stats() }
