package core

import (
	"reflect"
	"testing"

	"llmsql/internal/llm"
)

// groupConfig is the serving-test workload shape: the key-then-attr hot
// path with voting, sampling and both fan-out axes live, no per-session
// memory cache (so every consumed call is visible to the coalescer).
func groupConfig() Config {
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Votes = 2
	cfg.MaxRounds = 3
	cfg.Temperature = 0.7
	cfg.Parallelism = 2
	cfg.BatchSize = 2
	return cfg
}

// zeroCoalesced strips the only field allowed to differ between a solo run
// and a coalesced session run.
func zeroCoalesced(scans []ScanStats) []ScanStats {
	out := make([]ScanStats, len(scans))
	for i, s := range scans {
		s.CoalescedHits = 0
		out[i] = s
	}
	return out
}

func TestGroupSessionsSoloIdenticalWithOneLiveFanOut(t *testing.T) {
	w := parWorld()
	const query = "SELECT name, capital, population FROM country"

	// Reference: a solo engine over its own model.
	solo := New(llm.NewSynthLM(w, llm.ProfileMedium, 7), groupConfig())
	for _, name := range w.DomainNames() {
		solo.RegisterWorldDomain(w.Domain(name))
	}
	soloRes, err := solo.Query(query)
	if err != nil {
		t.Fatal(err)
	}

	g, err := NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), groupConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, name := range w.DomainNames() {
		g.RegisterWorldDomain(w.Domain(name))
	}

	const K = 3
	for i := 0; i < K; i++ {
		e := g.Session()
		res, err := e.Query(query)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if got, want := renderRows(res.Result.Rows), renderRows(soloRes.Result.Rows); got != want {
			t.Fatalf("session %d rows differ from solo run", i)
		}
		if res.Usage != soloRes.Usage {
			t.Fatalf("session %d usage differs: %+v vs solo %+v", i, res.Usage, soloRes.Usage)
		}
		if !reflect.DeepEqual(zeroCoalesced(res.Scans), zeroCoalesced(soloRes.Scans)) {
			t.Fatalf("session %d scans differ: %+v vs solo %+v", i, res.Scans, soloRes.Scans)
		}
		if i == 0 {
			if res.Scans[0].CoalescedHits != 0 {
				t.Fatalf("first session must be all live: %+v", res.Scans[0])
			}
		} else if got := res.Scans[0].CoalescedHits; got != res.Scans[0].Prompts {
			t.Fatalf("session %d: %d of %d consumed calls coalesced", i, got, res.Scans[0].Prompts)
		}
		g.CloseSession(e)
	}

	s := g.Stats()
	if s.Coalescer.LiveCalls != soloRes.Usage.Calls {
		t.Fatalf("live calls = %d, want one fan-out = %d", s.Coalescer.LiveCalls, soloRes.Usage.Calls)
	}
	if s.Coalescer.Hits() != (K-1)*soloRes.Usage.Calls {
		t.Fatalf("coalesced hits = %d, want %d", s.Coalescer.Hits(), (K-1)*soloRes.Usage.Calls)
	}
	if s.Billed.Calls != K*soloRes.Usage.Calls {
		t.Fatalf("billed calls = %d, want %d", s.Billed.Calls, K*soloRes.Usage.Calls)
	}
	if s.Live.Calls != soloRes.Usage.Calls || s.Live.TotalTokens() != soloRes.Usage.TotalTokens() {
		t.Fatalf("live usage %+v, want solo %+v", s.Live, soloRes.Usage)
	}
	if s.TotalSessions != K || s.Sessions != 0 {
		t.Fatalf("session counts: %+v", s)
	}
}

func TestGroupRegistrationPropagatesToLiveSessions(t *testing.T) {
	w := parWorld()
	g, err := NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), groupConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	e := g.Session() // created before any table exists
	g.RegisterWorldDomain(w.Domain("country"))
	if _, err := e.Query("SELECT name FROM country LIMIT 1"); err != nil {
		t.Fatalf("live session must see tables registered later: %v", err)
	}
	// And sessions created afterwards see them too.
	e2 := g.Session()
	if _, err := e2.Query("SELECT name FROM country LIMIT 1"); err != nil {
		t.Fatal(err)
	}
}

func TestGroupSharedLocalStore(t *testing.T) {
	w := parWorld()
	g, err := NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), groupConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	a, b := g.Session(), g.Session()
	// Warm b's plan cache on a statement the write below could invalidate.
	if err := a.Exec("CREATE TABLE note (id INT PRIMARY KEY, body TEXT)"); err != nil {
		t.Fatal(err)
	}
	if err := a.Exec("INSERT INTO note VALUES (1, 'hello')"); err != nil {
		t.Fatal(err)
	}
	g.InvalidatePlans()
	res, err := b.Query("SELECT body FROM note")
	if err != nil {
		t.Fatalf("write through session a must be visible to session b: %v", err)
	}
	if len(res.Result.Rows) != 1 || res.Result.Rows[0][0].String() != "hello" {
		t.Fatalf("rows: %v", res.Result.Rows)
	}
}

func TestGroupCloseSessionFoldsBilledUsage(t *testing.T) {
	w := parWorld()
	g, err := NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), groupConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.RegisterWorldDomain(w.Domain("country"))
	e := g.Session()
	res, err := e.Query("SELECT name FROM country LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	before := g.Stats()
	g.CloseSession(e)
	g.CloseSession(e) // double-close is a no-op
	after := g.Stats()
	if before.Billed != after.Billed {
		t.Fatalf("billed usage changed across close: %+v vs %+v", before.Billed, after.Billed)
	}
	if after.Billed.Calls != res.Usage.Calls {
		t.Fatalf("billed calls = %d, want %d", after.Billed.Calls, res.Usage.Calls)
	}
}
