package core

import "sync"

// runTasks executes tasks 0..n-1 with at most parallelism of them in flight
// at once. Tasks must write their results into caller-owned, index-disjoint
// slots — the pool imposes no ordering, so any merge that depends on order
// must happen afterwards, over the slots, in index order.
//
// Error semantics match a serial loop as closely as concurrency allows: once
// any task fails, no further tasks are launched, and after all in-flight
// tasks drain the error of the lowest-indexed failed task is returned (so
// the reported error does not depend on goroutine completion order).
func runTasks(parallelism, n int, task func(i int) error) error {
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := task(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	sem := make(chan struct{}, parallelism)
	for i := 0; i < n; i++ {
		mu.Lock()
		failed := firstIdx < n
		mu.Unlock()
		if failed {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := task(i); err != nil {
				mu.Lock()
				if i < firstIdx {
					firstIdx, firstErr = i, err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
