package core

import (
	"container/list"
	"sync"

	"llmsql/internal/plan"
	"llmsql/internal/sql"
)

// DefaultPlanCacheCapacity bounds the engine's prepared-plan cache when
// Config.PlanCacheCapacity selects the default.
const DefaultPlanCacheCapacity = 256

// stmtKind classifies what a prepared statement does when run. All entry
// points (Query, QueryAnalyze, Explain, prepared statements) share this one
// classification, so EXPLAIN and EXPLAIN ANALYZE behave identically
// everywhere.
type stmtKind int

const (
	kindSelect stmtKind = iota
	kindExplain
	kindExplainAnalyze
)

// preparedQuery owns the parsed AST and planned tree of one SELECT (or
// EXPLAIN [ANALYZE] SELECT). The plan is immutable after planning: execution
// binds parameters by copying expr-bearing nodes (plan.Bind), never by
// mutation, so one preparedQuery may serve concurrent executions and stay
// cached across queries.
type preparedQuery struct {
	kind stmtKind
	sel  *sql.SelectStmt
	node plan.Node
	// named is true when the statement uses :name parameters; nparams is the
	// number of positional parameters otherwise.
	named   bool
	nparams int
	params  []*sql.Param
	// gen is the engine's catalog generation at planning time; a bumped
	// generation (new table registered, cost model changed) invalidates the
	// plan.
	gen uint64
}

// PlanCacheStats reports the prepared-plan cache's effectiveness.
type PlanCacheStats struct {
	// Hits counts lookups answered with a cached plan (no re-parse/re-plan).
	Hits int64
	// Misses counts lookups that had to parse and plan.
	Misses int64
	// Entries is the current number of cached plans.
	Entries int
	// Evictions counts plans dropped by the LRU bound or invalidation.
	Evictions int64
}

// planCache is a bounded LRU of prepared plans keyed on normalized SQL text
// (sql.Normalize), so spelling differences — case, whitespace, comments,
// ?-vs-$n — share one entry.
type planCache struct {
	mu        sync.Mutex
	capacity  int
	entries   map[string]*list.Element
	lru       *list.List // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

type planCacheEntry struct {
	key string
	pq  *preparedQuery
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		lru:      list.New(),
	}
}

// get returns the cached plan for key when present and planned at the
// current generation; stale entries are dropped.
func (c *planCache) get(key string, gen uint64) *preparedQuery {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	ent := el.Value.(*planCacheEntry)
	if ent.pq.gen != gen {
		c.lru.Remove(el)
		delete(c.entries, key)
		c.evictions++
		c.misses++
		return nil
	}
	c.lru.MoveToFront(el)
	c.hits++
	return ent.pq
}

// put stores a plan, evicting the least recently used entry past capacity.
func (c *planCache) put(key string, pq *preparedQuery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*planCacheEntry).pq = pq
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&planCacheEntry{key: key, pq: pq})
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*planCacheEntry).key)
		c.evictions++
	}
}

// purge drops every entry (catalog or cost-model change).
func (c *planCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.lru.Len()
	c.lru.Init()
	c.entries = make(map[string]*list.Element, c.capacity)
	c.evictions += int64(n)
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Entries:   c.lru.Len(),
		Evictions: c.evictions,
	}
}
