package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"llmsql/internal/llm"
	"llmsql/internal/world"
)

// faultRun captures everything the fault-sweep properties compare.
type faultRun struct {
	rows  string
	usage llm.Usage
	scans []ScanStats
}

// runFaultQuery executes one query on a fresh engine over the shared test
// world. Any query error fails the test: in PartialResults mode a scan
// degrades around exhausted retries instead of surfacing them.
func runFaultQuery(t *testing.T, w *world.World, cfg Config, query string) faultRun {
	t.Helper()
	e := New(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}
	res, err := e.Query(query)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	return faultRun{rows: renderRows(res.Result.Rows), usage: res.Usage, scans: res.Scans}
}

// rowsStrictSubset reports whether got's rows form a proper sub-multiset
// of base's: every emitted row (with multiplicity) also appears in the
// fault-free run, and at least one base row is missing. Degradation may
// drop rows — never invent, mutate, or duplicate them.
func rowsStrictSubset(base, got string) bool {
	counts := map[string]int{}
	total := 0
	for _, line := range strings.Split(base, "\n") {
		if line != "" {
			counts[line]++
			total++
		}
	}
	kept := 0
	for _, line := range strings.Split(got, "\n") {
		if line == "" {
			continue
		}
		if counts[line] == 0 {
			return false // a row the fault-free run never produced
		}
		counts[line]--
		kept++
	}
	return kept < total
}

// checkRowGuarantee classifies got against the fault-free baseline and
// fails the test on any violation of the degradation contract: foreign or
// duplicated rows, rows dropped without a failed key, or failed keys that
// left the output untouched. Returns whether the run was byte-identical.
func checkRowGuarantee(t *testing.T, label, baseRows, gotRows string, scans []ScanStats) bool {
	t.Helper()
	failed := 0
	for _, s := range scans {
		failed += s.KeysFailed
	}
	switch {
	case gotRows == baseRows:
		if failed != 0 {
			t.Fatalf("%s: %d keys failed yet rows are byte-identical", label, failed)
		}
		return true
	case rowsStrictSubset(baseRows, gotRows):
		if failed == 0 {
			t.Fatalf("%s: rows dropped without a failed key", label)
		}
		return false
	default:
		t.Fatalf("%s: rows neither byte-identical nor a strict subset of the fault-free run\nbase:\n%sgot:\n%s",
			label, baseRows, gotRows)
		return false
	}
}

// TestFaultSweepRowGuaranteeAndReplayBilling is the fault layer's property
// test: across a sweep of fault seed x Parallelism x BatchSize it asserts
// the two degradation contracts end to end.
//
//  1. Row guarantee — under seeded chaos with PartialResults on, a scan's
//     rows are byte-identical to the fault-free run when retries sufficed
//     and a strict sub-multiset of it when budgets exhausted, with the
//     dropped rows accounted in ScanStats.KeysFailed.
//  2. Replay billing — recording the chaos run's trace and replaying it
//     under the same chaos profile reproduces the billed usage exactly:
//     the fault stream, the retry/backoff/hedge charges, and the recorded
//     completions all re-derive from the same seeds.
func TestFaultSweepRowGuaranteeAndReplayBilling(t *testing.T) {
	w := parWorld()
	const query = "SELECT name, capital, population FROM country"

	// Fault-free baselines, one per batch size: batching reshapes the ATTR
	// prompts, so each BatchSize has its own (deterministic) answer set.
	// Parallelism never changes rows — every variant below compares
	// against the P=1 run of its batch size.
	base := map[int]faultRun{}
	for _, b := range []int{1, 3} {
		base[b] = runFaultQuery(t, w, replayConfig(1, b), query)
		if base[b].rows == "" {
			t.Fatalf("fault-free baseline (B=%d) returned no rows", b)
		}
	}

	profiles := []struct {
		name    string
		chaos   llm.ChaosProfile // Seed filled per sweep point
		hedge   time.Duration
		breaker int
	}{
		// Moderate: every fault clears inside the default 4-attempt budget
		// (exhaustion probability 0.15^4 ≈ 0.05%), so rows must come back
		// byte-identical; spikes above the hedge threshold exercise the
		// hedged-request path under recording.
		{"moderate", llm.ChaosProfile{TransientRate: 0.10, RateLimitRate: 0.05, SpikeRate: 0.2, SpikeLatency: 2 * time.Second}, time.Second, 0},
		// Harsh: 0.55^4 ≈ 9% of calls exhaust their budget, forcing the
		// strict-subset path. The breaker is disabled here because its
		// consecutive-failure counter depends on cross-goroutine completion
		// order — the one piece of retry state that is not a pure function
		// of the fault stream — and this test pins byte-identical replay.
		{"harsh", llm.ChaosProfile{TransientRate: 0.55}, 0, -1},
	}
	type variant struct{ p, b int }
	variants := []variant{{1, 1}, {4, 1}, {1, 3}, {4, 3}}

	identical, subset, hedgesWon := 0, 0, 0
	for _, seed := range []int64{11, 23, 57} {
		for _, pr := range profiles {
			chaos := pr.chaos
			chaos.Seed = seed
			for _, v := range variants {
				label := fmt.Sprintf("seed=%d %s P=%d B=%d", seed, pr.name, v.p, v.b)
				faultCfg := func() Config {
					cfg := replayConfig(v.p, v.b)
					cfg.Chaos = chaos
					cfg.PartialResults = true
					cfg.Retry.HedgeAfter = pr.hedge
					cfg.Retry.BreakerThreshold = pr.breaker
					return cfg
				}

				trace := llm.NewTrace()
				cfg := faultCfg()
				cfg.RecordTrace = trace
				live := runFaultQuery(t, w, cfg, query)
				if checkRowGuarantee(t, label, base[v.b].rows, live.rows, live.scans) {
					identical++
				} else {
					subset++
				}
				for _, s := range live.scans {
					hedgesWon += s.HedgesWon
				}

				replayCfg := faultCfg()
				replayCfg.ReplayTrace = trace
				rep := runFaultQuery(t, w, replayCfg, query)
				if rep.rows != live.rows {
					t.Fatalf("%s: replay changed rows", label)
				}
				if !usageEquivalent(rep.usage, live.usage) {
					t.Fatalf("%s: billed usage under replay diverged:\nlive   %+v\nreplay %+v", label, live.usage, rep.usage)
				}
				if !scanStatsEqual(rep.scans, live.scans) {
					t.Fatalf("%s: replay changed scan stats:\nlive   %+v\nreplay %+v", label, live.scans, rep.scans)
				}
			}
		}
	}
	// The sweep must exercise every contract branch, or the properties
	// above were vacuous.
	if identical == 0 || subset == 0 {
		t.Fatalf("sweep covered %d identical and %d subset runs; need both", identical, subset)
	}
	if hedgesWon == 0 {
		t.Fatal("no hedge won across the sweep; the spike profile is not exercising hedged requests")
	}
}

// TestFaultSweepCoalescingSessions extends the sweep to the serving stack:
// sessions of one EngineGroup share a coalescer, retrier and chaos
// injector, and each session's result must independently satisfy the
// identical-or-strict-subset guarantee. Running the whole scenario twice
// must reproduce every session byte-for-byte — a failed leader's
// promotion, the retry charges and the memoized answers are all
// deterministic.
func TestFaultSweepCoalescingSessions(t *testing.T) {
	w := parWorld()
	const query = "SELECT name, capital, population FROM country"
	base := runFaultQuery(t, w, groupConfig(), query)

	const sessions = 3
	for _, tc := range []struct {
		seed int64
		rate float64
	}{{5, 0.30}, {19, 0.45}} {
		runGroup := func() []faultRun {
			cfg := groupConfig()
			cfg.Chaos = llm.ChaosProfile{Seed: tc.seed, TransientRate: tc.rate}
			cfg.PartialResults = true
			cfg.Retry.BreakerThreshold = -1 // see TestFaultSweepRowGuaranteeAndReplayBilling
			g, err := NewEngineGroup(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			for _, name := range w.DomainNames() {
				g.RegisterWorldDomain(w.Domain(name))
			}
			out := make([]faultRun, 0, sessions)
			for i := 0; i < sessions; i++ {
				e := g.Session()
				res, err := e.Query(query)
				if err != nil {
					t.Fatalf("seed=%d session %d: %v", tc.seed, i, err)
				}
				out = append(out, faultRun{rows: renderRows(res.Result.Rows), usage: res.Usage, scans: res.Scans})
				g.CloseSession(e)
			}
			return out
		}

		first := runGroup()
		retries := 0
		for i, s := range first {
			checkRowGuarantee(t, fmt.Sprintf("seed=%d session %d", tc.seed, i), base.rows, s.rows, s.scans)
			for _, sc := range s.scans {
				retries += sc.RetriesSpent
			}
		}
		if retries == 0 {
			t.Fatalf("seed=%d: no retries spent across %d sessions; chaos is not reaching the group stack", tc.seed, sessions)
		}

		second := runGroup()
		for i := range first {
			if second[i].rows != first[i].rows {
				t.Fatalf("seed=%d session %d: repeat group run changed rows", tc.seed, i)
			}
			if !usageEquivalent(second[i].usage, first[i].usage) {
				t.Fatalf("seed=%d session %d: repeat group run changed usage:\nfirst  %+v\nsecond %+v",
					tc.seed, i, first[i].usage, second[i].usage)
			}
			if !scanStatsEqual(second[i].scans, first[i].scans) {
				t.Fatalf("seed=%d session %d: repeat group run changed scan stats:\nfirst  %+v\nsecond %+v",
					tc.seed, i, first[i].scans, second[i].scans)
			}
		}
	}
}
