package core

import (
	"fmt"
	"sort"
	"strings"

	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/plan"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
	"llmsql/internal/storage"
)

// matView is one materialized view: the defining query's text, its persisted
// rows (a table of the same name in the engine's view store), and the
// freshness state the TTL policy and REFRESH maintain. Views age by use —
// reads counts warm reads served since the last build or refresh — never by
// wall clock, so a replayed run ages its views identically on any machine.
type matView struct {
	name   string
	query  string // deparsed defining SELECT, re-parsed for refresh/expansion
	schema rel.Schema
	stale  bool
	reads  int // warm reads served since the last build/refresh
	// refresh bookkeeping, surfaced in ViewInfo.
	refreshes      int
	lastLiveCalls  int
	lastLiveTokens int
	lastWarm       int // fingerprints found warm by the last refresh probe
	lastCold       int // fingerprints the last refresh probe found cold
}

// ViewInfo is the inspectable state of one materialized view.
type ViewInfo struct {
	// Name is the view name; Query the defining SELECT.
	Name  string
	Query string
	// Rows is the materialized row count.
	Rows int
	// Stale reports that the TTL policy expired the view: scans fall back
	// to live retrieval until REFRESH MATERIALIZED VIEW rebuilds it.
	Stale bool
	// Reads counts warm reads served since the last build or refresh — the
	// view's age as EXPLAIN reports it.
	Reads int
	// Refreshes counts completed REFRESH MATERIALIZED VIEW runs.
	Refreshes int
	// LastLiveCalls and LastLiveTokens are the live (uncached) model spend
	// of the last build or refresh: 0 calls means the whole defining query
	// replayed from warm prompt-cache fingerprints.
	LastLiveCalls  int
	LastLiveTokens int
	// LastWarmFingerprints and LastColdFingerprints report the persistent
	// prompt-cache probe the last refresh ran over the defining query's
	// reconstructed request set (both zero without Config.CacheDir and on
	// the initial build).
	LastWarmFingerprints int
	LastColdFingerprints int
}

// ViewStats aggregates materialized-view activity for operator dashboards
// (per engine, summed across sessions in GroupStats).
type ViewStats struct {
	// Created and Dropped count CREATE/DROP MATERIALIZED VIEW statements.
	Created int
	Dropped int
	// WarmReads counts scans served from materialized rows at row-store
	// cost instead of live LLM retrieval.
	WarmReads int
	// Refreshes counts REFRESH runs; RefreshLiveCalls and RefreshLiveTokens
	// the live model spend they incurred (warm fingerprints refresh free).
	Refreshes         int
	RefreshLiveCalls  int
	RefreshLiveTokens int
}

// Add folds b into s.
func (s *ViewStats) Add(b ViewStats) {
	s.Created += b.Created
	s.Dropped += b.Dropped
	s.WarmReads += b.WarmReads
	s.Refreshes += b.Refreshes
	s.RefreshLiveCalls += b.RefreshLiveCalls
	s.RefreshLiveTokens += b.RefreshLiveTokens
}

// Views returns the engine's materialized views, sorted by name.
func (e *Engine) Views() []ViewInfo {
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	out := make([]ViewInfo, 0, len(e.views))
	for _, v := range e.views {
		out = append(out, e.viewInfoLocked(v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// View returns one materialized view's state by name.
func (e *Engine) View(name string) (ViewInfo, bool) {
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	v, ok := e.views[strings.ToLower(name)]
	if !ok {
		return ViewInfo{}, false
	}
	return e.viewInfoLocked(v), true
}

func (e *Engine) viewInfoLocked(v *matView) ViewInfo {
	rows := 0
	if t, err := e.viewDB.Table(v.name); err == nil {
		rows = t.RowCount()
	}
	return ViewInfo{
		Name:                 v.name,
		Query:                v.query,
		Rows:                 rows,
		Stale:                v.stale,
		Reads:                v.reads,
		Refreshes:            v.refreshes,
		LastLiveCalls:        v.lastLiveCalls,
		LastLiveTokens:       v.lastLiveTokens,
		LastWarmFingerprints: v.lastWarm,
		LastColdFingerprints: v.lastCold,
	}
}

// ViewStats returns the engine's accumulated materialized-view counters.
func (e *Engine) ViewStats() ViewStats {
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	return e.viewTotals
}

// createView runs the defining query once, bulk-loads its rows into the
// view store and registers the view so matching scans route to the row
// store. The defining query must be parameter-free (there is nothing to
// bind a placeholder to at refresh time).
func (e *Engine) createView(st *sql.CreateViewStmt) error {
	if e.store.Has(st.Name) {
		return fmt.Errorf("core: %q is a virtual table; a materialized view would be shadowed", st.Name)
	}
	if e.local != nil && e.local.HasTable(st.Name) {
		return fmt.Errorf("core: %q is a local table; pick another view name", st.Name)
	}
	if len(sql.CollectParams(st.Select)) > 0 {
		return fmt.Errorf("core: a materialized view's defining query cannot use parameters")
	}
	e.viewMu.Lock()
	if _, ok := e.views[st.Name]; ok {
		e.viewMu.Unlock()
		return fmt.Errorf("core: materialized view %q already exists", st.Name)
	}
	e.viewMu.Unlock()

	query := sql.DeparseStmt(st.Select)
	res, err := e.Query(query)
	if err != nil {
		return fmt.Errorf("core: build materialized view %q: %w", st.Name, err)
	}
	if e.viewDB == nil {
		e.viewDB = storage.NewDB()
	}
	tbl, err := e.viewDB.CreateTable(st.Name, res.Result.Schema)
	if err != nil {
		return err
	}
	if err := tbl.InsertBatch(res.Result.Rows); err != nil {
		e.viewDB.DropTable(st.Name)
		return err
	}
	v := &matView{
		name:           st.Name,
		query:          query,
		schema:         tbl.Schema(),
		lastLiveCalls:  res.Usage.Calls - res.Usage.CachedCalls,
		lastLiveTokens: res.Usage.TotalTokens(),
	}
	e.viewMu.Lock()
	if e.views == nil {
		e.views = make(map[string]*matView)
	}
	e.views[st.Name] = v
	e.viewTotals.Created++
	e.viewMu.Unlock()
	// Cached plans resolved the name differently (or not at all).
	e.invalidatePlans()
	return nil
}

// refreshView re-runs the defining query and swaps in the fresh rows. The
// persistent prompt cache makes the maintenance incremental without any
// diffing machinery: every fingerprint of the defining query's prompts that
// is still warm answers as a disk hit — zero live calls, zero tokens — so
// only prompts whose cache entries went cold (evicted, invalidated, or a
// config change that moved their fingerprints) reach the live model. The
// refresh also re-arms freshness: the read counter resets and cached plans
// are invalidated so the rebuilt rows are what every later scan sees.
func (e *Engine) refreshView(name string) error {
	e.viewMu.Lock()
	v, ok := e.views[name]
	e.viewMu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown materialized view %q", name)
	}
	// Probe the prompt cache for the defining query's reconstructed request
	// set: the warm/cold split is the refresh's expected cost, surfaced in
	// ViewInfo before any model traffic happens.
	warm, cold := 0, 0
	if e.disk != nil {
		for _, req := range e.viewRequests(v) {
			if e.disk.Contains(req) {
				warm++
			} else {
				cold++
			}
		}
	}
	res, err := e.Query(v.query)
	if err != nil {
		return fmt.Errorf("core: refresh materialized view %q: %w", name, err)
	}
	tbl, err := e.viewDB.Table(name)
	if err != nil {
		return err
	}
	tbl.Truncate()
	if err := tbl.InsertBatch(res.Result.Rows); err != nil {
		return err
	}
	e.viewMu.Lock()
	v.stale = false
	v.reads = 0
	v.refreshes++
	v.lastLiveCalls = res.Usage.Calls - res.Usage.CachedCalls
	v.lastLiveTokens = res.Usage.TotalTokens()
	v.lastWarm, v.lastCold = warm, cold
	e.viewTotals.Refreshes++
	e.viewTotals.RefreshLiveCalls += v.lastLiveCalls
	e.viewTotals.RefreshLiveTokens += v.lastLiveTokens
	e.viewMu.Unlock()
	// A cached plan may still route to the pre-refresh rows (or, for a view
	// that had gone stale, to the live fallback): the generation bump makes
	// every prepared statement re-plan against the rebuilt view.
	e.invalidatePlans()
	return nil
}

// dropView removes the view and its rows. The generation bump guarantees no
// cached plan keeps serving the dropped view's row store.
func (e *Engine) dropView(name string) error {
	e.viewMu.Lock()
	_, ok := e.views[name]
	if ok {
		delete(e.views, name)
		e.viewTotals.Dropped++
	}
	e.viewMu.Unlock()
	if !ok {
		return fmt.Errorf("core: unknown materialized view %q", name)
	}
	e.viewDB.DropTable(name)
	e.invalidatePlans()
	return nil
}

// freshView returns the named view when it exists and is fresh (servable
// from materialized rows), else nil.
func (e *Engine) freshView(name string) *matView {
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	v, ok := e.views[strings.ToLower(name)]
	if !ok || v.stale {
		return nil
	}
	return v
}

// staleView returns the named view when it exists and is stale, else nil.
func (e *Engine) staleView(name string) *matView {
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	v, ok := e.views[strings.ToLower(name)]
	if !ok || !v.stale {
		return nil
	}
	return v
}

// noteViewRead counts one warm read against the view's TTL and returns the
// view's age (reads served before this one). Crossing Config.ViewTTLReads
// marks the view stale and bumps the plan-cache generation, so the next
// statement re-plans onto the live fallback; the in-flight scan still
// serves the materialized rows its plan was routed to.
func (e *Engine) noteViewRead(v *matView) int {
	ttl := e.Config().ViewTTLReads
	e.viewMu.Lock()
	age := v.reads
	v.reads++
	e.viewTotals.WarmReads++
	expired := ttl > 0 && v.reads >= ttl && !v.stale
	if expired {
		v.stale = true
	}
	e.viewMu.Unlock()
	if expired {
		e.invalidatePlans()
	}
	return age
}

// scanView serves one scan from the view's materialized rows, synthesizing
// the ScanStats entry that marks the substitution (Label "materialized",
// zero prompts).
func (e *Engine) scanView(v *matView, req exec.ScanRequest) (exec.RowIter, error) {
	age := e.noteViewRead(v)
	src := &exec.StorageSource{DB: e.viewDB}
	it, err := src.Scan(req)
	if err != nil {
		return nil, err
	}
	return &viewIter{
		inner: it,
		store: e.store,
		stats: ScanStats{Table: req.Table, Materialized: v.name, ViewAge: age},
	}, nil
}

// viewIter wraps a row-store iterator over materialized rows, counting
// emitted rows and publishing the synthesized ScanStats exactly once on
// exhaustion, error or Close (mirroring scanIter).
type viewIter struct {
	inner   exec.RowIter
	store   *LLMStore
	stats   ScanStats
	flushed bool
}

// Next implements exec.RowIter.
func (it *viewIter) Next() (rel.Row, bool, error) {
	row, ok, err := it.inner.Next()
	if err != nil || !ok {
		it.flush()
		return nil, false, err
	}
	it.stats.RowsEmitted++
	return row, true, nil
}

// Close implements exec.RowIter.
func (it *viewIter) Close() error {
	err := it.inner.Close()
	it.flush()
	return err
}

func (it *viewIter) flush() {
	if it.flushed {
		return
	}
	it.flushed = true
	it.store.noteViewScan(it.stats)
}

// hasViews reports whether any materialized view exists, so the planner's
// view passes can be skipped entirely on the common view-free path.
func (e *Engine) hasViews() bool {
	e.viewMu.Lock()
	n := len(e.views)
	e.viewMu.Unlock()
	return n > 0
}

// expandStaleViews rewrites every reference to a stale materialized view
// into a derived table over its defining query, recursively, so the query
// falls back to live retrieval until the view is refreshed. Fresh views are
// left alone — the catalog and routing source serve them from the row
// store. visited guards against reference cycles built by DROP/CREATE.
func (e *Engine) expandStaleViews(s *sql.SelectStmt, visited map[string]bool) {
	if s == nil {
		return
	}
	if s.From != nil {
		s.From = e.expandTableExpr(s.From, visited)
	}
	expandIn := func(x sql.Expr) {
		sql.WalkExpr(x, func(n sql.Expr) bool {
			if in, ok := n.(*sql.InExpr); ok && in.Subquery != nil {
				e.expandStaleViews(in.Subquery, visited)
			}
			return true
		})
	}
	for _, it := range s.Items {
		expandIn(it.Expr)
	}
	expandIn(s.Where)
	for _, g := range s.GroupBy {
		expandIn(g)
	}
	expandIn(s.Having)
	for _, o := range s.OrderBy {
		expandIn(o.Expr)
	}
}

func (e *Engine) expandTableExpr(t sql.TableExpr, visited map[string]bool) sql.TableExpr {
	switch tt := t.(type) {
	case *sql.TableRef:
		v := e.staleView(tt.Name)
		if v == nil || visited[tt.Name] {
			return tt
		}
		def, err := sql.ParseSelect(v.query)
		if err != nil {
			return tt // defensive: the stored text was deparsed from a valid AST
		}
		visited[tt.Name] = true
		e.expandStaleViews(def, visited)
		delete(visited, tt.Name)
		return &sql.SubqueryRef{Select: def, Alias: tt.Binding()}
	case *sql.JoinExpr:
		tt.Left = e.expandTableExpr(tt.Left, visited)
		tt.Right = e.expandTableExpr(tt.Right, visited)
		return tt
	case *sql.SubqueryRef:
		e.expandStaleViews(tt.Select, visited)
		return tt
	}
	return t
}

// annotateViewScans marks every plan scan that a fresh materialized view
// will serve, so EXPLAIN shows the substitution and its age.
func (e *Engine) annotateViewScans(n plan.Node) {
	if n == nil {
		return
	}
	if sn, ok := n.(*plan.ScanNode); ok {
		if v := e.freshView(sn.Table); v != nil {
			e.viewMu.Lock()
			sn.Materialized = v.name
			sn.MaterializedAge = v.reads
			e.viewMu.Unlock()
		}
		return
	}
	for _, c := range n.Children() {
		e.annotateViewScans(c)
	}
}

// viewRequests reconstructs the completion requests the defining query's
// virtual-table scans address the prompt cache with: the deterministic
// round-0 enumeration prompts (LIST full, LIST paged page 0, KEYS — the
// same probes the cost model's warmHitRate uses) plus, on the key-then-attr
// path, one ATTR(S) request per key x attribute column x vote, with keys
// taken from the materialized rows in row order. The set is the fingerprint
// manifest REFRESH probes and tests invalidate selectively; requests a
// different effective strategy never issued are simply absent from the
// cache and count as cold.
func (e *Engine) viewRequests(v *matView) []llm.CompletionRequest {
	sel, err := sql.ParseSelect(v.query)
	if err != nil {
		return nil
	}
	node, err := plan.PlanOpts(sel, e.catalog(), e.planOptions())
	if err != nil {
		return nil
	}
	cfg := e.Config()
	req := func(prompt string, seed int64) llm.CompletionRequest {
		return llm.CompletionRequest{
			Prompt:      prompt,
			MaxTokens:   cfg.MaxCompletionTokens,
			Temperature: cfg.Temperature,
			Seed:        cfg.Seed + seed,
		}
	}
	var out []llm.CompletionRequest
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		if n == nil {
			return
		}
		sn, ok := n.(*plan.ScanNode)
		if !ok {
			for _, c := range n.Children() {
				walk(c)
			}
			return
		}
		t, ok := e.store.table(sn.Table)
		if !ok {
			return // row-store scan: no prompts to reconstruct
		}
		cols := neededColumns(t.Schema, sn.Needed)
		var filter sql.Expr
		if cfg.Pushdown {
			filter = stripQualifiers(sn.Filter)
		}
		keyPos := t.Schema.KeyIndexes()[0]
		keyName := t.Schema.Col(keyPos).Name
		keyFilter := sql.JoinConjuncts(keyOnlyConjuncts(filter, keyName))
		// Round-0 enumeration probes, one per enumeration shape.
		out = append(out,
			req(buildListPrompt(t, cols, filter, nil, 0), 0),
			req(buildListPrompt(t, cols, filter, nil, cfg.PageSize), 0),
			req(buildKeysPrompt(t, keyFilter, nil, 0), 0),
		)
		if cfg.Strategy != StrategyKeyThenAttr && cfg.Strategy != StrategyAuto {
			return
		}
		keys := e.viewKeysFor(v, keyName)
		attrCols := make([]int, 0, len(cols))
		for _, c := range cols {
			if c != keyPos {
				attrCols = append(attrCols, c)
			}
		}
		for _, c := range attrCols {
			for vote := 0; vote < cfg.Votes; vote++ {
				seed := int64(1000 + vote)
				if cfg.BatchSize > 1 {
					for lo := 0; lo < len(keys); lo += cfg.BatchSize {
						hi := lo + cfg.BatchSize
						if hi > len(keys) {
							hi = len(keys)
						}
						out = append(out, req(buildAttrBatchPrompt(t, keys[lo:hi], c), seed))
					}
				} else {
					for _, k := range keys {
						out = append(out, req(buildAttrPrompt(t, k, c), seed))
					}
				}
			}
		}
	}
	walk(node)
	return out
}

// viewKeysFor extracts the scanned table's entity keys from the view's
// materialized rows (matched by column name, deduplicated in row order —
// the order the defining scan enumerated them in). An empty result means
// the projection dropped the key column; only enumeration fingerprints can
// be reconstructed then.
func (e *Engine) viewKeysFor(v *matView, keyName string) []string {
	tbl, err := e.viewDB.Table(v.name)
	if err != nil {
		return nil
	}
	pos := tbl.Schema().IndexOf(keyName)
	if pos < 0 {
		return nil
	}
	var keys []string
	seen := map[string]bool{}
	for _, row := range tbl.All() {
		k := row[pos].AsText()
		lower := strings.ToLower(k)
		if k == "" || seen[lower] {
			continue
		}
		seen[lower] = true
		keys = append(keys, k)
	}
	return keys
}

// ViewRequests returns the fingerprint manifest of the named view: the
// completion requests its defining query addresses the prompt cache with
// under the engine's current configuration (see viewRequests). Tests and
// staleness drills invalidate subsets of it to force selective re-asks.
func (e *Engine) ViewRequests(name string) ([]llm.CompletionRequest, error) {
	e.viewMu.Lock()
	v, ok := e.views[strings.ToLower(name)]
	e.viewMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown materialized view %q", name)
	}
	return e.viewRequests(v), nil
}

// InvalidateCachedCompletions drops the requests' entries from the
// persistent prompt cache (durably: tombstones survive reopen), returning
// how many were live. The next query — or REFRESH — must re-ask exactly
// these prompts at the live model. Only the disk layer is touched; engines
// using an in-memory completion cache (Config.CacheCapacity) may still
// serve invalidated prompts from memory within the same process.
func (e *Engine) InvalidateCachedCompletions(reqs ...llm.CompletionRequest) int {
	if e.disk == nil {
		return 0
	}
	n := 0
	for _, req := range reqs {
		if e.disk.Invalidate(req) {
			n++
		}
	}
	return n
}
