package core

import (
	"strings"
	"testing"

	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/storage"
	"llmsql/internal/world"
)

// bindJoinQueries covers every join shape the bind planner handles: the
// bound side is the country scan (its entity key is the join key), the
// outer side carries duplicate join keys (many movies per country).
func bindJoinQueries() []string {
	return []string{
		"SELECT m.title, c.capital FROM movie m JOIN country c ON m.country = c.name",
		"SELECT m.title, c.capital FROM movie m LEFT JOIN country c ON m.country = c.name",
		"SELECT title FROM movie WHERE country IN (SELECT name FROM country)",
		"SELECT title FROM movie WHERE country NOT IN (SELECT name FROM country)",
	}
}

// TestBindJoinPropertyByteIdentical is the determinism contract of the
// bind join: for every Parallelism x BatchSize x join-shape combination,
// the bind plan returns byte-identical rows to the hash plan (bind off) —
// which fully scans the build side — while never spending more calls.
func TestBindJoinPropertyByteIdentical(t *testing.T) {
	w := parWorld()
	run := func(query string, parallelism, batch int, bind bool) *QueryResult {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyKeyThenAttr
		cfg.Votes = 2
		cfg.MaxRounds = 3
		cfg.Temperature = 0.7
		cfg.Parallelism = parallelism
		cfg.BatchSize = batch
		cfg.BindJoin = bind
		res, err := worldEngine(w, cfg).Query(query)
		if err != nil {
			t.Fatalf("P=%d B=%d bind=%v %q: %v", parallelism, batch, bind, query, err)
		}
		return res
	}
	for qi, query := range bindJoinQueries() {
		for _, b := range []int{1, 3} {
			// Reference: serial hash plan at this batch size (batching
			// changes which prompts are issued, so references are per B).
			reference := run(query, 1, b, false)
			if qi == 0 && len(reference.Result.Rows) == 0 {
				t.Fatalf("vacuous workload: the inner join produced no rows")
			}
			want := renderRows(reference.Result.Rows)
			for _, p := range []int{1, 4, 8} {
				hash := run(query, p, b, false)
				bind := run(query, p, b, true)
				if got := renderRows(hash.Result.Rows); got != want {
					t.Fatalf("P=%d B=%d %q: hash rows diverged from reference", p, b, query)
				}
				if got := renderRows(bind.Result.Rows); got != want {
					t.Fatalf("P=%d B=%d %q: bind rows diverged:\n%s\nvs\n%s", p, b, query, got, want)
				}
				if bind.Usage.Calls > hash.Usage.Calls {
					t.Fatalf("P=%d B=%d %q: bind spent more calls (%d) than hash (%d)",
						p, b, query, bind.Usage.Calls, hash.Usage.Calls)
				}
			}
		}
	}
}

// TestBindJoinBatchGroupingByteIdentical is the regression test for the
// bind gate's batch alignment: batched ATTRS answers depend on the whole
// group's prompt, so the gate must keep whole groups (riders included) or
// the bound scan's prompts — and, on a prompt-sensitive model at
// temperature > 0, its values — diverge from the unbound scan's. Swept
// over world seeds and batch sizes; before group alignment, seed 1 with
// batch 4 returned a different capital for the same movie under bind.
func TestBindJoinBatchGroupingByteIdentical(t *testing.T) {
	query := "SELECT m.title, c.capital FROM movie m JOIN country c ON m.country = c.name"
	for _, seed := range []int64{1, 2, 3} {
		w := world.Generate(world.Config{Seed: seed, Countries: 30, Movies: 15, Laureates: 10, Companies: 10})
		for _, batch := range []int{2, 4, 5} {
			run := func(bind bool) *QueryResult {
				cfg := DefaultConfig()
				cfg.Strategy = StrategyKeyThenAttr
				cfg.Votes = 1
				cfg.MaxRounds = 3
				cfg.Temperature = 0.9
				cfg.BatchSize = batch
				cfg.BindJoin = bind
				e := New(llm.NewSynthLM(w, llm.ProfileMedium, seed), cfg)
				for _, name := range w.DomainNames() {
					e.RegisterWorldDomain(w.Domain(name))
				}
				res, err := e.Query(query)
				if err != nil {
					t.Fatalf("seed=%d batch=%d bind=%v: %v", seed, batch, bind, err)
				}
				return res
			}
			bound, hash := run(true), run(false)
			if b, h := renderRows(bound.Result.Rows), renderRows(hash.Result.Rows); b != h {
				t.Fatalf("seed=%d batch=%d: bind rows diverged:\n%s\nvs\n%s", seed, batch, b, h)
			}
			if bound.Usage.Calls > hash.Usage.Calls {
				t.Fatalf("seed=%d batch=%d: bind spent more calls (%d) than hash (%d)",
					seed, batch, bound.Usage.Calls, hash.Usage.Calls)
			}
		}
	}
}

// TestBindJoinHybridNullAndDuplicateKeys drives the bind join from a local
// row-store outer side containing NULL join keys, duplicate keys, and keys
// the LLM table will never enumerate — for every join shape, bind must
// match the hash plan exactly (including the anti join's NULL fallback).
func TestBindJoinHybridNullAndDuplicateKeys(t *testing.T) {
	w := parWorld()
	countries := w.Domain("country")
	mkLocal := func() *storage.DB {
		db := storage.NewDB()
		tbl, err := db.CreateTable("film", rel.NewSchema(
			rel.Column{Name: "id", Type: rel.TypeInt, Key: true},
			rel.Column{Name: "land", Type: rel.TypeText},
		))
		if err != nil {
			t.Fatal(err)
		}
		rows := []rel.Row{
			{rel.Int(1), countries.Entities[0].Row[0]},
			{rel.Int(2), countries.Entities[0].Row[0]}, // duplicate key
			{rel.Int(3), countries.Entities[1].Row[0]},
			{rel.Int(4), rel.Null()},           // NULL join key
			{rel.Int(5), rel.Text("Atlantis")}, // never enumerated
		}
		if err := tbl.InsertAll(rows); err != nil {
			t.Fatal(err)
		}
		return db
	}
	queries := []string{
		"SELECT f.id, c.capital FROM film f JOIN country c ON f.land = c.name",
		"SELECT f.id, c.capital FROM film f LEFT JOIN country c ON f.land = c.name",
		"SELECT id FROM film WHERE land IN (SELECT name FROM country)",
		"SELECT id FROM film WHERE land NOT IN (SELECT name FROM country)",
	}
	run := func(query string, bind bool) *QueryResult {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyKeyThenAttr
		cfg.Temperature = 0
		cfg.BindJoin = bind
		e := worldEngine(w, cfg)
		e.AttachLocal(mkLocal())
		res, err := e.Query(query)
		if err != nil {
			t.Fatalf("bind=%v %q: %v", bind, query, err)
		}
		return res
	}
	for _, query := range queries {
		hash := run(query, false)
		bind := run(query, true)
		if h, b := renderRows(hash.Result.Rows), renderRows(bind.Result.Rows); h != b {
			t.Fatalf("%q: bind rows diverged:\n%s\nvs\n%s", query, b, h)
		}
		if bind.Usage.Calls > hash.Usage.Calls {
			t.Fatalf("%q: bind spent more calls (%d) than hash (%d)",
				query, bind.Usage.Calls, hash.Usage.Calls)
		}
	}
}

// TestBindGateBlocksAttrSpend: a bound scan canonicalizes bound keys
// (whitespace, case-insensitive dedup), intersects them with the
// enumeration, and pays attribute prompts only for the intersection — keys
// the model enumerates but the join never asked for get no ATTR calls, and
// bound keys the model does not know get none either.
func TestBindGateBlocksAttrSpend(t *testing.T) {
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		if strings.Contains(req.Prompt, "TASK: KEYS") {
			return "France\nJapan\nGermany"
		}
		if strings.Contains(req.Prompt, "COLUMN: capital") {
			return "City-" + entityLine(req.Prompt)
		}
		return "42"
	}}
	e := ktaEngine(model, nil)
	it, err := e.store.Scan(exec.ScanRequest{
		Table:  "country",
		Schema: storeTable().Schema,
		// "  france " canonicalizes into a duplicate of "France";
		// "Atlantis" is never enumerated.
		Keys: []string{"France", "  france ", "Atlantis", "Germany"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0].AsText() != "France" || rows[1][0].AsText() != "Germany" {
		t.Fatalf("rows: %v", rows)
	}
	stats := e.store.TakeStats()
	if len(stats) != 1 {
		t.Fatalf("stats: %v", stats)
	}
	if s := stats[0]; s.KeysBound != 3 || s.KeysAttributed != 2 {
		t.Fatalf("bind stats: %+v", s)
	}
	if n := attrCallsFor(model, "Japan"); n != 0 {
		t.Fatalf("unbound key Japan got %d attribute prompts", n)
	}
	if n := attrCallsFor(model, "Atlantis"); n != 0 {
		t.Fatalf("unknown bound key Atlantis got %d attribute prompts", n)
	}
}

// TestBindIgnoredOutsideKeyThenAttr: bound keys must not change what a
// full-table scan retrieves — any other decomposition could not honour the
// binding without changing its prompts, and therefore its rows, relative
// to the unbound scan the hash plan runs.
func TestBindIgnoredOutsideKeyThenAttr(t *testing.T) {
	w := parWorld()
	cfg := DefaultConfig()
	cfg.Strategy = StrategyFullTable
	cfg.Temperature = 0
	e := worldEngine(w, cfg)
	scan := func(keys []string) []rel.Row {
		it, err := e.store.Scan(exec.ScanRequest{
			Table:  "country",
			Schema: e.store.tables["country"].Schema,
			Keys:   keys,
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := exec.Drain(it)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	unbound := scan(nil)
	bound := scan([]string{"Nowhere"})
	if renderRows(unbound) != renderRows(bound) {
		t.Fatalf("full-table scan changed under binding: %d vs %d rows", len(unbound), len(bound))
	}
	for _, s := range e.store.TakeStats() {
		if s.KeysBound != 0 {
			t.Fatalf("binding recorded on a non-key-then-attr scan: %+v", s)
		}
	}
}

// TestBoundEmptyKeySet: a scan bound to zero keys issues zero prompts and
// still publishes its statistics.
func TestBoundEmptyKeySet(t *testing.T) {
	model := &scriptModel{respond: countryScript(10)}
	e := ktaEngine(model, nil)
	it, err := e.store.Scan(exec.ScanRequest{
		Table:  "country",
		Schema: storeTable().Schema,
		Keys:   []string{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows: %v", rows)
	}
	if n := model.callCount(); n != 0 {
		t.Fatalf("empty binding still issued %d calls", n)
	}
	stats := e.store.TakeStats()
	if len(stats) != 1 || stats[0].Prompts != 0 || stats[0].KeysBound != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestExplainShowsBindJoin: the plan surfaces the bind decision — chosen
// strategy, bound table, and the per-strategy cost breakdown — and the
// ablation flag removes it.
func TestExplainShowsBindJoin(t *testing.T) {
	w := parWorld()
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	query := "SELECT m.title, c.capital FROM movie m JOIN country c ON m.country = c.name"

	out, err := worldEngine(w, cfg).Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[bind:", "→ country", "join=bind", "hash:", "bind:", "nested-loop:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, out)
		}
	}

	cfg.BindJoin = false
	out, err = worldEngine(w, cfg).Explain(query)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "join=bind") {
		t.Fatalf("bind join chosen with BindJoin disabled:\n%s", out)
	}
	if !strings.Contains(out, "join=hash") {
		t.Fatalf("EXPLAIN missing hash decision with bind disabled:\n%s", out)
	}
}

// TestBindJoinSavesCallsProportionally pins the headline win: with a
// selective outer side, the bound country scan attributes only the outer
// side's few distinct keys instead of the whole table.
func TestBindJoinSavesCallsProportionally(t *testing.T) {
	const tableRows = 40
	model := &scriptModel{respond: countryScript(tableRows)}
	e := ktaEngine(model, func(c *Config) { c.Votes = 1 })
	db := storage.NewDB()
	tbl, err := db.CreateTable("want", rel.NewSchema(
		rel.Column{Name: "who", Type: rel.TypeText, Key: true},
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"Country03", "Country07"} {
		if err := tbl.Insert(rel.Row{rel.Text(k)}); err != nil {
			t.Fatal(err)
		}
	}
	e.AttachLocal(db)
	res, err := e.Query("SELECT w.who, c.capital FROM want w JOIN country c ON w.who = c.name")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) != 2 {
		t.Fatalf("rows: %v", res.Result.Rows)
	}
	var s ScanStats
	for _, sc := range res.Scans {
		if sc.Table == "country" {
			s = sc
		}
	}
	if s.KeysBound != 2 || s.KeysAttributed != 2 {
		t.Fatalf("bind stats: %+v", s)
	}
	// 1 KEYS round + 2 keys x 1 needed attr column (capital) x 1 vote,
	// instead of the whole 40-key table.
	attrCols := 1
	if want := 1 + 2*attrCols; res.Usage.Calls != want {
		t.Fatalf("calls: %d, want %d", res.Usage.Calls, want)
	}
}
