package core

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/world"
)

// parWorld returns a small synthetic world for the parallel-pipeline tests.
func parWorld() *world.World {
	return world.Generate(world.Config{Seed: 7, Countries: 30, Movies: 15, Laureates: 10, Companies: 10})
}

func worldEngine(w *world.World, cfg Config) *Engine {
	e := New(llm.NewSynthLM(w, llm.ProfileMedium, 7), cfg)
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}
	return e
}

// renderRows serializes rows byte-exactly for comparison.
func renderRows(rows []rel.Row) string {
	var b strings.Builder
	for _, row := range rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// scanStatsEqual compares every ScanStats field — the determinism contract
// says parallelism changes none of them.
func scanStatsEqual(a, b []ScanStats) bool { return reflect.DeepEqual(a, b) }

func TestKeyThenAttrDeterministicAcrossParallelism(t *testing.T) {
	w := parWorld()
	query := "SELECT name, capital, population FROM country"
	run := func(parallelism int) (*QueryResult, error) {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyKeyThenAttr
		cfg.Votes = 3
		cfg.MaxRounds = 3
		cfg.Temperature = 0.7
		cfg.Parallelism = parallelism
		return worldEngine(w, cfg).Query(query)
	}
	serial, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		par, err := run(p)
		if err != nil {
			t.Fatal(err)
		}
		if renderRows(par.Result.Rows) != renderRows(serial.Result.Rows) {
			t.Fatalf("parallelism %d changed result rows", p)
		}
		if !scanStatsEqual(par.Scans, serial.Scans) {
			t.Fatalf("parallelism %d changed scan stats:\nserial %+v\npar    %+v", p, serial.Scans, par.Scans)
		}
	}
}

func TestFullTableDeterministicAcrossParallelism(t *testing.T) {
	w := parWorld()
	query := "SELECT name, capital FROM country"
	run := func(parallelism int) (*QueryResult, error) {
		cfg := DefaultConfig()
		cfg.Temperature = 0.8
		cfg.MaxRounds = 6
		cfg.Parallelism = parallelism
		return worldEngine(w, cfg).Query(query)
	}
	serial, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(par.Result.Rows) != renderRows(serial.Result.Rows) {
		t.Fatal("parallel full-table scan changed result rows")
	}
	if !scanStatsEqual(par.Scans, serial.Scans) {
		t.Fatalf("parallel full-table scan changed stats:\nserial %+v\npar    %+v", serial.Scans, par.Scans)
	}
	// Speculative prefetch may issue more calls than the serial path
	// consumed, but never fewer.
	if par.Usage.Calls < serial.Usage.Calls {
		t.Fatalf("parallel calls %d < serial %d", par.Usage.Calls, serial.Usage.Calls)
	}
}

func TestPagedStrategyStaysSerial(t *testing.T) {
	// Paged rounds form a dependency chain; Parallelism must not change
	// calls, rows or stats.
	w := parWorld()
	run := func(parallelism int) (*QueryResult, error) {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyPaged
		cfg.Temperature = 0
		cfg.MaxRounds = 8
		cfg.Parallelism = parallelism
		return worldEngine(w, cfg).Query("SELECT name FROM country")
	}
	serial, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if par.Usage.Calls != serial.Usage.Calls {
		t.Fatalf("paged calls changed: %d vs %d", par.Usage.Calls, serial.Usage.Calls)
	}
	if renderRows(par.Result.Rows) != renderRows(serial.Result.Rows) {
		t.Fatal("paged rows changed")
	}
}

func TestParallelismShortensCriticalPath(t *testing.T) {
	w := parWorld()
	query := "SELECT name, capital, population FROM country"
	wallAt := func(parallelism int) (*QueryResult, error) {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyKeyThenAttr
		cfg.Votes = 3
		cfg.MaxRounds = 2
		cfg.Temperature = 0.7
		cfg.Parallelism = parallelism
		return worldEngine(w, cfg).Query(query)
	}
	serial, err := wallAt(1)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Usage.SimWall != serial.Usage.SimLatency {
		t.Fatalf("serial wall %v must equal total %v", serial.Usage.SimWall, serial.Usage.SimLatency)
	}
	par, err := wallAt(8)
	if err != nil {
		t.Fatal(err)
	}
	if par.Usage.SimWall >= serial.Usage.SimWall/2 {
		t.Fatalf("wall at parallelism 8 (%v) not even 2x better than serial (%v)",
			par.Usage.SimWall, serial.Usage.SimWall)
	}
	if par.Usage.SimWall <= 0 {
		t.Fatal("wall latency must be positive")
	}
}

func TestCacheScanStatsDeterministicAcrossParallelism(t *testing.T) {
	// Cache counters in ScanStats come from the consumed responses' Cached
	// flags, so a cold query must report identical stats at any
	// parallelism even though speculative prefetch touches the cache.
	w := parWorld()
	run := func(p int) (*QueryResult, error) {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyKeyThenAttr
		cfg.Votes = 2
		cfg.MaxRounds = 3
		cfg.Temperature = 0.7
		cfg.Parallelism = p
		cfg.CacheCapacity = 4096
		return worldEngine(w, cfg).Query("SELECT name, capital FROM country")
	}
	serial, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if renderRows(par.Result.Rows) != renderRows(serial.Result.Rows) {
		t.Fatal("cache+parallelism changed result rows")
	}
	if !scanStatsEqual(par.Scans, serial.Scans) {
		t.Fatalf("cache+parallelism changed scan stats:\nserial %+v\npar    %+v", serial.Scans, par.Scans)
	}
	if serial.Scans[0].CacheMisses == 0 {
		t.Fatalf("cold scan must record misses: %+v", serial.Scans)
	}
}

func TestConcurrentQueriesOneEngine(t *testing.T) {
	// Many goroutines share one engine with a parallel scan pipeline and a
	// bounded cache — meaningful under -race.
	w := parWorld()
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Votes = 2
	cfg.MaxRounds = 2
	cfg.Temperature = 0.7
	cfg.Parallelism = 4
	cfg.CacheCapacity = 256
	e := worldEngine(w, cfg)

	want, err := e.Query("SELECT name, capital FROM country")
	if err != nil {
		t.Fatal(err)
	}
	wantRows := renderRows(want.Result.Rows)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Query("SELECT name, capital FROM country")
			if err != nil {
				errs <- err
				return
			}
			if got := renderRows(res.Result.Rows); got != wantRows {
				errs <- fmt.Errorf("concurrent query diverged")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if e.CacheStats().Hits == 0 {
		t.Fatal("repeated identical queries must hit the cache")
	}
}

func TestRunTasksSerialAndParallel(t *testing.T) {
	for _, p := range []int{1, 4} {
		got := make([]int, 100)
		if err := runTasks(p, 100, func(i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("p=%d slot %d: %d", p, i, v)
			}
		}
	}
}

func TestRunTasksReturnsLowestIndexedError(t *testing.T) {
	for _, p := range []int{1, 8} {
		err := runTasks(p, 50, func(i int) error {
			if i >= 10 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 10 failed" {
			t.Fatalf("p=%d: want lowest-indexed error, got %v", p, err)
		}
	}
}

func TestCacheWarmSecondQueryIsFree(t *testing.T) {
	w := parWorld()
	cfg := DefaultConfig()
	cfg.Temperature = 0 // single deterministic round: identical prompts
	cfg.CacheCapacity = -1
	e := worldEngine(w, cfg)
	query := "SELECT name, capital FROM country"
	cold, err := e.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Usage.SimLatency != 0 || warm.Usage.TotalTokens() != 0 {
		t.Fatalf("warm query must be free: %+v", warm.Usage)
	}
	if warm.Usage.CachedCalls != warm.Usage.Calls || warm.Usage.Calls == 0 {
		t.Fatalf("warm calls must all be cached: %+v", warm.Usage)
	}
	if cold.Usage.SimLatency <= 0 {
		t.Fatalf("cold query must cost latency: %+v", cold.Usage)
	}
	if len(warm.Scans) != 1 || warm.Scans[0].CacheHits == 0 || warm.Scans[0].CacheMisses != 0 {
		t.Fatalf("warm scan cache stats: %+v", warm.Scans)
	}
	if renderRows(cold.Result.Rows) != renderRows(warm.Result.Rows) {
		t.Fatal("cache changed results")
	}
}
