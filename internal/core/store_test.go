package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"llmsql/internal/exec"
	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// scriptModel is a fake Model driven by a function, so tests control every
// completion exactly.
type scriptModel struct {
	mu      sync.Mutex
	calls   []llm.CompletionRequest
	respond func(req llm.CompletionRequest) string
}

func (m *scriptModel) Name() string { return "script" }

func (m *scriptModel) Complete(req llm.CompletionRequest) (llm.CompletionResponse, error) {
	m.mu.Lock()
	m.calls = append(m.calls, req)
	m.mu.Unlock()
	text := m.respond(req)
	return llm.CompletionResponse{
		Text:             text,
		PromptTokens:     llm.CountTokens(req.Prompt),
		CompletionTokens: llm.CountTokens(text),
	}, nil
}

func (m *scriptModel) callCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.calls)
}

func storeTable() VirtualTable {
	return VirtualTable{
		Name:        "country",
		Description: "a country",
		Schema: rel.NewSchema(
			rel.Column{Name: "name", Type: rel.TypeText, Key: true, Desc: "name"},
			rel.Column{Name: "capital", Type: rel.TypeText, Desc: "capital"},
			rel.Column{Name: "population", Type: rel.TypeInt, Desc: "population"},
		),
	}
}

func scanAll(t *testing.T, s *LLMStore) []rel.Row {
	t.Helper()
	it, err := s.Scan(exec.ScanRequest{Table: "country", Schema: storeTable().Schema})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestStoreRegisterAndSchema(t *testing.T) {
	s := NewLLMStore(&scriptModel{respond: func(llm.CompletionRequest) string { return "" }}, DefaultConfig())
	s.Register(storeTable())
	if !s.Has("COUNTRY") {
		t.Fatal("case-insensitive Has")
	}
	schema, err := s.TableSchema("country")
	if err != nil || schema.Len() != 3 {
		t.Fatalf("schema: %v %v", schema, err)
	}
	if _, err := s.TableSchema("nope"); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := s.Scan(exec.ScanRequest{Table: "nope"}); err == nil {
		t.Fatal("scan of unknown table must error")
	}
}

func TestStoreScanParsesRows(t *testing.T) {
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		return "France | Paris | 68\nJapan | Tokyo | 125"
	}}
	cfg := DefaultConfig()
	cfg.Temperature = 0 // one round
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if rows[0][0].AsText() != "France" || rows[1][2].AsInt() != 125 {
		t.Fatalf("parsed: %v", rows)
	}
	stats := s.TakeStats()
	if len(stats) != 1 || stats[0].RowsEmitted != 2 || stats[0].Prompts != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	// Stats are consumed.
	if len(s.TakeStats()) != 0 {
		t.Fatal("TakeStats must clear")
	}
}

func TestStoreConvergenceStopping(t *testing.T) {
	// Round 0 and 1 produce new entities, later rounds repeat: the scan
	// must stop after StableRounds quiet rounds, not run MaxRounds.
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		switch req.Seed {
		case 0:
			return "France | Paris | 68"
		case 1:
			return "France | Paris | 68\nJapan | Tokyo | 125"
		default:
			return "Japan | Tokyo | 125"
		}
	}}
	cfg := DefaultConfig()
	cfg.Temperature = 0.7
	cfg.MaxRounds = 50
	cfg.StableRounds = 2
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if model.callCount() != 4 { // rounds 0,1 new; rounds 2,3 quiet -> stop
		t.Fatalf("calls: %d", model.callCount())
	}
	stats := s.TakeStats()
	if stats[0].Rounds != 4 {
		t.Fatalf("rounds: %+v", stats[0])
	}
}

func TestStoreDedupAcrossRounds(t *testing.T) {
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		return "France | Paris | 68\nFRANCE | Paris | 68\n france  | Paris | 68"
	}}
	cfg := DefaultConfig()
	cfg.Temperature = 0
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 1 {
		t.Fatalf("case/space-insensitive dedup failed: %v", rows)
	}
	stats := s.TakeStats()
	if stats[0].Duplicates != 2 {
		t.Fatalf("dup count: %+v", stats[0])
	}
}

func TestStoreNoDedupEmitsAll(t *testing.T) {
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		return "France | Paris | 68\nFrance | Paris | 68"
	}}
	cfg := DefaultConfig()
	cfg.Temperature = 0
	cfg.Dedup = false
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 2 {
		t.Fatalf("no-dedup rows: %v", rows)
	}
}

func TestStorePushdownInPrompt(t *testing.T) {
	var sawFilter bool
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		if strings.Contains(req.Prompt, "FILTER: population > 50") {
			sawFilter = true
		}
		return "France | Paris | 68"
	}}
	cfg := DefaultConfig()
	cfg.Temperature = 0
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	filter, err := parseFilter("population > 50")
	if err != nil {
		t.Fatal(err)
	}
	it, err := s.Scan(exec.ScanRequest{Table: "country", Schema: storeTable().Schema, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Drain(it); err != nil {
		t.Fatal(err)
	}
	if !sawFilter {
		t.Fatal("filter not pushed into prompt")
	}

	// With pushdown disabled, no FILTER line appears.
	sawFilter = false
	cfg.Pushdown = false
	s2 := NewLLMStore(model, cfg)
	s2.Register(storeTable())
	it, err = s2.Scan(exec.ScanRequest{Table: "country", Schema: storeTable().Schema, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Drain(it); err != nil {
		t.Fatal(err)
	}
	if sawFilter {
		t.Fatal("filter pushed despite Pushdown=false")
	}
}

func TestStoreNeededColumnsInPrompt(t *testing.T) {
	var lastPrompt string
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		lastPrompt = req.Prompt
		return "France | 68"
	}}
	cfg := DefaultConfig()
	cfg.Temperature = 0
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	it, err := s.Scan(exec.ScanRequest{
		Table:  "country",
		Schema: storeTable().Schema,
		Needed: []bool{true, false, true}, // skip capital
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(lastPrompt, "capital") {
		t.Fatalf("pruned column leaked into prompt:\n%s", lastPrompt)
	}
	if len(rows) != 1 || !rows[0][1].IsNull() || rows[0][2].AsInt() != 68 {
		t.Fatalf("masked scan rows: %v", rows)
	}
}

func TestStorePagedStrategyExcludes(t *testing.T) {
	// Page 1 returns two entities; page 2's prompt must exclude them.
	var prompts []string
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		prompts = append(prompts, req.Prompt)
		if strings.Contains(req.Prompt, "EXCLUDE:") {
			return "No further rows."
		}
		return "France | Paris | 68\nJapan | Tokyo | 125"
	}}
	cfg := DefaultConfig()
	cfg.Strategy = StrategyPaged
	cfg.Temperature = 0
	cfg.MaxRounds = 10
	cfg.StableRounds = 1
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 2 {
		t.Fatalf("paged rows: %v", rows)
	}
	if len(prompts) != 2 {
		t.Fatalf("paged prompts: %d", len(prompts))
	}
	if !strings.Contains(prompts[1], "EXCLUDE: France | Japan") {
		t.Fatalf("second page must exclude:\n%s", prompts[1])
	}
}

func TestStoreKeyThenAttrPromptFlow(t *testing.T) {
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		switch {
		case strings.Contains(req.Prompt, "TASK: KEYS"):
			return "France\nJapan"
		case strings.Contains(req.Prompt, "ENTITY: France") && strings.Contains(req.Prompt, "COLUMN: capital"):
			return "Paris"
		case strings.Contains(req.Prompt, "ENTITY: France"):
			return "68"
		case strings.Contains(req.Prompt, "ENTITY: Japan") && strings.Contains(req.Prompt, "COLUMN: capital"):
			return "The capital of Japan is Tokyo."
		default:
			return "125"
		}
	}}
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Temperature = 0
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 2 {
		t.Fatalf("kta rows: %v", rows)
	}
	byKey := map[string]rel.Row{}
	for _, r := range rows {
		byKey[r[0].AsText()] = r
	}
	if byKey["France"][1].AsText() != "Paris" || byKey["France"][2].AsInt() != 68 {
		t.Fatalf("france: %v", byKey["France"])
	}
	if byKey["Japan"][1].AsText() != "Tokyo" {
		t.Fatalf("japan sentence answer: %v", byKey["Japan"])
	}
	// 1 KEYS + 2 entities x 2 attrs = 5 calls.
	if model.callCount() != 5 {
		t.Fatalf("calls: %d", model.callCount())
	}
}

func TestStoreVotingMajority(t *testing.T) {
	// The capital answer flips across vote seeds: Paris, Paris, Lyon ->
	// majority must pick Paris.
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		if strings.Contains(req.Prompt, "TASK: KEYS") {
			return "France"
		}
		if strings.Contains(req.Prompt, "COLUMN: capital") {
			if req.Seed%3 == 2 {
				return "Lyon"
			}
			return "Paris"
		}
		return "68"
	}}
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Votes = 3
	cfg.Temperature = 0.5
	cfg.MaxRounds = 1
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 1 || rows[0][1].AsText() != "Paris" {
		t.Fatalf("majority vote: %v", rows)
	}
}

func TestStoreVotingAllRefusalsYieldNull(t *testing.T) {
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		if strings.Contains(req.Prompt, "TASK: KEYS") {
			return "France"
		}
		return "I'm not sure."
	}}
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Votes = 3
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 1 || !rows[0][1].IsNull() || !rows[0][2].IsNull() {
		t.Fatalf("refusals must yield NULLs: %v", rows)
	}
}

func TestStoreScanStatsAccumulate(t *testing.T) {
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		return "- France | Paris | sixty-eight"
	}}
	cfg := DefaultConfig()
	cfg.Temperature = 0
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	_ = scanAll(t, s)
	stats := s.TakeStats()
	if stats[0].Parse.Repairs == 0 {
		t.Fatalf("repairs not counted: %+v", stats[0].Parse)
	}
	if stats[0].Parse.LinesSeen != 1 {
		t.Fatalf("lines: %+v", stats[0].Parse)
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{MaxRounds: -1, StableRounds: 0, Votes: 0, PageSize: -5, Temperature: -2}
	n := c.normalize()
	if n.MaxRounds != 1 || n.StableRounds != 1 || n.Votes != 1 || n.PageSize != 40 || n.Temperature != 0 {
		t.Fatalf("normalize: %+v", n)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyFullTable.String() != "full-table" ||
		StrategyKeyThenAttr.String() != "key-then-attr" ||
		StrategyPaged.String() != "paged" {
		t.Fatal("strategy names")
	}
	if Strategy(99).String() != "full-table" {
		t.Fatal("unknown strategy default name")
	}
}

// parseFilter parses a predicate for scan requests.
func parseFilter(src string) (sql.Expr, error) {
	e, err := sql.ParseExpr(src)
	if err != nil {
		return nil, fmt.Errorf("parse filter: %w", err)
	}
	return e, nil
}

func TestStoreConfidenceFilter(t *testing.T) {
	// "France" appears every round; "Phantomia" only in round 0. With
	// MinConfidence 0.5 over 4 rounds the phantom must be dropped.
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		if req.Seed == 0 {
			return "France | Paris | 68\nPhantomia | Ghost City | 1"
		}
		return "France | Paris | 68"
	}}
	cfg := DefaultConfig()
	cfg.Temperature = 0.7
	cfg.MaxRounds = 4
	cfg.StableRounds = 4
	cfg.MinConfidence = 0.5
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 1 || rows[0][0].AsText() != "France" {
		t.Fatalf("confidence filter: %v", rows)
	}
	stats := s.TakeStats()
	if stats[0].LowConfidenceDropped != 1 {
		t.Fatalf("drop count: %+v", stats[0])
	}
}

func TestStoreConfidenceFilterDisabledCases(t *testing.T) {
	respond := func(req llm.CompletionRequest) string {
		if req.Seed == 0 {
			return "France | Paris | 68\nPhantomia | Ghost City | 1"
		}
		return "France | Paris | 68"
	}
	// Single round: the filter must not apply (no frequency signal).
	cfg := DefaultConfig()
	cfg.Temperature = 0
	cfg.MinConfidence = 0.9
	s := NewLLMStore(&scriptModel{respond: respond}, cfg)
	s.Register(storeTable())
	if rows := scanAll(t, s); len(rows) != 2 {
		t.Fatalf("single-round filter must be inert: %v", rows)
	}
	// MinConfidence 0: disabled.
	cfg = DefaultConfig()
	cfg.Temperature = 0.7
	cfg.MaxRounds = 4
	cfg.StableRounds = 4
	cfg.MinConfidence = 0
	s = NewLLMStore(&scriptModel{respond: respond}, cfg)
	s.Register(storeTable())
	if rows := scanAll(t, s); len(rows) != 2 {
		t.Fatalf("disabled filter dropped rows: %v", rows)
	}
}

func TestStoreConfidenceFilterSkipsPaged(t *testing.T) {
	// Paged scans see each entity exactly once; the filter must not fire.
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		if strings.Contains(req.Prompt, "EXCLUDE:") {
			return "No further rows."
		}
		return "France | Paris | 68\nJapan | Tokyo | 125"
	}}
	cfg := DefaultConfig()
	cfg.Strategy = StrategyPaged
	cfg.Temperature = 0
	cfg.MaxRounds = 6
	cfg.StableRounds = 1
	cfg.MinConfidence = 0.9
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	if rows := scanAll(t, s); len(rows) != 2 {
		t.Fatalf("paged scan must ignore confidence filter: %v", rows)
	}
}

func TestStoreWhitespaceVariantKeysUnify(t *testing.T) {
	// Regression: the model emits the same entity with different interior
	// whitespace across rounds. Parse-time normalization must unify them
	// (one row, one set of ATTR prompts, normalized prompt spelling) —
	// before the fix the variants defeated dedup and desynced the
	// prompt<->row pairing of the attribute phase.
	var attrPrompts []string
	var mu sync.Mutex
	model := &scriptModel{respond: func(req llm.CompletionRequest) string {
		if strings.Contains(req.Prompt, "TASK: KEYS") {
			if req.Seed == 0 {
				return "United  Kingdom"
			}
			return "United Kingdom"
		}
		mu.Lock()
		attrPrompts = append(attrPrompts, req.Prompt)
		mu.Unlock()
		if strings.Contains(req.Prompt, "COLUMN: capital") {
			return "London"
		}
		return "67"
	}}
	cfg := DefaultConfig()
	cfg.Strategy = StrategyKeyThenAttr
	cfg.Temperature = 0.7
	cfg.MaxRounds = 2
	cfg.StableRounds = 2
	s := NewLLMStore(model, cfg)
	s.Register(storeTable())
	rows := scanAll(t, s)
	if len(rows) != 1 {
		t.Fatalf("whitespace variants not unified: %v", rows)
	}
	if got := rows[0][0].AsText(); got != "United Kingdom" {
		t.Fatalf("emitted key not normalized: %q", got)
	}
	if len(attrPrompts) != 2 { // one per non-key column, a single entity
		t.Fatalf("attribute fan-out not unified: %d prompts", len(attrPrompts))
	}
	for _, p := range attrPrompts {
		if !strings.Contains(p, "ENTITY: United Kingdom") {
			t.Fatalf("ATTR prompt carries unnormalized key:\n%s", p)
		}
	}
}
