package core

import (
	"strings"
	"testing"

	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/storage"
	"llmsql/internal/world"
)

// testWorld is shared by engine tests: small enough to be fast, large
// enough for meaningful retrieval statistics.
func testWorld() *world.World {
	return world.Generate(world.Config{Seed: 101, Countries: 50, Movies: 60, Laureates: 30, Companies: 30})
}

func newTestEngine(t *testing.T, w *world.World, profile llm.NoiseProfile, cfg Config) *Engine {
	t.Helper()
	model := llm.NewSynthLM(w, profile, 500)
	e := New(model, cfg)
	for _, name := range w.DomainNames() {
		e.RegisterWorldDomain(w.Domain(name))
	}
	return e
}

func TestEngineSelectStar(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	res, err := e.Query("SELECT * FROM country")
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Result.Rows)
	total := len(w.Domain("country").Entities)
	if n < total/2 {
		t.Fatalf("retrieved only %d of %d countries", n, total)
	}
	if res.Usage.Calls == 0 || res.Usage.TotalTokens() == 0 {
		t.Fatalf("usage not accounted: %+v", res.Usage)
	}
	if len(res.Scans) != 1 || res.Scans[0].Table != "country" {
		t.Fatalf("scan stats: %+v", res.Scans)
	}
	if res.Scans[0].RowsEmitted != n {
		t.Fatalf("emitted %d != result %d", res.Scans[0].RowsEmitted, n)
	}
}

func TestEngineRetrievalMostlyCorrect(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	res, err := e.Query("SELECT name, capital FROM country")
	if err != nil {
		t.Fatal(err)
	}
	d := w.Domain("country")
	correct, wrong, fake := 0, 0, 0
	for _, row := range res.Result.Rows {
		ent := d.Entity(row[0].AsText())
		if ent == nil {
			fake++
			continue
		}
		if !row[1].IsNull() && row[1].AsText() == ent.Row[1].AsText() {
			correct++
		} else {
			wrong++
		}
	}
	if correct <= wrong+fake {
		t.Fatalf("retrieval quality too low: correct=%d wrong=%d fake=%d", correct, wrong, fake)
	}
}

func TestEngineFilterPushdownReducesRows(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	res, err := e.Query("SELECT name, population FROM country WHERE population > 100")
	if err != nil {
		t.Fatal(err)
	}
	// The executor re-checks the predicate: every returned row satisfies it
	// regardless of model behaviour.
	for _, row := range res.Result.Rows {
		if row[1].IsNull() || row[1].AsInt() <= 100 {
			t.Fatalf("filter violated: %v", row)
		}
	}
}

func TestEngineDeterministicAcrossRuns(t *testing.T) {
	w := testWorld()
	q := "SELECT name FROM country ORDER BY name LIMIT 10"
	e1 := newTestEngine(t, w, llm.ProfileMedium, DefaultConfig())
	e2 := newTestEngine(t, w, llm.ProfileMedium, DefaultConfig())
	r1, err := e1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Result.Rows) != len(r2.Result.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(r1.Result.Rows), len(r2.Result.Rows))
	}
	for i := range r1.Result.Rows {
		if r1.Result.Rows[i].AllKey() != r2.Result.Rows[i].AllKey() {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestEngineAggregate(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	res, err := e.Query("SELECT continent, COUNT(*) AS n FROM country GROUP BY continent ORDER BY n DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) == 0 {
		t.Fatal("no groups")
	}
	for _, row := range res.Result.Rows {
		if row[1].AsInt() < 1 {
			t.Fatalf("empty group: %v", row)
		}
	}
}

func TestEngineJoinVirtualTables(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	res, err := e.Query(`
		SELECT m.title, c.continent
		FROM movie m JOIN country c ON m.country = c.name
		LIMIT 500`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) == 0 {
		t.Fatal("join produced nothing")
	}
	if len(res.Scans) != 2 {
		t.Fatalf("expected two scans: %+v", res.Scans)
	}
}

func TestEngineHybridJoin(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	// Local table joined against the virtual country table.
	local := storage.NewDB()
	tbl, err := local.CreateTable("watchlist", rel.NewSchema(
		rel.Column{Name: "country_name", Type: rel.TypeText, Key: true},
		rel.Column{Name: "priority", Type: rel.TypeInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	top := w.Domain("country").TopKeys(3)
	for i, k := range top {
		if err := tbl.Insert(rel.Row{rel.Text(k), rel.Int(int64(i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	e.AttachLocal(local)
	res, err := e.Query(`
		SELECT wl.country_name, wl.priority, c.capital
		FROM watchlist wl JOIN country c ON c.name = wl.country_name
		ORDER BY wl.priority`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) == 0 {
		t.Fatal("hybrid join empty")
	}
	if len(res.Result.Rows) > 3 {
		t.Fatalf("too many rows: %d", len(res.Result.Rows))
	}
	// Only the country scan consumed tokens.
	if len(res.Scans) != 1 {
		t.Fatalf("scan stats: %+v", res.Scans)
	}
}

func TestEngineStrategies(t *testing.T) {
	w := testWorld()
	for _, strat := range []Strategy{StrategyFullTable, StrategyKeyThenAttr, StrategyPaged} {
		cfg := DefaultConfig()
		cfg.Strategy = strat
		cfg.MaxRounds = 4
		e := newTestEngine(t, w, llm.ProfileLarge, cfg)
		res, err := e.Query("SELECT name, capital FROM country LIMIT 500")
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(res.Result.Rows) < 10 {
			t.Fatalf("%v: only %d rows", strat, len(res.Result.Rows))
		}
		if res.Scans[0].Strategy != strat {
			t.Fatalf("strategy not recorded: %+v", res.Scans[0])
		}
	}
}

func TestEngineKeyThenAttrUsesMorePrompts(t *testing.T) {
	w := testWorld()
	cfgFull := DefaultConfig()
	cfgFull.Temperature = 0
	eFull := newTestEngine(t, w, llm.ProfileLarge, cfgFull)
	cfgKTA := cfgFull
	cfgKTA.Strategy = StrategyKeyThenAttr
	eKTA := newTestEngine(t, w, llm.ProfileLarge, cfgKTA)

	rFull, err := eFull.Query("SELECT name, capital, population FROM country")
	if err != nil {
		t.Fatal(err)
	}
	rKTA, err := eKTA.Query("SELECT name, capital, population FROM country")
	if err != nil {
		t.Fatal(err)
	}
	if rKTA.Usage.Calls <= rFull.Usage.Calls {
		t.Fatalf("key-then-attr must use more calls: %d vs %d", rKTA.Usage.Calls, rFull.Usage.Calls)
	}
}

func TestEngineVotingImprovesAttributeAccuracy(t *testing.T) {
	w := testWorld()
	d := w.Domain("country")
	accuracy := func(votes int) float64 {
		cfg := DefaultConfig()
		cfg.Strategy = StrategyKeyThenAttr
		cfg.Votes = votes
		cfg.Temperature = 0.8
		cfg.MaxRounds = 3
		e := newTestEngine(t, w, llm.ProfileSmall, cfg)
		res, err := e.Query("SELECT name, capital FROM country")
		if err != nil {
			t.Fatal(err)
		}
		correct, total := 0, 0
		for _, row := range res.Result.Rows {
			ent := d.Entity(row[0].AsText())
			if ent == nil {
				continue
			}
			total++
			if !row[1].IsNull() && row[1].AsText() == ent.Row[1].AsText() {
				correct++
			}
		}
		if total == 0 {
			t.Fatal("no real entities retrieved")
		}
		return float64(correct) / float64(total)
	}
	a1 := accuracy(1)
	a5 := accuracy(5)
	if a5 < a1 {
		t.Fatalf("voting reduced accuracy: k=1 %.3f vs k=5 %.3f", a1, a5)
	}
}

func TestEngineSamplingRecallGrowsWithRounds(t *testing.T) {
	w := testWorld()
	recallWithRounds := func(rounds int) int {
		cfg := DefaultConfig()
		cfg.MaxRounds = rounds
		cfg.StableRounds = rounds // disable early stop
		cfg.Temperature = 0.8
		e := newTestEngine(t, w, llm.ProfileMedium, cfg)
		res, err := e.Query("SELECT name FROM country")
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Result.Rows)
	}
	r1 := recallWithRounds(1)
	r8 := recallWithRounds(8)
	if r8 <= r1 {
		t.Fatalf("recall must grow with rounds: %d -> %d", r1, r8)
	}
}

func TestEngineConvergenceStopsEarly(t *testing.T) {
	w := testWorld()
	cfg := DefaultConfig()
	cfg.Temperature = 0.8
	cfg.MaxRounds = 50
	cfg.StableRounds = 2
	e := newTestEngine(t, w, llm.ProfileLarge, cfg)
	res, err := e.Query("SELECT name FROM country")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scans[0].Rounds >= 50 {
		t.Fatalf("convergence rule did not stop sampling: %d rounds", res.Scans[0].Rounds)
	}
}

func TestEngineExplain(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	out, err := e.Explain("SELECT name FROM country WHERE population > 100")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Scan country") {
		t.Fatalf("explain: %s", out)
	}
	// Explain must not call the model.
	if e.TotalUsage().Calls != 0 {
		t.Fatal("explain consumed tokens")
	}
}

func TestEngineErrors(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	for _, q := range []string{
		"SELECT * FROM nosuch",
		"not sql at all",
		"SELECT nosuchcol FROM country",
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%q: expected error", q)
		}
	}
}

func TestEngineUsageAccumulates(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	r1, err := e.Query("SELECT name FROM country LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Query("SELECT title FROM movie LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	total := e.TotalUsage()
	if total.Calls != r1.Usage.Calls+r2.Usage.Calls {
		t.Fatalf("usage accounting: %d != %d + %d", total.Calls, r1.Usage.Calls, r2.Usage.Calls)
	}
}

func TestFormatResult(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	res, err := e.Query("SELECT name, population FROM country ORDER BY name LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res.Result)
	if !strings.Contains(out, "name") || !strings.Contains(out, "(3 rows)") {
		t.Fatalf("format:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3+2+1 {
		t.Fatalf("line count: %d\n%s", len(lines), out)
	}
}

func TestEngineStrictParserDropsMore(t *testing.T) {
	w := testWorld()
	cfgTol := DefaultConfig()
	cfgTol.Temperature = 0
	eTol := newTestEngine(t, w, llm.ProfileSmall, cfgTol)
	cfgStrict := cfgTol
	cfgStrict.Tolerant = false
	eStrict := newTestEngine(t, w, llm.ProfileSmall, cfgStrict)

	rTol, err := eTol.Query("SELECT name, capital, population FROM country")
	if err != nil {
		t.Fatal(err)
	}
	rStrict, err := eStrict.Query("SELECT name, capital, population FROM country")
	if err != nil {
		t.Fatal(err)
	}
	if len(rStrict.Result.Rows) > len(rTol.Result.Rows) {
		t.Fatalf("strict parser returned more rows: %d vs %d", len(rStrict.Result.Rows), len(rTol.Result.Rows))
	}
	if rTol.Scans[0].Parse.Repairs == 0 {
		t.Fatal("tolerant parser reported no repairs against the small profile")
	}
}

func TestEngineExecLocalDDL(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	if err := e.Exec("CREATE TABLE notes (country_name TEXT PRIMARY KEY, stars INT)"); err != nil {
		t.Fatal(err)
	}
	top := w.Domain("country").TopKeys(2)
	insert := "INSERT INTO notes (country_name, stars) VALUES ('" + top[0] + "', 5), ('" + top[1] + "', 3)"
	if err := e.Exec(insert); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(`SELECT n.country_name, n.stars, c.capital
		FROM notes n JOIN country c ON c.name = n.country_name
		ORDER BY n.stars DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) == 0 {
		t.Fatal("exec-built hybrid join empty")
	}
	if res.Result.Rows[0][1].AsInt() != 5 {
		t.Fatalf("order: %v", res.Result.Rows)
	}
}

func TestEngineExecPositionalInsertAndDefaults(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	if err := e.Exec("CREATE TABLE kv (k TEXT, v INT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec("INSERT INTO kv VALUES ('a', 1), ('b', 2)"); err != nil {
		t.Fatal(err)
	}
	// Partial column list: missing column becomes NULL.
	if err := e.Exec("INSERT INTO kv (k) VALUES ('c')"); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("SELECT COUNT(*), COUNT(v) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Rows[0][0].AsInt() != 3 || res.Result.Rows[0][1].AsInt() != 2 {
		t.Fatalf("counts: %v", res.Result.Rows[0])
	}
}

func TestEngineExecErrors(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	if err := e.Exec("CREATE TABLE country (x INT)"); err == nil {
		t.Fatal("shadowing a virtual table must fail")
	}
	if err := e.Exec("INSERT INTO country VALUES ('x')"); err == nil {
		t.Fatal("insert into virtual table must fail")
	}
	if err := e.Exec("INSERT INTO missing VALUES (1)"); err == nil {
		t.Fatal("insert into unknown table must fail")
	}
	if err := e.Exec("SELECT 1"); err == nil {
		t.Fatal("SELECT through Exec must fail")
	}
	if err := e.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec("INSERT INTO t (nope) VALUES (1)"); err == nil {
		t.Fatal("unknown column must fail")
	}
	if err := e.Exec("INSERT INTO t VALUES (1, 2)"); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestEngineQueryAnalyze(t *testing.T) {
	w := testWorld()
	e := newTestEngine(t, w, llm.ProfileLarge, DefaultConfig())
	res, analyzed, err := e.QueryAnalyze("SELECT name FROM country WHERE population > 10 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Rows) == 0 || len(res.Result.Rows) > 5 {
		t.Fatalf("rows: %d", len(res.Result.Rows))
	}
	if !strings.Contains(analyzed, "rows=") {
		t.Fatalf("analyze output missing counts:\n%s", analyzed)
	}
	if !strings.Contains(analyzed, "Scan country") {
		t.Fatalf("analyze output missing scan:\n%s", analyzed)
	}
}
