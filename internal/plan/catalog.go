package plan

import (
	"fmt"
	"strings"

	"llmsql/internal/rel"
)

// MapCatalog is a simple Catalog backed by a map, used by tests and by
// engines that assemble schemas programmatically.
type MapCatalog map[string]rel.Schema

// TableSchema implements Catalog.
func (m MapCatalog) TableSchema(name string) (rel.Schema, error) {
	s, ok := m[strings.ToLower(name)]
	if !ok {
		return rel.Schema{}, fmt.Errorf("plan: unknown table %q", name)
	}
	return s, nil
}

// MultiCatalog consults catalogs in order, returning the first hit. It lets
// hybrid engines resolve local tables before falling back to virtual LLM
// tables.
type MultiCatalog []Catalog

// TableSchema implements Catalog.
func (m MultiCatalog) TableSchema(name string) (rel.Schema, error) {
	var firstErr error
	for _, c := range m {
		s, err := c.TableSchema(name)
		if err == nil {
			return s, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("plan: unknown table %q", name)
	}
	return rel.Schema{}, firstErr
}
