package plan

import (
	"fmt"
	"strings"

	"llmsql/internal/sql"
)

// Explain renders the plan as an indented tree, one operator per line.
func Explain(n Node) string {
	var b strings.Builder
	explain(&b, n, 0)
	return b.String()
}

func explain(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	switch x := n.(type) {
	case *ScanNode:
		fmt.Fprintf(b, "Scan %s", x.Table)
		if x.Alias != "" && x.Alias != x.Table {
			fmt.Fprintf(b, " AS %s", x.Alias)
		}
		if x.Filter != nil {
			fmt.Fprintf(b, " [filter: %s]", sql.Deparse(x.Filter))
		}
		if x.Limit > 0 {
			fmt.Fprintf(b, " [limit: %d]", x.Limit)
		}
		if x.Needed != nil {
			var cols []string
			for i, need := range x.Needed {
				if need {
					cols = append(cols, x.TableSchema.Col(i).Name)
				}
			}
			fmt.Fprintf(b, " [cols: %s]", strings.Join(cols, ","))
		}
		if x.Decision != nil {
			fmt.Fprintf(b, " [%s]", x.Decision)
		}
		if x.Materialized != "" {
			fmt.Fprintf(b, " [materialized=%s age=%d]", x.Materialized, x.MaterializedAge)
		}
		b.WriteByte('\n')

	case *FilterNode:
		fmt.Fprintf(b, "Filter %s\n", sql.Deparse(x.Pred))
		explain(b, x.Child, depth+1)

	case *ProjectNode:
		var parts []string
		for i, e := range x.Exprs {
			parts = append(parts, fmt.Sprintf("%s AS %s", sql.Deparse(e), x.Out.Col(i).Name))
		}
		fmt.Fprintf(b, "Project %s\n", strings.Join(parts, ", "))
		explain(b, x.Child, depth+1)

	case *JoinNode:
		b.WriteString(x.Kind.String())
		if len(x.LeftKey) > 0 {
			var keys []string
			for i := range x.LeftKey {
				keys = append(keys, fmt.Sprintf("%s = %s", sql.Deparse(x.LeftKey[i]), sql.Deparse(x.RightKey[i])))
			}
			fmt.Fprintf(b, " [%s: %s]", x.Strategy, strings.Join(keys, " AND "))
			if x.Strategy == JoinBind && x.BindScan != nil {
				boundFrom := "left"
				if x.BindLeft {
					boundFrom = "right"
				}
				k := 0
				if x.Decision != nil {
					k = x.Decision.EstBoundKeys
				}
				fmt.Fprintf(b, " [bind: ~%d keys from %s → %s]", k, boundFrom, x.BindScan.Table)
			}
			if x.Kind == KindInner {
				side := "right"
				if x.BuildLeft {
					side = "left"
				}
				fmt.Fprintf(b, " [build: %s]", side)
			}
		}
		if x.Residual != nil {
			fmt.Fprintf(b, " [residual: %s]", sql.Deparse(x.Residual))
		} else if x.On != nil && len(x.LeftKey) == 0 {
			fmt.Fprintf(b, " [on: %s]", sql.Deparse(x.On))
		}
		if x.Decision != nil {
			fmt.Fprintf(b, " [%s]", x.Decision)
		}
		b.WriteByte('\n')
		explain(b, x.Left, depth+1)
		explain(b, x.Right, depth+1)

	case *AggregateNode:
		var groups, aggs []string
		for _, g := range x.GroupBy {
			groups = append(groups, sql.Deparse(g))
		}
		for _, a := range x.Aggs {
			s := a.Func + "("
			if a.Arg == nil {
				s += "*"
			} else {
				if a.Distinct {
					s += "DISTINCT "
				}
				s += sql.Deparse(a.Arg)
			}
			s += ")"
			aggs = append(aggs, s)
		}
		fmt.Fprintf(b, "Aggregate")
		if len(groups) > 0 {
			fmt.Fprintf(b, " group=[%s]", strings.Join(groups, ", "))
		}
		if len(aggs) > 0 {
			fmt.Fprintf(b, " aggs=[%s]", strings.Join(aggs, ", "))
		}
		b.WriteByte('\n')
		explain(b, x.Child, depth+1)

	case *SortNode:
		var keys []string
		for _, k := range x.Keys {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys = append(keys, fmt.Sprintf("#%d %s", k.Col, dir))
		}
		fmt.Fprintf(b, "Sort %s\n", strings.Join(keys, ", "))
		explain(b, x.Child, depth+1)

	case *LimitNode:
		fmt.Fprintf(b, "Limit %d offset %d\n", x.Limit, x.Offset)
		explain(b, x.Child, depth+1)

	case *DistinctNode:
		b.WriteString("Distinct\n")
		explain(b, x.Child, depth+1)

	case *ValuesNode:
		fmt.Fprintf(b, "Values (%d rows)\n", len(x.Rows))

	default:
		fmt.Fprintf(b, "<?node %T>\n", n)
	}
}

// ExplainWithRows renders the plan like Explain, annotating each operator
// with its observed output cardinality (EXPLAIN ANALYZE). rows maps plan
// nodes to emitted row counts as collected by the executor's profile.
func ExplainWithRows(n Node, rows map[Node]int64) string {
	var b strings.Builder
	explainRows(&b, n, 0, rows)
	return b.String()
}

func explainRows(b *strings.Builder, n Node, depth int, rows map[Node]int64) {
	var line strings.Builder
	explain(&line, n, depth)
	text := line.String()
	// Annotate only the first line (the node itself); children follow.
	if idx := strings.IndexByte(text, '\n'); idx >= 0 {
		head := text[:idx]
		fmt.Fprintf(b, "%s  [rows=%d]\n", head, rows[n])
	}
	for _, c := range n.Children() {
		explainRows(b, c, depth+1, rows)
	}
}
