package plan

import (
	"llmsql/internal/sql"
)

// HasParams reports whether any expression in the plan contains a parameter
// placeholder. Planned trees cache this cheaply via Bind's fast path, so the
// helper mostly serves tests and diagnostics.
func HasParams(n Node) bool {
	if n == nil {
		return false
	}
	for _, e := range nodeExprs(n) {
		if sql.HasParams(e) {
			return true
		}
	}
	for _, c := range n.Children() {
		if HasParams(c) {
			return true
		}
	}
	return false
}

// nodeExprs lists the expressions held directly by n.
func nodeExprs(n Node) []sql.Expr {
	switch x := n.(type) {
	case *ScanNode:
		return []sql.Expr{x.Filter}
	case *FilterNode:
		return []sql.Expr{x.Pred}
	case *ProjectNode:
		return x.Exprs
	case *JoinNode:
		out := []sql.Expr{x.On, x.Residual}
		out = append(out, x.LeftKey...)
		return append(out, x.RightKey...)
	case *AggregateNode:
		out := append([]sql.Expr{}, x.GroupBy...)
		for _, a := range x.Aggs {
			out = append(out, a.Arg)
		}
		return out
	default:
		return nil
	}
}

// Bind substitutes every parameter placeholder in the plan with its bound
// value as a typed literal, returning a new tree. The original plan is never
// mutated — expr-free subtrees are shared, so a cached plan stays reusable
// across bindings and concurrent executions. A plan without parameters is
// returned unchanged (the steady-state fast path costs one tree walk and no
// allocation).
//
// Copies preserve every planner annotation (scan decisions, join strategy
// and cost breakdowns, needed-column masks, limit hints): those were derived
// from the parameterized plan's shape, which binding does not change —
// substituting a literal for a placeholder alters no schema, join key or
// cardinality estimate the optimizer used.
func Bind(n Node, b *sql.Bindings) (Node, error) {
	if !HasParams(n) {
		return n, nil
	}
	bd := &binder{b: b, scans: map[*ScanNode]*ScanNode{}}
	out, err := bd.bind(n)
	if err != nil {
		return nil, err
	}
	return out, nil
}

type binder struct {
	b *sql.Bindings
	// scans maps original scan nodes to their copies so JoinNode.BindScan
	// pointers follow the copied tree.
	scans map[*ScanNode]*ScanNode
}

func (bd *binder) expr(e sql.Expr) (sql.Expr, error) {
	return sql.BindExpr(e, bd.b)
}

func (bd *binder) exprs(list []sql.Expr) ([]sql.Expr, bool, error) {
	changed := false
	out := make([]sql.Expr, len(list))
	for i, e := range list {
		c, err := bd.expr(e)
		if err != nil {
			return nil, false, err
		}
		if c != e {
			changed = true
		}
		out[i] = c
	}
	if !changed {
		return list, false, nil
	}
	return out, true, nil
}

func (bd *binder) bind(n Node) (Node, error) {
	switch x := n.(type) {
	case *ScanNode:
		f, err := bd.expr(x.Filter)
		if err != nil {
			return nil, err
		}
		if f == x.Filter {
			bd.scans[x] = x
			return x, nil
		}
		cp := *x
		cp.Filter = f
		bd.scans[x] = &cp
		return &cp, nil

	case *FilterNode:
		child, err := bd.bind(x.Child)
		if err != nil {
			return nil, err
		}
		pred, err := bd.expr(x.Pred)
		if err != nil {
			return nil, err
		}
		if child == x.Child && pred == x.Pred {
			return x, nil
		}
		return &FilterNode{Child: child, Pred: pred}, nil

	case *ProjectNode:
		child, err := bd.bind(x.Child)
		if err != nil {
			return nil, err
		}
		exprs, changed, err := bd.exprs(x.Exprs)
		if err != nil {
			return nil, err
		}
		if child == x.Child && !changed {
			return x, nil
		}
		return &ProjectNode{Child: child, Exprs: exprs, Out: x.Out}, nil

	case *JoinNode:
		left, err := bd.bind(x.Left)
		if err != nil {
			return nil, err
		}
		right, err := bd.bind(x.Right)
		if err != nil {
			return nil, err
		}
		on, err := bd.expr(x.On)
		if err != nil {
			return nil, err
		}
		residual, err := bd.expr(x.Residual)
		if err != nil {
			return nil, err
		}
		lk, lkChanged, err := bd.exprs(x.LeftKey)
		if err != nil {
			return nil, err
		}
		rk, rkChanged, err := bd.exprs(x.RightKey)
		if err != nil {
			return nil, err
		}
		if left == x.Left && right == x.Right && on == x.On &&
			residual == x.Residual && !lkChanged && !rkChanged {
			return x, nil
		}
		cp := *x
		cp.Left, cp.Right = left, right
		cp.On, cp.Residual = on, residual
		cp.LeftKey, cp.RightKey = lk, rk
		if cp.BindScan != nil {
			if mapped, ok := bd.scans[cp.BindScan]; ok {
				cp.BindScan = mapped
			}
		}
		return &cp, nil

	case *AggregateNode:
		child, err := bd.bind(x.Child)
		if err != nil {
			return nil, err
		}
		groupBy, gChanged, err := bd.exprs(x.GroupBy)
		if err != nil {
			return nil, err
		}
		aggs := x.Aggs
		aChanged := false
		for i, a := range x.Aggs {
			arg, err := bd.expr(a.Arg)
			if err != nil {
				return nil, err
			}
			if arg != a.Arg {
				if !aChanged {
					aggs = append([]AggSpec{}, x.Aggs...)
					aChanged = true
				}
				aggs[i].Arg = arg
			}
		}
		if child == x.Child && !gChanged && !aChanged {
			return x, nil
		}
		cp := *x
		cp.Child = child
		cp.GroupBy = groupBy
		cp.Aggs = aggs
		return &cp, nil

	case *SortNode:
		child, err := bd.bind(x.Child)
		if err != nil {
			return nil, err
		}
		if child == x.Child {
			return x, nil
		}
		return &SortNode{Child: child, Keys: x.Keys}, nil

	case *LimitNode:
		child, err := bd.bind(x.Child)
		if err != nil {
			return nil, err
		}
		if child == x.Child {
			return x, nil
		}
		return &LimitNode{Child: child, Limit: x.Limit, Offset: x.Offset}, nil

	case *DistinctNode:
		child, err := bd.bind(x.Child)
		if err != nil {
			return nil, err
		}
		if child == x.Child {
			return x, nil
		}
		return &DistinctNode{Child: child}, nil

	default:
		// ValuesNode and future leaf nodes hold no expressions.
		return n, nil
	}
}
