package plan

import (
	"strings"
	"testing"

	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

func limitTestCatalog() MapCatalog {
	return MapCatalog{
		"country": rel.NewSchema(
			rel.Column{Name: "name", Type: rel.TypeText, Key: true},
			rel.Column{Name: "capital", Type: rel.TypeText},
			rel.Column{Name: "population", Type: rel.TypeInt},
		),
	}
}

// scanOf digs the single ScanNode out of a plan.
func scanOf(t *testing.T, n Node) *ScanNode {
	t.Helper()
	var found *ScanNode
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*ScanNode); ok {
			found = s
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	if found == nil {
		t.Fatalf("no scan in plan:\n%s", Explain(n))
	}
	return found
}

func planQuery(t *testing.T, query string) Node {
	t.Helper()
	sel, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatal(err)
	}
	node, err := Plan(sel, limitTestCatalog())
	if err != nil {
		t.Fatal(err)
	}
	return node
}

func TestPushLimitsReachesScan(t *testing.T) {
	cases := []struct {
		query string
		want  int64 // expected ScanNode.Limit (0 = no hint)
	}{
		// Plain limit, through the projection.
		{"SELECT name FROM country LIMIT 3", 3},
		// Offset rows are consumed too.
		{"SELECT name FROM country LIMIT 3 OFFSET 2", 5},
		// The scan's own pushed filter does not block the hint: the limit
		// counts rows that survive the re-applied filter.
		{"SELECT name FROM country WHERE population > 5 LIMIT 4", 4},
		// Blocking or row-count-changing operators stop the hint.
		{"SELECT name FROM country ORDER BY name LIMIT 3", 0},
		{"SELECT DISTINCT capital FROM country LIMIT 3", 0},
		{"SELECT COUNT(*) FROM country LIMIT 3", 0},
		// LIMIT 0 never pulls a row; no hint is useful.
		{"SELECT name FROM country LIMIT 0", 0},
		// No limit at all.
		{"SELECT name FROM country", 0},
	}
	for _, c := range cases {
		scan := scanOf(t, planQuery(t, c.query))
		if scan.Limit != c.want {
			t.Errorf("%s: scan limit %d, want %d", c.query, scan.Limit, c.want)
		}
	}
}

func TestPushLimitsDisabledByOptions(t *testing.T) {
	sel, err := sql.ParseSelect("SELECT name FROM country LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	node, err := PlanOpts(sel, limitTestCatalog(), Options{LimitPushdown: false})
	if err != nil {
		t.Fatal(err)
	}
	if scan := scanOf(t, node); scan.Limit != 0 {
		t.Fatalf("limit pushed despite disabled option: %d", scan.Limit)
	}
}

func TestExplainShowsLimitHint(t *testing.T) {
	out := Explain(planQuery(t, "SELECT name FROM country LIMIT 7"))
	if !strings.Contains(out, "[limit: 7]") {
		t.Fatalf("EXPLAIN missing limit annotation:\n%s", out)
	}
}

func TestPrefetchWindow(t *testing.T) {
	cases := []struct {
		par, cols, votes, batch int
		limit                   int64
		want                    int
	}{
		// Lane fill: ceil(parallelism / (cols*votes)) keys.
		{8, 2, 3, 1, 0, 2},
		{8, 1, 1, 1, 0, 8},
		{1, 2, 3, 1, 0, 1},
		// The limit caps the window.
		{8, 1, 1, 1, 3, 3},
		{8, 1, 1, 1, 1, 1},
		// Batch alignment rounds up, keeping prompt groups identical to
		// the unwindowed scan.
		{8, 1, 1, 4, 3, 4},
		{8, 2, 3, 4, 0, 4},
		// Degenerate inputs clamp.
		{0, 0, 0, 0, 0, 1},
	}
	for _, c := range cases {
		got := PrefetchWindow(c.par, c.cols, c.votes, c.batch, c.limit)
		if got != c.want {
			t.Errorf("PrefetchWindow(%d,%d,%d,%d,%d) = %d, want %d",
				c.par, c.cols, c.votes, c.batch, c.limit, got, c.want)
		}
	}
	// A window is always a positive multiple of the batch size.
	for par := 1; par <= 16; par *= 2 {
		for batch := 1; batch <= 8; batch++ {
			for _, limit := range []int64{0, 1, 5, 100} {
				w := PrefetchWindow(par, 2, 3, batch, limit)
				if w < 1 || w%batch != 0 {
					t.Fatalf("window %d not a positive multiple of batch %d", w, batch)
				}
			}
		}
	}
}

func TestKeyThenAttrLimitAwarePricing(t *testing.T) {
	m := testCostModel()
	unlimited := m.KeyThenAttr()
	m.Limit = 2
	limited := m.KeyThenAttr()
	if limited.Prompts >= unlimited.Prompts {
		t.Fatalf("limit did not shrink prompts: %d vs %d", limited.Prompts, unlimited.Prompts)
	}
	if limited.Dollars >= unlimited.Dollars {
		t.Fatalf("limit did not shrink dollars: %g vs %g", limited.Dollars, unlimited.Dollars)
	}
	// The decision carries the limit and the expected attribute fan-out.
	d := m.Decide()
	if d.Limit != 2 {
		t.Fatalf("decision limit: %d", d.Limit)
	}
	if d.EstKeysAttributed <= 0 || d.EstKeysAttributed >= m.Rows {
		t.Fatalf("est keys attributed: %d (rows %d)", d.EstKeysAttributed, m.Rows)
	}
	if s := d.String(); !strings.Contains(s, "limit=2") || !strings.Contains(s, "est-attr=") {
		t.Fatalf("decision string missing limit annotations: %s", s)
	}
}

func TestSelectivityScalesEstimates(t *testing.T) {
	m := testCostModel()
	full := m.KeyThenAttr()
	m.Selectivity = 0.1
	filtered := m.KeyThenAttr()
	if filtered.Tokens() >= full.Tokens() {
		t.Fatalf("selectivity did not shrink key-then-attr tokens: %d vs %d", filtered.Tokens(), full.Tokens())
	}
	if m.FullTable().Tokens() >= testCostModel().FullTable().Tokens() {
		t.Fatal("selectivity did not shrink full-table tokens")
	}
	if m.Paged().Tokens() >= testCostModel().Paged().Tokens() {
		t.Fatal("selectivity did not shrink paged tokens")
	}
}
