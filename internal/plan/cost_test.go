package plan

import (
	"strings"
	"testing"

	"llmsql/internal/llm"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

func testCostModel() ScanCostModel {
	return ScanCostModel{
		Cost:             llm.DefaultCostModel(),
		Rows:             100,
		AttrCols:         2,
		ListPromptTokens: 60,
		KeysPromptTokens: 40,
		AttrPromptTokens: 40,
		RowTokens:        12,
		KeyTokens:        4,
		AttrTokens:       7,
		Rounds:           6,
		MaxRounds:        6,
		Votes:            3,
		PageSize:         40,
		BatchSize:        1,
		Parallelism:      8,
	}
}

// TestCostBatchingReducesKeyThenAttr pins the point of batching: grouping
// keys into one ATTR prompt divides the prompt count by ~BatchSize and
// strictly reduces dollars and wall latency.
func TestCostBatchingReducesKeyThenAttr(t *testing.T) {
	m := testCostModel()
	unbatched := m.KeyThenAttr()
	m.BatchSize = 8
	batched := m.KeyThenAttr()

	if unbatched.Prompts < 4*batched.Prompts {
		t.Fatalf("batching should cut prompts >= 4x: %d vs %d", unbatched.Prompts, batched.Prompts)
	}
	if batched.Dollars >= unbatched.Dollars {
		t.Fatalf("batching should cut dollars: %.5f vs %.5f", batched.Dollars, unbatched.Dollars)
	}
	if batched.Wall >= unbatched.Wall {
		t.Fatalf("batching should cut wall latency: %v vs %v", batched.Wall, unbatched.Wall)
	}
}

// TestCostDecidePicksCheapestDollars checks the decision rule: minimum
// estimated dollars wins.
func TestCostDecidePicksCheapestDollars(t *testing.T) {
	m := testCostModel()
	d := m.Decide()
	if !d.Auto {
		t.Fatal("Decide must mark the decision auto")
	}
	if len(d.Candidates) != 3 {
		t.Fatalf("want 3 candidates, got %d", len(d.Candidates))
	}
	chosen := d.Candidate(d.Chosen)
	for _, c := range d.Candidates {
		if c.Dollars < chosen.Dollars {
			t.Fatalf("chose %s ($%.5f) but %s is cheaper ($%.5f)", d.Chosen, chosen.Dollars, c.Strategy, c.Dollars)
		}
	}
}

// TestCostDecisionShifts checks that the decision responds to the workload
// shape: many resampling rounds punish enumeration strategies (which repeat
// the whole table) relative to batched key-then-attr, and a single round
// with one column makes full-table unbeatable.
func TestCostDecisionShifts(t *testing.T) {
	m := testCostModel()
	m.Rounds = 1
	m.Votes = 1
	m.AttrCols = 1
	d := m.Decide()
	if d.Chosen != "full-table" {
		t.Fatalf("single-round single-column scan should pick full-table, got %s (%s)", d.Chosen, d)
	}

	// Enumeration gets expensive when every round repeats a huge table and
	// only one narrow column is needed per entity.
	m = testCostModel()
	m.Rounds = 8
	m.Votes = 1
	m.AttrCols = 1
	m.RowTokens = 60
	m.BatchSize = 16
	d = m.Decide()
	if d.Chosen == "full-table" {
		t.Fatalf("wide rows x 8 rounds should not pick full-table: %s", d)
	}
}

// TestDecisionString pins the EXPLAIN rendering shape.
func TestDecisionString(t *testing.T) {
	d := testCostModel().Decide()
	s := d.String()
	for _, want := range []string{"auto=", "est-rows=100", "full-table", "paged", "key-then-attr", "$"} {
		if !strings.Contains(s, want) {
			t.Fatalf("decision string missing %q: %s", want, s)
		}
	}
}

// fakeAdvisor is a Catalog+ScanAdvisor for annotation tests.
type fakeAdvisor struct {
	MapCatalog
	decided []string
}

func (f *fakeAdvisor) ScanDecision(table string, needed []bool, filter sql.Expr, limit int64) (ScanDecision, bool) {
	f.decided = append(f.decided, table)
	if _, ok := f.MapCatalog[table]; !ok {
		return ScanDecision{}, false
	}
	return ScanDecision{Auto: true, Chosen: "paged", EstRows: 7}, true
}

// TestPlanAnnotatesScanDecisions checks that Plan attaches the advisor's
// decision to scan nodes and that EXPLAIN surfaces it.
func TestPlanAnnotatesScanDecisions(t *testing.T) {
	cat := &fakeAdvisor{MapCatalog: MapCatalog{
		"country": rel.NewSchema(
			rel.Column{Name: "name", Type: rel.TypeText, Key: true},
			rel.Column{Name: "population", Type: rel.TypeInt},
		),
	}}
	sel, err := sql.ParseSelect("SELECT name FROM country WHERE population > 5")
	if err != nil {
		t.Fatal(err)
	}
	node, err := Plan(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(node)
	if !strings.Contains(out, "auto=paged") || !strings.Contains(out, "est-rows=7") {
		t.Fatalf("EXPLAIN missing scan decision:\n%s", out)
	}
	if len(cat.decided) == 0 {
		t.Fatal("advisor was never consulted")
	}
}
