package plan

import (
	"strings"
	"testing"
	"time"

	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// joinTestCatalog is a synthetic catalog with per-table cardinalities,
// scan pricing ($1 per 10 estimated rows) and bind pricing ($1 per 10
// bound keys, capped at the table size) — enough structure for the join
// planner's decisions to be inspectable.
type joinTestCatalog struct {
	schemas  map[string]rel.Schema
	rows     map[string]int
	bindable map[string]bool
}

func (c *joinTestCatalog) TableSchema(name string) (rel.Schema, error) {
	return MapCatalog(c.schemas).TableSchema(name)
}

func (c *joinTestCatalog) EstimateRows(name string) (int, bool) {
	n, ok := c.rows[strings.ToLower(name)]
	return n, ok
}

func (c *joinTestCatalog) priced(name string, rows int) StrategyCost {
	return StrategyCost{Strategy: name, Prompts: rows, Dollars: float64(rows) / 10, Wall: time.Duration(rows) * time.Millisecond}
}

func (c *joinTestCatalog) ScanDecision(table string, needed []bool, filter sql.Expr, limit int64) (ScanDecision, bool) {
	rows, ok := c.rows[strings.ToLower(table)]
	if !ok || !c.bindable[strings.ToLower(table)] {
		return ScanDecision{}, false
	}
	return ScanDecision{
		Auto:              true,
		Chosen:            "key-then-attr",
		EstRows:           rows,
		EstKeysAttributed: rows,
		Candidates:        []StrategyCost{c.priced("key-then-attr", rows)},
	}, true
}

func (c *joinTestCatalog) BindScanCost(table string, needed []bool, filter sql.Expr, boundKeys int) (StrategyCost, bool) {
	rows, ok := c.rows[strings.ToLower(table)]
	if !ok || !c.bindable[strings.ToLower(table)] {
		return StrategyCost{}, false
	}
	if boundKeys > rows {
		boundKeys = rows
	}
	return c.priced("bind", boundKeys), true
}

func testJoinCatalog() *joinTestCatalog {
	key := func(name string) rel.Schema {
		return rel.NewSchema(
			rel.Column{Name: "name", Type: rel.TypeText, Key: true},
			rel.Column{Name: "val", Type: rel.TypeInt},
			rel.Column{Name: "ref", Type: rel.TypeText},
		)
	}
	return &joinTestCatalog{
		schemas: map[string]rel.Schema{
			"big":   key("big"),
			"small": key("small"),
			"localtbl": rel.NewSchema(
				rel.Column{Name: "id", Type: rel.TypeInt},
				rel.Column{Name: "ref", Type: rel.TypeText},
			),
		},
		rows:     map[string]int{"big": 1000, "small": 10, "localtbl": 10},
		bindable: map[string]bool{"big": true, "small": true},
	}
}

func planJoinQuery(t *testing.T, cat Catalog, query string, opts Options) Node {
	t.Helper()
	sel, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatal(err)
	}
	n, err := PlanOpts(sel, cat, opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestBindJoinChosenWhenCheaper: a selective outer side drives the bound
// scan of the big table; the decision records the strategy, bound table and
// all three candidates.
func TestBindJoinChosenWhenCheaper(t *testing.T) {
	cat := testJoinCatalog()
	n := planJoinQuery(t, cat,
		"SELECT s.val, b.val FROM small s JOIN big b ON s.ref = b.name", DefaultOptions())
	j := findJoin(n)
	if j == nil {
		t.Fatalf("no join in plan:\n%s", Explain(n))
	}
	if j.Strategy != JoinBind || j.BindScan == nil || j.BindScan.Table != "big" {
		t.Fatalf("bind not chosen: strategy=%v scan=%v\n%s", j.Strategy, j.BindScan, Explain(n))
	}
	if j.BindLeft {
		t.Fatalf("bound side must be the right (big) input")
	}
	// Orientation follows cardinality (small left builds), not the bound
	// side — toggling bind must never reorder output.
	if !j.BuildLeft {
		t.Fatalf("build orientation must follow cardinality estimates")
	}
	d := j.Decision
	if d == nil || d.Chosen != JoinBind || d.BindTable != "big" {
		t.Fatalf("decision: %+v", d)
	}
	if len(d.Candidates) != 3 {
		t.Fatalf("candidates: %+v", d.Candidates)
	}
	if bind, hash := d.Candidate("bind"), d.Candidate("hash"); bind.Dollars >= hash.Dollars {
		t.Fatalf("bind (%v) not cheaper than hash (%v)", bind.Dollars, hash.Dollars)
	}
	for _, want := range []string{"[bind:", "→ big", "join=bind", "est-keys="} {
		if out := Explain(n); !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
}

// TestBindJoinDisabledByOption: the ablation gate removes bind from
// selection but keeps the hash decision inspectable.
func TestBindJoinDisabledByOption(t *testing.T) {
	cat := testJoinCatalog()
	opts := DefaultOptions()
	opts.BindJoin = false
	n := planJoinQuery(t, cat,
		"SELECT s.val, b.val FROM small s JOIN big b ON s.ref = b.name", opts)
	j := findJoin(n)
	if j.Strategy != JoinHash || j.BindScan != nil {
		t.Fatalf("bind chosen despite ablation: %+v", j.Strategy)
	}
	if j.Decision == nil || j.Decision.Chosen != JoinHash {
		t.Fatalf("decision: %+v", j.Decision)
	}
}

// TestBindRequiresEntityKeyColumn: when neither side's join key is its
// scan's entity-key column, nothing can bind (the scan enumerates entities
// by key); when only one side's is, that side is the one bound.
func TestBindRequiresEntityKeyColumn(t *testing.T) {
	cat := testJoinCatalog()
	n := planJoinQuery(t, cat,
		"SELECT s.val, b.val FROM small s JOIN big b ON s.ref = b.ref", DefaultOptions())
	if j := findJoin(n); j.Strategy == JoinBind {
		t.Fatalf("bound a non-key join column:\n%s", Explain(n))
	}
	// s.name is small's entity key: the left side binds, driven by the
	// right outer, even though the right side itself cannot.
	n = planJoinQuery(t, cat,
		"SELECT s.val, b.val FROM small s JOIN big b ON s.name = b.ref", DefaultOptions())
	j := findJoin(n)
	if j.Strategy != JoinBind || !j.BindLeft || j.BindScan == nil || j.BindScan.Table != "small" {
		t.Fatalf("key side did not bind:\n%s", Explain(n))
	}
}

// TestBindThroughSubqueryProjection: IN-subqueries plan as semi joins whose
// right side is a projection over the scan; the binding must trace the key
// through it.
func TestBindThroughSubqueryProjection(t *testing.T) {
	cat := testJoinCatalog()
	n := planJoinQuery(t, cat,
		"SELECT val FROM small WHERE ref IN (SELECT name FROM big)", DefaultOptions())
	j := findJoin(n)
	if j == nil || j.Kind != KindSemi {
		t.Fatalf("no semi join:\n%s", Explain(n))
	}
	if j.Strategy != JoinBind || j.BindScan == nil || j.BindScan.Table != "big" {
		t.Fatalf("semi join did not bind through the projection:\n%s", Explain(n))
	}
	// NOT IN: anti joins bind too.
	n = planJoinQuery(t, cat,
		"SELECT val FROM small WHERE ref NOT IN (SELECT name FROM big)", DefaultOptions())
	j = findJoin(n)
	if j == nil || j.Kind != KindAnti || j.Strategy != JoinBind {
		t.Fatalf("anti join did not bind:\n%s", Explain(n))
	}
}

// TestHashBuildSideSelection: the build side follows the cardinality
// estimates for inner joins (ties and non-inner joins keep the right
// side).
func TestHashBuildSideSelection(t *testing.T) {
	cat := testJoinCatalog()
	cat.bindable = map[string]bool{} // force hash
	opts := DefaultOptions()

	n := planJoinQuery(t, cat,
		"SELECT s.val, b.val FROM small s JOIN big b ON s.ref = b.name", opts)
	if j := findJoin(n); j.Strategy != JoinHash || j.BuildLeft != true {
		t.Fatalf("small left side not chosen as build: %+v\n%s", j, Explain(n))
	}

	n = planJoinQuery(t, cat,
		"SELECT s.val, b.val FROM big b JOIN small s ON s.ref = b.name", opts)
	if j := findJoin(n); j.BuildLeft {
		t.Fatalf("big left side chosen as build:\n%s", Explain(n))
	}

	// Tie: both sides the same size — keep the historical right build.
	cat.rows["big"] = 10
	n = planJoinQuery(t, cat,
		"SELECT s.val, b.val FROM small s JOIN big b ON s.ref = b.name", opts)
	if j := findJoin(n); j.BuildLeft {
		t.Fatalf("tie must keep the right build side:\n%s", Explain(n))
	}

	// Left joins stream the left side regardless of size.
	cat.rows["big"] = 1000
	n = planJoinQuery(t, cat,
		"SELECT s.val, b.val FROM small s LEFT JOIN big b ON s.ref = b.name", opts)
	if j := findJoin(n); j.BuildLeft {
		t.Fatalf("left join cannot build left:\n%s", Explain(n))
	}
}

// TestJoinDecisionOmittedForLocalJoins: joins with no priceable side keep
// their cost-free EXPLAIN.
func TestJoinDecisionOmittedForLocalJoins(t *testing.T) {
	cat := testJoinCatalog()
	cat.bindable = map[string]bool{}
	n := planJoinQuery(t, cat,
		"SELECT a.id, b.id FROM localtbl a JOIN localtbl b ON a.ref = b.ref", DefaultOptions())
	j := findJoin(n)
	if j.Decision != nil {
		t.Fatalf("local-only join got a cost decision: %+v", j.Decision)
	}
	if out := Explain(n); !strings.Contains(out, "[hash:") {
		t.Fatalf("hash annotation missing:\n%s", out)
	}
}
