package plan

import (
	"fmt"
	"strings"

	"llmsql/internal/expr"
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// Catalog resolves table names to schemas during planning.
type Catalog interface {
	// TableSchema returns the schema of the named table, or an error when
	// the table does not exist.
	TableSchema(name string) (rel.Schema, error)
}

// Plan builds an optimized logical plan for a SELECT statement. After
// optimization (so needed-column masks and limit hints are final) every
// scan the catalog can price is annotated with its cost-based strategy
// decision.
func Plan(sel *sql.SelectStmt, cat Catalog) (Node, error) {
	return PlanOpts(sel, cat, DefaultOptions())
}

// PlanOpts is Plan with explicit optimizer options.
func PlanOpts(sel *sql.SelectStmt, cat Catalog, opts Options) (Node, error) {
	p := &planner{cat: cat}
	node, err := p.planSelect(sel)
	if err != nil {
		return nil, err
	}
	node = OptimizeOpts(node, opts)
	annotateScans(node, cat)
	planJoins(node, cat, opts)
	return node, nil
}

// PlanUnoptimized builds the plan without running optimizer rules (used by
// tests and the optimizer ablation bench).
func PlanUnoptimized(sel *sql.SelectStmt, cat Catalog) (Node, error) {
	p := &planner{cat: cat}
	return p.planSelect(sel)
}

type planner struct {
	cat Catalog
}

func (p *planner) planSelect(sel *sql.SelectStmt) (Node, error) {
	// 1. FROM.
	var node Node
	if sel.From == nil {
		if sel.Where != nil || len(sel.GroupBy) > 0 || sel.Having != nil {
			return nil, fmt.Errorf("plan: WHERE/GROUP BY require a FROM clause")
		}
		out, rows, err := planConstantSelect(sel)
		if err != nil {
			return nil, err
		}
		node = &ValuesNode{Rows: rows, Out: out}
		if sel.Limit != nil || sel.Offset != nil {
			limit, offset := int64(-1), int64(0)
			if sel.Limit != nil {
				if limit, err = constInt(sel.Limit); err != nil {
					return nil, fmt.Errorf("plan: LIMIT must be a constant integer: %w", err)
				}
			}
			if sel.Offset != nil {
				if offset, err = constInt(sel.Offset); err != nil {
					return nil, fmt.Errorf("plan: OFFSET must be a constant integer: %w", err)
				}
			}
			node = &LimitNode{Child: node, Limit: limit, Offset: offset}
		}
		return node, nil
	}
	node, err := p.planFrom(sel.From)
	if err != nil {
		return nil, err
	}

	// 2. WHERE: split conjuncts; IN-subqueries become semi/anti joins, the
	// rest a filter.
	if sel.Where != nil {
		node, err = p.applyWhere(node, sel.Where)
		if err != nil {
			return nil, err
		}
	}
	return p.finishSelect(sel, node, false)
}

// planConstantSelect handles FROM-less queries: every item must be constant.
func planConstantSelect(sel *sql.SelectStmt) (rel.Schema, []rel.Row, error) {
	empty := rel.Schema{}
	row := make(rel.Row, 0, len(sel.Items))
	cols := make([]rel.Column, 0, len(sel.Items))
	for i, item := range sel.Items {
		if item.Star {
			return rel.Schema{}, nil, fmt.Errorf("plan: SELECT * requires a FROM clause")
		}
		c, err := expr.Compile(item.Expr, empty)
		if err != nil {
			return rel.Schema{}, nil, err
		}
		v, err := c.Eval(nil)
		if err != nil {
			return rel.Schema{}, nil, err
		}
		row = append(row, v)
		cols = append(cols, rel.Column{Name: outputName(item, i), Type: c.Type})
	}
	return rel.NewSchema(cols...), []rel.Row{row}, nil
}

// finishSelect applies aggregation, projection, distinct, order and limit.
func (p *planner) finishSelect(sel *sql.SelectStmt, node Node, constant bool) (Node, error) {
	var err error
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, item := range sel.Items {
		if !item.Star && sql.ContainsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	for _, o := range sel.OrderBy {
		if sql.ContainsAggregate(o.Expr) {
			hasAgg = true
		}
	}

	// Working copies of the expressions that may be rewritten over the
	// aggregate output.
	items := make([]sql.SelectItem, len(sel.Items))
	copy(items, sel.Items)
	// Capture display names before any rewriting replaces expressions with
	// internal references (#g0/#a0).
	names := make([]string, len(items))
	for i, it := range items {
		if !it.Star {
			names[i] = outputName(it, i)
		}
	}
	having := sel.Having
	orderBy := make([]sql.OrderItem, len(sel.OrderBy))
	copy(orderBy, sel.OrderBy)

	if hasAgg && !constant {
		node, items, having, orderBy, err = p.planAggregate(node, sel, items, having, orderBy)
		if err != nil {
			return nil, err
		}
		if having != nil {
			node = &FilterNode{Child: node, Pred: having}
		}
	} else if constant && hasAgg {
		return nil, fmt.Errorf("plan: aggregates require a FROM clause")
	}

	// Projection.
	projExprs, outCols, err := p.expandItems(items, node.Schema(), names)
	if err != nil {
		return nil, err
	}
	outSchema := rel.NewSchema(outCols...)

	// ORDER BY resolution: output alias/name, ordinal, or arbitrary
	// expression over the pre-projection schema (hidden column).
	type orderRef struct {
		visibleCol int      // >= 0 when referring to an output column
		hidden     sql.Expr // non-nil when a hidden column is needed
		desc       bool
	}
	var orders []orderRef
	for _, o := range orderBy {
		ref := orderRef{visibleCol: -1, desc: o.Desc}
		// Ordinal: ORDER BY 2.
		if lit, ok := o.Expr.(*sql.Literal); ok && lit.Value.Type() == rel.TypeInt {
			n := int(lit.Value.AsInt())
			if n < 1 || n > len(projExprs) {
				return nil, fmt.Errorf("plan: ORDER BY position %d out of range", n)
			}
			ref.visibleCol = n - 1
			orders = append(orders, ref)
			continue
		}
		// Output column name / alias (only for bare refs).
		if cr, ok := o.Expr.(*sql.ColumnRef); ok && cr.Table == "" {
			if idx := outSchema.IndexOf(cr.Name); idx >= 0 {
				ref.visibleCol = idx
				orders = append(orders, ref)
				continue
			}
		}
		// Same expression as a projected item?
		matched := false
		for i, pe := range projExprs {
			if exprEqual(o.Expr, pe, node.Schema()) {
				ref.visibleCol = i
				matched = true
				break
			}
		}
		if !matched {
			// Hidden column over the pre-projection schema.
			if _, err := expr.Compile(o.Expr, node.Schema()); err != nil {
				return nil, fmt.Errorf("plan: cannot resolve ORDER BY expression: %w", err)
			}
			ref.hidden = o.Expr
		}
		orders = append(orders, ref)
	}

	hiddenCount := 0
	allExprs := projExprs
	allCols := outCols
	for i := range orders {
		if orders[i].hidden != nil {
			c, err := expr.Compile(orders[i].hidden, node.Schema())
			if err != nil {
				return nil, err
			}
			allExprs = append(allExprs, orders[i].hidden)
			allCols = append(allCols, rel.Column{Name: fmt.Sprintf("#o%d", hiddenCount), Type: c.Type})
			orders[i].visibleCol = len(allExprs) - 1
			hiddenCount++
		}
	}

	if hiddenCount > 0 {
		// Give the wide projection unique internal names so that the final
		// trim projection can reference columns unambiguously even when the
		// visible output has duplicate names.
		wide := make([]rel.Column, len(allCols))
		for i, c := range allCols {
			wide[i] = rel.Column{Name: fmt.Sprintf("#p%d", i), Type: c.Type}
		}
		node = &ProjectNode{Child: node, Exprs: allExprs, Out: rel.NewSchema(wide...)}
	} else {
		node = &ProjectNode{Child: node, Exprs: allExprs, Out: rel.NewSchema(allCols...)}
	}

	if sel.Distinct {
		if hiddenCount > 0 {
			return nil, fmt.Errorf("plan: ORDER BY expression must appear in SELECT list when DISTINCT is used")
		}
		node = &DistinctNode{Child: node}
	}

	if len(orders) > 0 {
		keys := make([]SortKey, len(orders))
		for i, o := range orders {
			keys[i] = SortKey{Col: o.visibleCol, Desc: o.desc}
		}
		node = &SortNode{Child: node, Keys: keys}
	}

	if hiddenCount > 0 {
		// Trim the hidden order columns with a pass-through projection.
		node = &ProjectNode{Child: node, Exprs: positionalRefs(node.Schema(), len(projExprs)), Out: rel.NewSchema(outCols...)}
	}

	if sel.Limit != nil || sel.Offset != nil {
		limit, offset := int64(-1), int64(0)
		if sel.Limit != nil {
			v, err := constInt(sel.Limit)
			if err != nil {
				return nil, fmt.Errorf("plan: LIMIT must be a constant integer: %w", err)
			}
			limit = v
		}
		if sel.Offset != nil {
			v, err := constInt(sel.Offset)
			if err != nil {
				return nil, fmt.Errorf("plan: OFFSET must be a constant integer: %w", err)
			}
			offset = v
		}
		node = &LimitNode{Child: node, Limit: limit, Offset: offset}
	}
	return node, nil
}

// positionalRefs builds column references for the first n columns of schema
// using a positional marker understood by the executor (see exec package):
// it simply references each column by its unique internal name; schema
// internals guarantee hidden names (#o0...) never collide with the prefix.
func positionalRefs(s rel.Schema, n int) []sql.Expr {
	out := make([]sql.Expr, n)
	for i := 0; i < n; i++ {
		out[i] = &sql.ColumnRef{Table: s.Col(i).Table, Name: s.Col(i).Name}
	}
	return out
}

func constInt(e sql.Expr) (int64, error) {
	if sql.HasParams(e) {
		// LIMIT/OFFSET are folded into the plan itself, so a parameter here
		// cannot be bound at execution time.
		return 0, fmt.Errorf("parameters are not supported in LIMIT/OFFSET (the value is folded into the plan)")
	}
	c, err := expr.Compile(e, rel.Schema{})
	if err != nil {
		return 0, err
	}
	v, err := c.Eval(nil)
	if err != nil {
		return 0, err
	}
	iv, err := rel.Coerce(v, rel.TypeInt)
	if err != nil || iv.IsNull() {
		return 0, fmt.Errorf("not an integer")
	}
	return iv.AsInt(), nil
}

// planFrom builds the join tree for a FROM clause.
func (p *planner) planFrom(t sql.TableExpr) (Node, error) {
	switch tt := t.(type) {
	case *sql.TableRef:
		schema, err := p.cat.TableSchema(tt.Name)
		if err != nil {
			return nil, err
		}
		alias := tt.Binding()
		return &ScanNode{Table: tt.Name, Alias: alias, TableSchema: schema.Rename(alias)}, nil

	case *sql.SubqueryRef:
		child, err := p.planSelect(tt.Select)
		if err != nil {
			return nil, err
		}
		// Rename the derived table's schema to the alias via a pass-through
		// projection.
		in := child.Schema()
		exprs := make([]sql.Expr, in.Len())
		cols := make([]rel.Column, in.Len())
		for i := 0; i < in.Len(); i++ {
			c := in.Col(i)
			exprs[i] = &sql.ColumnRef{Table: c.Table, Name: c.Name}
			cols[i] = rel.Column{Name: c.Name, Type: c.Type, Table: tt.Alias, Key: c.Key}
		}
		return &ProjectNode{Child: child, Exprs: exprs, Out: rel.NewSchema(cols...)}, nil

	case *sql.JoinExpr:
		left, err := p.planFrom(tt.Left)
		if err != nil {
			return nil, err
		}
		right, err := p.planFrom(tt.Right)
		if err != nil {
			return nil, err
		}
		var kind JoinKind
		switch tt.Type {
		case sql.JoinInner:
			kind = KindInner
		case sql.JoinLeft:
			kind = KindLeft
		case sql.JoinCross:
			kind = KindCross
		}
		join := &JoinNode{Kind: kind, Left: left, Right: right, On: tt.On}
		if tt.On != nil {
			// Validate the predicate compiles over left++right.
			if _, err := expr.CompileBool(tt.On, join.Left.Schema().Concat(join.Right.Schema())); err != nil {
				return nil, fmt.Errorf("plan: join predicate: %w", err)
			}
		}
		return join, nil

	default:
		return nil, fmt.Errorf("plan: unsupported FROM clause %T", t)
	}
}

// applyWhere splits the WHERE predicate: IN-subquery conjuncts become
// semi/anti joins, everything else a filter node.
func (p *planner) applyWhere(node Node, where sql.Expr) (Node, error) {
	conjuncts := sql.SplitConjuncts(where)
	var rest []sql.Expr
	for _, c := range conjuncts {
		in, ok := c.(*sql.InExpr)
		if !ok || in.Subquery == nil {
			rest = append(rest, c)
			continue
		}
		sub, err := p.planSelect(in.Subquery)
		if err != nil {
			return nil, err
		}
		if sub.Schema().Len() != 1 {
			return nil, fmt.Errorf("plan: IN subquery must produce exactly one column, got %d", sub.Schema().Len())
		}
		kind := KindSemi
		if in.Not {
			kind = KindAnti
		}
		rightCol := sub.Schema().Col(0)
		join := &JoinNode{
			Kind:     kind,
			Left:     node,
			Right:    sub,
			LeftKey:  []sql.Expr{in.X},
			RightKey: []sql.Expr{&sql.ColumnRef{Table: rightCol.Table, Name: rightCol.Name}},
		}
		if _, err := expr.Compile(in.X, node.Schema()); err != nil {
			return nil, fmt.Errorf("plan: IN subquery target: %w", err)
		}
		node = join
	}
	if len(rest) > 0 {
		pred := sql.JoinConjuncts(rest)
		if _, err := expr.CompileBool(pred, node.Schema()); err != nil {
			return nil, fmt.Errorf("plan: WHERE: %w", err)
		}
		node = &FilterNode{Child: node, Pred: pred}
	}
	return node, nil
}

// planAggregate builds the AggregateNode and rewrites select items, HAVING
// and ORDER BY over its output schema.
func (p *planner) planAggregate(node Node, sel *sql.SelectStmt, items []sql.SelectItem, having sql.Expr, orderBy []sql.OrderItem) (Node, []sql.SelectItem, sql.Expr, []sql.OrderItem, error) {
	childSchema := node.Schema()

	// Collect unique aggregate calls across all clauses.
	var aggCalls []*sql.FuncCall
	seen := map[string]int{}
	collect := func(e sql.Expr) {
		sql.WalkExpr(e, func(x sql.Expr) bool {
			f, ok := x.(*sql.FuncCall)
			if !ok || !sql.AggregateFuncs[f.Name] {
				return true
			}
			key := aggKey(f, childSchema)
			if _, dup := seen[key]; !dup {
				seen[key] = len(aggCalls)
				aggCalls = append(aggCalls, f)
			}
			return false // do not descend into aggregate args
		})
	}
	for _, it := range items {
		if !it.Star {
			collect(it.Expr)
		} else {
			return nil, nil, nil, nil, fmt.Errorf("plan: SELECT * cannot be combined with GROUP BY or aggregates")
		}
	}
	collect(having)
	for _, o := range orderBy {
		collect(o.Expr)
	}

	// Build the aggregate node schema: group columns then agg columns.
	agg := &AggregateNode{Child: node}
	var outCols []rel.Column
	for i, g := range sel.GroupBy {
		// Allow grouping by output alias (GROUP BY n where n aliases an item).
		g = resolveAliasRef(g, items, childSchema)
		c, err := expr.Compile(g, childSchema)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("plan: GROUP BY: %w", err)
		}
		name := fmt.Sprintf("#g%d", i)
		agg.GroupBy = append(agg.GroupBy, g)
		agg.GroupNames = append(agg.GroupNames, name)
		outCols = append(outCols, rel.Column{Name: name, Type: c.Type})
	}
	for i, f := range aggCalls {
		spec := AggSpec{Func: f.Name, Distinct: f.Distinct, Name: fmt.Sprintf("#a%d", i)}
		if f.Star {
			if f.Name != "COUNT" {
				return nil, nil, nil, nil, fmt.Errorf("plan: %s(*) is not valid", f.Name)
			}
			spec.Type = rel.TypeInt
		} else {
			if len(f.Args) != 1 {
				return nil, nil, nil, nil, fmt.Errorf("plan: %s takes exactly one argument", f.Name)
			}
			spec.Arg = f.Args[0]
			c, err := expr.Compile(spec.Arg, childSchema)
			if err != nil {
				return nil, nil, nil, nil, fmt.Errorf("plan: %s argument: %w", f.Name, err)
			}
			switch f.Name {
			case "COUNT":
				spec.Type = rel.TypeInt
			case "AVG":
				spec.Type = rel.TypeFloat
			case "SUM":
				if c.Type == rel.TypeInt {
					spec.Type = rel.TypeInt
				} else {
					spec.Type = rel.TypeFloat
				}
			default: // MIN/MAX
				spec.Type = c.Type
			}
		}
		agg.Aggs = append(agg.Aggs, spec)
		outCols = append(outCols, rel.Column{Name: spec.Name, Type: spec.Type})
	}
	agg.Out = rel.NewSchema(outCols...)

	// Rewrite items/having/orderby over the aggregate output.
	rw := &aggRewriter{
		childSchema: childSchema,
		groupBy:     agg.GroupBy,
		groupNames:  agg.GroupNames,
		aggIndex:    seen,
		aggNames:    make([]string, len(agg.Aggs)),
	}
	for i, a := range agg.Aggs {
		rw.aggNames[i] = a.Name
	}
	var err error
	for i := range items {
		items[i].Expr, err = rw.rewrite(items[i].Expr)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	if having != nil {
		having, err = rw.rewrite(having)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	for i := range orderBy {
		// Ordinals and aliases are resolved later; only rewrite real exprs.
		if _, isLit := orderBy[i].Expr.(*sql.Literal); isLit {
			continue
		}
		rewritten, err := rw.rewrite(orderBy[i].Expr)
		if err == nil {
			orderBy[i].Expr = rewritten
		}
		// Errors here are deferred: the expression may be an output alias
		// resolved in finishSelect.
	}
	return agg, items, having, orderBy, nil
}

// resolveAliasRef maps a bare column ref that matches a select-item alias to
// that item's expression (supports GROUP BY alias).
func resolveAliasRef(g sql.Expr, items []sql.SelectItem, schema rel.Schema) sql.Expr {
	cr, ok := g.(*sql.ColumnRef)
	if !ok || cr.Table != "" {
		return g
	}
	// A real column wins over an alias.
	if _, err := schema.Resolve("", cr.Name); err == nil {
		return g
	}
	for _, it := range items {
		if !it.Star && strings.EqualFold(it.Alias, cr.Name) {
			return it.Expr
		}
	}
	return g
}

// aggRewriter replaces aggregate calls and group-by expressions with column
// references into the aggregate output schema.
type aggRewriter struct {
	childSchema rel.Schema
	groupBy     []sql.Expr
	groupNames  []string
	aggIndex    map[string]int
	aggNames    []string
}

func (rw *aggRewriter) rewrite(e sql.Expr) (sql.Expr, error) {
	if e == nil {
		return nil, nil
	}
	// Whole expression equals a group-by expression?
	for i, g := range rw.groupBy {
		if exprEqual(e, g, rw.childSchema) {
			return &sql.ColumnRef{Name: rw.groupNames[i]}, nil
		}
	}
	switch x := e.(type) {
	case *sql.FuncCall:
		if sql.AggregateFuncs[x.Name] {
			idx, ok := rw.aggIndex[aggKey(x, rw.childSchema)]
			if !ok {
				return nil, fmt.Errorf("plan: internal: aggregate %s not collected", x.Name)
			}
			return &sql.ColumnRef{Name: rw.aggNames[idx]}, nil
		}
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			ra, err := rw.rewrite(a)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return &sql.FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}, nil

	case *sql.ColumnRef:
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or inside an aggregate", refName(x))

	case *sql.Literal:
		return x, nil

	case *sql.Param:
		return x, nil

	case *sql.BinaryExpr:
		l, err := rw.rewrite(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(x.Right)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryExpr{Op: x.Op, Left: l, Right: r}, nil

	case *sql.UnaryExpr:
		in, err := rw.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sql.UnaryExpr{Op: x.Op, X: in}, nil

	case *sql.IsNullExpr:
		in, err := rw.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sql.IsNullExpr{X: in, Not: x.Not}, nil

	case *sql.InExpr:
		tgt, err := rw.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		list := make([]sql.Expr, len(x.List))
		for i, it := range x.List {
			ri, err := rw.rewrite(it)
			if err != nil {
				return nil, err
			}
			list[i] = ri
		}
		return &sql.InExpr{X: tgt, List: list, Not: x.Not}, nil

	case *sql.BetweenExpr:
		tgt, err := rw.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := rw.rewrite(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := rw.rewrite(x.Hi)
		if err != nil {
			return nil, err
		}
		return &sql.BetweenExpr{X: tgt, Lo: lo, Hi: hi, Not: x.Not}, nil

	case *sql.LikeExpr:
		tgt, err := rw.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		pat, err := rw.rewrite(x.Pattern)
		if err != nil {
			return nil, err
		}
		return &sql.LikeExpr{X: tgt, Pattern: pat, Not: x.Not}, nil

	case *sql.CaseExpr:
		out := &sql.CaseExpr{}
		var err error
		out.Operand, err = rw.rewrite(x.Operand)
		if err != nil {
			return nil, err
		}
		for _, w := range x.Whens {
			c, err := rw.rewrite(w.Cond)
			if err != nil {
				return nil, err
			}
			th, err := rw.rewrite(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, sql.WhenClause{Cond: c, Then: th})
		}
		out.Else, err = rw.rewrite(x.Else)
		if err != nil {
			return nil, err
		}
		return out, nil

	case *sql.CastExpr:
		in, err := rw.rewrite(x.X)
		if err != nil {
			return nil, err
		}
		return &sql.CastExpr{X: in, Type: x.Type}, nil

	default:
		return nil, fmt.Errorf("plan: unsupported expression %T in aggregate query", e)
	}
}

func refName(c *sql.ColumnRef) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// expandItems expands stars and names the projection outputs. names, when
// non-nil, supplies pre-computed display names for non-star items (needed
// because aggregate rewriting replaces expressions before naming).
func (p *planner) expandItems(items []sql.SelectItem, in rel.Schema, names []string) ([]sql.Expr, []rel.Column, error) {
	var exprs []sql.Expr
	var cols []rel.Column
	for i, item := range items {
		if item.Star {
			for _, c := range in.Columns {
				if item.StarTable != "" && c.Table != strings.ToLower(item.StarTable) {
					continue
				}
				exprs = append(exprs, &sql.ColumnRef{Table: c.Table, Name: c.Name})
				cols = append(cols, rel.Column{Name: c.Name, Type: c.Type, Key: c.Key})
			}
			if item.StarTable != "" && len(exprs) == 0 {
				return nil, nil, fmt.Errorf("plan: unknown table %q in %s.*", item.StarTable, item.StarTable)
			}
			continue
		}
		c, err := expr.Compile(item.Expr, in)
		if err != nil {
			return nil, nil, fmt.Errorf("plan: SELECT item %d: %w", i+1, err)
		}
		name := ""
		if names != nil {
			name = names[i]
		}
		if name == "" {
			name = outputName(item, i)
		}
		exprs = append(exprs, item.Expr)
		cols = append(cols, rel.Column{Name: name, Type: c.Type})
	}
	if len(exprs) == 0 {
		return nil, nil, fmt.Errorf("plan: empty projection")
	}
	return exprs, cols, nil
}

// outputName picks the display name of a projection.
func outputName(item sql.SelectItem, pos int) string {
	if item.Alias != "" {
		return strings.ToLower(item.Alias)
	}
	switch e := item.Expr.(type) {
	case *sql.ColumnRef:
		return e.Name
	case *sql.FuncCall:
		return strings.ToLower(e.Name)
	default:
		return fmt.Sprintf("col%d", pos+1)
	}
}

// aggKey canonicalises an aggregate call for dedup.
func aggKey(f *sql.FuncCall, schema rel.Schema) string {
	var b strings.Builder
	b.WriteString(f.Name)
	if f.Distinct {
		b.WriteString(" DISTINCT")
	}
	if f.Star {
		b.WriteString("(*)")
		return b.String()
	}
	for _, a := range f.Args {
		b.WriteByte('(')
		b.WriteString(normalizedDeparse(a, schema))
		b.WriteByte(')')
	}
	return b.String()
}

// exprEqual compares two expressions modulo column-reference qualification,
// by deparsing their schema-normalized forms.
func exprEqual(a, b sql.Expr, schema rel.Schema) bool {
	if a == nil || b == nil {
		return a == b
	}
	return normalizedDeparse(a, schema) == normalizedDeparse(b, schema)
}

// normalizedDeparse deparses e with every resolvable column reference
// replaced by its canonical position in schema.
func normalizedDeparse(e sql.Expr, schema rel.Schema) string {
	n := normalizeRefs(e, schema)
	return sql.Deparse(n)
}

func normalizeRefs(e sql.Expr, schema rel.Schema) sql.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sql.ColumnRef:
		if idx, err := schema.Resolve(x.Table, x.Name); err == nil {
			return &sql.ColumnRef{Name: fmt.Sprintf("#c%d", idx)}
		}
		return x
	case *sql.Literal:
		return x
	case *sql.BinaryExpr:
		return &sql.BinaryExpr{Op: x.Op, Left: normalizeRefs(x.Left, schema), Right: normalizeRefs(x.Right, schema)}
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, X: normalizeRefs(x.X, schema)}
	case *sql.FuncCall:
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = normalizeRefs(a, schema)
		}
		return &sql.FuncCall{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{X: normalizeRefs(x.X, schema), Not: x.Not}
	case *sql.InExpr:
		list := make([]sql.Expr, len(x.List))
		for i, a := range x.List {
			list[i] = normalizeRefs(a, schema)
		}
		return &sql.InExpr{X: normalizeRefs(x.X, schema), List: list, Subquery: x.Subquery, Not: x.Not}
	case *sql.BetweenExpr:
		return &sql.BetweenExpr{X: normalizeRefs(x.X, schema), Lo: normalizeRefs(x.Lo, schema), Hi: normalizeRefs(x.Hi, schema), Not: x.Not}
	case *sql.LikeExpr:
		return &sql.LikeExpr{X: normalizeRefs(x.X, schema), Pattern: normalizeRefs(x.Pattern, schema), Not: x.Not}
	case *sql.CaseExpr:
		out := &sql.CaseExpr{Operand: normalizeRefs(x.Operand, schema), Else: normalizeRefs(x.Else, schema)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sql.WhenClause{Cond: normalizeRefs(w.Cond, schema), Then: normalizeRefs(w.Then, schema)})
		}
		return out
	case *sql.CastExpr:
		return &sql.CastExpr{X: normalizeRefs(x.X, schema), Type: x.Type}
	default:
		return e
	}
}
