package plan

import (
	"fmt"
	"strings"
	"time"

	"llmsql/internal/llm"
	"llmsql/internal/sql"
)

// This file implements the cost side of scan planning: a token/latency/$
// estimator that prices each prompt-decomposition strategy for one
// virtual-table scan, so the engine can pick the cheapest per table
// ("auto" strategy) instead of forcing one global choice on the user.
//
// The estimator is deliberately closed-form: it uses the same llm.CostModel
// the accounting layer charges with, the catalog's column counts, and a
// per-table cardinality estimate (world metadata at registration, refined
// by prior-scan statistics), but it never calls the model. Estimates are
// therefore cheap, deterministic, and honest about being estimates — the
// EXPLAIN output labels them "est".

// StrategyCost prices one candidate decomposition of a virtual-table scan.
type StrategyCost struct {
	// Strategy is the candidate's display name ("full-table", "paged",
	// "key-then-attr").
	Strategy string
	// Prompts is the estimated number of model calls.
	Prompts int
	// PromptTokens and CompletionTokens are the estimated token totals.
	PromptTokens     int
	CompletionTokens int
	// Wall is the estimated critical-path latency under the configured
	// worker-pool width (list scheduling, same rule the engine accounts
	// with).
	Wall time.Duration
	// Dollars is the estimated spend under the cost model.
	Dollars float64
}

// Tokens returns prompt+completion tokens.
func (c StrategyCost) Tokens() int { return c.PromptTokens + c.CompletionTokens }

// ScanDecision records which decomposition a virtual-table scan will use
// and why: the full per-strategy cost breakdown behind the choice. It is
// attached to ScanNode by the planner (via ScanAdvisor) so EXPLAIN can
// surface it, and computed again by the store when the scan runs.
type ScanDecision struct {
	// Auto reports that the strategy was chosen by the cost model; when
	// false the configuration forced Chosen and Candidates are advisory.
	Auto bool
	// Chosen is the strategy the scan will run.
	Chosen string
	// EstRows is the cardinality estimate the pricing used.
	EstRows int
	// Limit is the advisory row cap pushed onto the scan (0 = none).
	Limit int64
	// EstKeysAttributed is the expected number of keys the key-then-attr
	// strategy pays attribute prompts for:
	// min(cardinality*selectivity, limit+window). Equal to the filtered
	// cardinality when no limit is pushed.
	EstKeysAttributed int
	// WarmHitRate is the expected persistent prompt-cache hit rate the
	// pricing discounted estimated $ and wall by (0 = cold or no cache).
	WarmHitRate float64
	// FaultRate is the expected per-attempt failure probability the pricing
	// inflated estimated wall by (0 = healthy backend). Nonzero means every
	// candidate's Wall includes expected retry round trips and backoff.
	FaultRate float64
	// Candidates holds the cost breakdown per strategy, in a stable order.
	Candidates []StrategyCost
}

// Candidate returns the cost entry for the named strategy (zero value when
// absent).
func (d ScanDecision) Candidate(name string) StrategyCost {
	for _, c := range d.Candidates {
		if c.Strategy == name {
			return c
		}
	}
	return StrategyCost{}
}

// String renders the decision compactly for EXPLAIN:
//
//	auto=key-then-attr est-rows=40 | full-table $0.0031/12s ...
func (d ScanDecision) String() string {
	var b strings.Builder
	if d.Auto {
		b.WriteString("auto=")
	} else {
		b.WriteString("strategy=")
	}
	b.WriteString(d.Chosen)
	fmt.Fprintf(&b, " est-rows=%d", d.EstRows)
	if d.Limit > 0 {
		fmt.Fprintf(&b, " limit=%d est-attr=%d", d.Limit, d.EstKeysAttributed)
	}
	if d.WarmHitRate > 0 {
		fmt.Fprintf(&b, " warm-hit=%.2f", d.WarmHitRate)
	}
	if d.FaultRate > 0 {
		fmt.Fprintf(&b, " fault-rate=%.2f", d.FaultRate)
	}
	for _, c := range d.Candidates {
		fmt.Fprintf(&b, " | %s: %d prompts, %d tok, $%.4f, %s",
			c.Strategy, c.Prompts, c.Tokens(), c.Dollars, c.Wall.Round(time.Millisecond))
	}
	return b.String()
}

// ScanAdvisor is an optional Catalog capability: catalogs that price scan
// decompositions per table (the LLM store) report the decision for a given
// needed-column mask so the planner can annotate ScanNode and EXPLAIN can
// surface it. Catalogs without an opinion (row stores) simply do not
// implement it.
type ScanAdvisor interface {
	// ScanDecision prices the scan of table with the given needed mask
	// (nil = all columns), pushed-down filter (nil = none, used for a
	// selectivity estimate) and advisory row cap (0 = none). ok is false
	// when the table is not this catalog's or no pricing applies.
	ScanDecision(table string, needed []bool, filter sql.Expr, limit int64) (ScanDecision, bool)
}

// ScanDecision implements ScanAdvisor for MultiCatalog by consulting
// members in order.
func (m MultiCatalog) ScanDecision(table string, needed []bool, filter sql.Expr, limit int64) (ScanDecision, bool) {
	for _, c := range m {
		if adv, ok := c.(ScanAdvisor); ok {
			if d, ok := adv.ScanDecision(table, needed, filter, limit); ok {
				return d, true
			}
		}
	}
	return ScanDecision{}, false
}

// annotateScans walks an optimized plan and attaches a ScanDecision to
// every scan the catalog can price. It runs after column pruning and limit
// pushdown so the Needed masks and Limit hints the estimator sees are
// final.
func annotateScans(n Node, cat Catalog) {
	if n == nil {
		return
	}
	if s, ok := n.(*ScanNode); ok {
		if adv, ok := cat.(ScanAdvisor); ok {
			if d, ok := adv.ScanDecision(s.Table, s.Needed, s.Filter, s.Limit); ok {
				s.Decision = &d
			}
		}
		return
	}
	for _, c := range n.Children() {
		annotateScans(c, cat)
	}
}

// ScanCostModel holds the per-scan shape parameters the estimator prices
// from. The engine fills it from the catalog (column counts, prompt token
// counts measured on real prompt templates), the configuration (rounds,
// votes, page and batch sizes, parallelism) and its cardinality estimate.
type ScanCostModel struct {
	// Cost converts tokens into latency and dollars.
	Cost llm.CostModel
	// Rows is the estimated table cardinality.
	Rows int
	// AttrCols is the number of retrieved non-key columns.
	AttrCols int
	// ListPromptTokens / KeysPromptTokens / AttrPromptTokens are measured
	// token counts of one LIST / KEYS / single-key ATTR prompt.
	ListPromptTokens int
	KeysPromptTokens int
	AttrPromptTokens int
	// RowTokens / KeyTokens / AttrTokens estimate completion tokens per
	// full row, per bare key, and per single attribute answer.
	RowTokens  int
	KeyTokens  int
	AttrTokens int
	// Rounds is the expected number of constant-prompt enumeration
	// sampling rounds (1 at temperature zero — greedy decoding cannot
	// produce new rows).
	Rounds int
	// MaxRounds caps paged continuation. Pages vary the prompt, so paging
	// proceeds even at temperature zero and prices off this cap, not
	// Rounds.
	MaxRounds int
	// Votes is the self-consistency factor of attribute retrieval.
	Votes int
	// PageSize is MAXROWS per paged prompt.
	PageSize int
	// BatchSize is the keys-per-ATTR-prompt grouping factor (1 = one key
	// per prompt).
	BatchSize int
	// Parallelism is the scan worker-pool width.
	Parallelism int
	// Limit is the advisory row cap pushed onto the scan (0 = none): the
	// plan consumes at most this many rows, so the streaming key-then-attr
	// scan attributes at most Limit plus one prefetch window of keys.
	Limit int64
	// Selectivity estimates the fraction of entities surviving the
	// pushed-down predicate (1 = unfiltered; values <= 0 mean unknown and
	// are treated as 1). It scales enumeration completions for every
	// strategy and, because key-only conjuncts are enforced locally by the
	// scan's gate, the number of keys that reach the attribute phase.
	Selectivity float64
	// WarmHitRate is the expected persistent prompt-cache hit rate for this
	// scan's prompts (0 = cold or no cache; the engine probes the cache's
	// content-addressed index with the scan's deterministic round-0
	// enumeration fingerprints). Cached calls cost no dollars or latency,
	// so estimated $ and wall are discounted by the rate — uniformly across
	// candidates, which leaves the strategy choice itself unchanged.
	// Prompt and token counts stay undiscounted: the calls are still
	// issued, they are just free.
	WarmHitRate float64
	// FaultRate is the expected per-attempt probability that a model call
	// fails retryably (the engine derives it from the configured chaos
	// profile; 0 on a healthy backend). Nonzero rates price expected
	// recovery into every candidate's wall: each call is extended by the
	// expected number of retries times a failed round trip plus
	// RetryBackoff. Dollars are left alone — failed attempts return no
	// tokens, and that is what dollars charge for. Like the warm discount
	// this applies uniformly, so the strategy choice itself is unchanged;
	// EXPLAIN surfaces the rate so a degraded estimate is recognizable.
	FaultRate float64
	// RetryBackoff is the expected backoff wait per retry (the retry
	// policy's base backoff; exponential growth and jitter average out
	// around it at low fault rates).
	RetryBackoff time.Duration
	// MaxAttempts caps the expected retries per call at the retry budget.
	MaxAttempts int
}

func (m ScanCostModel) normalized() ScanCostModel {
	if m.Rows < 1 {
		m.Rows = 1
	}
	if m.Rounds < 1 {
		m.Rounds = 1
	}
	if m.MaxRounds < m.Rounds {
		m.MaxRounds = m.Rounds
	}
	if m.Votes < 1 {
		m.Votes = 1
	}
	if m.PageSize < 1 {
		m.PageSize = 1
	}
	if m.BatchSize < 1 {
		m.BatchSize = 1
	}
	if m.Parallelism < 1 {
		m.Parallelism = 1
	}
	if m.Limit < 0 {
		m.Limit = 0
	}
	if m.Selectivity <= 0 || m.Selectivity > 1 {
		m.Selectivity = 1
	}
	if m.WarmHitRate < 0 {
		m.WarmHitRate = 0
	}
	if m.WarmHitRate > 1 {
		m.WarmHitRate = 1
	}
	if m.FaultRate < 0 {
		m.FaultRate = 0
	}
	if m.FaultRate > 1 {
		m.FaultRate = 1
	}
	if m.RetryBackoff < 0 {
		m.RetryBackoff = 0
	}
	if m.MaxAttempts < 1 {
		m.MaxAttempts = 1
	}
	return m
}

// expectedRetries is the expected number of extra attempts one call spends
// recovering at the configured fault rate: the geometric mean p/(1-p),
// capped by the attempt budget (a run that exhausts the budget stops
// retrying whether or not the backend recovered).
func (m ScanCostModel) expectedRetries() float64 {
	p := m.FaultRate
	if p <= 0 {
		return 0
	}
	if p > 0.99 {
		p = 0.99
	}
	r := p / (1 - p)
	if lim := float64(m.MaxAttempts - 1); r > lim {
		r = lim
	}
	return r
}

// faultOverhead is the expected extra virtual time one call spends on
// recovery: each expected retry burns a failed round trip plus one backoff
// wait — exactly what the Retrier charges into FaultLatency, in
// expectation.
func (m ScanCostModel) faultOverhead() time.Duration {
	r := m.expectedRetries()
	if r <= 0 {
		return 0
	}
	return time.Duration(r * float64(m.Cost.PerCallLatency+m.RetryBackoff))
}

// effRows is the estimated number of entities the model returns for an
// enumeration prompt: the cardinality scaled by the pushed predicate's
// selectivity, at least one.
func (m ScanCostModel) effRows() int {
	rows := int(float64(m.Rows)*m.Selectivity + 0.5)
	if rows < 1 {
		rows = 1
	}
	return rows
}

// PrefetchWindow returns the number of keys the streaming key-then-attr
// scan attributes per demand-driven window: the smallest batch-aligned key
// count whose fan-out (attrCols x votes tasks per key) fills the worker
// pool, capped by the advisory limit (there is no point prefetching past
// what the plan will consume). Windows are always a multiple of batch so
// the batched prompt grouping — and therefore every completion — is
// byte-identical to the unwindowed scan. The same formula prices the
// expected over-fetch in ScanCostModel.KeyThenAttr.
func PrefetchWindow(parallelism, attrCols, votes, batch int, limit int64) int {
	if parallelism < 1 {
		parallelism = 1
	}
	if attrCols < 1 {
		attrCols = 1
	}
	if votes < 1 {
		votes = 1
	}
	if batch < 1 {
		batch = 1
	}
	tasksPerKey := attrCols * votes
	w := (parallelism + tasksPerKey - 1) / tasksPerKey
	if limit > 0 && int64(w) > limit {
		w = int(limit)
	}
	return (w + batch - 1) / batch * batch
}

// attrKeys is the expected number of keys the key-then-attr strategy pays
// attribute prompts for: all surviving keys without a limit, and at most
// limit plus one prefetch window with one (the demand-driven scan stops
// launching attribute work once downstream has consumed enough rows).
func (m ScanCostModel) attrKeys() int {
	keys := m.effRows()
	if m.Limit > 0 {
		w := PrefetchWindow(m.Parallelism, m.AttrCols, m.Votes, m.BatchSize, m.Limit)
		if bound := m.Limit + int64(w); int64(keys) > bound {
			keys = int(bound)
		}
	}
	return keys
}

// fanOutWall replays n calls of per-call duration d through the same greedy
// list scheduler the engine accounts with, returning the makespan under the
// configured lane count. Each call carries its expected fault-recovery
// overhead, occupying its lane the way the engine's accounting would.
func (m ScanCostModel) fanOutWall(n int, d time.Duration) time.Duration {
	d += m.faultOverhead()
	sched := llm.NewSched(m.Parallelism)
	for i := 0; i < n; i++ {
		sched.Add(d)
	}
	return sched.Makespan()
}

// price assembles a StrategyCost from call shape totals. perCallPrompt and
// perCallCompletion describe the average call so wall latency can be
// scheduled; token totals carry the exact sums. An expected warm-cache hit
// rate discounts $ and wall — cached calls are free — while the prompt and
// token columns keep the full workload shape.
func (m ScanCostModel) price(name string, prompts, promptTok, complTok int, wall time.Duration) StrategyCost {
	cold := 1 - m.WarmHitRate
	return StrategyCost{
		Strategy:         name,
		Prompts:          prompts,
		PromptTokens:     promptTok,
		CompletionTokens: complTok,
		Wall:             time.Duration(float64(wall) * cold),
		Dollars:          m.Cost.Dollars(promptTok, complTok) * cold,
	}
}

// FullTable prices the full-table decomposition: Rounds LIST prompts, each
// answering the whole (estimated) table. Rounds are prefetched concurrently
// by the engine, so wall latency fans out.
func (m ScanCostModel) FullTable() StrategyCost {
	m = m.normalized()
	perPrompt := m.ListPromptTokens
	perCompl := m.effRows() * m.RowTokens
	perCall := m.Cost.Latency(perPrompt, perCompl)
	return m.price("full-table",
		m.Rounds, m.Rounds*perPrompt, m.Rounds*perCompl,
		m.fanOutWall(m.Rounds, perCall))
}

// Paged prices the paged decomposition: sequential LIST prompts of PageSize
// rows whose EXCLUDE list grows by one page of keys each step, plus one
// final empty page that triggers convergence. Pages form a dependency chain,
// so wall latency is the serial sum regardless of parallelism.
func (m ScanCostModel) Paged() StrategyCost {
	m = m.normalized()
	eff := m.effRows()
	pages := (eff+m.PageSize-1)/m.PageSize + 1
	if pages > m.MaxRounds {
		pages = m.MaxRounds
	}
	var promptTok, complTok int
	var wall time.Duration
	for p := 0; p < pages; p++ {
		// Page p's prompt carries the keys of all previous pages.
		excluded := p * m.PageSize
		if excluded > eff {
			excluded = eff
		}
		pt := m.ListPromptTokens + excluded*m.KeyTokens
		rows := eff - excluded
		if rows > m.PageSize {
			rows = m.PageSize
		}
		if rows < 0 {
			rows = 0
		}
		ct := rows * m.RowTokens
		promptTok += pt
		complTok += ct
		wall += m.Cost.Latency(pt, ct) + m.faultOverhead()
	}
	return m.price("paged", pages, promptTok, complTok, wall)
}

// KeyThenAttr prices the Galois-style decomposition: Rounds KEYS prompts
// (prefetched), then one ATTR prompt per batch of BatchSize keys per
// retrieved column per vote (fanned out across the pool). Batching folds
// the per-prompt boilerplate over BatchSize keys, which is where the
// savings come from.
func (m ScanCostModel) KeyThenAttr() StrategyCost {
	m = m.normalized()
	return m.keyThenAttrKeys("key-then-attr", m.attrKeys())
}

// BindScan prices the bound key-then-attr scan a bind join issues: the
// enumeration phase is unchanged (it stays the membership oracle that keeps
// bound results byte-identical to the full scan), but only enumerated keys
// among the boundKeys outer join-key values reach the attribute fan-out —
// the dominant cost term, attrCols x votes prompts per key. The bind gate
// keeps whole batch groups (batched prompts must stay identical to the
// unbound scan's), so worst-case scatter touches one full group per bound
// key: price min(boundKeys, groups) groups.
func (m ScanCostModel) BindScan(boundKeys int) StrategyCost {
	m = m.normalized()
	if boundKeys < 0 {
		boundKeys = 0
	}
	keys := m.attrKeys()
	groups := (keys + m.BatchSize - 1) / m.BatchSize
	if boundKeys < groups {
		groups = boundKeys
	}
	if bound := groups * m.BatchSize; bound < keys {
		keys = bound
	}
	return m.keyThenAttrKeys("bind", keys)
}

// keyThenAttrKeys assembles the key-then-attr cost shape for an attribute
// phase over exactly attrKeys keys.
func (m ScanCostModel) keyThenAttrKeys(name string, attrKeys int) StrategyCost {
	keysPrompt := m.KeysPromptTokens
	keysCompl := m.effRows() * m.KeyTokens
	wall := m.fanOutWall(m.Rounds, m.Cost.Latency(keysPrompt, keysCompl))
	promptTok := m.Rounds * keysPrompt
	complTok := m.Rounds * keysCompl

	// Only keys the limit leaves in demand reach the attribute phase.
	batches := (attrKeys + m.BatchSize - 1) / m.BatchSize
	attrPrompts := batches * m.AttrCols * m.Votes
	// A batched prompt lists its keys; a batched answer echoes each key
	// next to its value. BatchSize 1 degrades to the single-key shape.
	perPrompt := m.AttrPromptTokens + (m.BatchSize-1)*m.KeyTokens
	perCompl := m.AttrTokens
	if m.BatchSize > 1 {
		perCompl = m.BatchSize * (m.KeyTokens + m.AttrTokens)
	}
	promptTok += attrPrompts * perPrompt
	complTok += attrPrompts * perCompl
	wall += m.fanOutWall(attrPrompts, m.Cost.Latency(perPrompt, perCompl))

	return m.price(name, m.Rounds+attrPrompts, promptTok, complTok, wall)
}

// Candidates prices every strategy in display order.
func (m ScanCostModel) Candidates() []StrategyCost {
	return []StrategyCost{m.FullTable(), m.Paged(), m.KeyThenAttr()}
}

// Decide prices every strategy and picks the cheapest by estimated dollars,
// breaking ties toward lower wall latency and then candidate order. Dollar
// cost is the primary axis because it is the one the paper's trade-off is
// about (tokens are what you pay for); wall latency is the tiebreak because
// it is what the user waits for.
func (m ScanCostModel) Decide() ScanDecision {
	m = m.normalized()
	cands := m.Candidates()
	best := 0
	for i := 1; i < len(cands); i++ {
		if cands[i].Dollars < cands[best].Dollars ||
			(cands[i].Dollars == cands[best].Dollars && cands[i].Wall < cands[best].Wall) {
			best = i
		}
	}
	return ScanDecision{
		Auto:              true,
		Chosen:            cands[best].Strategy,
		EstRows:           m.Rows,
		Limit:             m.Limit,
		EstKeysAttributed: m.attrKeys(),
		WarmHitRate:       m.WarmHitRate,
		FaultRate:         m.FaultRate,
		Candidates:        cands,
	}
}
