package plan

import (
	"strings"
	"testing"

	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

func testCatalog() MapCatalog {
	return MapCatalog{
		"country": rel.NewSchema(
			rel.Column{Name: "name", Type: rel.TypeText, Key: true},
			rel.Column{Name: "capital", Type: rel.TypeText},
			rel.Column{Name: "continent", Type: rel.TypeText},
			rel.Column{Name: "population", Type: rel.TypeInt},
		),
		"movie": rel.NewSchema(
			rel.Column{Name: "title", Type: rel.TypeText, Key: true},
			rel.Column{Name: "director", Type: rel.TypeText},
			rel.Column{Name: "year", Type: rel.TypeInt},
			rel.Column{Name: "country", Type: rel.TypeText},
		),
	}
}

func mustPlan(t *testing.T, src string) Node {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := Plan(sel, testCatalog())
	if err != nil {
		t.Fatalf("plan %q: %v", src, err)
	}
	return n
}

func planErr(t *testing.T, src string) error {
	t.Helper()
	sel, err := sql.ParseSelect(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Plan(sel, testCatalog())
	return err
}

func TestPlanSimpleSelect(t *testing.T) {
	n := mustPlan(t, "SELECT name, population FROM country WHERE population > 50")
	proj, ok := n.(*ProjectNode)
	if !ok {
		t.Fatalf("root: %T", n)
	}
	if proj.Out.Len() != 2 || proj.Out.Col(0).Name != "name" {
		t.Fatalf("out schema: %v", proj.Out)
	}
	// Filter should have been pushed into the scan.
	scan, ok := proj.Child.(*ScanNode)
	if !ok {
		t.Fatalf("child: %T (filter not pushed)", proj.Child)
	}
	if scan.Filter == nil {
		t.Fatal("scan filter missing")
	}
}

func TestPlanProjectionPruning(t *testing.T) {
	n := mustPlan(t, "SELECT name FROM country WHERE population > 50")
	scan := findScan(n, "country")
	if scan == nil {
		t.Fatal("scan not found")
	}
	if scan.Needed == nil {
		t.Fatal("needed mask not set")
	}
	// name (projected), population (filter), plus key columns always kept.
	want := map[string]bool{"name": true, "population": true}
	for i, c := range scan.TableSchema.Columns {
		if scan.Needed[i] != (want[c.Name] || c.Key) {
			t.Errorf("needed[%s] = %v", c.Name, scan.Needed[i])
		}
	}
}

func TestPlanSelectStarKeepsAll(t *testing.T) {
	n := mustPlan(t, "SELECT * FROM country")
	scan := findScan(n, "country")
	if scan == nil {
		t.Fatal("scan not found")
	}
	for i := range scan.TableSchema.Columns {
		if scan.Needed != nil && !scan.Needed[i] {
			t.Fatalf("star query pruned column %d", i)
		}
	}
	proj := n.(*ProjectNode)
	if proj.Out.Len() != 4 {
		t.Fatalf("star expansion: %v", proj.Out)
	}
}

func TestPlanJoinKeyExtraction(t *testing.T) {
	n := mustPlan(t, `SELECT c.name, m.title FROM country c JOIN movie m ON m.country = c.name WHERE m.year > 2000`)
	join := findJoin(n)
	if join == nil {
		t.Fatal("join not found")
	}
	if join.Kind != KindInner || len(join.LeftKey) != 1 || len(join.RightKey) != 1 {
		t.Fatalf("join keys: %+v", join)
	}
	// Year filter pushed to the movie side scan.
	scan := findScan(n, "movie")
	if scan == nil || scan.Filter == nil {
		t.Fatal("movie filter not pushed")
	}
	cscan := findScan(n, "country")
	if cscan == nil || cscan.Filter != nil {
		t.Fatal("country must have no filter")
	}
}

func TestPlanCommaJoinBecomesHashJoin(t *testing.T) {
	n := mustPlan(t, `SELECT c.name FROM country c, movie m WHERE m.country = c.name AND m.year = 1999`)
	join := findJoin(n)
	if join == nil {
		t.Fatal("join not found")
	}
	if join.Kind != KindInner {
		t.Fatalf("cross join not upgraded: %v", join.Kind)
	}
	if len(join.LeftKey) != 1 {
		t.Fatalf("no hash keys: %+v", join)
	}
}

func TestPlanLeftJoinPushdownSafety(t *testing.T) {
	// Right-side predicates must NOT be pushed below a left join from WHERE
	// (they stay in a filter above it).
	sel, err := sql.ParseSelect(`SELECT c.name FROM country c LEFT JOIN movie m ON m.country = c.name WHERE m.year > 2000`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Plan(sel, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if scan := findScan(n, "movie"); scan != nil && scan.Filter != nil {
		t.Fatal("right-side predicate pushed below left join")
	}
	// A filter node must remain above the join.
	if !hasNodeType(n, "*plan.FilterNode") {
		t.Fatalf("missing filter above left join:\n%s", Explain(n))
	}
}

func TestPlanAggregate(t *testing.T) {
	n := mustPlan(t, `
		SELECT continent, COUNT(*) AS n, AVG(population) AS avgpop
		FROM country
		GROUP BY continent
		HAVING COUNT(*) > 2
		ORDER BY n DESC`)
	agg := findAgg(n)
	if agg == nil {
		t.Fatal("aggregate not found")
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("agg shape: groups=%d aggs=%d", len(agg.GroupBy), len(agg.Aggs))
	}
	if agg.Aggs[0].Func != "COUNT" || agg.Aggs[0].Type != rel.TypeInt {
		t.Fatalf("agg0: %+v", agg.Aggs[0])
	}
	if agg.Aggs[1].Func != "AVG" || agg.Aggs[1].Type != rel.TypeFloat {
		t.Fatalf("agg1: %+v", agg.Aggs[1])
	}
	// COUNT(*) in HAVING must reuse the same agg column (dedup).
	if len(agg.Aggs) != 2 {
		t.Fatal("aggregate dedup failed")
	}
}

func TestPlanAggregateValidation(t *testing.T) {
	if err := planErr(t, "SELECT name, COUNT(*) FROM country"); err == nil {
		t.Fatal("ungrouped column must be rejected")
	}
	if err := planErr(t, "SELECT * FROM country GROUP BY continent"); err == nil {
		t.Fatal("star with group by must be rejected")
	}
	if err := planErr(t, "SELECT SUM(*) FROM country"); err == nil {
		t.Fatal("SUM(*) must be rejected")
	}
}

func TestPlanGroupByAlias(t *testing.T) {
	n := mustPlan(t, "SELECT UPPER(continent) AS cont, COUNT(*) FROM country GROUP BY cont")
	agg := findAgg(n)
	if agg == nil || len(agg.GroupBy) != 1 {
		t.Fatal("group by alias failed")
	}
	if _, ok := agg.GroupBy[0].(*sql.FuncCall); !ok {
		t.Fatalf("alias not expanded: %T", agg.GroupBy[0])
	}
}

func TestPlanInSubqueryBecomesSemiJoin(t *testing.T) {
	n := mustPlan(t, `SELECT title FROM movie WHERE country IN (SELECT name FROM country WHERE continent = 'Europe')`)
	join := findJoin(n)
	if join == nil {
		t.Fatal("semi join not found")
	}
	if join.Kind != KindSemi {
		t.Fatalf("kind: %v", join.Kind)
	}
	n = mustPlan(t, `SELECT title FROM movie WHERE country NOT IN (SELECT name FROM country)`)
	join = findJoin(n)
	if join == nil || join.Kind != KindAnti {
		t.Fatalf("anti join: %+v", join)
	}
}

func TestPlanInSubqueryArityCheck(t *testing.T) {
	if err := planErr(t, "SELECT * FROM movie WHERE country IN (SELECT name, capital FROM country)"); err == nil {
		t.Fatal("multi-column IN subquery must be rejected")
	}
}

func TestPlanDerivedTable(t *testing.T) {
	n := mustPlan(t, `SELECT s.cnt FROM (SELECT COUNT(*) AS cnt FROM country) AS s`)
	proj, ok := n.(*ProjectNode)
	if !ok {
		t.Fatalf("root: %T", n)
	}
	if proj.Out.Col(0).Name != "cnt" {
		t.Fatalf("derived out: %v", proj.Out)
	}
}

func TestPlanOrderByVariants(t *testing.T) {
	// Ordinal.
	n := mustPlan(t, "SELECT name, population FROM country ORDER BY 2 DESC")
	sort := findSort(n)
	if sort == nil || sort.Keys[0].Col != 1 || !sort.Keys[0].Desc {
		t.Fatalf("ordinal sort: %+v", sort)
	}
	// Alias.
	n = mustPlan(t, "SELECT population AS pop FROM country ORDER BY pop")
	sort = findSort(n)
	if sort == nil || sort.Keys[0].Col != 0 {
		t.Fatalf("alias sort: %+v", sort)
	}
	// Hidden expression (not in select list).
	n = mustPlan(t, "SELECT name FROM country ORDER BY population")
	sort = findSort(n)
	if sort == nil || sort.Keys[0].Col != 1 {
		t.Fatalf("hidden sort: %+v", sort)
	}
	// Final schema must not include the hidden column.
	if n.Schema().Len() != 1 {
		t.Fatalf("hidden column leaked: %v", n.Schema())
	}
	// Out of range ordinal.
	if err := planErr(t, "SELECT name FROM country ORDER BY 5"); err == nil {
		t.Fatal("bad ordinal must error")
	}
}

func TestPlanLimitOffset(t *testing.T) {
	n := mustPlan(t, "SELECT name FROM country LIMIT 3 OFFSET 1")
	lim, ok := n.(*LimitNode)
	if !ok || lim.Limit != 3 || lim.Offset != 1 {
		t.Fatalf("limit: %#v", n)
	}
	if err := planErr(t, "SELECT name FROM country LIMIT name"); err == nil {
		t.Fatal("non-constant limit must error")
	}
}

func TestPlanConstantSelect(t *testing.T) {
	n := mustPlan(t, "SELECT 1 + 2 AS three, 'x' AS s")
	v, ok := n.(*ValuesNode)
	if !ok {
		t.Fatalf("root: %T", n)
	}
	if len(v.Rows) != 1 || v.Rows[0][0].AsInt() != 3 {
		t.Fatalf("values: %v", v.Rows)
	}
	if v.Out.Col(0).Name != "three" {
		t.Fatalf("names: %v", v.Out)
	}
}

func TestPlanConstantFoldFilter(t *testing.T) {
	// WHERE TRUE is removed entirely.
	n := mustPlan(t, "SELECT name FROM country WHERE 1 = 1")
	if hasNodeType(n, "*plan.FilterNode") {
		t.Fatalf("tautology not folded:\n%s", Explain(n))
	}
	scan := findScan(n, "country")
	if scan.Filter != nil {
		t.Fatal("tautology pushed into scan")
	}
	// WHERE FALSE becomes an empty Values node.
	n = mustPlan(t, "SELECT name FROM country WHERE 1 = 2")
	if !hasNodeType(n, "*plan.ValuesNode") {
		t.Fatalf("contradiction not folded:\n%s", Explain(n))
	}
}

func TestPlanDistinct(t *testing.T) {
	n := mustPlan(t, "SELECT DISTINCT continent FROM country")
	if !hasNodeType(n, "*plan.DistinctNode") {
		t.Fatal("distinct node missing")
	}
	if err := planErr(t, "SELECT DISTINCT name FROM country ORDER BY population"); err == nil {
		t.Fatal("DISTINCT + hidden ORDER BY column must error")
	}
}

func TestPlanUnknownTableAndColumn(t *testing.T) {
	if err := planErr(t, "SELECT * FROM nosuch"); err == nil {
		t.Fatal("unknown table")
	}
	if err := planErr(t, "SELECT nosuchcol FROM country"); err == nil {
		t.Fatal("unknown column")
	}
	if err := planErr(t, "SELECT x.name FROM country"); err == nil {
		t.Fatal("unknown qualifier")
	}
}

func TestExplainOutput(t *testing.T) {
	n := mustPlan(t, `SELECT c.continent, COUNT(*) FROM country c JOIN movie m ON m.country = c.name GROUP BY c.continent ORDER BY 2 DESC LIMIT 3`)
	out := Explain(n)
	for _, want := range []string{"Limit", "Sort", "Project", "Aggregate", "Join", "Scan country", "Scan movie", "hash:"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestMultiCatalog(t *testing.T) {
	local := MapCatalog{"a": rel.NewSchema(rel.Column{Name: "x", Type: rel.TypeInt})}
	remote := MapCatalog{"b": rel.NewSchema(rel.Column{Name: "y", Type: rel.TypeInt})}
	mc := MultiCatalog{local, remote}
	if _, err := mc.TableSchema("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.TableSchema("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.TableSchema("c"); err == nil {
		t.Fatal("missing table must error")
	}
}

// ---- helpers ----

func findScan(n Node, table string) *ScanNode {
	var found *ScanNode
	walk(n, func(x Node) {
		if s, ok := x.(*ScanNode); ok && s.Table == table {
			found = s
		}
	})
	return found
}

func findJoin(n Node) *JoinNode {
	var found *JoinNode
	walk(n, func(x Node) {
		if j, ok := x.(*JoinNode); ok && found == nil {
			found = j
		}
	})
	return found
}

func findAgg(n Node) *AggregateNode {
	var found *AggregateNode
	walk(n, func(x Node) {
		if a, ok := x.(*AggregateNode); ok {
			found = a
		}
	})
	return found
}

func findSort(n Node) *SortNode {
	var found *SortNode
	walk(n, func(x Node) {
		if s, ok := x.(*SortNode); ok {
			found = s
		}
	})
	return found
}

func hasNodeType(n Node, typeName string) bool {
	found := false
	walk(n, func(x Node) {
		if nodeTypeName(x) == typeName {
			found = true
		}
	})
	return found
}

func nodeTypeName(n Node) string {
	switch n.(type) {
	case *ScanNode:
		return "*plan.ScanNode"
	case *FilterNode:
		return "*plan.FilterNode"
	case *ProjectNode:
		return "*plan.ProjectNode"
	case *JoinNode:
		return "*plan.JoinNode"
	case *AggregateNode:
		return "*plan.AggregateNode"
	case *SortNode:
		return "*plan.SortNode"
	case *LimitNode:
		return "*plan.LimitNode"
	case *DistinctNode:
		return "*plan.DistinctNode"
	case *ValuesNode:
		return "*plan.ValuesNode"
	default:
		return "?"
	}
}

func walk(n Node, f func(Node)) {
	f(n)
	for _, c := range n.Children() {
		walk(c, f)
	}
}
