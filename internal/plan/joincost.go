package plan

import (
	"fmt"
	"strings"
	"time"

	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// This file implements the cost side of join planning: every equi-join is
// priced under the same token/latency/$ estimator the scan planner uses,
// per strategy (hash, bind, nested-loop), and the cheapest runs. The bind
// strategy is sideways information passing — drain the outer side, push its
// distinct join-key values into the build side's scan — and is the only
// candidate whose LLM spend differs: hash and nested-loop both pay two full
// scans, bind pays the outer scan plus an attribute fan-out restricted to
// the bound keys. Build/bound-side selection is part of the decision, with
// deterministic tie-breaks, so plans are stable across runs.

// JoinDecision records the join planner's choice and the per-strategy cost
// breakdown behind it, for EXPLAIN and the Table 12 ablations.
type JoinDecision struct {
	// Chosen is the display name of the strategy that will run.
	Chosen JoinStrategy
	// BuildLeft reports the chosen build (hash) / bound (bind) side.
	BuildLeft bool
	// BindTable is the table receiving the bound keys (bind only).
	BindTable string
	// EstLeftRows / EstRightRows are the side cardinality estimates.
	EstLeftRows, EstRightRows int
	// EstBoundKeys is the estimated number of distinct join-key values the
	// outer side passes into the bound scan (bind only).
	EstBoundKeys int
	// Candidates holds the cost breakdown per strategy, in a stable order.
	Candidates []StrategyCost
}

// Candidate returns the cost entry for the named strategy (zero value when
// absent).
func (d JoinDecision) Candidate(name string) StrategyCost {
	for _, c := range d.Candidates {
		if c.Strategy == name {
			return c
		}
	}
	return StrategyCost{}
}

// String renders the decision compactly for EXPLAIN:
//
//	join=bind build=right est-rows=400x180 est-keys=40 | hash: ...
func (d JoinDecision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "join=%s", d.Chosen)
	side := "right"
	if d.BuildLeft {
		side = "left"
	}
	fmt.Fprintf(&b, " build=%s est-rows=%dx%d", side, d.EstLeftRows, d.EstRightRows)
	if d.Chosen == JoinBind {
		fmt.Fprintf(&b, " est-keys=%d", d.EstBoundKeys)
	}
	for _, c := range d.Candidates {
		fmt.Fprintf(&b, " | %s: %d prompts, %d tok, $%.4f, %s",
			c.Strategy, c.Prompts, c.Tokens(), c.Dollars, c.Wall.Round(time.Millisecond))
	}
	return b.String()
}

// Cardinalities is an optional Catalog capability: catalogs that know (or
// estimate) per-table row counts report them so the join planner can size
// the sides. Row stores report exact counts; the LLM store reports its
// registration/prior-scan estimate.
type Cardinalities interface {
	// EstimateRows returns the estimated row count of the named table; ok
	// is false when the table is not this catalog's.
	EstimateRows(table string) (int, bool)
}

// EstimateRows implements Cardinalities for MultiCatalog.
func (m MultiCatalog) EstimateRows(table string) (int, bool) {
	for _, c := range m {
		if ce, ok := c.(Cardinalities); ok {
			if n, ok := ce.EstimateRows(table); ok {
				return n, true
			}
		}
	}
	return 0, false
}

// BindAdvisor is an optional Catalog capability: catalogs whose scans can
// honour a bound key set (the LLM store) price the bound scan so the join
// planner can compare bind against hash. ok is false when the table is not
// this catalog's or binding does not apply.
type BindAdvisor interface {
	// BindScanCost prices the scan of table retrieving the needed columns
	// (nil = all) under the pushed filter, with the attribute fan-out
	// restricted to at most boundKeys distinct outer join-key values.
	BindScanCost(table string, needed []bool, filter sql.Expr, boundKeys int) (StrategyCost, bool)
}

// BindScanCost implements BindAdvisor for MultiCatalog.
func (m MultiCatalog) BindScanCost(table string, needed []bool, filter sql.Expr, boundKeys int) (StrategyCost, bool) {
	for _, c := range m {
		if adv, ok := c.(BindAdvisor); ok {
			if sc, ok := adv.BindScanCost(table, needed, filter, boundKeys); ok {
				return sc, true
			}
		}
	}
	return StrategyCost{}, false
}

// defaultRowEstimate is the cardinality guess for tables no catalog can
// size (mirrors the scan planner's default).
const defaultRowEstimate = 40

// estimateRows walks a subtree and produces a crude, deterministic
// cardinality estimate: scan decisions (which already fold in selectivity
// and limit hints) win, then catalog row counts, then the default; filters
// keep a third, limits cap, grouped aggregates keep a quarter. The numbers
// only rank join candidates — EXPLAIN labels everything "est".
func estimateRows(n Node, cat Catalog) int {
	switch x := n.(type) {
	case *ScanNode:
		if x.Decision != nil {
			return clampRows(x.Decision.EstKeysAttributed)
		}
		rows := defaultRowEstimate
		if ce, ok := cat.(Cardinalities); ok {
			if r, ok := ce.EstimateRows(x.Table); ok {
				rows = r
			}
		}
		if x.Filter != nil {
			rows = rows / 3
		}
		if x.Limit > 0 && int64(rows) > x.Limit {
			rows = int(x.Limit)
		}
		return clampRows(rows)
	case *FilterNode:
		return clampRows(estimateRows(x.Child, cat) / 3)
	case *ProjectNode:
		return estimateRows(x.Child, cat)
	case *SortNode:
		return estimateRows(x.Child, cat)
	case *DistinctNode:
		return estimateRows(x.Child, cat)
	case *LimitNode:
		rows := estimateRows(x.Child, cat)
		if x.Limit >= 0 && int64(rows) > x.Limit+x.Offset {
			rows = int(x.Limit + x.Offset)
		}
		return clampRows(rows)
	case *AggregateNode:
		if len(x.GroupBy) == 0 {
			return 1
		}
		return clampRows(estimateRows(x.Child, cat) / 4)
	case *JoinNode:
		l, r := estimateRows(x.Left, cat), estimateRows(x.Right, cat)
		switch x.Kind {
		case KindSemi, KindAnti:
			return l
		case KindCross:
			return clampRows(l * r)
		default:
			if l > r {
				return l
			}
			return r
		}
	case *ValuesNode:
		return clampRows(len(x.Rows))
	default:
		return defaultRowEstimate
	}
}

func clampRows(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// estimateKeyNDV estimates the number of distinct values the join-key
// expression takes over a side: entity keys are unique by construction, any
// other expression is assumed to repeat (two thirds distinct).
func estimateKeyNDV(side Node, key sql.Expr, rows int) int {
	if cr, ok := key.(*sql.ColumnRef); ok {
		if idx, err := side.Schema().Resolve(cr.Table, cr.Name); err == nil {
			if side.Schema().Col(idx).Key {
				return rows
			}
		}
	}
	return clampRows(rows * 2 / 3)
}

// bindableScan locates the scan a bind join could push keys into: the side
// must be a ScanNode reached only through row-local operators (pass-through
// projections, filters, distinct — each commutes with restricting the scan
// to a key subset), and the side's join-key expression must trace to the
// scan's entity-key column (a TEXT key — bound keys travel as strings).
// Limits and aggregates block binding: restricting their input changes
// which rows they emit. Requiring the entity key is also what makes anti
// joins safe to bind: entity keys are never NULL, and a NULL in the full
// build side would flip NOT IN semantics invisibly to a bound scan.
func bindableScan(n Node, key sql.Expr) (*ScanNode, bool) {
	cr, ok := key.(*sql.ColumnRef)
	if !ok {
		return nil, false
	}
	switch x := n.(type) {
	case *ScanNode:
		idx, err := x.Schema().Resolve(cr.Table, cr.Name)
		if err != nil {
			return nil, false
		}
		keys := x.TableSchema.KeyIndexes()
		if len(keys) != 1 || idx != keys[0] {
			return nil, false
		}
		if x.TableSchema.Col(idx).Type != rel.TypeText {
			return nil, false
		}
		return x, true
	case *ProjectNode:
		idx, err := x.Out.Resolve(cr.Table, cr.Name)
		if err != nil {
			return nil, false
		}
		return bindableScan(x.Child, x.Exprs[idx])
	case *FilterNode:
		return bindableScan(x.Child, key)
	case *DistinctNode:
		return bindableScan(x.Child, key)
	default:
		return nil, false
	}
}

// subtreeScanCost sums the estimated cost of every priced scan in a
// subtree (local scans cost no prompts and contribute zero).
func subtreeScanCost(n Node) StrategyCost {
	var total StrategyCost
	var walk func(Node)
	walk = func(n Node) {
		if n == nil {
			return
		}
		if s, ok := n.(*ScanNode); ok {
			if s.Decision != nil {
				c := s.Decision.Candidate(s.Decision.Chosen)
				total.Prompts += c.Prompts
				total.PromptTokens += c.PromptTokens
				total.CompletionTokens += c.CompletionTokens
				total.Wall += c.Wall
				total.Dollars += c.Dollars
			}
			return
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return total
}

// addCost sums two cost shapes under a display name (scans of the two join
// sides run sequentially in the executor, so wall latencies add).
func addCost(name string, a, b StrategyCost) StrategyCost {
	return StrategyCost{
		Strategy:         name,
		Prompts:          a.Prompts + b.Prompts,
		PromptTokens:     a.PromptTokens + b.PromptTokens,
		CompletionTokens: a.CompletionTokens + b.CompletionTokens,
		Wall:             a.Wall + b.Wall,
		Dollars:          a.Dollars + b.Dollars,
	}
}

// planJoins walks an optimized, scan-annotated plan and decides every
// equi-join's strategy and build side. It runs after annotateScans so the
// per-side scan costs it sums are the ones EXPLAIN shows.
func planJoins(n Node, cat Catalog, opts Options) {
	if n == nil {
		return
	}
	for _, c := range n.Children() {
		planJoins(c, cat, opts)
	}
	j, ok := n.(*JoinNode)
	if !ok || len(j.LeftKey) == 0 {
		return
	}

	estLeft := estimateRows(j.Left, cat)
	estRight := estimateRows(j.Right, cat)

	// Hash build side: materialize the smaller side. Only inner joins may
	// build left (the left/semi/anti algorithms need the right side in the
	// table); ties break toward the right side, the historical default.
	buildLeft := j.Kind == KindInner && estLeft < estRight

	leftScan := subtreeScanCost(j.Left)
	rightScan := subtreeScanCost(j.Right)
	hash := addCost("hash", leftScan, rightScan)

	// Bind candidates: one key pair only (the scan binds a single entity-key
	// column), and the bound side must trace to a bindable scan the catalog
	// can price. For non-inner joins only the right side may be bound (the
	// left stream must be preserved / is the output).
	type bindOption struct {
		cost  StrategyCost
		scan  *ScanNode
		left  bool
		bound int
	}
	var bindOpts []bindOption
	adv, haveAdv := cat.(BindAdvisor)
	if haveAdv && len(j.LeftKey) == 1 {
		consider := func(side Node, key sql.Expr, outer Node, outerKey sql.Expr, outerRows int, left bool) {
			scan, ok := bindableScan(side, key)
			if !ok {
				return
			}
			bound := estimateKeyNDV(outer, outerKey, outerRows)
			cost, ok := adv.BindScanCost(scan.Table, scan.Needed, scan.Filter, bound)
			if !ok {
				return
			}
			outerCost := subtreeScanCost(outer)
			bindOpts = append(bindOpts, bindOption{
				cost:  addCost("bind", outerCost, cost),
				scan:  scan,
				left:  left,
				bound: bound,
			})
		}
		consider(j.Right, j.RightKey[0], j.Left, j.LeftKey[0], estLeft, false)
		if j.Kind == KindInner {
			consider(j.Left, j.LeftKey[0], j.Right, j.RightKey[0], estRight, true)
		}
	}
	// Keep the cheaper bind side as the single bind candidate.
	var bind *bindOption
	for i := range bindOpts {
		if bind == nil || bindOpts[i].cost.Dollars < bind.cost.Dollars {
			bind = &bindOpts[i]
		}
	}

	// The nested loop pays the same two full scans as hash; it exists in
	// the breakdown to show that the LLM spend of the classical strategies
	// is scan-bound.
	nl := addCost("nested-loop", leftScan, rightScan)

	candidates := []StrategyCost{hash}
	if bind != nil {
		candidates = append(candidates, bind.cost)
	}
	candidates = append(candidates, nl)

	// Choose: cheapest dollars; ties prefer bind (it can only shrink the
	// attribute fan-out at runtime), then hash, then nested-loop.
	chosen := JoinHash
	if opts.BindJoin && bind != nil && bind.cost.Dollars <= hash.Dollars {
		chosen = JoinBind
	}

	// Orientation (BuildLeft) is cardinality-chosen regardless of the
	// strategy: a bind join materializes both sides anyway and probes in
	// the hash join's orientation, so toggling bind never reorders rows.
	j.Strategy = chosen
	j.BuildLeft = buildLeft
	if chosen == JoinBind {
		j.BindLeft = bind.left
		j.BindScan = bind.scan
	} else {
		j.BindLeft = false
		j.BindScan = nil
	}

	// Annotate only joins with something priceable on a side; plans over
	// pure row stores keep their cost-free EXPLAIN.
	if hash.Dollars > 0 || bind != nil {
		d := &JoinDecision{
			Chosen:       chosen,
			BuildLeft:    j.BuildLeft,
			EstLeftRows:  estLeft,
			EstRightRows: estRight,
			Candidates:   candidates,
		}
		if bind != nil {
			d.EstBoundKeys = bind.bound
			d.BindTable = bind.scan.Table
		}
		j.Decision = d
	}
}
