// Package plan turns parsed SELECT statements into logical query plans:
// name-resolved, type-checked operator trees that the executor
// (internal/exec) can run against any table source. It also implements the
// optimizer rules (constant folding, predicate pushdown, projection pruning)
// and EXPLAIN rendering.
package plan

import (
	"llmsql/internal/rel"
	"llmsql/internal/sql"
)

// Node is a logical plan operator.
type Node interface {
	// Schema describes the rows the operator produces.
	Schema() rel.Schema
	// Children returns the operator's inputs in order.
	Children() []Node
}

// ScanNode reads a base (or virtual) table. The optimizer may attach a
// pushed-down filter and a needed-column mask; sources are free to ignore
// both (the executor re-applies the filter and the full row width is always
// produced, with NULLs in unneeded positions when the source prunes).
type ScanNode struct {
	// Table is the catalog name of the table.
	Table string
	// Alias is the binding name used in the query ("c" in "country c").
	Alias string
	// TableSchema is the scan output schema, renamed to Alias.
	TableSchema rel.Schema
	// Filter is a pushed-down predicate over TableSchema, or nil.
	Filter sql.Expr
	// Needed marks which columns the rest of the plan consumes; nil means
	// all.
	Needed []bool
	// Limit, when positive, is an advisory row cap pushed down from an
	// enclosing LimitNode through prefix-safe operators: the plan consumes
	// at most this many of the scan's output rows. Sources may use it to
	// stop retrieving early (the LLM source bounds its attribute fan-out);
	// the executor's LimitNode still enforces the real limit, so a source
	// that ignores or violates the hint cannot change results. 0 means no
	// hint.
	Limit int64
	// Decision, when non-nil, is the scan-cost decision the source reported
	// for this table (virtual tables only): the chosen prompt decomposition
	// and its per-strategy cost breakdown, surfaced by EXPLAIN.
	Decision *ScanDecision
	// Materialized, when non-empty, names the materialized view whose row
	// store serves this scan instead of a live LLM retrieval; EXPLAIN
	// renders it as [materialized=name age=N].
	Materialized string
	// MaterializedAge is the view's age when the plan was built, counted in
	// warm reads served since the last build or refresh (views age by use,
	// not wall clock, so replayed plans stay deterministic).
	MaterializedAge int
}

// Schema implements Node.
func (s *ScanNode) Schema() rel.Schema { return s.TableSchema }

// Children implements Node.
func (s *ScanNode) Children() []Node { return nil }

// FilterNode drops rows whose predicate is not TRUE.
type FilterNode struct {
	Child Node
	// Pred is a boolean expression over Child's schema.
	Pred sql.Expr
}

// Schema implements Node.
func (f *FilterNode) Schema() rel.Schema { return f.Child.Schema() }

// Children implements Node.
func (f *FilterNode) Children() []Node { return []Node{f.Child} }

// ProjectNode computes expressions over child rows.
type ProjectNode struct {
	Child Node
	// Exprs are the output expressions over Child's schema.
	Exprs []sql.Expr
	// Out is the output schema, one column per expression.
	Out rel.Schema
}

// Schema implements Node.
func (p *ProjectNode) Schema() rel.Schema { return p.Out }

// Children implements Node.
func (p *ProjectNode) Children() []Node { return []Node{p.Child} }

// JoinKind extends the surface join types with semi/anti joins produced by
// IN-subquery rewriting.
type JoinKind int

const (
	// KindInner is an inner join.
	KindInner JoinKind = iota
	// KindLeft is a left outer join.
	KindLeft
	// KindCross is a cross product.
	KindCross
	// KindSemi keeps left rows with at least one match (IN subquery).
	KindSemi
	// KindAnti keeps left rows with no match (NOT IN subquery, with SQL
	// NULL semantics: any NULL on either side suppresses the row).
	KindAnti
)

// String returns the display name of the join kind.
func (k JoinKind) String() string {
	switch k {
	case KindLeft:
		return "LeftJoin"
	case KindCross:
		return "CrossJoin"
	case KindSemi:
		return "SemiJoin"
	case KindAnti:
		return "AntiJoin"
	default:
		return "Join"
	}
}

// JoinStrategy selects how an equi-join is executed. The zero value is the
// classic hash join, so plans built without the join planner (tests,
// hand-assembled trees) keep today's behavior.
type JoinStrategy int

const (
	// JoinHash materializes the build side into a hash table and streams
	// the probe side.
	JoinHash JoinStrategy = iota
	// JoinBind drains the probe (outer) side first, collects its distinct
	// join-key values, and pushes them into the build side's scan as
	// ScanRequest.Keys — sideways information passing. The build side then
	// retrieves only entities the join can possibly keep; the executor
	// still drops any row for a key that was never bound (sources are
	// untrusted), so results are identical to JoinHash with the same build
	// side.
	JoinBind
	// JoinNestedLoop compares every row pair (non-equi predicates).
	JoinNestedLoop
)

// String names the strategy for EXPLAIN and reports.
func (s JoinStrategy) String() string {
	switch s {
	case JoinBind:
		return "bind"
	case JoinNestedLoop:
		return "nested-loop"
	default:
		return "hash"
	}
}

// JoinNode combines two inputs. For semi/anti joins the output schema is the
// left schema; otherwise it is left ++ right.
type JoinNode struct {
	Kind  JoinKind
	Left  Node
	Right Node
	// On is the join predicate over left++right (nil for cross).
	On sql.Expr
	// LeftKey/RightKey are set when On (or part of it) is an equi-join the
	// executor can hash on: expressions over the respective input schemas.
	LeftKey  []sql.Expr
	RightKey []sql.Expr
	// Residual is the non-equi remainder of On, over left++right.
	Residual sql.Expr
	// Strategy is the execution strategy chosen by the join planner (the
	// zero value keeps the hash join).
	Strategy JoinStrategy
	// BuildLeft selects the output orientation: the left input goes into
	// the hash table and the right input streams through it (inner joins
	// only; left/semi/anti joins require the right side in the table).
	// It is chosen from cardinality estimates independently of the join
	// strategy — a bind join materializes both sides anyway — so toggling
	// bind on and off never reorders the output.
	BuildLeft bool
	// BindLeft, for JoinBind, marks the left input as the bound side (the
	// one whose scan receives the other side's distinct join-key values);
	// the default binds the right input. Inner joins only — the left
	// stream of a left/semi/anti join must not be restricted.
	BindLeft bool
	// BindScan, for JoinBind, is the scan inside the bound side that
	// receives the keys.
	BindScan *ScanNode
	// Decision, when non-nil, records the join planner's per-strategy cost
	// breakdown for EXPLAIN (set only when a side is priceable).
	Decision *JoinDecision
}

// Schema implements Node.
func (j *JoinNode) Schema() rel.Schema {
	if j.Kind == KindSemi || j.Kind == KindAnti {
		return j.Left.Schema()
	}
	return j.Left.Schema().Concat(j.Right.Schema())
}

// Children implements Node.
func (j *JoinNode) Children() []Node { return []Node{j.Left, j.Right} }

// AggSpec is one aggregate computation.
type AggSpec struct {
	// Func is COUNT, SUM, AVG, MIN or MAX.
	Func string
	// Arg is the argument expression over the child schema (nil for
	// COUNT(*)).
	Arg sql.Expr
	// Distinct applies DISTINCT to the argument stream.
	Distinct bool
	// Name is the internal output column name ("#a0", "#a1", ...).
	Name string
	// Type is the output type.
	Type rel.DataType
}

// AggregateNode groups rows and computes aggregates. Its output schema is
// the group-by columns followed by the aggregate columns.
type AggregateNode struct {
	Child Node
	// GroupBy are the grouping expressions over Child's schema.
	GroupBy []sql.Expr
	// GroupNames are the internal output names for group columns
	// ("#g0", ...).
	GroupNames []string
	// Aggs are the aggregate computations.
	Aggs []AggSpec
	// Out is the output schema.
	Out rel.Schema
}

// Schema implements Node.
func (a *AggregateNode) Schema() rel.Schema { return a.Out }

// Children implements Node.
func (a *AggregateNode) Children() []Node { return []Node{a.Child} }

// SortKey orders by an output column index.
type SortKey struct {
	// Col is the column index in the child schema.
	Col int
	// Desc sorts descending.
	Desc bool
}

// SortNode sorts its input.
type SortNode struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *SortNode) Schema() rel.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *SortNode) Children() []Node { return []Node{s.Child} }

// LimitNode keeps Offset..Offset+Limit rows. Limit < 0 means no limit.
type LimitNode struct {
	Child  Node
	Limit  int64
	Offset int64
}

// Schema implements Node.
func (l *LimitNode) Schema() rel.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *LimitNode) Children() []Node { return []Node{l.Child} }

// DistinctNode removes duplicate rows.
type DistinctNode struct {
	Child Node
}

// Schema implements Node.
func (d *DistinctNode) Schema() rel.Schema { return d.Child.Schema() }

// Children implements Node.
func (d *DistinctNode) Children() []Node { return []Node{d.Child} }

// ValuesNode produces literal rows (FROM-less SELECT).
type ValuesNode struct {
	Rows []rel.Row
	Out  rel.Schema
}

// Schema implements Node.
func (v *ValuesNode) Schema() rel.Schema { return v.Out }

// Children implements Node.
func (v *ValuesNode) Children() []Node { return nil }
